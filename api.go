// Package linkclust is an efficient link-clustering library for multi-core
// machines, reproducing Guanhua Yan, "Improving Efficiency of Link
// Clustering on Multi-Core Machines" (ICDCS 2017).
//
// Link clustering (Ahn, Bagrow & Lehmann, Nature 2010) groups the *edges*
// of a graph by the Tanimoto similarity of incident edges, revealing
// overlapping and hierarchical community structure. This package provides
// the paper's three acceleration axes behind one facade:
//
//   - Algorithm — the two-phase serial sweep: Similarity (Algorithm 1)
//     computes incident-pair similarities in three graph passes; Cluster /
//     Sweep (Algorithm 2) replays them through the chain array C in
//     O(|V| + K1·log K1 + √K2·|E|) time, versus O(|E|²) for classic
//     single-linkage (SLINK / next-best-merge).
//   - Modeling — CoarseCluster produces coarse-grained dendrograms whose
//     per-level merge rate is bounded by γ, stopping below φ clusters, with
//     rollback-based chunk-size estimation.
//   - Parallelization — SimilarityParallel, SweepParallel and
//     CoarseParams.Workers run both phases multi-threaded (Section VI),
//     including the corrected replica-merge scheme for array C and a
//     deterministic reservation engine for the fine-grained sweep whose
//     merge stream is bitwise identical to serial at any worker count.
//
// Dendrogram analysis (cuts, partition density, overlapping communities)
// and the paper's word-association-network pipeline (tokenizing, stemming,
// PMI edge weights) are included. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for the reproduced evaluation.
//
// Quick start:
//
//	g := linkclust.NewGraphBuilder(4)
//	g.MustAddEdge(0, 1, 1)
//	// ... add edges ...
//	res, err := linkclust.Cluster(g.Build(nil))
//	d := linkclust.NewDendrogram(res)
//	theta, density, labels := linkclust.BestCut(g.Build(nil), d)
//	comms := linkclust.Communities(g.Build(nil), labels)
package linkclust

import (
	"context"
	"errors"
	"fmt"
	"io"

	"linkclust/internal/assoc"
	"linkclust/internal/coarse"
	"linkclust/internal/core"
	"linkclust/internal/corpus"
	"linkclust/internal/dendro"
	"linkclust/internal/graph"
	"linkclust/internal/metrics"
	"linkclust/internal/obs"
	"linkclust/internal/onmi"
	"linkclust/internal/par"
	"linkclust/internal/planted"
	"linkclust/internal/stream"
)

// Graph and corpus building blocks.
type (
	// Graph is an immutable weighted undirected graph.
	Graph = graph.Graph
	// GraphBuilder accumulates edges and produces a Graph.
	GraphBuilder = graph.Builder
	// Edge is an undirected weighted edge with canonical order U < V.
	Edge = graph.Edge
	// GraphStats bundles |V|, |E|, density, and the K1/K2/K3 quantities
	// of the paper's complexity analysis.
	GraphStats = graph.Stats

	// Corpus is an ordered collection of processed documents.
	Corpus = corpus.Corpus
	// SynthConfig parameterizes the synthetic tweet generator.
	SynthConfig = corpus.SynthConfig
	// AssocOptions tunes word-association-network construction.
	AssocOptions = assoc.Options
)

// Clustering types.
type (
	// Pair is one vertex pair of map M with its similarity and common
	// neighbors (Algorithm 1 output).
	Pair = core.Pair
	// PairList is the materialized map M; after Sort it is list L.
	PairList = core.PairList
	// Merge is one dendrogram merge event.
	Merge = core.Merge
	// Result is the output of the fine-grained sweep.
	Result = core.Result
	// Chain is the array C with the F(i)/MERGE primitives.
	Chain = core.Chain
	// CompactPairList is the struct-of-arrays pair list for
	// memory-constrained runs.
	CompactPairList = core.CompactPairList

	// CoarseParams configures coarse-grained clustering (γ, φ, δ0, η0,
	// worker count).
	CoarseParams = coarse.Params
	// CoarseResult is the output of a coarse-grained sweep.
	CoarseResult = coarse.Result
	// CoarseEpoch records one epoch of the coarse-grained mode machine.
	CoarseEpoch = coarse.Epoch

	// Dendrogram supports cuts and per-level queries over merge streams.
	Dendrogram = dendro.Dendrogram
	// Community is one link community with its edges and induced nodes.
	Community = dendro.Community
)

// NewGraphBuilder returns a builder for a graph with n unlabeled vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// NewLabeledGraphBuilder returns a builder whose vertices carry labels.
func NewLabeledGraphBuilder(labels []string) *GraphBuilder {
	return graph.NewLabeledBuilder(labels)
}

// ComputeStats returns the structural statistics of g, including K1 and K2.
func ComputeStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// ReadGraph parses a graph in the library's text format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph serializes a graph in the library's text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// WriteDOT serializes a graph in Graphviz DOT format; edgeColor (optional)
// maps each edge id to a color class, the usual way to draw link
// communities.
func WriteDOT(w io.Writer, g *Graph, edgeColor func(edge int32) int32) error {
	return graph.WriteDOT(w, g, edgeColor)
}

// Observability. Every pipeline entry point accepts an optional *Recorder
// (nil disables instrumentation at no measurable cost); a populated
// Recorder yields a RunReport with per-phase wall times, named counters
// (pairs processed, chain rewrites, replica merges), and memory deltas.
type (
	// Recorder collects phase timers and counters for one pipeline run.
	// All methods are safe on a nil receiver, which disables recording.
	Recorder = obs.Recorder
	// RunReport is the JSON-serializable summary of an instrumented run.
	RunReport = obs.RunReport
	// PhaseReport is one aggregated phase of a RunReport.
	PhaseReport = obs.PhaseReport
)

// NewRecorder returns a Recorder with the run clock started.
func NewRecorder() *Recorder { return obs.New() }

// WorkerPanicError is the typed error surfaced by the context-aware entry
// points when a goroutine inside a worker pool panics: the pool recovers the
// panic, asks its siblings to stop, drains, and the entry point returns this
// error (carrying the worker index and stack) instead of crashing the
// process. Match it with errors.As.
type WorkerPanicError = par.WorkerPanicError

// CtrMemBudgetDegrades counts runs that breached the soft memory budget at
// the initialization/sweep boundary and degraded from fine-grained to
// coarse-grained clustering — since the out-of-core path landed, only
// because the spill attempt itself failed at the disk
// (see ClusterOptions.MemBudgetBytes).
const CtrMemBudgetDegrades = "cluster.mem_budget_degrades"

// CtrMemBudgetSpills counts runs that breached the soft memory budget and
// were admitted to the out-of-core spilled sweep instead — the first rung
// of the budget escalation ladder. A spilled run's output is bitwise
// identical to the in-memory engines', so unlike a degrade this is
// invisible to the result.
const CtrMemBudgetSpills = "cluster.mem_budget_spills"

// Spill counter names recorded by the out-of-core sweep. Buckets and bytes
// are worker-invariant (pure functions of the pair list); read stalls are a
// timing artifact.
const (
	CtrSpillBuckets      = core.CtrSpillBuckets
	CtrSpillBytesWritten = core.CtrSpillBytesWritten
	CtrSpillReadStalls   = core.CtrSpillReadStalls
)

// ClusterOptions configures an instrumented pipeline run.
type ClusterOptions struct {
	// Workers sets the worker count for the initialization phase (and the
	// coarse sweeping phase, where applicable). Like every parallel entry
	// point, the value is normalized: below 1 runs serially, above
	// max(runtime.GOMAXPROCS(0), runtime.NumCPU()) is clamped to that cap.
	Workers int
	// Recorder, when non-nil, collects phase timers and counters for the
	// run; call Recorder.Report to obtain the RunReport.
	Recorder *Recorder
	// Pipeline selects the sort-overlapped sweep (SweepPipelined) instead of
	// the windowed parallel sweep when Workers > 1. Output is bitwise
	// identical either way.
	Pipeline bool
	// Engine selects the sweeping engine explicitly: EngineSerial,
	// EngineParallel, EnginePipelined, or EngineAuto, which picks serial
	// below a measured op-count threshold (see core.SweepAutoMinOps and
	// DESIGN.md) and otherwise honors Workers/Pipeline. Empty keeps the
	// legacy switch (Pipeline → pipelined, Workers > 1 → parallel, else
	// serial). Every engine is bitwise identical — Engine affects speed
	// only. The resolved engine is recorded on the Recorder's run report as
	// meta key "sweep_engine".
	Engine string
	// Relabel routes the initialization phase through the degree-ordered
	// relabeled kernel (SimilarityRelabeled): vertices are renamed by
	// descending degree for cache locality and every output is mapped back
	// to original ids, so results are bitwise identical with or without it.
	Relabel bool
	// MemBudgetBytes, when positive, sets a soft live-heap budget for
	// ClusterCtx: heap growth is measured from entry and checked at the
	// initialization/sweep phase boundary. On breach the run escalates in
	// two rungs. First it admits the pair list to disk and runs the
	// out-of-core spilled sweep (SweepSpilled, recorded under
	// CtrMemBudgetSpills), whose output is bitwise identical to the
	// in-memory engines. Only if spilling itself fails at the disk — store
	// creation or a write error, which leaves the pair list intact — does
	// the run degrade to coarse-grained clustering (DefaultCoarseParams)
	// over that list, recorded under CtrMemBudgetDegrades. "Soft" means
	// overshoot within a phase is only observed at the phase boundary; zero
	// disables the budget.
	MemBudgetBytes int64
	// SpillDir is the parent directory for the out-of-core sweep's private
	// spill directory (EngineSpill or the budget admission path); empty
	// means os.TempDir(). Each run spills into its own subdirectory and
	// removes it on every exit path.
	SpillDir string
}

// Similarity runs the initialization phase (Algorithm 1) serially with the
// wedge-major (Gustavson) kernel, producing the similarity-annotated pair
// list. Contributions are grouped by the smaller endpoint of each map-M key
// into a per-row sparse accumulator, avoiding the global hash map of the
// reference implementation (see SimilarityLegacy).
func Similarity(g *Graph) *PairList { return core.Similarity(g) }

// SimilarityParallel runs the initialization phase multi-threaded with the
// wedge-major kernel: rows of map M partition disjointly across workers
// (count-then-fill into a CSR layout, no merge phase), and the output is
// bitwise identical to Similarity for any worker count. The workers
// argument is normalized: values below 2 (after clamping) fall back to the
// serial path, values above max(runtime.GOMAXPROCS(0), runtime.NumCPU()) are clamped to that
// cap.
func SimilarityParallel(g *Graph, workers int) *PairList {
	return core.SimilarityParallel(g, workers)
}

// SimilarityRelabeled runs the initialization phase over a degree-ordered
// relabeled copy of the graph — vertices renamed by descending degree so hub
// rows share cache lines in the wedge kernel's scratch — and maps every
// output back to original ids: pairs, common-neighbor lists, and the master
// order are bitwise identical to Similarity/SimilarityParallel for any
// worker count. Edge ids are untouched by relabeling, so dendrograms and
// chain arrays built downstream need no translation. workers is normalized
// as in SimilarityParallel.
func SimilarityRelabeled(g *Graph, workers int) *PairList {
	return core.SimilarityRelabeled(g, workers)
}

// SimilarityRelabeledCtx is SimilarityRelabeled with cooperative
// cancellation, panic isolation, and optional instrumentation, mirroring
// SimilarityCtx.
func SimilarityRelabeledCtx(ctx context.Context, g *Graph, workers int, rec *Recorder) (*PairList, error) {
	return core.SimilarityRelabeledCtx(ctx, g, workers, rec)
}

// SimilarityLegacy runs the initialization phase through the original
// global hash-map accumulator — the paper's Section VI-A scheme, kept as
// the differential-testing reference and benchmark baseline. After Sort its
// output is element-wise identical to Similarity.
func SimilarityLegacy(g *Graph) *PairList { return core.SimilarityLegacy(g) }

// SimilarityParallelLegacy is the multi-threaded legacy path (per-worker
// hash maps merged hierarchically, Section VI-A). Unlike SimilarityParallel
// it matches the serial result only to float tolerance, because the map
// merges reorder additions. workers is normalized as in SimilarityParallel.
func SimilarityParallelLegacy(g *Graph, workers int) *PairList {
	return core.SimilarityParallelLegacy(g, workers)
}

// Sweep runs the sweeping phase (Algorithm 2) over a pair list built from
// the same graph.
func Sweep(g *Graph, pl *PairList) (*Result, error) { return core.Sweep(g, pl) }

// SweepParallel runs the sweeping phase multi-threaded: the sorted pair list
// is cut into merge-batch windows, each resolved and applied in conflict-free
// sub-batch rounds over one shared chain. The output is exact — the merge
// stream is bitwise identical to Sweep and the final partition element-wise
// equal, for any worker count. The pair list is sorted in place. workers is
// normalized exactly as in SimilarityParallel.
func SweepParallel(g *Graph, pl *PairList, workers int) (*Result, error) {
	return core.SweepParallel(g, pl, workers)
}

// SweepPipelined runs the sweeping phase with the sort overlapped: the pair
// list is MSD-radix partitioned on its similarity bits into buckets that
// descend in similarity across bucket order, and the reservation engine of
// SweepParallel consumes bucket k (sorted on arrival) while buckets k+1, ...
// are still being sorted — removing the monolithic Sort barrier between the
// two phases. The output is exact: the merge stream is bitwise identical to
// Sweep and the pair list finishes fully sorted in place, for any worker
// count. workers is normalized exactly as in SimilarityParallel.
func SweepPipelined(g *Graph, pl *PairList, workers int) (*Result, error) {
	return core.SweepPipelined(g, pl, workers)
}

// SweepSpilled runs the sweeping phase out of core: the pair list is
// radix-partitioned into per-similarity-bucket spill files (in a private
// directory under os.TempDir(), removed on every exit path), the in-memory
// list is released, and the buckets stream back from disk through the same
// frontier-fed engine the pipelined sweep drives — so the pair list never
// has to be memory-resident during the merge. The merge stream is bitwise
// identical to Sweep at any worker count. SweepSpilled consumes pl: on
// success pl.Pairs is nil; only a write-phase disk failure leaves it
// intact. workers is normalized exactly as in SimilarityParallel.
func SweepSpilled(g *Graph, pl *PairList, workers int) (*Result, error) {
	return core.SweepSpilled(g, pl, workers)
}

// SweepSpilledCtx is SweepSpilled with cooperative cancellation, panic
// isolation, optional instrumentation, and an explicit spill parent
// directory (empty means os.TempDir()). Cancellation is honored at the
// scatter's poll points, the producer's bucket claims/publishes, and the
// engine's window cuts; the run's spill directory is removed on every exit
// path and no goroutine outlives the call.
func SweepSpilledCtx(ctx context.Context, g *Graph, pl *PairList, workers int, spillDir string, rec *Recorder) (*Result, error) {
	return core.SweepSpilledOpts(ctx, g, pl, workers, core.SpillOptions{Dir: spillDir}, rec)
}

// ClusterOutOfCore is the end-to-end out-of-core pipeline: the parallel
// initialization phase followed by SweepSpilled. Output is bitwise
// identical to Cluster for any worker count.
func ClusterOutOfCore(g *Graph, workers int) (*Result, error) {
	return core.ClusterOutOfCore(g, workers)
}

// CompactPairs converts a pair list to the struct-of-arrays layout, roughly
// halving the pipeline's dominant allocation on large graphs.
func CompactPairs(pl *PairList) *CompactPairList { return core.Compact(pl) }

// SweepCompact is Sweep over the compact layout; results are identical.
func SweepCompact(g *Graph, c *CompactPairList) (*Result, error) {
	return core.SweepCompact(g, c)
}

// Cluster is the serial end-to-end pipeline: Similarity then Sweep.
func Cluster(g *Graph) (*Result, error) { return core.Cluster(g) }

// ClusterParallel runs the fully parallel fine-grained pipeline: the
// parallel initialization phase followed by the parallel fine-grained sweep.
// (The paper parallelizes only the coarse-grained sweep; the reservation
// engine goes beyond it while reproducing the serial result exactly, so this
// is a drop-in replacement for Cluster.) workers is normalized exactly as in
// SimilarityParallel.
func ClusterParallel(g *Graph, workers int) (*Result, error) {
	return core.SweepParallel(g, core.SimilarityParallel(g, workers), workers)
}

// ClusterPipelined runs the fully pipelined fine-grained pipeline: the
// parallel initialization phase followed by the sort-overlapped sweep of
// SweepPipelined. Output is bitwise identical to Cluster and ClusterParallel
// for any worker count; on multi-core machines it additionally hides the
// K1·log K1 sort behind merge wall-clock. workers is normalized exactly as
// in SimilarityParallel.
func ClusterPipelined(g *Graph, workers int) (*Result, error) {
	return core.ClusterPipelined(g, workers)
}

// ClusterInstrumented runs the fine-grained pipeline (parallel
// initialization and parallel sweep when opts.Workers > 1, the serial paths
// otherwise) with optional instrumentation: phase wall times and the
// pairs-processed / chain-rewrite / merge counters land in opts.Recorder,
// plus the sweep engine's window/round counters on the parallel path.
func ClusterInstrumented(g *Graph, opts ClusterOptions) (*Result, error) {
	pl := core.SimilarityParallelRecorded(g, opts.Workers, opts.Recorder)
	if opts.Workers > 1 {
		return core.SweepParallelRecorded(g, pl, opts.Workers, opts.Recorder)
	}
	return core.SweepRecorded(g, pl, opts.Recorder)
}

// SimilarityCtx is SimilarityParallel with cooperative cancellation, panic
// isolation, and optional instrumentation: the context is checked at every
// row-block claim of the wedge kernel, and a worker panic surfaces as a
// *WorkerPanicError instead of crashing. On a nil error the output is bitwise
// identical to Similarity / SimilarityParallel.
func SimilarityCtx(ctx context.Context, g *Graph, workers int, rec *Recorder) (*PairList, error) {
	return core.SimilarityCtx(ctx, g, workers, rec)
}

// SweepCtx is the serial sweep with cooperative cancellation: the context is
// checked once per 8192 incident-edge operations (the same window size as
// the parallel engines), bounding cancel latency by one window.
func SweepCtx(ctx context.Context, g *Graph, pl *PairList, rec *Recorder) (*Result, error) {
	return core.SweepCtx(ctx, g, pl, rec)
}

// SweepParallelCtx is SweepParallel with cooperative cancellation, panic
// isolation, and optional instrumentation. Cancellation is checked at every
// op-count window cut and inside the parallel sort; on cancellation every
// worker pool drains before context.Canceled (or the context's error) is
// returned, so no goroutine outlives the call. When ctx never cancels, the
// merge stream is bitwise identical to Sweep for any worker count.
func SweepParallelCtx(ctx context.Context, g *Graph, pl *PairList, workers int, rec *Recorder) (*Result, error) {
	return core.SweepParallelCtx(ctx, g, pl, workers, rec)
}

// SweepPipelinedCtx is SweepPipelined with cooperative cancellation, panic
// isolation, and optional instrumentation. Cancellation points are the
// engine's window cuts (consumer) and the bucket claims/publishes of the
// sorting producer; shutdown is clean on both sides — the producer is never
// left blocked on the frontier channel. On cancellation the pair list is left
// unsorted but still a valid permutation, so it can be reused. When ctx never
// cancels, output is bitwise identical to Sweep.
func SweepPipelinedCtx(ctx context.Context, g *Graph, pl *PairList, workers int, rec *Recorder) (*Result, error) {
	return core.SweepPipelinedCtx(ctx, g, pl, workers, rec)
}

// ClusterCtx is the cancellable, fault-tolerant end-to-end pipeline:
// SimilarityCtx followed by the sweep selected by opts (pipelined when
// opts.Pipeline, windowed-parallel when opts.Workers > 1, serial otherwise),
// with opts.MemBudgetBytes optionally degrading the run to coarse-grained
// clustering at the phase boundary (see ClusterOptions). Cancellation is
// honored within one scheduling window at every stage; worker panics surface
// as *WorkerPanicError; and when ctx never cancels, no budget breaches, and
// no fault is injected, the result is bitwise identical to Cluster.
func ClusterCtx(ctx context.Context, g *Graph, opts ClusterOptions) (*Result, error) {
	budget := obs.NewMemBudget(opts.MemBudgetBytes)
	var (
		pl  *PairList
		err error
	)
	if opts.Relabel {
		pl, err = core.SimilarityRelabeledCtx(ctx, g, opts.Workers, opts.Recorder)
	} else {
		pl, err = core.SimilarityCtx(ctx, g, opts.Workers, opts.Recorder)
	}
	if err != nil {
		return nil, err
	}
	if budget.Exceeded() {
		// Escalation ladder, rung 1: admit the pair list to disk and sweep
		// out of core — exact output, the list no longer held in memory.
		opts.Recorder.Add(CtrMemBudgetSpills, 1)
		opts.Recorder.SetMeta("sweep_engine", EngineSpill)
		res, serr := core.SweepSpilledOpts(ctx, g, pl, opts.Workers,
			core.SpillOptions{Dir: opts.SpillDir}, opts.Recorder)
		if serr == nil {
			return res, nil
		}
		// Rung 2 applies only to disk failures during the write phase, which
		// leave the pair list intact (SweepSpilled's contract). Cancellation,
		// worker panics, and read-phase failures (list already released) are
		// terminal.
		if ctx.Err() != nil || pl.Pairs == nil {
			return nil, serr
		}
		var wpe *par.WorkerPanicError
		if errors.As(serr, &wpe) {
			return nil, serr
		}
		opts.Recorder.Add(CtrMemBudgetDegrades, 1)
		params := coarse.DefaultParams()
		params.Workers = opts.Workers
		cres, err := coarse.SweepCtx(ctx, g, pl, params, opts.Recorder)
		if err != nil {
			return nil, err
		}
		return coarseToResult(cres), nil
	}
	engine, err := resolveSweepEngine(opts, pl)
	if err != nil {
		return nil, err
	}
	opts.Recorder.SetMeta("sweep_engine", engine)
	switch engine {
	case core.SweepEngineSpill:
		return core.SweepSpilledOpts(ctx, g, pl, opts.Workers,
			core.SpillOptions{Dir: opts.SpillDir}, opts.Recorder)
	case core.SweepEnginePipelined:
		return core.SweepPipelinedCtx(ctx, g, pl, opts.Workers, opts.Recorder)
	case core.SweepEngineParallel:
		return core.SweepParallelCtx(ctx, g, pl, opts.Workers, opts.Recorder)
	default:
		return core.SweepCtx(ctx, g, pl, opts.Recorder)
	}
}

// Sweep engine names accepted by ClusterOptions.Engine. Every engine yields
// a bitwise-identical merge stream; the choice affects speed only.
const (
	EngineAuto      = core.SweepEngineAuto
	EngineSerial    = core.SweepEngineSerial
	EngineParallel  = core.SweepEngineParallel
	EnginePipelined = core.SweepEnginePipelined
	EngineSpill     = core.SweepEngineSpill
)

// resolveSweepEngine maps ClusterOptions to a concrete sweep engine. The
// empty Engine keeps the pre-Engine behavior (Pipeline → pipelined,
// Workers > 1 → parallel, else serial); EngineAuto consults the measured
// op-count threshold with the pair list's true operation count (K2, the
// exact number of operations the sweep will execute).
func resolveSweepEngine(opts ClusterOptions, pl *PairList) (string, error) {
	switch opts.Engine {
	case "":
		switch {
		case opts.Pipeline:
			return EnginePipelined, nil
		case opts.Workers > 1:
			return EngineParallel, nil
		default:
			return EngineSerial, nil
		}
	case EngineAuto:
		return core.ChooseSweepEngine(pl.NumIncidentPairs(), opts.Workers, opts.Pipeline), nil
	case EngineSerial, EngineParallel, EnginePipelined, EngineSpill:
		return opts.Engine, nil
	default:
		return "", fmt.Errorf("linkclust: unknown sweep engine %q (want %q, %q, %q, %q, or %q)",
			opts.Engine, EngineAuto, EngineSerial, EngineParallel, EnginePipelined, EngineSpill)
	}
}

// Incremental streaming clustering. A Stream ingests edge arrivals and keeps
// the clustering current: only the similarity rows an arrival can affect are
// recomputed, and each snapshot replays the sweep from the deepest still-valid
// checkpoint (or falls back to the batch pipeline when the compaction trigger
// fires). Snapshots are bitwise identical to a batch Cluster run on the
// accumulated graph — see internal/stream and DESIGN.md §9.
type (
	// Stream is the incremental clustering engine. All methods are safe for
	// concurrent use; a Snapshot observes all or none of a concurrent ingest.
	Stream = stream.Engine
	// StreamOptions configures a Stream (workers, vertex bound, compaction
	// triggers, checkpoint spacing, recorder). The zero value is usable.
	StreamOptions = stream.Options
	// Arrival is one streamed edge: endpoints and weight, validated exactly
	// like GraphBuilder.AddEdge; a repeated pair overwrites the weight.
	Arrival = stream.Arrival
)

// Stream counter names recorded on StreamOptions.Recorder. All are pure
// functions of the arrival sequence and batching — never of the worker count —
// so they join the golden worker-invariant set.
const (
	CtrStreamAffectedRows = stream.CtrAffectedRows
	CtrStreamReplayedOps  = stream.CtrReplayedOps
	CtrStreamCompactions  = stream.CtrCompactions
	CtrStreamBatches      = stream.CtrBatches
)

// NewStream returns an incremental clustering engine. Feed it with
// Stream.Ingest / Stream.IngestBatch (or their Ctx variants, which cancel at
// the established window points) and read the maintained clustering with
// Stream.Snapshot.
func NewStream(opt StreamOptions) (*Stream, error) { return stream.New(opt) }

// CoarseClusterCtx is CoarseCluster with cooperative cancellation, panic
// isolation, and optional instrumentation: the context is checked at every
// chunk boundary of the coarse sweep (and at every row-block claim of the
// initialization), bounding cancel latency by one chunk.
func CoarseClusterCtx(ctx context.Context, g *Graph, params CoarseParams, opts ClusterOptions) (*CoarseResult, error) {
	if opts.Workers != 0 {
		params.Workers = opts.Workers
	}
	pl, err := core.SimilarityCtx(ctx, g, params.Workers, opts.Recorder)
	if err != nil {
		return nil, err
	}
	return coarse.SweepCtx(ctx, g, pl, params, opts.Recorder)
}

// coarseToResult adapts a coarse-grained result to the fine-grained Result
// shape for the memory-budget degrade path: the merge stream, final chain,
// level counter, and processed-op count carry over directly. Coarse levels
// group many merges (one level per chunk), so dendrogram cuts behave
// identically but per-merge level granularity is coarser than Sweep's.
func coarseToResult(cres *coarse.Result) *core.Result {
	return &core.Result{
		Merges:         cres.Merges,
		Chain:          cres.Chain,
		Levels:         cres.Levels,
		PairsProcessed: cres.OpsProcessed,
	}
}

// CoarseClusterInstrumented is CoarseCluster with optional instrumentation:
// initialization and coarse-sweep phases, epoch counters, and the replica
// fan-out cost of parallel chunks land in opts.Recorder. opts.Workers, when
// non-zero, overrides params.Workers for both phases.
func CoarseClusterInstrumented(g *Graph, params CoarseParams, opts ClusterOptions) (*CoarseResult, error) {
	if opts.Workers != 0 {
		params.Workers = opts.Workers
	}
	pl := core.SimilarityParallelRecorded(g, params.Workers, opts.Recorder)
	return coarse.SweepRecorded(g, pl, params, opts.Recorder)
}

// DefaultCoarseParams returns the paper's experimental parameters
// (γ=2, φ=100, δ0=1000, η0=8, serial).
func DefaultCoarseParams() CoarseParams { return coarse.DefaultParams() }

// CoarseCluster runs Algorithm 1 (parallel when params.Workers > 1)
// followed by the coarse-grained sweeping algorithm of Section V.
// params.Workers is normalized exactly as in SimilarityParallel.
func CoarseCluster(g *Graph, params CoarseParams) (*CoarseResult, error) {
	return coarse.Sweep(g, core.SimilarityParallel(g, params.Workers), params)
}

// CoarseSweep runs only the coarse-grained sweeping phase over an existing
// pair list (sorted in place if needed) — useful when comparing sweeping
// strategies over one initialization, as the paper's Fig. 5(2) does.
func CoarseSweep(g *Graph, pl *PairList, params CoarseParams) (*CoarseResult, error) {
	return coarse.Sweep(g, pl, params)
}

// CoarseSweepCtx is CoarseSweep with cooperative cancellation, panic
// isolation, and optional instrumentation: the context is checked at every
// chunk boundary, bounding cancel latency by one chunk. It is the entry
// point for callers that already hold a pair list (for example from a
// similarity cache) and need the coarse phase alone — the degrade target of
// the memory-budget path when Phase I was skipped.
func CoarseSweepCtx(ctx context.Context, g *Graph, pl *PairList, params CoarseParams, rec *Recorder) (*CoarseResult, error) {
	return coarse.SweepCtx(ctx, g, pl, params, rec)
}

// NewDendrogram wraps a fine-grained result's merge stream.
func NewDendrogram(res *Result) *Dendrogram {
	return dendro.New(res.Chain.Len(), res.Merges)
}

// NewCoarseDendrogram wraps a coarse-grained result's merge stream.
func NewCoarseDendrogram(res *CoarseResult) *Dendrogram {
	return dendro.New(res.Chain.Len(), res.Merges)
}

// PartitionDensity scores an edge clustering with Ahn et al.'s partition
// density.
func PartitionDensity(g *Graph, labels []int32) float64 {
	return dendro.PartitionDensity(g, labels)
}

// BestCut returns the similarity threshold whose flat clustering maximizes
// partition density, with that density and clustering.
func BestCut(g *Graph, d *Dendrogram) (theta, density float64, labels []int32) {
	return dendro.BestCut(g, d)
}

// Communities groups an edge clustering into link communities, largest
// first.
func Communities(g *Graph, labels []int32) []Community {
	return dendro.Communities(g, labels)
}

// NodeMemberships lists, per vertex, the communities it belongs to;
// vertices with more than one membership are the overlaps link clustering
// reveals.
func NodeMemberships(g *Graph, comms []Community) [][]int {
	return dendro.NodeMemberships(g, comms)
}

// NewCorpus returns an empty corpus; feed it with AddDocument or ReadLines.
func NewCorpus() *Corpus { return corpus.New() }

// DefaultSynthConfig returns the harness's synthetic-corpus configuration.
func DefaultSynthConfig() SynthConfig { return corpus.DefaultSynthConfig() }

// SynthesizeCorpus generates a deterministic tweet-like corpus.
func SynthesizeCorpus(cfg SynthConfig) *Corpus { return corpus.Synthesize(cfg) }

// BuildWordGraph constructs the word-association network over the top
// fraction alpha of the corpus vocabulary with PMI edge weights (Eq. 3).
func BuildWordGraph(c *Corpus, alpha float64, opts AssocOptions) (*Graph, error) {
	return assoc.Build(c, alpha, opts)
}

// Benchmarking against planted ground truth.
type (
	// PlantedConfig parameterizes the overlapping-community benchmark
	// generator.
	PlantedConfig = planted.Config
	// PlantedBenchmark is a generated graph with its ground-truth cover.
	PlantedBenchmark = planted.Benchmark
	// Cover is a set of (possibly overlapping) node communities.
	Cover = onmi.Cover
)

// DefaultPlantedConfig returns a moderate planted benchmark configuration.
func DefaultPlantedConfig() PlantedConfig { return planted.DefaultConfig() }

// GeneratePlanted builds a benchmark graph with known overlapping
// communities.
func GeneratePlanted(cfg PlantedConfig) (*PlantedBenchmark, error) {
	return planted.Generate(cfg)
}

// CompareCovers returns the overlapping normalized mutual information
// (Lancichinetti et al. 2009) between two covers over n nodes: 1 for
// identical covers, near 0 for independent ones.
func CompareCovers(x, y Cover, n int) (float64, error) {
	return onmi.Compare(x, y, n)
}

// CoverOf extracts the node cover induced by a set of link communities —
// the recovered counterpart of a planted ground-truth cover.
func CoverOf(comms []Community) Cover {
	out := make(Cover, 0, len(comms))
	for _, c := range comms {
		out = append(out, append([]int32(nil), c.Nodes...))
	}
	return out
}

// Coverage returns the fraction of edges whose endpoints share a community
// of the cover.
func Coverage(g *Graph, cover Cover) float64 {
	return metrics.Coverage(g, cover)
}

// MeanConductance averages the weighted conductance of the cover's
// communities; lower is better.
func MeanConductance(g *Graph, cover Cover) float64 {
	return metrics.MeanConductance(g, cover)
}

// OverlapModularity computes the extended modularity EQ (Shen et al. 2009)
// of a possibly overlapping cover.
func OverlapModularity(g *Graph, cover Cover) (float64, error) {
	return metrics.OverlapModularity(g, cover)
}
