package linkclust

import (
	"bytes"
	"testing"
)

// TestFacadeEndToEnd drives the whole public API: synthesize a corpus,
// build the word graph, cluster three ways, analyze the dendrogram.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.Vocab = 400
	cfg.Docs = 1200
	cfg.Topics = 8
	c := SynthesizeCorpus(cfg)

	g, err := BuildWordGraph(c, 0.3, AssocOptions{EdgePermSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("word graph has no edges")
	}
	stats := ComputeStats(g)
	if stats.K1 > stats.K2 || stats.K2 > stats.K3 {
		t.Fatalf("K ordering violated: %+v", stats)
	}

	res, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ClusterParallel(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Merges) != len(res.Merges) {
		t.Fatalf("parallel init changed the dendrogram: %d vs %d merges", len(par.Merges), len(res.Merges))
	}

	params := DefaultCoarseParams()
	params.Phi = 10
	params.Delta0 = 50
	params.Workers = 2
	cres, err := CoarseCluster(g, params)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Levels == 0 && g.NumEdges() > params.Phi {
		t.Fatal("coarse clustering committed no levels")
	}

	d := NewDendrogram(res)
	theta, density, labels := BestCut(g, d)
	if len(labels) != g.NumEdges() {
		t.Fatalf("labels length %d", len(labels))
	}
	if density < 0 && theta <= 0 {
		t.Fatalf("degenerate best cut: theta=%v density=%v", theta, density)
	}
	comms := Communities(g, labels)
	if len(comms) == 0 {
		t.Fatal("no communities")
	}
	memb := NodeMemberships(g, comms)
	if len(memb) != g.NumVertices() {
		t.Fatalf("memberships length %d", len(memb))
	}
	cd := NewCoarseDendrogram(cres)
	if cd.NumEdges() != g.NumEdges() {
		t.Fatalf("coarse dendrogram over %d edges", cd.NumEdges())
	}
}

func TestFacadeGraphRoundTrip(t *testing.T) {
	b := NewLabeledGraphBuilder([]string{"x", "y", "z"})
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 2)
	g := b.Build(nil)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 || h.Label(2) != "z" {
		t.Fatalf("round trip lost data: %d edges, label %q", h.NumEdges(), h.Label(2))
	}
}

func TestFacadeSimilarityPaths(t *testing.T) {
	b := NewGraphBuilder(4)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(2, 3, 1)
	g := b.Build(nil)
	s := Similarity(g)
	p := SimilarityParallel(g, 2)
	if len(s.Pairs) != len(p.Pairs) {
		t.Fatalf("similarity paths disagree: %d vs %d pairs", len(s.Pairs), len(p.Pairs))
	}
	res, err := Sweep(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() < 1 {
		t.Fatal("no clusters")
	}
	if PartitionDensity(g, res.Chain.Assignments()) < -1 {
		t.Fatal("absurd partition density")
	}
}

func TestFacadeCompactPath(t *testing.T) {
	b := NewGraphBuilder(6)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(2, 0, 1)
	b.MustAddEdge(2, 3, 1)
	b.MustAddEdge(3, 4, 1)
	b.MustAddEdge(4, 5, 1)
	b.MustAddEdge(5, 3, 1)
	g := b.Build(nil)
	pl := Similarity(g)
	std, err := Sweep(g, &PairList{Pairs: append([]Pair(nil), pl.Pairs...)})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := SweepCompact(g, CompactPairs(pl))
	if err != nil {
		t.Fatal(err)
	}
	if len(std.Merges) != len(cmp.Merges) {
		t.Fatalf("compact path diverged: %d vs %d merges", len(cmp.Merges), len(std.Merges))
	}
	for i := range std.Merges {
		if std.Merges[i] != cmp.Merges[i] {
			t.Fatalf("merge %d differs", i)
		}
	}
}
