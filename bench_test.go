package linkclust

// testing.B benchmarks, one family per paper table/figure. The lcbench CLI
// prints the full figure-shaped tables; these benchmarks expose the same
// measurements to `go test -bench` tooling on a compact workload sweep.
//
// Benchmark → figure map:
//
//	BenchmarkFig4Init       Fig. 4(2) initialization-phase time
//	BenchmarkFig4Sweeping   Fig. 4(2) sweeping-phase time
//	BenchmarkFig4Standard   Fig. 4(2) standard-algorithm (NBM) time
//	BenchmarkFig4Memory     Fig. 4(3) retained structures (allocs reported)
//	BenchmarkFig5Coarse     Fig. 5(2) coarse-grained sweeping time
//	BenchmarkFig6Init       Fig. 6(1) init speedup vs threads
//	BenchmarkFig6Sweep      Fig. 6(2) sweeping speedup vs threads
//	BenchmarkFig2Trace      Fig. 2(1)/(2) fixed-chunk instrumentation
//	BenchmarkTheoryRegular  appendix k-regular scaling (sweep vs standard)
//	BenchmarkTheoryComplete appendix complete-graph scaling
//	BenchmarkFig1Example    the running example graph end to end

import (
	"fmt"
	"sync"
	"testing"

	"linkclust/internal/baseline"
	"linkclust/internal/coarse"
	"linkclust/internal/core"
	"linkclust/internal/corpus"
	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/unionfind"
)

// benchAlphas mirrors the paper's five fractions; the synthetic corpus is
// small enough that the full sweep stays benchable on one machine.
var benchAlphas = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01}

var (
	benchOnce      sync.Once
	benchWorkloads map[float64]*graph.Graph
)

func benchGraph(b *testing.B, alpha float64) *graph.Graph {
	b.Helper()
	benchOnce.Do(func() {
		cfg := corpus.DefaultSynthConfig()
		cfg.Vocab = 3000
		cfg.Docs = 5000
		cfg.Topics = 12
		c := corpus.Synthesize(cfg)
		benchWorkloads = make(map[float64]*graph.Graph, len(benchAlphas))
		for _, a := range benchAlphas {
			eff := a * 100 // same label scaling as the harness
			if eff > 1 {
				eff = 1
			}
			g, err := BuildWordGraph(c, eff, AssocOptions{EdgePermSeed: 42})
			if err != nil {
				panic(err)
			}
			benchWorkloads[a] = g
		}
	})
	g, ok := benchWorkloads[alpha]
	if !ok {
		b.Fatalf("no workload for alpha %v", alpha)
	}
	return g
}

func alphaName(alpha float64) string { return fmt.Sprintf("alpha=%g", alpha) }

func copyPairList(pl *core.PairList) *core.PairList {
	return &core.PairList{Pairs: append([]core.Pair(nil), pl.Pairs...)}
}

func BenchmarkFig4Init(b *testing.B) {
	for _, a := range benchAlphas {
		g := benchGraph(b, a)
		b.Run(alphaName(a), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = core.Similarity(g)
			}
		})
	}
}

func BenchmarkFig4Sweeping(b *testing.B) {
	for _, a := range benchAlphas {
		g := benchGraph(b, a)
		pl := core.Similarity(g)
		b.Run(alphaName(a), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Sweep(g, copyPairList(pl)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig4Standard(b *testing.B) {
	// The standard algorithm only fits the smaller fractions — exactly
	// the paper's situation.
	for _, a := range benchAlphas[:3] {
		g := benchGraph(b, a)
		if g.NumEdges() > baseline.MaxNBMEdges {
			continue
		}
		pl := core.Similarity(g)
		es := baseline.NewEdgeSim(g, pl)
		b.Run(alphaName(a), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.NBM(es); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig4Memory(b *testing.B) {
	// -benchmem's allocated-bytes column is the memory comparison: the
	// sweeping pipeline allocates O(K2+|E|) versus the standard
	// algorithm's O(|E|²) matrix.
	a := benchAlphas[1]
	g := benchGraph(b, a)
	b.Run("sweeping/"+alphaName(a), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pl := core.Similarity(g)
			if _, err := core.Sweep(g, pl); err != nil {
				b.Fatal(err)
			}
		}
	})
	if g.NumEdges() <= baseline.MaxNBMEdges {
		pl := core.Similarity(g)
		es := baseline.NewEdgeSim(g, pl)
		b.Run("standard/"+alphaName(a), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.NBM(es); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig5Coarse(b *testing.B) {
	for _, a := range benchAlphas {
		g := benchGraph(b, a)
		pl := core.Similarity(g)
		params := coarse.DefaultParams()
		params.Phi = 100
		b.Run(alphaName(a), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coarse.Sweep(g, copyPairList(pl), params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig6Init(b *testing.B) {
	g := benchGraph(b, 0.005)
	for _, threads := range []int{1, 2, 4, 6} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.SimilarityParallel(g, threads)
			}
		})
	}
}

func BenchmarkFig6Sweep(b *testing.B) {
	g := benchGraph(b, 0.005)
	pl := core.Similarity(g)
	for _, threads := range []int{1, 2, 4, 6} {
		params := coarse.DefaultParams()
		params.Workers = threads
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := coarse.Sweep(g, copyPairList(pl), params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig2Trace(b *testing.B) {
	g := benchGraph(b, 0.001)
	pl := core.Similarity(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := coarse.FixedChunks(g, copyPairList(pl), 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheoryRegular(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		g, err := graph.Circulant(n, 8)
		if err != nil {
			b.Fatal(err)
		}
		pl := core.Similarity(g)
		es := baseline.NewEdgeSim(g, pl)
		b.Run(fmt.Sprintf("sweep/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Sweep(g, copyPairList(pl)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("standard/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.NBM(es); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTheoryComplete(b *testing.B) {
	for _, n := range []int{12, 24, 48} {
		g := graph.Complete(n)
		pl := core.Similarity(g)
		es := baseline.NewEdgeSim(g, pl)
		b.Run(fmt.Sprintf("sweep/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Sweep(g, copyPairList(pl)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("standard/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.NBM(es); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1Example(b *testing.B) {
	g := graph.PaperExample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Cluster(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarity compares the initialization-phase kernels serially on
// the heaviest workload of the sweep: the legacy global hash-map
// accumulator versus the wedge-major (Gustavson/SPA) row accumulation that
// Similarity now uses. Same output after Sort; the wedge kernel trades
// hash lookups and linked-list chains for dense per-row scratch.
func BenchmarkSimilarity(b *testing.B) {
	g := benchGraph(b, 0.01)
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = core.SimilarityLegacy(g)
		}
	})
	b.Run("wedge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = core.SimilarityWedge(g)
		}
	})
}

// BenchmarkSimilarityParallel is the acceptance benchmark of the kernel
// swap: 8 workers on the medium workload, legacy hash-map accumulator
// (per-worker maps + hierarchical merge + edge-bucketed pass 3) versus the
// wedge-major count-then-fill kernel (no merge phase at all). The lcbench
// `simkernel` experiment records the same comparison to
// BENCH_similarity.json.
func BenchmarkSimilarityParallel(b *testing.B) {
	g := benchGraph(b, 0.01)
	const workers = 8
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = core.SimilarityParallelLegacy(g, workers)
		}
	})
	b.Run("wedge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = core.SimilarityWedgeParallel(g, workers)
		}
	})
}

// BenchmarkSweepParallel is the acceptance benchmark of the parallel
// fine-grained sweep: the serial merge loop versus the reservation engine at
// 1 and 8 workers on the heaviest workload. Output is bitwise identical in
// all three configurations; the lcbench `sweepkernel` experiment records the
// full thread sweep to BENCH_sweep.json.
func BenchmarkSweepParallel(b *testing.B) {
	g := benchGraph(b, 0.01)
	pl := core.Similarity(g)
	pl.Sort()
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Sweep(g, pl); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SweepParallel(g, pl, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPairListSort isolates the K1·log K1 sort that becomes the
// dominant serial fraction once the wedge kernel shrinks accumulation:
// the legacy closure-based sort.Slice-equivalent serial path (workers=1)
// versus the chunked parallel sort with k-way merge.
func BenchmarkPairListSort(b *testing.B) {
	g := benchGraph(b, 0.01)
	pl := core.Similarity(g)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cp := copyPairList(pl)
				cp.SortWorkers(workers)
			}
		})
	}
}

// BenchmarkAblationChain compares the paper's chain array C against classic
// union-find structures on the real merge stream of a workload — the
// central data-structure choice of Algorithm 2. The chain pays full-chain
// rewrites per merge (Theorem 2's amortized bound) in exchange for
// min-canonical labels and replica mergeability; union-find defers work to
// finds. Run with -bench AblationChain to see the trade.
func BenchmarkAblationChain(b *testing.B) {
	g := benchGraph(b, 0.001)
	pl := core.Similarity(g)
	pl.Sort()
	var ops [][2]int32
	for i := range pl.Pairs {
		p := &pl.Pairs[i]
		for _, k := range p.Common {
			e1, _ := g.EdgeBetween(int(p.U), int(k))
			e2, _ := g.EdgeBetween(int(p.V), int(k))
			ops = append(ops, [2]int32{e1, e2})
		}
	}
	m := g.NumEdges()
	b.Run("chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch := core.NewChain(m)
			for _, op := range ops {
				ch.Merge(op[0], op[1])
			}
		}
	})
	b.Run("unionfind-min", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			uf := unionfind.NewMin(m)
			for _, op := range ops {
				uf.Union(op[0], op[1])
			}
		}
	})
	b.Run("unionfind-ranked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			uf := unionfind.NewRanked(m)
			for _, op := range ops {
				uf.Union(op[0], op[1])
			}
		}
	})
}

// BenchmarkAblationParallelInitMerge isolates the hierarchical map-merge
// step of the parallel initialization (Section VI-A pass 2) by comparing
// worker counts on a fixed graph: the per-worker accumulation shrinks with
// workers while the merge tree grows.
func BenchmarkAblationParallelInitMerge(b *testing.B) {
	g := benchGraph(b, 0.001)
	for _, workers := range []int{1, 2, 3, 4, 6, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.SimilarityParallel(g, workers)
			}
		})
	}
}

// BenchmarkAblationCompactLayout compares the standard pair list against
// the struct-of-arrays CompactPairList: allocation volume (the -benchmem
// bytes column) is the point, sweep time the sanity check.
func BenchmarkAblationCompactLayout(b *testing.B) {
	g := benchGraph(b, 0.001)
	pl := core.Similarity(g)
	pl.Sort()
	compact := core.Compact(copyPairList(pl))
	compact.Sort()
	b.Run("sweep/standard", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Sweep(g, copyPairList(pl)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sweep/compact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.SweepCompact(g, compact); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("convert", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = core.Compact(pl)
		}
	})
}

// BenchmarkObsOverhead quantifies the cost of the observability layer on
// the hot sweeping phase. "baseline" is the uninstrumented entry point,
// "nil-recorder" the instrumented path with recording disabled (the default
// for every caller that passes no recorder), and "recording" a live
// Recorder. The nil-recorder variant must stay within 2% of baseline:
// instrumentation is phase-granular — a handful of nil checks and closure
// calls per run, never per merge operation.
func BenchmarkObsOverhead(b *testing.B) {
	g := benchGraph(b, 0.001)
	pl := core.Similarity(g)
	pl.Sort()
	b.Run("baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Sweep(g, copyPairList(pl)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nil-recorder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.SweepRecorded(g, copyPairList(pl), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recording", func(b *testing.B) {
		b.ReportAllocs()
		rec := obs.New()
		for i := 0; i < b.N; i++ {
			if _, err := core.SweepRecorded(g, copyPairList(pl), rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
