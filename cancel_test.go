package linkclust

import (
	"context"
	"errors"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"linkclust/internal/core"
	"linkclust/internal/fault"
)

// countdownCtx is a deterministic cancellation source: its Err is nil for the
// first k calls and context.Canceled from call k+1 on (Done closes at the
// same moment). Because the engines poll Err at their scheduling points —
// window cuts, row-block claims, merge rounds, bucket boundaries — a
// countdown pins cancellation to the k-th such point without any reliance on
// timing, which is what makes these tests exact under -race.
type countdownCtx struct {
	remaining atomic.Int64
	done      chan struct{}
	once      sync.Once
}

func newCountdownCtx(k int64) *countdownCtx {
	c := &countdownCtx{done: make(chan struct{})}
	c.remaining.Store(k)
	return c
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return c.done }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		c.once.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

// waitGoroutinesBack polls until the goroutine count returns to base: every
// cancelled engine promises that no worker, producer, or watcher goroutine
// outlives the call.
func waitGoroutinesBack(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d running, baseline %d",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// canceledCtx returns an already-canceled real context.
func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestCancelPreCanceledParity: with an already-canceled context, every Ctx
// entry point at every worker count returns context.Canceled — never a
// partial result, never a different error — and leaks nothing.
func TestCancelPreCanceledParity(t *testing.T) {
	g := raceGraph(7)
	base := runtime.NumGoroutine()
	for workers := 1; workers <= 8; workers++ {
		ctx := canceledCtx()
		if _, err := SimilarityCtx(ctx, g, workers, nil); !errors.Is(err, context.Canceled) {
			t.Fatalf("SimilarityCtx T=%d: err = %v, want context.Canceled", workers, err)
		}
		engines := []struct {
			name string
			run  func(pl *PairList) (*Result, error)
		}{
			{"SweepCtx", func(pl *PairList) (*Result, error) { return SweepCtx(ctx, g, pl, nil) }},
			{"SweepParallelCtx", func(pl *PairList) (*Result, error) { return SweepParallelCtx(ctx, g, pl, workers, nil) }},
			{"SweepPipelinedCtx", func(pl *PairList) (*Result, error) { return SweepPipelinedCtx(ctx, g, pl, workers, nil) }},
			{"SweepSpilledCtx", func(pl *PairList) (*Result, error) { return SweepSpilledCtx(ctx, g, pl, workers, "", nil) }},
		}
		for _, e := range engines {
			res, err := e.run(Similarity(g))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s T=%d: err = %v, want context.Canceled", e.name, workers, err)
			}
			if res != nil {
				t.Fatalf("%s T=%d: returned a result alongside the error", e.name, workers)
			}
		}
		if _, err := ClusterCtx(ctx, g, ClusterOptions{Workers: workers}); !errors.Is(err, context.Canceled) {
			t.Fatalf("ClusterCtx T=%d: err = %v, want context.Canceled", workers, err)
		}
		if _, err := CoarseClusterCtx(ctx, g, DefaultCoarseParams(), ClusterOptions{Workers: workers}); !errors.Is(err, context.Canceled) {
			t.Fatalf("CoarseClusterCtx T=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	waitGoroutinesBack(t, base)
}

// TestCancelMidSimilarity cancels at the k-th scheduling point of the wedge
// kernel, for worker counts 1..8.
func TestCancelMidSimilarity(t *testing.T) {
	g := goldenGraph(t)
	base := runtime.NumGoroutine()
	for workers := 1; workers <= 8; workers++ {
		ctx := newCountdownCtx(1)
		pl, err := SimilarityCtx(ctx, g, workers, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("T=%d: err = %v, want context.Canceled", workers, err)
		}
		if pl != nil {
			t.Fatalf("T=%d: returned a pair list alongside the error", workers)
		}
	}
	waitGoroutinesBack(t, base)
}

// TestCancelMidSort cancels inside the parallel pair-list sort and verifies
// the list is left flagged unsorted, so a later sweep re-sorts instead of
// consuming a half-merged permutation.
func TestCancelMidSort(t *testing.T) {
	g := goldenGraph(t)
	base := runtime.NumGoroutine()
	for workers := 2; workers <= 8; workers *= 2 {
		pl := Similarity(g)
		// k=1 survives SortFuncCtx's entry check and cancels at the first
		// merge-round boundary.
		err := pl.SortWorkersCtx(newCountdownCtx(1), workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("T=%d: err = %v, want context.Canceled", workers, err)
		}
		if pl.Sorted() {
			t.Fatalf("T=%d: pair list flagged sorted after a canceled sort", workers)
		}
		// The canceled sort left a permutation; a fresh sweep must still
		// reproduce the serial merge stream exactly.
		res, err := SweepParallel(g, pl, workers)
		if err != nil {
			t.Fatalf("T=%d: sweep after canceled sort: %v", workers, err)
		}
		if got := sha(canonMerges(res)); got != goldenClusterSHA {
			t.Fatalf("T=%d: hash %s after canceled sort, golden %s", workers, got, goldenClusterSHA)
		}
	}
	waitGoroutinesBack(t, base)
}

// TestCancelMidSweepEngines cancels each sweep engine mid-merge (after the
// sort has consumed a handful of Err polls) at worker counts 1..8: the run
// must stop early — strictly fewer pairs processed than the full sweep — and
// return context.Canceled.
func TestCancelMidSweepEngines(t *testing.T) {
	g := goldenGraph(t)
	full, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	totalPairs := full.PairsProcessed
	base := runtime.NumGoroutine()
	type engine struct {
		name string
		run  func(ctx context.Context, pl *PairList, workers int, rec *Recorder) (*Result, error)
	}
	engines := []engine{
		{"SweepCtx", func(ctx context.Context, pl *PairList, _ int, rec *Recorder) (*Result, error) {
			return SweepCtx(ctx, g, pl, rec)
		}},
		{"SweepParallelCtx", func(ctx context.Context, pl *PairList, workers int, rec *Recorder) (*Result, error) {
			return SweepParallelCtx(ctx, g, pl, workers, rec)
		}},
		{"SweepPipelinedCtx", func(ctx context.Context, pl *PairList, workers int, rec *Recorder) (*Result, error) {
			return SweepPipelinedCtx(ctx, g, pl, workers, rec)
		}},
		{"SweepSpilledCtx", func(ctx context.Context, pl *PairList, workers int, rec *Recorder) (*Result, error) {
			return SweepSpilledCtx(ctx, g, pl, workers, "", rec)
		}},
	}
	for _, e := range engines {
		for workers := 1; workers <= 8; workers++ {
			rec := NewRecorder()
			// Generous enough to get past the sort's polls, small enough to
			// land well inside the merge loop's window sequence.
			ctx := newCountdownCtx(20)
			res, err := e.run(ctx, Similarity(g), workers, rec)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s T=%d: err = %v, want context.Canceled", e.name, workers, err)
			}
			if res != nil {
				t.Fatalf("%s T=%d: returned a result alongside the error", e.name, workers)
			}
			if got := rec.Counter(core.CtrSweepPairsProcessed); got >= totalPairs {
				t.Fatalf("%s T=%d: processed %d pairs despite cancellation (full run: %d)",
					e.name, workers, got, totalPairs)
			}
		}
	}
	waitGoroutinesBack(t, base)
}

// TestCancelSpilledCleanup cancels the out-of-core sweep in both phases —
// countdown contexts land inside the spill-write scatter, the armed
// CancelWindow point lands inside the read-back merge — and verifies every
// exit removes its spill directory and brings every goroutine back.
func TestCancelSpilledCleanup(t *testing.T) {
	resetFaults(t)
	g := goldenGraph(t)
	base := runtime.NumGoroutine()
	dir := t.TempDir()

	requireClean := func(label string) {
		t.Helper()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: reading spill parent: %v", label, err)
		}
		if len(entries) != 0 {
			t.Fatalf("%s: %d entries left in the spill parent, first %q",
				label, len(entries), entries[0].Name())
		}
	}

	// Write phase: the scatter polls the countdown at fixed pair strides, so
	// small k values cancel before the read-back begins.
	for _, k := range []int64{1, 3, 10} {
		for _, workers := range []int{1, 4, 8} {
			res, err := SweepSpilledCtx(newCountdownCtx(k), g, Similarity(g), workers, dir, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("write-phase k=%d T=%d: err = %v, want context.Canceled", k, workers, err)
			}
			if res != nil {
				t.Fatalf("write-phase k=%d T=%d: returned a result alongside the error", k, workers)
			}
			requireClean("write phase")
		}
	}

	// Read phase: the merge consumer hits the CancelWindow point once per
	// window, so arming it with a cancel lands deterministically after the
	// spill files exist and the read-back has begun.
	for _, workers := range []int{1, 4, 8} {
		resetFaults(t)
		ctx, cancel := context.WithCancel(context.Background())
		fault.Arm(fault.CancelWindow, 2, cancel)
		res, err := SweepSpilledCtx(ctx, g, Similarity(g), workers, dir, nil)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("read-phase T=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Fatalf("read-phase T=%d: returned a result alongside the error", workers)
		}
		requireClean("read phase")
	}
	waitGoroutinesBack(t, base)
}

// TestCancelThenRerunIsClean: a canceled run leaves no state behind that
// changes a subsequent full run — same graph, same pair list, golden output.
func TestCancelThenRerunIsClean(t *testing.T) {
	g := goldenGraph(t)
	pl := Similarity(g)
	if _, err := SweepPipelinedCtx(newCountdownCtx(10), g, pl, 4, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("setup cancel failed: %v", err)
	}
	res, err := SweepPipelined(g, pl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := sha(canonMerges(res)); got != goldenClusterSHA {
		t.Fatalf("rerun after cancellation: hash %s, golden %s", got, goldenClusterSHA)
	}
}
