// Command lcbench regenerates the paper's tables and figures on synthetic
// workloads. Each experiment prints the rows/series of one figure; see
// EXPERIMENTS.md for the mapping and the expected shapes.
//
// Usage:
//
//	lcbench -experiment all -size small
//	lcbench -experiment fig4-2 -size medium -repeats 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"linkclust/internal/bench"
	"linkclust/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lcbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment to run (fig2-1, fig2-2, fig4-1, fig4-2, fig4-3, fig5-1, fig5-2, fig6-1, fig6-2, theory, all)")
		size       = fs.String("size", "small", "workload size preset: small, medium, large")
		repeats    = fs.Int("repeats", 0, "timed repetitions per measurement (0 = preset default)")
		seed       = fs.Uint64("seed", 0, "corpus seed override (0 = preset default)")
		list       = fs.Bool("list", false, "list available experiments and exit")
		report     = fs.String("report", "", "write a JSON run report with per-experiment phase timings to this file (e.g. BENCH_small.json)")
		benchjson  = fs.String("benchjson", "", "write machine-readable microbenchmark results (linkclust/bench/v1) to this file; used by -experiment simkernel (BENCH_similarity.json), sweepkernel (BENCH_sweep.json), pipeline (BENCH_pipeline.json), kernels (BENCH_kernels.json), stream (BENCH_stream.json) and outofcore (BENCH_outofcore.json)")
		validate   = fs.Bool("validate", false, "validate the BENCH_*.json files given as arguments against the linkclust/bench/v1 schema and exit")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the experiment to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a post-run heap profile to this file (go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *validate {
		paths := fs.Args()
		if len(paths) == 0 {
			return fmt.Errorf("-validate needs at least one BENCH_*.json path")
		}
		for _, p := range paths {
			if err := bench.ValidateBenchFile(p); err != nil {
				return err
			}
			fmt.Fprintf(out, "%s: valid %s document\n", p, "linkclust/bench/v1")
		}
		return nil
	}
	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(out, "%-8s %s\n", e.Name, e.Description)
		}
		return nil
	}
	cfg, err := bench.DefaultConfig(bench.Size(*size))
	if err != nil {
		return err
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	if *seed != 0 {
		cfg.Corpus.Seed = *seed
	}
	cfg.BenchJSON = *benchjson
	var rec *obs.Recorder
	if *report != "" {
		rec = obs.New()
		rec.SetMeta("command", "lcbench")
		rec.SetMeta("size", *size)
		rec.SetMeta("experiment", *experiment)
		cfg.Obs = rec
	}
	exp, err := bench.Lookup(*experiment)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "lcbench: experiment=%s size=%s repeats=%d cpus=%d corpus={vocab=%d docs=%d seed=%d}\n\n",
		exp.Name, *size, cfg.Repeats, runtime.NumCPU(),
		cfg.Corpus.Vocab, cfg.Corpus.Docs, cfg.Corpus.Seed)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "lcbench: closing cpu profile:", err)
			}
		}()
	}
	start := time.Now()
	end := rec.Phase(exp.Name)
	runErr := exp.Run(out, cfg)
	end()
	if *memprofile != "" {
		// Profile live allocations after the run; a forced GC makes the
		// heap profile reflect retained memory, not collectable garbage.
		runtime.GC()
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			f.Close()
			return werr
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "heap profile written to %s\n", *memprofile)
	}
	if runErr != nil {
		// The phases timed so far are still worth keeping: write the partial
		// report tagged with the error, then fail with the experiment's error.
		if rec != nil {
			rec.SetMeta("error", runErr.Error())
			if werr := writeReportJSON(rec, *report, out); werr != nil {
				fmt.Fprintln(os.Stderr, "lcbench: writing partial run report:", werr)
			}
		}
		return runErr
	}
	fmt.Fprintf(out, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
	if rec != nil {
		rep := rec.Report()
		fmt.Fprintln(out)
		if err := rep.Fprint(out); err != nil {
			return err
		}
		if err := writeReportJSON(rec, *report, out); err != nil {
			return err
		}
	}
	return nil
}

// writeReportJSON finalizes the recorder and writes its RunReport to path.
func writeReportJSON(rec *obs.Recorder, path string, out io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.Report().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "run report written to %s\n", path)
	return nil
}
