package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2-1", "fig4-2", "fig6-2", "theory"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "fig99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUnknownSize(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "galactic"}, &out); err == nil {
		t.Fatal("unknown size accepted")
	}
}

func TestRunTheoryExperiment(t *testing.T) {
	// theory is corpus-independent and quick; it exercises the full
	// main-path wiring.
	var out bytes.Buffer
	if err := run([]string{"-experiment", "theory", "-repeats", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Theorem 2 scaling", "8-regular", "complete", "total wall time"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestPipelineExperimentWritesValidBenchJSON(t *testing.T) {
	path := t.TempDir() + "/BENCH_pipeline.json"
	var out bytes.Buffer
	if err := run([]string{"-experiment", "pipeline", "-repeats", "1", "-benchjson", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pipeline:", "bench report written"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if err := run([]string{"-validate", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "valid linkclust/bench/v1 document") {
		t.Fatalf("validate output:\n%s", out.String())
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-validate"}, &out); err == nil {
		t.Fatal("-validate with no paths accepted")
	}
	bad := t.TempDir() + "/bad.json"
	if err := os.WriteFile(bad, []byte(`{"schema":"wrong/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", bad}, &out); err == nil {
		t.Fatal("bad schema accepted")
	}
}
