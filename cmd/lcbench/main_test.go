package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2-1", "fig4-2", "fig6-2", "theory"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "fig99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUnknownSize(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "galactic"}, &out); err == nil {
		t.Fatal("unknown size accepted")
	}
}

func TestRunTheoryExperiment(t *testing.T) {
	// theory is corpus-independent and quick; it exercises the full
	// main-path wiring.
	var out bytes.Buffer
	if err := run([]string{"-experiment", "theory", "-repeats", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Theorem 2 scaling", "8-regular", "complete", "total wall time"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
