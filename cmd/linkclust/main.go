// Command linkclust is the end-to-end pipeline CLI: synthesize or ingest a
// corpus, build a word-association graph, cluster its links (fine-grained,
// coarse-grained, or with the standard baselines), and report the
// dendrogram and the link communities at the best partition-density cut.
//
// Subcommands:
//
//	linkclust synth  -vocab 2000 -docs 5000 > tweets.txt
//	linkclust graph  -alpha 0.2 -in tweets.txt > graph.txt
//	linkclust stats  -in graph.txt
//	linkclust simil  -in graph.txt -out pairs.bin    # cache phase I
//	linkclust cluster -in graph.txt -pairs pairs.bin -algo sweep \
//	    -communities 5 -save-merges merges.bin -newick d.nwk -dot g.dot
//	linkclust cluster -in graph.txt -report run.json -pprof run  # observability
//	linkclust cluster -in graph.txt -stream -stream-batch 256    # incremental replay
//	linkclust analyze -in graph.txt -merges merges.bin
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"linkclust"
	"linkclust/internal/baseline"
	"linkclust/internal/coarse"
	"linkclust/internal/core"
	"linkclust/internal/corpus"
	"linkclust/internal/dendro"
)

func main() {
	// SIGINT cancels the run context instead of killing the process: the
	// clustering engines observe it within one scheduling window, unwind
	// cleanly, and the error path still writes the partial run report.
	// A second SIGINT falls through to the default handler (hard kill).
	//
	// os.Exit skips deferred functions, so nothing that must happen — the
	// report write inside run's defers, and stop() restoring the default
	// signal disposition — may live behind a defer crossed by os.Exit.
	// run() returns only after its own defers (including the partial-report
	// writer) have completed, stop() is called explicitly, and only then is
	// the exit code raised; the report writer itself is atomic (temp file +
	// rename, see writeReport), so even a hard kill mid-write never leaves
	// a truncated JSON document at the report path.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	err := run(ctx, os.Args[1:], os.Stdin, os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkclust:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130) // conventional 128+SIGINT
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	switch args[0] {
	case "synth":
		return cmdSynth(args[1:], stdout)
	case "graph":
		return cmdGraph(args[1:], stdin, stdout)
	case "stats":
		return cmdStats(args[1:], stdin, stdout)
	case "simil":
		return cmdSimil(ctx, args[1:], stdin, stdout)
	case "cluster":
		return cmdCluster(ctx, args[1:], stdin, stdout)
	case "analyze":
		return cmdAnalyze(args[1:], stdin, stdout)
	case "help", "-h", "--help":
		return usageError()
	default:
		return fmt.Errorf("unknown subcommand %q: %w", args[0], usageError())
	}
}

// withTimeout derives the subcommand context from the -timeout flag; zero
// means no deadline.
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// reportOnError returns a deferred hook that writes the run report on the
// error path (cancellation, timeout, worker panic, ...), tagging it with the
// error so a partial report is distinguishable from a completed one. The
// success path writes its own report and sets *written to suppress the hook.
func reportOnError(rec *linkclust.Recorder, path string, stdout io.Writer, errp *error, written *bool) func() {
	return func() {
		if *errp == nil || *written || rec == nil || path == "" {
			return
		}
		rec.SetMeta("error", (*errp).Error())
		if werr := writeReport(rec, path, stdout); werr != nil {
			fmt.Fprintln(os.Stderr, "linkclust: writing partial run report:", werr)
		}
	}
}

func usageError() error {
	return fmt.Errorf("usage: linkclust <synth|graph|stats|simil|cluster|analyze> [flags]")
}

// cmdAnalyze reads a graph and a saved merge stream and prints the cut
// profile: for a sample of similarity thresholds, the cluster count,
// partition density, edge coverage, and overlapping modularity of the
// resulting communities — the model-selection view over a cached
// dendrogram.
func cmdAnalyze(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	var (
		in     = fs.String("in", "-", "input graph (- for stdin)")
		mpath  = fs.String("merges", "", "merge-stream file from 'cluster -save-merges' (required)")
		sample = fs.Int("cuts", 12, "number of thresholds to sample")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mpath == "" {
		return fmt.Errorf("analyze: -merges is required")
	}
	r, closeIn, err := openInput(*in, stdin)
	if err != nil {
		return err
	}
	defer closeIn()
	g, err := linkclust.ReadGraph(r)
	if err != nil {
		return err
	}
	mf, err := os.Open(*mpath)
	if err != nil {
		return err
	}
	n, merges, err := core.ReadMerges(mf)
	mf.Close()
	if err != nil {
		return err
	}
	if n != g.NumEdges() {
		return fmt.Errorf("analyze: merge stream is over %d edges but graph has %d", n, g.NumEdges())
	}
	d := dendro.New(n, merges)
	ths := d.Thresholds()
	if len(ths) == 0 {
		fmt.Fprintln(stdout, "no merges: every edge is its own community")
		return nil
	}
	step := len(ths) / *sample
	if step < 1 {
		step = 1
	}
	fmt.Fprintf(stdout, "%-10s %-9s %-9s %-9s %-9s\n", "sim>=", "clusters", "density", "coverage", "EQ")
	bestDensity, bestTheta := -1.0, 0.0
	for i := 0; i < len(ths); i += step {
		theta := ths[i]
		labels := d.CutSim(theta)
		comms := linkclust.Communities(g, labels)
		cover := linkclust.CoverOf(comms)
		density := linkclust.PartitionDensity(g, labels)
		eqCell := "-"
		if eq, err := linkclust.OverlapModularity(g, cover); err == nil {
			eqCell = fmt.Sprintf("%.4f", eq)
		}
		fmt.Fprintf(stdout, "%-10.4g %-9d %-9.4f %-9.4f %-9s\n",
			theta, len(comms), density, linkclust.Coverage(g, cover), eqCell)
		if density > bestDensity {
			bestDensity, bestTheta = density, theta
		}
	}
	fmt.Fprintf(stdout, "max partition density %.4f at sim >= %.4g\n", bestDensity, bestTheta)
	return nil
}

// writeReport finalizes the recorder and writes its RunReport JSON; a nil
// recorder (observability off) writes nothing. The write is atomic — the
// JSON lands in a temp file in the same directory and is renamed over the
// target — so an interrupt arriving mid-write (the second-SIGINT hard kill)
// can never leave a truncated document at the report path: the file either
// holds the previous content or the complete new report.
func writeReport(rec *linkclust.Recorder, path string, stdout io.Writer) error {
	if rec == nil || path == "" {
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := rec.Report().WriteJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	fmt.Fprintf(stdout, "run report written to %s\n", path)
	return nil
}

// profiler manages the optional -pprof CPU/heap profile pair. The zero
// value (profiling off) is valid; every method is nil-safe.
type profiler struct {
	prefix  string
	cpu     *os.File
	stopped bool
}

// startProfiler begins CPU profiling to <prefix>.cpu.pprof; an empty prefix
// returns a nil profiler.
func startProfiler(prefix string) (*profiler, error) {
	if prefix == "" {
		return nil, nil
	}
	f, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return &profiler{prefix: prefix, cpu: f}, nil
}

// stop ends CPU profiling and closes the file; safe to call repeatedly (it
// also backstops error paths via defer).
func (p *profiler) stop() {
	if p == nil || p.stopped {
		return
	}
	p.stopped = true
	pprof.StopCPUProfile()
	p.cpu.Close()
}

// finish stops CPU profiling and writes the heap profile of the finished
// run to <prefix>.heap.pprof.
func (p *profiler) finish(stdout io.Writer) error {
	if p == nil {
		return nil
	}
	p.stop()
	f, err := os.Create(p.prefix + ".heap.pprof")
	if err != nil {
		return err
	}
	runtime.GC() // profile retained structures, not garbage
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "profiles written to %s.cpu.pprof and %s.heap.pprof\n", p.prefix, p.prefix)
	return nil
}

// openInput returns stdin for path "-" or "" and the named file otherwise.
func openInput(path string, stdin io.Reader) (io.Reader, func() error, error) {
	if path == "" || path == "-" {
		return stdin, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func cmdSynth(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	var (
		vocab  = fs.Int("vocab", 2000, "vocabulary size")
		docs   = fs.Int("docs", 5000, "number of documents")
		topics = fs.Int("topics", 16, "latent topics")
		seed   = fs.Uint64("seed", 1, "PRNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := corpus.DefaultSynthConfig()
	cfg.Vocab, cfg.Docs, cfg.Topics, cfg.Seed = *vocab, *docs, *topics, *seed
	w := bufio.NewWriter(stdout)
	for _, line := range corpus.SynthesizeRaw(cfg) {
		fmt.Fprintln(w, line)
	}
	return w.Flush()
}

func cmdGraph(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("graph", flag.ContinueOnError)
	var (
		in      = fs.String("in", "-", "input corpus, one document per line (- for stdin)")
		alpha   = fs.Float64("alpha", 0.1, "fraction of most frequent candidate words to keep")
		seed    = fs.Uint64("permseed", 42, "edge-id permutation seed (0 keeps construction order)")
		workers = fs.Int("workers", 1, "worker threads for co-occurrence counting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, closeIn, err := openInput(*in, stdin)
	if err != nil {
		return err
	}
	defer closeIn()
	c := linkclust.NewCorpus()
	if err := c.ReadLines(r); err != nil {
		return fmt.Errorf("reading corpus: %w", err)
	}
	g, err := linkclust.BuildWordGraph(c, *alpha, linkclust.AssocOptions{EdgePermSeed: *seed, Workers: *workers})
	if err != nil {
		return err
	}
	return linkclust.WriteGraph(stdout, g)
}

func cmdStats(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	in := fs.String("in", "-", "input graph (- for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, closeIn, err := openInput(*in, stdin)
	if err != nil {
		return err
	}
	defer closeIn()
	g, err := linkclust.ReadGraph(r)
	if err != nil {
		return err
	}
	s := linkclust.ComputeStats(g)
	fmt.Fprintf(stdout, "vertices      %d\n", s.Vertices)
	fmt.Fprintf(stdout, "edges         %d\n", s.Edges)
	fmt.Fprintf(stdout, "density       %.6g\n", s.Density)
	fmt.Fprintf(stdout, "K1            %d\n", s.K1)
	fmt.Fprintf(stdout, "K2            %d\n", s.K2)
	fmt.Fprintf(stdout, "K3            %d\n", s.K3)
	fmt.Fprintf(stdout, "max degree    %d\n", s.MaxDegree)
	fmt.Fprintf(stdout, "avg degree    %.6g\n", s.AvgDegree)
	return nil
}

// cmdSimil runs only the initialization phase (Algorithm 1) and caches the
// similarity pair list in the binary format, so repeated clustering runs
// (different coarse parameters, different cuts) skip the most expensive
// phase.
func cmdSimil(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("simil", flag.ContinueOnError)
	var (
		in      = fs.String("in", "-", "input graph (- for stdin)")
		out     = fs.String("out", "", "output pair-list file (required)")
		workers = fs.Int("workers", 1, "worker threads")
		report  = fs.String("report", "", "write a JSON run report (phase timers, counters) to this file")
		timeout = fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("simil: -out is required")
	}
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()
	var rec *linkclust.Recorder
	if *report != "" {
		rec = linkclust.NewRecorder()
		rec.SetMeta("command", "simil")
		rec.SetMeta("workers", strconv.Itoa(*workers))
	}
	reportWritten := false
	defer reportOnError(rec, *report, stdout, &err, &reportWritten)()
	r, closeIn, err := openInput(*in, stdin)
	if err != nil {
		return err
	}
	defer closeIn()
	endRead := rec.Phase("read-graph")
	g, err := linkclust.ReadGraph(r)
	endRead()
	if err != nil {
		return err
	}
	pl, err := core.SimilarityCtx(ctx, g, *workers, rec)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := core.WritePairList(f, pl); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d pairs (%d incident edge pairs) to %s\n",
		len(pl.Pairs), pl.NumIncidentPairs(), *out)
	reportWritten = true
	return writeReport(rec, *report, stdout)
}

func cmdCluster(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	var (
		in       = fs.String("in", "-", "input graph (- for stdin)")
		algo     = fs.String("algo", "sweep", "algorithm: sweep, coarse, nbm, slink")
		workers  = fs.Int("workers", 1, "worker threads for init and the sweep/coarse phases")
		pipeline = fs.Bool("pipeline", false, "sweep: overlap sorting with merging (output unchanged)")
		engine   = fs.String("engine", "auto", "sweep engine: auto, serial, parallel, pipelined, spill (output identical; auto falls back to serial below a measured op-count threshold)")
		spillDir = fs.String("spill-dir", "", "sweep: spill similarity buckets to disk under this directory and sweep out of core (implies -engine spill; empty with -engine spill uses the system temp dir)")
		relabel  = fs.Bool("relabel", false, "run phase I over a degree-relabeled graph for cache locality (output unchanged)")
		stream   = fs.Bool("stream", false, "sweep: replay the input edges through the incremental stream engine (output unchanged)")
		streamB  = fs.Int("stream-batch", 256, "stream: arrivals per ingest batch")
		timeout  = fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
		gamma    = fs.Float64("gamma", 2, "coarse: max cluster-count ratio per level")
		phi      = fs.Int("phi", 100, "coarse: stop below this many clusters")
		delta0   = fs.Int64("delta0", 1000, "coarse: initial chunk size")
		eta0     = fs.Float64("eta0", 8, "coarse: head-mode growth factor")
		comms    = fs.Int("communities", 0, "print the N largest communities at the best-density cut")
		merges   = fs.Bool("merges", false, "print the merge stream")
		newick   = fs.String("newick", "", "write the dendrogram to this file in Newick format")
		pairs    = fs.String("pairs", "", "read the similarity pair list from this file (skips phase I)")
		saveTo   = fs.String("save-merges", "", "write the merge stream to this file in binary format")
		dot      = fs.String("dot", "", "write a Graphviz DOT file with edges colored by best-cut community")
		report   = fs.String("report", "", "write a JSON run report (phase timers, counters, memory deltas) to this file")
		prof     = fs.String("pprof", "", "write CPU/heap profiles to <prefix>.cpu.pprof and <prefix>.heap.pprof")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pipeline && *algo != "sweep" {
		return fmt.Errorf("-pipeline only applies to -algo sweep")
	}
	switch *engine {
	case linkclust.EngineAuto, linkclust.EngineSerial, linkclust.EngineParallel, linkclust.EnginePipelined, linkclust.EngineSpill:
	default:
		return fmt.Errorf("unknown -engine %q (want auto, serial, parallel, pipelined or spill)", *engine)
	}
	if *pipeline && *engine != linkclust.EngineAuto && *engine != linkclust.EnginePipelined {
		return fmt.Errorf("-pipeline conflicts with -engine %s", *engine)
	}
	if *spillDir != "" {
		if *algo != "sweep" {
			return fmt.Errorf("-spill-dir only applies to -algo sweep")
		}
		if *pipeline {
			return fmt.Errorf("-spill-dir conflicts with -pipeline")
		}
		if *engine != linkclust.EngineAuto && *engine != linkclust.EngineSpill {
			return fmt.Errorf("-spill-dir conflicts with -engine %s", *engine)
		}
		*engine = linkclust.EngineSpill
	}
	if *engine == linkclust.EngineSpill && *pipeline {
		return fmt.Errorf("-pipeline conflicts with -engine spill")
	}
	if *stream {
		if *algo != "sweep" {
			return fmt.Errorf("-stream only applies to -algo sweep")
		}
		if *pairs != "" || *relabel || *pipeline {
			return fmt.Errorf("-stream conflicts with -pairs, -relabel and -pipeline (the stream engine maintains phase I incrementally)")
		}
		if *engine != linkclust.EngineAuto {
			return fmt.Errorf("-stream conflicts with -engine %s", *engine)
		}
		if *spillDir != "" {
			return fmt.Errorf("-stream conflicts with -spill-dir")
		}
		if *streamB < 1 {
			return fmt.Errorf("-stream-batch must be at least 1")
		}
	}
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()
	var rec *linkclust.Recorder
	if *report != "" {
		rec = linkclust.NewRecorder()
		rec.SetMeta("command", "cluster")
		rec.SetMeta("algo", *algo)
		rec.SetMeta("workers", strconv.Itoa(*workers))
		rec.SetMeta("pipeline", strconv.FormatBool(*pipeline))
		rec.SetMeta("relabel", strconv.FormatBool(*relabel))
		rec.SetMeta("stream", strconv.FormatBool(*stream))
	}
	reportWritten := false
	defer reportOnError(rec, *report, stdout, &err, &reportWritten)()
	prf, err := startProfiler(*prof)
	if err != nil {
		return err
	}
	defer prf.stop() // backstop for error paths; finish() below on success
	r, closeIn, err := openInput(*in, stdin)
	if err != nil {
		return err
	}
	defer closeIn()
	endRead := rec.Phase("read-graph")
	g, err := linkclust.ReadGraph(r)
	endRead()
	if err != nil {
		return err
	}

	// Phase I: from cache when -pairs is given, otherwise computed here. The
	// stream path skips it — the engine maintains phase I incrementally.
	var pl *linkclust.PairList
	switch {
	case *stream:
		// Nothing to do here: the engine recomputes affected rows per batch.
	case *pairs != "":
		pf, err := os.Open(*pairs)
		if err != nil {
			return err
		}
		endLoad := rec.Phase("load-pairs")
		pl, err = core.ReadPairList(pf)
		endLoad()
		pf.Close()
		if err != nil {
			return err
		}
	case *relabel:
		// Bitwise identical to the plain kernel — see SimilarityRelabeled.
		pl, err = core.SimilarityRelabeledCtx(ctx, g, *workers, rec)
		if err != nil {
			return err
		}
	default:
		pl, err = core.SimilarityCtx(ctx, g, *workers, rec)
		if err != nil {
			return err
		}
	}
	if rec != nil {
		rec.SetMeta("vertices", strconv.Itoa(g.NumVertices()))
		rec.SetMeta("edges", strconv.Itoa(g.NumEdges()))
	}

	var (
		mergeStream []linkclust.Merge
		d           *linkclust.Dendrogram
	)
	switch {
	case *stream:
		// Incremental replay: feed the edges through the stream engine in id
		// order and snapshot at the end. By the engine's differential contract
		// the result is bitwise what -algo sweep computes on the same graph.
		res, err := replayStream(ctx, g, *workers, *streamB, rec)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "algorithm      stream (workers=%d, batch=%d)\n", *workers, *streamB)
		fmt.Fprintf(stdout, "edges          %d\n", g.NumEdges())
		fmt.Fprintf(stdout, "levels         %d\n", res.Levels)
		fmt.Fprintf(stdout, "merges         %d\n", len(res.Merges))
		fmt.Fprintf(stdout, "final clusters %d\n", res.NumClusters())
		mergeStream = res.Merges
		d = linkclust.NewDendrogram(res)
	case *algo == "sweep":
		// The parallel and pipelined engines reproduce the serial merge
		// stream bitwise, so -workers, -engine, and -pipeline only change
		// how the sweep runs, never what it outputs. -pipeline forces the
		// pipelined engine (legacy behavior); otherwise -engine auto picks
		// by the measured op-count threshold.
		sel := *engine
		switch {
		case *pipeline:
			sel = linkclust.EnginePipelined
		case sel == linkclust.EngineAuto:
			sel = core.ChooseSweepEngine(pl.NumIncidentPairs(), *workers, false)
		}
		rec.SetMeta("sweep_engine", sel)
		var res *linkclust.Result
		switch sel {
		case linkclust.EngineSpill:
			res, err = core.SweepSpilledOpts(ctx, g, pl, *workers, core.SpillOptions{Dir: *spillDir}, rec)
		case linkclust.EnginePipelined:
			res, err = core.SweepPipelinedCtx(ctx, g, pl, *workers, rec)
		case linkclust.EngineParallel:
			res, err = core.SweepParallelCtx(ctx, g, pl, *workers, rec)
		default:
			res, err = core.SweepCtx(ctx, g, pl, rec)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "algorithm      sweep (workers=%d, engine=%s)\n", *workers, sel)
		fmt.Fprintf(stdout, "edges          %d\n", g.NumEdges())
		fmt.Fprintf(stdout, "levels         %d\n", res.Levels)
		fmt.Fprintf(stdout, "merges         %d\n", len(res.Merges))
		fmt.Fprintf(stdout, "final clusters %d\n", res.NumClusters())
		mergeStream = res.Merges
		d = linkclust.NewDendrogram(res)
	case *algo == "coarse":
		params := linkclust.CoarseParams{Gamma: *gamma, Phi: *phi, Delta0: *delta0, Eta0: *eta0, Workers: *workers}
		res, err := coarse.SweepCtx(ctx, g, pl, params, rec)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "algorithm      coarse (gamma=%v phi=%d delta0=%d eta0=%v workers=%d)\n",
			*gamma, *phi, *delta0, *eta0, *workers)
		fmt.Fprintf(stdout, "edges          %d\n", g.NumEdges())
		fmt.Fprintf(stdout, "levels         %d\n", res.Levels)
		fmt.Fprintf(stdout, "epochs         %d\n", len(res.Epochs))
		fmt.Fprintf(stdout, "final clusters %d\n", res.FinalClusters)
		fmt.Fprintf(stdout, "pairs processed %.1f%% of %d\n", 100*res.FractionProcessed(), res.TotalOps)
		mergeStream = res.Merges
		d = linkclust.NewCoarseDendrogram(res)
	case *algo == "nbm":
		endStd := rec.Phase("standard-nbm")
		es := baseline.NewEdgeSim(g, pl)
		res, err := baseline.NBM(es)
		endStd()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "algorithm      standard single-linkage (next-best-merge)\n")
		fmt.Fprintf(stdout, "edges          %d\n", g.NumEdges())
		fmt.Fprintf(stdout, "merges         %d\n", len(res.Merges))
		fmt.Fprintf(stdout, "matrix bytes   %d\n", res.MatrixBytes)
		mergeStream = res.Merges
	case *algo == "slink":
		endStd := rec.Phase("standard-slink")
		es := baseline.NewEdgeSim(g, pl)
		res := baseline.SLINK(es)
		endStd()
		fmt.Fprintf(stdout, "algorithm      SLINK\n")
		fmt.Fprintf(stdout, "edges          %d\n", g.NumEdges())
		labels := res.CutSim(1e-12)
		fmt.Fprintf(stdout, "clusters at sim>0: %d\n", countLabels(labels))
		if err := prf.finish(stdout); err != nil {
			return err
		}
		reportWritten = true
		return writeReport(rec, *report, stdout)
	default:
		return fmt.Errorf("unknown algorithm %q (want sweep, coarse, nbm or slink)", *algo)
	}

	if *merges {
		for _, m := range mergeStream {
			fmt.Fprintf(stdout, "level %d: %d, %d -> %d (sim %.6g)\n", m.Level, m.A, m.B, m.Into, m.Sim)
		}
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			return err
		}
		if err := core.WriteMerges(f, g.NumEdges(), mergeStream); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "merge stream written to %s\n", *saveTo)
	}
	if *newick != "" && d != nil {
		f, err := os.Create(*newick)
		if err != nil {
			return err
		}
		leaf := func(e int32) string {
			edge := g.Edge(int(e))
			return g.Label(int(edge.U)) + "-" + g.Label(int(edge.V))
		}
		if err := d.WriteNewick(f, leaf); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "dendrogram written to %s\n", *newick)
	}
	if *dot != "" && d != nil {
		_, _, labels := linkclust.BestCut(g, d)
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		if err := linkclust.WriteDOT(f, g, func(e int32) int32 { return labels[e] }); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "DOT graph written to %s\n", *dot)
	}
	if *comms > 0 && d != nil {
		theta, density, labels := linkclust.BestCut(g, d)
		fmt.Fprintf(stdout, "best cut: sim >= %.6g, partition density %.4f\n", theta, density)
		cs := linkclust.Communities(g, labels)
		for i, c := range cs {
			if i >= *comms {
				fmt.Fprintf(stdout, "... and %d more communities\n", len(cs)-i)
				break
			}
			names := make([]string, 0, len(c.Nodes))
			for _, v := range c.Nodes {
				names = append(names, g.Label(int(v)))
			}
			const maxShown = 12
			if len(names) > maxShown {
				names = append(names[:maxShown], "...")
			}
			fmt.Fprintf(stdout, "community %d: %d links, %d nodes: %s\n",
				i+1, len(c.Edges), len(c.Nodes), strings.Join(names, " "))
		}
	}
	if err := prf.finish(stdout); err != nil {
		return err
	}
	reportWritten = true
	return writeReport(rec, *report, stdout)
}

// replayStream feeds the graph's edges, in id order, through the incremental
// stream engine in fixed-size batches and returns the final snapshot. Replay
// in id order keeps the dynamic graph's edge ids equal to the input's, so the
// result — bitwise identical to a batch sweep by the engine's differential
// contract — drives the same downstream flags (-merges, -newick, -dot,
// -communities) unchanged. Cancellation is honored at every ingest batch and
// inside the snapshot's row/sweep windows.
func replayStream(ctx context.Context, g *linkclust.Graph, workers, batch int, rec *linkclust.Recorder) (*linkclust.Result, error) {
	eng, err := linkclust.NewStream(linkclust.StreamOptions{
		Workers:     workers,
		Recorder:    rec,
		MaxVertices: g.NumVertices(),
	})
	if err != nil {
		return nil, err
	}
	edges := g.Edges()
	arr := make([]linkclust.Arrival, 0, batch)
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		arr = arr[:0]
		for _, e := range edges[lo:hi] {
			arr = append(arr, linkclust.Arrival{U: int(e.U), V: int(e.V), W: e.Weight})
		}
		if err := eng.IngestBatchCtx(ctx, arr); err != nil {
			return nil, err
		}
	}
	return eng.SnapshotCtx(ctx)
}

func countLabels(labels []int32) int {
	set := make(map[int32]struct{}, len(labels))
	for _, l := range labels {
		set[l] = struct{}{}
	}
	return len(set)
}
