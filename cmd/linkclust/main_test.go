package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
)

// pipeline produces a small corpus and graph through the actual subcommands.
func pipeline(t *testing.T) string {
	t.Helper()
	var tweets bytes.Buffer
	if err := run(context.Background(), []string{"synth", "-vocab", "300", "-docs", "800", "-topics", "6", "-seed", "3"}, nil, &tweets); err != nil {
		t.Fatal(err)
	}
	if tweets.Len() == 0 {
		t.Fatal("synth produced nothing")
	}
	var g bytes.Buffer
	if err := run(context.Background(), []string{"graph", "-alpha", "0.3"}, &tweets, &g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(g.String(), "vertices ") {
		t.Fatalf("graph output malformed: %.60s", g.String())
	}
	return g.String()
}

func TestPipelineStats(t *testing.T) {
	gtext := pipeline(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"stats"}, strings.NewReader(gtext), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"vertices", "edges", "K1", "K2", "density"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestClusterSweep(t *testing.T) {
	gtext := pipeline(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"cluster", "-algo", "sweep", "-communities", "3"}, strings.NewReader(gtext), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"algorithm", "levels", "final clusters", "best cut", "community 1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("cluster output missing %q:\n%s", want, out.String())
		}
	}
}

func TestClusterCoarseAndParallel(t *testing.T) {
	gtext := pipeline(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"cluster", "-algo", "coarse", "-phi", "10", "-delta0", "50", "-workers", "2"},
		strings.NewReader(gtext), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pairs processed") {
		t.Fatalf("coarse output missing pairs processed:\n%s", out.String())
	}
}

func TestClusterBaselines(t *testing.T) {
	gtext := pipeline(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"cluster", "-algo", "nbm"}, strings.NewReader(gtext), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matrix bytes") {
		t.Fatalf("nbm output:\n%s", out.String())
	}
	out.Reset()
	if err := run(context.Background(), []string{"cluster", "-algo", "slink"}, strings.NewReader(gtext), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SLINK") {
		t.Fatalf("slink output:\n%s", out.String())
	}
}

func TestClusterMergesFlag(t *testing.T) {
	gtext := pipeline(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"cluster", "-algo", "sweep", "-merges"}, strings.NewReader(gtext), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "level 1:") {
		t.Fatalf("merge stream missing:\n%s", out.String())
	}
}

func TestBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"cluster", "-algo", "quantum"},
		{"graph", "-alpha", "7"},
		{"stats", "-in", "/nonexistent/file"},
	} {
		var out bytes.Buffer
		if err := run(context.Background(), args, strings.NewReader(""), &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestGraphEmptyCorpusFails(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"graph"}, strings.NewReader("\n\n"), &out); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestClusterNewickOutput(t *testing.T) {
	gtext := pipeline(t)
	path := t.TempDir() + "/dendro.nwk"
	var out bytes.Buffer
	err := run(context.Background(), []string{"cluster", "-algo", "sweep", "-newick", path}, strings.NewReader(gtext), &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ";") || !strings.Contains(string(data), "(") {
		t.Fatalf("newick output malformed: %.80s", data)
	}
	if !strings.Contains(out.String(), "dendrogram written") {
		t.Fatalf("missing confirmation:\n%s", out.String())
	}
}

func TestSimilCacheAndReuse(t *testing.T) {
	gtext := pipeline(t)
	dir := t.TempDir()
	gpath := dir + "/graph.txt"
	if err := os.WriteFile(gpath, []byte(gtext), 0o644); err != nil {
		t.Fatal(err)
	}
	ppath := dir + "/pairs.bin"
	var out bytes.Buffer
	if err := run(context.Background(), []string{"simil", "-in", gpath, "-out", ppath, "-workers", "2"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("simil output:\n%s", out.String())
	}

	// Clustering from the cache must match clustering from scratch.
	var fromCache, fromScratch bytes.Buffer
	if err := run(context.Background(), []string{"cluster", "-in", gpath, "-pairs", ppath, "-algo", "sweep"}, nil, &fromCache); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"cluster", "-in", gpath, "-algo", "sweep"}, nil, &fromScratch); err != nil {
		t.Fatal(err)
	}
	if fromCache.String() != fromScratch.String() {
		t.Fatalf("cached pairs changed the result:\n%s\nvs\n%s", fromCache.String(), fromScratch.String())
	}
}

func TestSaveMerges(t *testing.T) {
	gtext := pipeline(t)
	path := t.TempDir() + "/merges.bin"
	var out bytes.Buffer
	if err := run(context.Background(), []string{"cluster", "-algo", "sweep", "-save-merges", path}, strings.NewReader(gtext), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 16 || string(data[:4]) != "LCMG" {
		t.Fatalf("merge file malformed: %x", data[:min(16, len(data))])
	}
}

func TestSimilRequiresOut(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"simil"}, strings.NewReader("vertices 2\nedge 0 1 1\n"), &out); err == nil {
		t.Fatal("simil without -out accepted")
	}
}

func TestClusterDotOutput(t *testing.T) {
	gtext := pipeline(t)
	path := t.TempDir() + "/graph.dot"
	var out bytes.Buffer
	err := run(context.Background(), []string{"cluster", "-algo", "sweep", "-dot", path}, strings.NewReader(gtext), &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph linkclust {") || !strings.Contains(string(data), "--") {
		t.Fatalf("DOT malformed: %.100s", data)
	}
}

func TestAnalyzeFromSavedMerges(t *testing.T) {
	gtext := pipeline(t)
	dir := t.TempDir()
	gpath := dir + "/graph.txt"
	if err := os.WriteFile(gpath, []byte(gtext), 0o644); err != nil {
		t.Fatal(err)
	}
	mpath := dir + "/merges.bin"
	var out bytes.Buffer
	if err := run(context.Background(), []string{"cluster", "-in", gpath, "-algo", "sweep", "-save-merges", mpath}, nil, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), []string{"analyze", "-in", gpath, "-merges", mpath, "-cuts", "5"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sim>=", "clusters", "density", "coverage", "max partition density"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("analyze output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"analyze"}, strings.NewReader("vertices 2\nedge 0 1 1\n"), &out); err == nil {
		t.Fatal("analyze without -merges accepted")
	}
	if err := run(context.Background(), []string{"analyze", "-merges", "/nonexistent"}, strings.NewReader("vertices 2\nedge 0 1 1\n"), &out); err == nil {
		t.Fatal("missing merges file accepted")
	}
}

func TestGraphWorkersFlagMatchesSerial(t *testing.T) {
	var tweets bytes.Buffer
	if err := run(context.Background(), []string{"synth", "-vocab", "200", "-docs", "400", "-topics", "4", "-seed", "8"}, nil, &tweets); err != nil {
		t.Fatal(err)
	}
	raw := tweets.String()
	var serial, parallel bytes.Buffer
	if err := run(context.Background(), []string{"graph", "-alpha", "0.4"}, strings.NewReader(raw), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"graph", "-alpha", "0.4", "-workers", "3"}, strings.NewReader(raw), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatal("parallel graph construction changed the output")
	}
}

func TestClusterPipelineFlagMatchesPlain(t *testing.T) {
	gtext := pipeline(t)
	dir := t.TempDir()
	plain := dir + "/plain.bin"
	piped := dir + "/piped.bin"
	var out bytes.Buffer
	if err := run(context.Background(), []string{"cluster", "-algo", "sweep", "-save-merges", plain}, strings.NewReader(gtext), &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err := run(context.Background(), []string{"cluster", "-algo", "sweep", "-pipeline", "-workers", "4", "-save-merges", piped},
		strings.NewReader(gtext), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pipelined") {
		t.Fatalf("pipelined run not labeled:\n%s", out.String())
	}
	a, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(piped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("-pipeline changed the merge stream")
	}
}

func TestClusterPipelineFlagRequiresSweep(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"cluster", "-algo", "coarse", "-pipeline"}, strings.NewReader("vertices 2\nedge 0 1 1\n"), &out)
	if err == nil {
		t.Fatal("-pipeline accepted with -algo coarse")
	}
}

// TestClusterTimeoutWritesPartialReport exercises the -timeout flag: an
// already-expired deadline must abort the run with the context's error, and
// the run report must still be written, tagged with that error.
func TestClusterTimeoutWritesPartialReport(t *testing.T) {
	gtext := pipeline(t)
	rpath := t.TempDir() + "/run.json"
	var out bytes.Buffer
	err := run(context.Background(),
		[]string{"cluster", "-algo", "sweep", "-timeout", "1ns", "-report", rpath},
		strings.NewReader(gtext), &out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	data, rerr := os.ReadFile(rpath)
	if rerr != nil {
		t.Fatalf("partial report not written: %v", rerr)
	}
	if !strings.Contains(string(data), "deadline exceeded") {
		t.Fatalf("partial report missing error tag:\n%s", data)
	}
}

// TestSimilTimeout covers the same flag on the simil subcommand.
func TestSimilTimeout(t *testing.T) {
	gtext := pipeline(t)
	ppath := t.TempDir() + "/pairs.bin"
	var out bytes.Buffer
	err := run(context.Background(),
		[]string{"simil", "-out", ppath, "-timeout", "1ns"},
		strings.NewReader(gtext), &out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestClusterCanceledContext models SIGINT: the signal context arrives
// already canceled and the run must unwind with context.Canceled.
func TestClusterCanceledContext(t *testing.T) {
	gtext := pipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := run(ctx, []string{"cluster", "-algo", "sweep", "-workers", "4"}, strings.NewReader(gtext), &out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestInterruptedRunReportCompleteJSON pins the SIGINT report contract: by
// the time run() returns on the signal path — the moment main is first
// allowed to raise exit code 130 — the partial run report must already be
// a complete, parseable JSON document tagged with the interrupting error.
// (The old main exited through a path that could cross the report writer's
// defers; run() returning is now the join point.)
func TestInterruptedRunReportCompleteJSON(t *testing.T) {
	gtext := pipeline(t)
	rpath := t.TempDir() + "/interrupted.json"
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // SIGINT already delivered
	var out bytes.Buffer
	err := run(ctx, []string{"cluster", "-algo", "sweep", "-workers", "4", "-report", rpath},
		strings.NewReader(gtext), &out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	data, rerr := os.ReadFile(rpath)
	if rerr != nil {
		t.Fatalf("partial report not flushed before run returned: %v", rerr)
	}
	var rep struct {
		Schema string            `json:"schema"`
		Meta   map[string]string `json:"meta"`
	}
	if uerr := json.Unmarshal(data, &rep); uerr != nil {
		t.Fatalf("interrupted run left malformed report JSON: %v\n%s", uerr, data)
	}
	if rep.Schema != "linkclust/run-report/v1" {
		t.Fatalf("report schema = %q", rep.Schema)
	}
	if !strings.Contains(rep.Meta["error"], "canceled") {
		t.Fatalf("report meta.error = %q, want the cancellation tag", rep.Meta["error"])
	}
	// The atomic temp file must not linger next to the report.
	if _, serr := os.Stat(rpath + ".tmp"); !os.IsNotExist(serr) {
		t.Fatalf("temp report file left behind: %v", serr)
	}
}
