package main

// Kill-and-restart differential harness: builds the real linkclustd binary,
// runs it against a state directory with a deterministic fault armed through
// LINKCLUSTD_FAULT, lets the fault SIGKILL the process at an exact
// persistence operation, restarts a clean daemon against the same directory,
// and asserts the recovery invariants of DESIGN.md §11 — recovered jobs
// finish, served merge streams are bitwise identical to an uninterrupted
// control run computed in-process, idempotency keys still map to the original
// job, and the janitor leaves no temp files behind.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"linkclust"
	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

// --- binary build (once per test-binary run) --------------------------------

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

func daemonBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "linkclustd-bin-")
		if buildErr != nil {
			return
		}
		out, err := exec.Command("go", "build", "-o", filepath.Join(buildDir, "linkclustd"), ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	t.Cleanup(func() {}) // keep the dir for the whole run; TestMain removes it
	return filepath.Join(buildDir, "linkclustd")
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

// --- daemon subprocess ------------------------------------------------------

type daemon struct {
	cmd   *exec.Cmd
	url   string
	waitC chan error
	logs  *syncBuffer
}

// startDaemon launches the built binary on an ephemeral port with the given
// state dir and extra flags; env entries (e.g. LINKCLUSTD_FAULT=...) are
// appended to the inherited environment.
func startDaemon(t *testing.T, stateDir string, extraArgs []string, env ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-state-dir", stateDir}, extraArgs...)
	cmd := exec.Command(daemonBin(t), args...)
	cmd.Env = append(os.Environ(), env...)
	logs := &syncBuffer{}
	cmd.Stderr = logs
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, waitC: make(chan error, 1), logs: logs}
	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			logs.Write([]byte(line + "\n"))
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addrC <- m[1]:
				default:
				}
			}
		}
	}()
	go func() { d.waitC <- cmd.Wait() }()
	select {
	case addr := <-addrC:
		d.url = "http://" + addr
	case err := <-d.waitC:
		t.Fatalf("daemon exited before listening: %v\n%s", err, logs.String())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never reported its address\n%s", logs.String())
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		select {
		case <-d.waitC:
		case <-time.After(5 * time.Second):
		}
	})
	return d
}

// waitExit blocks until the daemon process exits and returns cmd.Wait's error
// (non-nil for a SIGKILLed process, nil for a clean drain).
func (d *daemon) waitExit(t *testing.T) error {
	t.Helper()
	select {
	case err := <-d.waitC:
		d.waitC <- err // allow repeat calls / the cleanup to re-read
		return err
	case <-time.After(60 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("daemon did not exit\n%s", d.logs.String())
		return nil
	}
}

// shutdown SIGTERMs the daemon and requires a clean exit.
func (d *daemon) shutdown(t *testing.T) {
	t.Helper()
	d.cmd.Process.Signal(syscall.SIGTERM)
	if err := d.waitExit(t); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v\n%s", err, d.logs.String())
	}
}

// waitReady polls /readyz until it answers 200 (connection errors included in
// the wait: the listener may not be up yet on a fresh start).
func (d *daemon) waitReady(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(d.url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready\n%s", d.logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- HTTP helpers -----------------------------------------------------------

type jobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Error  string `json:"error"`
}

// submitJob POSTs a job; connection errors are returned (not fatal) because
// several scenarios kill the daemon inside the submission path.
func (d *daemon) submitJob(graphText string, options map[string]any, idemKey string) (int, jobStatus, error) {
	body, _ := json.Marshal(map[string]any{"graph": graphText, "options": options})
	req, _ := http.NewRequest("POST", d.url+"/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, jobStatus{}, err
	}
	defer resp.Body.Close()
	var st jobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return resp.StatusCode, st, nil
}

// pollDone polls the job until a terminal state and requires "done".
func (d *daemon) pollDone(t *testing.T, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(d.url + "/jobs/" + id)
		if err != nil {
			t.Fatalf("GET /jobs/%s: %v", id, err)
		}
		var st jobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		switch st.State {
		case "done":
			return st
		case "failed", "canceled":
			t.Fatalf("job %s: %s (%s)\n%s", id, st.State, st.Error, d.logs.String())
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (d *daemon) merges(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.url + "/jobs/" + id + "/merges")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET merges = %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func (d *daemon) metrics(t *testing.T) map[string]int64 {
	t.Helper()
	resp, err := http.Get(d.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// --- control oracle ---------------------------------------------------------

// crashGraph renders a deterministic random graph in the text format.
func crashGraph(t *testing.T, n int, seed uint64) string {
	t.Helper()
	g := graph.ErdosRenyi(n, 0.15, rng.New(seed))
	var buf bytes.Buffer
	if err := linkclust.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// controlMerges computes, in-process and uninterrupted, the exact LCMG bytes
// the daemon must serve for a fine-grained sweep over text.
func controlMerges(t *testing.T, text string) []byte {
	t.Helper()
	g, err := linkclust.ReadGraph(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	pl := linkclust.Similarity(g)
	res, err := linkclust.SweepParallel(g, pl, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.WriteMerges(&buf, g.NumEdges(), res.Merges); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func requireSameMerges(t *testing.T, got, want []byte, label string) {
	t.Helper()
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: served merges differ from control (%d vs %d bytes, sha %x vs %x)",
			label, len(got), len(want), sha256.Sum256(got), sha256.Sum256(want))
	}
}

// assertNoTemps fails if any .tmp file survives under the state dir — the
// startup janitor must have collected every orphan.
func assertNoTemps(t *testing.T, stateDir string) {
	t.Helper()
	filepath.WalkDir(stateDir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".tmp") {
			t.Errorf("orphaned temp file survived restart: %s", path)
		}
		return nil
	})
}

// --- scenarios --------------------------------------------------------------

// TestCrashAtFirstJournalAppend kills the daemon at the very first journal
// write — the submit record of the first job. The client's POST dies with the
// process; a restart must come up clean (nothing to replay), accept the
// resubmission, and produce the control merge stream.
func TestCrashAtFirstJournalAppend(t *testing.T) {
	state := t.TempDir()
	text := crashGraph(t, 60, 101)
	control := controlMerges(t, text)

	d := startDaemon(t, state, nil, "LINKCLUSTD_FAULT=journal-append:1:kill")
	d.waitReady(t)
	if _, _, err := d.submitJob(text, nil, ""); err == nil {
		// The fault fires inside the submission path; depending on kernel
		// timing the response may or may not make it out. Either is fine —
		// what matters is that the process dies and the restart is clean.
		t.Log("submission response escaped before the kill")
	}
	if err := d.waitExit(t); err == nil {
		t.Fatal("daemon exited cleanly, expected SIGKILL via fault")
	}

	d2 := startDaemon(t, state, nil)
	d2.waitReady(t)
	if got := d2.metrics(t)["journal_records_replayed"]; got != 0 {
		t.Fatalf("journal_records_replayed = %d after pre-append kill, want 0", got)
	}
	code, st, err := d2.submitJob(text, nil, "")
	if err != nil || (code != http.StatusAccepted && code != http.StatusOK) {
		t.Fatalf("resubmit after restart = %d, %v", code, err)
	}
	st = d2.pollDone(t, st.ID)
	requireSameMerges(t, d2.merges(t, st.ID), control, "post-restart run")
	assertNoTemps(t, state)
	d2.shutdown(t)
}

// TestCrashAtDoneRecord kills the daemon while it appends the job's done
// record — after the result entry hit disk. Replay sees an interrupted job
// whose durable result validates and must re-serve it, bitwise, under the
// original job id, without recomputing.
func TestCrashAtDoneRecord(t *testing.T) {
	state := t.TempDir()
	text := crashGraph(t, 60, 102)
	control := controlMerges(t, text)

	// -checkpoint-ops=-1 disables checkpoint records, making journal-append
	// ordinals exact: 1 = submit, 2 = start, 3 = done.
	d := startDaemon(t, state, []string{"-checkpoint-ops", "-1", "-concurrency", "1"},
		"LINKCLUSTD_FAULT=journal-append:3:kill")
	d.waitReady(t)
	code, st, err := d.submitJob(text, nil, "")
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit = %d, %v", code, err)
	}
	if err := d.waitExit(t); err == nil {
		t.Fatal("daemon exited cleanly, expected SIGKILL at done-record append")
	}

	d2 := startDaemon(t, state, nil)
	d2.waitReady(t)
	rst := d2.pollDone(t, st.ID)
	if !rst.Cached {
		t.Errorf("recovered job not served from durable result (cached=false)")
	}
	requireSameMerges(t, d2.merges(t, st.ID), control, "recovered result")
	assertNoTemps(t, state)
	d2.shutdown(t)
}

// TestCrashMidCheckpointResumes arms the kill on the second checkpoint write
// of a windowed-parallel sweep (cache-store-write ordinals: 1 = graph blob,
// 2 = pair list, 3 = first checkpoint, 4 = second checkpoint). The restart
// must re-enqueue the job, resume it from the deepest journaled checkpoint,
// and still serve the control merge stream bitwise.
func TestCrashMidCheckpointResumes(t *testing.T) {
	state := t.TempDir()
	// Big enough that the sweep spans many 8192-op windows — each window
	// boundary is a checkpoint at -checkpoint-ops=1, so the fourth cache
	// write lands squarely mid-sweep.
	text := crashGraph(t, 300, 103)
	control := controlMerges(t, text)

	d := startDaemon(t, state, []string{"-checkpoint-ops", "1", "-concurrency", "1"},
		"LINKCLUSTD_FAULT=cache-store-write:4:kill")
	d.waitReady(t)
	code, st, err := d.submitJob(text, map[string]any{"engine": "parallel", "workers": 2}, "")
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit = %d, %v", code, err)
	}
	if err := d.waitExit(t); err == nil {
		t.Fatal("daemon exited cleanly, expected SIGKILL at second checkpoint write")
	}

	d2 := startDaemon(t, state, []string{"-checkpoint-ops", "1", "-concurrency", "1"})
	d2.waitReady(t)
	d2.pollDone(t, st.ID)
	requireSameMerges(t, d2.merges(t, st.ID), control, "resumed sweep")
	m := d2.metrics(t)
	if m["jobs_recovered"] < 1 {
		t.Errorf("jobs_recovered = %d, want >= 1", m["jobs_recovered"])
	}
	if m["jobs_resumed_from_checkpoint"] < 1 {
		t.Errorf("jobs_resumed_from_checkpoint = %d, want >= 1", m["jobs_resumed_from_checkpoint"])
	}
	assertNoTemps(t, state)
	d2.shutdown(t)
}

// TestKillMidDrain interrupts a drain: SIGTERM while a job runs (the drain
// cancels it without a terminal journal record), then SIGKILL shortly after
// so the drain itself may be cut down mid-flight. Whichever way the process
// dies, the restart must re-run the job to completion with control output.
func TestKillMidDrain(t *testing.T) {
	state := t.TempDir()
	text := crashGraph(t, 300, 104)
	control := controlMerges(t, text)

	d := startDaemon(t, state, []string{"-checkpoint-ops", "1", "-concurrency", "1"})
	d.waitReady(t)
	code, st, err := d.submitJob(text, map[string]any{"engine": "parallel", "workers": 2}, "")
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit = %d, %v", code, err)
	}
	d.cmd.Process.Signal(syscall.SIGTERM)
	time.Sleep(20 * time.Millisecond)
	d.cmd.Process.Kill()
	d.waitExit(t)

	d2 := startDaemon(t, state, []string{"-concurrency", "1"})
	d2.waitReady(t)
	d2.pollDone(t, st.ID)
	requireSameMerges(t, d2.merges(t, st.ID), control, "post-drain re-run")
	assertNoTemps(t, state)
	d2.shutdown(t)
}

// TestResultCorruptionRerunsOnRestart completes a job cleanly, flips a byte
// in the durable result entry on disk, and restarts. Replay must treat the
// corrupt entry as a miss — never serve it — and re-run the job to the
// bitwise control output.
func TestResultCorruptionRerunsOnRestart(t *testing.T) {
	state := t.TempDir()
	text := crashGraph(t, 60, 105)
	control := controlMerges(t, text)

	d := startDaemon(t, state, nil)
	d.waitReady(t)
	code, st, err := d.submitJob(text, nil, "")
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit = %d, %v", code, err)
	}
	d.pollDone(t, st.ID)
	d.shutdown(t)

	entries, err := filepath.Glob(filepath.Join(state, "cache", "r-*.lcpe"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("result entries on disk = %v (err %v), want exactly 1", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := startDaemon(t, state, nil)
	d2.waitReady(t)
	rst := d2.pollDone(t, st.ID)
	if rst.Cached {
		t.Error("corrupt result served as cached — must have been recomputed")
	}
	requireSameMerges(t, d2.merges(t, st.ID), control, "recomputed after corruption")
	if got := d2.metrics(t)["persist_corrupt_entries"]; got < 1 {
		t.Errorf("persist_corrupt_entries = %d, want >= 1", got)
	}
	d2.shutdown(t)
}

// TestIdempotencyAcrossRestart submits with an Idempotency-Key, restarts the
// daemon cleanly, and resubmits under the same key: the original job id must
// come back, served from the durable result.
func TestIdempotencyAcrossRestart(t *testing.T) {
	state := t.TempDir()
	text := crashGraph(t, 60, 106)

	d := startDaemon(t, state, nil)
	d.waitReady(t)
	code, st, err := d.submitJob(text, nil, "retry-key-1")
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit = %d, %v", code, err)
	}
	d.pollDone(t, st.ID)
	d.shutdown(t)

	d2 := startDaemon(t, state, nil)
	d2.waitReady(t)
	code, st2, err := d2.submitJob(text, nil, "retry-key-1")
	if err != nil || code != http.StatusOK {
		t.Fatalf("idempotent resubmit = %d, %v", code, err)
	}
	if st2.ID != st.ID {
		t.Fatalf("idempotent resubmit returned job %s, want original %s", st2.ID, st.ID)
	}
	if st2.State != "done" || !st2.Cached {
		t.Fatalf("idempotent resubmit state=%s cached=%v, want done cached", st2.State, st2.Cached)
	}
	d2.shutdown(t)
}
