// Command linkclustd serves link clustering over HTTP: a bounded job queue
// feeding a worker pool that runs the cancellable clustering pipelines over
// shared immutable graphs, with content-addressed caching of similarity pair
// lists and dendrograms (see internal/jobs and DESIGN.md §8).
//
//	linkclustd -addr :8080 -concurrency 2 -queue 32 -mem-budget 2147483648
//
// API:
//
//	POST /jobs              {"graph": "<text format>", "options": {...}}
//	GET  /jobs/{id}         status
//	GET  /jobs/{id}/result  result summary
//	GET  /jobs/{id}/merges  merge stream (LCMG binary)
//	GET  /runreport/{id}    observability run report (JSON)
//	GET  /metrics           counters
//	GET  /healthz           liveness (always 200 while the process serves)
//	GET  /readyz            readiness (503 until startup recovery finishes,
//	                        and again while draining)
//
// With -state-dir the daemon is crash-safe: submissions are journaled,
// caches get a durable on-disk tier, long sweeps checkpoint, and a restart
// against the same directory replays the journal — completed results are
// re-served under their original job ids, interrupted jobs re-run (resuming
// from their deepest checkpoint) and produce bitwise-identical merge
// streams. See DESIGN.md §11.
//
// SIGTERM or SIGINT drains gracefully: the listener stops accepting, new
// submissions get 503, in-flight jobs are cancelled through their contexts,
// and the process exits once every worker goroutine has unwound — partial
// run reports for cancelled jobs stay retrievable until exit. With a state
// dir, drain-interrupted jobs are re-run on the next start.
//
// LINKCLUSTD_FAULT=<point>:<hitN>:<kill|fail> arms one deterministic fault
// injection point (see internal/fault) — the crash harness's interface for
// killing the daemon at an exact persistence operation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"linkclust/internal/fault"
	"linkclust/internal/jobs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkclustd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("linkclustd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		concurrency  = fs.Int("concurrency", 1, "jobs run simultaneously")
		queueDepth   = fs.Int("queue", 16, "max queued jobs (beyond it submissions get 429)")
		jobTimeout   = fs.Duration("job-timeout", 5*time.Minute, "default per-job deadline (0 = none)")
		memBudget    = fs.Int64("mem-budget", 0, "reject submissions while live heap exceeds this many bytes (0 = off)")
		jobMemBudget = fs.Int64("job-mem-budget", 0, "default per-job heap-growth budget in bytes; breach spills the sweep to disk, degrading fine→coarse only if the spill fails (0 = off)")
		spillDir     = fs.String("spill-dir", "", "parent directory for out-of-core spill files (default: system temp dir)")
		cacheEntries = fs.Int("cache", 64, "entries per cache side (pair lists, results; <0 disables)")
		drainWait    = fs.Duration("drain-timeout", 30*time.Second, "max time to wait for the listener to drain on shutdown")
		stateDir     = fs.String("state-dir", "", "state directory for crash-safe persistence: job journal, durable caches, checkpoints (empty = memory-only)")
		ckptOps      = fs.Int("checkpoint-ops", 0, "approx op-count interval between durable sweep checkpoints (0 = default 1<<20 when -state-dir is set; <0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := fault.ArmFromEnv(os.Getenv("LINKCLUSTD_FAULT")); err != nil {
		return err
	}

	m, err := jobs.NewPersistentManager(jobs.Config{
		Concurrency:       *concurrency,
		QueueDepth:        *queueDepth,
		DefaultJobTimeout: *jobTimeout,
		MemBudgetBytes:    *memBudget,
		JobMemBudgetBytes: *jobMemBudget,
		SpillDir:          *spillDir,
		CacheEntries:      *cacheEntries,
		StateDir:          *stateDir,
		CheckpointOps:     *ckptOps,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           jobs.NewHandler(m),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "linkclustd listening on %s (concurrency=%d queue=%d cache=%d)\n",
		ln.Addr(), *concurrency, *queueDepth, *cacheEntries)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		m.Drain()
		return err
	case <-ctx.Done():
	}

	// Graceful drain, manager first: while Drain runs, the listener still
	// answers — new submissions get 503, status and run-report reads keep
	// working, so a client can collect the partial report of its cancelled
	// job. Drain blocks until every worker goroutine has unwound, so exiting
	// after it cannot orphan work. Only then is the listener shut down.
	fmt.Fprintln(stdout, "linkclustd: draining")
	m.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	err = srv.Shutdown(shutdownCtx)
	cancel()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(stdout, "linkclustd: drained cleanly")
	return nil
}
