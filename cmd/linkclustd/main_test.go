package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read the daemon's stdout while run() writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// smokeGraph is a small fixed graph in the text format.
const smokeGraph = "vertices 5\nedge 0 1 1\nedge 1 2 1\nedge 2 0 1\nedge 2 3 0.5\nedge 3 4 1\n"

// TestDaemonSmoke drives the full daemon lifecycle in-process: boot on an
// ephemeral port, submit a job, poll it done, resubmit to hit the result
// cache, then deliver the shutdown signal (context cancellation — exactly
// what SIGTERM triggers through signal.NotifyContext) and require a clean
// drain with no leaked goroutines.
func TestDaemonSmoke(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-concurrency", "2"}, &out)
	}()

	// Wait for the listener line and extract the bound address.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; output: %q", out.String())
		}
		time.Sleep(time.Millisecond)
	}
	url := "http://" + addr

	if resp, err := http.Get(url + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	// Cold submission.
	type status struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Cached bool   `json:"cached"`
		Error  string `json:"error"`
	}
	post := func() (int, status) {
		body, _ := json.Marshal(map[string]any{"graph": smokeGraph})
		resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st status
		json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}
	code, st := post()
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit = %d", code)
	}
	for st.State != "done" {
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job %s: %s", st.State, st.Error)
		}
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%s", url, st.ID))
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
	}

	// Cached resubmission: immediate 200 and no phases in its run report.
	code, st2 := post()
	if code != http.StatusOK || !st2.Cached {
		t.Fatalf("resubmit = %d cached=%v, want 200 cached", code, st2.Cached)
	}
	resp, err := http.Get(fmt.Sprintf("%s/runreport/%s", url, st2.ID))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Phases []struct {
			Path string `json:"path"`
		} `json:"phases"`
	}
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if len(rep.Phases) != 0 {
		t.Fatalf("cached run report has phases %v, want none", rep.Phases)
	}

	// Shutdown signal → clean drain, run() returns nil.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after shutdown signal")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("missing drain confirmation in output: %q", out.String())
	}

	// No goroutine of the daemon survives the drain. (The test's own HTTP
	// client parks keep-alive goroutines; close them so only daemon leaks
	// would show.)
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}
