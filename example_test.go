package linkclust_test

import (
	"fmt"
	"log"

	"linkclust"
)

// twoTriangles builds the smallest graph with overlapping structure: two
// triangles sharing one vertex.
func twoTriangles() *linkclust.Graph {
	b := linkclust.NewLabeledGraphBuilder([]string{"a", "b", "c", "d", "e"})
	b.MustAddEdge(0, 1, 1) // a-b
	b.MustAddEdge(0, 2, 1) // a-c
	b.MustAddEdge(1, 2, 1) // b-c
	b.MustAddEdge(2, 3, 1) // c-d
	b.MustAddEdge(2, 4, 1) // c-e
	b.MustAddEdge(3, 4, 1) // d-e
	return b.Build(nil)
}

// Example demonstrates the basic pipeline: cluster the links of a graph and
// read off the communities at the best partition-density cut.
func Example() {
	g := twoTriangles()
	res, err := linkclust.Cluster(g)
	if err != nil {
		log.Fatal(err)
	}
	d := linkclust.NewDendrogram(res)
	_, density, labels := linkclust.BestCut(g, d)
	comms := linkclust.Communities(g, labels)
	fmt.Printf("communities: %d, partition density: %.2f\n", len(comms), density)
	for _, c := range comms {
		names := ""
		for _, v := range c.Nodes {
			names += g.Label(int(v))
		}
		fmt.Printf("  %d links over %s\n", len(c.Edges), names)
	}
	// Output:
	// communities: 2, partition density: 1.00
	//   3 links over abc
	//   3 links over cde
}

// ExampleNodeMemberships shows the defining feature of link clustering:
// vertices can belong to several communities.
func ExampleNodeMemberships() {
	g := twoTriangles()
	res, _ := linkclust.Cluster(g)
	d := linkclust.NewDendrogram(res)
	_, _, labels := linkclust.BestCut(g, d)
	comms := linkclust.Communities(g, labels)
	memb := linkclust.NodeMemberships(g, comms)
	for v, cs := range memb {
		if len(cs) > 1 {
			fmt.Printf("%s belongs to %d communities\n", g.Label(v), len(cs))
		}
	}
	// Output:
	// c belongs to 2 communities
}

// ExampleComputeStats reports the structural quantities of Theorem 2.
func ExampleComputeStats() {
	g := twoTriangles()
	s := linkclust.ComputeStats(g)
	fmt.Printf("V=%d E=%d K1=%d K2=%d K3=%d\n", s.Vertices, s.Edges, s.K1, s.K2, s.K3)
	// Output:
	// V=5 E=6 K1=10 K2=10 K3=15
}

// ExampleCoarseCluster runs the coarse-grained algorithm, which bounds the
// cluster-merge rate per level and stops below φ clusters.
func ExampleCoarseCluster() {
	g := twoTriangles()
	params := linkclust.DefaultCoarseParams()
	params.Phi = 2
	params.Delta0 = 4
	res, err := linkclust.CoarseCluster(g, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters: %d (processed %.0f%% of incident pairs)\n",
		res.FinalClusters, 100*res.FractionProcessed())
	// Output:
	// clusters: 2 (processed 60% of incident pairs)
}

// ExampleSimilarity inspects the Tanimoto similarities of Algorithm 1.
func ExampleSimilarity() {
	g := twoTriangles()
	pl := linkclust.Similarity(g)
	pl.Sort()
	top := pl.Pairs[0]
	fmt.Printf("most similar vertex pair: %s,%s (%.2f) via %d common neighbors\n",
		g.Label(int(top.U)), g.Label(int(top.V)), top.Sim, len(top.Common))
	// Output:
	// most similar vertex pair: a,b (1.00) via 1 common neighbors
}

// ExampleOverlapModularity scores a recovered cover without ground truth.
func ExampleOverlapModularity() {
	g := twoTriangles()
	cover := linkclust.Cover{{0, 1, 2}, {2, 3, 4}}
	eq, err := linkclust.OverlapModularity(g, cover)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage: %.2f, EQ: %.2f\n", linkclust.Coverage(g, cover), eq)
	// Output:
	// coverage: 1.00, EQ: 0.17
}
