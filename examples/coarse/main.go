// Coarse-grained dendrograms (Section V): when a strict merge-by-merge
// dendrogram is unnecessary, bounding the per-level merge rate by γ and
// stopping below φ clusters processes only a fraction of the incident edge
// pairs — the long tail of the sorted pair list is skipped entirely.
//
// This example runs both the fine-grained and the coarse-grained sweep on
// the same word-association graph and contrasts their work, levels, and
// epoch behaviour (head/tail/rollback/reused, Fig. 5(1)).
//
// Run with: go run ./examples/coarse
package main

import (
	"fmt"
	"log"
	"time"

	"linkclust"
)

func main() {
	cfg := linkclust.DefaultSynthConfig()
	cfg.Vocab = 3000
	cfg.Docs = 12000
	cfg.Topics = 16
	cfg.Seed = 11
	c := linkclust.SynthesizeCorpus(cfg)
	g, err := linkclust.BuildWordGraph(c, 0.3, linkclust.AssocOptions{EdgePermSeed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d words, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// One shared initialization phase; then compare the two sweeps, as
	// the paper's Fig. 5(2) does.
	start := time.Now()
	pl := linkclust.Similarity(g)
	initTime := time.Since(start)

	finePairs := &linkclust.PairList{Pairs: append([]linkclust.Pair(nil), pl.Pairs...)}
	start = time.Now()
	fine, err := linkclust.Sweep(g, finePairs)
	if err != nil {
		log.Fatal(err)
	}
	fineTime := time.Since(start)

	params := linkclust.DefaultCoarseParams()
	params.Phi = 50
	params.Delta0 = 200
	start = time.Now()
	coarse, err := linkclust.CoarseSweep(g, pl, params)
	if err != nil {
		log.Fatal(err)
	}
	coarseTime := time.Since(start)

	fmt.Printf("initialization: %v\n", initTime.Round(time.Millisecond))
	fmt.Printf("fine-grained:   %6d levels, %d incident pairs processed, %v\n",
		fine.Levels, fine.PairsProcessed, fineTime.Round(time.Millisecond))
	fmt.Printf("coarse-grained: %6d levels, %.1f%% of %d incident pairs processed, %v\n\n",
		coarse.Levels, 100*coarse.FractionProcessed(), coarse.TotalOps,
		coarseTime.Round(time.Millisecond))

	kinds := map[string]int{}
	for _, ep := range coarse.Epochs {
		kinds[ep.Kind.String()]++
	}
	fmt.Printf("epoch breakdown: head/fresh=%d tail/fresh=%d rollback=%d reused=%d\n\n",
		kinds["head/fresh"], kinds["tail/fresh"], kinds["rollback"], kinds["reused"])

	fmt.Println("level  clusters  chunk-size  kind")
	for _, ep := range coarse.Epochs {
		if ep.Kind.String() == "rollback" {
			fmt.Printf("  --   %8d  %10d  %s (undone)\n", ep.Clusters, ep.ChunkSize, ep.Kind)
			continue
		}
		fmt.Printf("%5d  %8d  %10d  %s\n", ep.Level, ep.Clusters, ep.ChunkSize, ep.Kind)
	}

	// The coarse dendrogram still supports the same analyses.
	d := linkclust.NewCoarseDendrogram(coarse)
	mid := coarse.Levels / 2
	if mid > 0 {
		labels := d.CutLevel(mid)
		fmt.Printf("\npartition density at level %d: %.4f\n",
			mid, linkclust.PartitionDensity(g, labels))
	}
}
