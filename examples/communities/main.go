// Community recovery on planted ground truth: generate a benchmark graph
// with known overlapping communities (LFR-style), run link clustering, and
// score the recovered node cover with overlapping NMI (Lancichinetti et
// al. 2009). The coarse-grained sweep is scored too, showing that bounding
// the dendrogram's merge rate costs little recovery quality.
//
// Run with: go run ./examples/communities
package main

import (
	"fmt"
	"log"

	"linkclust"
)

func main() {
	cfg := linkclust.DefaultPlantedConfig()
	cfg.Nodes = 300
	cfg.Communities = 10
	cfg.AvgDegree = 14
	cfg.Mu = 0.15
	cfg.OverlapFrac = 0.1
	bench, err := linkclust.GeneratePlanted(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g := bench.Graph
	fmt.Printf("planted benchmark: %d nodes, %d edges, %d communities, μ=%.2f\n",
		g.NumVertices(), g.NumEdges(), cfg.Communities, cfg.Mu)
	overlapping := 0
	for _, m := range bench.Memberships {
		if len(m) > 1 {
			overlapping++
		}
	}
	fmt.Printf("%d nodes belong to two communities\n\n", overlapping)

	// Fine-grained link clustering; scan cuts across the dendrogram and
	// score each against the truth. Partition density (computable without
	// ground truth) should peak near the NMI peak — that is what makes it
	// a usable model-selection criterion.
	res, err := linkclust.Cluster(g)
	if err != nil {
		log.Fatal(err)
	}
	d := linkclust.NewDendrogram(res)
	ths := d.Thresholds()
	fmt.Println("cut scan (fine-grained dendrogram):")
	fmt.Println("  sim>=   clusters  density   NMI")
	bestDensity, bestDensityNMI, bestNMI := -1.0, 0.0, 0.0
	for i := 0; i < len(ths); i += max(1, len(ths)/10) {
		theta := ths[i]
		labels := d.CutSim(theta)
		recovered := significant(linkclust.Communities(g, labels), 3)
		if len(recovered) == 0 {
			continue
		}
		density := linkclust.PartitionDensity(g, labels)
		nmi, err := linkclust.CompareCovers(linkclust.CoverOf(recovered), bench.Cover, g.NumVertices())
		if err != nil {
			continue // degenerate cut (e.g. everything in one community)
		}
		fmt.Printf("  %.3f  %8d  %.4f    %.3f\n", theta, len(recovered), density, nmi)
		if density > bestDensity {
			bestDensity, bestDensityNMI = density, nmi
		}
		if nmi > bestNMI {
			bestNMI = nmi
		}
	}
	fmt.Printf("\nbest achievable NMI over scanned cuts: %.3f\n", bestNMI)
	fmt.Printf("NMI at the maximum-density cut:        %.3f (density %.4f)\n\n",
		bestDensityNMI, bestDensity)

	// Coarse-grained clustering: scan its (much shorter) level sequence
	// the same way.
	params := linkclust.DefaultCoarseParams()
	params.Phi = cfg.Communities
	params.Delta0 = 100
	cres, err := linkclust.CoarseCluster(g, params)
	if err != nil {
		log.Fatal(err)
	}
	cd := linkclust.NewCoarseDendrogram(cres)
	cBestDensity, cBestNMI := -1.0, 0.0
	for level := int32(1); level <= cres.Levels; level++ {
		labels := cd.CutLevel(level)
		recovered := significant(linkclust.Communities(g, labels), 3)
		if len(recovered) == 0 {
			continue
		}
		density := linkclust.PartitionDensity(g, labels)
		nmi, err := linkclust.CompareCovers(linkclust.CoverOf(recovered), bench.Cover, g.NumVertices())
		if err != nil {
			continue
		}
		if density > cBestDensity {
			cBestDensity, cBestNMI = density, nmi
		}
	}
	fmt.Printf("coarse-grained sweep (φ=%d, %d levels, %.1f%% of pairs processed):\n",
		params.Phi, cres.Levels, 100*cres.FractionProcessed())
	fmt.Printf("  NMI at its maximum-density level: %.3f (density %.4f)\n",
		cBestNMI, cBestDensity)
}

// significant keeps communities with more than minLinks links, dropping the
// fragment tail that best-density cuts leave behind.
func significant(comms []linkclust.Community, minLinks int) []linkclust.Community {
	out := comms[:0]
	for _, c := range comms {
		if len(c.Edges) >= minLinks {
			out = append(out, c)
		}
	}
	return out
}
