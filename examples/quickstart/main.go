// Quickstart: cluster the links of a small graph with overlapping
// community structure and print the dendrogram and the communities at the
// best partition-density cut.
//
// The graph is two 4-cliques sharing one vertex — the textbook case where
// node clustering must put the bridge vertex in a single community but link
// clustering correctly reports it as belonging to both.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"linkclust"
)

func main() {
	// Two K4s sharing vertex "d".
	labels := []string{"a", "b", "c", "d", "e", "f", "g"}
	b := linkclust.NewLabeledGraphBuilder(labels)
	clique := func(vs ...int) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				b.MustAddEdge(vs[i], vs[j], 1)
			}
		}
	}
	clique(0, 1, 2, 3) // a b c d
	clique(3, 4, 5, 6) // d e f g
	g := b.Build(nil)

	res, err := linkclust.Cluster(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("dendrogram: %d merges across %d levels\n\n", len(res.Merges), res.Levels)
	for _, m := range res.Merges {
		fmt.Printf("  level %2d: clusters %2d + %2d -> %2d  (similarity %.3f)\n",
			m.Level, m.A, m.B, m.Into, m.Sim)
	}

	d := linkclust.NewDendrogram(res)
	theta, density, cut := linkclust.BestCut(g, d)
	fmt.Printf("\nbest cut: similarity >= %.3f, partition density %.3f\n", theta, density)

	comms := linkclust.Communities(g, cut)
	for i, c := range comms {
		fmt.Printf("community %d (%d links):", i+1, len(c.Edges))
		for _, v := range c.Nodes {
			fmt.Printf(" %s", g.Label(int(v)))
		}
		fmt.Println()
	}

	memb := linkclust.NodeMemberships(g, comms)
	for v, cs := range memb {
		if len(cs) > 1 {
			fmt.Printf("vertex %s overlaps %d communities — the structure link clustering reveals\n",
				g.Label(v), len(cs))
		}
	}
}
