// Multi-core strong scaling (Section VI / Fig. 6): both phases of the
// algorithm run multi-threaded — the initialization phase partitions the
// graph passes across workers and merges per-worker maps hierarchically;
// the coarse-grained sweeping phase replicates array C per worker and
// combines replicas with the corrected merge scheme.
//
// This example sweeps the thread count, reports wall-clock speedups, and
// verifies that every thread count produces the identical clustering.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"linkclust"
)

func main() {
	cfg := linkclust.DefaultSynthConfig()
	cfg.Vocab = 2500
	cfg.Docs = 8000
	cfg.Topics = 16
	cfg.Seed = 5
	c := linkclust.SynthesizeCorpus(cfg)
	g, err := linkclust.BuildWordGraph(c, 0.2, linkclust.AssocOptions{EdgePermSeed: 42})
	if err != nil {
		log.Fatal(err)
	}
	s := linkclust.ComputeStats(g)
	fmt.Printf("graph: %d words, %d edges, K2=%d incident pairs\n", s.Vertices, s.Edges, s.K2)
	fmt.Printf("machine: %d CPU core(s) — speedups saturate at the core count\n\n", runtime.NumCPU())

	threads := []int{1, 2, 4, 6}

	fmt.Println("initialization phase (Algorithm 1, Section VI-A):")
	var baseInit time.Duration
	var refPairs int
	for _, t := range threads {
		start := time.Now()
		pl := linkclust.SimilarityParallel(g, t)
		d := time.Since(start)
		if t == 1 {
			baseInit = d
			refPairs = len(pl.Pairs)
		}
		if len(pl.Pairs) != refPairs {
			log.Fatalf("threads=%d produced %d pairs, want %d", t, len(pl.Pairs), refPairs)
		}
		fmt.Printf("  T=%d: %8v  speedup %.2fx  (%d pairs)\n",
			t, d.Round(time.Millisecond), float64(baseInit)/float64(d), len(pl.Pairs))
	}

	fmt.Println("\ncoarse-grained sweeping phase (Section VI-B):")
	params := linkclust.DefaultCoarseParams()
	params.Phi = 50
	params.Delta0 = 500
	var baseSweep time.Duration
	var refClusters int
	for _, t := range threads {
		params.Workers = t
		start := time.Now()
		res, err := linkclust.CoarseCluster(g, params)
		if err != nil {
			log.Fatal(err)
		}
		d := time.Since(start)
		if t == 1 {
			baseSweep = d
			refClusters = res.FinalClusters
		}
		if res.FinalClusters != refClusters {
			log.Fatalf("threads=%d reached %d clusters, want %d", t, res.FinalClusters, refClusters)
		}
		fmt.Printf("  T=%d: %8v  speedup %.2fx  (%d levels, %d clusters)\n",
			t, d.Round(time.Millisecond), float64(baseSweep)/float64(d),
			res.Levels, res.FinalClusters)
	}

	fmt.Println("\nall thread counts produced identical clusterings ✓")
}
