// Word-association network clustering — the paper's motivating workload.
//
// A synthetic tweet corpus (standing in for the paper's December-2011
// Twitter month) is tokenized, stop-filtered and stemmed; the top fraction
// α of candidate words become vertices with PMI edge weights (Eq. 3); and
// link clustering reveals the topic communities the generator planted,
// including words that belong to several topics at once.
//
// Run with: go run ./examples/wordassoc
package main

import (
	"fmt"
	"log"

	"linkclust"
)

func main() {
	cfg := linkclust.DefaultSynthConfig()
	cfg.Vocab = 2500
	cfg.Docs = 10000
	cfg.Topics = 12
	cfg.Seed = 7
	c := linkclust.SynthesizeCorpus(cfg)
	fmt.Printf("corpus: %d documents\n", c.NumDocs())

	const alpha = 0.25
	g, err := linkclust.BuildWordGraph(c, alpha, linkclust.AssocOptions{EdgePermSeed: 42})
	if err != nil {
		log.Fatal(err)
	}
	s := linkclust.ComputeStats(g)
	fmt.Printf("association graph at α=%.2f: %d words, %d edges, density %.4f\n",
		alpha, s.Vertices, s.Edges, s.Density)
	fmt.Printf("K1=%d vertex pairs, K2=%d incident edge pairs\n\n", s.K1, s.K2)

	res, err := linkclust.ClusterParallel(g, 4)
	if err != nil {
		log.Fatal(err)
	}
	d := linkclust.NewDendrogram(res)
	theta, density, cut := linkclust.BestCut(g, d)
	fmt.Printf("dendrogram: %d merges; best cut at sim >= %.4f (partition density %.4f)\n\n",
		len(res.Merges), theta, density)

	comms := linkclust.Communities(g, cut)
	shown := 0
	for _, com := range comms {
		if len(com.Edges) < 5 {
			continue // skip fragments
		}
		fmt.Printf("community of %d links / %d words:", len(com.Edges), len(com.Nodes))
		for i, v := range com.Nodes {
			if i >= 10 {
				fmt.Printf(" …")
				break
			}
			fmt.Printf(" %s", g.Label(int(v)))
		}
		fmt.Println()
		if shown++; shown >= 8 {
			break
		}
	}

	overlaps := 0
	for _, cs := range linkclust.NodeMemberships(g, comms) {
		if len(cs) > 1 {
			overlaps++
		}
	}
	fmt.Printf("\n%d of %d words belong to more than one community\n", overlaps, g.NumVertices())
}
