package linkclust

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"linkclust/internal/fault"
	"linkclust/internal/persist"
	"linkclust/internal/spill"
)

// Differential fault-injection harness. Each scenario arms exactly one
// registry point, runs the pipeline, and checks two things: the armed fault
// yields a clean, typed error (or, for benign faults, no deviation at all),
// and with every point disarmed the merge stream is bitwise identical to the
// golden hash. Armed state is process-global, so every test brackets itself
// with fault.Reset via t.Cleanup.

func resetFaults(t *testing.T) {
	t.Helper()
	fault.Reset()
	t.Cleanup(fault.Reset)
}

// TestFaultDisarmedMatchesGolden is the harness's control arm: no fault
// armed, every Ctx engine at several worker counts, golden output. Combined
// with the per-fault tests below it establishes that the injection points
// themselves (pure atomic loads when disarmed) do not perturb the schedule.
func TestFaultDisarmedMatchesGolden(t *testing.T) {
	resetFaults(t)
	if n := fault.Armed(); n != 0 {
		t.Fatalf("%d fault points armed at test entry, want 0", n)
	}
	g := goldenGraph(t)
	for _, workers := range []int{1, 4, 8} {
		for _, pipeline := range []bool{false, true} {
			res, err := ClusterCtx(context.Background(), g, ClusterOptions{Workers: workers, Pipeline: pipeline})
			if err != nil {
				t.Fatalf("T=%d pipeline=%v: %v", workers, pipeline, err)
			}
			if got := sha(canonMerges(res)); got != goldenClusterSHA {
				t.Fatalf("T=%d pipeline=%v: hash %s, golden %s", workers, pipeline, got, goldenClusterSHA)
			}
		}
	}
}

// TestFaultWorkerPanic arms the worker-spawn point with a panicking action:
// every engine must surface a *WorkerPanicError carrying the injected value,
// never crash, and never leak the rest of its pool.
func TestFaultWorkerPanic(t *testing.T) {
	g := goldenGraph(t)
	pl := Similarity(g)
	pl.Sort()
	scenarios := []struct {
		name string
		hitN int64
		run  func() error
	}{
		{"similarity", 3, func() error {
			_, err := SimilarityCtx(context.Background(), g, 4, nil)
			return err
		}},
		{"sweep-parallel", 2, func() error {
			_, err := SweepParallelCtx(context.Background(), g, clonePairs(pl), 4, nil)
			return err
		}},
		{"sweep-pipelined", 2, func() error {
			_, err := SweepPipelinedCtx(context.Background(), g, Similarity(g), 4, nil)
			return err
		}},
		{"coarse", 2, func() error {
			_, err := CoarseClusterCtx(context.Background(), g, DefaultCoarseParams(), ClusterOptions{Workers: 4})
			return err
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			resetFaults(t)
			base := runtime.NumGoroutine()
			fault.Arm(fault.WorkerPanic, sc.hitN, func() { panic("injected worker crash") })
			err := sc.run()
			var wpe *WorkerPanicError
			if !errors.As(err, &wpe) {
				t.Fatalf("err = %v, want *WorkerPanicError", err)
			}
			if v, ok := wpe.Value.(string); !ok || !strings.Contains(v, "injected worker crash") {
				t.Fatalf("panic value = %v, want the injected one", wpe.Value)
			}
			if len(wpe.Stack) == 0 {
				t.Fatal("WorkerPanicError carries no stack")
			}
			waitGoroutinesBack(t, base)
		})
	}
}

// clonePairs deep-copies a pair list so panic scenarios (which leave
// contents unspecified) never contaminate a shared fixture.
func clonePairs(pl *PairList) *PairList {
	return &PairList{Pairs: append([]Pair(nil), pl.Pairs...)}
}

// TestFaultSlowProducer arms the pipelined sweep's bucket-sort point with a
// stall: slow must not mean wrong — the merge stream stays golden because
// every scheduling decision is op-count-, not timing-, based.
func TestFaultSlowProducer(t *testing.T) {
	resetFaults(t)
	g := goldenGraph(t)
	stalled := false
	fault.Arm(fault.SlowProducer, 2, func() {
		stalled = true
		// A stall long enough to force consumer waits without slowing the
		// suite: the consumer's stall counters absorb it, the output may not.
		runtime.Gosched()
	})
	res, err := SweepPipelinedCtx(context.Background(), g, Similarity(g), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stalled {
		t.Fatal("slow-producer point never fired (no second bucket?)")
	}
	if got := sha(canonMerges(res)); got != goldenClusterSHA {
		t.Fatalf("hash %s under a stalled producer, golden %s", got, goldenClusterSHA)
	}
}

// TestFaultCancelWindow arms the window-cut point with a context cancel at
// window K: every engine must return context.Canceled — the typed error, not
// a crash or a completed result — at worker counts 1..8.
func TestFaultCancelWindow(t *testing.T) {
	g := goldenGraph(t)
	engines := []struct {
		name string
		run  func(ctx context.Context, workers int) error
	}{
		{"serial", func(ctx context.Context, _ int) error {
			_, err := SweepCtx(ctx, g, Similarity(g), nil)
			return err
		}},
		{"parallel", func(ctx context.Context, workers int) error {
			_, err := SweepParallelCtx(ctx, g, Similarity(g), workers, nil)
			return err
		}},
		{"pipelined", func(ctx context.Context, workers int) error {
			_, err := SweepPipelinedCtx(ctx, g, Similarity(g), workers, nil)
			return err
		}},
		{"coarse", func(ctx context.Context, workers int) error {
			params := DefaultCoarseParams()
			params.Workers = workers
			_, err := CoarseClusterCtx(ctx, g, params, ClusterOptions{})
			return err
		}},
	}
	base := runtime.NumGoroutine()
	for _, e := range engines {
		for workers := 1; workers <= 8; workers++ {
			resetFaults(t)
			ctx, cancel := context.WithCancel(context.Background())
			fault.Arm(fault.CancelWindow, 2, cancel)
			err := e.run(ctx, workers)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s T=%d: err = %v, want context.Canceled", e.name, workers, err)
			}
		}
	}
	waitGoroutinesBack(t, base)
}

// TestFaultMemBreach arms the budget point and walks the full escalation
// ladder. First rung: a breach alone makes ClusterCtx spill the pair list
// to disk and sweep out of core — the result stays bitwise golden and the
// spill counter records the reroute. Second rung: a breach whose spill
// write also fails degrades fine→coarse, recording both counters. A
// read-phase spill failure cannot degrade (the pair list is already gone)
// and surfaces its typed error instead.
func TestFaultMemBreach(t *testing.T) {
	resetFaults(t)
	g := goldenGraph(t)
	rec := NewRecorder()
	// A budget far above anything this run allocates: only the injected
	// breach can trigger the ladder, so the test is deterministic on any
	// host.
	fault.Arm(fault.MemBreach, 1, nil)
	res, err := ClusterCtx(context.Background(), g, ClusterOptions{
		Workers:        4,
		Recorder:       rec,
		MemBudgetBytes: 1 << 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter(CtrMemBudgetSpills); got != 1 {
		t.Fatalf("%s = %d, want 1", CtrMemBudgetSpills, got)
	}
	if got := rec.Counter(CtrMemBudgetDegrades); got != 0 {
		t.Fatalf("%s = %d after a successful spill, want 0", CtrMemBudgetDegrades, got)
	}
	if got := sha(canonMerges(res)); got != goldenClusterSHA {
		t.Fatalf("spilled hash %s, golden %s — the out-of-core reroute changed the output", got, goldenClusterSHA)
	}
	if rec.Counter(CtrSpillBuckets) < 1 || rec.Counter(CtrSpillBytesWritten) < 1 {
		t.Fatal("spilled run recorded no spill activity")
	}

	// Second rung: the spill's block write fails (deterministic ENOSPC), so
	// the run degrades to the coarse algorithm.
	fault.Reset()
	fault.Arm(fault.MemBreach, 1, nil)
	fault.Arm(fault.SpillWrite, 1, nil)
	recD := NewRecorder()
	resD, err := ClusterCtx(context.Background(), g, ClusterOptions{
		Workers:        4,
		Recorder:       recD,
		MemBudgetBytes: 1 << 50,
	})
	fault.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if got := recD.Counter(CtrMemBudgetSpills); got != 1 {
		t.Fatalf("%s = %d on the degrade rung, want 1 (the spill was attempted)", CtrMemBudgetSpills, got)
	}
	if got := recD.Counter(CtrMemBudgetDegrades); got != 1 {
		t.Fatalf("%s = %d, want 1", CtrMemBudgetDegrades, got)
	}
	if len(resD.Merges) == 0 || resD.NumClusters() <= 0 {
		t.Fatalf("degraded run produced no clustering: %d merges", len(resD.Merges))
	}
	// The coarse path must actually differ from the fine-grained sweep's
	// level structure (one level per chunk, not per threshold) — proof the
	// degrade really rerouted rather than relabeled.
	fine, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	if resD.Levels >= fine.Levels {
		t.Fatalf("degraded run has %d levels, fine-grained %d — expected coarser", resD.Levels, fine.Levels)
	}

	// Read-phase failure: the pair list was released to disk, so there is
	// nothing left to degrade onto — the typed error surfaces.
	fault.Arm(fault.MemBreach, 1, nil)
	fault.Arm(fault.SpillRead, 1, nil)
	_, err = ClusterCtx(context.Background(), g, ClusterOptions{
		Workers:        4,
		MemBudgetBytes: 1 << 50,
	})
	fault.Reset()
	if !errors.Is(err, spill.ErrChecksum) {
		t.Fatalf("read-phase failure err = %v, want spill.ErrChecksum", err)
	}

	// Without the injected breach the same options take the fine-grained
	// path and stay golden.
	rec2 := NewRecorder()
	res2, err := ClusterCtx(context.Background(), g, ClusterOptions{
		Workers:        4,
		Recorder:       rec2,
		MemBudgetBytes: 1 << 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec2.Counter(CtrMemBudgetDegrades) + rec2.Counter(CtrMemBudgetSpills); got != 0 {
		t.Fatalf("ladder counters = %d without a breach, want 0", got)
	}
	if got := sha(canonMerges(res2)); got != goldenClusterSHA {
		t.Fatalf("hash %s with an unbreached budget, golden %s", got, goldenClusterSHA)
	}
}

// streamArrivals converts a graph's edges, in id order, into stream
// arrivals — the replay that makes a stream engine's accumulated graph
// bitwise identical to the original (the dynamic graph assigns the same
// edge ids the Builder did).
func streamArrivals(g *Graph) []Arrival {
	edges := g.Edges()
	arr := make([]Arrival, 0, len(edges))
	for _, e := range edges {
		arr = append(arr, Arrival{U: int(e.U), V: int(e.V), W: e.Weight})
	}
	return arr
}

// TestFaultMatrix is the CI smoke: every registered point armed once with a
// benign action against the path that passes it — the run must complete
// golden (a benign action changes nothing) and the hit counter must show the
// point actually fired. The spill points are the exception: for them the
// firing IS the fault (an injected write failure / checksum mismatch), so
// the armed run must fail with the typed error and the disarmed rerun must
// be golden.
func TestFaultMatrix(t *testing.T) {
	g := goldenGraph(t)
	// MemBreach fires only when a budget is set; CancelWindow/SlowProducer/
	// WorkerPanic all fire on the pipelined parallel path; the stream points
	// fire on the incremental path (a whole-graph ingest hits the ingest
	// point at the batch head, and the first snapshot — no checkpoints yet,
	// so the replay fraction is 1 — takes the compaction fallback); the
	// spill points fire on the out-of-core sweep.
	for _, p := range fault.Points() {
		t.Run(p.String(), func(t *testing.T) {
			resetFaults(t)
			fired := false
			fault.Arm(p, 1, func() { fired = true })
			var res *Result
			var err error
			switch p {
			case fault.JournalAppend, fault.CacheStoreWrite, fault.CacheStoreLoad:
				// The persistence points live in the daemon's state layer, not
				// the clustering pipelines — drive the persist primitives
				// directly. Like the spill points, firing IS the fault (a typed
				// write failure, or a read treated as corrupt), and the
				// disarmed rerun must round-trip cleanly.
				testPersistFaultPoint(t, p, &fired)
				return
			case fault.SpillWrite, fault.SpillRead:
				want := spill.ErrWriteFault
				if p == fault.SpillRead {
					want = spill.ErrChecksum
				}
				if _, err = SweepSpilledCtx(context.Background(), g, Similarity(g), 4, "", nil); !errors.Is(err, want) {
					t.Fatalf("armed %s: err = %v, want %v", p, err, want)
				}
				if !fired {
					t.Fatalf("point %s never fired on the out-of-core sweep", p)
				}
				fault.Reset()
				res, err = SweepSpilledCtx(context.Background(), g, Similarity(g), 4, "", nil)
				if err != nil {
					t.Fatalf("disarmed rerun: %v", err)
				}
				if got := sha(canonMerges(res)); got != goldenClusterSHA {
					t.Fatalf("disarmed hash %s, golden %s", got, goldenClusterSHA)
				}
				return
			case fault.StreamIngest, fault.StreamCompact:
				var eng *Stream
				eng, err = NewStream(StreamOptions{Workers: 4, MaxVertices: g.NumVertices()})
				if err != nil {
					t.Fatal(err)
				}
				if err = eng.IngestBatch(streamArrivals(g)); err != nil {
					t.Fatal(err)
				}
				res, err = eng.Snapshot()
			default:
				opts := ClusterOptions{Workers: 4, Pipeline: true}
				if p == fault.MemBreach {
					opts.MemBudgetBytes = 1 << 50
				}
				res, err = ClusterCtx(context.Background(), g, opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !fired {
				t.Fatalf("point %s never fired on its pipeline", p)
			}
			if p != fault.MemBreach { // the benign scenarios stay golden
				if got := sha(canonMerges(res)); got != goldenClusterSHA {
					t.Fatalf("hash %s with benign %s armed, golden %s", got, p, goldenClusterSHA)
				}
			}
		})
	}
}

// testPersistFaultPoint runs the armed-then-disarmed contract for one of the
// state-layer points against a scratch state directory: the armed operation
// fails with the typed error (ErrWriteFault on the write points, ErrCorrupt
// on the load point) without corrupting what is already on disk, and after
// fault.Reset the same operation succeeds and round-trips.
func testPersistFaultPoint(t *testing.T, p fault.Point, fired *bool) {
	t.Helper()
	dir, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	payload := []byte("fault-matrix payload")

	switch p {
	case fault.JournalAppend:
		rec := persist.Record{Op: persist.OpSubmit, ID: "j1", AtUnixMS: 1}
		j, _, _, err := dir.OpenJournal()
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(rec); !errors.Is(err, persist.ErrWriteFault) {
			t.Fatalf("armed append err = %v, want ErrWriteFault", err)
		}
		j.Close()
		if !*fired {
			t.Fatal("journal-append point never fired")
		}
		fault.Reset()
		j2, recs, _, err := dir.OpenJournal()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 0 {
			t.Fatalf("faulted append left %d records behind", len(recs))
		}
		if err := j2.Append(rec); err != nil {
			t.Fatalf("disarmed append: %v", err)
		}
		j2.Close()
		j3, recs, _, err := dir.OpenJournal()
		if err != nil {
			t.Fatal(err)
		}
		defer j3.Close()
		if len(recs) != 1 || recs[0].ID != "j1" {
			t.Fatalf("disarmed append replays %+v, want the one record", recs)
		}
	case fault.CacheStoreWrite:
		if err := dir.WriteEntry(persist.EntryPairs, "m", payload); !errors.Is(err, persist.ErrWriteFault) {
			t.Fatalf("armed write err = %v, want ErrWriteFault", err)
		}
		if !*fired {
			t.Fatal("cache-store-write point never fired")
		}
		fault.Reset()
		if err := dir.WriteEntry(persist.EntryPairs, "m", payload); err != nil {
			t.Fatalf("disarmed write: %v", err)
		}
		got, err := dir.ReadEntry(persist.EntryPairs, "m")
		if err != nil || string(got) != string(payload) {
			t.Fatalf("round-trip = %q, %v", got, err)
		}
	case fault.CacheStoreLoad:
		if err := dir.WriteEntry(persist.EntryPairs, "m", payload); err != nil {
			t.Fatal(err)
		}
		if _, err := dir.ReadEntry(persist.EntryPairs, "m"); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("armed read err = %v, want ErrCorrupt", err)
		}
		if !*fired {
			t.Fatal("cache-store-load point never fired")
		}
		fault.Reset()
		got, err := dir.ReadEntry(persist.EntryPairs, "m")
		if err != nil || string(got) != string(payload) {
			t.Fatalf("disarmed read = %q, %v (the armed read must not have damaged the entry)", got, err)
		}
	}
}

// TestFaultStreamCancel arms the stream points with a context cancel. The
// ingest point fires before any mutation, so a cancelled ingest must leave
// the graph untouched; the compact point fires after the trigger decision
// but before any batch work, so a cancelled snapshot must leave the engine
// retryable. Either way, disarming and retrying produces the golden
// clustering, and no goroutine outlives the cancelled call.
func TestFaultStreamCancel(t *testing.T) {
	g := goldenGraph(t)
	arr := streamArrivals(g)

	t.Run("ingest", func(t *testing.T) {
		resetFaults(t)
		base := runtime.NumGoroutine()
		eng, err := NewStream(StreamOptions{Workers: 4, MaxVertices: g.NumVertices()})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		fault.Arm(fault.StreamIngest, 1, cancel)
		if err := eng.IngestBatchCtx(ctx, arr); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if got := eng.Graph().NumEdges(); got != 0 {
			t.Fatalf("cancelled ingest applied %d edges, want 0", got)
		}
		fault.Reset()
		if err := eng.IngestBatch(arr); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if got := sha(canonMerges(res)); got != goldenClusterSHA {
			t.Fatalf("hash %s after retried ingest, golden %s", got, goldenClusterSHA)
		}
		waitGoroutinesBack(t, base)
	})

	t.Run("compact", func(t *testing.T) {
		resetFaults(t)
		base := runtime.NumGoroutine()
		eng, err := NewStream(StreamOptions{
			Workers:     4,
			MaxVertices: g.NumVertices(),
			// Any replay triggers compaction, so the armed point is reached
			// on the very first snapshot.
			CompactDirtyFraction: 1e-12,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.IngestBatch(arr); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		fault.Arm(fault.StreamCompact, 1, cancel)
		if _, err := eng.SnapshotCtx(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		fault.Reset()
		res, err := eng.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if got := sha(canonMerges(res)); got != goldenClusterSHA {
			t.Fatalf("hash %s after retried snapshot, golden %s", got, goldenClusterSHA)
		}
		waitGoroutinesBack(t, base)
	})
}
