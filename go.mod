module linkclust

go 1.24
