package linkclust

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"linkclust/internal/core"
)

// Golden hashes for the fixed-seed word-association pipeline below. They pin
// the exact clustering output (merge stream, bit for bit) and the
// worker-invariant RunReport counters across every engine. If an intentional
// algorithm change moves them, rerun the test and update the constants from
// the failure message — any other trigger is a regression in determinism.
const (
	goldenClusterSHA  = "acd8ee08ada0f030f60c9c94cac36a65c66d1d94744f3e18fadb6a8020d86e8c"
	goldenCountersSHA = "427038e2c059a2de3862364b8c74ccbdf663850178c361d8c5fa315a1ba2b156"
	// goldenStreamCountersSHA pins the stream.* counters of the canonical
	// golden-graph replay (batches of 512, a snapshot every fourth batch):
	// like the engine counters above they are pure functions of the arrival
	// sequence and batching, never of the worker count.
	goldenStreamCountersSHA = "2a2b8be5d1b7970b6bdfc8b81808e2e708efd9c794e812852ae03fe0053417ce"
)

// goldenGraph builds the fixed-seed word-association network the golden
// hashes are pinned to: the default synthetic corpus scaled down, α = 0.5,
// edge ids permuted with the default seed.
func goldenGraph(t *testing.T) *Graph {
	t.Helper()
	cfg := DefaultSynthConfig()
	cfg.Vocab = 800
	cfg.Docs = 1500
	cfg.Topics = 8
	g, err := BuildWordGraph(SynthesizeCorpus(cfg), 0.5, AssocOptions{EdgePermSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// canonMerges serializes a fine-grained result canonically: one line per
// merge carrying the exact float bits of its similarity, then the summary
// counts. Bitwise-equal results — and only those — share a serialization.
func canonMerges(res *Result) string {
	var b strings.Builder
	for _, m := range res.Merges {
		fmt.Fprintf(&b, "%d %d %d %d %016x\n", m.Level, m.A, m.B, m.Into, math.Float64bits(m.Sim))
	}
	fmt.Fprintf(&b, "levels %d clusters %d ops %d\n", res.Levels, res.NumClusters(), res.PairsProcessed)
	return b.String()
}

func sha(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// goldenInvariantCounters is the set of RunReport counters that are pure
// functions of the input graph — never of the worker count or timing. The
// stall/overlap/ns counters are deliberately absent.
var goldenInvariantCounters = []string{
	core.CtrSimilarityPairs,
	core.CtrSimilarityIncidentPairs,
	core.CtrSimilarityWedgeRows,
	core.CtrSweepPairsProcessed,
	core.CtrSweepChainRewrites,
	core.CtrSweepMerges,
	core.CtrSweepWindows,
	core.CtrSweepRounds,
	core.CtrSweepDeferrals,
	core.CtrSweepNoopDrops,
	core.CtrSweepSerialDrains,
	core.CtrSweepFlattens,
	core.CtrPipelineBuckets,
}

// canonCounters serializes the worker-invariant counters of a run report in
// sorted name order.
func canonCounters(rep *RunReport) string {
	names := append([]string(nil), goldenInvariantCounters...)
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, rep.Counters[n])
	}
	return b.String()
}

// TestGoldenClusterOutput runs the fixed corpus through every fine-grained
// engine — serial, parallel reservation, and pipelined, the latter two at
// worker counts 1..8 — and requires every run to hash to the checked-in
// golden value.
func TestGoldenClusterOutput(t *testing.T) {
	g := goldenGraph(t)
	serial, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := sha(canonMerges(serial)); got != goldenClusterSHA {
		t.Fatalf("serial Cluster hash %s, golden %s", got, goldenClusterSHA)
	}
	for workers := 1; workers <= 8; workers++ {
		par, err := ClusterParallel(g, workers)
		if err != nil {
			t.Fatalf("parallel T=%d: %v", workers, err)
		}
		if got := sha(canonMerges(par)); got != goldenClusterSHA {
			t.Fatalf("ClusterParallel T=%d hash %s, golden %s", workers, got, goldenClusterSHA)
		}
		pip, err := ClusterPipelined(g, workers)
		if err != nil {
			t.Fatalf("pipelined T=%d: %v", workers, err)
		}
		if got := sha(canonMerges(pip)); got != goldenClusterSHA {
			t.Fatalf("ClusterPipelined T=%d hash %s, golden %s", workers, got, goldenClusterSHA)
		}
	}
	// The out-of-core sweep routes the same pair list through disk; the
	// golden pin extends to it unchanged at representative worker counts.
	for _, workers := range []int{1, 4, 8} {
		ooc, err := ClusterOutOfCore(g, workers)
		if err != nil {
			t.Fatalf("out-of-core T=%d: %v", workers, err)
		}
		if got := sha(canonMerges(ooc)); got != goldenClusterSHA {
			t.Fatalf("ClusterOutOfCore T=%d hash %s, golden %s", workers, got, goldenClusterSHA)
		}
	}
}

// TestGoldenCounters runs the instrumented pipelined engine at several worker
// counts and requires the worker-invariant counter set to hash to the
// checked-in golden value every time — scheduling counters (windows, rounds,
// deferrals, buckets) included, since the engine derives them from op counts,
// not threads.
func TestGoldenCounters(t *testing.T) {
	g := goldenGraph(t)
	for _, workers := range []int{1, 2, 4, 8} {
		rec := NewRecorder()
		if _, err := core.ClusterPipelinedRecorded(g, workers, rec); err != nil {
			t.Fatalf("T=%d: %v", workers, err)
		}
		if got := sha(canonCounters(rec.Report())); got != goldenCountersSHA {
			t.Fatalf("T=%d counters hash %s, golden %s\ncounters:\n%s",
				workers, got, goldenCountersSHA, canonCounters(rec.Report()))
		}
	}
	// The non-pipelined parallel engine shares every engine counter and adds
	// no bucket, so its invariant set must match after accounting for the
	// pipeline-only counter.
	rec := NewRecorder()
	if _, err := ClusterInstrumented(g, ClusterOptions{Workers: 4, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	pipRec := NewRecorder()
	if _, err := core.ClusterPipelinedRecorded(g, 4, pipRec); err != nil {
		t.Fatal(err)
	}
	a, b := rec.Report().Counters, pipRec.Report().Counters
	for _, n := range goldenInvariantCounters {
		if n == core.CtrPipelineBuckets {
			continue
		}
		if a[n] != b[n] {
			t.Errorf("counter %s: parallel %d vs pipelined %d", n, a[n], b[n])
		}
	}
}

// TestGoldenEngineAndRelabel extends the golden pin to the explicit engine
// selector and the degree-ordered relabeled initialization: every
// ClusterOptions.Engine value (auto included), with and without Relabel, at
// several worker counts, must hash to the same golden value as the serial
// pipeline — engine choice and vertex order affect speed only, never output.
func TestGoldenEngineAndRelabel(t *testing.T) {
	g := goldenGraph(t)
	for _, engine := range []string{EngineAuto, EngineSerial, EngineParallel, EnginePipelined, EngineSpill} {
		for _, relabel := range []bool{false, true} {
			for _, workers := range []int{1, 4, 8} {
				res, err := ClusterCtx(context.Background(), g,
					ClusterOptions{Workers: workers, Engine: engine, Relabel: relabel})
				if err != nil {
					t.Fatalf("engine=%s relabel=%v T=%d: %v", engine, relabel, workers, err)
				}
				if got := sha(canonMerges(res)); got != goldenClusterSHA {
					t.Fatalf("engine=%s relabel=%v T=%d hash %s, golden %s",
						engine, relabel, workers, got, goldenClusterSHA)
				}
			}
		}
	}
	if _, err := ClusterCtx(context.Background(), g, ClusterOptions{Engine: "warp"}); err == nil {
		t.Fatal("unknown engine name accepted")
	}
}

// replayGoldenStream feeds the golden graph's edges, in id order, into a
// stream engine in batches of 512 with a snapshot every fourth batch — the
// intermediate snapshots build checkpoints and exercise the replay (and,
// at the default dirty fraction, the compaction) path mid-stream — and
// returns the final snapshot.
func replayGoldenStream(t *testing.T, eng *Stream, arr []Arrival) *Result {
	t.Helper()
	const batch = 512
	step := 0
	for lo := 0; lo < len(arr); lo += batch {
		hi := min(lo+batch, len(arr))
		if err := eng.IngestBatch(arr[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if step++; step%4 == 0 {
			if _, err := eng.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenStreamReplay extends the golden pin to the incremental engine:
// replaying the golden graph as an edge stream with interleaved snapshots
// must land on the batch pipeline's exact merge stream at every worker
// count — the differential contract against the checked-in hash rather
// than an in-process oracle.
func TestGoldenStreamReplay(t *testing.T) {
	g := goldenGraph(t)
	arr := streamArrivals(g)
	for _, workers := range []int{1, 4, 8} {
		eng, err := NewStream(StreamOptions{Workers: workers, MaxVertices: g.NumVertices()})
		if err != nil {
			t.Fatal(err)
		}
		res := replayGoldenStream(t, eng, arr)
		if got := sha(canonMerges(res)); got != goldenClusterSHA {
			t.Fatalf("stream replay T=%d hash %s, golden %s", workers, got, goldenClusterSHA)
		}
	}
}

// canonStreamCounters serializes the stream.* counters in sorted name order.
func canonStreamCounters(rep *RunReport) string {
	names := []string{CtrStreamAffectedRows, CtrStreamReplayedOps, CtrStreamCompactions, CtrStreamBatches}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, rep.Counters[n])
	}
	return b.String()
}

// TestGoldenStreamCounters pins the stream.* counters of the canonical
// replay: affected rows, replayed ops, compactions, and batches all derive
// from the arrival sequence and op counts, so every worker count must
// serialize to the same checked-in hash.
func TestGoldenStreamCounters(t *testing.T) {
	g := goldenGraph(t)
	arr := streamArrivals(g)
	for _, workers := range []int{1, 4, 8} {
		rec := NewRecorder()
		eng, err := NewStream(StreamOptions{Workers: workers, Recorder: rec, MaxVertices: g.NumVertices()})
		if err != nil {
			t.Fatal(err)
		}
		replayGoldenStream(t, eng, arr)
		canon := canonStreamCounters(rec.Report())
		if got := sha(canon); got != goldenStreamCountersSHA {
			t.Fatalf("T=%d stream counters hash %s, golden %s\ncounters:\n%s",
				workers, got, goldenStreamCountersSHA, canon)
		}
	}
}

// TestGoldenCountersRelabeled checks that a relabeled run reports the same
// worker-invariant counter set as a plain run of the same engine: relabeling
// changes the traversal order inside the init phase, not what it computes.
func TestGoldenCountersRelabeled(t *testing.T) {
	g := goldenGraph(t)
	plain := NewRecorder()
	if _, err := ClusterInstrumented(g, ClusterOptions{Workers: 4, Recorder: plain}); err != nil {
		t.Fatal(err)
	}
	rel := NewRecorder()
	if _, err := ClusterCtx(context.Background(), g,
		ClusterOptions{Workers: 4, Engine: EngineParallel, Relabel: true, Recorder: rel}); err != nil {
		t.Fatal(err)
	}
	a, b := plain.Report().Counters, rel.Report().Counters
	for _, n := range goldenInvariantCounters {
		if n == core.CtrPipelineBuckets {
			continue
		}
		if a[n] != b[n] {
			t.Errorf("counter %s: plain %d vs relabeled %d", n, a[n], b[n])
		}
	}
}
