// Package assoc builds word-association networks from a processed corpus,
// following Section III of the paper: vertices are the top fraction α of
// candidate words by document frequency, and an edge joins words f_i and f_j
// when the mutual-information-style weight of Eq. (3),
//
//	w_ij = p(X_i=1, X_j=1) · log( p(X_i=1, X_j=1) / (p(X_i=1)·p(X_j=1)) ),
//
// is positive, i.e. when the two words co-occur in documents more often than
// independence predicts. Probabilities are maximum-likelihood estimates over
// the document set.
package assoc

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"linkclust/internal/corpus"
	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

// Options tunes network construction.
type Options struct {
	// MinPairCount drops word pairs co-occurring in fewer documents; 0 or
	// 1 keeps every co-occurring pair (the paper's behaviour).
	MinPairCount int
	// EdgePermSeed, when non-zero, assigns edge ids in a seeded random
	// permutation, matching the sweeping algorithm's requirement that
	// edges be enumerated "in a random order". Zero keeps construction
	// order.
	EdgePermSeed uint64
	// Workers > 1 counts co-occurrences with that many goroutines
	// (per-worker maps over disjoint document ranges, merged pairwise —
	// the same structure as the paper's parallel initialization). The
	// resulting graph is identical to the serial one.
	Workers int
}

// Build constructs the word-association graph over the top fraction alpha of
// the corpus vocabulary (by non-ascending document frequency, the paper's
// candidate order). It returns an error when the corpus is empty or alpha is
// outside (0, 1].
func Build(c *corpus.Corpus, alpha float64, opts Options) (*graph.Graph, error) {
	if c.NumDocs() == 0 {
		return nil, fmt.Errorf("assoc: corpus has no documents")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("assoc: fraction alpha %v outside (0,1]", alpha)
	}
	vocab := c.Vocabulary()
	keep := int(math.Ceil(alpha * float64(len(vocab))))
	if keep < 1 {
		keep = 1
	}
	if keep > len(vocab) {
		keep = len(vocab)
	}
	selected := vocab[:keep]
	return BuildFromWords(c, selected, opts)
}

// BuildFromWords constructs the association graph over an explicit word set.
// Words absent from the corpus are still vertices, just isolated ones.
func BuildFromWords(c *corpus.Corpus, words []string, opts Options) (*graph.Graph, error) {
	if c.NumDocs() == 0 {
		return nil, fmt.Errorf("assoc: corpus has no documents")
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("assoc: empty word set")
	}
	index := make(map[string]int32, len(words))
	for i, w := range words {
		if _, dup := index[w]; dup {
			return nil, fmt.Errorf("assoc: duplicate word %q", w)
		}
		index[w] = int32(i)
	}

	pairCount := countPairs(c, index, opts.Workers)

	minCount := opts.MinPairCount
	if minCount < 1 {
		minCount = 1
	}
	// Insert edges in sorted pair order: map iteration order is
	// randomized per process, and edge ids must be reproducible across
	// runs (and identical for any Workers setting).
	keys := make([]uint64, 0, len(pairCount))
	for key := range pairCount {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	m := float64(c.NumDocs())
	b := graph.NewLabeledBuilder(words)
	for _, key := range keys {
		cnt := pairCount[key]
		if cnt < minCount {
			continue
		}
		u, v := unpackPair(key)
		joint := float64(cnt) / m
		pu := float64(c.DocFreq(words[u])) / m
		pv := float64(c.DocFreq(words[v])) / m
		w := joint * math.Log(joint/(pu*pv))
		if w > 0 {
			if err := b.AddEdge(int(u), int(v), w); err != nil {
				return nil, fmt.Errorf("assoc: %w", err)
			}
		}
	}

	var perm []int
	if opts.EdgePermSeed != 0 {
		perm = rng.New(opts.EdgePermSeed).Perm(b.NumEdges())
	}
	return b.Build(perm), nil
}

// countPairs tallies, for every selected word pair, the number of documents
// containing both. Documents hold distinct terms, so each document
// contributes at most once per pair. With workers > 1 the document range is
// split across goroutines with private maps that are folded afterwards.
func countPairs(c *corpus.Corpus, index map[string]int32, workers int) map[uint64]int {
	countRange := func(lo, hi int, out map[uint64]int) {
		var ids []int32
		for d := lo; d < hi; d++ {
			doc := c.Doc(d)
			ids = ids[:0]
			for _, t := range doc {
				if id, ok := index[t]; ok {
					ids = append(ids, id)
				}
			}
			for i := 0; i < len(ids); i++ {
				for j := i + 1; j < len(ids); j++ {
					out[pairKey(ids[i], ids[j])]++
				}
			}
		}
	}
	n := c.NumDocs()
	if workers < 2 || n < 2*workers {
		out := make(map[uint64]int)
		countRange(0, n, out)
		return out
	}
	parts := make([]map[uint64]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for t := 0; t < workers; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			out := make(map[uint64]int)
			countRange(lo, hi, out)
			parts[t] = out
		}(t, lo, hi)
	}
	wg.Wait()
	total := make(map[uint64]int)
	for _, part := range parts {
		for k, v := range part {
			total[k] += v
		}
	}
	return total
}

func pairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func unpackPair(k uint64) (int32, int32) {
	return int32(k >> 32), int32(uint32(k))
}
