package assoc

import (
	"math"
	"testing"

	"linkclust/internal/corpus"
	"linkclust/internal/graph"
)

// tinyCorpus: "x" and "y" always co-occur; "z" appears alone.
func tinyCorpus() *corpus.Corpus {
	c := corpus.New()
	c.AddTerms([]string{"x", "y"})
	c.AddTerms([]string{"x", "y"})
	c.AddTerms([]string{"z"})
	c.AddTerms([]string{"z"})
	return c
}

func TestBuildPositiveAssociation(t *testing.T) {
	g, err := BuildFromWords(tinyCorpus(), []string{"x", "y", "z"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("%d vertices, want 3", g.NumVertices())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("%d edges, want 1 (only x-y co-occur)", g.NumEdges())
	}
	// w = p_xy * log(p_xy / (p_x p_y)) with p_xy = p_x = p_y = 1/2.
	want := 0.5 * math.Log(0.5/(0.5*0.5))
	got := g.Weight(0, 1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("weight = %v, want %v", got, want)
	}
}

func TestBuildDropsNonPositivePMI(t *testing.T) {
	// "a" and "b" co-occur exactly as often as independence predicts:
	// p_a = p_b = 1/2, joint = 1/4 over 4 docs -> log term = 0.
	c := corpus.New()
	c.AddTerms([]string{"a", "b"})
	c.AddTerms([]string{"a"})
	c.AddTerms([]string{"b"})
	c.AddTerms([]string{"filler"})
	g, err := BuildFromWords(c, []string{"a", "b"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("independence pair produced %d edges, want 0", g.NumEdges())
	}
}

func TestBuildNegativeAssociationDropped(t *testing.T) {
	// "u" and "v" never co-occur: no pair count at all, so no edge.
	c := corpus.New()
	for i := 0; i < 5; i++ {
		c.AddTerms([]string{"u"})
		c.AddTerms([]string{"v"})
	}
	g, err := BuildFromWords(c, []string{"u", "v"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("%d edges, want 0", g.NumEdges())
	}
}

func TestBuildAlphaSelectsTopWords(t *testing.T) {
	c := corpus.New()
	// freq: top 3 times, mid 2, rare 1.
	c.AddTerms([]string{"top", "mid"})
	c.AddTerms([]string{"top", "mid"})
	c.AddTerms([]string{"top", "rare"})
	// alpha = 2/3 keeps ceil(2) = 2 words: top, mid.
	g, err := Build(c, 0.67, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		// ceil(0.67*3) = 3; use smaller alpha for 2.
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	g, err = Build(c, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 {
		t.Fatalf("alpha=0.5 kept %d vertices, want 2", g.NumVertices())
	}
	if g.Label(0) != "top" || g.Label(1) != "mid" {
		t.Fatalf("kept %q %q, want top, mid", g.Label(0), g.Label(1))
	}
}

func TestBuildErrors(t *testing.T) {
	empty := corpus.New()
	if _, err := Build(empty, 0.5, Options{}); err == nil {
		t.Error("empty corpus accepted")
	}
	c := tinyCorpus()
	for _, alpha := range []float64{0, -0.1, 1.5} {
		if _, err := Build(c, alpha, Options{}); err == nil {
			t.Errorf("alpha %v accepted", alpha)
		}
	}
	if _, err := BuildFromWords(c, nil, Options{}); err == nil {
		t.Error("empty word set accepted")
	}
	if _, err := BuildFromWords(c, []string{"x", "x"}, Options{}); err == nil {
		t.Error("duplicate words accepted")
	}
}

func TestMinPairCount(t *testing.T) {
	c := corpus.New()
	c.AddTerms([]string{"p", "q"}) // co-occur once
	c.AddTerms([]string{"r", "s"})
	c.AddTerms([]string{"r", "s"}) // co-occur twice
	for i := 0; i < 10; i++ {
		c.AddTerms([]string{"pad"})
	}
	g1, err := BuildFromWords(c, []string{"p", "q", "r", "s"}, Options{MinPairCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != 1 {
		t.Fatalf("MinPairCount=2 kept %d edges, want 1", g1.NumEdges())
	}
	if _, ok := g1.EdgeBetween(2, 3); !ok {
		t.Fatal("r-s edge missing")
	}
}

func TestEdgePermutationPreservesStructure(t *testing.T) {
	cfg := corpus.SynthConfig{Vocab: 80, Topics: 4, Docs: 800, MinLen: 3, MaxLen: 8, ZipfExponent: 1.1, TopicMixture: 0.7, Seed: 11}
	c := corpus.Synthesize(cfg)
	a, err := Build(c, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(c, 1, Options{EdgePermSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() || a.NumVertices() != b.NumVertices() {
		t.Fatalf("permuted build changed shape")
	}
	// Same edge set regardless of id assignment.
	for _, e := range a.Edges() {
		if w := b.Weight(int(e.U), int(e.V)); math.Abs(w-e.Weight) > 1e-15 {
			t.Fatalf("edge (%d,%d) weight %v vs %v", e.U, e.V, e.Weight, w)
		}
	}
	sa, sb := graph.ComputeStats(a), graph.ComputeStats(b)
	if sa.K1 != sb.K1 || sa.K2 != sb.K2 {
		t.Fatalf("stats differ under permutation: %+v vs %+v", sa, sb)
	}
}

func TestDensityFallsAsAlphaGrows(t *testing.T) {
	// The paper observes graph density decreasing in alpha (frequent
	// words co-occur more). Verify the synthetic corpus reproduces it.
	cfg := corpus.SynthConfig{Vocab: 2000, Topics: 20, Docs: 8000, MinLen: 4, MaxLen: 10, ZipfExponent: 1.05, TopicMixture: 0.7, MainstreamProb: 0.35, MainstreamFrac: 0.05, Seed: 5}
	c := corpus.Synthesize(cfg)
	var prev float64 = math.Inf(1)
	for _, alpha := range []float64{0.02, 0.1, 0.5} {
		g, err := Build(c, alpha, Options{})
		if err != nil {
			t.Fatal(err)
		}
		d := g.Density()
		if d >= prev {
			t.Fatalf("density did not fall: alpha=%v density=%v prev=%v", alpha, d, prev)
		}
		prev = d
	}
}

func BenchmarkBuild(b *testing.B) {
	cfg := corpus.SynthConfig{Vocab: 2000, Topics: 20, Docs: 4000, MinLen: 4, MaxLen: 10, ZipfExponent: 1.05, TopicMixture: 0.7, Seed: 1}
	c := corpus.Synthesize(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(c, 0.2, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParallelCountingMatchesSerial(t *testing.T) {
	cfg := corpus.SynthConfig{Vocab: 300, Topics: 6, Docs: 2000, MinLen: 3, MaxLen: 9, ZipfExponent: 1.1, TopicMixture: 0.7, Seed: 17}
	c := corpus.Synthesize(cfg)
	serial, err := Build(c, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		par, err := Build(c, 0.5, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if par.NumEdges() != serial.NumEdges() || par.NumVertices() != serial.NumVertices() {
			t.Fatalf("workers=%d: shape %d/%d vs %d/%d", workers,
				par.NumVertices(), par.NumEdges(), serial.NumVertices(), serial.NumEdges())
		}
		for _, e := range serial.Edges() {
			if w := par.Weight(int(e.U), int(e.V)); math.Abs(w-e.Weight) > 1e-12 {
				t.Fatalf("workers=%d: edge (%d,%d) weight %v vs %v", workers, e.U, e.V, w, e.Weight)
			}
		}
	}
}

func TestParallelCountingTinyCorpus(t *testing.T) {
	// Fewer documents than 2*workers falls back to the serial path.
	g, err := BuildFromWords(tinyCorpus(), []string{"x", "y", "z"}, Options{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("%d edges, want 1", g.NumEdges())
	}
}

func TestBuildDeterministicEdgeIDs(t *testing.T) {
	// Edge ids must be identical across Build invocations (the pair map's
	// iteration order is randomized per run, so insertion must be sorted).
	cfg := corpus.SynthConfig{Vocab: 150, Topics: 4, Docs: 600, MinLen: 3, MaxLen: 8, ZipfExponent: 1.1, TopicMixture: 0.6, Seed: 23}
	c := corpus.Synthesize(cfg)
	a, err := Build(c, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(c, 0.5, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a.Edge(i), b.Edge(i))
		}
	}
}
