package baseline

import (
	"sort"
	"testing"

	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

func buildSim(t *testing.T, g *graph.Graph) (*EdgeSim, *core.PairList) {
	t.Helper()
	pl := core.Similarity(g)
	return NewEdgeSim(g, pl), pl
}

// samePartition reports whether two label vectors induce the same partition.
// With min-labeled clusterings this is plain equality, but comparing as
// partitions keeps the check meaningful if labeling conventions drift.
func samePartition(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int32]int32)
	rev := make(map[int32]int32)
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := rev[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// thresholds returns the distinct merge similarities plus sentinels around
// them, giving one cut inside every dendrogram layer.
func thresholds(pl *core.PairList) []float64 {
	set := make(map[float64]struct{})
	for i := range pl.Pairs {
		set[pl.Pairs[i].Sim] = struct{}{}
	}
	out := make([]float64, 0, len(set)+2)
	for s := range set {
		out = append(out, s)
	}
	sort.Float64s(out)
	out = append(out, 2) // above every similarity: all singletons
	mids := make([]float64, 0, len(out)*2)
	for i, v := range out {
		mids = append(mids, v)
		if i+1 < len(out) {
			mids = append(mids, (v+out[i+1])/2)
		}
	}
	return mids
}

func TestEdgeSimPaperExample(t *testing.T) {
	g := graph.PaperExample()
	s, _ := buildSim(t, g)
	if s.NumEdges() != 8 {
		t.Fatalf("edges = %d, want 8", s.NumEdges())
	}
	if s.NumIncidentPairs() != 16 {
		t.Fatalf("incident pairs = %d, want K2 = 16", s.NumIncidentPairs())
	}
	// Symmetry and zero diagonal.
	for i := int32(0); i < 8; i++ {
		if s.Sim(i, i) != 0 {
			t.Fatalf("self sim of %d non-zero", i)
		}
		for j := int32(0); j < 8; j++ {
			if s.Sim(i, j) != s.Sim(j, i) {
				t.Fatalf("asymmetric sim (%d,%d)", i, j)
			}
		}
	}
}

func TestNBMEqualsGroundTruth(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := graph.ErdosRenyi(18, 0.3, rng.New(seed))
		s, pl := buildSim(t, g)
		res, err := NBM(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, theta := range thresholds(pl) {
			want := ThresholdComponents(s, theta)
			got := CutMerges(s.NumEdges(), res.Merges, theta)
			if !samePartition(want, got) {
				t.Fatalf("seed %d theta %v: NBM cut disagrees with ground truth", seed, theta)
			}
		}
	}
}

func TestSLINKEqualsGroundTruth(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := graph.ErdosRenyi(18, 0.3, rng.New(seed))
		s, pl := buildSim(t, g)
		res := SLINK(s)
		for _, theta := range thresholds(pl) {
			want := ThresholdComponents(s, theta)
			got := res.CutSim(theta)
			if !samePartition(want, got) {
				t.Fatalf("seed %d theta %v: SLINK cut disagrees with ground truth", seed, theta)
			}
		}
	}
}

// TestSweepEqualsBaselines is the central cross-validation of the paper's
// Theorem 1/correctness claim: the sweeping algorithm, the standard NBM
// algorithm and SLINK produce the same single-linkage dendrogram, compared
// as flat clusterings at every threshold.
func TestSweepEqualsBaselines(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := graph.ErdosRenyi(16, 0.35, rng.New(seed))
		pl := core.Similarity(g)
		s := NewEdgeSim(g, pl)
		sweep, err := core.Sweep(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		nbm, err := NBM(s)
		if err != nil {
			t.Fatal(err)
		}
		slink := SLINK(s)
		for _, theta := range thresholds(pl) {
			want := ThresholdComponents(s, theta)
			if got := CutMerges(s.NumEdges(), sweep.Merges, theta); !samePartition(want, got) {
				t.Fatalf("seed %d theta %v: sweep disagrees with ground truth", seed, theta)
			}
			if got := CutMerges(s.NumEdges(), nbm.Merges, theta); !samePartition(want, got) {
				t.Fatalf("seed %d theta %v: NBM disagrees with ground truth", seed, theta)
			}
			if got := slink.CutSim(theta); !samePartition(want, got) {
				t.Fatalf("seed %d theta %v: SLINK disagrees with ground truth", seed, theta)
			}
		}
		// The two merge-stream algorithms must also agree on the number
		// of positive-similarity merges.
		if len(sweep.Merges) != len(nbm.Merges) {
			t.Fatalf("seed %d: sweep %d merges, NBM %d", seed, len(sweep.Merges), len(nbm.Merges))
		}
	}
}

func TestNBMStructured(t *testing.T) {
	// K_{2,4}: all 8 edges converge to one cluster in 7 merges.
	g := graph.PaperExample()
	s, _ := buildSim(t, g)
	res, err := NBM(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merges) != 7 {
		t.Fatalf("merges = %d, want 7", len(res.Merges))
	}
	// Merge similarities are non-increasing.
	for i := 1; i < len(res.Merges); i++ {
		if res.Merges[i].Sim > res.Merges[i-1].Sim+1e-12 {
			t.Fatalf("merge %d sim %v increased", i, res.Merges[i].Sim)
		}
	}
	if res.MatrixBytes != 8*8*8 {
		t.Fatalf("MatrixBytes = %d", res.MatrixBytes)
	}
}

func TestNBMDisjointEdgesNoMerges(t *testing.T) {
	g := graph.DisjointEdges(4)
	s, _ := buildSim(t, g)
	res, err := NBM(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merges) != 0 {
		t.Fatalf("matching produced %d merges", len(res.Merges))
	}
}

func TestNBMEmpty(t *testing.T) {
	g := graph.NewBuilder(3).Build(nil)
	s, _ := buildSim(t, g)
	res, err := NBM(s)
	if err != nil || len(res.Merges) != 0 {
		t.Fatalf("empty graph: %v, %d merges", err, len(res.Merges))
	}
	slink := SLINK(s)
	if len(slink.Pi) != 0 {
		t.Fatalf("SLINK on empty: %d points", len(slink.Pi))
	}
}

func TestNBMSizeGuard(t *testing.T) {
	s := &EdgeSim{n: MaxNBMEdges + 1, sim: map[uint64]float64{}}
	if _, err := NBM(s); err == nil {
		t.Fatal("oversized input accepted")
	}
}

func TestSLINKPointerRepresentationInvariants(t *testing.T) {
	g := graph.ErdosRenyi(20, 0.3, rng.New(3))
	s, _ := buildSim(t, g)
	res := SLINK(s)
	n := len(res.Pi)
	for i := 0; i < n; i++ {
		// Pi points to a strictly later point, except the last.
		if i < n-1 && int(res.Pi[i]) <= i {
			t.Fatalf("Pi[%d] = %d not later", i, res.Pi[i])
		}
	}
}

func BenchmarkNBM(b *testing.B) {
	g := graph.ErdosRenyi(60, 0.2, rng.New(1))
	pl := core.Similarity(g)
	s := NewEdgeSim(g, pl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NBM(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSLINK(b *testing.B) {
	g := graph.ErdosRenyi(60, 0.2, rng.New(1))
	pl := core.Similarity(g)
	s := NewEdgeSim(g, pl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SLINK(s)
	}
}

// TestMSTEqualsGroundTruth: the Gower-Ross maximum-spanning-tree
// construction yields the same single-linkage dendrogram.
func TestMSTEqualsGroundTruth(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := graph.ErdosRenyi(18, 0.3, rng.New(seed))
		s, pl := buildSim(t, g)
		merges := MST(s)
		for _, theta := range thresholds(pl) {
			want := ThresholdComponents(s, theta)
			got := CutMerges(s.NumEdges(), merges, theta)
			if !samePartition(want, got) {
				t.Fatalf("seed %d theta %v: MST cut disagrees with ground truth", seed, theta)
			}
		}
	}
}

func TestMSTMergeStreamProperties(t *testing.T) {
	g := graph.PaperExample()
	s, _ := buildSim(t, g)
	merges := MST(s)
	if len(merges) != 7 {
		t.Fatalf("K_{2,4}: %d merges, want 7", len(merges))
	}
	for i := 1; i < len(merges); i++ {
		if merges[i].Sim > merges[i-1].Sim+1e-12 {
			t.Fatalf("merge %d similarity increased", i)
		}
		if merges[i].Level != int32(i+1) {
			t.Fatalf("merge %d has level %d", i, merges[i].Level)
		}
	}
	// Agreement with the sweeping algorithm's merge count.
	res, err := core.Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merges) != len(merges) {
		t.Fatalf("sweep %d merges, MST %d", len(res.Merges), len(merges))
	}
}

func TestMSTEmptyAndMatching(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewBuilder(4).Build(nil),
		graph.DisjointEdges(4),
	} {
		s, _ := buildSim(t, g)
		if m := MST(s); len(m) != 0 {
			t.Fatalf("graph without incident pairs produced %d merges", len(m))
		}
	}
}

func BenchmarkMST(b *testing.B) {
	g := graph.ErdosRenyi(60, 0.2, rng.New(1))
	pl := core.Similarity(g)
	s := NewEdgeSim(g, pl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MST(s)
	}
}
