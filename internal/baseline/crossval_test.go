package baseline

import (
	"testing"

	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/planted"
	"linkclust/internal/rng"
)

// crossvalGraphs are small enough for the O(m^2) NBM baseline yet varied:
// random graphs at two densities plus a planted-community benchmark.
func crossvalGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	out := map[string]*graph.Graph{
		"paper-example": graph.PaperExample(),
	}
	for seed := uint64(0); seed < 4; seed++ {
		out[string(rune('a'+seed))+"-er-dense"] = graph.ErdosRenyi(16, 0.35, rng.New(seed))
		out[string(rune('a'+seed))+"-er-sparse"] = graph.ErdosRenyi(24, 0.15, rng.New(seed+100))
	}
	pcfg := planted.DefaultConfig()
	pcfg.Nodes = 30
	pcfg.Communities = 3
	bench, err := planted.Generate(pcfg)
	if err != nil {
		t.Fatalf("planted: %v", err)
	}
	out["planted"] = bench.Graph
	return out
}

// TestParallelSweepEqualsBaselines closes the cross-validation promise in
// DESIGN.md for the parallel engine: the serial sweep, the parallel sweep at
// several worker counts, NBM, and SLINK must all describe the same
// single-linkage dendrogram — identical merge heights between the
// merge-stream algorithms, and identical flat clusterings at a threshold
// inside every dendrogram layer.
func TestParallelSweepEqualsBaselines(t *testing.T) {
	for name, g := range crossvalGraphs(t) {
		t.Run(name, func(t *testing.T) {
			pl := core.Similarity(g)
			s := NewEdgeSim(g, pl)
			serial, err := core.Sweep(g, core.Similarity(g))
			if err != nil {
				t.Fatal(err)
			}
			nbm, err := NBM(s)
			if err != nil {
				t.Fatal(err)
			}
			slink := SLINK(s)

			// Merge heights: the sweeps and NBM emit one positive-similarity
			// merge per dendrogram edge, in non-increasing height order.
			if len(serial.Merges) != len(nbm.Merges) {
				t.Fatalf("serial sweep %d merges, NBM %d", len(serial.Merges), len(nbm.Merges))
			}
			for i := range serial.Merges {
				if d := serial.Merges[i].Sim - nbm.Merges[i].Sim; d > 1e-12 || d < -1e-12 {
					t.Fatalf("merge %d height: sweep %v, NBM %v", i, serial.Merges[i].Sim, nbm.Merges[i].Sim)
				}
			}

			results := map[string]*core.Result{"serial": serial}
			for _, workers := range []int{1, 2, 4, 8} {
				par, err := core.SweepParallel(g, core.Similarity(g), workers)
				if err != nil {
					t.Fatalf("T=%d: %v", workers, err)
				}
				if len(par.Merges) != len(serial.Merges) {
					t.Fatalf("T=%d: %d merges, want %d", workers, len(par.Merges), len(serial.Merges))
				}
				for i := range serial.Merges {
					if par.Merges[i].Sim != serial.Merges[i].Sim {
						t.Fatalf("T=%d merge %d: height %v, want %v", workers, i, par.Merges[i].Sim, serial.Merges[i].Sim)
					}
				}
				results["parallel-"+string(rune('0'+workers))] = par
			}

			for _, theta := range thresholds(pl) {
				want := ThresholdComponents(s, theta)
				for label, res := range results {
					if got := CutMerges(s.NumEdges(), res.Merges, theta); !samePartition(want, got) {
						t.Fatalf("theta %v: %s sweep disagrees with ground truth", theta, label)
					}
				}
				if got := CutMerges(s.NumEdges(), nbm.Merges, theta); !samePartition(want, got) {
					t.Fatalf("theta %v: NBM disagrees with ground truth", theta)
				}
				if got := slink.CutSim(theta); !samePartition(want, got) {
					t.Fatalf("theta %v: SLINK disagrees with ground truth", theta)
				}
			}
		})
	}
}
