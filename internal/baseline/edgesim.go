// Package baseline implements the "standard algorithm" the paper compares
// against (Section VII-A): optimally-efficient O(n²) single-linkage
// hierarchical clustering of the |E| edges, in two classic forms — the
// next-best-merge (NBM) array algorithm of Manning, Raghavan & Schütze
// (Introduction to Information Retrieval, Fig. 17.6), which keeps the dense
// Θ(n²) similarity matrix the paper's memory experiment exposes, and the
// SLINK algorithm of Sibson (1973), which runs in O(n²) time with O(n)
// memory via the pointer representation.
//
// Both operate on the link-clustering similarity: two incident edges have
// the Tanimoto similarity of their vertex pair (Eq. 1), and two non-incident
// edges have similarity 0. ThresholdComponents provides the ground-truth
// single-linkage flat clustering at any threshold for cross-validation.
package baseline

import (
	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/unionfind"
)

// EdgeSim is an O(1) similarity oracle between edge indices, backed by a
// hash map with one entry per incident edge pair (K2 entries).
type EdgeSim struct {
	n   int
	sim map[uint64]float64
}

// NewEdgeSim indexes the incident-pair similarities of pl against the edge
// ids of g. pl may be sorted or unsorted.
func NewEdgeSim(g *graph.Graph, pl *core.PairList) *EdgeSim {
	s := &EdgeSim{n: g.NumEdges(), sim: make(map[uint64]float64, pl.NumIncidentPairs())}
	for i := range pl.Pairs {
		p := &pl.Pairs[i]
		for _, k := range p.Common {
			e1, ok1 := g.EdgeBetween(int(p.U), int(k))
			e2, ok2 := g.EdgeBetween(int(p.V), int(k))
			if !ok1 || !ok2 {
				// A foreign pair list; skip rather than corrupt.
				continue
			}
			s.sim[edgePairKey(e1, e2)] = p.Sim
		}
	}
	return s
}

// NumEdges returns the number of data points (edges) being clustered.
func (s *EdgeSim) NumEdges() int { return s.n }

// NumIncidentPairs returns the number of stored positive-similarity pairs.
func (s *EdgeSim) NumIncidentPairs() int { return len(s.sim) }

// Sim returns the link-clustering similarity of edges e1 and e2: their
// incident-pair Tanimoto score, or 0 when not incident (or identical).
func (s *EdgeSim) Sim(e1, e2 int32) float64 {
	if e1 == e2 {
		return 0
	}
	return s.sim[edgePairKey(e1, e2)]
}

// Pairs calls fn for every stored incident edge pair.
func (s *EdgeSim) Pairs(fn func(e1, e2 int32, sim float64)) {
	for k, v := range s.sim {
		fn(int32(k>>32), int32(uint32(k)), v)
	}
}

func edgePairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// ThresholdComponents returns the exact single-linkage flat clustering of
// the edges at similarity threshold theta: connected components of the
// graph whose arcs are incident edge pairs with similarity >= theta. Every
// cluster is labeled by its minimum edge id.
func ThresholdComponents(s *EdgeSim, theta float64) []int32 {
	uf := unionfind.NewMin(s.n)
	s.Pairs(func(e1, e2 int32, sim float64) {
		if sim >= theta {
			uf.Union(e1, e2)
		}
	})
	return uf.Labels()
}

// CutMerges replays the merges with similarity >= theta and returns the
// resulting min-labeled flat clustering over n edges.
func CutMerges(n int, merges []core.Merge, theta float64) []int32 {
	uf := unionfind.NewMin(n)
	for _, m := range merges {
		if m.Sim >= theta {
			uf.Union(m.A, m.B)
		}
	}
	return uf.Labels()
}
