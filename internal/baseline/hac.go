package baseline

import (
	"fmt"

	"linkclust/internal/core"
)

// Linkage selects how inter-cluster similarity is combined when clusters
// merge in generic hierarchical agglomerative clustering.
type Linkage int

const (
	// SingleLinkage takes the maximum similarity across the pair of
	// clusters — the paper's (and Ahn et al.'s) choice, and the only one
	// the sweeping algorithm accelerates.
	SingleLinkage Linkage = iota + 1
	// CompleteLinkage takes the minimum similarity, producing compact
	// clusters at the cost of chaining-resistance.
	CompleteLinkage
	// AverageLinkage (UPGMA) takes the size-weighted mean similarity.
	AverageLinkage
)

// String implements fmt.Stringer.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	default:
		return "invalid"
	}
}

// HAC runs generic hierarchical agglomerative clustering of the edges under
// the chosen linkage, as an extension ablation: it shows *why* the paper
// targets single linkage — only single linkage admits the O(√K2·|E|)
// sweeping algorithm (and the NBM shortcut); the generic algorithm below
// scans the full matrix per merge, Θ(n³) worst case, usable only on small
// inputs. Merging stops when the best remaining inter-cluster similarity
// is 0. For SingleLinkage the resulting flat clusterings equal the sweeping
// algorithm's at every threshold.
func HAC(s *EdgeSim, linkage Linkage) (*NBMResult, error) {
	switch linkage {
	case SingleLinkage, CompleteLinkage, AverageLinkage:
	default:
		return nil, fmt.Errorf("baseline: unknown linkage %d", linkage)
	}
	n := s.NumEdges()
	if n > MaxNBMEdges {
		return nil, fmt.Errorf("baseline: %d edges exceed the dense-matrix limit %d", n, MaxNBMEdges)
	}
	res := &NBMResult{MatrixBytes: int64(n) * int64(n) * 8}
	if n == 0 {
		return res, nil
	}
	mat := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range mat {
		mat[i] = flat[i*n : (i+1)*n]
	}
	s.Pairs(func(e1, e2 int32, sim float64) {
		mat[e1][e2] = sim
		mat[e2][e1] = sim
	})

	active := make([]bool, n)
	size := make([]float64, n)
	minID := make([]int32, n)
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		minID[i] = int32(i)
	}

	for iter := 0; iter < n-1; iter++ {
		bi, bj, bs := -1, -1, 0.0
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			row := mat[i]
			for j := i + 1; j < n; j++ {
				if active[j] && row[j] > bs {
					bi, bj, bs = i, j, row[j]
				}
			}
		}
		if bi < 0 {
			break // only zero similarities remain
		}
		a, b := minID[bi], minID[bj]
		into := a
		if b < into {
			into = b
		}
		res.Merges = append(res.Merges, core.Merge{
			Level: int32(len(res.Merges) + 1),
			A:     a, B: b, Into: into,
			Sim: bs,
		})
		// Lance–Williams row update into bi.
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			var v float64
			switch linkage {
			case SingleLinkage:
				v = maxF(mat[bi][k], mat[bj][k])
			case CompleteLinkage:
				v = minF(mat[bi][k], mat[bj][k])
			case AverageLinkage:
				v = (size[bi]*mat[bi][k] + size[bj]*mat[bj][k]) / (size[bi] + size[bj])
			}
			mat[bi][k] = v
			mat[k][bi] = v
		}
		mat[bi][bi] = 0
		size[bi] += size[bj]
		active[bj] = false
		minID[bi] = into
	}
	return res, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
