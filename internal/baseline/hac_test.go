package baseline

import (
	"testing"

	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

func TestHACSingleEqualsNBM(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.ErdosRenyi(16, 0.35, rng.New(seed))
		s, pl := buildSim(t, g)
		hac, err := HAC(s, SingleLinkage)
		if err != nil {
			t.Fatal(err)
		}
		nbm, err := NBM(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(hac.Merges) != len(nbm.Merges) {
			t.Fatalf("seed %d: HAC %d merges, NBM %d", seed, len(hac.Merges), len(nbm.Merges))
		}
		for _, theta := range thresholds(pl) {
			a := CutMerges(s.NumEdges(), hac.Merges, theta)
			b := CutMerges(s.NumEdges(), nbm.Merges, theta)
			if !samePartition(a, b) {
				t.Fatalf("seed %d theta %v: single-linkage HAC disagrees with NBM", seed, theta)
			}
		}
	}
}

func TestHACSimsNonIncreasing(t *testing.T) {
	g := graph.ErdosRenyi(18, 0.3, rng.New(2))
	s, _ := buildSim(t, g)
	for _, l := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		res, err := HAC(s, l)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Merges); i++ {
			if res.Merges[i].Sim > res.Merges[i-1].Sim+1e-12 {
				// Complete and average linkage are both reducing
				// (Lance-Williams with non-negative coefficients), so
				// merge similarities never increase; single linkage
				// shares the property.
				t.Fatalf("%v: merge %d sim increased", l, i)
			}
		}
	}
}

func TestHACLinkagesDiffer(t *testing.T) {
	// A graph with a chain-like link structure separates single from
	// complete linkage: single chains through, complete resists.
	g := graph.Path(8)
	s, _ := buildSim(t, g)
	single, err := HAC(s, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	complete, err := HAC(s, CompleteLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Merges) == 0 || len(complete.Merges) == 0 {
		t.Fatal("degenerate dendrograms")
	}
	// Compare flat clusterings midway: they should differ somewhere.
	differs := false
	for _, m := range single.Merges {
		a := CutMerges(s.NumEdges(), single.Merges, m.Sim)
		b := CutMerges(s.NumEdges(), complete.Merges, m.Sim)
		if !samePartition(a, b) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("single and complete linkage identical on a path — chaining not exercised")
	}
}

func TestHACAverageSizeWeights(t *testing.T) {
	// Two incident pairs with different sims: after merging the closest
	// pair, the average to the third cluster is the size-weighted mean.
	// Star with weighted edges gives controllable sims; just assert the
	// run completes and is consistent as a dendrogram.
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(0, 2, 2)
	b.MustAddEdge(0, 3, 3)
	b.MustAddEdge(0, 4, 4)
	g := b.Build(nil)
	s, _ := buildSim(t, g)
	res, err := HAC(s, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merges) != 3 {
		t.Fatalf("star K2 dendrogram has %d merges, want 3", len(res.Merges))
	}
}

func TestHACValidation(t *testing.T) {
	g := graph.PaperExample()
	s, _ := buildSim(t, g)
	if _, err := HAC(s, Linkage(0)); err == nil {
		t.Fatal("invalid linkage accepted")
	}
	big := &EdgeSim{n: MaxNBMEdges + 1, sim: map[uint64]float64{}}
	if _, err := HAC(big, SingleLinkage); err == nil {
		t.Fatal("oversized input accepted")
	}
	if l := SingleLinkage.String(); l != "single" {
		t.Fatalf("String = %q", l)
	}
	if l := Linkage(9).String(); l != "invalid" {
		t.Fatalf("String = %q", l)
	}
}

func TestHACEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(2).Build(nil)
	pl := core.Similarity(g)
	s := NewEdgeSim(g, pl)
	res, err := HAC(s, CompleteLinkage)
	if err != nil || len(res.Merges) != 0 {
		t.Fatalf("empty: %v, %d merges", err, len(res.Merges))
	}
}
