package baseline

import (
	"sort"

	"linkclust/internal/core"
	"linkclust/internal/unionfind"
)

// MST computes the single-linkage dendrogram through the maximum-spanning-
// tree connection of Gower & Ross (1969), the paper's reference [9]:
// running Kruskal's algorithm over the incident-pair similarity graph in
// non-increasing similarity order, every accepted arc is exactly one
// single-linkage merge. Complexity is O(K2 log K2) — between the sweeping
// algorithm and the dense standard algorithm — and memory is O(K2).
//
// Ties are broken by edge-id pairs so the merge stream is deterministic;
// the resulting dendrogram equals NBM's and the sweeping algorithm's as a
// set of flat clusterings at every threshold.
func MST(s *EdgeSim) []core.Merge {
	type arc struct {
		e1, e2 int32
		sim    float64
	}
	arcs := make([]arc, 0, s.NumIncidentPairs())
	s.Pairs(func(e1, e2 int32, sim float64) {
		arcs = append(arcs, arc{e1: e1, e2: e2, sim: sim})
	})
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].sim != arcs[j].sim {
			return arcs[i].sim > arcs[j].sim
		}
		if arcs[i].e1 != arcs[j].e1 {
			return arcs[i].e1 < arcs[j].e1
		}
		return arcs[i].e2 < arcs[j].e2
	})

	uf := unionfind.NewMin(s.NumEdges())
	var merges []core.Merge
	for _, a := range arcs {
		ra, rb := uf.Find(a.e1), uf.Find(a.e2)
		if ra == rb {
			continue
		}
		into := ra
		if rb < into {
			into = rb
		}
		uf.Union(ra, rb)
		merges = append(merges, core.Merge{
			Level: int32(len(merges) + 1),
			A:     ra, B: rb, Into: into,
			Sim: a.sim,
		})
	}
	return merges
}
