package baseline

import (
	"fmt"

	"linkclust/internal/core"
)

// NBMResult is the dendrogram produced by the next-best-merge algorithm.
type NBMResult struct {
	// Merges holds one event per fusion of two positive-similarity
	// clusters, in non-increasing similarity order, with the same
	// min-labeled cluster ids the sweeping algorithm emits.
	Merges []core.Merge
	// MatrixBytes is the size of the dense similarity matrix, the
	// dominant memory term of Fig. 4(3).
	MatrixBytes int64
}

// MaxNBMEdges bounds the dense similarity matrix to roughly 2 GiB
// (n² float64); larger inputs return an error instead of exhausting memory,
// mirroring the paper's observation that the standard algorithm could not
// finish beyond α = 0.001.
const MaxNBMEdges = 16384

// NBM runs the standard O(n²) single-linkage hierarchical agglomerative
// clustering with a dense similarity matrix and next-best-merge arrays
// (Manning et al., Fig. 17.6). Merging stops when the best remaining
// inter-cluster similarity is 0, which for link clustering means the
// remaining clusters share no incident edge pairs — the same stopping point
// the sweeping algorithm reaches when list L is exhausted.
func NBM(s *EdgeSim) (*NBMResult, error) {
	n := s.NumEdges()
	if n > MaxNBMEdges {
		return nil, fmt.Errorf("baseline: %d edges exceed the dense-matrix limit %d", n, MaxNBMEdges)
	}
	res := &NBMResult{MatrixBytes: int64(n) * int64(n) * 8}
	if n == 0 {
		return res, nil
	}

	// Dense similarity matrix.
	mat := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range mat {
		mat[i] = flat[i*n : (i+1)*n]
	}
	s.Pairs(func(e1, e2 int32, sim float64) {
		mat[e1][e2] = sim
		mat[e2][e1] = sim
	})

	active := make([]bool, n)
	minID := make([]int32, n) // canonical min edge id of each cluster
	nbm := make([]int32, n)   // best partner of row i
	best := make([]float64, n)
	for i := 0; i < n; i++ {
		active[i] = true
		minID[i] = int32(i)
	}
	recomputeRow := func(i int) {
		nbm[i] = -1
		best[i] = 0
		row := mat[i]
		for j := 0; j < n; j++ {
			if j == i || !active[j] {
				continue
			}
			if row[j] > best[i] {
				best[i] = row[j]
				nbm[i] = int32(j)
			}
		}
	}
	for i := 0; i < n; i++ {
		recomputeRow(i)
	}

	for iter := 0; iter < n-1; iter++ {
		// Pick the globally best merge from the NBM arrays.
		bi := -1
		bs := 0.0
		for i := 0; i < n; i++ {
			if active[i] && nbm[i] >= 0 && best[i] > bs {
				bs = best[i]
				bi = i
			}
		}
		if bi < 0 {
			break // only zero similarities remain
		}
		bj := int(nbm[bi])

		a, b := minID[bi], minID[bj]
		into := a
		if b < into {
			into = b
		}
		res.Merges = append(res.Merges, core.Merge{
			Level: int32(len(res.Merges) + 1),
			A:     a, B: b, Into: into,
			Sim: bs,
		})

		// Single-linkage row update: fold bj into bi with max.
		rowI, rowJ := mat[bi], mat[bj]
		for k := 0; k < n; k++ {
			if rowJ[k] > rowI[k] {
				rowI[k] = rowJ[k]
				mat[k][bi] = rowJ[k]
			}
		}
		rowI[bi] = 0
		active[bj] = false
		minID[bi] = into

		// Rows whose best partner was bi or bj must be recomputed; bi's
		// row always is.
		recomputeRow(bi)
		for k := 0; k < n; k++ {
			if !active[k] || k == bi {
				continue
			}
			if nbm[k] == int32(bj) {
				nbm[k] = int32(bi)
			}
			if mat[k][bi] > best[k] {
				best[k] = mat[k][bi]
				nbm[k] = int32(bi)
			}
		}
	}
	return res, nil
}
