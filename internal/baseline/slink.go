package baseline

import (
	"math"

	"linkclust/internal/unionfind"
)

// SlinkResult is the pointer representation of the single-linkage
// dendrogram (Sibson 1973): Pi[i] is the highest-indexed point that point i
// first joins, and Lambda[i] is the dissimilarity level at which it does.
// Dissimilarity here is the negated link similarity, so Lambda values in
// [-1, 0) correspond to genuine incident-pair merges and Lambda = 0 to the
// "never merges for positive similarity" boundary.
type SlinkResult struct {
	Pi     []int32
	Lambda []float64
}

// SLINK runs Sibson's optimally efficient single-linkage algorithm over the
// edges of s in O(n²) time and O(n) working memory.
func SLINK(s *EdgeSim) *SlinkResult {
	n := s.NumEdges()
	res := &SlinkResult{
		Pi:     make([]int32, n),
		Lambda: make([]float64, n),
	}
	if n == 0 {
		return res
	}
	m := make([]float64, n)
	res.Pi[0] = 0
	res.Lambda[0] = math.Inf(1)
	for i := 1; i < n; i++ {
		res.Pi[i] = int32(i)
		res.Lambda[i] = math.Inf(1)
		for j := 0; j < i; j++ {
			m[j] = -s.Sim(int32(j), int32(i))
		}
		for j := 0; j < i; j++ {
			p := res.Pi[j]
			if res.Lambda[j] >= m[j] {
				if res.Lambda[j] < m[p] {
					m[p] = res.Lambda[j]
				}
				res.Lambda[j] = m[j]
				res.Pi[j] = int32(i)
			} else if m[j] < m[p] {
				m[p] = m[j]
			}
		}
		for j := 0; j < i; j++ {
			if res.Lambda[j] >= res.Lambda[res.Pi[j]] {
				res.Pi[j] = int32(i)
			}
		}
	}
	return res
}

// CutSim returns the min-labeled flat clustering at similarity threshold
// theta > 0: point i is linked to Pi[i] whenever Lambda[i] <= -theta.
func (r *SlinkResult) CutSim(theta float64) []int32 {
	uf := unionfind.NewMin(len(r.Pi))
	for i := range r.Pi {
		if r.Lambda[i] <= -theta {
			uf.Union(int32(i), r.Pi[i])
		}
	}
	return uf.Labels()
}
