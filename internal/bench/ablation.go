package bench

import (
	"io"

	"linkclust/internal/baseline"
	"linkclust/internal/core"
	"linkclust/internal/unionfind"
)

// Ablation quantifies the design choices DESIGN.md calls out, on one
// mid-size workload:
//
//   - the chain array C versus classic union-find on the same merge stream
//     (the chain pays full-chain rewrites in exchange for min-canonical
//     labels and §VI-B replica mergeability);
//   - the single-linkage algorithm family: the paper's sweep versus NBM,
//     SLINK, the Gower–Ross MST construction, and generic O(n³) HAC — all
//     computing the same dendrogram at very different costs.
func Ablation(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	// A workload small enough that the dense baselines fit.
	var wl Workload
	for _, cand := range wls {
		if cand.Graph.NumEdges() <= cfg.MaxStandardEdges && cand.Graph.NumEdges() <= baseline.MaxNBMEdges {
			wl = cand
		}
	}
	if wl.Graph == nil {
		wl = wls[0]
	}
	g := wl.Graph
	pl := core.Similarity(g)
	pl.Sort()

	// Resolve the sweep's merge-op stream once.
	var ops [][2]int32
	for i := range pl.Pairs {
		p := &pl.Pairs[i]
		for _, k := range p.Common {
			e1, ok1 := g.EdgeBetween(int(p.U), int(k))
			e2, ok2 := g.EdgeBetween(int(p.V), int(k))
			if ok1 && ok2 {
				ops = append(ops, [2]int32{e1, e2})
			}
		}
	}
	m := g.NumEdges()

	t1 := &Table{
		Title:   "Ablation A: chain array C vs union-find on the real merge stream",
		Columns: []string{"structure", "time", "notes"},
		Notes: []string{
			"same K2 merge operations in sorted order; the chain's extra cost buys min-canonical labels and §VI-B replica merging",
		},
	}
	t1.AddRow("chain (paper)", timeIt(cfg.Repeats, func() {
		ch := core.NewChain(m)
		for _, op := range ops {
			ch.Merge(op[0], op[1])
		}
	}), "full-chain rewrites per merge")
	t1.AddRow("union-find (min)", timeIt(cfg.Repeats, func() {
		uf := unionfind.NewMin(m)
		for _, op := range ops {
			uf.Union(op[0], op[1])
		}
	}), "min labels, lazy compression")
	t1.AddRow("union-find (rank)", timeIt(cfg.Repeats, func() {
		uf := unionfind.NewRanked(m)
		for _, op := range ops {
			uf.Union(op[0], op[1])
		}
	}), "arbitrary labels")
	t1.Fprint(w)

	t2 := &Table{
		Title:   "Ablation B: single-linkage algorithm family (same dendrogram)",
		Columns: []string{"algorithm", "complexity", "time"},
	}
	es := baseline.NewEdgeSim(g, pl)
	t2.AddRow("sweeping (paper)", "O(|V|+K1·logK1+√K2·|E|)", timeIt(cfg.Repeats, func() {
		if _, err := core.Sweep(g, copyPairs(pl)); err != nil {
			panic(err)
		}
	}))
	t2.AddRow("MST (Gower-Ross)", "O(K2 log K2)", timeIt(cfg.Repeats, func() {
		_ = baseline.MST(es)
	}))
	if g.NumEdges() <= baseline.MaxNBMEdges {
		t2.AddRow("NBM (standard)", "O(|E|^2)", timeIt(cfg.Repeats, func() {
			if _, err := baseline.NBM(es); err != nil {
				panic(err)
			}
		}))
		t2.AddRow("SLINK", "O(|E|^2), O(|E|) mem", timeIt(cfg.Repeats, func() {
			_ = baseline.SLINK(es)
		}))
		if g.NumEdges() <= 2500 {
			t2.AddRow("generic HAC", "O(|E|^3)", timeIt(1, func() {
				if _, err := baseline.HAC(es, baseline.SingleLinkage); err != nil {
					panic(err)
				}
			}))
		}
	}
	t2.Notes = append(t2.Notes,
		"all rows compute identical flat clusterings at every threshold (cross-validated in internal/baseline tests)")
	t2.Fprint(w)
	return nil
}
