package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyConfig returns a configuration small enough for unit tests.
func tinyConfig(t *testing.T) Config {
	t.Helper()
	cfg, err := DefaultConfig(SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Corpus.Vocab = 600
	cfg.Corpus.Docs = 1500
	cfg.Corpus.Topics = 8
	cfg.Repeats = 1
	cfg.Threads = []int{1, 2}
	cfg.MaxStandardEdges = 600
	return cfg
}

func TestDefaultConfigSizes(t *testing.T) {
	for _, s := range []Size{SizeSmall, SizeMedium, SizeLarge} {
		cfg, err := DefaultConfig(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(cfg.Alphas) != 5 {
			t.Fatalf("%s: %d alphas", s, len(cfg.Alphas))
		}
		if cfg.Corpus.Vocab <= 0 || cfg.Corpus.Docs <= 0 {
			t.Fatalf("%s: empty corpus config", s)
		}
	}
	if _, err := DefaultConfig("giant"); err == nil {
		t.Fatal("unknown size accepted")
	}
}

func TestBuildWorkloads(t *testing.T) {
	cfg := tinyConfig(t)
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(wls) != len(cfg.Alphas) {
		t.Fatalf("%d workloads, want %d", len(wls), len(cfg.Alphas))
	}
	// Graph size grows with α.
	for i := 1; i < len(wls); i++ {
		if wls[i].Graph.NumVertices() < wls[i-1].Graph.NumVertices() {
			t.Fatalf("vertex count shrank from α=%v to α=%v", wls[i-1].Alpha, wls[i].Alpha)
		}
	}
}

func TestDelta0PerAlpha(t *testing.T) {
	cfg := tinyConfig(t)
	if d := cfg.delta0For(0.005); d != 5000 {
		t.Fatalf("delta0For(0.005) = %d, want 5000", d)
	}
	if d := cfg.delta0For(0.77); d != cfg.Coarse.Delta0 {
		t.Fatalf("unknown alpha delta0 = %d, want default %d", d, cfg.Coarse.Delta0)
	}
	p := cfg.coarseFor(0.001, 4)
	if p.Delta0 != 1000 || p.Workers != 4 {
		t.Fatalf("coarseFor = %+v", p)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tb.AddRow(1, "x")
	tb.AddRow(2.5, time.Duration(1500*time.Millisecond))
	tb.AddRow(nil, int64(7))
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a note", "1.500s", "2.5", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		0.0001:  "1.000e-04",
		1e8:     "1.000e+08",
		-0.25:   "-0.25",
		-0.0001: "-1.000e-04",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRetainedBytes(t *testing.T) {
	const sz = 1 << 20
	delta, v := retainedBytes(func() any { return make([]byte, sz) })
	if v == nil {
		t.Fatal("value lost")
	}
	if delta < sz/2 {
		t.Fatalf("retained %d bytes, expected ≈ %d", delta, sz)
	}
}

func TestTimeItTakesMinimum(t *testing.T) {
	calls := 0
	d := timeIt(3, func() { calls++ })
	if calls != 3 {
		t.Fatalf("f called %d times, want 3", calls)
	}
	if d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	// repeats < 1 clamps to 1.
	calls = 0
	timeIt(0, func() { calls++ })
	if calls != 1 {
		t.Fatalf("clamped repeats called %d times", calls)
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig4-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("all"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("fig9"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestAllExperimentsRun smoke-tests every experiment end to end on a tiny
// workload — each must produce non-empty output without error.
func TestAllExperimentsRun(t *testing.T) {
	cfg := tinyConfig(t)
	for _, e := range Experiments() {
		var buf bytes.Buffer
		if err := e.Run(&buf, cfg); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", e.Name)
		}
		if !strings.Contains(buf.String(), "==") {
			t.Fatalf("%s output has no table header:\n%s", e.Name, buf.String())
		}
	}
}
