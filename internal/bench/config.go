// Package bench is the experiment harness: it reconstructs every table and
// figure of the paper's evaluation (Section V measurements and Section VII
// experiments) on synthetic workloads, printing the same rows/series the
// paper reports. Absolute numbers differ from the paper (different machine,
// synthetic corpus, scaled-down sizes — see DESIGN.md §2); the comparisons
// each figure makes are what the harness reproduces.
package bench

import (
	"fmt"

	"linkclust/internal/coarse"
	"linkclust/internal/corpus"
	"linkclust/internal/obs"
)

// Config parameterizes a harness run.
type Config struct {
	// Corpus is the synthetic tweet corpus standing in for the paper's
	// December-2011 Twitter month.
	Corpus corpus.SynthConfig
	// Alphas are the paper's candidate-word fractions; rows are labeled
	// with these values.
	Alphas []float64
	// AlphaScale maps a paper α label to the effective vocabulary
	// fraction used against the synthetic corpus: the paper's corpus has
	// millions of candidate words while ours has tens of thousands, so
	// the same labels select a comparable graph-size progression when
	// scaled (see EXPERIMENTS.md).
	AlphaScale float64
	// Coarse is the coarse-grained parameter set; Delta0 is overridden
	// per α as in Section VII-B.
	Coarse coarse.Params
	// Delta0PerAlpha maps each α label to its initial chunk size (the
	// paper uses 100, 500, 1000, 5000, 10000 for the five fractions).
	Delta0PerAlpha map[float64]int64
	// Threads is the thread sweep of Fig. 6.
	Threads []int
	// Repeats is the number of timed repetitions per measurement; the
	// minimum is reported.
	Repeats int
	// EdgePermSeed seeds the random edge enumeration of Algorithm 2.
	EdgePermSeed uint64
	// MaxStandardEdges bounds the graphs on which the O(|E|²) standard
	// algorithm is attempted, mirroring the paper's inability to finish
	// it beyond α = 0.001.
	MaxStandardEdges int
	// Obs, when non-nil, collects per-experiment phase timers (workload
	// construction, per-figure runs) for the harness's run report. Nil
	// disables instrumentation.
	Obs *obs.Recorder
	// BenchJSON, when non-empty, is the path where machine-readable
	// microbenchmark experiments (currently simkernel) write their results
	// in the linkclust/bench/v1 schema (e.g. BENCH_similarity.json).
	BenchJSON string
}

// Size selects a preset workload scale.
type Size string

const (
	// SizeSmall finishes every experiment in seconds; graphs reach ~10⁴
	// incident pairs.
	SizeSmall Size = "small"
	// SizeMedium is the default; graphs reach ~10⁶ incident pairs.
	SizeMedium Size = "medium"
	// SizeLarge approaches the paper's scale and takes minutes.
	SizeLarge Size = "large"
)

// DefaultConfig returns the harness configuration for a preset size.
func DefaultConfig(size Size) (Config, error) {
	cfg := Config{
		Alphas:     []float64{0.0001, 0.0005, 0.001, 0.005, 0.01},
		Coarse:     coarse.DefaultParams(),
		Threads:    []int{1, 2, 4, 6},
		Repeats:    3,
		AlphaScale: 100,
		Delta0PerAlpha: map[float64]int64{
			0.0001: 100,
			0.0005: 500,
			0.001:  1000,
			0.005:  5000,
			0.01:   10000,
		},
		EdgePermSeed:     42,
		MaxStandardEdges: 4096,
	}
	base := corpus.DefaultSynthConfig()
	switch size {
	case SizeSmall:
		base.Vocab = 4000
		base.Docs = 6000
		base.Topics = 16
		cfg.MaxStandardEdges = 6000
	case SizeMedium:
		base.Vocab = 10000
		base.Docs = 25000
		base.Topics = 30
	case SizeLarge:
		base.Vocab = 20000
		base.Docs = 60000
		base.Topics = 40
		cfg.MaxStandardEdges = 8192
	default:
		return Config{}, fmt.Errorf("bench: unknown size %q (want small, medium or large)", size)
	}
	cfg.Corpus = base
	return cfg, nil
}

// delta0For returns the initial chunk size for an α label.
func (c Config) delta0For(alpha float64) int64 {
	if d, ok := c.Delta0PerAlpha[alpha]; ok {
		return d
	}
	return c.Coarse.Delta0
}

// coarseFor returns the coarse parameters specialized to an α label.
func (c Config) coarseFor(alpha float64, workers int) coarse.Params {
	p := c.Coarse
	p.Delta0 = c.delta0For(alpha)
	p.Workers = workers
	return p
}
