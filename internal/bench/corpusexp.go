package bench

import (
	"io"

	"linkclust/internal/corpus"
)

// CorpusExp validates the synthetic-corpus substitution (DESIGN.md §2): the
// generator must reproduce the statistical regularities of real short-text
// corpora that the paper's pipeline depends on — a heavy-tailed (Zipf-like)
// term frequency distribution, sublinear (Heaps) vocabulary growth, and
// tweet-length documents. The experiment prints them for the harness corpus
// at each preset size.
func CorpusExp(w io.Writer, cfg Config) error {
	t := &Table{
		Title:   "Corpus validation: synthetic stand-in vs tweet-corpus regularities",
		Columns: []string{"corpus", "docs", "vocab", "avg-len", "zipf-slope", "heaps-beta"},
		Notes: []string{
			"natural short text: Zipf slope ≈ -1 (heavy tail), Heaps beta ≈ 0.4–0.7, tweets average a handful of content words",
			"these are the properties Fig. 4(1)'s graph-size/density progression depends on",
		},
	}
	base := cfg.Corpus
	s := corpus.ComputeStats(corpus.Synthesize(base))
	t.AddRow("harness", s.Docs, s.DistinctTerms, s.AvgDocLen, s.ZipfExponent, s.HeapsExponent)

	// A skew sweep shows the knob's effect.
	for _, z := range []float64{0.9, 1.05, 1.3} {
		c := base
		c.ZipfExponent = z
		c.Docs = base.Docs / 4
		st := corpus.ComputeStats(corpus.Synthesize(c))
		t.AddRow(
			"zipf="+formatFloat(z), st.Docs, st.DistinctTerms,
			st.AvgDocLen, st.ZipfExponent, st.HeapsExponent)
	}
	t.Fprint(w)
	return nil
}
