package bench

import (
	"fmt"
	"io"

	"linkclust/internal/coarse"
	"linkclust/internal/core"
	"linkclust/internal/plot"
	"linkclust/internal/sigmoid"
)

// Fig2_1 reproduces Fig. 2(1): the number of changes on array C per level
// when the incident edge pairs are processed in fixed chunks of 1000, with
// the level identifier normalized to [0, 1]. Levels are bucketed into
// twenty bins for tabular display.
func Fig2_1(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	// The paper's measurement uses its mid-size graph; we use the middle
	// α of the sweep.
	wl := wls[len(wls)/2]
	tr, err := coarse.FixedChunks(wl.Graph, core.Similarity(wl.Graph), 1000)
	if err != nil {
		return err
	}
	t := &Table{
		Title: fmt.Sprintf("Fig 2(1): changes on array C per level (α=%v, chunk=1000, %d levels)",
			wl.Alpha, tr.NumLevels()),
		Columns: []string{"norm-level", "changes", "clusters"},
		Notes: []string{
			"paper: most changes occur in the lower half of the levels",
		},
	}
	const bins = 20
	n := tr.NumLevels()
	for b := 0; b < bins && n > 0; b++ {
		lo, hi := b*n/bins, (b+1)*n/bins
		if hi <= lo {
			continue
		}
		var changes int64
		for l := lo; l < hi; l++ {
			changes += tr.Changes[l]
		}
		t.AddRow(float64(hi)/float64(n), changes, tr.Clusters[hi-1])
	}
	// The "lower half" observation, quantified.
	var lower, total int64
	for l := 0; l < n; l++ {
		if l < n/2 {
			lower += tr.Changes[l]
		}
		total += tr.Changes[l]
	}
	if total > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("measured: %.1f%% of changes in the lower half of levels",
			100*float64(lower)/float64(total)))
	}
	t.Fprint(w)
	return nil
}

// Fig2_2 reproduces Fig. 2(2): the normalized cluster-count-versus-level
// curves for three fractions, with the sigmoid model fitted to each and the
// paper's example instance (a=-1, b=0.48, c=1, k=10) evaluated for
// comparison.
func Fig2_2(w io.Writer, cfg Config) error {
	// The paper uses α ∈ {0.0005, 0.001, 0.005} for this experiment.
	sub := cfg
	sub.Alphas = []float64{0.0005, 0.001, 0.005}
	wls, err := BuildWorkloads(sub)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Fig 2(2): sigmoid model of cluster count vs log level",
		Columns: []string{"alpha", "levels", "fit-a", "fit-b", "fit-c", "fit-k", "fit-RMSE", "paper-model-RMSE"},
		Notes: []string{
			"curves are axis-normalized as in the paper; the example instance is y = -1/(1+e^{-10(log x - 0.48)}) + 1",
		},
	}
	var curves []plot.Series
	for _, wl := range wls {
		pl := core.Similarity(wl.Graph)
		// Equal-length chunks: target ~120 levels so the log axis is
		// well resolved.
		total := pl.NumIncidentPairs()
		chunk := total / 120
		if chunk < 1 {
			chunk = 1
		}
		tr, err := coarse.FixedChunks(wl.Graph, pl, chunk)
		if err != nil {
			return err
		}
		xs := make([]float64, tr.NumLevels())
		ys := make([]float64, tr.NumLevels())
		for l := 0; l < tr.NumLevels(); l++ {
			xs[l] = float64(l + 1)
			ys[l] = float64(tr.Clusters[l])
		}
		nx, ny := sigmoid.Normalize(xs, ys)
		fit, _, err := sigmoid.Fit(nx, ny, sigmoid.GuessFromData(nx, ny))
		if err != nil {
			return err
		}
		paper := sigmoid.PaperExampleModel()
		t.AddRow(wl.Alpha, tr.NumLevels(),
			fit.A, fit.B, fit.C, fit.K,
			fit.RMSE(nx, ny), paper.RMSE(nx, ny))
		curves = append(curves, plot.Series{
			Name: fmt.Sprintf("α=%v", wl.Alpha),
			X:    nx, Y: ny,
		})
	}
	t.Fprint(w)
	if len(curves) > 0 {
		// Overlay the paper's example sigmoid over the same x span.
		paper := sigmoid.PaperExampleModel()
		var px, py []float64
		for i := 0; i <= 60; i++ {
			x := 1 + (float64(i)/60)*1.72 // e^1 ≈ 2.72: normalized log-x in [0,1]
			px = append(px, x)
			py = append(py, paper.Eval(x))
		}
		curves = append(curves, plot.Series{Name: "sigmoid(-1,0.48,1,10)", X: px, Y: py})
		if err := plot.Render(w, curves, plot.Options{
			Width: 68, Height: 18, LogX: true,
			Title:  "normalized clusters vs log level (Fig 2(2) shape)",
			XLabel: "normalized level (log scale)", YLabel: "normalized clusters",
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
