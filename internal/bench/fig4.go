package bench

import (
	"fmt"
	"io"
	"time"

	"linkclust/internal/baseline"
	"linkclust/internal/core"
	"linkclust/internal/graph"
)

// Fig4_1 reproduces Fig. 4(1): graph statistics per fraction α — vertex and
// edge counts, the number of vertex pairs on list L (K1), the number of
// distinct incident edge pairs (K2), and the density trend the paper calls
// out in the text.
func Fig4_1(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Fig 4(1): word-association graph statistics vs fraction α",
		Columns: []string{"alpha", "nodes", "edges", "vertex-pairs(K1)", "edge-pairs(K2)", "density"},
		Notes: []string{
			"paper: density decreases in α (1.0, 0.997, 0.963, 0.332, 0.136); K2 dominates |E| by 2~4 orders of magnitude",
		},
	}
	for _, wl := range wls {
		s := graph.ComputeStats(wl.Graph)
		t.AddRow(wl.Alpha, s.Vertices, s.Edges, s.K1, s.K2, s.Density)
	}
	t.Fprint(w)
	return nil
}

// copyPairs clones the pair-list header so repeated sweeps can re-sort
// without mutating the caller's list (Common arenas are shared; Sort only
// permutes the headers).
func copyPairs(pl *core.PairList) *core.PairList {
	return &core.PairList{Pairs: append([]core.Pair(nil), pl.Pairs...)}
}

// Fig4_2 reproduces Fig. 4(2): serial execution time of the initialization
// phase, the sweeping algorithm, and the standard O(|E|²) algorithm, plus
// the speedup the paper quotes (2.0 / 40.0 / 74.2 for the three fractions
// the standard algorithm finished).
func Fig4_2(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Fig 4(2): serial execution time vs fraction α",
		Columns: []string{"alpha", "edges", "init", "sweeping", "standard(NBM)", "speedup(std/sweep)"},
		Notes: []string{
			"paper: sweeping ≈ init across α; standard only finishes on the three smallest fractions with speedups 2.0, 40.0, 74.2",
			fmt.Sprintf("standard algorithm attempted only at |E| <= %d (dense-matrix bound)", cfg.MaxStandardEdges),
		},
	}
	for _, wl := range wls {
		g := wl.Graph
		var pl *core.PairList
		initTime := timeIt(cfg.Repeats, func() { pl = core.Similarity(g) })

		var sweepTime time.Duration
		sweepTime = timeIt(cfg.Repeats, func() {
			if _, err := core.Sweep(g, copyPairs(pl)); err != nil {
				panic(err)
			}
		})

		stdCell, speedCell := "-", "-"
		if g.NumEdges() <= cfg.MaxStandardEdges && g.NumEdges() <= baseline.MaxNBMEdges {
			es := baseline.NewEdgeSim(g, pl)
			stdTime := timeIt(cfg.Repeats, func() {
				if _, err := baseline.NBM(es); err != nil {
					panic(err)
				}
			})
			stdCell = formatSeconds(stdTime)
			if sweepTime > 0 {
				speedCell = formatFloat(float64(stdTime) / float64(sweepTime))
			}
		}
		t.AddRow(wl.Alpha, g.NumEdges(), initTime, sweepTime, stdCell, speedCell)
	}
	t.Fprint(w)
	return nil
}

// Fig4_3 reproduces Fig. 4(3): memory usage of the sweeping algorithm
// versus the standard algorithm. We report retained heap bytes (the paper
// reports virtual memory; the ordering conclusion is the same). Standard
// runs beyond the dense-matrix bound are projected analytically as 8·|E|²
// matrix bytes.
func Fig4_3(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Fig 4(3): memory usage vs fraction α (KB)",
		Columns: []string{"alpha", "edges", "sweeping-KB", "standard-KB"},
		Notes: []string{
			"paper at α=0.001: standard 19.9 GB vs sweeping 881.2 MB",
			"standard entries marked (proj) are the analytic 8|E|² matrix size where the run would not fit",
		},
	}
	for _, wl := range wls {
		g := wl.Graph
		sweepBytes, _ := retainedBytes(func() any {
			pl := core.Similarity(g)
			res, err := core.Sweep(g, pl)
			if err != nil {
				panic(err)
			}
			return [2]any{pl, res}
		})

		stdCell := ""
		if g.NumEdges() <= cfg.MaxStandardEdges && g.NumEdges() <= baseline.MaxNBMEdges {
			stdBytes, _ := retainedBytes(func() any {
				pl := core.Similarity(g)
				es := baseline.NewEdgeSim(g, pl)
				res, err := baseline.NBM(es)
				if err != nil {
					panic(err)
				}
				return [3]any{pl, es, res}
			})
			stdCell = cell(kb(stdBytes))
		} else {
			m := int64(g.NumEdges())
			stdCell = fmt.Sprintf("%d (proj)", kb(8*m*m))
		}
		t.AddRow(wl.Alpha, g.NumEdges(), kb(sweepBytes), stdCell)
	}
	t.Fprint(w)
	return nil
}
