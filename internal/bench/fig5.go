package bench

import (
	"io"

	"linkclust/internal/coarse"
	"linkclust/internal/core"
)

// Fig5_1 reproduces Fig. 5(1): the breakdown of coarse-grained epochs into
// head/fresh, tail/fresh, rollback and reused, per fraction α, under the
// paper's parameters (γ=2, φ=100, per-α δ0, η0=8).
func Fig5_1(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Fig 5(1): coarse-grained epoch breakdown vs fraction α",
		Columns: []string{"alpha", "delta0", "head/fresh", "tail/fresh", "rollback", "reused", "levels"},
		Notes: []string{
			"paper: few head epochs (chunks grow exponentially); most incident pairs are processed in the tail",
		},
	}
	for _, wl := range wls {
		pl := core.Similarity(wl.Graph)
		res, err := coarse.Sweep(wl.Graph, pl, cfg.coarseFor(wl.Alpha, 1))
		if err != nil {
			return err
		}
		counts := map[coarse.EpochKind]int{}
		for _, ep := range res.Epochs {
			counts[ep.Kind]++
		}
		t.AddRow(wl.Alpha, cfg.delta0For(wl.Alpha),
			counts[coarse.EpochHeadFresh], counts[coarse.EpochTailFresh],
			counts[coarse.EpochRollback], counts[coarse.EpochReused],
			res.Levels)
	}
	t.Fprint(w)
	return nil
}

// Fig5_2 reproduces Fig. 5(2): execution time and memory of coarse-grained
// clustering versus the full fine-grained sweep, plus the fraction of
// incident edge pairs actually processed (the paper reports 55.1% at
// α = 0.005 — the early φ-stop is where the speedup comes from).
func Fig5_2(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Fig 5(2): coarse-grained vs fine-grained sweeping",
		Columns: []string{"alpha", "coarse-time", "sweep-time", "coarse-KB", "sweep-KB", "frac-processed"},
		Notes: []string{
			"paper: coarse-grained is faster (it stops below φ clusters, skipping the long tail) at comparable memory",
		},
	}
	for _, wl := range wls {
		g := wl.Graph
		pl := core.Similarity(g)
		params := cfg.coarseFor(wl.Alpha, 1)

		var frac float64
		coarseTime := timeIt(cfg.Repeats, func() {
			res, err := coarse.Sweep(g, copyPairs(pl), params)
			if err != nil {
				panic(err)
			}
			frac = res.FractionProcessed()
		})
		sweepTime := timeIt(cfg.Repeats, func() {
			if _, err := core.Sweep(g, copyPairs(pl)); err != nil {
				panic(err)
			}
		})
		// Retained set = the run's input pair list plus its outputs, the
		// moral equivalent of the paper's whole-process memory reading.
		coarseBytes, _ := retainedBytes(func() any {
			run := copyPairs(pl)
			res, err := coarse.Sweep(g, run, params)
			if err != nil {
				panic(err)
			}
			return [2]any{run, res}
		})
		sweepBytes, _ := retainedBytes(func() any {
			run := copyPairs(pl)
			res, err := core.Sweep(g, run)
			if err != nil {
				panic(err)
			}
			return [2]any{run, res}
		})
		keepAlive(pl)
		t.AddRow(wl.Alpha, coarseTime, sweepTime, kb(coarseBytes), kb(sweepBytes), frac)
	}
	t.Fprint(w)
	return nil
}
