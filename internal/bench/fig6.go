package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"linkclust/internal/coarse"
	"linkclust/internal/core"
)

// Fig6_1 reproduces Fig. 6(1): strong-scaling speedup of the parallel
// initialization phase over the thread sweep, per fraction α. The paper
// skips α = 0.0001 because its serial time is trivial; we keep every row
// and let the reader discount the trivial ones.
func Fig6_1(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Fig 6(1): initialization-phase speedup vs threads",
		Columns: append([]string{"alpha"}, threadColumns(cfg.Threads)...),
		Notes: []string{
			"paper (6-core Xeon): ~2.0 at 2 threads, 3.5–4.0 at 4, 4.5–5.0 at 6",
			fmt.Sprintf("this machine exposes %d CPU core(s); wall-clock speedup saturates there", runtime.NumCPU()),
		},
	}
	for _, wl := range wls {
		g := wl.Graph
		times := make([]time.Duration, len(cfg.Threads))
		for i, th := range cfg.Threads {
			times[i] = timeIt(cfg.Repeats, func() { _ = core.SimilarityParallel(g, th) })
		}
		t.AddRow(speedupRow(wl.Alpha, cfg.Threads, times)...)
	}
	t.Fprint(w)
	return nil
}

// Fig6_2 reproduces Fig. 6(2): strong-scaling speedup of the parallel
// coarse-grained sweeping phase over the thread sweep, per fraction α.
func Fig6_2(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Fig 6(2): sweeping-phase speedup vs threads",
		Columns: append([]string{"alpha"}, threadColumns(cfg.Threads)...),
		Notes: []string{
			"paper: sweeping scales sublinearly (replica merging is partly serial) but positively",
			fmt.Sprintf("this machine exposes %d CPU core(s); wall-clock speedup saturates there", runtime.NumCPU()),
		},
	}
	for _, wl := range wls {
		g := wl.Graph
		pl := core.Similarity(g)
		times := make([]time.Duration, len(cfg.Threads))
		for i, th := range cfg.Threads {
			params := cfg.coarseFor(wl.Alpha, th)
			times[i] = timeIt(cfg.Repeats, func() {
				if _, err := coarse.Sweep(g, copyPairs(pl), params); err != nil {
					panic(err)
				}
			})
		}
		t.AddRow(speedupRow(wl.Alpha, cfg.Threads, times)...)
	}
	t.Fprint(w)
	return nil
}

func threadColumns(threads []int) []string {
	cols := make([]string, len(threads))
	for i, t := range threads {
		cols[i] = fmt.Sprintf("T=%d", t)
	}
	return cols
}

// speedupRow renders one α row: the T=1 column shows the absolute time,
// later columns the speedup relative to it.
func speedupRow(alpha float64, threads []int, times []time.Duration) []any {
	row := make([]any, 0, len(threads)+1)
	row = append(row, alpha)
	base := times[0]
	for i := range threads {
		if i == 0 {
			row = append(row, formatSeconds(base)+" (1x)")
			continue
		}
		if times[i] <= 0 {
			row = append(row, "-")
			continue
		}
		row = append(row, formatFloat(float64(base)/float64(times[i]))+"x")
	}
	return row
}
