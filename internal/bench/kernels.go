package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"linkclust/internal/core"
	"linkclust/internal/obs"
)

// kernelsResult is one α row of the kernel-equivalence smoke run.
type kernelsResult struct {
	Alpha         float64 `json:"alpha"`
	Vertices      int     `json:"vertices"`
	Edges         int     `json:"edges"`
	Pairs         int     `json:"pairs"`          // K1
	IncidentPairs int64   `json:"incident_pairs"` // K2

	PlainNs       int64 `json:"plain_ns"`        // wedge-major similarity
	RelabeledNs   int64 `json:"relabeled_ns"`    // degree-ordered similarity
	SweepSerialNs int64 `json:"sweep_serial_ns"` // serial claim-scan sweep
	SweepCASNs    int64 `json:"sweep_cas_ns"`    // CAS min-reservation sweep, T=8

	// CASRounds counts rounds the T=8 run scheduled through the lock-free
	// CAS path; zero would mean the path under test never executed.
	CASRounds int64 `json:"cas_rounds"`
	// Engine is what -engine auto selects for this row at T=8 here.
	Engine string `json:"engine"`
}

// kernelsReport is the BENCH_kernels.json document.
type kernelsReport struct {
	Schema    string            `json:"schema"`
	Name      string            `json:"name"`
	CreatedAt time.Time         `json:"created_at"`
	Meta      map[string]string `json:"meta"`
	Results   []kernelsResult   `json:"results"`
}

// Kernels is the self-validating smoke run for the PR 7 kernels: per fraction
// α it checks that the degree-ordered relabeled similarity kernel (serial and
// T=8) reproduces the plain wedge kernel's pair list bitwise, and that the
// CAS min-reservation sweep at T=8 reproduces the serial merge stream bitwise
// while actually scheduling rounds through the CAS path. Any divergence fails
// the experiment, so a green run — e.g. the CI smoke step — certifies the
// equivalences on real workloads, not just unit fixtures. Timings are
// reported for orientation only; sweepkernel/simkernel own the measurements.
func Kernels(w io.Writer, cfg Config) error {
	// The CAS scheduler needs ≥2 effective workers, and par.Normalize clamps
	// requested worker counts to GOMAXPROCS. On a single-core runner T=8
	// would silently collapse to the serial claim scan and this experiment
	// would certify nothing — so raise GOMAXPROCS for the duration.
	if old := runtime.GOMAXPROCS(0); old < 8 {
		runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(old)
	}
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "kernels: relabeled similarity and CAS sweep vs their serial baselines (bitwise)",
		Columns: []string{"alpha", "K1", "K2", "plain", "relabeled", "sweep", "cas(T=8)", "cas-rounds", "auto-engine"},
		Notes: []string{
			"relabeled pair lists (serial and T=8) compared bitwise to the plain wedge kernel before timing is accepted",
			"CAS merge stream compared bitwise to the serial sweep; cas-rounds > 0 proves the lock-free path ran",
			fmt.Sprintf("this machine exposes %d CPU core(s); GOMAXPROCS raised to 8 so the CAS path is exercised", runtime.NumCPU()),
		},
	}
	report := &kernelsReport{
		Schema:    BenchSchemaV1,
		Name:      "kernels",
		CreatedAt: time.Now().UTC(),
		Meta: map[string]string{
			"repeats": fmt.Sprintf("%d", cfg.Repeats),
			"cpus":    fmt.Sprintf("%d", runtime.NumCPU()),
		},
	}
	for _, wl := range wls {
		g := wl.Graph
		end := cfg.Obs.Phase(fmt.Sprintf("kernels-alpha-%g", wl.Alpha))
		var plain *core.PairList
		plainNs := timeIt(cfg.Repeats, func() { plain = core.Similarity(g) })
		var rel *core.PairList
		relNs := timeIt(cfg.Repeats, func() { rel = core.SimilarityRelabeled(g, 1) })
		if err := samePairList(plain, rel); err != nil {
			end()
			return fmt.Errorf("bench: alpha %v: relabeled similarity (serial): %w", wl.Alpha, err)
		}
		rel8 := core.SimilarityRelabeled(g, 8)
		if err := samePairList(plain, rel8); err != nil {
			end()
			return fmt.Errorf("bench: alpha %v: relabeled similarity (T=8): %w", wl.Alpha, err)
		}
		plain.Sort() // both sweeps sort in place; hoist the shared cost
		var serial *core.Result
		serialNs := timeIt(cfg.Repeats, func() {
			r, err2 := core.Sweep(g, plain)
			if err2 != nil {
				err = err2
				return
			}
			serial = r
		})
		if err != nil {
			end()
			return fmt.Errorf("bench: serial sweep at alpha %v: %w", wl.Alpha, err)
		}
		rec := obs.New()
		var cas *core.Result
		casNs := timeIt(cfg.Repeats, func() {
			r, err2 := core.SweepParallelRecorded(g, plain, 8, rec)
			if err2 != nil {
				err = err2
				return
			}
			cas = r
		})
		end()
		if err != nil {
			return fmt.Errorf("bench: CAS sweep at alpha %v: %w", wl.Alpha, err)
		}
		if err := sameMergeStream(serial, cas); err != nil {
			return fmt.Errorf("bench: alpha %v: CAS sweep: %w", wl.Alpha, err)
		}
		res := kernelsResult{
			Alpha:         wl.Alpha,
			Vertices:      g.NumVertices(),
			Edges:         g.NumEdges(),
			Pairs:         len(plain.Pairs),
			IncidentPairs: plain.NumIncidentPairs(),
			PlainNs:       plainNs.Nanoseconds(),
			RelabeledNs:   relNs.Nanoseconds(),
			SweepSerialNs: serialNs.Nanoseconds(),
			SweepCASNs:    casNs.Nanoseconds(),
			CASRounds:     rec.Counter(core.CtrSweepCASRounds),
			Engine:        core.ChooseSweepEngine(plain.NumIncidentPairs(), 8, false),
		}
		report.Results = append(report.Results, res)
		t.AddRow(wl.Alpha, res.Pairs, res.IncidentPairs,
			formatSeconds(plainNs), formatSeconds(relNs),
			formatSeconds(serialNs), formatSeconds(casNs),
			res.CASRounds, res.Engine)
	}
	t.Fprint(w)
	if cfg.BenchJSON != "" {
		if err := writeBenchJSON(cfg.BenchJSON, report); err != nil {
			return fmt.Errorf("bench: writing %s: %w", cfg.BenchJSON, err)
		}
		fmt.Fprintf(w, "bench report written to %s\n", cfg.BenchJSON)
	}
	return nil
}

// samePairList verifies that two similarity pair lists are bitwise identical:
// same order, same endpoints, same float64 similarity bits, same shared
// neighbor lists.
func samePairList(want, got *core.PairList) error {
	if len(got.Pairs) != len(want.Pairs) {
		return fmt.Errorf("pair list diverged: %d pairs vs baseline's %d", len(got.Pairs), len(want.Pairs))
	}
	for i := range want.Pairs {
		a, b := &want.Pairs[i], &got.Pairs[i]
		if a.U != b.U || a.V != b.V {
			return fmt.Errorf("pair %d diverged: (%d,%d) vs baseline's (%d,%d)", i, b.U, b.V, a.U, a.V)
		}
		if math.Float64bits(a.Sim) != math.Float64bits(b.Sim) {
			return fmt.Errorf("pair %d (%d,%d) similarity bits diverged: %x vs baseline's %x",
				i, a.U, a.V, math.Float64bits(b.Sim), math.Float64bits(a.Sim))
		}
		if len(a.Common) != len(b.Common) {
			return fmt.Errorf("pair %d (%d,%d) common-neighbor count diverged: %d vs baseline's %d",
				i, a.U, a.V, len(b.Common), len(a.Common))
		}
		for k := range a.Common {
			if a.Common[k] != b.Common[k] {
				return fmt.Errorf("pair %d (%d,%d) common neighbor %d diverged: %d vs baseline's %d",
					i, a.U, a.V, k, b.Common[k], a.Common[k])
			}
		}
	}
	return nil
}
