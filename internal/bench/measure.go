package bench

import (
	"runtime"
	"time"
)

// timeIt runs f repeats times and returns the minimum wall-clock duration —
// the most stable point estimate on a shared machine.
func timeIt(repeats int, f func()) time.Duration {
	if repeats < 1 {
		repeats = 1
	}
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		f()
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// retainedBytes measures the live-heap growth attributable to the value f
// builds and returns: GC, baseline, build, GC, remeasure while the result
// is still referenced. This is our stand-in for the paper's virtual-memory
// readings (DESIGN.md §2): it captures the retained footprint of the
// algorithm's data structures.
func retainedBytes(f func() any) (int64, any) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	v := f()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	runtime.KeepAlive(v)
	if delta < 0 {
		delta = 0
	}
	return delta, v
}

// kb renders a byte count as integral kilobytes, matching the paper's
// KB-scaled memory plots.
func kb(bytes int64) int64 {
	return bytes / 1024
}

// keepAlive pins inputs shared across successive retainedBytes calls. A
// measured closure's captured variables die at their last use *inside* the
// closure, so without the pin the after-GC frees them mid-measurement and
// the delta under-counts (or clamps to zero).
func keepAlive(v any) { runtime.KeepAlive(v) }
