package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"linkclust"
	"linkclust/internal/core"
	"linkclust/internal/obs"
)

// outOfCoreWorkers is the thread sweep of the spilled-vs-pipelined
// comparison.
var outOfCoreWorkers = []int{1, 4, 8}

// ladderNoiseFloor is the smallest ladder budget worth arming: the
// runtime/metrics live-heap sample the facade's MemBudget reads lags real
// allocation by up to one partially-filled span per size class per P, so a
// budget in the tens of kilobytes may never observe a breach on a tiny
// workload. 256 KiB clears that lag by an order of magnitude.
const ladderNoiseFloor = 256 << 10

// outOfCoreResult is one (alpha, workers) row of BENCH_outofcore.json.
type outOfCoreResult struct {
	Alpha   float64 `json:"alpha"`
	Edges   int     `json:"edges"`
	Pairs   int     `json:"pairs"`   // similarity pairs in the list
	PairKB  int64   `json:"pair_kb"` // encoded spill payload of the list
	Workers int     `json:"workers"`

	SpillBuckets int64 `json:"spill_buckets"`
	SpillKB      int64 `json:"spill_kb"`
	ReadStalls   int64 `json:"read_stalls"`

	SpilledNs   int64   `json:"spilled_ns"`
	PipelinedNs int64   `json:"pipelined_ns"`
	Overhead    float64 `json:"overhead"` // spilled / pipelined wall clock
	// Identical records that every timed run — spilled and pipelined — was
	// compared bitwise to the serial sweep before its time was accepted.
	Identical bool `json:"identical"`

	// The facade-ladder acceptance leg: ClusterCtx under a budget the pair
	// list's spill payload exceeds at least 4× rerouted through the spill
	// (spill counter 1, degrade counter 0) and matched the serial merge
	// stream bitwise. LadderGolden false means the leg was skipped because
	// the budget sat under the heap-metric noise floor (see
	// ladderNoiseFloor), never that a check failed — a failed check fails
	// the experiment.
	LadderBudgetKB int64 `json:"ladder_budget_kb"`
	LadderSpills   int64 `json:"ladder_spills"`
	LadderDegrades int64 `json:"ladder_degrades"`
	LadderGolden   bool  `json:"ladder_golden"`
}

// outOfCoreReport is the BENCH_outofcore.json document.
type outOfCoreReport struct {
	Schema    string            `json:"schema"`
	Name      string            `json:"name"`
	CreatedAt time.Time         `json:"created_at"`
	Meta      map[string]string `json:"meta"`
	Results   []outOfCoreResult `json:"results"`
}

// OutOfCore is the self-validating disk-spill benchmark: per fraction α and
// worker count it times the spilled sweep (radix-partitioned pair list
// written to per-bucket spill files, streamed back through the engine)
// against the in-memory pipelined sweep, each run consuming a fresh clone of
// the same pair list. Every timed run is first compared bitwise to the
// serial sweep — a divergence fails the whole experiment, so a reported time
// is also a proof of correctness. Each row whose budget clears the
// heap-metric noise floor additionally drives the facade's memory-budget
// ladder for real, with no fault injection: a ClusterCtx run under a budget
// of a quarter of the pair list's encoded footprint — the list exceeds the
// budget at least 4× — must reroute through the spill (never the coarse
// degrade) and land on the serial merge stream exactly; rows below the
// floor say so in the table instead of arming an unobservable budget.
func OutOfCore(w io.Writer, cfg Config) error {
	if old := runtime.GOMAXPROCS(0); old < 8 {
		runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(old)
	}
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "outofcore: disk-spilled sweep vs in-memory pipelined (bitwise self-validating)",
		Columns: []string{"alpha", "edges", "pairs", "pair-KB", "T", "buckets", "spill-KB", "stalls", "spilled", "pipelined", "overhead", "ladder"},
		Notes: []string{
			"every timed run, spilled and pipelined, is compared bitwise to the serial sweep before its time counts",
			"each run consumes a fresh pair-list clone built outside the timed region",
			"ladder ok: ClusterCtx under budget pair-KB/4 -- a budget the spill payload exceeds >=4x -- rerouted",
			"  through the spilled sweep (mem_budget_spills 1, mem_budget_degrades 0) and stayed bitwise identical;",
			"  ladder skip: budget under the 256 KiB heap-metric noise floor, leg not armed on this row",
			"timings are the minimum over -repeats runs; spill files live in the OS temp directory",
		},
	}
	report := &outOfCoreReport{
		Schema:    BenchSchemaV1,
		Name:      "outofcore",
		CreatedAt: time.Now().UTC(),
		Meta: map[string]string{
			"workers": fmt.Sprintf("%v", outOfCoreWorkers),
			"repeats": fmt.Sprintf("%d", cfg.Repeats),
			"cpus":    fmt.Sprintf("%d", runtime.NumCPU()),
		},
	}
	for _, wl := range wls {
		end := cfg.Obs.Phase(fmt.Sprintf("outofcore-alpha-%g", wl.Alpha))
		rows, err := outOfCoreAlpha(wl, cfg, t)
		end()
		if err != nil {
			return err
		}
		report.Results = append(report.Results, rows...)
	}
	t.Fprint(w)
	if len(report.Results) == 0 {
		return fmt.Errorf("bench: outofcore: no workload produced a sweepable pair list")
	}
	if cfg.BenchJSON != "" {
		if err := writeBenchJSON(cfg.BenchJSON, report); err != nil {
			return fmt.Errorf("bench: writing %s: %w", cfg.BenchJSON, err)
		}
		fmt.Fprintf(w, "bench report written to %s\n", cfg.BenchJSON)
	}
	return nil
}

// clonePairList shallow-copies the pair slice: the sweep engines permute
// Pair values and drop Common references within their own copy but only ever
// read the shared neighbor arrays, so one master list safely feeds every
// consuming run.
func clonePairList(pl *core.PairList) *core.PairList {
	return &core.PairList{Pairs: append([]core.Pair(nil), pl.Pairs...)}
}

// outOfCoreAlpha runs the spilled-vs-pipelined protocol on one workload and
// returns its rows, one per worker count.
func outOfCoreAlpha(wl Workload, cfg Config, t *Table) ([]outOfCoreResult, error) {
	g := wl.Graph
	master := core.SimilarityParallel(g, 8)
	if len(master.Pairs) == 0 {
		return nil, nil
	}
	payload := core.SpillPayloadBytes(master)
	serial, err := core.Sweep(g, clonePairList(master))
	if err != nil {
		return nil, fmt.Errorf("bench: serial sweep at alpha %v: %w", wl.Alpha, err)
	}
	// The ladder budget: a quarter of the encoded pair list, so the spilled
	// payload exceeds the budget by at least the acceptance factor of 4. The
	// in-memory list the facade's budget actually observes growing is larger
	// still (struct headers on top of the encoded payload) — but the
	// runtime/metrics live-heap sample lags allocations by up to a
	// partially-filled span per size class per P, which on tiny workloads can
	// hide the whole list. The ladder leg therefore only runs on rows whose
	// budget clears that noise floor; skipped rows are marked in the table
	// so the coverage gap is never silent.
	budget := payload / 4
	ladder := budget >= ladderNoiseFloor
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}

	var out []outOfCoreResult
	for _, workers := range outOfCoreWorkers {
		rec := obs.New()
		var spilledNs, pipelinedNs time.Duration
		for r := 0; r < repeats; r++ {
			// Counters are taken from the first repeat only, keeping them
			// single-run values (buckets and bytes are worker- and
			// repeat-invariant anyway; stalls are a per-run timing artifact).
			var rrec *obs.Recorder
			if r == 0 {
				rrec = rec
			}
			pl := clonePairList(master)
			start := time.Now()
			res, err := core.SweepSpilledOpts(context.Background(), g, pl, workers, core.SpillOptions{}, rrec)
			d := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench: spilled sweep alpha %v T=%d: %w", wl.Alpha, workers, err)
			}
			if err := sameMergeStream(serial, res); err != nil {
				return nil, fmt.Errorf("bench: alpha %v T=%d: spilled sweep diverged: %w", wl.Alpha, workers, err)
			}
			if r == 0 || d < spilledNs {
				spilledNs = d
			}
		}
		for r := 0; r < repeats; r++ {
			pl := clonePairList(master)
			start := time.Now()
			res, err := core.SweepPipelined(g, pl, workers)
			d := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench: pipelined sweep alpha %v T=%d: %w", wl.Alpha, workers, err)
			}
			if err := sameMergeStream(serial, res); err != nil {
				return nil, fmt.Errorf("bench: alpha %v T=%d: pipelined sweep diverged: %w", wl.Alpha, workers, err)
			}
			if r == 0 || d < pipelinedNs {
				pipelinedNs = d
			}
		}

		// The ladder acceptance leg: a genuine budget breach through the
		// public facade — no fault injection. Collect the heap first so the
		// budget's baseline is clean and the similarity phase's growth (at
		// least the encoded payload, four budgets' worth) must trip it.
		var spills, degrades int64
		ladderCell := "skip"
		if ladder {
			runtime.GC()
			lrec := obs.New()
			lres, err := linkclust.ClusterCtx(context.Background(), g, linkclust.ClusterOptions{
				Workers:        workers,
				Recorder:       lrec,
				MemBudgetBytes: budget,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: ladder run alpha %v T=%d: %w", wl.Alpha, workers, err)
			}
			spills = lrec.Counter(linkclust.CtrMemBudgetSpills)
			degrades = lrec.Counter(linkclust.CtrMemBudgetDegrades)
			if err := sameMergeStream(serial, lres); err != nil {
				return nil, fmt.Errorf("bench: alpha %v T=%d: ladder run diverged: %w", wl.Alpha, workers, err)
			}
			if spills != 1 || degrades != 0 {
				return nil, fmt.Errorf("bench: alpha %v T=%d: budget %d should spill exactly once (spills=%d degrades=%d)",
					wl.Alpha, workers, budget, spills, degrades)
			}
			ladderCell = "ok"
		}

		row := outOfCoreResult{
			Alpha:          wl.Alpha,
			Edges:          g.NumEdges(),
			Pairs:          len(master.Pairs),
			PairKB:         kb(payload),
			Workers:        workers,
			SpillBuckets:   rec.Counter(core.CtrSpillBuckets),
			SpillKB:        kb(rec.Counter(core.CtrSpillBytesWritten)),
			ReadStalls:     rec.Counter(core.CtrSpillReadStalls),
			SpilledNs:      spilledNs.Nanoseconds(),
			PipelinedNs:    pipelinedNs.Nanoseconds(),
			Overhead:       float64(spilledNs) / float64(pipelinedNs),
			Identical:      true,
			LadderSpills:   spills,
			LadderDegrades: degrades,
			LadderGolden:   ladder,
		}
		if ladder {
			row.LadderBudgetKB = kb(budget)
		}
		out = append(out, row)
		t.AddRow(wl.Alpha, row.Edges, row.Pairs, row.PairKB, workers,
			row.SpillBuckets, row.SpillKB, row.ReadStalls,
			formatSeconds(spilledNs), formatSeconds(pipelinedNs),
			fmt.Sprintf("%.2fx", row.Overhead), ladderCell)
	}
	return out, nil
}
