package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"linkclust/internal/core"
)

// pipelineThreads is the thread sweep of the pipelined-vs-barrier comparison.
var pipelineThreads = []int{1, 2, 4, 8}

// pipelineThread is one worker-count measurement of a row: the barrier path
// (full sort, then sweep) against the pipelined path (partition, then
// sort-while-sweeping) on identical unsorted inputs.
type pipelineThread struct {
	Workers    int     `json:"workers"`
	BarrierNs  int64   `json:"barrier_ns"`
	PipelineNs int64   `json:"pipeline_ns"`
	Speedup    float64 `json:"speedup"` // barrier / pipelined
}

// pipelineResult is one α row of the pipeline microbenchmark.
type pipelineResult struct {
	Alpha         float64 `json:"alpha"`
	Vertices      int     `json:"vertices"`
	Edges         int     `json:"edges"`
	Pairs         int     `json:"pairs"`          // K1
	IncidentPairs int64   `json:"incident_pairs"` // K2
	Merges        int     `json:"merges"`
	Buckets       int64   `json:"buckets"`

	Threads []pipelineThread `json:"threads"`
}

// pipelineReport is the BENCH_pipeline.json document.
type pipelineReport struct {
	Schema    string            `json:"schema"`
	Name      string            `json:"name"`
	CreatedAt time.Time         `json:"created_at"`
	Meta      map[string]string `json:"meta"`
	Results   []pipelineResult  `json:"results"`
}

// Pipeline benchmarks the sort barrier against the pipelined sweep per
// fraction α: both paths start from the same unsorted pair list and are timed
// over their full sort+sweep wall-clock — the barrier path sorts the whole
// list and then runs the reservation engine, the pipelined path overlaps
// per-bucket sorting with sweeping. The comparison is self-validating: every
// timed run's merge stream is checked bitwise against the serial Sweep before
// its time is accepted, so a reported speedup can never come from divergent
// output. With cfg.BenchJSON set, the comparison is additionally written as a
// linkclust/bench/v1 JSON document.
func Pipeline(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	cols := []string{"alpha", "K1", "buckets"}
	for _, th := range pipelineThreads {
		cols = append(cols, fmt.Sprintf("T=%d barrier", th), fmt.Sprintf("T=%d pipe", th))
	}
	t := &Table{
		Title:   "pipeline: sort-then-sweep barrier vs sort-overlapped pipelined sweep",
		Columns: cols,
		Notes: []string{
			"both columns time sort+sweep end to end from the same unsorted pair list",
			"every merge stream verified bitwise against serial before timing is accepted",
			fmt.Sprintf("this machine exposes %d CPU core(s); single-core runs measure overhead, not overlap", runtime.NumCPU()),
		},
	}
	report := &pipelineReport{
		Schema:    BenchSchemaV1,
		Name:      "pipeline",
		CreatedAt: time.Now().UTC(),
		Meta: map[string]string{
			"threads": fmt.Sprintf("%v", pipelineThreads),
			"repeats": fmt.Sprintf("%d", cfg.Repeats),
			"cpus":    fmt.Sprintf("%d", runtime.NumCPU()),
		},
	}
	for _, wl := range wls {
		g := wl.Graph
		end := cfg.Obs.Phase(fmt.Sprintf("pipeline-alpha-%g", wl.Alpha))
		master := core.Similarity(g)
		serial, err := core.Sweep(g, clonePairs(master))
		if err != nil {
			end()
			return fmt.Errorf("bench: serial sweep at alpha %v: %w", wl.Alpha, err)
		}
		res := pipelineResult{
			Alpha:         wl.Alpha,
			Vertices:      g.NumVertices(),
			Edges:         g.NumEdges(),
			Pairs:         len(master.Pairs),
			IncidentPairs: master.NumIncidentPairs(),
			Merges:        len(serial.Merges),
			Buckets:       countBuckets(master),
		}
		row := []any{wl.Alpha, res.Pairs, res.Buckets}
		for _, th := range pipelineThreads {
			barrierNs, err := timeSweepFrom(cfg.Repeats, master, serial, func(pl *core.PairList) (*core.Result, error) {
				pl.SortWorkers(th)
				if th > 1 {
					return core.SweepParallel(g, pl, th)
				}
				return core.Sweep(g, pl)
			})
			if err != nil {
				end()
				return fmt.Errorf("bench: barrier sweep at alpha %v T=%d: %w", wl.Alpha, th, err)
			}
			pipeNs, err := timeSweepFrom(cfg.Repeats, master, serial, func(pl *core.PairList) (*core.Result, error) {
				return core.SweepPipelined(g, pl, th)
			})
			if err != nil {
				end()
				return fmt.Errorf("bench: pipelined sweep at alpha %v T=%d: %w", wl.Alpha, th, err)
			}
			tr := pipelineThread{Workers: th, BarrierNs: barrierNs.Nanoseconds(), PipelineNs: pipeNs.Nanoseconds()}
			if pipeNs > 0 {
				tr.Speedup = float64(barrierNs) / float64(pipeNs)
			}
			res.Threads = append(res.Threads, tr)
			row = append(row, formatSeconds(barrierNs), formatSeconds(pipeNs))
		}
		end()
		report.Results = append(report.Results, res)
		t.AddRow(row...)
	}
	t.Fprint(w)
	if cfg.BenchJSON != "" {
		if err := writeBenchJSON(cfg.BenchJSON, report); err != nil {
			return fmt.Errorf("bench: writing %s: %w", cfg.BenchJSON, err)
		}
		fmt.Fprintf(w, "bench report written to %s\n", cfg.BenchJSON)
	}
	return nil
}

// timeSweepFrom times run over fresh unsorted clones of master (cloned
// outside the timed region — both compared paths consume and destroy the
// unsorted order) and validates every repeat's merge stream bitwise against
// the serial reference before accepting its time. Minimum of repeats.
func timeSweepFrom(repeats int, master *core.PairList, serial *core.Result, run func(*core.PairList) (*core.Result, error)) (time.Duration, error) {
	if repeats < 1 {
		repeats = 1
	}
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		pl := clonePairs(master)
		start := time.Now()
		res, err := run(pl)
		d := time.Since(start)
		if err != nil {
			return 0, err
		}
		if err := sameMergeStream(serial, res); err != nil {
			return 0, err
		}
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// clonePairs deep-copies a pair list's order-bearing state so a sweep can
// sort the clone in place without disturbing the unsorted master.
func clonePairs(pl *core.PairList) *core.PairList {
	return &core.PairList{Pairs: append([]core.Pair(nil), pl.Pairs...)}
}

// countBuckets reports how many similarity buckets the partition would emit
// for a pair list — the pipeline's available overlap granularity.
func countBuckets(pl *core.PairList) int64 {
	return core.CountPipelineBuckets(pl.Pairs)
}
