package bench

import (
	"io"

	"linkclust/internal/baseline"
	"linkclust/internal/coarse"
	"linkclust/internal/core"
	"linkclust/internal/dendro"
	"linkclust/internal/graph"
	"linkclust/internal/onmi"
	"linkclust/internal/planted"
)

// Quality is an extension experiment (not a paper figure): community
// recovery on planted overlapping ground truth. For each mixing level μ it
// runs the fine-grained sweep, the coarse-grained sweep and the standard
// NBM algorithm, picks each dendrogram's maximum-partition-density cut, and
// scores the recovered node cover with overlapping NMI. The point: the
// accelerated algorithms recover the same communities the standard
// algorithm does (they compute the same dendrogram), and the coarse-grained
// bound costs little to nothing in recovery quality.
func Quality(w io.Writer, cfg Config) error {
	t := &Table{
		Title:   "Quality (extension): overlapping-NMI recovery on planted communities",
		Columns: []string{"mu", "edges", "sweep-NMI", "coarse-NMI", "standard-NMI"},
		Notes: []string{
			"each cell: ONMI of the max-partition-density cut vs planted truth; higher is better",
			"sweep and standard compute the same dendrogram, so equal scores are expected",
		},
	}
	for _, mu := range []float64{0.05, 0.15, 0.3, 0.45} {
		pcfg := planted.DefaultConfig()
		pcfg.Nodes = 250
		pcfg.Communities = 10
		pcfg.AvgDegree = 12
		pcfg.Mu = mu
		pcfg.OverlapFrac = 0.1
		bench, err := planted.Generate(pcfg)
		if err != nil {
			return err
		}
		g := bench.Graph
		pl := core.Similarity(g)

		sweepRes, err := core.Sweep(g, pl)
		if err != nil {
			return err
		}
		sweepNMI, err := bestCutNMI(g, dendro.New(g.NumEdges(), sweepRes.Merges), bench.Cover)
		if err != nil {
			return err
		}

		params := cfg.Coarse
		params.Phi = pcfg.Communities
		params.Delta0 = 100
		coarseRes, err := coarse.Sweep(g, pl, params)
		if err != nil {
			return err
		}
		coarseNMI, err := bestDensityLevelNMI(g, coarseRes, bench.Cover)
		if err != nil {
			return err
		}

		stdCell := "-"
		if g.NumEdges() <= baseline.MaxNBMEdges {
			es := baseline.NewEdgeSim(g, pl)
			nbm, err := baseline.NBM(es)
			if err != nil {
				return err
			}
			v, err := bestCutNMI(g, dendro.New(g.NumEdges(), nbm.Merges), bench.Cover)
			if err != nil {
				return err
			}
			stdCell = formatFloat(v)
		}
		t.AddRow(mu, g.NumEdges(), sweepNMI, coarseNMI, stdCell)
	}
	t.Fprint(w)
	return nil
}

// bestCutNMI scans the dendrogram's thresholds, picks the cut maximizing
// partition density, and returns its ONMI against truth.
func bestCutNMI(g *graph.Graph, d *dendro.Dendrogram, truth onmi.Cover) (float64, error) {
	_, _, labels := dendro.BestCut(g, d)
	return coverNMI(g, labels, truth)
}

// bestDensityLevelNMI scans a coarse result's levels for the densest cut.
func bestDensityLevelNMI(g *graph.Graph, res *coarse.Result, truth onmi.Cover) (float64, error) {
	d := dendro.New(g.NumEdges(), res.Merges)
	bestDensity, bestLabels := -1.0, []int32(nil)
	for level := int32(0); level <= res.Levels; level++ {
		labels := d.CutLevel(level)
		if dens := dendro.PartitionDensity(g, labels); dens > bestDensity {
			bestDensity, bestLabels = dens, labels
		}
	}
	return coverNMI(g, bestLabels, truth)
}

// coverNMI converts an edge clustering to a node cover (dropping fragments
// of fewer than three links) and scores it against truth. A degenerate
// cover scores 0 rather than erroring, so sweeps over harsh μ values keep
// reporting.
func coverNMI(g *graph.Graph, labels []int32, truth onmi.Cover) (float64, error) {
	comms := dendro.Communities(g, labels)
	cover := make(onmi.Cover, 0, len(comms))
	for _, c := range comms {
		if len(c.Edges) >= 3 {
			cover = append(cover, c.Nodes)
		}
	}
	if len(cover) == 0 {
		return 0, nil
	}
	v, err := onmi.Compare(cover, truth, g.NumVertices())
	if err != nil {
		return 0, nil
	}
	return v, nil
}
