package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment regenerates one figure/table of the paper.
type Experiment struct {
	Name        string
	Description string
	Run         func(io.Writer, Config) error
}

// Experiments returns the registry of all reproducible figures, in
// presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2-1", "changes on array C per level (fixed chunks)", Fig2_1},
		{"fig2-2", "sigmoid model of cluster count vs log level", Fig2_2},
		{"fig4-1", "graph statistics vs fraction α", Fig4_1},
		{"fig4-2", "serial execution time (init / sweeping / standard)", Fig4_2},
		{"fig4-3", "memory usage (sweeping vs standard)", Fig4_3},
		{"fig5-1", "coarse-grained epoch breakdown", Fig5_1},
		{"fig5-2", "coarse-grained vs fine-grained sweeping", Fig5_2},
		{"fig6-1", "initialization speedup vs threads", Fig6_1},
		{"fig6-2", "sweeping speedup vs threads", Fig6_2},
		{"theory", "Theorem 2 scaling on k-regular and complete graphs", Theory},
		{"simkernel", "extension: legacy hash-map vs wedge-major similarity kernels", SimKernel},
		{"sweepkernel", "extension: serial vs parallel fine-grained sweep engine", SweepKernel},
		{"pipeline", "extension: sort barrier vs sort-overlapped pipelined sweep", Pipeline},
		{"quality", "extension: community recovery (ONMI) on planted ground truth", Quality},
		{"ablation", "extension: chain-vs-union-find and algorithm-family comparisons", Ablation},
		{"corpus", "validation: synthetic corpus vs tweet-corpus statistics", CorpusExp},
		{"service", "extension: linkclustd load test (cold vs cached over HTTP, concurrent clients)", Service},
		{"kernels", "extension: relabeled similarity + CAS sweep bitwise-equivalence smoke", Kernels},
		{"stream", "extension: incremental ingest+snapshot vs batch from scratch (bitwise self-validating)", Stream},
		{"outofcore", "extension: disk-spilled sweep vs in-memory pipelined (bitwise self-validating)", OutOfCore},
	}
}

// Lookup resolves an experiment by name; "all" runs every experiment.
func Lookup(name string) (Experiment, error) {
	if name == "all" {
		return Experiment{
			Name:        "all",
			Description: "every experiment in order",
			Run: func(w io.Writer, cfg Config) error {
				for _, e := range Experiments() {
					end := cfg.Obs.Phase(e.Name)
					err := e.Run(w, cfg)
					end()
					if err != nil {
						return fmt.Errorf("%s: %w", e.Name, err)
					}
				}
				return nil
			},
		}, nil
	}
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	names := make([]string, 0, len(Experiments())+1)
	for _, e := range Experiments() {
		names = append(names, e.Name)
	}
	names = append(names, "all")
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (available: %v)", name, names)
}
