package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/jobs"
)

// serviceResult is one workload row of the daemon load test: cold submit
// latency (queue wait + full pipeline) against the cached resubmit, plus the
// bitwise-identity verdict versus an in-process serial run.
type serviceResult struct {
	Alpha     float64 `json:"alpha"`
	Vertices  int     `json:"vertices"`
	Edges     int     `json:"edges"`
	ColdNs    int64   `json:"cold_ns"`
	CachedNs  int64   `json:"cached_ns"`
	Speedup   float64 `json:"speedup"` // cold / cached
	Identical bool    `json:"identical_to_solo"`
}

// serviceReport is the BENCH_service.json document. Load-phase aggregates
// live in Meta (the bench/v1 envelope allows no extra top-level fields).
type serviceReport struct {
	Schema    string            `json:"schema"`
	Name      string            `json:"name"`
	CreatedAt time.Time         `json:"created_at"`
	Meta      map[string]string `json:"meta"`
	Results   []serviceResult   `json:"results"`
}

// serviceClients is the concurrent-client count of the load phase.
const serviceClients = 4

// Service load-tests the linkclustd service layer end to end over real HTTP:
// for every α workload it measures a cold submission (full Phase I + sweep
// through the job queue) against a cached resubmission of the same graph, and
// verifies the served merge stream bitwise against an in-process serial run.
// A second, fresh daemon then takes N concurrent clients submitting the mixed
// workloads simultaneously — repeats hit the dendrogram cache, queue-full
// rejections are retried — exercising admission control and the bounded queue
// under contention. Cached resubmits are asserted ≥10× faster than cold runs
// wherever the cold run is long enough to measure that honestly.
func Service(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}

	report := &serviceReport{
		Schema:    BenchSchemaV1,
		Name:      "service",
		CreatedAt: time.Now().UTC(),
		Meta: map[string]string{
			"clients": fmt.Sprintf("%d", serviceClients),
			"cpus":    fmt.Sprintf("%d", runtime.NumCPU()),
		},
	}
	t := &Table{
		Title:   "service: linkclustd cold submissions vs cached resubmissions over HTTP",
		Columns: []string{"alpha", "edges", "cold", "cached", "speedup", "identical"},
		Notes: []string{
			"cold times one full submit→done round trip (queue wait, phase I, sweep)",
			"cached times the same graph resubmitted: served from the dendrogram cache at submit",
			"identical: served merge stream is bitwise equal to an in-process serial run",
		},
	}

	// Phase 1: cold vs cached per workload, sequentially on one daemon.
	baseURL, shutdown, err := startServiceDaemon(jobs.Config{Concurrency: 2, QueueDepth: 32})
	if err != nil {
		return err
	}
	defer shutdown()
	for _, wl := range wls {
		end := cfg.Obs.Phase(fmt.Sprintf("service-alpha-%g", wl.Alpha))
		row, err := serviceColdCached(baseURL, wl)
		end()
		if err != nil {
			return fmt.Errorf("bench: service alpha %v: %w", wl.Alpha, err)
		}
		report.Results = append(report.Results, row)
		t.AddRow(wl.Alpha, row.Edges, formatSeconds(time.Duration(row.ColdNs)),
			formatSeconds(time.Duration(row.CachedNs)), fmt.Sprintf("%.1fx", row.Speedup),
			fmt.Sprintf("%v", row.Identical))
		if !row.Identical {
			return fmt.Errorf("bench: service alpha %v: served merge stream differs from solo run", wl.Alpha)
		}
		// The ≥10× acceptance bound, asserted only where the cold run is long
		// enough (≥10ms) that HTTP round-trip noise cannot fake a failure —
		// for tiny graphs both sides are dominated by the loopback latency.
		if row.ColdNs >= int64(10*time.Millisecond) && row.Speedup < 10 {
			return fmt.Errorf("bench: service alpha %v: cached speedup %.1fx < 10x (cold %s, cached %s)",
				wl.Alpha, row.Speedup, time.Duration(row.ColdNs), time.Duration(row.CachedNs))
		}
	}
	shutdown()

	// Phase 2: concurrent mixed load against a fresh daemon (cold caches).
	end := cfg.Obs.Phase("service-load")
	load, err := serviceLoadPhase(wls)
	end()
	if err != nil {
		return err
	}
	for k, v := range load {
		report.Meta[k] = v
	}

	t.Fprint(w)
	fmt.Fprintf(w, "load phase: %d clients, %s jobs (%s ok, %s retries after 429) in %s\n",
		serviceClients, load["load_jobs"], load["load_completed"], load["load_retries"], load["load_wall"])
	if cfg.BenchJSON != "" {
		if err := writeBenchJSON(cfg.BenchJSON, report); err != nil {
			return fmt.Errorf("bench: writing %s: %w", cfg.BenchJSON, err)
		}
		fmt.Fprintf(w, "bench report written to %s\n", cfg.BenchJSON)
	}
	return nil
}

// startServiceDaemon boots a manager and an HTTP listener on an ephemeral
// loopback port. shutdown is idempotent.
func startServiceDaemon(cfg jobs.Config) (string, func(), error) {
	m := jobs.NewManager(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		m.Drain()
		return "", nil, err
	}
	srv := &http.Server{Handler: jobs.NewHandler(m)}
	go srv.Serve(ln)
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			m.Drain()
			srv.Close()
		})
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// serviceColdCached measures one workload: a cold submit→poll→done round
// trip, then the cached resubmission, then the bitwise check of the served
// merge stream against an in-process serial run.
func serviceColdCached(baseURL string, wl Workload) (serviceResult, error) {
	text, err := graphToText(wl.Graph)
	if err != nil {
		return serviceResult{}, err
	}
	row := serviceResult{Alpha: wl.Alpha, Vertices: wl.Graph.NumVertices(), Edges: wl.Graph.NumEdges()}

	start := time.Now()
	st, err := submitJob(baseURL, text, true)
	if err != nil {
		return row, err
	}
	st, err = pollJob(baseURL, st, 5*time.Minute)
	if err != nil {
		return row, err
	}
	row.ColdNs = time.Since(start).Nanoseconds()
	if st.Cached {
		return row, fmt.Errorf("first submission of alpha %g hit the cache", wl.Alpha)
	}

	// Minimum of a few resubmits: each is one HTTP round trip answered from
	// the dendrogram cache at submit, so noise here is loopback jitter.
	for i := 0; i < 3; i++ {
		start = time.Now()
		st2, err := submitJob(baseURL, text, true)
		if err != nil {
			return row, err
		}
		d := time.Since(start).Nanoseconds()
		if st2.State != "done" || !st2.Cached {
			return row, fmt.Errorf("resubmission state=%s cached=%v, want immediate cached done", st2.State, st2.Cached)
		}
		if i == 0 || d < row.CachedNs {
			row.CachedNs = d
		}
	}
	if row.CachedNs > 0 {
		row.Speedup = float64(row.ColdNs) / float64(row.CachedNs)
	}

	// Differential check: the daemon's merge stream against a serial
	// in-process run over the same graph.
	served, err := fetchMerges(baseURL, st.ID)
	if err != nil {
		return row, err
	}
	solo, err := soloMergeDoc(wl.Graph)
	if err != nil {
		return row, err
	}
	row.Identical = bytes.Equal(served, solo)
	if sum := sha256.Sum256(solo); st.Result != nil &&
		st.Result.MergesSHA256 != hex.EncodeToString(sum[:]) {
		row.Identical = false
	}
	return row, nil
}

// serviceLoadPhase drives N concurrent clients over the mixed workloads
// against a fresh daemon with a deliberately small queue, so backpressure
// (429 + retry) actually happens. Returns string-valued aggregates for the
// report's Meta.
func serviceLoadPhase(wls []Workload) (map[string]string, error) {
	baseURL, shutdown, err := startServiceDaemon(jobs.Config{Concurrency: 2, QueueDepth: 4})
	if err != nil {
		return nil, err
	}
	defer shutdown()

	texts := make([][]byte, len(wls))
	for i, wl := range wls {
		if texts[i], err = graphToText(wl.Graph); err != nil {
			return nil, err
		}
	}

	const jobsPerClient = 6
	var completed, cachedHits, retries atomic.Int64
	errs := make(chan error, serviceClients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < serviceClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < jobsPerClient; i++ {
				text := texts[(c+i)%len(texts)] // mixed sizes, interleaved
				var st *jobStatus
				for {
					var serr error
					st, serr = submitJob(baseURL, text, false)
					if serr == nil {
						break
					}
					if !isRetryable(serr) {
						errs <- fmt.Errorf("client %d job %d: %w", c, i, serr)
						return
					}
					retries.Add(1)
					time.Sleep(5 * time.Millisecond)
				}
				st, perr := pollJob(baseURL, st, 5*time.Minute)
				if perr != nil {
					errs <- fmt.Errorf("client %d job %d: %w", c, i, perr)
					return
				}
				completed.Add(1)
				if st.Cached {
					cachedHits.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	wall := time.Since(start)
	return map[string]string{
		"load_jobs":      fmt.Sprintf("%d", serviceClients*jobsPerClient),
		"load_completed": fmt.Sprintf("%d", completed.Load()),
		"load_cached":    fmt.Sprintf("%d", cachedHits.Load()),
		"load_retries":   fmt.Sprintf("%d", retries.Load()),
		"load_wall":      wall.Round(time.Millisecond).String(),
	}, nil
}

// --- HTTP client helpers (the bench is an external client on purpose: it
// exercises the daemon through the same JSON surface real clients use) ---

type jobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Error  string `json:"error"`
	Result *struct {
		MergesSHA256 string `json:"merges_sha256"`
	} `json:"result"`
}

// retryableError marks a 429/503 submission rejection.
type retryableError struct{ code int }

func (e *retryableError) Error() string { return fmt.Sprintf("retryable status %d", e.code) }

func isRetryable(err error) bool {
	_, ok := err.(*retryableError)
	return ok
}

func submitJob(baseURL string, graphText []byte, failOnBackpressure bool) (*jobStatus, error) {
	body, err := json.Marshal(map[string]any{"graph": string(graphText)})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(baseURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		if failOnBackpressure {
			return nil, fmt.Errorf("submit rejected with %d", resp.StatusCode)
		}
		return nil, &retryableError{code: resp.StatusCode}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("submit: status %d: %s", resp.StatusCode, msg)
	}
	st := &jobStatus{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		return nil, err
	}
	return st, nil
}

func pollJob(baseURL string, st *jobStatus, timeout time.Duration) (*jobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		switch st.State {
		case "done":
			return st, nil
		case "failed", "canceled":
			return st, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(time.Millisecond)
		resp, err := http.Get(baseURL + "/jobs/" + st.ID)
		if err != nil {
			return st, err
		}
		next := &jobStatus{}
		err = json.NewDecoder(resp.Body).Decode(next)
		resp.Body.Close()
		if err != nil {
			return st, err
		}
		st = next
	}
}

func fetchMerges(baseURL, id string) ([]byte, error) {
	resp, err := http.Get(baseURL + "/jobs/" + id + "/merges")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("merges: status %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func graphToText(g *graph.Graph) ([]byte, error) {
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// soloMergeDoc computes the reference LCMG document: serial Phase I + serial
// sweep, no service in the loop.
func soloMergeDoc(g *graph.Graph) ([]byte, error) {
	pl := core.Similarity(g)
	res, err := core.Sweep(g, pl)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := core.WriteMerges(&buf, g.NumEdges(), res.Merges); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
