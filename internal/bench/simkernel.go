package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"linkclust/internal/core"
)

// BenchSchemaV1 identifies the machine-readable microbenchmark format the
// harness emits (BENCH_*.json files). It is distinct from the run-report
// schema (linkclust/run-report/v1): a run report captures one pipeline's
// phases, a bench file captures a head-to-head comparison.
const BenchSchemaV1 = "linkclust/bench/v1"

// simKernelWorkers is the worker count of the parallel comparison — the
// acceptance configuration of the kernel swap.
const simKernelWorkers = 8

// simKernelResult is one α row of the similarity-kernel microbenchmark.
type simKernelResult struct {
	Alpha         float64 `json:"alpha"`
	Vertices      int     `json:"vertices"`
	Edges         int     `json:"edges"`
	Pairs         int     `json:"pairs"`          // K1
	IncidentPairs int64   `json:"incident_pairs"` // K2

	LegacySerialNs   int64 `json:"legacy_serial_ns"`
	WedgeSerialNs    int64 `json:"wedge_serial_ns"`
	LegacyParallelNs int64 `json:"legacy_parallel_ns"`
	WedgeParallelNs  int64 `json:"wedge_parallel_ns"`

	SerialSpeedup   float64 `json:"serial_speedup"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// simKernelReport is the BENCH_similarity.json document.
type simKernelReport struct {
	Schema    string            `json:"schema"`
	Name      string            `json:"name"`
	CreatedAt time.Time         `json:"created_at"`
	Meta      map[string]string `json:"meta"`
	Results   []simKernelResult `json:"results"`
}

// SimKernel benchmarks the initialization-phase kernels head-to-head per
// fraction α: the legacy global hash-map accumulator (serial, and parallel
// with hierarchical map merges) against the wedge-major Gustavson kernel
// (serial, and parallel count-then-fill with no merge phase). Both produce
// element-wise identical pair lists after Sort; this experiment measures
// only the cost of getting there. With cfg.BenchJSON set, the comparison is
// additionally written as a linkclust/bench/v1 JSON document.
func SimKernel(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title: "simkernel: initialization kernels, legacy hash-map vs wedge-major (Gustavson)",
		Columns: []string{
			"alpha", "K1", "K2",
			"legacy-serial", "wedge-serial", "speedup",
			fmt.Sprintf("legacy-par(T=%d)", simKernelWorkers),
			fmt.Sprintf("wedge-par(T=%d)", simKernelWorkers),
			"speedup",
		},
		Notes: []string{
			"serial and parallel wedge output is bitwise identical to legacy serial after Sort",
			fmt.Sprintf("this machine exposes %d CPU core(s); parallel columns measure kernel cost, not scaling", runtime.NumCPU()),
		},
	}
	report := &simKernelReport{
		Schema:    BenchSchemaV1,
		Name:      "similarity-kernel",
		CreatedAt: time.Now().UTC(),
		Meta: map[string]string{
			"workers": fmt.Sprintf("%d", simKernelWorkers),
			"repeats": fmt.Sprintf("%d", cfg.Repeats),
			"cpus":    fmt.Sprintf("%d", runtime.NumCPU()),
		},
	}
	for _, wl := range wls {
		g := wl.Graph
		end := cfg.Obs.Phase(fmt.Sprintf("simkernel-alpha-%g", wl.Alpha))
		var pl *core.PairList
		legacySerial := timeIt(cfg.Repeats, func() { pl = core.SimilarityLegacy(g) })
		wedgeSerial := timeIt(cfg.Repeats, func() { pl = core.SimilarityWedge(g) })
		legacyPar := timeIt(cfg.Repeats, func() { pl = core.SimilarityParallelLegacy(g, simKernelWorkers) })
		wedgePar := timeIt(cfg.Repeats, func() { pl = core.SimilarityWedgeParallel(g, simKernelWorkers) })
		end()
		res := simKernelResult{
			Alpha:            wl.Alpha,
			Vertices:         g.NumVertices(),
			Edges:            g.NumEdges(),
			Pairs:            len(pl.Pairs),
			IncidentPairs:    pl.NumIncidentPairs(),
			LegacySerialNs:   legacySerial.Nanoseconds(),
			WedgeSerialNs:    wedgeSerial.Nanoseconds(),
			LegacyParallelNs: legacyPar.Nanoseconds(),
			WedgeParallelNs:  wedgePar.Nanoseconds(),
		}
		if wedgeSerial > 0 {
			res.SerialSpeedup = float64(legacySerial) / float64(wedgeSerial)
		}
		if wedgePar > 0 {
			res.ParallelSpeedup = float64(legacyPar) / float64(wedgePar)
		}
		report.Results = append(report.Results, res)
		t.AddRow(wl.Alpha, res.Pairs, res.IncidentPairs,
			formatSeconds(legacySerial), formatSeconds(wedgeSerial),
			formatFloat(res.SerialSpeedup)+"x",
			formatSeconds(legacyPar), formatSeconds(wedgePar),
			formatFloat(res.ParallelSpeedup)+"x")
	}
	t.Fprint(w)
	if cfg.BenchJSON != "" {
		if err := writeBenchJSON(cfg.BenchJSON, report); err != nil {
			return fmt.Errorf("bench: writing %s: %w", cfg.BenchJSON, err)
		}
		fmt.Fprintf(w, "bench report written to %s\n", cfg.BenchJSON)
	}
	return nil
}

// writeBenchJSON writes one linkclust/bench/v1 document (any experiment's
// report struct) as indented JSON.
func writeBenchJSON(path string, report any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
