package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/stream"
)

// streamWorkers is the worker count of both sides of the comparison — the
// acceptance configuration of the incremental engine.
const streamWorkers = 8

// The timed protocol: everything but the last streamTimedSteps batches of
// streamTimedBatch arrivals is ingested (and snapshotted once) untimed, so
// every timed batch arrives at an engine with a mature pair list and
// checkpoint set — the steady state the incremental path is for. Batches are
// deliberately small: the scenario under test is "a trickle of arrivals on a
// large accumulated graph", where from-scratch reclustering is pure waste.
const (
	streamTimedBatch = 64
	streamTimedSteps = 5
)

// streamResult is one timed arrival batch of the incremental-vs-batch run.
type streamResult struct {
	Alpha      float64 `json:"alpha"`
	Edges      int     `json:"edges"`       // edges after this batch
	BatchEdges int     `json:"batch_edges"` // arrivals in this batch

	// AffectedRows/ReplayedOps are the engine's own counters for this batch:
	// similarity rows recomputed and sweep ops replayed from the resume
	// checkpoint — the incremental path's actual work.
	AffectedRows int64 `json:"affected_rows"`
	ReplayedOps  int64 `json:"replayed_ops"`
	TotalOps     int64 `json:"total_ops"` // K2 of the post-batch graph

	IncrementalNs int64   `json:"incremental_ns"` // IngestBatch + Snapshot
	BatchNs       int64   `json:"batch_ns"`       // ClusterParallel from scratch
	Speedup       float64 `json:"speedup"`
	// Identical records that the snapshot was compared bitwise to the batch
	// run before its time was accepted; a divergence fails the experiment.
	Identical bool `json:"identical"`
}

// streamReport is the BENCH_stream.json document.
type streamReport struct {
	Schema    string            `json:"schema"`
	Name      string            `json:"name"`
	CreatedAt time.Time         `json:"created_at"`
	Meta      map[string]string `json:"meta"`
	Results   []streamResult    `json:"results"`
}

// Stream is the self-validating incremental-clustering benchmark: per fraction
// α it warms a stream engine with all but the last few small batches of the
// word graph's edges, then times those batches — IngestBatch plus Snapshot
// against the incremental engine versus a full ClusterParallel from scratch on
// the identical prefix graph (same edge ids, since both sides see the edges in
// id order). Every
// snapshot is compared bitwise to the batch result before its time counts, so
// a green run certifies the differential contract on real workloads while
// measuring what incrementality buys. Compaction is disabled for the timed
// engine: the batch column *is* the compaction fallback's cost, so the table
// reads directly as replay-path versus fallback.
func Stream(w io.Writer, cfg Config) error {
	// Both sides run T=8; par.Normalize clamps to GOMAXPROCS, so raise it for
	// the duration as the kernels experiment does.
	if old := runtime.GOMAXPROCS(0); old < streamWorkers {
		runtime.GOMAXPROCS(streamWorkers)
		defer runtime.GOMAXPROCS(old)
	}
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "stream: incremental ingest+snapshot vs batch clustering from scratch (bitwise, T=8)",
		Columns: []string{"alpha", "edges", "+batch", "rows", "replay-ops", "K2", "incremental", "batch", "speedup"},
		Notes: []string{
			"every incremental snapshot is compared bitwise to a ClusterParallel run on the identical prefix graph before its time counts",
			fmt.Sprintf("all but the last %d batches of %d arrivals are ingested untimed (steady state); the small timed batches model a trickle of arrivals on a large accumulated graph", streamTimedSteps, streamTimedBatch),
			"incremental timings are single-shot (ingest mutates the engine); the batch side reports the minimum over -repeats runs",
			"compaction is disabled on the timed engine: the batch column is exactly the compaction fallback's cost",
		},
	}
	report := &streamReport{
		Schema:    BenchSchemaV1,
		Name:      "stream",
		CreatedAt: time.Now().UTC(),
		Meta: map[string]string{
			"workers":     fmt.Sprintf("%d", streamWorkers),
			"repeats":     fmt.Sprintf("%d", cfg.Repeats),
			"timed_batch": fmt.Sprintf("%d", streamTimedBatch),
			"timed_steps": fmt.Sprintf("%d", streamTimedSteps),
			"cpus":        fmt.Sprintf("%d", runtime.NumCPU()),
		},
	}
	for _, wl := range wls {
		end := cfg.Obs.Phase(fmt.Sprintf("stream-alpha-%g", wl.Alpha))
		rows, err := streamAlpha(wl, cfg, t)
		end()
		if err != nil {
			return err
		}
		report.Results = append(report.Results, rows...)
	}
	t.Fprint(w)
	if len(report.Results) == 0 {
		return fmt.Errorf("bench: stream: every workload was too small to carve a timed batch from")
	}
	if cfg.BenchJSON != "" {
		if err := writeBenchJSON(cfg.BenchJSON, report); err != nil {
			return fmt.Errorf("bench: writing %s: %w", cfg.BenchJSON, err)
		}
		fmt.Fprintf(w, "bench report written to %s\n", cfg.BenchJSON)
	}
	return nil
}

// streamAlpha runs the warm-then-timed-batches protocol on one workload.
func streamAlpha(wl Workload, cfg Config, t *Table) ([]streamResult, error) {
	g := wl.Graph
	n := g.NumVertices()
	edges := g.Edges()
	m := len(edges)
	// Keep at least half the edges in the warm phase; tiny graphs get fewer
	// (or zero) timed steps rather than an immature engine.
	steps := streamTimedSteps
	for steps > 0 && m-steps*streamTimedBatch < m/2 {
		steps--
	}
	warm := m - steps*streamTimedBatch
	if steps == 0 {
		return nil, nil
	}
	rec := obs.New()
	eng, err := stream.New(stream.Options{
		Workers:     streamWorkers,
		Recorder:    rec,
		MaxVertices: n,
		// Above 1 never triggers on fraction; the batch column below is the
		// fallback's cost, measured directly.
		CompactDirtyFraction: 2,
	})
	if err != nil {
		return nil, err
	}
	arrival := func(i int) stream.Arrival {
		return stream.Arrival{U: int(edges[i].U), V: int(edges[i].V), W: edges[i].Weight}
	}
	batchOf := func(lo, hi int) []stream.Arrival {
		out := make([]stream.Arrival, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, arrival(i))
		}
		return out
	}
	// Warm phase, untimed: bulk ingest and one snapshot so the engine holds a
	// full pair list and checkpoints before measurement starts.
	if err := eng.IngestBatch(batchOf(0, warm)); err != nil {
		return nil, err
	}
	if _, err := eng.Snapshot(); err != nil {
		return nil, err
	}

	var out []streamResult
	for lo := warm; lo < m; lo += streamTimedBatch {
		hi := min(lo+streamTimedBatch, m)
		rowsBefore := rec.Counter(stream.CtrAffectedRows)
		opsBefore := rec.Counter(stream.CtrReplayedOps)
		start := time.Now()
		if err := eng.IngestBatch(batchOf(lo, hi)); err != nil {
			return nil, err
		}
		res, err := eng.Snapshot()
		if err != nil {
			return nil, err
		}
		incNs := time.Since(start)
		if c := rec.Counter(stream.CtrCompactions); c != 0 {
			return nil, fmt.Errorf("bench: alpha %v: timed engine compacted %d times with compaction disabled", wl.Alpha, c)
		}

		// The batch side: the identical prefix graph from scratch. Replay in
		// id order gives the Builder the same edge ids the dynamic graph
		// assigned, so the comparison below is bitwise, not just structural.
		b := graph.NewBuilder(n)
		for i := 0; i < hi; i++ {
			a := arrival(i)
			b.MustAddEdge(a.U, a.V, a.W)
		}
		gp := b.Build(nil)
		var batchRes *core.Result
		batchNs := timeIt(cfg.Repeats, func() {
			r, err2 := core.SweepParallel(gp, core.SimilarityParallel(gp, streamWorkers), streamWorkers)
			if err2 != nil {
				err = err2
				return
			}
			batchRes = r
		})
		if err != nil {
			return nil, fmt.Errorf("bench: batch run at alpha %v prefix %d: %w", wl.Alpha, hi, err)
		}
		if err := sameMergeStream(batchRes, res); err != nil {
			return nil, fmt.Errorf("bench: alpha %v prefix %d: incremental snapshot diverged: %w", wl.Alpha, hi, err)
		}
		row := streamResult{
			Alpha:         wl.Alpha,
			Edges:         hi,
			BatchEdges:    hi - lo,
			AffectedRows:  rec.Counter(stream.CtrAffectedRows) - rowsBefore,
			ReplayedOps:   rec.Counter(stream.CtrReplayedOps) - opsBefore,
			TotalOps:      batchRes.PairsProcessed,
			IncrementalNs: incNs.Nanoseconds(),
			BatchNs:       batchNs.Nanoseconds(),
			Speedup:       float64(batchNs) / float64(incNs),
			Identical:     true,
		}
		out = append(out, row)
		t.AddRow(wl.Alpha, row.Edges, row.BatchEdges, row.AffectedRows, row.ReplayedOps, row.TotalOps,
			formatSeconds(incNs), formatSeconds(batchNs), fmt.Sprintf("%.2fx", row.Speedup))
	}
	return out, nil
}
