package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"linkclust/internal/core"
)

// sweepKernelThreads is the thread sweep of the acceptance comparison.
var sweepKernelThreads = []int{1, 2, 4, 8}

// sweepKernelThread is one worker-count measurement of a row.
type sweepKernelThread struct {
	Workers int     `json:"workers"`
	Ns      int64   `json:"ns"`
	Speedup float64 `json:"speedup"` // serial / this
}

// sweepKernelResult is one α row of the sweep-kernel microbenchmark.
type sweepKernelResult struct {
	Alpha         float64 `json:"alpha"`
	Vertices      int     `json:"vertices"`
	Edges         int     `json:"edges"`
	Pairs         int     `json:"pairs"`          // K1
	IncidentPairs int64   `json:"incident_pairs"` // K2
	Merges        int     `json:"merges"`

	SerialNs  int64               `json:"serial_ns"`
	Threads   []sweepKernelThread `json:"threads"`
	SpeedupT8 float64             `json:"speedup_t8"`

	// Engine is what ClusterOptions.Engine "auto" selects for this row at
	// T=8 on the benchmarking machine (core.ChooseSweepEngine on K2 and the
	// normalized worker count); AutoNs/AutoSpeedup are the corresponding
	// measurement — the serial row's own time when the fallback engages (by
	// definition: the fallback runs the identical code path), the T=8
	// parallel time otherwise. A row with SpeedupT8 < 1.0 and Engine
	// "serial" is the regression auto selection fixes, not a regression of
	// the auto policy.
	Engine      string  `json:"engine"`
	AutoNs      int64   `json:"auto_ns"`
	AutoSpeedup float64 `json:"auto_speedup"`
}

// sweepKernelReport is the BENCH_sweep.json document.
type sweepKernelReport struct {
	Schema    string              `json:"schema"`
	Name      string              `json:"name"`
	CreatedAt time.Time           `json:"created_at"`
	Meta      map[string]string   `json:"meta"`
	Results   []sweepKernelResult `json:"results"`
}

// SweepKernel benchmarks the merge phase of Algorithm 2 head-to-head per
// fraction α: the serial sweep against the parallel fine-grained engine at
// T ∈ {1, 2, 4, 8} workers, on the same pre-sorted pair list. The comparison
// is self-validating — every parallel run's merge stream is checked bitwise
// against the serial stream before its time is accepted, so a reported
// speedup can never come from divergent output. With cfg.BenchJSON set, the
// comparison is additionally written as a linkclust/bench/v1 JSON document.
func SweepKernel(w io.Writer, cfg Config) error {
	wls, err := BuildWorkloads(cfg)
	if err != nil {
		return err
	}
	cols := []string{"alpha", "K2", "merges", "serial"}
	for _, th := range sweepKernelThreads {
		cols = append(cols, fmt.Sprintf("T=%d", th))
	}
	cols = append(cols, "speedup(T=8)", "auto(T=8)")
	t := &Table{
		Title:   "sweepkernel: fine-grained sweep, serial vs parallel reservation engine",
		Columns: cols,
		Notes: []string{
			"every parallel merge stream verified bitwise against serial before timing is accepted",
			fmt.Sprintf("this machine exposes %d CPU core(s); parallel columns measure kernel cost, not scaling", runtime.NumCPU()),
			"auto(T=8) reports the engine -engine auto selects on this machine and its speedup vs serial;",
			"a serial fallback reuses the serial measurement by definition (identical code path), so its speedup is exactly 1.0",
		},
	}
	report := &sweepKernelReport{
		Schema:    BenchSchemaV1,
		Name:      "sweep-kernel",
		CreatedAt: time.Now().UTC(),
		Meta: map[string]string{
			"threads": fmt.Sprintf("%v", sweepKernelThreads),
			"repeats": fmt.Sprintf("%d", cfg.Repeats),
			"cpus":    fmt.Sprintf("%d", runtime.NumCPU()),
		},
	}
	for _, wl := range wls {
		g := wl.Graph
		end := cfg.Obs.Phase(fmt.Sprintf("sweepkernel-alpha-%g", wl.Alpha))
		pl := core.Similarity(g)
		pl.Sort() // both sweeps sort in place; hoist the shared cost out of the timings
		var serial *core.Result
		serialNs := timeIt(cfg.Repeats, func() {
			r, err2 := core.Sweep(g, pl)
			if err2 != nil {
				err = err2
				return
			}
			serial = r
		})
		if err != nil {
			end()
			return fmt.Errorf("bench: serial sweep at alpha %v: %w", wl.Alpha, err)
		}
		res := sweepKernelResult{
			Alpha:         wl.Alpha,
			Vertices:      g.NumVertices(),
			Edges:         g.NumEdges(),
			Pairs:         len(pl.Pairs),
			IncidentPairs: pl.NumIncidentPairs(),
			Merges:        len(serial.Merges),
			SerialNs:      serialNs.Nanoseconds(),
		}
		row := []any{wl.Alpha, res.IncidentPairs, res.Merges, formatSeconds(serialNs)}
		for _, th := range sweepKernelThreads {
			var par *core.Result
			parNs := timeIt(cfg.Repeats, func() {
				r, err2 := core.SweepParallel(g, pl, th)
				if err2 != nil {
					err = err2
					return
				}
				par = r
			})
			if err != nil {
				end()
				return fmt.Errorf("bench: parallel sweep at alpha %v T=%d: %w", wl.Alpha, th, err)
			}
			if err := sameMergeStream(serial, par); err != nil {
				end()
				return fmt.Errorf("bench: alpha %v T=%d: %w", wl.Alpha, th, err)
			}
			tr := sweepKernelThread{Workers: th, Ns: parNs.Nanoseconds()}
			if parNs > 0 {
				tr.Speedup = float64(serialNs) / float64(parNs)
			}
			if th == 8 {
				res.SpeedupT8 = tr.Speedup
				res.AutoNs = parNs.Nanoseconds()
			}
			res.Threads = append(res.Threads, tr)
			row = append(row, formatSeconds(parNs))
		}
		end()
		// What would "-engine auto" run here? Serial below the measured
		// op-count threshold (or when this machine normalizes T=8 to one
		// worker); the serial fallback is the very measurement above.
		res.Engine = core.ChooseSweepEngine(res.IncidentPairs, 8, false)
		if res.Engine == core.SweepEngineSerial {
			res.AutoNs = serialNs.Nanoseconds()
		}
		if res.AutoNs > 0 {
			res.AutoSpeedup = float64(serialNs) / float64(res.AutoNs)
		}
		report.Results = append(report.Results, res)
		row = append(row, formatFloat(res.SpeedupT8)+"x",
			fmt.Sprintf("%s %sx", res.Engine, formatFloat(res.AutoSpeedup)))
		t.AddRow(row...)
	}
	t.Fprint(w)
	if cfg.BenchJSON != "" {
		if err := writeBenchJSON(cfg.BenchJSON, report); err != nil {
			return fmt.Errorf("bench: writing %s: %w", cfg.BenchJSON, err)
		}
		fmt.Fprintf(w, "bench report written to %s\n", cfg.BenchJSON)
	}
	return nil
}

// sameMergeStream verifies that two sweep results carry bitwise-identical
// merge streams and final summaries.
func sameMergeStream(serial, par *core.Result) error {
	if len(par.Merges) != len(serial.Merges) {
		return fmt.Errorf("merge stream diverged: %d merges vs serial's %d", len(par.Merges), len(serial.Merges))
	}
	for i := range serial.Merges {
		if par.Merges[i] != serial.Merges[i] {
			return fmt.Errorf("merge stream diverged at %d: %+v vs serial's %+v", i, par.Merges[i], serial.Merges[i])
		}
	}
	if par.NumClusters() != serial.NumClusters() || par.PairsProcessed != serial.PairsProcessed {
		return fmt.Errorf("summary diverged: %d clusters / %d ops vs serial's %d / %d",
			par.NumClusters(), par.PairsProcessed, serial.NumClusters(), serial.PairsProcessed)
	}
	return nil
}
