package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Table is a printable experiment result: the rows/series of one figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with cell().
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = cell(c)
	}
	t.Rows = append(t.Rows, row)
}

// cell formats a value for table display.
func cell(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int:
		return strconv.Itoa(x)
	case int32:
		return strconv.FormatInt(int64(x), 10)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return formatFloat(x)
	case time.Duration:
		return formatSeconds(x)
	case nil:
		return "-"
	default:
		return fmt.Sprintf("%v", x)
	}
}

// formatFloat renders with four significant digits, switching to scientific
// notation outside [1e-3, 1e7).
func formatFloat(f float64) string {
	a := f
	if a < 0 {
		a = -a
	}
	if a != 0 && (a < 1e-3 || a >= 1e7) {
		return strconv.FormatFloat(f, 'e', 3, 64)
	}
	return strconv.FormatFloat(f, 'g', 4, 64)
}

// formatSeconds renders a duration as seconds with millisecond resolution.
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64) + "s"
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Columns)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}
