package bench

import (
	"io"

	"linkclust/internal/baseline"
	"linkclust/internal/core"
	"linkclust/internal/graph"
)

// Theory reproduces the appendix's worked scaling examples behind
// Theorem 2: on k-regular graphs the sweeping algorithm's O(√K2·|E|) beats
// the standard algorithm's O(|E|²) by a factor growing like √|V|, and on
// complete graphs by O(√|V|) as well (O(|V|^3.5) vs O(|V|^4)). We time both
// algorithms over growing instances of each family and report the measured
// ratio alongside the structural quantities.
func Theory(w io.Writer, cfg Config) error {
	t := &Table{
		Title:   "Theorem 2 scaling: sweeping vs standard on k-regular and complete graphs",
		Columns: []string{"family", "|V|", "|E|", "K2", "init", "sweeping", "standard", "std/sweep"},
		Notes: []string{
			"paper appendix: the advantage grows with the instance (≈√|V| for both families)",
		},
	}
	type inst struct {
		family string
		g      *graph.Graph
	}
	var instances []inst
	for _, n := range []int{32, 64, 128} {
		g, err := graph.Circulant(n, 8)
		if err != nil {
			return err
		}
		instances = append(instances, inst{"8-regular", g})
	}
	for _, n := range []int{12, 24, 48} {
		instances = append(instances, inst{"complete", graph.Complete(n)})
	}
	for _, in := range instances {
		g := in.g
		s := graph.ComputeStats(g)
		var pl *core.PairList
		initTime := timeIt(cfg.Repeats, func() { pl = core.Similarity(g) })
		sweepTime := timeIt(cfg.Repeats, func() {
			if _, err := core.Sweep(g, copyPairs(pl)); err != nil {
				panic(err)
			}
		})
		stdCell, ratioCell := "-", "-"
		if g.NumEdges() <= baseline.MaxNBMEdges {
			es := baseline.NewEdgeSim(g, pl)
			stdTime := timeIt(cfg.Repeats, func() {
				if _, err := baseline.NBM(es); err != nil {
					panic(err)
				}
			})
			stdCell = formatSeconds(stdTime)
			if sweepTime > 0 {
				ratioCell = formatFloat(float64(stdTime) / float64(sweepTime))
			}
		}
		t.AddRow(in.family, s.Vertices, s.Edges, s.K2, initTime, sweepTime, stdCell, ratioCell)
	}
	t.Fprint(w)
	return nil
}
