package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// benchDoc is the schema-bearing envelope every BENCH_*.json document shares;
// experiment-specific result fields stay opaque here.
type benchDoc struct {
	Schema    string            `json:"schema"`
	Name      string            `json:"name"`
	CreatedAt string            `json:"created_at"`
	Meta      map[string]string `json:"meta"`
	Results   []json.RawMessage `json:"results"`
}

// ValidateBenchFile checks that path holds a well-formed linkclust/bench/v1
// document: the schema marker, a non-empty experiment name, a parseable
// creation timestamp, string-valued metadata, and at least one result row,
// each row a JSON object. It validates the envelope, not experiment-specific
// row fields — those differ per experiment by design.
func ValidateBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc benchDoc
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != BenchSchemaV1 {
		return fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, BenchSchemaV1)
	}
	if doc.Name == "" {
		return fmt.Errorf("%s: missing experiment name", path)
	}
	if _, err := time.Parse(time.RFC3339, doc.CreatedAt); err != nil {
		return fmt.Errorf("%s: created_at %q is not RFC 3339: %w", path, doc.CreatedAt, err)
	}
	if len(doc.Results) == 0 {
		return fmt.Errorf("%s: no results", path)
	}
	for i, raw := range doc.Results {
		var row map[string]json.RawMessage
		if err := json.Unmarshal(raw, &row); err != nil {
			return fmt.Errorf("%s: results[%d] is not an object: %w", path, i, err)
		}
		if len(row) == 0 {
			return fmt.Errorf("%s: results[%d] is empty", path, i)
		}
	}
	return nil
}
