package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateBenchFileAccepts(t *testing.T) {
	path := writeDoc(t, `{
		"schema": "linkclust/bench/v1",
		"name": "pipeline",
		"created_at": "2026-08-06T00:00:00Z",
		"meta": {"threads": "[1 2 4 8]"},
		"results": [{"alpha": 0.001, "threads": [{"workers": 1}]}]
	}`)
	if err := ValidateBenchFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestValidateBenchFileRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"wrong schema",
			`{"schema":"linkclust/bench/v2","name":"x","created_at":"2026-08-06T00:00:00Z","results":[{"a":1}]}`,
			"schema"},
		{"missing name",
			`{"schema":"linkclust/bench/v1","created_at":"2026-08-06T00:00:00Z","results":[{"a":1}]}`,
			"name"},
		{"bad timestamp",
			`{"schema":"linkclust/bench/v1","name":"x","created_at":"yesterday","results":[{"a":1}]}`,
			"RFC 3339"},
		{"no results",
			`{"schema":"linkclust/bench/v1","name":"x","created_at":"2026-08-06T00:00:00Z","results":[]}`,
			"no results"},
		{"non-object result",
			`{"schema":"linkclust/bench/v1","name":"x","created_at":"2026-08-06T00:00:00Z","results":[42]}`,
			"not an object"},
		{"unknown field",
			`{"schema":"linkclust/bench/v1","name":"x","created_at":"2026-08-06T00:00:00Z","results":[{"a":1}],"extra":true}`,
			"unknown field"},
		{"not JSON", `schema: bench`, ""},
	}
	for _, tc := range cases {
		err := ValidateBenchFile(writeDoc(t, tc.body))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestCheckedInBenchFilesValidate keeps the repository's committed BENCH_*
// artifacts honest against the schema the validator enforces.
func TestCheckedInBenchFilesValidate(t *testing.T) {
	matches, err := filepath.Glob("../../BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Skip("no checked-in BENCH_*.json files")
	}
	for _, path := range matches {
		if err := ValidateBenchFile(path); err != nil {
			t.Errorf("%s", err)
		}
	}
}
