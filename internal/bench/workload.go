package bench

import (
	"fmt"

	"linkclust/internal/assoc"
	"linkclust/internal/corpus"
	"linkclust/internal/graph"
)

// Workload is one α point of the sweep: a word-association graph built from
// the shared synthetic corpus.
type Workload struct {
	// Alpha is the paper-style fraction label.
	Alpha float64
	// Graph is the word-association network at this fraction.
	Graph *graph.Graph
}

// BuildWorkloads synthesizes the corpus once and constructs the association
// graph for every α in cfg. Fractions whose scaled value exceeds 1 are
// clamped to the full vocabulary.
func BuildWorkloads(cfg Config) ([]Workload, error) {
	end := cfg.Obs.Phase("synthesize-corpus")
	c := corpus.Synthesize(cfg.Corpus)
	end()
	return buildWorkloadsFrom(c, cfg)
}

func buildWorkloadsFrom(c *corpus.Corpus, cfg Config) ([]Workload, error) {
	end := cfg.Obs.Phase("build-graphs")
	defer end()
	out := make([]Workload, 0, len(cfg.Alphas))
	for _, alpha := range cfg.Alphas {
		eff := alpha * cfg.AlphaScale
		if eff > 1 {
			eff = 1
		}
		g, err := assoc.Build(c, eff, assoc.Options{EdgePermSeed: cfg.EdgePermSeed})
		if err != nil {
			return nil, fmt.Errorf("bench: building graph for alpha %v: %w", alpha, err)
		}
		out = append(out, Workload{Alpha: alpha, Graph: g})
	}
	return out, nil
}
