package coarse

// Mode is a state of the mode-transition machine of Fig. 2(3).
type Mode int

const (
	// ModeHead: at least half the edges are still singleton-ish clusters
	// (β > |E|/2); chunk sizes grow exponentially.
	ModeHead Mode = iota + 1
	// ModeTail: fewer than half the edges remain as clusters; chunk sizes
	// are extrapolated from the cluster-count slope.
	ModeTail
	// ModeRollback: the last chunk merged clusters faster than γ allows;
	// the epoch is rolled back and retried with a smaller chunk.
	ModeRollback
	// ModeDone: fewer than φ clusters remain; the dendrogram is complete.
	ModeDone
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeHead:
		return "head"
	case ModeTail:
		return "tail"
	case ModeRollback:
		return "rollback"
	case ModeDone:
		return "done"
	default:
		return "invalid"
	}
}

// NextMode evaluates the transition machine on the three predicates of
// Section V-A, computed at the end of an epoch:
//
//	c1: β' ≤ |E|/2 — the cluster count has passed the head/tail boundary;
//	c2: β/β' ≤ γ  — the soundness constraint held for this chunk;
//	c3: β' ≤ φ    — few enough clusters remain to finish.
//
// Because β' never increases, c1 is monotone and the machine needs no
// memory beyond the predicates: a sound epoch lands in head or tail
// according to c1, an unsound one in rollback, and c3 terminates from any
// state.
func NextMode(c1, c2, c3 bool) Mode {
	switch {
	case c3:
		return ModeDone
	case !c2:
		return ModeRollback
	case c1:
		return ModeTail
	default:
		return ModeHead
	}
}
