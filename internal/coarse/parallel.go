package coarse

import (
	"linkclust/internal/core"
	"linkclust/internal/obs"
)

// parallelMergeMinOps is the chunk size below which replica processing is
// never attempted; it aliases the shared batch engine's threshold so the
// coarse sweep's chunk sizing and the engine's fallback agree.
const parallelMergeMinOps = core.MergeOpsMinReplicated

// parallelMerge processes one chunk's incident edge pairs with the shared
// replica batch engine (core.MergeOpsReplicated): per-worker replicas of
// array C merged hierarchically with the corrected Section VI-B scheme.
// Replica clone/fold costs are recorded into rec when non-nil; the serial
// fallback (tiny chunks, degenerate worker counts) records nothing.
func parallelMerge(ch *core.Chain, ops [][2]int32, workers int, rec *obs.Recorder) {
	clones, folds := core.MergeOpsReplicated(ch, ops, workers)
	if rec != nil && clones > 0 {
		rec.Add(CtrReplicaClones, clones)
		rec.Add(CtrReplicaMerges, folds)
	}
}
