package coarse

import (
	"sync"

	"linkclust/internal/core"
	"linkclust/internal/obs"
)

// parallelMergeMinOps is the chunk size below which replica processing is
// never attempted: each worker pays an O(|E|) clone of array C before doing
// any work, so a chunk must carry enough merge operations to amortize the
// fan-out. Chunks under the threshold (and degenerate worker counts) run
// the plain serial MERGE loop instead.
const parallelMergeMinOps = 64

// parallelMerge processes one chunk's incident edge pairs with the
// multi-threaded scheme of Section VI-B: each of the workers merges a
// round-robin partition of ops on its own replica of array C, then the
// replicas are combined pairwise (and hierarchically) with the corrected
// core.MergeChains scheme until at most three remain, which are folded by a
// single worker. The combined array replaces ch's contents and all replica
// rewrites are added to ch's change counter.
//
// The worker count is clamped to len(ops) — tiny chunks previously cloned
// one full replica per configured worker even when most replicas received
// no operations at all, paying workers × O(|E|) for near-empty partitions —
// and chunks below parallelMergeMinOps fall back to serial merging, where
// the clone cost cannot be amortized. Replica clone/fold costs are recorded
// into rec when non-nil.
func parallelMerge(ch *core.Chain, ops [][2]int32, workers int, rec *obs.Recorder) {
	if workers > len(ops) {
		workers = len(ops)
	}
	if workers < 2 || len(ops) < parallelMergeMinOps {
		for _, op := range ops {
			ch.Merge(op[0], op[1])
		}
		return
	}

	replicas := make([]*core.Chain, workers)
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := ch.Clone()
			for i := t; i < len(ops); i += workers {
				r.Merge(ops[i][0], ops[i][1])
			}
			replicas[t] = r
		}(t)
	}
	wg.Wait()

	folds := int64(0)
	for len(replicas) > 3 {
		half := len(replicas) / 2
		for i := 0; i < half; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				core.MergeChains(replicas[2*i], replicas[2*i+1])
				replicas[2*i].AddChanges(replicas[2*i+1].Changes())
			}(i)
		}
		wg.Wait()
		folds += int64(half)
		next := make([]*core.Chain, 0, half+1)
		for i := 0; i < half; i++ {
			next = append(next, replicas[2*i])
		}
		if len(replicas)%2 == 1 {
			next = append(next, replicas[len(replicas)-1])
		}
		replicas = next
	}
	combined := replicas[0]
	for _, other := range replicas[1:] {
		core.MergeChains(combined, other)
		combined.AddChanges(other.Changes())
		folds++
	}
	ch.Restore(combined.Snapshot())
	ch.AddChanges(combined.Changes())

	if rec != nil {
		rec.Add(CtrReplicaClones, int64(workers))
		rec.Add(CtrReplicaMerges, folds)
	}
}
