package coarse

import (
	"sync"

	"linkclust/internal/core"
)

// parallelMerge processes one chunk's incident edge pairs with the
// multi-threaded scheme of Section VI-B: each of the workers merges a
// round-robin partition of ops on its own replica of array C, then the
// replicas are combined pairwise (and hierarchically) with the corrected
// core.MergeChains scheme until at most three remain, which are folded by a
// single worker. The combined array replaces ch's contents and all replica
// rewrites are added to ch's change counter.
func parallelMerge(ch *core.Chain, ops [][2]int32, workers int) {
	replicas := make([]*core.Chain, workers)
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := ch.Clone()
			for i := t; i < len(ops); i += workers {
				r.Merge(ops[i][0], ops[i][1])
			}
			replicas[t] = r
		}(t)
	}
	wg.Wait()

	for len(replicas) > 3 {
		half := len(replicas) / 2
		for i := 0; i < half; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				core.MergeChains(replicas[2*i], replicas[2*i+1])
				replicas[2*i].AddChanges(replicas[2*i+1].Changes())
			}(i)
		}
		wg.Wait()
		next := make([]*core.Chain, 0, half+1)
		for i := 0; i < half; i++ {
			next = append(next, replicas[2*i])
		}
		if len(replicas)%2 == 1 {
			next = append(next, replicas[len(replicas)-1])
		}
		replicas = next
	}
	combined := replicas[0]
	for _, other := range replicas[1:] {
		core.MergeChains(combined, other)
		combined.AddChanges(other.Changes())
	}
	ch.Restore(combined.Snapshot())
	ch.AddChanges(combined.Changes())
}
