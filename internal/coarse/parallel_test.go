package coarse

import (
	"testing"

	"linkclust/internal/core"
	"linkclust/internal/obs"
)

// mergeOps builds a deterministic but irregular op stream over n edge ids.
func mergeOps(n, count int) [][2]int32 {
	ops := make([][2]int32, 0, count)
	x := uint32(12345)
	for i := 0; i < count; i++ {
		x = x*1664525 + 1013904223 // LCG; deterministic across runs
		a := int32(x % uint32(n))
		x = x*1664525 + 1013904223
		b := int32(x % uint32(n))
		ops = append(ops, [2]int32{a, b})
	}
	return ops
}

func serialReference(n int, ops [][2]int32) []int32 {
	ch := core.NewChain(n)
	for _, op := range ops {
		ch.Merge(op[0], op[1])
	}
	return ch.Assignments()
}

func assignmentsEqual(t *testing.T, got *core.Chain, want []int32, label string) {
	t.Helper()
	g := got.Assignments()
	if len(g) != len(want) {
		t.Fatalf("%s: %d assignments, want %d", label, len(g), len(want))
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("%s: edge %d in cluster %d, want %d", label, i, g[i], want[i])
		}
	}
}

// TestParallelMergeClampsWorkersToOps is the regression test for the
// tiny-chunk clone blow-up: a chunk with fewer operations than configured
// workers must not clone one replica per worker (it falls back to the
// serial MERGE loop) and must still produce the serial partition.
func TestParallelMergeClampsWorkersToOps(t *testing.T) {
	const n = 50
	ops := mergeOps(n, 5) // well below parallelMergeMinOps
	want := serialReference(n, ops)

	rec := obs.New()
	ch := core.NewChain(n)
	parallelMerge(ch, ops, 1<<20, rec)
	assignmentsEqual(t, ch, want, "tiny chunk, huge workers")
	if got := rec.Counter(CtrReplicaClones); got != 0 {
		t.Fatalf("tiny chunk cloned %d replicas, want 0 (serial fallback)", got)
	}
}

// TestParallelMergeMatchesSerial checks the replica path proper (chunk
// above the threshold) against the serial reference, for several worker
// counts including ones exceeding the op count partition granularity.
func TestParallelMergeMatchesSerial(t *testing.T) {
	const n = 120
	ops := mergeOps(n, 4*parallelMergeMinOps)
	want := serialReference(n, ops)

	for _, workers := range []int{2, 3, 4, 7, 8, 16} {
		rec := obs.New()
		ch := core.NewChain(n)
		parallelMerge(ch, ops, workers, rec)
		assignmentsEqual(t, ch, want, "parallel merge")
		if got := rec.Counter(CtrReplicaClones); got != int64(workers) {
			t.Fatalf("workers=%d: %d replica clones recorded, want %d", workers, got, workers)
		}
		if rec.Counter(CtrReplicaMerges) != int64(workers-1) {
			t.Fatalf("workers=%d: %d replica folds recorded, want %d",
				workers, rec.Counter(CtrReplicaMerges), workers-1)
		}
	}
}

// TestParallelMergeEmptyOps must be a no-op for an empty chunk regardless
// of the configured worker count.
func TestParallelMergeEmptyOps(t *testing.T) {
	const n = 10
	ch := core.NewChain(n)
	parallelMerge(ch, nil, 8, nil)
	if got := ch.NumClusters(); got != n {
		t.Fatalf("empty ops changed the chain: %d clusters, want %d", got, n)
	}
}

// TestSweepNormalizesExtremeWorkerCounts runs the coarse sweep with
// degenerate Workers values (negative, zero, absurdly large); all must be
// normalized, finish, and agree with the serial result.
func TestSweepNormalizesExtremeWorkerCounts(t *testing.T) {
	g := testGraph(19)
	pl := core.Similarity(g)
	params := Params{Gamma: 2, Phi: 4, Delta0: 8, Eta0: 4, Workers: 1}
	ref, err := Sweep(g, pl, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-3, 0, 1 << 20} {
		params.Workers = workers
		res, err := Sweep(g, pl, params)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.FinalClusters != ref.FinalClusters || res.Levels != ref.Levels {
			t.Fatalf("workers=%d: %d clusters / %d levels, want %d / %d",
				workers, res.FinalClusters, res.Levels, ref.FinalClusters, ref.Levels)
		}
	}
}
