package coarse

import (
	"fmt"
	"testing"
	"testing/quick"

	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

// checkDendrogramSoundness asserts the Section V soundness contract of a
// coarse result against the parameters that produced it:
//
//   - γ bound: between consecutive committed levels the cluster-count ratio
//     β/β' stays within γ. The only tolerated violations are the ones the
//     paper's design admits: a level whose chunk was a single atomic vertex
//     pair (soundness cannot be enforced below pair granularity) and the
//     final C3-terminated level (β' ≤ φ stops the sweep regardless of rate).
//     Reused levels must satisfy the bound unconditionally — the Case-I jump
//     filters on it.
//   - Level boundaries respect the non-increasing similarity order of list
//     L: each level's merge similarity is at most the previous level's, every
//     merge of a level carries the level's one similarity, and the stream's
//     level numbers are exactly 1..Levels in order.
func checkDendrogramSoundness(g *graph.Graph, params Params, res *Result) error {
	prev := g.NumEdges()
	for i, ep := range res.Epochs {
		if ep.Kind == EpochRollback {
			continue
		}
		ratio := float64(prev) / float64(ep.Clusters)
		if ratio > params.Gamma+1e-9 {
			atomic := ep.Pairs == 1 && ep.Kind != EpochReused
			final := ep.Clusters <= params.Phi
			if ep.Kind == EpochReused {
				return fmt.Errorf("reused epoch %d: ratio %v exceeds gamma %v (prev=%d now=%d)",
					i, ratio, params.Gamma, prev, ep.Clusters)
			}
			if !atomic && !final {
				return fmt.Errorf("epoch %d (%v): ratio %v exceeds gamma %v (prev=%d now=%d, pairs=%d)",
					i, ep.Kind, ratio, params.Gamma, prev, ep.Clusters, ep.Pairs)
			}
		}
		prev = ep.Clusters
	}

	level := int32(0)
	levelSim := 0.0
	for i, m := range res.Merges {
		switch {
		case m.Level == level:
			if m.Sim != levelSim {
				return fmt.Errorf("merge %d: level %d mixes similarities %v and %v", i, level, levelSim, m.Sim)
			}
		case m.Level > level:
			if level > 0 && m.Sim > levelSim {
				return fmt.Errorf("merge %d: level %d similarity %v rose above level %d's %v",
					i, m.Level, m.Sim, level, levelSim)
			}
			level = m.Level
			levelSim = m.Sim
		default:
			return fmt.Errorf("merge %d: level %d after level %d", i, m.Level, level)
		}
		if m.Level < 1 || m.Level > res.Levels {
			return fmt.Errorf("merge %d: level %d outside 1..%d", i, m.Level, res.Levels)
		}
	}
	return nil
}

// TestCoarseDendrogramSoundnessProperty samples random graphs, γ values, and
// chunking parameters and checks the soundness contract on every run, serial
// and parallel (whose dendrograms must also agree).
func TestCoarseDendrogramSoundnessProperty(t *testing.T) {
	f := func(seed uint64, gRaw, pRaw, dRaw uint8) bool {
		src := rng.New(seed)
		n := 12 + int(seed%24)
		g := graph.ErdosRenyi(n, 0.2+float64(gRaw%4)/10, src)
		params := Params{
			Gamma:  1.2 + float64(gRaw%28)/10, // 1.2 .. 3.9
			Phi:    1 + int(pRaw%8),
			Delta0: 1 + int64(dRaw%32),
			Eta0:   2 + float64(dRaw%6),
		}
		serial, err := Sweep(g, core.Similarity(g), params)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := checkDendrogramSoundness(g, params, serial); err != nil {
			t.Logf("seed %d gamma %v serial: %v", seed, params.Gamma, err)
			return false
		}
		params.Workers = 3
		par, err := Sweep(g, core.Similarity(g), params)
		if err != nil {
			t.Logf("seed %d parallel: %v", seed, err)
			return false
		}
		if err := checkDendrogramSoundness(g, params, par); err != nil {
			t.Logf("seed %d gamma %v parallel: %v", seed, params.Gamma, err)
			return false
		}
		if len(par.Merges) != len(serial.Merges) {
			t.Logf("seed %d: parallel emitted %d merges, serial %d", seed, len(par.Merges), len(serial.Merges))
			return false
		}
		for i := range serial.Merges {
			if par.Merges[i] != serial.Merges[i] {
				t.Logf("seed %d: merge %d diverged: %+v vs %+v", seed, i, par.Merges[i], serial.Merges[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCoarseSoundnessOnStructuredGraphs runs the same contract on the
// structured families where tie-heavy similarity plateaus stress the level
// boundaries (many equal similarities per chunk).
func TestCoarseSoundnessOnStructuredGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"paper-example": graph.PaperExample(),
		"complete-12":   graph.Complete(12),
	}
	if g, err := graph.Circulant(36, 4); err == nil {
		graphs["circulant-36"] = g
	} else {
		t.Fatal(err)
	}
	for name, g := range graphs {
		for _, gamma := range []float64{1.2, 2, 4} {
			params := Params{Gamma: gamma, Phi: 2, Delta0: 4, Eta0: 3, Workers: 1}
			res, err := Sweep(g, core.Similarity(g), params)
			if err != nil {
				t.Fatalf("%s gamma %v: %v", name, gamma, err)
			}
			if err := checkDendrogramSoundness(g, params, res); err != nil {
				t.Errorf("%s gamma %v: %v", name, gamma, err)
			}
		}
	}
}
