package coarse

import (
	"context"
	"fmt"
	"slices"

	"linkclust/internal/core"
	"linkclust/internal/fault"
	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/par"
)

// Counter names this package records into an obs.Recorder.
const (
	// CtrLevels counts committed dendrogram levels.
	CtrLevels = "coarse.levels"
	// CtrEpochs counts all epochs (committed, rolled back, reused).
	CtrEpochs = "coarse.epochs"
	// CtrRollbacks counts aborted epochs.
	CtrRollbacks = "coarse.rollbacks"
	// CtrReuses counts levels committed from saved rollback states.
	CtrReuses = "coarse.reuses"
	// CtrOpsProcessed counts incident edge pairs processed toward the
	// final state.
	CtrOpsProcessed = "coarse.ops_processed"
	// CtrOpsWasted counts incident edge pairs processed in rolled-back
	// epochs.
	CtrOpsWasted = "coarse.ops_wasted"
	// CtrChainRewrites counts array-C entry rewrites, including replica
	// work — the Fig. 2(1) quantity for the coarse-grained sweep.
	CtrChainRewrites = "coarse.chain_rewrites"
	// CtrReplicaClones counts array-C replicas cloned for parallel chunk
	// processing (Section VI-B).
	CtrReplicaClones = "coarse.replica_clones"
	// CtrReplicaMerges counts pairwise replica combinations
	// (core.MergeChains folds).
	CtrReplicaMerges = "coarse.replica_merges"
)

// Params configures the coarse-grained sweep. The triple (γ, φ, δ0) defines
// the shape of the produced dendrogram (Section V-A); η0 and Workers tune
// execution.
type Params struct {
	// Gamma is the maximum allowed ratio of cluster counts between
	// consecutive levels (γ > 1). The target merge rate is γ̃ = (1+γ)/2.
	Gamma float64
	// Phi stops the sweep once at most this many clusters remain (φ ≥ 1).
	Phi int
	// Delta0 is the initial chunk size in incident edge pairs (δ0 ≥ 1).
	Delta0 int64
	// Eta0 is the initial head-mode growth factor (η0 > 1); each
	// head→rollback transition halves η-1.
	Eta0 float64
	// GammaTilde is the target merge rate chunk estimation steers toward,
	// in (1, Gamma]. Zero selects the paper's choice, (1+γ)/2.
	GammaTilde float64
	// Workers > 1 processes each chunk with that many replicas of array C
	// merged via the corrected scheme of Section VI-B. The value is
	// normalized at Sweep entry like every parallel entry point: values
	// below 1 run serially, values above max(runtime.GOMAXPROCS(0), runtime.NumCPU()) are
	// clamped to that cap, and each chunk additionally clamps its worker
	// count to the chunk's operation count so near-empty partitions never
	// pay per-replica clone cost.
	Workers int
}

// DefaultParams returns the paper's experimental setting: γ = 2, φ = 100,
// δ0 = 1000, η0 = 8, serial execution.
func DefaultParams() Params {
	return Params{Gamma: 2, Phi: 100, Delta0: 1000, Eta0: 8, Workers: 1}
}

func (p Params) validate() error {
	switch {
	case p.Gamma <= 1:
		return fmt.Errorf("coarse: Gamma must exceed 1, got %v", p.Gamma)
	case p.Phi < 1:
		return fmt.Errorf("coarse: Phi must be at least 1, got %d", p.Phi)
	case p.Delta0 < 1:
		return fmt.Errorf("coarse: Delta0 must be at least 1, got %d", p.Delta0)
	case p.Eta0 <= 1:
		return fmt.Errorf("coarse: Eta0 must exceed 1, got %v", p.Eta0)
	case p.GammaTilde != 0 && (p.GammaTilde <= 1 || p.GammaTilde > p.Gamma):
		return fmt.Errorf("coarse: GammaTilde must be in (1, Gamma], got %v", p.GammaTilde)
	default:
		return nil
	}
}

// EpochKind classifies an epoch for the Fig. 5(1) breakdown.
type EpochKind int

const (
	// EpochHeadFresh is a committed level computed in head mode.
	EpochHeadFresh EpochKind = iota + 1
	// EpochTailFresh is a committed level computed in tail mode.
	EpochTailFresh
	// EpochRollback is an aborted epoch whose state was saved and undone.
	EpochRollback
	// EpochReused is a level committed by jumping to a saved rollback
	// state instead of recomputing it.
	EpochReused
)

// String implements fmt.Stringer.
func (k EpochKind) String() string {
	switch k {
	case EpochHeadFresh:
		return "head/fresh"
	case EpochTailFresh:
		return "tail/fresh"
	case EpochRollback:
		return "rollback"
	case EpochReused:
		return "reused"
	default:
		return "invalid"
	}
}

// Epoch records one epoch of the coarse-grained sweep.
type Epoch struct {
	Kind EpochKind
	// Level is the dendrogram level the epoch committed (0 for rollback
	// epochs, which commit nothing).
	Level int32
	// Clusters is β' at the end of the epoch.
	Clusters int
	// ChunkSize is the chunk budget δ the epoch ran with (0 for reused
	// epochs, which process nothing).
	ChunkSize int64
	// OpsProcessed is the number of incident edge pairs this epoch fed to
	// MERGE (rollback epochs count their wasted work here; reused epochs
	// are 0 — that is the work reuse saved).
	OpsProcessed int64
	// Pairs is the number of vertex pairs (entries of L) the chunk
	// consumed. A committed epoch with Pairs == 1 may exceed the γ bound:
	// vertex pairs are atomic, so soundness cannot be enforced below
	// single-pair granularity.
	Pairs int
	// Changes is the number of array-C entry rewrites during the epoch.
	Changes int64
}

// Result is the outcome of a coarse-grained sweep.
type Result struct {
	// Merges is the dendrogram stream; all merges of one chunk share a
	// level, and a merge's Sim is the similarity of the last vertex pair
	// of its chunk (the chunk's similarity lower bound).
	Merges []core.Merge
	// Chain is the final array C.
	Chain *core.Chain
	// Levels is the number of committed dendrogram levels.
	Levels int32
	// Epochs is the per-epoch log, in execution order.
	Epochs []Epoch
	// OpsProcessed is the number of incident edge pairs processed toward
	// the final state (excluding rolled-back work).
	OpsProcessed int64
	// OpsWasted is the number of incident edge pairs processed in epochs
	// that were rolled back.
	OpsWasted int64
	// TotalOps is K2, the number of incident edge pairs in the input.
	TotalOps int64
	// FinalClusters is the cluster count when the sweep stopped.
	FinalClusters int
}

// FractionProcessed returns OpsProcessed / TotalOps — the paper reports
// 55.1% at α = 0.005.
func (r *Result) FractionProcessed() float64 {
	if r.TotalOps == 0 {
		return 0
	}
	return float64(r.OpsProcessed) / float64(r.TotalOps)
}

// savedState is an epoch state Q = (β, Δ, p, C) (plus bookkeeping) saved on
// L_rollback or as the safe state Q*.
type savedState struct {
	snap  []int32 // array C snapshot
	beta  int
	delta int64 // Δ: cumulative chunk budget consumed
	xi    int64 // incident pairs processed
	p     int   // next vertex-pair index
	sim   float64
}

// levelPoint is one committed level's (ξ, β) coordinate for slope
// extrapolation.
type levelPoint struct {
	xi   int64
	beta int
}

// Sweep runs the coarse-grained sweeping algorithm over the sorted pair
// list. The pair list is sorted in place if needed.
func Sweep(g *graph.Graph, pl *core.PairList, params Params) (*Result, error) {
	return SweepRecorded(g, pl, params, nil)
}

// SweepRecorded is Sweep with optional instrumentation: sort/chunk phase
// timers, the epoch and chain-rewrite counters, and the replica fan-out
// cost of parallel runs are recorded into rec. A nil rec records nothing
// and adds no measurable overhead.
func SweepRecorded(g *graph.Graph, pl *core.PairList, params Params, rec *obs.Recorder) (*Result, error) {
	return SweepCtx(context.Background(), g, pl, params, rec)
}

// SweepCtx is SweepRecorded with cooperative cancellation and panic
// isolation. The context is checked at every chunk boundary — the coarse
// sweep's natural synchronization points, where the replica fan-out is
// quiescent — plus inside the initial parallel sort, so cancel latency is
// bounded by one chunk of merge work (chunks start at Delta0 operations and
// grow adaptively). A panic inside the replica fan-out surfaces as a
// *par.WorkerPanicError.
func SweepCtx(ctx context.Context, g *graph.Graph, pl *core.PairList, params Params, rec *obs.Recorder) (res *Result, err error) {
	defer par.RecoverPanicError(&err)
	params.Workers = par.Normalize(params.Workers)
	if err := params.validate(); err != nil {
		return nil, err
	}
	end := rec.Phase("coarse")
	defer end()
	endSort := rec.Phase("sort-worklist")
	w, err := buildWorkListCtx(ctx, g, pl, params.Workers)
	endSort()
	if err != nil {
		return nil, err
	}
	gTilde := params.GammaTilde
	if gTilde == 0 {
		gTilde = (1 + params.Gamma) / 2
	}
	s := &sweeper{
		ctx:    ctx,
		params: params,
		gTilde: gTilde,
		w:      w,
		chain:  core.NewChain(g.NumEdges()),
		rec:    rec,
		res: &Result{
			Chain:    nil, // set at the end
			TotalOps: w.totalOps(),
		},
		eta:   params.Eta0,
		delta: params.Delta0,
		beta:  g.NumEdges(),
		mode:  ModeHead,
	}
	endRun := rec.Phase("chunks")
	s.run()
	endRun()
	if s.err != nil {
		return nil, s.err
	}
	s.res.Chain = s.chain
	s.res.FinalClusters = s.chain.NumClusters()
	s.recordEpochStats()
	return s.res, nil
}

// recordEpochStats records the run's epoch and rewrite counters once the
// sweep has finished.
func (s *sweeper) recordEpochStats() {
	if s.rec == nil {
		return
	}
	var rollbacks, reuses int64
	for _, ep := range s.res.Epochs {
		switch ep.Kind {
		case EpochRollback:
			rollbacks++
		case EpochReused:
			reuses++
		}
	}
	s.rec.Add(CtrLevels, int64(s.res.Levels))
	s.rec.Add(CtrEpochs, int64(len(s.res.Epochs)))
	s.rec.Add(CtrRollbacks, rollbacks)
	s.rec.Add(CtrReuses, reuses)
	s.rec.Add(CtrOpsProcessed, s.res.OpsProcessed)
	s.rec.Add(CtrOpsWasted, s.res.OpsWasted)
	s.rec.Add(CtrChainRewrites, s.chain.Changes())
}

type sweeper struct {
	// ctx is polled at every chunk boundary; nil means not cancellable.
	ctx    context.Context
	params Params
	gTilde float64
	w      *workList
	chain  *core.Chain
	rec    *obs.Recorder
	res    *Result

	// Mutable sweep state.
	mode  Mode
	eta   float64
	delta int64 // current chunk size estimate δ
	Delta int64 // cumulative chunk budget Δ
	xi    int64 // incident pairs processed toward current state
	p     int   // next vertex-pair index
	beta  int   // clusters at the previous committed level

	safe        *savedState  // Q*
	rollbacks   []savedState // L_rollback
	history     []levelPoint // committed level coordinates
	consecutive int          // consecutive rollbacks from the same safe state
	err         error        // first work-list resolution failure
	batch       [][2]int32   // chunk operation buffer for parallel runs
}

func (s *sweeper) run() {
	half := s.chain.Len() / 2
	s.safe = s.capture()
	s.history = append(s.history, levelPoint{xi: 0, beta: s.beta})

	if s.beta <= s.params.Phi {
		return // trivially few clusters
	}
	for s.p < s.w.numPairs() {
		// Chunk boundaries are the coarse sweep's cancellation points (and
		// fault.CancelWindow injection sites): the replica fan-out is
		// quiescent here, so stopping leaves no goroutine behind.
		fault.Hit(fault.CancelWindow)
		if s.ctx != nil {
			if err := s.ctx.Err(); err != nil {
				s.err = err
				return
			}
		}
		oldSnap := s.chain.Snapshot()
		changesBefore := s.chain.Changes()
		opsBefore := s.xi

		endChunk := s.rec.Phase("chunk")
		chunkSim, pairsInChunk := s.processChunk()
		endChunk()
		if s.err != nil {
			return
		}

		opsDone := s.xi - opsBefore
		changes := s.chain.Changes() - changesBefore
		betaNew := s.chain.NumClusters()

		c1 := betaNew <= half
		c2 := float64(s.beta)/float64(betaNew) <= s.params.Gamma
		c3 := betaNew <= s.params.Phi
		next := NextMode(c1, c2, c3)

		if next == ModeRollback {
			if pairsInChunk <= 1 {
				// A single vertex pair is atomic (its common-neighbor
				// list is never split across chunks), so the soundness
				// bound cannot be enforced below this granularity;
				// commit the level rather than rolling back forever.
				next = ModeHead
				if c1 {
					next = ModeTail
				}
			} else {
				s.rollback(betaNew, chunkSim, opsDone, changes, pairsInChunk)
				continue
			}
		}

		// Commit the level.
		s.res.Levels++
		s.emitDiffMerges(oldSnap, chunkSim)
		kind := EpochHeadFresh
		if s.mode == ModeTail || c1 {
			kind = EpochTailFresh
		}
		s.res.Epochs = append(s.res.Epochs, Epoch{
			Kind:         kind,
			Level:        s.res.Levels,
			Clusters:     betaNew,
			ChunkSize:    s.delta,
			OpsProcessed: opsDone,
			Pairs:        pairsInChunk,
			Changes:      changes,
		})
		s.res.OpsProcessed += opsDone
		s.beta = betaNew
		s.Delta += s.delta
		if s.xi > s.Delta {
			// A forced oversized vertex pair overflowed the budget;
			// realign so the next boundary is ahead of the cursor.
			s.Delta = s.xi
		}
		s.history = append(s.history, levelPoint{xi: s.xi, beta: s.beta})
		s.safe = s.capture()
		s.consecutive = 0

		if next == ModeDone {
			return
		}

		// Case I of Section V-A: before estimating the next chunk size,
		// try to reuse a saved rollback state as the next level.
		if s.reuseSavedState() {
			if s.beta <= s.params.Phi {
				return
			}
			// Mode after a jump follows the fresh cluster count.
			if s.beta <= half {
				next = ModeTail
			} else {
				next = ModeHead
			}
		}

		s.estimateChunk(next)
		s.mode = next
	}
}

// capture snapshots the current epoch state.
func (s *sweeper) capture() *savedState {
	sim := 0.0
	if s.p > 0 {
		sim = s.w.sim(s.p - 1)
	}
	return &savedState{
		snap:  s.chain.Snapshot(),
		beta:  s.chain.NumClusters(),
		delta: s.Delta,
		xi:    s.xi,
		p:     s.p,
		sim:   sim,
	}
}

// restore rewinds the sweep to a saved state.
func (s *sweeper) restore(st *savedState) {
	s.chain.Restore(st.snap)
	s.Delta = st.delta
	s.xi = st.xi
	s.p = st.p
}

// processChunk advances through vertex pairs until the chunk budget Δ+δ
// would be exceeded, merging incident edge pairs, and returns the
// similarity of the last vertex pair processed along with the number of
// vertex pairs consumed. At least one vertex pair is always processed (a
// pair whose common-neighbor list alone exceeds the budget is taken whole,
// with the budget realigned by the caller), which guarantees termination.
func (s *sweeper) processChunk() (sim float64, pairs int) {
	start := s.p
	boundary := s.Delta + s.delta
	parallel := s.params.Workers > 1
	s.batch = s.batch[:0]
	for s.p < s.w.numPairs() {
		cnt := s.w.opCount(s.p)
		if s.p > start && s.xi+cnt >= boundary {
			break
		}
		ops, err := s.w.opsOf(s.p)
		if err != nil {
			s.err = err
			break
		}
		if parallel {
			// The whole chunk is partitioned across workers at once
			// (Section VI-B); collect its operations first.
			s.batch = append(s.batch, ops...)
		} else {
			for _, op := range ops {
				s.chain.Merge(op[0], op[1])
			}
		}
		s.xi += cnt
		sim = s.w.sim(s.p)
		s.p++
		if s.xi >= boundary {
			break
		}
	}
	if parallel {
		// parallelMerge clamps its worker count to the chunk size and
		// falls back to serial merging below the small-chunk threshold.
		parallelMerge(s.chain, s.batch, s.params.Workers, s.rec)
	}
	return sim, s.p - start
}

// rollback saves the overshot epoch on L_rollback, restores Q*, shrinks the
// chunk estimate, and applies the head-mode η decay.
func (s *sweeper) rollback(betaNew int, chunkSim float64, opsDone, changes int64, pairsInChunk int) {
	s.res.Epochs = append(s.res.Epochs, Epoch{
		Kind:         EpochRollback,
		Clusters:     betaNew,
		ChunkSize:    s.delta,
		OpsProcessed: opsDone,
		Pairs:        pairsInChunk,
		Changes:      changes,
	})
	s.res.OpsWasted += opsDone
	st := savedState{
		snap:  s.chain.Snapshot(),
		beta:  betaNew,
		delta: s.xi, // budget realigns to the consumed position on reuse
		xi:    s.xi,
		p:     s.p,
		sim:   chunkSim,
	}
	s.rollbacks = append(s.rollbacks, st)

	if s.mode == ModeHead {
		// η-1 halves on every head→rollback transition.
		s.eta = 1 + (s.eta-1)/2
	}

	refXi, refBeta := st.xi, st.beta
	s.restore(s.safe)

	if s.consecutive > 0 {
		// Consecutive rollbacks: halve the distance between the failed
		// estimate and the safe level.
		s.delta = maxI64(1, s.delta/2)
	} else {
		s.delta = s.extrapolate(refXi, refBeta)
	}
	s.consecutive++
	s.mode = ModeRollback
}

// estimateChunk sets δ for the next epoch according to the committed mode.
func (s *sweeper) estimateChunk(next Mode) {
	switch next {
	case ModeHead:
		s.delta = maxI64(1, int64(float64(s.delta)*s.eta))
	case ModeTail:
		// Prefer the closest saved rollback state below β (Eq. 6) as the
		// extrapolation reference; otherwise use the previous two levels.
		if ref, ok := s.tailReference(); ok {
			s.delta = s.extrapolate(ref.xi, ref.beta)
		} else {
			s.delta = s.extrapolate(-1, 0)
		}
	}
}

// tailReference picks the epoch state s* on L_rollback with
// β̃(s*) < β and β̃(s*) maximal (Eq. 6).
func (s *sweeper) tailReference() (levelPoint, bool) {
	best := -1
	for i := range s.rollbacks {
		st := &s.rollbacks[i]
		if st.beta >= s.beta || st.p <= s.p {
			continue
		}
		if best < 0 || st.beta > s.rollbacks[best].beta {
			best = i
		}
	}
	if best < 0 {
		return levelPoint{}, false
	}
	return levelPoint{xi: s.rollbacks[best].xi, beta: s.rollbacks[best].beta}, true
}

// extrapolate predicts the next chunk size from cluster-count slopes
// (Section V-B, Fig. 3). The candidate slopes are (a) between the last two
// committed levels and (b) between the last level and the reference point
// (refXi < 0 disables (b)); the steeper (more negative) slope is used, so
// the estimate undershoots the chunk that would reach the target cluster
// count β/γ̃ at the next level.
func (s *sweeper) extrapolate(refXi int64, refBeta int) int64 {
	lastXi, lastBeta := s.xi, s.beta
	target := float64(lastBeta) / s.gTilde

	slope := 0.0 // clusters per incident pair; want the most negative
	ok := false
	if n := len(s.history); n >= 2 {
		a, b := s.history[n-2], s.history[n-1]
		if b.xi > a.xi && b.beta < a.beta {
			slope = float64(b.beta-a.beta) / float64(b.xi-a.xi)
			ok = true
		}
	}
	if refXi >= 0 && refXi > lastXi && refBeta < lastBeta {
		sRef := float64(refBeta-lastBeta) / float64(refXi-lastXi)
		if !ok || sRef < slope {
			slope = sRef
			ok = true
		}
	}
	if !ok || slope >= 0 {
		// No usable gradient means the last chunk barely reduced the
		// cluster count; flat regions want more pairs per level, so grow.
		next := s.delta * 2
		if next > s.w.totalOps() {
			next = s.w.totalOps()
		}
		return maxI64(1, next)
	}
	est := (target - float64(lastBeta)) / slope
	if est < 1 {
		return 1
	}
	return int64(est)
}

// reuseSavedState implements the Case-I jump: among saved rollback states
// ahead of the cursor with β̃ < β and β/β̃ ≤ γ, jump to the one with the
// smallest cluster count, committing it as the next level without
// recomputation. Stale states are pruned. Reports whether a jump happened.
func (s *sweeper) reuseSavedState() bool {
	best := -1
	for i := range s.rollbacks {
		st := &s.rollbacks[i]
		if st.beta >= s.beta || st.p <= s.p {
			continue
		}
		if float64(s.beta)/float64(st.beta) > s.params.Gamma {
			continue
		}
		if best < 0 || st.beta < s.rollbacks[best].beta {
			best = i
		}
	}
	if best < 0 {
		s.pruneRollbacks()
		return false
	}
	st := s.rollbacks[best]
	oldSnap := s.chain.Snapshot()
	opsSkipped := st.xi - s.xi
	s.chain.Restore(st.snap)
	s.Delta = st.delta
	s.xi = st.xi
	s.p = st.p
	s.beta = st.beta

	s.res.Levels++
	s.emitDiffMerges(oldSnap, st.sim)
	s.res.Epochs = append(s.res.Epochs, Epoch{
		Kind:     EpochReused,
		Level:    s.res.Levels,
		Clusters: st.beta,
	})
	// The ops the reused state embodies count as processed (they shaped
	// the final chain) but were executed during the rollback epoch.
	s.res.OpsProcessed += opsSkipped
	s.res.OpsWasted -= opsSkipped
	s.history = append(s.history, levelPoint{xi: s.xi, beta: s.beta})
	s.safe = s.capture()
	s.pruneRollbacks()
	return true
}

// pruneRollbacks drops saved states that can never be used again: behind
// the cursor, or with cluster counts at or above the current β (β only
// decreases).
func (s *sweeper) pruneRollbacks() {
	kept := s.rollbacks[:0]
	for i := range s.rollbacks {
		st := &s.rollbacks[i]
		if st.p > s.p && st.beta < s.beta {
			kept = append(kept, *st)
		}
	}
	s.rollbacks = kept
}

// emitDiffMerges appends one merge event per cluster fusion between the old
// chain snapshot and the current chain, all at the current level. Events
// are derived from the partition difference, so rolled-back work never
// reaches the dendrogram and reused states emit exactly their net effect.
func (s *sweeper) emitDiffMerges(oldSnap []int32, sim float64) {
	end := s.rec.Phase("commit-merges")
	defer end()
	old := core.NewChain(len(oldSnap))
	old.Restore(oldSnap)
	groups := make(map[int32][]int32) // new root -> old roots merged into it
	for e := 0; e < s.chain.Len(); e++ {
		or := old.Find(int32(e))
		if int32(e) != or {
			continue // enumerate each old cluster once, via its root
		}
		nr := s.chain.Find(int32(e))
		groups[nr] = append(groups[nr], or)
	}
	level := s.res.Levels
	for nr, olds := range groups {
		if len(olds) < 2 {
			continue
		}
		slices.Sort(olds)
		// olds[0] == nr because roots are minima.
		base := olds[0]
		for _, o := range olds[1:] {
			s.res.Merges = append(s.res.Merges, core.Merge{
				Level: level,
				A:     base,
				B:     o,
				Into:  nr,
				Sim:   sim,
			})
		}
	}
	// Deterministic event order within the level.
	ms := s.res.Merges
	lvlStart := len(ms)
	for lvlStart > 0 && ms[lvlStart-1].Level == level {
		lvlStart--
	}
	slices.SortFunc(ms[lvlStart:], func(a, b core.Merge) int {
		if a.A != b.A {
			return int(a.A) - int(b.A)
		}
		return int(a.B) - int(b.B)
	})
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
