package coarse

import (
	"testing"
	"testing/quick"

	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

// testGraph builds a moderately sized random graph whose link structure has
// a meaningful similarity spread.
func testGraph(seed uint64) *graph.Graph {
	return graph.ErdosRenyi(40, 0.25, rng.New(seed))
}

func samePartition(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int32]int32)
	rev := make(map[int32]int32)
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := rev[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

func TestNextModeTruthTable(t *testing.T) {
	cases := []struct {
		c1, c2, c3 bool
		want       Mode
	}{
		{false, true, false, ModeHead},
		{true, true, false, ModeTail},
		{false, false, false, ModeRollback},
		{true, false, false, ModeRollback},
		{false, true, true, ModeDone},
		{true, true, true, ModeDone},
		{false, false, true, ModeDone}, // C3 outranks soundness
		{true, false, true, ModeDone},
	}
	for _, tc := range cases {
		if got := NextMode(tc.c1, tc.c2, tc.c3); got != tc.want {
			t.Errorf("NextMode(%v,%v,%v) = %v, want %v", tc.c1, tc.c2, tc.c3, got, tc.want)
		}
	}
}

func TestModeStrings(t *testing.T) {
	pairs := map[Mode]string{
		ModeHead: "head", ModeTail: "tail", ModeRollback: "rollback",
		ModeDone: "done", Mode(0): "invalid",
	}
	for m, want := range pairs {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
	kinds := map[EpochKind]string{
		EpochHeadFresh: "head/fresh", EpochTailFresh: "tail/fresh",
		EpochRollback: "rollback", EpochReused: "reused", EpochKind(0): "invalid",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("EpochKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	g := graph.PaperExample()
	pl := core.Similarity(g)
	bad := []Params{
		{Gamma: 1, Phi: 10, Delta0: 10, Eta0: 2},
		{Gamma: 2, Phi: 0, Delta0: 10, Eta0: 2},
		{Gamma: 2, Phi: 10, Delta0: 0, Eta0: 2},
		{Gamma: 2, Phi: 10, Delta0: 10, Eta0: 1},
	}
	for i, p := range bad {
		if _, err := Sweep(g, pl, p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

// TestCoarsePrefixProperty: the coarse sweep's final partition must equal
// the partition obtained by serially replaying exactly the incident pairs
// it processed (it consumes a prefix of the sorted work list, rollbacks
// notwithstanding).
func TestCoarsePrefixProperty(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := testGraph(seed)
		pl := core.Similarity(g)
		params := Params{Gamma: 2, Phi: 5, Delta0: 8, Eta0: 4, Workers: 1}
		res, err := Sweep(g, pl, params)
		if err != nil {
			t.Fatal(err)
		}
		w, err := buildWorkList(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		ref := core.NewChain(g.NumEdges())
		var done int64
		for p := 0; p < w.numPairs() && done < res.OpsProcessed; p++ {
			ops, err := w.opsOf(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops {
				ref.Merge(op[0], op[1])
			}
			done += w.opCount(p)
		}
		if done != res.OpsProcessed {
			t.Fatalf("seed %d: OpsProcessed %d is not a whole-pair prefix (got %d)", seed, res.OpsProcessed, done)
		}
		if !samePartition(ref.Assignments(), res.Chain.Assignments()) {
			t.Fatalf("seed %d: coarse partition differs from serial prefix replay", seed)
		}
	}
}

func TestCoarseStopsAtPhi(t *testing.T) {
	g := testGraph(7)
	pl := core.Similarity(g)
	res, err := Sweep(g, pl, Params{Gamma: 2, Phi: 10, Delta0: 4, Eta0: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Either stopped below phi or exhausted the list.
	if res.FinalClusters > 10 && res.OpsProcessed < res.TotalOps {
		t.Fatalf("stopped early with %d clusters > phi", res.FinalClusters)
	}
	if res.FinalClusters <= 10 && res.FractionProcessed() >= 1 {
		t.Logf("note: phi reached exactly at the end of the list")
	}
}

func TestCoarseSoundness(t *testing.T) {
	// Between consecutive committed levels the cluster-count ratio stays
	// within gamma, except for atomic single-pair chunks and the final
	// C3-terminated level.
	g := testGraph(3)
	pl := core.Similarity(g)
	gamma := 1.5
	res, err := Sweep(g, pl, Params{Gamma: gamma, Phi: 3, Delta0: 4, Eta0: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := g.NumEdges()
	for i, ep := range res.Epochs {
		if ep.Kind == EpochRollback {
			continue
		}
		ratio := float64(prev) / float64(ep.Clusters)
		final := ep.Clusters <= 3
		if ratio > gamma+1e-9 && ep.Pairs > 1 && ep.Kind != EpochReused && !final {
			t.Fatalf("epoch %d (%v): ratio %v exceeds gamma %v (prev=%d now=%d)",
				i, ep.Kind, ratio, gamma, prev, ep.Clusters)
		}
		prev = ep.Clusters
	}
}

func TestCoarseEpochAccounting(t *testing.T) {
	g := testGraph(5)
	pl := core.Similarity(g)
	res, err := Sweep(g, pl, Params{Gamma: 1.3, Phi: 2, Delta0: 3, Eta0: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var processed, wasted int64
	levels := int32(0)
	for _, ep := range res.Epochs {
		switch ep.Kind {
		case EpochRollback:
			wasted += ep.OpsProcessed
			if ep.Level != 0 {
				t.Fatalf("rollback epoch carries level %d", ep.Level)
			}
		case EpochReused:
			levels++
			if ep.Level != levels {
				t.Fatalf("reused epoch level %d, want %d", ep.Level, levels)
			}
		default:
			levels++
			processed += ep.OpsProcessed
			if ep.Level != levels {
				t.Fatalf("epoch level %d, want %d", ep.Level, levels)
			}
		}
	}
	if levels != res.Levels {
		t.Fatalf("levels %d, epochs imply %d", res.Levels, levels)
	}
	// Reused states move ops from wasted to processed.
	if processed > res.OpsProcessed {
		t.Fatalf("fresh-epoch ops %d exceed result's OpsProcessed %d", processed, res.OpsProcessed)
	}
	if res.OpsProcessed+res.OpsWasted != processed+wasted {
		t.Fatalf("ops ledger unbalanced: %d+%d vs %d+%d",
			res.OpsProcessed, res.OpsWasted, processed, wasted)
	}
	if res.OpsProcessed > res.TotalOps {
		t.Fatalf("processed %d > total %d", res.OpsProcessed, res.TotalOps)
	}
}

func TestCoarseClusterCountsMonotone(t *testing.T) {
	g := testGraph(9)
	pl := core.Similarity(g)
	res, err := Sweep(g, pl, Params{Gamma: 2, Phi: 2, Delta0: 5, Eta0: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := g.NumEdges() + 1
	for _, ep := range res.Epochs {
		if ep.Kind == EpochRollback {
			continue
		}
		if ep.Clusters > prev {
			t.Fatalf("committed cluster count rose: %d after %d", ep.Clusters, prev)
		}
		prev = ep.Clusters
	}
}

func TestCoarseDendrogramConsistent(t *testing.T) {
	// Replaying the emitted merge stream reproduces the final partition.
	g := testGraph(11)
	pl := core.Similarity(g)
	res, err := Sweep(g, pl, Params{Gamma: 2, Phi: 4, Delta0: 6, Eta0: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	uf := core.NewChain(g.NumEdges())
	for _, m := range res.Merges {
		uf.Merge(m.A, m.B)
	}
	if !samePartition(uf.Assignments(), res.Chain.Assignments()) {
		t.Fatal("merge stream does not reproduce the final partition")
	}
	// Levels on the stream never decrease and never exceed res.Levels.
	lastLevel := int32(0)
	for _, m := range res.Merges {
		if m.Level < lastLevel || m.Level > res.Levels {
			t.Fatalf("merge level %d out of order (last %d, max %d)", m.Level, lastLevel, res.Levels)
		}
		lastLevel = m.Level
	}
}

func TestCoarseParallelMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g := testGraph(seed)
		pl := core.Similarity(g)
		params := Params{Gamma: 2, Phi: 4, Delta0: 8, Eta0: 4, Workers: 1}
		serial, err := Sweep(g, pl, params)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 6} {
			params.Workers = workers
			par, err := Sweep(g, pl, params)
			if err != nil {
				t.Fatal(err)
			}
			if par.Levels != serial.Levels {
				t.Fatalf("seed %d workers %d: levels %d vs %d", seed, workers, par.Levels, serial.Levels)
			}
			if !samePartition(par.Chain.Assignments(), serial.Chain.Assignments()) {
				t.Fatalf("seed %d workers %d: partitions differ", seed, workers)
			}
			if par.OpsProcessed != serial.OpsProcessed {
				t.Fatalf("seed %d workers %d: ops %d vs %d", seed, workers, par.OpsProcessed, serial.OpsProcessed)
			}
		}
	}
}

func TestCoarseTriggersRollbackAndReuse(t *testing.T) {
	// A tight gamma with aggressive chunk growth must trigger rollbacks.
	g := graph.Complete(12) // dense: clusters collapse fast
	pl := core.Similarity(g)
	res, err := Sweep(g, pl, Params{Gamma: 1.2, Phi: 2, Delta0: 64, Eta0: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rollbacks := 0
	for _, ep := range res.Epochs {
		if ep.Kind == EpochRollback {
			rollbacks++
		}
	}
	if rollbacks == 0 {
		t.Fatal("expected rollbacks under tight gamma and aggressive growth")
	}
}

func TestCoarseEmptyAndTinyGraphs(t *testing.T) {
	params := DefaultParams()
	for _, g := range []*graph.Graph{
		graph.NewBuilder(0).Build(nil),
		graph.NewBuilder(3).Build(nil),
		graph.DisjointEdges(3),
		graph.Path(3),
	} {
		pl := core.Similarity(g)
		res, err := Sweep(g, pl, params)
		if err != nil {
			t.Fatalf("graph with %d edges: %v", g.NumEdges(), err)
		}
		if res.FinalClusters > g.NumEdges() {
			t.Fatalf("clusters %d > edges %d", res.FinalClusters, g.NumEdges())
		}
	}
}

func TestCoarseDeterministic(t *testing.T) {
	g := testGraph(13)
	pl := core.Similarity(g)
	params := Params{Gamma: 2, Phi: 4, Delta0: 8, Eta0: 4, Workers: 1}
	a, err := Sweep(g, pl, params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(g, pl, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Merges) != len(b.Merges) || a.Levels != b.Levels {
		t.Fatalf("nondeterministic shape: %d/%d merges, %d/%d levels",
			len(a.Merges), len(b.Merges), a.Levels, b.Levels)
	}
	for i := range a.Merges {
		if a.Merges[i] != b.Merges[i] {
			t.Fatalf("merge %d differs", i)
		}
	}
}

func TestFixedChunksMatchesStrictSweep(t *testing.T) {
	g := testGraph(17)
	pl := core.Similarity(g)
	tr, err := FixedChunks(g, pl, 10)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := core.Sweep(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalOps != strict.PairsProcessed {
		t.Fatalf("ops: %d vs %d", tr.TotalOps, strict.PairsProcessed)
	}
	last := tr.Clusters[len(tr.Clusters)-1]
	if last != strict.NumClusters() {
		t.Fatalf("final clusters %d vs strict %d", last, strict.NumClusters())
	}
	// Identical op sequence => identical total change count.
	var sum int64
	for _, c := range tr.Changes {
		sum += c
	}
	if sum != strict.Chain.Changes() {
		t.Fatalf("total changes %d vs strict %d", sum, strict.Chain.Changes())
	}
	// Cluster counts non-increasing, cumulative ops increasing to K2.
	prev := g.NumEdges() + 1
	for i, c := range tr.Clusters {
		if c > prev {
			t.Fatalf("chunk %d: clusters rose to %d", i, c)
		}
		prev = c
	}
	if tr.Ops[len(tr.Ops)-1] != tr.TotalOps {
		t.Fatalf("cumulative ops end at %d, want %d", tr.Ops[len(tr.Ops)-1], tr.TotalOps)
	}
}

func TestFixedChunksBadChunkSize(t *testing.T) {
	g := graph.PaperExample()
	pl := core.Similarity(g)
	if _, err := FixedChunks(g, pl, 0); err == nil {
		t.Fatal("chunk size 0 accepted")
	}
}

func TestFixedChunksSingleChunk(t *testing.T) {
	g := graph.PaperExample()
	pl := core.Similarity(g)
	tr, err := FixedChunks(g, pl, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLevels() != 1 {
		t.Fatalf("one giant chunk yielded %d levels", tr.NumLevels())
	}
	if tr.Clusters[0] != 1 {
		t.Fatalf("K_{2,4} should collapse to 1 cluster, got %d", tr.Clusters[0])
	}
}

// TestCoarseQuickRandomParams drives random graphs through random valid
// parameter sets and asserts the structural invariants that must hold for
// any configuration: the prefix property, ops accounting, monotone cluster
// counts, and the dendrogram replay.
func TestCoarseQuickRandomParams(t *testing.T) {
	f := func(seed uint64, gRaw, pRaw, dRaw uint8) bool {
		src := rng.New(seed)
		n := 10 + int(gRaw%25)
		g := graph.ErdosRenyi(n, 0.25, src)
		params := Params{
			Gamma:  1.1 + float64(gRaw%30)/10, // 1.1 .. 4.0
			Phi:    1 + int(pRaw%20),
			Delta0: 1 + int64(dRaw%64),
			Eta0:   1.5 + float64(dRaw%8),
		}
		pl := core.Similarity(g)
		res, err := Sweep(g, pl, params)
		if err != nil {
			return false
		}
		// Ops ledger.
		if res.OpsProcessed < 0 || res.OpsProcessed > res.TotalOps || res.OpsWasted < 0 {
			return false
		}
		// Prefix property.
		w, err := buildWorkList(g, pl)
		if err != nil {
			return false
		}
		ref := core.NewChain(g.NumEdges())
		var done int64
		for p := 0; p < w.numPairs() && done < res.OpsProcessed; p++ {
			ops, err := w.opsOf(p)
			if err != nil {
				return false
			}
			for _, op := range ops {
				ref.Merge(op[0], op[1])
			}
			done += w.opCount(p)
		}
		if done != res.OpsProcessed {
			return false
		}
		if !samePartition(ref.Assignments(), res.Chain.Assignments()) {
			return false
		}
		// Dendrogram replay.
		uf := core.NewChain(g.NumEdges())
		for _, m := range res.Merges {
			uf.Merge(m.A, m.B)
		}
		if !samePartition(uf.Assignments(), res.Chain.Assignments()) {
			return false
		}
		// Monotone committed cluster counts.
		prev := g.NumEdges() + 1
		for _, ep := range res.Epochs {
			if ep.Kind == EpochRollback {
				continue
			}
			if ep.Clusters > prev {
				return false
			}
			prev = ep.Clusters
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaTildeConfigurable(t *testing.T) {
	g := testGraph(21)
	pl := core.Similarity(g)
	// Invalid values rejected.
	for _, gt := range []float64{0.5, 1.0, 2.5} {
		p := Params{Gamma: 2, Phi: 5, Delta0: 8, Eta0: 4, GammaTilde: gt}
		if _, err := Sweep(g, pl, p); err == nil {
			t.Errorf("GammaTilde %v accepted", gt)
		}
	}
	// A valid explicit value runs and respects the prefix property.
	p := Params{Gamma: 2, Phi: 5, Delta0: 8, Eta0: 4, GammaTilde: 1.9}
	res, err := Sweep(g, pl, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels == 0 {
		t.Fatal("no levels committed")
	}
	// Zero keeps the paper's default and must behave like before.
	p.GammaTilde = 0
	if _, err := Sweep(g, pl, p); err != nil {
		t.Fatal(err)
	}
}
