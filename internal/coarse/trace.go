package coarse

import (
	"fmt"

	"linkclust/internal/core"
	"linkclust/internal/graph"
)

// Trace is the per-chunk instrumentation of a fixed-chunk sweep — the
// measurement behind Fig. 2(1) (changes on array C per level) and Fig. 2(2)
// (cluster count versus level). Index l of the slices describes chunk/level
// l+1.
type Trace struct {
	// ChunkPairs is the fixed chunk size in incident edge pairs.
	ChunkPairs int64
	// Clusters[l] is the cluster count after chunk l+1.
	Clusters []int
	// Changes[l] is the number of array-C rewrites during chunk l+1.
	Changes []int64
	// Ops[l] is the cumulative number of incident pairs processed after
	// chunk l+1.
	Ops []int64
	// TotalOps is K2.
	TotalOps int64
}

// NumLevels returns the number of chunks processed.
func (t *Trace) NumLevels() int { return len(t.Clusters) }

// FixedChunks processes the whole sorted pair list in fixed-size chunks of
// chunkPairs incident edge pairs (vertex pairs stay atomic), recording the
// cluster count and array-C change count after every chunk. Unlike Sweep it
// applies no soundness constraint and runs to the end of the list.
func FixedChunks(g *graph.Graph, pl *core.PairList, chunkPairs int64) (*Trace, error) {
	if chunkPairs < 1 {
		return nil, fmt.Errorf("coarse: chunk size must be at least 1, got %d", chunkPairs)
	}
	w, err := buildWorkList(g, pl)
	if err != nil {
		return nil, err
	}
	tr := &Trace{ChunkPairs: chunkPairs, TotalOps: w.totalOps()}
	ch := core.NewChain(g.NumEdges())
	var xi, boundary int64
	p := 0
	for p < w.numPairs() {
		boundary += chunkPairs
		start := p
		before := ch.Changes()
		for p < w.numPairs() {
			cnt := w.opCount(p)
			if p > start && xi+cnt >= boundary {
				break
			}
			ops, err := w.opsOf(p)
			if err != nil {
				return nil, err
			}
			for _, op := range ops {
				ch.Merge(op[0], op[1])
			}
			xi += cnt
			p++
			if xi >= boundary {
				break
			}
		}
		if xi > boundary {
			boundary = xi // an oversized atomic pair overflowed the chunk
		}
		tr.Clusters = append(tr.Clusters, ch.NumClusters())
		tr.Changes = append(tr.Changes, ch.Changes()-before)
		tr.Ops = append(tr.Ops, xi)
	}
	return tr, nil
}
