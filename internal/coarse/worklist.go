// Package coarse implements Section V of the paper: coarse-grained
// hierarchical link clustering. The sorted pair list is processed in chunks,
// one dendrogram level per chunk, under the soundness constraint that the
// cluster count shrinks by at most a factor γ between consecutive levels,
// stopping once fewer than φ clusters remain. A mode-transition machine
// (head / tail / rollback, Fig. 2(3)) drives chunk-size estimation:
// exponential growth in the head, slope extrapolation toward the target
// merge rate γ̃ = (1+γ)/2 in the tail and after rollbacks, and reuse of
// saved rollback states to avoid recomputation.
//
// The chunk structure also provides the synchronization points for the
// multi-threaded sweeping phase of Section VI-B: within a chunk, each worker
// merges a partition of the incident edge pairs on its own replica of array
// C, and the replicas are combined pairwise with core.MergeChains.
package coarse

import (
	"context"
	"fmt"

	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/par"
)

// workList adapts the sorted list L for chunked processing. Edge lookups
// are resolved lazily, pair by pair: the whole point of coarse-grained
// clustering is that the tail of the list is never processed, so its
// incident edge pairs must never be touched (an eager K2-sized
// precomputation would dominate the runtime the early stop saves).
type workList struct {
	g     *graph.Graph
	pairs []core.Pair
	total int64
	buf   [][2]int32 // scratch reused across opsOf calls
}

// buildWorkList wraps the pair list, sorting it if needed.
func buildWorkList(g *graph.Graph, pl *core.PairList) (*workList, error) {
	return buildWorkListCtx(context.Background(), g, pl, 0)
}

// buildWorkListCtx is buildWorkList with a cancellable sort; workers <= 0
// selects the default sort parallelism.
func buildWorkListCtx(ctx context.Context, g *graph.Graph, pl *core.PairList, workers int) (*workList, error) {
	if workers <= 0 {
		workers = par.DefaultCap()
	}
	if err := pl.SortWorkersCtx(ctx, workers); err != nil {
		return nil, err
	}
	return &workList{g: g, pairs: pl.Pairs, total: pl.NumIncidentPairs()}, nil
}

// numPairs returns the number of vertex pairs (entries of L).
func (w *workList) numPairs() int { return len(w.pairs) }

// totalOps returns the total number of incident edge pairs (K2).
func (w *workList) totalOps() int64 { return w.total }

// sim returns the similarity of vertex pair p.
func (w *workList) sim(p int) float64 { return w.pairs[p].Sim }

// opsOf resolves the merge operations of vertex pair p: for each common
// neighbor k of (U, V), the edge pair ((U,k), (V,k)). The returned slice is
// valid until the next opsOf call. An error indicates the pair list was
// built from a different graph.
func (w *workList) opsOf(p int) ([][2]int32, error) {
	pr := &w.pairs[p]
	w.buf = w.buf[:0]
	for _, k := range pr.Common {
		e1, ok1 := w.g.EdgeBetween(int(pr.U), int(k))
		e2, ok2 := w.g.EdgeBetween(int(pr.V), int(k))
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("coarse: pair (%d,%d) common neighbor %d has no incident edges in graph", pr.U, pr.V, k)
		}
		w.buf = append(w.buf, [2]int32{e1, e2})
	}
	return w.buf, nil
}

// opCount returns |l| for vertex pair p — the number of incident edge pairs
// it contributes.
func (w *workList) opCount(p int) int64 {
	return int64(len(w.pairs[p].Common))
}
