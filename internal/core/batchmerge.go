package core

import "linkclust/internal/par"

// MergeOpsMinReplicated is the op-count threshold below which
// MergeOpsReplicated never attempts replica processing: each worker pays an
// O(|E|) clone of array C before doing any work, so a batch must carry
// enough merge operations to amortize the fan-out. Batches under the
// threshold (and degenerate worker counts) run the plain serial MERGE loop
// instead.
const MergeOpsMinReplicated = 64

// MergeOpsReplicated processes a batch of merge operations with the
// multi-threaded scheme of Section VI-B: each worker merges a round-robin
// partition of ops on its own replica of array C, then the replicas are
// combined pairwise (and hierarchically) with the corrected MergeChains
// scheme until at most three remain, which are folded by a single worker.
// The combined array replaces ch's contents and all replica rewrites are
// added to ch's change counter.
//
// This is the shared batch engine of both sweeps: the coarse-grained sweep
// feeds it whole chunks, and it is the reduction the fine-grained
// SweepParallel falls back on conceptually — though that path keeps a single
// shared chain instead (see sweep_parallel.go for why replicas cannot
// reproduce the serial merge stream bitwise).
//
// The worker count is clamped to len(ops) — tiny batches would otherwise
// clone one full replica per configured worker even when most replicas
// receive no operations at all, paying workers × O(|E|) for near-empty
// partitions. It returns the number of replica clones and hierarchical folds
// performed; both are zero when the serial fallback ran.
func MergeOpsReplicated(ch *Chain, ops [][2]int32, workers int) (clones, folds int64) {
	if workers > len(ops) {
		workers = len(ops)
	}
	if workers < 2 || len(ops) < MergeOpsMinReplicated {
		for _, op := range ops {
			ch.Merge(op[0], op[1])
		}
		return 0, 0
	}

	// Both fan-outs run through par.Run so a panic inside Merge or
	// MergeChains is isolated and re-raised typed instead of crashing.
	replicas := make([]*Chain, workers)
	par.Run(workers, func(t int, _ func() bool) {
		r := ch.Clone()
		for i := t; i < len(ops); i += workers {
			r.Merge(ops[i][0], ops[i][1])
		}
		replicas[t] = r
	})

	for len(replicas) > 3 {
		half := len(replicas) / 2
		par.Run(half, func(i int, _ func() bool) {
			MergeChains(replicas[2*i], replicas[2*i+1])
			replicas[2*i].AddChanges(replicas[2*i+1].Changes())
		})
		folds += int64(half)
		next := make([]*Chain, 0, half+1)
		for i := 0; i < half; i++ {
			next = append(next, replicas[2*i])
		}
		if len(replicas)%2 == 1 {
			next = append(next, replicas[len(replicas)-1])
		}
		replicas = next
	}
	combined := replicas[0]
	for _, other := range replicas[1:] {
		MergeChains(combined, other)
		combined.AddChanges(other.Changes())
		folds++
	}
	ch.Restore(combined.Snapshot())
	ch.AddChanges(combined.Changes())
	return int64(workers), folds
}
