package core

// Chain is the paper's array C over edge indices (Algorithm 2, Lines 10-13):
// C[i] points from edge i toward the representative of its cluster, chains
// terminate at a self-loop, and a merge rewrites every visited entry to the
// minimum index of the union. Theorem 1: min F(i) — equivalently the chain's
// terminal self-loop, since every write points at a cluster minimum — is the
// cluster id of edge i.
//
// Chain is not safe for concurrent use; the parallel sweeping phase gives
// each worker its own replica and combines them with MergeChains.
type Chain struct {
	c       []int32
	changes int64
	scratch []int32
}

// NewChain returns a chain over n edges, each initially its own cluster.
func NewChain(n int) *Chain {
	c := make([]int32, n)
	for i := range c {
		c[i] = int32(i)
	}
	return &Chain{c: c}
}

// Len returns the number of edges.
func (ch *Chain) Len() int { return len(ch.c) }

// Changes returns the cumulative number of entry rewrites that altered a
// value — the quantity plotted in Fig. 2(1).
func (ch *Chain) Changes() int64 { return ch.changes }

// ResetChanges zeroes the change counter (used for per-level accounting).
func (ch *Chain) ResetChanges() { ch.changes = 0 }

// AddChanges adds externally-performed rewrites to the change counter; the
// parallel sweeping phase accounts replica work through it.
func (ch *Chain) AddChanges(n int64) { ch.changes += n }

// Find returns the cluster id of edge i: the terminal element of its chain,
// which by Theorem 1 equals min F(i). Find does not modify the chain.
func (ch *Chain) Find(i int32) int32 {
	for ch.c[i] != i {
		i = ch.c[i]
	}
	return i
}

// FindCompressAtomic is the two-pass find_compress of the atomic union-find
// literature (gbbs-style): pass one walks the chain to its terminal through
// atomic loads, pass two CAS-rewrites every visited entry to point at it. It
// returns the terminal and the number of rewrites this call won; the change
// counter is NOT touched — callers fold their per-worker rewrite sums into
// AddChanges after their barrier, keeping the counter write race-free.
//
// It is safe to call concurrently from many goroutines ON A QUIESCENT chain
// (no Merge running): compression rewrites entries only to their fixed
// terminals, so concurrent walks always read valid next hops, concurrent
// CASes of one entry write the same value, and each entry's single
// transition is credited to exactly one caller. The parallel sweep engine
// uses the same primitive between its merge barriers (see casRound).
func (ch *Chain) FindCompressAtomic(i int32) (root int32, rewrites int64) {
	root = findAtomic(ch.c, i)
	rewrites = compressPathAtomic(ch.c, i, root)
	return root, rewrites
}

// Follow appends F(i) — every edge index on the chain from i to its
// self-loop, inclusive — to buf and returns the extended slice.
func (ch *Chain) Follow(i int32, buf []int32) []int32 {
	for {
		buf = append(buf, i)
		if ch.c[i] == i {
			return buf
		}
		i = ch.c[i]
	}
}

// Merge implements the MERGE procedure (Algorithm 2, Lines 23-33) on edge
// indices i1 and i2: every element of F(i1) ∪ F(i2) is rewritten to the
// minimum of the union. It returns the two prior cluster ids and whether
// they differed (in which case the caller advances the dendrogram level).
func (ch *Chain) Merge(i1, i2 int32) (c1, c2 int32, merged bool) {
	f := ch.Follow(i1, ch.scratch[:0])
	n1 := len(f)
	f = ch.Follow(i2, f)
	ch.scratch = f[:0]

	// Chains descend, so each terminal element is its chain's minimum.
	c1, c2 = f[n1-1], f[len(f)-1]
	cmin := c1
	if c2 < cmin {
		cmin = c2
	}
	for _, j := range f {
		if ch.c[j] != cmin {
			ch.c[j] = cmin
			ch.changes++
		}
	}
	return c1, c2, c1 != c2
}

// NumClusters returns the current number of clusters: the count of
// self-loops in C.
func (ch *Chain) NumClusters() int {
	n := 0
	for i, v := range ch.c {
		if int32(i) == v {
			n++
		}
	}
	return n
}

// Assignments returns the cluster id of every edge. The result is freshly
// allocated.
func (ch *Chain) Assignments() []int32 {
	out := make([]int32, len(ch.c))
	for i := range ch.c {
		out[i] = ch.Find(int32(i))
	}
	return out
}

// Snapshot returns a copy of the raw array C, usable with Restore. The
// coarse-grained algorithm snapshots epoch states for rollback.
func (ch *Chain) Snapshot() []int32 {
	return append([]int32(nil), ch.c...)
}

// Restore overwrites the chain with a snapshot taken from a chain of the
// same length. The change counter is not rewound: rollback work is real
// work.
func (ch *Chain) Restore(snap []int32) {
	if len(snap) != len(ch.c) {
		panic("core: Restore with snapshot of different length")
	}
	copy(ch.c, snap)
}

// Clone returns an independent copy of the chain with a zeroed change
// counter. The parallel sweeping phase clones one replica per worker.
func (ch *Chain) Clone() *Chain {
	return &Chain{c: append([]int32(nil), ch.c...)}
}

// MergeChains folds src into dst using the corrected combination scheme of
// Section VI-B: for every edge i, with f = min(F_dst(i), F_src(i)), every
// element of F_dst(i) ∪ F_src(i) ∪ F_dst(min F_src(i)) in dst is rewritten
// to f. The third term is the fix for the flaw the paper demonstrates (two
// clusters already joined in src must also join the dst cluster of src's
// minimum). src is left untouched.
func MergeChains(dst, src *Chain) {
	if dst.Len() != src.Len() {
		panic("core: MergeChains on chains of different lengths")
	}
	var buf []int32
	for i := 0; i < dst.Len(); i++ {
		buf = dst.Follow(int32(i), buf[:0])
		nd := len(buf)
		buf = src.Follow(int32(i), buf)
		fd, fs := buf[nd-1], buf[len(buf)-1]
		// F_dst(min F_src(i)): chains in dst from src's terminal.
		buf = dst.Follow(fs, buf)
		f := fd
		if fs < f {
			f = fs
		}
		if b := buf[len(buf)-1]; b < f {
			f = b
		}
		for _, j := range buf {
			if dst.c[j] != f {
				dst.c[j] = f
				dst.changes++
			}
		}
	}
}

// mergeChainsNaive is the flawed scheme the paper warns against (Section
// VI-B): it omits the F_dst(min F_src(i)) term. Kept for the regression test
// that reproduces the paper's counterexample.
func mergeChainsNaive(dst, src *Chain) {
	var buf []int32
	for i := 0; i < dst.Len(); i++ {
		buf = dst.Follow(int32(i), buf[:0])
		nd := len(buf)
		buf = src.Follow(int32(i), buf)
		fd, fs := buf[nd-1], buf[len(buf)-1]
		f := fd
		if fs < f {
			f = fs
		}
		for _, j := range buf {
			if dst.c[j] != f {
				dst.c[j] = f
				dst.changes++
			}
		}
	}
}
