package core

import (
	"testing"
	"testing/quick"

	"linkclust/internal/rng"
)

// unionFind is an independent reference implementation used to validate the
// chain structure.
type unionFind struct {
	parent []int32
}

func newUnionFind(n int) *unionFind {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(i int32) int32 {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return i
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	// Union by min so roots match the chain's cluster ids.
	if ra < rb {
		u.parent[rb] = ra
	} else {
		u.parent[ra] = rb
	}
}

func TestChainInitial(t *testing.T) {
	ch := NewChain(5)
	if ch.Len() != 5 || ch.NumClusters() != 5 {
		t.Fatalf("fresh chain: len=%d clusters=%d", ch.Len(), ch.NumClusters())
	}
	for i := int32(0); i < 5; i++ {
		if ch.Find(i) != i {
			t.Fatalf("Find(%d) = %d on fresh chain", i, ch.Find(i))
		}
	}
	if ch.Changes() != 0 {
		t.Fatalf("fresh chain has %d changes", ch.Changes())
	}
}

func TestChainMergeBasic(t *testing.T) {
	ch := NewChain(4)
	c1, c2, merged := ch.Merge(2, 3)
	if !merged || c1 != 2 || c2 != 3 {
		t.Fatalf("Merge(2,3) = %d,%d,%v", c1, c2, merged)
	}
	if ch.Find(3) != 2 || ch.Find(2) != 2 {
		t.Fatalf("cluster of 3 = %d, of 2 = %d, want 2", ch.Find(3), ch.Find(2))
	}
	if ch.NumClusters() != 3 {
		t.Fatalf("clusters = %d, want 3", ch.NumClusters())
	}
	// Re-merging the same pair is a no-op level-wise.
	_, _, merged = ch.Merge(2, 3)
	if merged {
		t.Fatal("re-merge reported a new merge")
	}
}

func TestChainMergeTransitive(t *testing.T) {
	ch := NewChain(6)
	ch.Merge(4, 5)
	ch.Merge(2, 4) // {2,4,5}
	ch.Merge(0, 5) // {0,2,4,5}
	for _, i := range []int32{0, 2, 4, 5} {
		if ch.Find(i) != 0 {
			t.Fatalf("Find(%d) = %d, want 0", i, ch.Find(i))
		}
	}
	if ch.Find(1) != 1 || ch.Find(3) != 3 {
		t.Fatal("untouched edges moved")
	}
	if ch.NumClusters() != 3 {
		t.Fatalf("clusters = %d, want 3", ch.NumClusters())
	}
}

func TestChainFollowContainsSelfAndRoot(t *testing.T) {
	ch := NewChain(8)
	ch.Merge(6, 7)
	ch.Merge(5, 7)
	f := ch.Follow(7, nil)
	if f[0] != 7 {
		t.Fatalf("Follow(7) must start at 7: %v", f)
	}
	if f[len(f)-1] != ch.Find(7) {
		t.Fatalf("Follow terminal %d != Find %d", f[len(f)-1], ch.Find(7))
	}
}

// TestChainTheorem1 checks the paper's Theorem 1 on random merge sequences:
// min F(i) (= the chain terminal) equals the true cluster id (the minimum
// member of i's connected component).
func TestChainTheorem1(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 2
		merges := int(mRaw % 60)
		src := rng.New(seed)
		ch := NewChain(n)
		uf := newUnionFind(n)
		for k := 0; k < merges; k++ {
			a, b := int32(src.Intn(n)), int32(src.Intn(n))
			if a == b {
				continue
			}
			ch.Merge(a, b)
			uf.union(a, b)
		}
		for i := int32(0); i < int32(n); i++ {
			if ch.Find(i) != uf.find(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestChainMonotone checks the structural invariant behind Theorem 1: after
// any merge sequence, C[i] <= i everywhere (chains descend).
func TestChainMonotone(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		n := 20
		src := rng.New(seed)
		ch := NewChain(n)
		for k := 0; k < int(mRaw); k++ {
			ch.Merge(int32(src.Intn(n)), int32(src.Intn(n)))
		}
		for i, v := range ch.Snapshot() {
			if v > int32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChainSnapshotRestore(t *testing.T) {
	ch := NewChain(6)
	ch.Merge(0, 1)
	snap := ch.Snapshot()
	ch.Merge(2, 3)
	ch.Merge(0, 5)
	ch.Restore(snap)
	if ch.NumClusters() != 5 {
		t.Fatalf("after restore clusters = %d, want 5", ch.NumClusters())
	}
	if ch.Find(3) != 3 || ch.Find(5) != 5 {
		t.Fatal("restore did not undo merges")
	}
	if ch.Find(1) != 0 {
		t.Fatal("restore lost the pre-snapshot merge")
	}
}

func TestChainRestoreLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Restore with wrong length did not panic")
		}
	}()
	NewChain(3).Restore(make([]int32, 4))
}

func TestChainChangesCounter(t *testing.T) {
	ch := NewChain(4)
	ch.Merge(0, 1) // writes C[1]=0: 1 change
	if ch.Changes() != 1 {
		t.Fatalf("changes = %d, want 1", ch.Changes())
	}
	ch.Merge(0, 1) // idempotent: no change
	if ch.Changes() != 1 {
		t.Fatalf("idempotent merge changed counter: %d", ch.Changes())
	}
	ch.ResetChanges()
	if ch.Changes() != 0 {
		t.Fatal("ResetChanges did not zero")
	}
}

func TestChainAssignments(t *testing.T) {
	ch := NewChain(5)
	ch.Merge(1, 3)
	ch.Merge(2, 4)
	got := ch.Assignments()
	want := []int32{0, 1, 2, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Assignments = %v, want %v", got, want)
		}
	}
}

// TestMergeChainsPaperCounterexample reproduces Section VI-B's example:
// C0 = [1→1, 2→2, 3→2, 4→1] and C1 = [1→1, 2→2, 3→3, 4→3] (1-based). The
// naive scheme leaves two clusters; the corrected scheme yields one.
func TestMergeChainsPaperCounterexample(t *testing.T) {
	mk := func(vals []int32) *Chain {
		ch := NewChain(len(vals))
		copy(ch.c, vals)
		return ch
	}
	// 0-based translation.
	c0 := []int32{0, 1, 1, 0}
	c1 := []int32{0, 1, 2, 2}

	naive := mk(c0)
	mergeChainsNaive(naive, mk(c1))
	if n := naive.NumClusters(); n != 2 {
		t.Fatalf("naive scheme clusters = %d, expected the paper's flawed 2", n)
	}

	fixed := mk(c0)
	MergeChains(fixed, mk(c1))
	if n := fixed.NumClusters(); n != 1 {
		t.Fatalf("corrected scheme clusters = %d, want 1", n)
	}
	for i := int32(0); i < 4; i++ {
		if fixed.Find(i) != 0 {
			t.Fatalf("edge %d in cluster %d, want 0", i, fixed.Find(i))
		}
	}
}

// TestMergeChainsEqualsSerial: splitting a merge workload across two chain
// replicas and combining with MergeChains must give exactly the serial
// assignment array.
func TestMergeChainsEqualsSerial(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%24) + 2
		merges := int(mRaw % 80)
		src := rng.New(seed)
		type mv struct{ a, b int32 }
		ops := make([]mv, 0, merges)
		for k := 0; k < merges; k++ {
			a, b := int32(src.Intn(n)), int32(src.Intn(n))
			if a != b {
				ops = append(ops, mv{a, b})
			}
		}
		serial := NewChain(n)
		for _, op := range ops {
			serial.Merge(op.a, op.b)
		}
		r0, r1 := NewChain(n), NewChain(n)
		for i, op := range ops {
			if i%2 == 0 {
				r0.Merge(op.a, op.b)
			} else {
				r1.Merge(op.a, op.b)
			}
		}
		MergeChains(r0, r1)
		want := serial.Assignments()
		got := r0.Assignments()
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeChainsHierarchical simulates the T-replica pairwise reduction of
// Section VI-B across several replica counts.
func TestMergeChainsHierarchical(t *testing.T) {
	for _, replicas := range []int{2, 3, 4, 6, 7} {
		src := rng.New(uint64(replicas) * 101)
		n := 40
		type mv struct{ a, b int32 }
		var ops []mv
		for k := 0; k < 120; k++ {
			a, b := int32(src.Intn(n)), int32(src.Intn(n))
			if a != b {
				ops = append(ops, mv{a, b})
			}
		}
		serial := NewChain(n)
		for _, op := range ops {
			serial.Merge(op.a, op.b)
		}
		chains := make([]*Chain, replicas)
		for i := range chains {
			chains[i] = NewChain(n)
		}
		for i, op := range ops {
			chains[i%replicas].Merge(op.a, op.b)
		}
		// Pairwise reduction as in the paper: pair active arrays until
		// at most three remain, then fold serially.
		for len(chains) > 3 {
			half := len(chains) / 2
			next := make([]*Chain, 0, half+1)
			for i := 0; i < half; i++ {
				MergeChains(chains[2*i], chains[2*i+1])
				next = append(next, chains[2*i])
			}
			if len(chains)%2 == 1 {
				next = append(next, chains[len(chains)-1])
			}
			chains = next
		}
		for _, other := range chains[1:] {
			MergeChains(chains[0], other)
		}
		want, got := serial.Assignments(), chains[0].Assignments()
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("replicas=%d: edge %d cluster %d, want %d", replicas, i, got[i], want[i])
			}
		}
	}
}

func TestMergeChainsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MergeChains length mismatch did not panic")
		}
	}()
	MergeChains(NewChain(3), NewChain(4))
}

func TestChainClone(t *testing.T) {
	ch := NewChain(5)
	ch.Merge(0, 4)
	cl := ch.Clone()
	cl.Merge(1, 2)
	if ch.Find(2) != 2 {
		t.Fatal("clone mutation leaked into original")
	}
	if cl.Find(4) != 0 {
		t.Fatal("clone lost original state")
	}
	if cl.Changes() != 1 {
		t.Fatalf("clone changes = %d, want fresh counter", cl.Changes())
	}
}
