package core

import (
	"fmt"

	"linkclust/internal/graph"
	"linkclust/internal/par"
)

// CompactPairList is a struct-of-arrays representation of the pair list for
// memory-constrained runs: per pair it stores 16 bytes plus 4 bytes per
// common neighbor in one shared arena, versus the 40-byte Pair struct with
// a per-pair slice header. On the harness's large workloads (tens of
// millions of incident pairs, Fig. 4(3)'s axis) this roughly halves the
// dominant allocation of the pipeline.
type CompactPairList struct {
	u, v    []int32
	sim     []float64
	offsets []int64 // len = NumPairs()+1; pair i owns common[offsets[i]:offsets[i+1]]
	common  []int32
	sorted  bool
}

// Compact converts a PairList. The input is not retained.
func Compact(pl *PairList) *CompactPairList {
	n := len(pl.Pairs)
	c := &CompactPairList{
		u:       make([]int32, n),
		v:       make([]int32, n),
		sim:     make([]float64, n),
		offsets: make([]int64, n+1),
		common:  make([]int32, 0, pl.NumIncidentPairs()),
		sorted:  pl.sorted,
	}
	for i := range pl.Pairs {
		p := &pl.Pairs[i]
		c.u[i], c.v[i], c.sim[i] = p.U, p.V, p.Sim
		c.common = append(c.common, p.Common...)
		c.offsets[i+1] = int64(len(c.common))
	}
	return c
}

// NumPairs returns the number of vertex pairs (K1).
func (c *CompactPairList) NumPairs() int { return len(c.u) }

// NumIncidentPairs returns the number of incident edge pairs (K2).
func (c *CompactPairList) NumIncidentPairs() int64 { return int64(len(c.common)) }

// PairAt returns a view of pair i; the Common slice aliases the arena.
func (c *CompactPairList) PairAt(i int) Pair {
	return Pair{
		U: c.u[i], V: c.v[i], Sim: c.sim[i],
		Common: c.common[c.offsets[i]:c.offsets[i+1]:c.offsets[i+1]],
	}
}

// MemoryBytes returns the analytic size of the backing arrays.
func (c *CompactPairList) MemoryBytes() int64 {
	return int64(len(c.u))*4 + int64(len(c.v))*4 + int64(len(c.sim))*8 +
		int64(len(c.offsets))*8 + int64(len(c.common))*4
}

// Sorted reports whether Sort has run.
func (c *CompactPairList) Sorted() bool { return c.sorted }

// Invalidate clears the cached sort state, mirroring PairList.Invalidate.
// Call it after mutating the list in place (rewriting similarities, touching
// the arena through a PairAt view) so the next Sort — including the implicit
// one in SweepCompact — actually re-sorts instead of trusting the stale
// flag.
func (c *CompactPairList) Invalidate() { c.sorted = false }

// Sort orders pairs by non-increasing similarity with the same (U, V)
// tie-break as PairList.Sort, rebuilding the arena in the new order. Like
// PairList.Sort, the permutation sort runs chunked across workers with a
// parallel merge; the result is identical for any worker count.
func (c *CompactPairList) Sort() {
	if c.sorted {
		return
	}
	n := c.NumPairs()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	par.SortFunc(perm, par.DefaultCap(), func(i, j int) int {
		if c.sim[i] != c.sim[j] {
			if c.sim[i] > c.sim[j] {
				return -1
			}
			return 1
		}
		if c.u[i] != c.u[j] {
			return int(c.u[i]) - int(c.u[j])
		}
		return int(c.v[i]) - int(c.v[j])
	})
	u := make([]int32, n)
	v := make([]int32, n)
	sim := make([]float64, n)
	offsets := make([]int64, n+1)
	common := make([]int32, 0, len(c.common))
	for x, i := range perm {
		u[x], v[x], sim[x] = c.u[i], c.v[i], c.sim[i]
		common = append(common, c.common[c.offsets[i]:c.offsets[i+1]]...)
		offsets[x+1] = int64(len(common))
	}
	c.u, c.v, c.sim, c.offsets, c.common = u, v, sim, offsets, common
	c.sorted = true
}

// SweepCompact runs Algorithm 2 over a compact pair list, producing exactly
// the same result as Sweep over the equivalent PairList.
func SweepCompact(g *graph.Graph, c *CompactPairList) (*Result, error) {
	c.Sort()
	res := &Result{Chain: NewChain(g.NumEdges())}
	for i := 0; i < c.NumPairs(); i++ {
		u, v := int(c.u[i]), int(c.v[i])
		for _, k := range c.common[c.offsets[i]:c.offsets[i+1]] {
			e1, ok1 := g.EdgeBetween(u, int(k))
			e2, ok2 := g.EdgeBetween(v, int(k))
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("core: pair (%d,%d) common neighbor %d has no incident edges in graph", u, v, k)
			}
			res.PairsProcessed++
			if c1, c2, merged := res.Chain.Merge(e1, e2); merged {
				res.Levels++
				into := c1
				if c2 < into {
					into = c2
				}
				res.Merges = append(res.Merges, Merge{
					Level: res.Levels, A: c1, B: c2, Into: into, Sim: c.sim[i],
				})
			}
		}
	}
	return res, nil
}
