package core

import (
	"testing"

	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

func TestCompactPreservesContent(t *testing.T) {
	g := graph.ErdosRenyi(35, 0.25, rng.New(1))
	pl := Similarity(g)
	c := Compact(pl)
	if c.NumPairs() != len(pl.Pairs) {
		t.Fatalf("pairs %d, want %d", c.NumPairs(), len(pl.Pairs))
	}
	if c.NumIncidentPairs() != pl.NumIncidentPairs() {
		t.Fatalf("ops %d, want %d", c.NumIncidentPairs(), pl.NumIncidentPairs())
	}
	for i := range pl.Pairs {
		a, b := pl.Pairs[i], c.PairAt(i)
		if a.U != b.U || a.V != b.V || a.Sim != b.Sim || len(a.Common) != len(b.Common) {
			t.Fatalf("pair %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Common {
			if a.Common[j] != b.Common[j] {
				t.Fatalf("pair %d common %d differs", i, j)
			}
		}
	}
}

func TestCompactSortMatchesPairListSort(t *testing.T) {
	g := graph.ErdosRenyi(30, 0.3, rng.New(2))
	pl := Similarity(g)
	c := Compact(pl)
	pl.Sort()
	c.Sort()
	if !c.Sorted() {
		t.Fatal("Sorted() false after Sort")
	}
	for i := range pl.Pairs {
		a, b := pl.Pairs[i], c.PairAt(i)
		if a.U != b.U || a.V != b.V || a.Sim != b.Sim {
			t.Fatalf("sorted pair %d differs: (%d,%d,%v) vs (%d,%d,%v)",
				i, a.U, a.V, a.Sim, b.U, b.V, b.Sim)
		}
		for j := range a.Common {
			if a.Common[j] != b.Common[j] {
				t.Fatalf("sorted pair %d commons differ", i)
			}
		}
	}
	// Idempotent.
	c.Sort()
}

func TestSweepCompactEqualsSweep(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.ErdosRenyi(30, 0.25, rng.New(seed))
		pl := Similarity(g)
		c := Compact(pl)
		a, err := Sweep(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SweepCompact(g, c)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Merges) != len(b.Merges) || a.Levels != b.Levels || a.PairsProcessed != b.PairsProcessed {
			t.Fatalf("seed %d: results differ (%d/%d merges)", seed, len(a.Merges), len(b.Merges))
		}
		for i := range a.Merges {
			if a.Merges[i] != b.Merges[i] {
				t.Fatalf("seed %d: merge %d differs", seed, i)
			}
		}
	}
}

func TestSweepCompactForeignGraphFails(t *testing.T) {
	c := Compact(Similarity(graph.Complete(5)))
	if _, err := SweepCompact(graph.DisjointEdges(5), c); err == nil {
		t.Fatal("foreign compact list accepted")
	}
}

func TestCompactMemorySmaller(t *testing.T) {
	g := graph.ErdosRenyi(50, 0.3, rng.New(3))
	pl := Similarity(g)
	c := Compact(pl)
	// Naive layout: 40-byte struct (with slice header) + 4 bytes/common.
	naive := int64(len(pl.Pairs))*40 + pl.NumIncidentPairs()*4
	if c.MemoryBytes() >= naive {
		t.Fatalf("compact %d bytes not smaller than naive %d", c.MemoryBytes(), naive)
	}
}

func TestCompactEmpty(t *testing.T) {
	c := Compact(&PairList{})
	if c.NumPairs() != 0 || c.NumIncidentPairs() != 0 {
		t.Fatal("empty compact not empty")
	}
	c.Sort()
	res, err := SweepCompact(graph.NewBuilder(3).Build(nil), c)
	if err != nil || len(res.Merges) != 0 {
		t.Fatalf("empty sweep: %v", err)
	}
}

// TestCompactInvalidate is the stale-flag regression test for the compact
// layout, mirroring TestPairListInvalidate: after Sort, an in-place rewrite
// of a similarity leaves the list out of order, a second Sort is a no-op
// behind the cached flag, and only Invalidate makes it re-sort. SweepCompact
// relies on the implicit Sort, so a stale flag there would sweep pairs in
// the wrong order and corrupt the dendrogram.
func TestCompactInvalidate(t *testing.T) {
	g := graph.ErdosRenyi(40, 0.2, rng.New(2))
	c := Compact(Similarity(g))
	c.Sort()
	if c.NumPairs() < 3 {
		t.Skip("graph too small to reorder")
	}
	// Rewrite the head's similarity below the tail's: the list is now
	// unsorted, but the cached flag still claims otherwise.
	c.sim[0] = c.sim[c.NumPairs()-1] / 2
	c.Sort()
	if c.sim[0] >= c.sim[1] {
		t.Fatal("test setup failed to break the order")
	}
	if !c.Sorted() {
		t.Fatal("Sorted() false before Invalidate")
	}
	c.Invalidate()
	if c.Sorted() {
		t.Fatal("Sorted() still true after Invalidate")
	}
	c.Sort()
	for i := 1; i < c.NumPairs(); i++ {
		if c.sim[i-1] < c.sim[i] {
			t.Fatalf("pairs %d,%d out of order after Invalidate+Sort", i-1, i)
		}
	}
}

// TestCompactInheritsSortedFlag pins the flag handoff at conversion: Compact
// carries the input's sort state over, in both directions.
func TestCompactInheritsSortedFlag(t *testing.T) {
	g := graph.ErdosRenyi(30, 0.2, rng.New(3))
	if c := Compact(Similarity(g)); c.Sorted() {
		t.Fatal("compact of an unsorted list claims sorted")
	}
	pl := Similarity(g)
	pl.Sort()
	if c := Compact(pl); !c.Sorted() {
		t.Fatal("compact of a sorted list lost the flag")
	}
}
