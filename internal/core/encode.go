package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary persistence for the two artifacts worth caching across process
// invocations: the pair list (the initialization phase's output, often the
// most expensive part of the pipeline) and merge streams (dendrograms).
// The format is little-endian with a magic string and version so files are
// self-identifying; readers validate counts and reject truncated input.

const (
	pairListMagic = "LCPL"
	mergesMagic   = "LCMG"
	formatVersion = 1
)

// maxDecodeCount bounds per-collection element counts during decoding so a
// corrupted header cannot trigger an enormous allocation.
const maxDecodeCount = 1 << 31

// WritePairList serializes pl (including sort state and common-neighbor
// lists) to w.
func WritePairList(w io.Writer, pl *PairList) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(pairListMagic); err != nil {
		return err
	}
	sorted := uint32(0)
	if pl.sorted {
		sorted = 1
	}
	for _, v := range []uint32{formatVersion, sorted, uint32(len(pl.Pairs))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for i := range pl.Pairs {
		p := &pl.Pairs[i]
		if err := binary.Write(bw, binary.LittleEndian, p.U); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.V); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(p.Sim)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Common))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Common); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPairList deserializes a pair list written by WritePairList.
func ReadPairList(r io.Reader) (*PairList, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, pairListMagic); err != nil {
		return nil, err
	}
	var version, sorted, count uint32
	for _, v := range []*uint32{&version, &sorted, &count} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: pair list header: %w", err)
		}
	}
	if version != formatVersion {
		return nil, fmt.Errorf("core: unsupported pair list version %d", version)
	}
	if count > maxDecodeCount {
		return nil, fmt.Errorf("core: implausible pair count %d", count)
	}
	pl := &PairList{Pairs: make([]Pair, count), sorted: sorted == 1}
	for i := range pl.Pairs {
		p := &pl.Pairs[i]
		var bits uint64
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &p.U); err != nil {
			return nil, fmt.Errorf("core: pair %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &p.V); err != nil {
			return nil, fmt.Errorf("core: pair %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("core: pair %d: %w", i, err)
		}
		p.Sim = math.Float64frombits(bits)
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("core: pair %d: %w", i, err)
		}
		if n > maxDecodeCount {
			return nil, fmt.Errorf("core: pair %d: implausible common count %d", i, n)
		}
		p.Common = make([]int32, n)
		if err := binary.Read(br, binary.LittleEndian, p.Common); err != nil {
			return nil, fmt.Errorf("core: pair %d commons: %w", i, err)
		}
	}
	return pl, nil
}

// WriteMerges serializes a merge stream over n edges to w.
func WriteMerges(w io.Writer, n int, merges []Merge) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(mergesMagic); err != nil {
		return err
	}
	for _, v := range []uint32{formatVersion, uint32(n), uint32(len(merges))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for i := range merges {
		m := &merges[i]
		for _, v := range []int32{m.Level, m.A, m.B, m.Into} {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(m.Sim)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMerges deserializes a merge stream written by WriteMerges, returning
// the edge count and the merges.
func ReadMerges(r io.Reader) (int, []Merge, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, mergesMagic); err != nil {
		return 0, nil, err
	}
	var version, n, count uint32
	for _, v := range []*uint32{&version, &n, &count} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return 0, nil, fmt.Errorf("core: merges header: %w", err)
		}
	}
	if version != formatVersion {
		return 0, nil, fmt.Errorf("core: unsupported merges version %d", version)
	}
	if count > maxDecodeCount || n > maxDecodeCount {
		return 0, nil, fmt.Errorf("core: implausible merges header (n=%d count=%d)", n, count)
	}
	merges := make([]Merge, count)
	for i := range merges {
		m := &merges[i]
		for _, v := range []*int32{&m.Level, &m.A, &m.B, &m.Into} {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return 0, nil, fmt.Errorf("core: merge %d: %w", i, err)
			}
		}
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return 0, nil, fmt.Errorf("core: merge %d: %w", i, err)
		}
		m.Sim = math.Float64frombits(bits)
		if m.A < 0 || m.B < 0 || m.Into < 0 || m.A >= int32(n) || m.B >= int32(n) || m.Into >= int32(n) {
			return 0, nil, fmt.Errorf("core: merge %d references edge outside [0,%d)", i, n)
		}
	}
	return int(n), merges, nil
}

// Compact per-pair records for the out-of-core spill path. Each record is
// the fixed 20-byte prefix U(4) V(4) SimBits(8) CommonLen(4), little-endian
// like everything above, followed by CommonLen int32 common-edge ids — the
// same fields WritePairList persists, minus the file envelope (the spill
// store adds its own checksummed header per bucket). Sim travels as raw
// float64 bits, so a decoded pair is bitwise identical to its source.

// pairRecordFixed is the byte length of a record's fixed prefix.
const pairRecordFixed = 20

// appendPairRecord appends p's spill record to dst and returns the extended
// slice.
func appendPairRecord(dst []byte, p *Pair) []byte {
	var fixed [pairRecordFixed]byte
	binary.LittleEndian.PutUint32(fixed[0:], uint32(p.U))
	binary.LittleEndian.PutUint32(fixed[4:], uint32(p.V))
	binary.LittleEndian.PutUint64(fixed[8:], math.Float64bits(p.Sim))
	binary.LittleEndian.PutUint32(fixed[16:], uint32(len(p.Common)))
	dst = append(dst, fixed[:]...)
	for _, c := range p.Common {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(c))
		dst = append(dst, b[:]...)
	}
	return dst
}

// decodePairRecords decodes exactly count records from payload, with every
// Common slice carved from one shared arena (mirroring the similarity
// kernel's layout, so a bucket's commons release together). The payload is
// hostile input — it crossed a disk — so every length is validated against
// the remaining bytes and maxDecodeCount before any allocation it sizes.
func decodePairRecords(payload []byte, count int) ([]Pair, error) {
	if count < 0 || count > maxDecodeCount {
		return nil, fmt.Errorf("core: implausible spill pair count %d", count)
	}
	fixed := count * pairRecordFixed
	if len(payload) < fixed {
		return nil, fmt.Errorf("core: spill payload truncated: %d bytes for %d pairs", len(payload), count)
	}
	rem := len(payload) - fixed
	if rem%4 != 0 {
		return nil, fmt.Errorf("core: spill payload has %d trailing bytes", rem%4)
	}
	commons := rem / 4
	if commons > maxDecodeCount {
		return nil, fmt.Errorf("core: implausible spill commons count %d", commons)
	}
	pairs := make([]Pair, count)
	arena := make([]int32, commons)
	off, coff := 0, 0
	for i := range pairs {
		if len(payload)-off < pairRecordFixed {
			return nil, fmt.Errorf("core: spill record %d truncated", i)
		}
		p := &pairs[i]
		p.U = int32(binary.LittleEndian.Uint32(payload[off:]))
		p.V = int32(binary.LittleEndian.Uint32(payload[off+4:]))
		p.Sim = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
		k := int(binary.LittleEndian.Uint32(payload[off+16:]))
		off += pairRecordFixed
		if k > commons-coff || k > (len(payload)-off)/4 {
			return nil, fmt.Errorf("core: spill record %d claims %d commons, %d bytes left", i, k, len(payload)-off)
		}
		dst := arena[coff : coff+k : coff+k]
		for j := 0; j < k; j++ {
			dst[j] = int32(binary.LittleEndian.Uint32(payload[off+4*j:]))
		}
		p.Common = dst
		off += 4 * k
		coff += k
	}
	if off != len(payload) {
		return nil, fmt.Errorf("core: spill payload has %d undecoded bytes", len(payload)-off)
	}
	return pairs, nil
}

func expectMagic(br *bufio.Reader, magic string) error {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(br, buf); err != nil {
		return fmt.Errorf("core: reading magic: %w", err)
	}
	if string(buf) != magic {
		return fmt.Errorf("core: bad magic %q, want %q", buf, magic)
	}
	return nil
}
