package core

import (
	"bytes"
	"strings"
	"testing"

	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

func TestPairListRoundTrip(t *testing.T) {
	g := graph.ErdosRenyi(40, 0.2, rng.New(1))
	pl := Similarity(g)
	pl.Sort()
	var buf bytes.Buffer
	if err := WritePairList(&buf, pl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPairList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Sorted() {
		t.Fatal("sorted flag lost")
	}
	if len(got.Pairs) != len(pl.Pairs) {
		t.Fatalf("%d pairs, want %d", len(got.Pairs), len(pl.Pairs))
	}
	for i := range pl.Pairs {
		a, b := &pl.Pairs[i], &got.Pairs[i]
		if a.U != b.U || a.V != b.V || a.Sim != b.Sim {
			t.Fatalf("pair %d differs: %+v vs %+v", i, a, b)
		}
		if len(a.Common) != len(b.Common) {
			t.Fatalf("pair %d commons differ", i)
		}
		for j := range a.Common {
			if a.Common[j] != b.Common[j] {
				t.Fatalf("pair %d common %d differs", i, j)
			}
		}
	}
}

func TestPairListRoundTripUnsorted(t *testing.T) {
	g := graph.PaperExample()
	pl := Similarity(g)
	var buf bytes.Buffer
	if err := WritePairList(&buf, pl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPairList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sorted() {
		t.Fatal("unsorted list decoded as sorted")
	}
	// The decoded list must drive an identical sweep.
	a, err := Sweep(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(g, got)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Merges) != len(b.Merges) {
		t.Fatalf("sweeps differ: %d vs %d merges", len(a.Merges), len(b.Merges))
	}
	for i := range a.Merges {
		if a.Merges[i] != b.Merges[i] {
			t.Fatalf("merge %d differs", i)
		}
	}
}

func TestMergesRoundTrip(t *testing.T) {
	g := graph.ErdosRenyi(30, 0.25, rng.New(2))
	res, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMerges(&buf, g.NumEdges(), res.Merges); err != nil {
		t.Fatal(err)
	}
	n, merges, err := ReadMerges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != g.NumEdges() {
		t.Fatalf("edge count %d, want %d", n, g.NumEdges())
	}
	if len(merges) != len(res.Merges) {
		t.Fatalf("%d merges, want %d", len(merges), len(res.Merges))
	}
	for i := range merges {
		if merges[i] != res.Merges[i] {
			t.Fatalf("merge %d differs: %+v vs %+v", i, merges[i], res.Merges[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"XXXX",
		"LCPL",                     // truncated header
		"LCMG",                     // truncated header
		"LCPL\xff\xff\xff\xff",     // bad version
		"LCMG\x01\x00\x00\x00\x05", // truncated counts
		strings.Repeat("LCPL", 3),  // magic then garbage
	}
	for _, in := range cases {
		if _, err := ReadPairList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadPairList accepted %q", in)
		}
		if _, _, err := ReadMerges(strings.NewReader(in)); err == nil {
			t.Errorf("ReadMerges accepted %q", in)
		}
	}
}

func TestDecodeRejectsTruncatedBody(t *testing.T) {
	g := graph.PaperExample()
	pl := Similarity(g)
	var buf bytes.Buffer
	if err := WritePairList(&buf, pl); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, 13} {
		if _, err := ReadPairList(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsOutOfRangeMergeIDs(t *testing.T) {
	var buf bytes.Buffer
	merges := []Merge{{Level: 1, A: 0, B: 9, Into: 0, Sim: 0.5}} // B out of range for n=3
	if err := WriteMerges(&buf, 3, merges); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadMerges(&buf); err == nil {
		t.Fatal("out-of-range merge accepted")
	}
}

func TestEmptyCollectionsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePairList(&buf, &PairList{}); err != nil {
		t.Fatal(err)
	}
	pl, err := ReadPairList(&buf)
	if err != nil || len(pl.Pairs) != 0 {
		t.Fatalf("empty pair list: %v, %d pairs", err, len(pl.Pairs))
	}
	buf.Reset()
	if err := WriteMerges(&buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	n, merges, err := ReadMerges(&buf)
	if err != nil || n != 0 || len(merges) != 0 {
		t.Fatalf("empty merges: %v n=%d len=%d", err, n, len(merges))
	}
}
