package core

import "linkclust/internal/par"

// Sweep engine identifiers, as accepted by the facade's
// ClusterOptions.Engine, the linkclust -engine flag, and the daemon's
// options payload. Every engine produces a bitwise-identical merge stream —
// the choice trades scheduling overhead against parallel speedup only.
const (
	// SweepEngineAuto selects by measured op-count thresholds; see
	// ChooseSweepEngine.
	SweepEngineAuto = "auto"
	// SweepEngineSerial is the paper's serial Algorithm 2.
	SweepEngineSerial = "serial"
	// SweepEngineParallel is the windowed reservation engine
	// (SweepParallel).
	SweepEngineParallel = "parallel"
	// SweepEnginePipelined overlaps pair-list sorting with merging
	// (SweepPipelined).
	SweepEnginePipelined = "pipelined"
	// SweepEngineSpill is the out-of-core sweep (SweepSpilled): similarity
	// buckets spill to disk and stream back through the pipelined engine's
	// frontier, so the pair list never has to be memory-resident. Never
	// chosen by auto selection — the facade reaches it through the explicit
	// engine option or the memory-budget admission path.
	SweepEngineSpill = "spill"
)

// SweepAutoMinOps is the incident-operation count (K2 — the sum of
// |Common| over the pair list, i.e. exactly the sweep's op count) below
// which auto selection runs the serial sweep: under it the parallel
// engines' fixed costs (packed-adjacency build, window bookkeeping, pool
// barriers, and the pipelined engine's partition pass) exceed what
// parallelism recovers, producing the sub-1× rows the PR 6 bench curves
// show at small α.
//
// Measured on the reference word-association workloads (vocab 4000, docs
// 6000) with 8 workers oversubscribed onto one physical core — the most
// adverse setting for the parallel engines, so on real multi-core hardware
// the threshold errs toward serial, never toward a losing parallel run:
//
//	K2      speedup T=2  speedup T=8
//	 30,940    0.32×        0.26×
//	 80,450    0.85×        0.80×
//	186,062    1.21×        1.23×
//	356,819    1.40×        1.39×
//
// The crossover sits between 80k and 186k ops; 2^17 = 131,072 splits the
// gap. See DESIGN.md ("Adaptive engine selection") for the full table and
// methodology; regenerate with `lcbench -experiment sweepkernel`. A var,
// not a const, so tests can force either side of the threshold.
var SweepAutoMinOps = int64(1 << 17)

// ChooseSweepEngine resolves the auto engine policy: serial below the
// measured op-count threshold (or when workers normalize to 1 — parallel
// scheduling can only lose there), otherwise the pipelined engine when
// pipeline is requested and the windowed parallel engine when not. The
// decision depends only on (ops, normalized workers, pipeline), never on
// timing, so a given workload selects the same engine on every run — and
// because every engine is bitwise-identical, even a different choice could
// not change the output, only the speed.
func ChooseSweepEngine(ops int64, workers int, pipeline bool) string {
	if par.Normalize(workers) < 2 || ops < SweepAutoMinOps {
		return SweepEngineSerial
	}
	if pipeline {
		return SweepEnginePipelined
	}
	return SweepEngineParallel
}
