package core

import (
	"runtime"
	"testing"
)

// TestChooseSweepEngine pins the auto policy around its measured threshold:
// serial below it or whenever workers normalize to one, pipelined/parallel
// above it by the pipeline preference.
func TestChooseSweepEngine(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("worker normalization clamps to 1 here; multi-worker selection untestable")
	}
	old := SweepAutoMinOps
	defer func() { SweepAutoMinOps = old }()
	SweepAutoMinOps = 1000

	for _, c := range []struct {
		ops      int64
		workers  int
		pipeline bool
		want     string
	}{
		{999, 8, false, SweepEngineSerial}, // below threshold
		{999, 8, true, SweepEngineSerial},  // threshold beats the pipeline preference
		{1000, 8, false, SweepEngineParallel},
		{1000, 8, true, SweepEnginePipelined},
		{1 << 40, 1, false, SweepEngineSerial}, // one worker: parallel can only lose
		{1 << 40, 1, true, SweepEngineSerial},
		{1 << 40, 0, false, SweepEngineSerial}, // 0 normalizes to 1
	} {
		if got := ChooseSweepEngine(c.ops, c.workers, c.pipeline); got != c.want {
			t.Errorf("ChooseSweepEngine(%d, %d, %v) = %q, want %q", c.ops, c.workers, c.pipeline, got, c.want)
		}
	}
}
