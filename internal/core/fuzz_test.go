package core

import (
	"os"
	"path/filepath"
	"testing"

	"linkclust/internal/graph"
	"linkclust/internal/spill"
)

// fuzzGraph decodes an arbitrary byte string into a small graph: the first
// byte sets the vertex count (2..24), each following triple (u, v, w) adds
// one edge with a positive weight. Invalid triples (self-loops, duplicates)
// are skipped, mirroring how a lenient loader would treat them.
func fuzzGraph(data []byte) *graph.Graph {
	if len(data) == 0 {
		return nil
	}
	n := 2 + int(data[0])%23
	b := graph.NewBuilder(n)
	for i := 1; i+2 < len(data); i += 3 {
		u := int(data[i]) % n
		v := int(data[i+1]) % n
		w := 0.25 + float64(data[i+2]%8)/4
		if u == v {
			continue
		}
		_ = b.AddEdge(u, v, w) // duplicates rejected; that's fine
	}
	if b.NumEdges() == 0 {
		return nil
	}
	return b.Build(nil)
}

// FuzzSweep drives serial and parallel sweeps over arbitrary small graphs
// and checks the structural invariants of Algorithm 2's output:
//
//   - every chain F(i) terminates at a self-loop, with pointers that never
//     increase (writes to array C always write cluster minima),
//   - every merge event has Into == min(A, B) and consecutive levels,
//   - merge similarities are non-increasing along the level sequence
//     (the pair list is swept in descending similarity order),
//   - the parallel engine reproduces the serial stream exactly at several
//     worker counts.
func FuzzSweep(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 1, 2, 1, 2, 3, 1, 0, 2, 1})
	f.Add([]byte{16, 0, 1, 0, 1, 2, 0, 2, 0, 0})
	f.Add([]byte{2, 0, 1, 7})
	f.Add([]byte{24, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		if g == nil {
			return
		}
		serial, err := Sweep(g, Similarity(g))
		if err != nil {
			t.Fatalf("serial sweep rejected its own similarity output: %v", err)
		}
		c := serial.Chain.c
		for i := range c {
			if c[i] > int32(i) {
				t.Fatalf("chain invariant violated: c[%d] = %d > %d", i, c[i], i)
			}
			x := int32(i)
			for steps := 0; c[x] != x; steps++ {
				if steps > len(c) {
					t.Fatalf("chain from %d does not terminate at a self-loop", i)
				}
				if c[x] > x {
					t.Fatalf("chain from %d increases: c[%d] = %d", i, x, c[x])
				}
				x = c[x]
			}
		}
		for i, m := range serial.Merges {
			into := m.A
			if m.B < into {
				into = m.B
			}
			if m.Into != into {
				t.Fatalf("merge %d: Into = %d, want min(%d,%d)", i, m.Into, m.A, m.B)
			}
			if m.Level != int32(i+1) {
				t.Fatalf("merge %d: Level = %d, want %d", i, m.Level, i+1)
			}
			if i > 0 && m.Sim > serial.Merges[i-1].Sim {
				t.Fatalf("merge %d: similarity rose %v -> %v", i, serial.Merges[i-1].Sim, m.Sim)
			}
		}
		for _, workers := range []int{1, 2, 5, 8} {
			par, err := SweepParallel(g, Similarity(g), workers)
			if err != nil {
				t.Fatalf("T=%d: %v", workers, err)
			}
			requireIdenticalSweep(t, "fuzz parallel vs serial", par, serial)
			pip, err := SweepPipelined(g, Similarity(g), workers)
			if err != nil {
				t.Fatalf("pipelined T=%d: %v", workers, err)
			}
			requireIdenticalSweep(t, "fuzz pipelined vs serial", pip, serial)
		}
	})
}

// FuzzSimilarity drives the initialization phase (Algorithm 1) over
// arbitrary small graphs and checks the wedge-major kernel against the
// legacy hash-map reference: after Sort, the pair lists must be element-wise
// identical — same keys, bitwise-equal similarities, identical
// common-neighbor lists — serially and at several worker counts. It also
// checks the structural invariants of map M: canonical key order U < V, no
// duplicate keys after sorting, and similarities within (0, 1].
func FuzzSimilarity(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 1, 2, 1, 2, 3, 1, 0, 2, 1})
	f.Add([]byte{16, 0, 1, 0, 1, 2, 0, 2, 0, 0})
	f.Add([]byte{2, 0, 1, 7})
	f.Add([]byte{24, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		if g == nil {
			return
		}
		legacy := SimilarityLegacy(g)
		legacy.Sort()
		for i, p := range legacy.Pairs {
			if p.U >= p.V {
				t.Fatalf("pair %d: key (%d,%d) not canonical", i, p.U, p.V)
			}
			if i > 0 && legacy.Pairs[i-1].U == p.U && legacy.Pairs[i-1].V == p.V {
				t.Fatalf("pair %d: duplicate key (%d,%d)", i, p.U, p.V)
			}
			if !(p.Sim > 0 && p.Sim <= 1) {
				t.Fatalf("pair %d: similarity %v outside (0, 1]", i, p.Sim)
			}
		}
		requireIdenticalSorted(t, "fuzz wedge vs legacy", Similarity(g), legacy)
		for _, workers := range []int{2, 5, 8} {
			requireIdenticalSorted(t, "fuzz parallel wedge vs legacy", SimilarityParallel(g, workers), legacy)
		}
	})
}

// FuzzSpillRoundTrip drives the out-of-core pair encoding through a real
// spill store: every pair of an arbitrary graph's similarity output is
// encoded, written through the write-behind pool, read back under the
// checksummed header, and decoded — the multiset must survive bitwise.
// Then one byte flip or truncation (position fuzzer-chosen) is applied to
// a bucket file, and the open/decode path must reject it with an error —
// never a panic, never a silently different pair list. Hostile bytes are
// also fed straight to the record decoder.
func FuzzSpillRoundTrip(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 1, 2, 1, 2, 3, 1, 0, 2, 1}, uint32(7), false)
	f.Add([]byte{16, 0, 1, 0, 1, 2, 0, 2, 0, 0}, uint32(33), true)
	f.Add([]byte{24, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, uint32(0), false)
	f.Fuzz(func(t *testing.T, data []byte, mutOff uint32, truncate bool) {
		// Hostile decode first: arbitrary payload bytes with an arbitrary
		// claimed count must error or succeed, never panic.
		_, _ = decodePairRecords(data, int(mutOff)%1024)

		g := fuzzGraph(data)
		if g == nil {
			return
		}
		pl := Similarity(g)
		if len(pl.Pairs) == 0 {
			return
		}
		st, err := spill.NewStore([]int{0, 1}, spill.Options{Dir: t.TempDir(), BlockBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Remove()
		var buf []byte
		counts := [2]int{}
		for i := range pl.Pairs {
			b := i & 1
			buf = appendPairRecord(buf[:0], &pl.Pairs[i])
			if err := st.Append(b, buf); err != nil {
				t.Fatalf("append: %v", err)
			}
			counts[b]++
		}
		if err := st.FinishWrites(); err != nil {
			t.Fatalf("finish: %v", err)
		}
		var got []Pair
		for b := 0; b < 2; b++ {
			bk, err := st.OpenBucket(b)
			if err != nil {
				t.Fatalf("bucket %d: %v", b, err)
			}
			recs, err := decodePairRecords(bk.Payload, bk.Pairs)
			if err != nil {
				t.Fatalf("decode bucket %d: %v", b, err)
			}
			if len(recs) != counts[b] {
				t.Fatalf("bucket %d: %d records back, wrote %d", b, len(recs), counts[b])
			}
			got = append(got, recs...)
			bk.Close()
		}
		want := &PairList{Pairs: append([]Pair(nil), pl.Pairs...)}
		requireIdenticalSorted(t, "fuzz spill round trip", &PairList{Pairs: got}, want)

		// Corrupt bucket 0's file (ids 0,1 sort with bucket 0 first). Any
		// byte flip must break the CRC or a validated header field; any
		// truncation must break the size contract.
		entries, err := os.ReadDir(st.Dir())
		if err != nil || len(entries) == 0 {
			t.Fatalf("listing spill dir: %v (%d entries)", err, len(entries))
		}
		path := filepath.Join(st.Dir(), entries[0].Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if truncate {
			raw = raw[:int(mutOff)%len(raw)]
		} else {
			raw = append([]byte(nil), raw...)
			raw[int(mutOff)%len(raw)] ^= 0x01 | byte(mutOff>>8)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		bk, err := st.OpenBucket(0)
		if err == nil {
			_, derr := decodePairRecords(bk.Payload, bk.Pairs)
			bk.Close()
			if derr == nil {
				t.Fatal("mutated spill file opened and decoded cleanly")
			}
		}
	})
}

// FuzzSimilarityKernels drives the newer kernel variants over arbitrary small
// graphs: the cache-blocked wedge kernel (forced onto every row with tiny
// tiles) and the degree-ordered relabeled kernel must both reproduce the
// plain wedge kernel's pair list bitwise in its pre-Sort master order.
func FuzzSimilarityKernels(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 1, 2, 1, 2, 3, 1, 0, 2, 1})
	f.Add([]byte{16, 0, 1, 0, 1, 2, 0, 2, 0, 0})
	f.Add([]byte{2, 0, 1, 7})
	f.Add([]byte{24, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		if g == nil {
			return
		}
		plain := Similarity(g)
		restore := forceBlockedKernel()
		blocked := Similarity(g)
		restore()
		requireIdenticalPreSort(t, "fuzz forced-blocked vs plain", blocked, plain)
		for _, workers := range []int{1, 3, 8} {
			requireIdenticalPreSort(t, "fuzz relabeled vs plain", SimilarityRelabeled(g, workers), plain)
		}
	})
}
