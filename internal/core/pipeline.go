package core

import (
	"context"
	"math"
	"slices"
	"sync/atomic"
	"time"

	"linkclust/internal/fault"
	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/par"
)

// Counter names recorded by the pipelined sweep.
const (
	// CtrPipelineBuckets counts non-empty similarity buckets emitted by the
	// partition producer. A pure function of the pair list (bucket count
	// adapts to list size, never to workers), so it is worker-invariant.
	CtrPipelineBuckets = "pipeline.buckets"
	// CtrPipelineStalls counts consumer waits: times the sweep finished
	// every emitted bucket and blocked for the producer's next one. A
	// timing artifact — NOT worker-invariant.
	CtrPipelineStalls = "pipeline.consumer_stalls"
	// CtrPipelineStallNs is the total wall time the consumer spent blocked
	// waiting for buckets. NOT worker-invariant.
	CtrPipelineStallNs = "pipeline.consumer_stall_ns"
	// CtrPipelineSortNs is the total wall time the producer spent sorting
	// buckets and copying them into place. NOT worker-invariant.
	CtrPipelineSortNs = "pipeline.producer_sort_ns"
	// CtrPipelineOverlapPct estimates how much of the producer's sort work
	// was hidden behind the consumer's sweep: 100·(sort − stall)/sort,
	// clamped to [0, 100]. NOT worker-invariant.
	CtrPipelineOverlapPct = "pipeline.overlap_pct"
)

// Pipeline tuning.
const (
	// pipelineBucketAhead bounds the frontier channel: the producer may run
	// at most this many buckets ahead of the consumer before blocking.
	pipelineBucketAhead = 8
	// pipelineSmallPairs selects the reduced bucket-bit width: lists below
	// this size use pipelineSmallBits so the histogram never dwarfs the
	// input. The threshold depends only on list length, keeping bucket
	// boundaries (and the buckets-emitted counter) worker-invariant.
	pipelineSmallPairs = 1 << 13
	// pipelineBits is the MSD radix width of the similarity partition —
	// sign, the full 11-bit exponent, and 4 mantissa bits, so each binade
	// of similarities splits into 16 buckets.
	pipelineBits = 16
	// pipelineSmallBits is the width used below pipelineSmallPairs.
	pipelineSmallBits = 8
)

// simBucket maps a similarity to its MSD radix bucket: the top bits of the
// descending monotonic key of its float64 representation. The key transform
// (flip all bits of negatives, set the sign bit of non-negatives, then
// complement for descending order) makes bucket ids ascend as similarity
// descends, and equal similarities always share a bucket — so emitting
// buckets in ascending id order, each fully sorted by cmpPairs, concatenates
// to exactly the list-L order of PairList.Sort.
func simBucket(sim float64, shift uint) int {
	b := math.Float64bits(sim)
	if b == 1<<63 {
		// -0 compares equal to +0 in cmpPairs, so it must share +0's bucket
		// or an equal-similarity tie could straddle a bucket boundary and
		// break the concatenated (U,V) tie order.
		b = 0
	}
	if int64(b) < 0 {
		b = ^b
	} else {
		b |= 1 << 63
	}
	return int(^b >> shift)
}

// pairPartition is the output of the MSD radix partition: pairs grouped
// bucket-major in scratch (descending similarity across buckets, arbitrary
// order within), with offs[b]:offs[b+1] delimiting bucket b. Bucket offsets
// equal the buckets' final positions in the fully sorted list.
type pairPartition struct {
	scratch []Pair
	offs    []int
	buckets []int // non-empty bucket ids, ascending
}

// partitionPairs distributes pairs into similarity buckets with a classic
// parallel counting sort: per-worker histograms over contiguous chunks, a
// serial exclusive scan assigning each (worker, bucket) its write cursor,
// and a parallel scatter. The scatter order within a bucket depends on the
// worker count, which is harmless: every bucket is fully sorted by the
// total-order comparator before use.
func partitionPairs(pairs []Pair, workers int) *pairPartition {
	n := len(pairs)
	bits := pipelineBits
	if n < pipelineSmallPairs {
		bits = pipelineSmallBits
	}
	nb := 1 << bits
	shift := uint(64 - bits)

	w := par.Normalize(workers)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	counts := make([]int, w*nb)
	par.Do(n, w, func(t, lo, hi int) {
		row := counts[t*nb : (t+1)*nb]
		for i := lo; i < hi; i++ {
			row[simBucket(pairs[i].Sim, shift)]++
		}
	})

	p := &pairPartition{offs: make([]int, nb+1)}
	pos := 0
	for b := 0; b < nb; b++ {
		p.offs[b] = pos
		for t := 0; t < w; t++ {
			c := counts[t*nb+b]
			counts[t*nb+b] = pos
			pos += c
		}
		if pos > p.offs[b] {
			p.buckets = append(p.buckets, b)
		}
	}
	p.offs[nb] = pos

	p.scratch = make([]Pair, n)
	par.Do(n, w, func(t, lo, hi int) {
		cur := counts[t*nb : (t+1)*nb]
		for i := lo; i < hi; i++ {
			b := simBucket(pairs[i].Sim, shift)
			p.scratch[cur[b]] = pairs[i]
			cur[b]++
		}
	})
	return p
}

// CountPipelineBuckets reports how many non-empty similarity buckets the
// pipelined sweep would emit for these pairs — its available overlap
// granularity. A pure function of the pair multiset (bucket width adapts to
// list size only), so the count is worker-invariant.
func CountPipelineBuckets(pairs []Pair) int64 {
	bits := pipelineBits
	if len(pairs) < pipelineSmallPairs {
		bits = pipelineSmallBits
	}
	shift := uint(64 - bits)
	seen := make(map[int]struct{})
	for i := range pairs {
		seen[simBucket(pairs[i].Sim, shift)] = struct{}{}
	}
	return int64(len(seen))
}

// pipelineSorters returns the producer's sorter budget: roughly half the
// worker count, leaving the rest for the consumer's resolve/find/apply
// fan-outs that run concurrently with bucket sorting.
func pipelineSorters(workers int) int {
	if s := workers / 2; s > 1 {
		return s
	}
	return 1
}

// SweepPipelined runs Algorithm 2 with the sort and merge phases overlapped:
// instead of a monolithic PairList.Sort barrier between the initialization
// and sweeping phases, the pair list is MSD-radix partitioned on the float
// bits of its similarities into buckets that are non-increasing in
// similarity across bucket order, and a producer sorts and emits bucket k
// (over a bounded channel) while the reservation engine of SweepParallel is
// already consuming buckets 1..k-1 — the O(K1·log K1) sort cost hides
// behind merge wall-clock, and the per-bucket sorts are themselves cheaper
// than one global sort.
//
// Determinism is preserved end to end: the concatenated per-bucket-sorted
// stream is element-wise identical to PairList.Sort's order, the engine's
// window boundaries are a pure op-count function of that order, and every
// scheduling decision inside a window is worker-independent — so the merge
// stream is bitwise identical to the serial Sweep for any worker count, and
// the pair list finishes fully sorted in place exactly as the other sweeps
// leave it.
func SweepPipelined(g *graph.Graph, pl *PairList, workers int) (*Result, error) {
	return SweepPipelinedRecorded(g, pl, workers, nil)
}

// SweepPipelinedRecorded is SweepPipelined with optional instrumentation:
// partition/merge phase timers, the serial sweep's counters, the engine's
// window/round counters, and the pipeline's bucket/stall/overlap counters
// are recorded into rec. A nil rec records nothing.
func SweepPipelinedRecorded(g *graph.Graph, pl *PairList, workers int, rec *obs.Recorder) (*Result, error) {
	return SweepPipelinedCtx(context.Background(), g, pl, workers, rec)
}

// SweepPipelinedCtx is SweepPipelinedRecorded with cooperative cancellation
// and panic isolation. Cancellation points are the engine's op-count window
// cuts on the consumer side and the producer's bucket claims and publishes
// (via par.OrderedCtx), so cancel latency is bounded by max(one window, one
// bucket sort) and the producer/consumer pair shuts down without stranding
// either party: the consumer cancels the producer and drains the frontier
// channel until it closes, and a producer blocked publishing observes the
// cancellation and exits. On cancellation the pair list is left unsorted but
// remains a valid permutation of its input, so a later sort or sweep can
// reuse it. A panic inside any pool surfaces as a *par.WorkerPanicError (the
// list contents are unspecified in that case and must be discarded).
func SweepPipelinedCtx(ctx context.Context, g *graph.Graph, pl *PairList, workers int, rec *obs.Recorder) (res *Result, err error) {
	defer par.RecoverPanicError(&err)
	workers = par.Normalize(workers)
	end := rec.Phase("sweep")
	defer end()

	e := &sweepEngine{g: g, pl: pl, workers: workers, ctx: ctx}
	e.init()

	if pl.Sorted() {
		// Already list L: there is no sort to overlap; run the engine over
		// the whole list at once.
		endMerge := rec.Phase("merge")
		err := e.consume(len(pl.Pairs), true)
		endMerge()
		if err != nil {
			return nil, err
		}
		recordSweepEngine(rec, e)
		return e.res, nil
	}

	endPart := rec.Phase("partition")
	part := partitionPairs(pl.Pairs, workers)
	endPart()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	endMerge := rec.Phase("merge")
	defer endMerge()

	// prodCtx is canceled when the consumer stops consuming (its own error
	// or outer cancellation), releasing producer workers blocked on a claim
	// or a publish.
	prodCtx, stopProducer := context.WithCancel(ctx)
	defer stopProducer()

	var sortNs atomic.Int64
	frontiers := make(chan int, pipelineBucketAhead)
	prodDone := make(chan error, 1)
	go func() {
		defer close(frontiers)
		pairs := pl.Pairs
		prodDone <- par.OrderedCtx(prodCtx, len(part.buckets), pipelineSorters(workers), func(i int) {
			fault.Hit(fault.SlowProducer)
			b := part.buckets[i]
			t0 := time.Now()
			slices.SortFunc(part.scratch[part.offs[b]:part.offs[b+1]], cmpPairs)
			sortNs.Add(time.Since(t0).Nanoseconds())
		}, func(i int) {
			b := part.buckets[i]
			lo, hi := part.offs[b], part.offs[b+1]
			t0 := time.Now()
			copy(pairs[lo:hi], part.scratch[lo:hi])
			sortNs.Add(time.Since(t0).Nanoseconds())
			select {
			case frontiers <- hi:
			case <-prodCtx.Done():
				// The consumer has abandoned the stream; the emitter's next
				// iteration observes the cancellation and stops.
			}
		})
	}()

	// If the consumer panics mid-stream (engine pool panic), join the
	// producer before unwinding: release it, drain the channel to its close,
	// and wait for its pool — otherwise its in-place copies could race with
	// whatever the caller does after recovering the error.
	prodJoined := false
	defer func() {
		if !prodJoined {
			stopProducer()
			for range frontiers {
			}
			<-prodDone
		}
	}()

	var stalls, stallNs int64
	for {
		var f int
		var ok bool
		select {
		case f, ok = <-frontiers:
		default:
			t0 := time.Now()
			f, ok = <-frontiers
			if ok {
				stalls++
				stallNs += time.Since(t0).Nanoseconds()
			}
		}
		if !ok {
			break
		}
		if err == nil {
			err = e.consume(f, false)
			if err != nil {
				// Release the producer, then keep draining until the channel
				// closes so its pool fully unwinds before we return;
				// returning mid-stream would race its in-place copies.
				stopProducer()
			}
		}
	}
	prodJoined = true
	perr := <-prodDone
	if perr == nil {
		// The producer emitted (and therefore sorted and copied) every
		// bucket, so the list is now list L.
		pl.sorted = true
	} else {
		// The producer stopped early: buckets it never emitted were never
		// copied into place, so pl.Pairs is a mixture of sorted buckets and
		// stale pre-partition entries — not a permutation. scratch holds the
		// complete partition (every pair exactly once), and the producer's
		// pool has fully drained, so restoring it wholesale leaves the list a
		// valid unsorted permutation that a later sort or sweep can reuse.
		copy(pl.Pairs, part.scratch)
	}
	if err == nil {
		err = perr
	}
	if err == nil {
		err = e.consume(len(pl.Pairs), true)
	}
	if err != nil {
		return nil, err
	}
	recordSweepEngine(rec, e)
	if rec != nil {
		rec.Add(CtrPipelineBuckets, int64(len(part.buckets)))
		rec.Add(CtrPipelineStalls, stalls)
		rec.Add(CtrPipelineStallNs, stallNs)
		sort := sortNs.Load()
		rec.Add(CtrPipelineSortNs, sort)
		if sort > 0 {
			hidden := sort - stallNs
			if hidden < 0 {
				hidden = 0
			}
			rec.Add(CtrPipelineOverlapPct, 100*hidden/sort)
		}
	}
	return e.res, nil
}

// recordSweepEngine records the counters shared by every engine-backed
// sweep: the serial sweep's op/rewrite/merge counters plus the engine's
// scheduling counters.
func recordSweepEngine(rec *obs.Recorder, e *sweepEngine) {
	if rec == nil {
		return
	}
	rec.Add(CtrSweepPairsProcessed, e.res.PairsProcessed)
	rec.Add(CtrSweepChainRewrites, e.res.Chain.Changes())
	rec.Add(CtrSweepMerges, int64(len(e.res.Merges)))
	rec.Add(CtrSweepWindows, e.windows)
	rec.Add(CtrSweepRounds, e.rounds)
	rec.Add(CtrSweepDeferrals, e.deferrals)
	rec.Add(CtrSweepNoopDrops, e.drops)
	rec.Add(CtrSweepSerialDrains, e.drains)
	rec.Add(CtrSweepFlattens, e.flattens)
	rec.Add(CtrSweepCASRounds, e.casRounds)
}

// ClusterPipelined is the fully pipelined fine-grained pipeline: the
// parallel initialization phase feeding the bucket-partitioned,
// sort-overlapped sweep. Output is bitwise identical to Cluster for any
// worker count. workers is normalized exactly as in SimilarityParallel.
func ClusterPipelined(g *graph.Graph, workers int) (*Result, error) {
	return SweepPipelined(g, SimilarityParallel(g, workers), workers)
}

// ClusterPipelinedRecorded is ClusterPipelined with optional
// instrumentation covering both phases.
func ClusterPipelinedRecorded(g *graph.Graph, workers int, rec *obs.Recorder) (*Result, error) {
	return SweepPipelinedRecorded(g, SimilarityParallelRecorded(g, workers, rec), workers, rec)
}
