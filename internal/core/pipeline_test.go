package core

import (
	"fmt"
	"math"
	"testing"

	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/rng"
)

// TestSimBucketOrder pins the radix key's two load-bearing properties:
// bucket ids are non-decreasing as similarity decreases, and equal
// similarities share a bucket — together these make the concatenation of
// per-bucket-sorted runs equal the global sort.
func TestSimBucketOrder(t *testing.T) {
	sims := []float64{
		2.5, 1.0, 0.999999, 0.75, 0.5, 0.5, 0.25, 0.1, 1e-3, 1e-9, 5e-300,
		0.0, math.Copysign(0, -1), -1e-9, -0.5, -1, -3,
	}
	const shift = 64 - pipelineBits
	for i := 1; i < len(sims); i++ {
		hi, lo := sims[i-1], sims[i]
		bh, bl := simBucket(hi, shift), simBucket(lo, shift)
		if hi > lo && bh > bl {
			t.Errorf("simBucket(%v) = %d > simBucket(%v) = %d; buckets must ascend as similarity descends", hi, bh, lo, bl)
		}
		if hi == lo && bh != bl {
			t.Errorf("equal similarities %v landed in buckets %d and %d", hi, bh, bl)
		}
	}
	// ±0 compare equal as floats and must share a bucket, or a tie could be
	// split across a bucket boundary and break the concatenation order.
	if simBucket(0, shift) != simBucket(math.Copysign(0, -1), shift) {
		t.Errorf("+0 and -0 landed in different buckets (%d vs %d)",
			simBucket(0, shift), simBucket(math.Copysign(0, -1), shift))
	}
}

// TestPartitionPairsIsSortPrefix checks the partition against the sort it
// replaces: concatenating the buckets in id order and sorting each must
// reproduce PairList.Sort exactly, and the bucket offsets must equal the
// buckets' positions in the fully sorted list.
func TestPartitionPairsIsSortPrefix(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		g := graph.ErdosRenyi(150, 0.08, rng.New(11))
		pl := Similarity(g)
		want := Similarity(g)
		want.Sort()
		part := partitionPairs(pl.Pairs, workers)
		if got := part.offs[len(part.offs)-1]; got != len(pl.Pairs) {
			t.Fatalf("workers=%d: partition covers %d pairs, want %d", workers, got, len(pl.Pairs))
		}
		idx := 0
		for _, b := range part.buckets {
			idx += part.offs[b+1] - part.offs[b]
		}
		if idx != len(pl.Pairs) {
			t.Fatalf("workers=%d: buckets carry %d pairs, want %d", workers, idx, len(pl.Pairs))
		}
		// Sort each bucket in place and compare the concatenation
		// element-wise against the fully sorted list.
		sorted := &PairList{Pairs: append([]Pair(nil), part.scratch...)}
		for _, b := range part.buckets {
			sub := &PairList{Pairs: sorted.Pairs[part.offs[b]:part.offs[b+1]]}
			sub.SortWorkers(1)
		}
		if len(sorted.Pairs) != len(want.Pairs) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(sorted.Pairs), len(want.Pairs))
		}
		for i := range want.Pairs {
			gp, wp := &sorted.Pairs[i], &want.Pairs[i]
			if gp.U != wp.U || gp.V != wp.V || gp.Sim != wp.Sim {
				t.Fatalf("workers=%d: pair %d = (%d,%d,%v), want (%d,%d,%v)",
					workers, i, gp.U, gp.V, gp.Sim, wp.U, wp.V, wp.Sim)
			}
		}
	}
}

// TestSweepPipelinedDifferential is the acceptance differential: on every
// graph family (random, planted communities, word association, structured,
// degenerate) and every worker count 1..8, the pipelined sweep must
// reproduce the serial sweep exactly — bitwise-equal merge streams and
// identical final partitions — and must leave the pair list sorted in place
// exactly as the other sweeps do.
func TestSweepPipelinedDifferential(t *testing.T) {
	for name, g := range wedgeTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := Sweep(g, Similarity(g))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			for workers := 1; workers <= 8; workers++ {
				pl := Similarity(g)
				res, err := SweepPipelined(g, pl, workers)
				if err != nil {
					t.Fatalf("T=%d: %v", workers, err)
				}
				requireIdenticalSweep(t, fmt.Sprintf("pipelined T=%d vs serial", workers), res, serial)
				if !pl.Sorted() {
					t.Fatalf("T=%d: pair list not marked sorted after pipelined sweep", workers)
				}
				for i := 1; i < len(pl.Pairs); i++ {
					if cmpPairs(pl.Pairs[i-1], pl.Pairs[i]) > 0 {
						t.Fatalf("T=%d: pair list out of order at %d after pipelined sweep", workers, i)
					}
				}
			}
		})
	}
}

// TestSweepPipelinedLargeRandom pushes past the shared families with graphs
// big enough to cut many windows, span many similarity buckets, and cross
// the engine's fan-out thresholds.
func TestSweepPipelinedLargeRandom(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.ErdosRenyi(300, 0.06, rng.New(seed))
		serial, err := Sweep(g, Similarity(g))
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		for _, workers := range []int{1, 3, 8} {
			res, err := SweepPipelined(g, Similarity(g), workers)
			if err != nil {
				t.Fatalf("seed %d T=%d: %v", seed, workers, err)
			}
			requireIdenticalSweep(t, fmt.Sprintf("seed %d T=%d", seed, workers), res, serial)
		}
	}
}

// TestSweepPipelinedPresorted covers the degenerate entry: a pre-sorted
// list skips the partition entirely and must still reproduce serial output
// (and not disturb the sorted flag).
func TestSweepPipelinedPresorted(t *testing.T) {
	g := graph.ErdosRenyi(120, 0.1, rng.New(7))
	serial, err := Sweep(g, Similarity(g))
	if err != nil {
		t.Fatal(err)
	}
	pl := Similarity(g)
	pl.Sort()
	res, err := SweepPipelined(g, pl, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalSweep(t, "presorted", res, serial)
	if !pl.Sorted() {
		t.Fatal("sorted flag lost")
	}
}

// TestSweepPipelinedErrorParity feeds the pipelined sweep a pair list from a
// foreign graph: it must surface exactly the serial sweep's error (first
// failing operation in serial order) at every worker count, and must not
// leak its producer goroutine doing so.
func TestSweepPipelinedErrorParity(t *testing.T) {
	g, err := graph.Circulant(48, 6)
	if err != nil {
		t.Fatal(err)
	}
	foreign := graph.Complete(48)
	_, serialErr := Sweep(g, Similarity(foreign))
	if serialErr == nil {
		t.Fatal("serial sweep accepted a foreign pair list")
	}
	for workers := 1; workers <= 8; workers++ {
		_, pipeErr := SweepPipelined(g, Similarity(foreign), workers)
		if pipeErr == nil {
			t.Fatalf("T=%d: pipelined sweep accepted a foreign pair list", workers)
		}
		if pipeErr.Error() != serialErr.Error() {
			t.Fatalf("T=%d: error %q, want serial's %q", workers, pipeErr, serialErr)
		}
	}
}

// TestSweepPipelinedCounters checks the pipelined path's instrumentation:
// the standard sweep counters must match the result, the engine's retire
// identity must hold, and the bucket counter must be positive and
// worker-invariant (stall/overlap counters are timing artifacts and only
// checked for range).
func TestSweepPipelinedCounters(t *testing.T) {
	g := graph.ErdosRenyi(200, 0.08, rng.New(4))
	var buckets int64 = -1
	for _, workers := range []int{1, 4, 8} {
		rec := obs.New()
		res, err := SweepPipelinedRecorded(g, Similarity(g), workers, rec)
		if err != nil {
			t.Fatalf("T=%d: %v", workers, err)
		}
		if got := rec.Counter(CtrSweepPairsProcessed); got != res.PairsProcessed {
			t.Fatalf("T=%d: pairs counter %d, want %d", workers, got, res.PairsProcessed)
		}
		retired := rec.Counter(CtrSweepMerges) + rec.Counter(CtrSweepNoopDrops)
		if retired != res.PairsProcessed {
			t.Fatalf("T=%d: merges + drops = %d, want every op retired once (%d)", workers, retired, res.PairsProcessed)
		}
		b := rec.Counter(CtrPipelineBuckets)
		if b < 1 {
			t.Fatalf("T=%d: no buckets recorded", workers)
		}
		if buckets >= 0 && b != buckets {
			t.Fatalf("T=%d: %d buckets, want worker-invariant %d", workers, b, buckets)
		}
		buckets = b
		if pct := rec.Counter(CtrPipelineOverlapPct); pct < 0 || pct > 100 {
			t.Fatalf("T=%d: overlap pct %d out of range", workers, pct)
		}
	}
}

// TestClusterPipelinedMatchesCluster is the end-to-end check of the facade
// path: ClusterPipelined == Cluster bitwise at several worker counts.
func TestClusterPipelinedMatchesCluster(t *testing.T) {
	g := graph.ErdosRenyi(180, 0.07, rng.New(21))
	serial, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5, 8} {
		res, err := ClusterPipelined(g, workers)
		if err != nil {
			t.Fatalf("T=%d: %v", workers, err)
		}
		requireIdenticalSweep(t, fmt.Sprintf("cluster pipelined T=%d", workers), res, serial)
	}
}
