package core

import (
	"context"
	"fmt"
	"slices"
	"sync/atomic"

	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/par"
)

// Degree-ordered relabeled similarity: Algorithm 1 executed over a copy of
// the graph whose vertices are renamed by descending degree
// (graph.DegreeOrder), with every output mapped back to original ids before
// it is returned — callers cannot tell the relabeled kernel ran except
// through the cache behavior.
//
// Why it helps: the wedge kernel's scratch (dot/cnt/pos/wTo) is indexed by
// candidate vertex id. Real graphs put hub vertices anywhere in the id
// space, so a hot row strides over a working set proportional to the raw id
// SPREAD of its candidates. After degree relabeling the high-degree vertices
// — which appear as candidates in most rows, precisely because they have
// the most edges — share the low end of the id space, so the busiest
// scratch lines are the same few cache lines in every row and the packed
// sweep adjacency clusters hub entries together.
//
// Why outputs are bitwise unchanged: floating-point addition is commutative
// but not associative, so the ONLY ordering the emitted bits depend on is
// the per-pair accumulation order, which the plain kernel fixes at
// "ascending original common-neighbor id, diagonal last". The relabeled
// kernel enumerates wedges in relabeled order but logs each wedge's product
// (one multiply of the same two weights — bitwise equal wherever it is
// computed) instead of accumulating immediately; at emit time each pair's
// products are sorted by ORIGINAL common-neighbor id and re-summed
// left-to-right, reproducing the plain kernel's exact add sequence. The
// diagonal term and the Tanimoto denominator only combine the two
// endpoints' norms with single commutative adds, so evaluating them with
// endpoints in original order is bit-identical. Norms (h1/h2) are computed
// on the ORIGINAL adjacency, whose neighbor order the per-vertex sums
// depend on. Finally the pair list is sorted by original (U, V) — the plain
// kernel's natural emission order — so even the unsorted master order is
// identical, and everything downstream (sweep windows, merge stream, golden
// hashes, caches keyed on pair lists) is unchanged. Edge ids survive
// graph.Relabel exactly, so dendrograms and chain arrays need no mapping at
// all.

// SimilarityRelabeled runs Algorithm 1 through the degree-relabeled kernel.
// The result is bitwise identical to Similarity / SimilarityWedge for any
// worker count, in the same master order.
func SimilarityRelabeled(g *graph.Graph, workers int) *PairList {
	pl, _ := SimilarityRelabeledCtx(context.Background(), g, workers, nil)
	return pl
}

// SimilarityRelabeledCtx is the cancellable, panic-isolated entry point of
// the relabeled kernel, mirroring SimilarityCtx.
func SimilarityRelabeledCtx(ctx context.Context, g *graph.Graph, workers int, rec *obs.Recorder) (pl *PairList, err error) {
	defer par.RecoverPanicError(&err)
	workers = par.Normalize(workers)

	endRelabel := rec.Phase("relabel")
	perm := graph.DegreeOrder(g)
	inv := graph.InversePermutation(perm)
	rg := graph.Relabel(g, perm)
	endRelabel()

	if workers < 2 {
		return similarityRelabeledSerialCtx(ctx, g, rg, inv, rec)
	}
	return similarityRelabeledParallelCtx(ctx, g, rg, inv, workers, rec)
}

// cmpPairsLex is the plain kernel's master emission order: (U, V)
// lexicographic on original ids. Pair keys are unique, so the order is
// total and the sort deterministic.
func cmpPairsLex(a, b Pair) int {
	if a.U != b.U {
		return int(a.U) - int(b.U)
	}
	return int(a.V) - int(b.V)
}

// distinctURows counts the distinct U values of a (U, V)-lex sorted pair
// list — the value CtrSimilarityWedgeRows must report: the number of
// ORIGINAL rows with at least one pair, which the relabeled enumeration
// cannot count directly because its row owner is the smaller RELABELED id.
func distinctURows(pairs []Pair) int64 {
	var rows int64
	for i := range pairs {
		if i == 0 || pairs[i].U != pairs[i-1].U {
			rows++
		}
	}
	return rows
}

func similarityRelabeledSerialCtx(ctx context.Context, g, rg *graph.Graph, inv []int32, rec *obs.Recorder) (*PairList, error) {
	end := rec.Phase("similarity")
	defer end()
	n := g.NumVertices()
	h1 := make([]float64, n)
	h2 := make([]float64, n)
	endPass := rec.Phase("pass1-norms")
	vertexNorms(g, h1, h2, 0, n)
	endPass()

	endPass = rec.Phase("pass2-wedge-rows")
	ra := newRowAccum(n)
	chunk := 4 * g.NumEdges()
	if chunk < 1024 {
		chunk = 1024
	}
	arena := &arenaChunks{chunkSize: chunk}
	pairs := make([]Pair, 0, g.NumEdges())
	for u := 0; u < n; u++ {
		if u%wedgeRowBlock == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		w := ra.enumerateRowLogged(rg, u)
		if w > 0 {
			commons := arena.alloc(w)
			base := len(pairs)
			need := len(ra.touched)
			pairs = slices.Grow(pairs, need)[:base+need]
			ra.emitRowRelabeled(u, inv, h1, h2, pairs[base:], commons)
		}
		ra.resetMarks(rg, u)
	}
	endPass()

	endPass = rec.Phase("pass3-unrelabel-sort")
	slices.SortFunc(pairs, cmpPairsLex)
	endPass()

	pl := &PairList{Pairs: pairs}
	recordPairListStats(rec, pl)
	rec.Add(CtrSimilarityWedgeRows, distinctURows(pairs))
	return pl, nil
}

func similarityRelabeledParallelCtx(ctx context.Context, g, rg *graph.Graph, inv []int32, workers int, rec *obs.Recorder) (*PairList, error) {
	end := rec.Phase("similarity")
	defer end()
	n := g.NumVertices()
	h1 := make([]float64, n)
	h2 := make([]float64, n)

	endPass := rec.Phase("pass1-norms")
	par.Do(n, workers, func(_, lo, hi int) {
		vertexNorms(g, h1, h2, lo, hi)
	})
	endPass()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	accs := make([]*rowAccum, workers)
	for t := range accs {
		accs[t] = newRowAccum(n)
	}

	// Pass 2 (count) runs on the RELABELED rows: per-row slot sizes are a
	// worker-independent function of rg, so the CSR layout is deterministic.
	endPass = rec.Phase("pass2-wedge-count")
	rowPairs := make([]int32, n)
	rowWedges := make([]int64, n)
	var cursor atomic.Int64
	par.Run(workers, func(t int, aborted func() bool) {
		ra := accs[t]
		for {
			if aborted() || ctx.Err() != nil {
				return
			}
			lo := int(cursor.Add(wedgeRowBlock)) - wedgeRowBlock
			if lo >= n {
				return
			}
			hi := lo + wedgeRowBlock
			if hi > n {
				hi = n
			}
			for u := lo; u < hi; u++ {
				rowPairs[u], rowWedges[u] = ra.countRow(rg, u)
			}
		}
	})
	if err := ctx.Err(); err != nil {
		endPass()
		return nil, err
	}

	pairOff := make([]int64, n+1)
	wedgeOff := make([]int64, n+1)
	for u := 0; u < n; u++ {
		pairOff[u+1] = pairOff[u] + int64(rowPairs[u])
		wedgeOff[u+1] = wedgeOff[u] + rowWedges[u]
	}
	endPass()

	endPass = rec.Phase("pass3-wedge-fill")
	pairs := make([]Pair, pairOff[n])
	arena := make([]int32, wedgeOff[n])
	cursor.Store(0)
	par.Run(workers, func(t int, aborted func() bool) {
		ra := accs[t]
		for {
			if aborted() || ctx.Err() != nil {
				return
			}
			lo := int(cursor.Add(wedgeRowBlock)) - wedgeRowBlock
			if lo >= n {
				return
			}
			hi := lo + wedgeRowBlock
			if hi > n {
				hi = n
			}
			for u := lo; u < hi; u++ {
				w := ra.enumerateRowLogged(rg, u)
				if int64(w) != rowWedges[u] || len(ra.touched) != int(rowPairs[u]) {
					panic(fmt.Sprintf("core: relabeled fill pass disagrees with count pass at row %d (%d/%d wedges, %d/%d pairs)",
						u, w, rowWedges[u], len(ra.touched), rowPairs[u]))
				}
				if w > 0 {
					ra.emitRowRelabeled(u, inv, h1, h2, pairs[pairOff[u]:pairOff[u+1]], arena[wedgeOff[u]:wedgeOff[u+1]])
				}
				ra.resetMarks(rg, u)
			}
		}
	})
	endPass()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	endPass = rec.Phase("pass3-unrelabel-sort")
	if err := par.SortFuncCtx(ctx, pairs, workers, cmpPairsLex); err != nil {
		endPass()
		return nil, err
	}
	endPass()

	pl := &PairList{Pairs: pairs}
	recordPairListStats(rec, pl)
	rec.Add(CtrSimilarityWedgeRows, distinctURows(pairs))
	return pl, nil
}

// enumerateRowLogged is enumerateRow for the relabeled kernel: instead of
// accumulating dot products immediately (whose add order would follow the
// RELABELED common-neighbor order and change the bits), it logs each
// wedge's product into ps, parallel to ks/vs, for the emit pass to re-sum
// in original order. dot is never touched.
func (ra *rowAccum) enumerateRowLogged(g *graph.Graph, u int) int {
	ra.touched = ra.touched[:0]
	ra.ks = ra.ks[:0]
	ra.vs = ra.vs[:0]
	ra.ps = ra.ps[:0]
	uu := int32(u)
	for _, hk := range g.Neighbors(u) {
		k, wk := hk.To, hk.Weight
		ra.wTo[k] = wk
		nb := g.Neighbors(int(k))
		for _, hv := range nb[firstAfter(nb, uu):] {
			v := hv.To
			if ra.cnt[v] == 0 {
				ra.touched = append(ra.touched, v)
			}
			ra.cnt[v]++
			// The product is a single multiply of the same two weights the
			// plain kernel multiplies — bitwise equal, whenever computed.
			prod := wk * hv.Weight
			ra.ks = append(ra.ks, k)
			ra.vs = append(ra.vs, v)
			ra.ps = append(ra.ps, prod)
		}
	}
	return len(ra.ks)
}

// emitRowRelabeled finishes relabeled row u: it scatters each pair's
// (original common-neighbor id, product) entries into its commons region,
// sorts every region by original id, re-sums the products left-to-right in
// that order (the plain kernel's exact add sequence), applies the diagonal
// term with original-id norms, and writes pairs under canonical original
// (U, V). Common lists come out ascending in original ids, aliasing
// commons. The scratch is reset as emitRow does.
func (ra *rowAccum) emitRowRelabeled(u int, inv []int32, h1, h2 []float64, pairs []Pair, commons []int32) {
	slices.Sort(ra.touched)
	var off int64
	for _, v := range ra.touched {
		ra.pos[v] = off
		off += int64(ra.cnt[v])
	}
	if cap(ra.pr) < len(ra.ks) {
		ra.pr = make([]float64, len(ra.ks))
	}
	pr := ra.pr[:len(ra.ks)]
	for i, v := range ra.vs {
		p := ra.pos[v]
		commons[p] = inv[ra.ks[i]]
		pr[p] = ra.ps[i]
		ra.pos[v]++
	}
	oU := inv[int32(u)]
	var start int64
	for i, v := range ra.touched {
		cn := int64(ra.cnt[v])
		end := start + cn
		ck := commons[start:end]
		cp := pr[start:end]
		ra.sortRegionByK(ck, cp)
		var d float64
		for _, p := range cp {
			d += p
		}
		a, b := oU, inv[v]
		if a > b {
			a, b = b, a
		}
		if w := ra.wTo[v]; w != 0 {
			// Separate statement: see the FMA note in enumerateRow. h1[a] +
			// h1[b] is a single commutative add — endpoint order is free.
			diag := (h1[a] + h1[b]) * w
			d += diag
		}
		pairs[i] = Pair{
			U:      a,
			V:      b,
			Sim:    d / (h2[a] + h2[b] - d),
			Common: ck[:cn:cn],
		}
		start = end
		ra.cnt[v] = 0
	}
}

// sortRegionByK sorts the parallel (common-id, product) region ascending by
// id. Ids within a region are distinct (one wedge per center per pair), so
// the order is total. Small regions — the overwhelming majority — use an
// insertion sort; large ones sort an index permutation to keep the move
// count linear.
func (ra *rowAccum) sortRegionByK(ks []int32, ps []float64) {
	n := len(ks)
	if n < 2 {
		return
	}
	if n <= 24 {
		for i := 1; i < n; i++ {
			k, p := ks[i], ps[i]
			j := i - 1
			for j >= 0 && ks[j] > k {
				ks[j+1], ps[j+1] = ks[j], ps[j]
				j--
			}
			ks[j+1], ps[j+1] = k, p
		}
		return
	}
	idx := ra.idx[:0]
	for i := 0; i < n; i++ {
		idx = append(idx, int32(i))
	}
	slices.SortFunc(idx, func(a, b int32) int { return int(ks[a]) - int(ks[b]) })
	kt := append(ra.kTmp[:0], ks...)
	pt := append(ra.pTmp[:0], ps...)
	for i, ix := range idx {
		ks[i], ps[i] = kt[ix], pt[ix]
	}
	ra.idx, ra.kTmp, ra.pTmp = idx, kt, pt
}
