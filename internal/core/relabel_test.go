package core

import (
	"fmt"
	"testing"
)

// requireIdenticalPreSort asserts two pair lists are element-wise identical
// in their natural (pre-Sort) order — the relabeled kernel's contract is the
// plain wedge kernel's exact master order, not just set equality.
func requireIdenticalPreSort(t *testing.T, label string, got, want *PairList) {
	t.Helper()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got.Pairs), len(want.Pairs))
	}
	for i := range want.Pairs {
		g, w := &got.Pairs[i], &want.Pairs[i]
		if g.U != w.U || g.V != w.V {
			t.Fatalf("%s pair %d: (%d,%d), want (%d,%d)", label, i, g.U, g.V, w.U, w.V)
		}
		if g.Sim != w.Sim {
			t.Fatalf("%s pair (%d,%d): sim %v, want bitwise-equal %v", label, g.U, g.V, g.Sim, w.Sim)
		}
		if len(g.Common) != len(w.Common) {
			t.Fatalf("%s pair (%d,%d): commons %v, want %v", label, g.U, g.V, g.Common, w.Common)
		}
		for j := range w.Common {
			if g.Common[j] != w.Common[j] {
				t.Fatalf("%s pair (%d,%d): commons %v, want %v", label, g.U, g.V, g.Common, w.Common)
			}
		}
	}
}

// TestSimilarityRelabeledDifferential is the differential test of the
// degree-ordered kernel: on every graph family and worker counts 1..8 it must
// reproduce the plain wedge kernel's pair list bitwise — same master (U,V)
// order in original ids, bitwise-equal similarities, identical
// common-neighbor lists.
func TestSimilarityRelabeledDifferential(t *testing.T) {
	for name, g := range wedgeTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			plain := Similarity(g)
			for workers := 1; workers <= 8; workers++ {
				rel := SimilarityRelabeled(g, workers)
				requireIdenticalPreSort(t, fmt.Sprintf("relabeled T=%d", workers), rel, plain)
				if got, want := rel.NumIncidentPairs(), plain.NumIncidentPairs(); got != want {
					t.Fatalf("T=%d: %d incident pairs, want %d", workers, got, want)
				}
			}
		})
	}
}

// TestSweepOnRelabeledSimilarity is the dendrogram round trip: a sweep over
// the relabeled kernel's pair list must equal a sweep over the plain kernel's
// bitwise — merge events carry edge/cluster ids, so this pins that relabeling
// leaves every dendrogram id untouched, with no translation layer.
func TestSweepOnRelabeledSimilarity(t *testing.T) {
	for name, g := range wedgeTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			want, err := Sweep(g, Similarity(g))
			if err != nil {
				t.Fatalf("plain: %v", err)
			}
			got, err := Sweep(g, SimilarityRelabeled(g, 4))
			if err != nil {
				t.Fatalf("relabeled: %v", err)
			}
			requireIdenticalSweep(t, "sweep over relabeled pairs", got, want)
		})
	}
}
