package core

import (
	"context"
	"fmt"

	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/par"
)

// This file exports the replay surface the incremental engine in
// internal/stream builds on: a checkpointable sweep (SweepResumeCtx over
// SweepState), the per-row similarity kernel (RowKernel), and the pair-list
// order primitives (CmpPairs, NewSortedPairList, VertexNorms). Everything
// here reuses the existing engines verbatim — the exports add state capture
// and single-row entry points, never new algorithmic paths — so outputs stay
// bitwise identical to the batch pipeline by construction.

// SweepState is a resumable checkpoint of the fine-grained sweep engine: the
// full engine state after the window ending at pair index Pos. Replaying the
// sorted pair list from Pos on a state-restored engine produces — bitwise —
// the merge stream, chain array, and counters of a from-scratch run, because
// the engine's entire behavior beyond Pos is a function of exactly the fields
// captured here plus the pairs at and above Pos (see SweepResumeCtx).
//
// A SweepState is immutable once captured: Chain and Merges are deep copies,
// and resuming copies them again, so one checkpoint can seed any number of
// replays.
type SweepState struct {
	// Pos is the pair index the engine stopped at. It is always a window
	// boundary: pairs below Pos are fully processed, pairs at and above it
	// untouched.
	Pos int
	// Chain is a deep copy of array C over edge ids.
	Chain []int32
	// Changes is the chain's rewrite counter at the checkpoint.
	Changes int64
	// Merges is a deep copy of the merge stream emitted so far.
	Merges []Merge
	// Levels and PairsProcessed mirror the Result fields at the checkpoint.
	Levels         int32
	PairsProcessed int64
	// OpsSinceFlatten is the periodic-flatten accumulator; carrying it keeps
	// the flatten schedule (and hence the rewrite counter) of a resumed run
	// identical to an uninterrupted one.
	OpsSinceFlatten int64
}

// captureState deep-copies the engine's resumable state at its current
// window boundary.
func captureState(e *sweepEngine) SweepState {
	return SweepState{
		Pos:             e.wp,
		Chain:           append([]int32(nil), e.ch.c...),
		Changes:         e.ch.changes,
		Merges:          append([]Merge(nil), e.res.Merges...),
		Levels:          e.res.Levels,
		PairsProcessed:  e.res.PairsProcessed,
		OpsSinceFlatten: e.opsSinceFlatten,
	}
}

// SweepResumeCtx runs the fine-grained sweep over a sorted pair list,
// optionally starting from a checkpoint and optionally emitting new
// checkpoints as it goes.
//
// With from == nil it is SweepParallelCtx plus checkpointing. With a non-nil
// from — captured by an earlier SweepResumeCtx over a pair list whose entries
// below from.Pos were identical — it restores the engine to the checkpoint
// and replays only pairs at and above from.Pos. The resumed run's output is
// bitwise identical to a from-scratch run over the current list: the engine's
// window cutter is a greedy pure function of op counts over the sorted order,
// so with an identical prefix every boundary below Pos recurs, and the
// engine's state at a boundary is exactly (chain, merges, counters,
// opsSinceFlatten) — all restored here. The reservation table needs no
// restoration: a fresh table is all zeros, every live reservation tag of
// round g exceeds g<<32 > 0, and both schedulers ignore tags below the
// current round's base.
//
// When save is non-nil it receives a checkpoint at every window boundary
// reached after at least saveEvery operations since the last one (saveEvery
// <= 0 disables intermediate checkpoints), plus a final checkpoint with Pos =
// len(pl.Pairs) after the last window. Checkpoints are deep copies; save may
// retain them.
//
// The pair list must be in list-L order already (its sorted flag set — see
// NewSortedPairList) or is sorted here. Cancellation and panic isolation
// match SweepParallelCtx: the context is polled at every window cut, and on
// error the partial result is discarded (checkpoints already delivered to
// save remain valid — they describe prefixes that were fully processed).
func SweepResumeCtx(ctx context.Context, g *graph.Graph, pl *PairList, from *SweepState, workers, saveEvery int, save func(SweepState), rec *obs.Recorder) (res *Result, err error) {
	defer par.RecoverPanicError(&err)
	workers = par.Normalize(workers)
	end := rec.Phase("sweep")
	defer end()
	endSort := rec.Phase("sort")
	serr := pl.SortWorkersCtx(ctx, workers)
	endSort()
	if serr != nil {
		return nil, serr
	}
	endMerge := rec.Phase("merge")
	defer endMerge()

	n := len(pl.Pairs)
	e := &sweepEngine{g: g, pl: pl, workers: workers, ctx: ctx}
	e.init()
	pos := 0
	if from != nil {
		if from.Pos < 0 || from.Pos > n {
			return nil, fmt.Errorf("core: sweep checkpoint position %d outside pair list of %d", from.Pos, n)
		}
		if len(from.Chain) != g.NumEdges() {
			return nil, fmt.Errorf("core: sweep checkpoint chain has %d entries, graph has %d edges", len(from.Chain), g.NumEdges())
		}
		copy(e.ch.c, from.Chain)
		e.ch.changes = from.Changes
		e.res.Merges = append([]Merge(nil), from.Merges...)
		e.res.Levels = from.Levels
		e.res.PairsProcessed = from.PairsProcessed
		e.opsSinceFlatten = from.OpsSinceFlatten
		e.wp, e.wq = from.Pos, from.Pos
		pos = from.Pos
	}

	if save == nil || saveEvery <= 0 {
		if err := e.consume(n, true); err != nil {
			return nil, err
		}
	} else {
		// Feed the list in frontier increments of ~saveEvery operations;
		// consume's window cutter makes increment boundaries invisible to the
		// output, so this changes only where checkpoints become available.
		lastSaved := pos
		next := pos
		for next < n {
			ops := 0
			for next < n && ops < saveEvery {
				ops += len(pl.Pairs[next].Common)
				next++
			}
			if err := e.consume(next, next == n); err != nil {
				return nil, err
			}
			if e.wp > lastSaved && e.wp < n {
				save(captureState(e))
				lastSaved = e.wp
			}
		}
		if n == pos {
			// Empty replay range: still run the final cut so counters record.
			if err := e.consume(n, true); err != nil {
				return nil, err
			}
		}
	}
	if save != nil {
		save(captureState(e))
	}
	recordSweepEngine(rec, e)
	return e.res, nil
}

// NewSortedPairList wraps pairs that are already in list-L order (CmpPairs
// ascending) into a PairList with its sorted flag set, so sweeps trust the
// order instead of re-sorting. The caller vouches for the order; an unsorted
// list produces an unspecified (but non-crashing) merge stream, exactly as if
// PairList.Pairs had been reordered without Invalidate.
func NewSortedPairList(pairs []Pair) *PairList {
	return &PairList{Pairs: pairs, sorted: true}
}

// CmpPairs exposes the list-L total order: non-increasing similarity, ties
// broken by (U, V) ascending. Splicing freshly computed rows into a
// maintained sorted list with this comparator reproduces exactly the order a
// batch sort would have produced.
func CmpPairs(a, b Pair) int { return cmpPairs(a, b) }

// VertexNorms recomputes the H1/H2 norm terms of Algorithm 1's pass 1 for
// vertices lo <= v < hi against the current graph, zeroing stale values
// first (the batch pass starts from fresh arrays and skips isolated
// vertices; an incremental caller's arrays carry old values). Entries
// outside [lo, hi) are untouched, which is what makes per-endpoint refresh
// after an edge arrival exact: an arrival changes H1/H2 of its two endpoints
// and of no other vertex.
func VertexNorms(g *graph.Graph, h1, h2 []float64, lo, hi int) {
	for v := lo; v < hi; v++ {
		h1[v], h2[v] = 0, 0
	}
	vertexNorms(g, h1, h2, lo, hi)
}

// RowKernel is a reusable single-row entry point to the wedge-major
// similarity kernel: Row(u) computes exactly the pairs the batch kernel
// emits for row u — same order (V ascending), bitwise-equal similarities,
// identical Common lists — because it runs the very same enumerate/emit
// sequence on the same per-row accumulator. A row's output depends only on
// the graph and the norm arrays, never on other rows, which is what makes
// affected-row recomputation equivalent to a full batch pass.
//
// A RowKernel holds O(|V|) scratch and is not safe for concurrent use; use
// one per goroutine.
type RowKernel struct {
	ra *rowAccum
	n  int
}

// NewRowKernel returns a kernel for graphs of up to n vertices.
func NewRowKernel(n int) *RowKernel {
	return &RowKernel{ra: newRowAccum(n), n: n}
}

// Grow re-sizes the scratch for graphs of up to n vertices; shrinking is a
// no-op.
func (rk *RowKernel) Grow(n int) {
	if n > rk.n {
		rk.ra = newRowAccum(n)
		rk.n = n
	}
}

// Row computes row u of map M: every pair (u, v) with v > u sharing a common
// neighbor with u, in V-ascending order, with freshly allocated Pair and
// Common storage (safe to retain and splice). h1/h2 must hold the pass-1
// norms of the current graph (see VertexNorms). A row with no pairs returns
// nil.
func (rk *RowKernel) Row(g *graph.Graph, u int, h1, h2 []float64) []Pair {
	if g.NumVertices() > rk.n {
		panic(fmt.Sprintf("core: RowKernel sized for %d vertices got graph with %d (call Grow)", rk.n, g.NumVertices()))
	}
	ra := rk.ra
	w := ra.enumerateRowDispatch(g, u)
	var pairs []Pair
	if w > 0 {
		commons := make([]int32, w)
		pairs = make([]Pair, len(ra.touched))
		ra.emitRow(u, h1, h2, pairs, commons)
	}
	ra.resetMarks(g, u)
	return pairs
}

// PairsTouching computes every pair of map M involving vertex d — both
// orientations of the row-major enumeration — under canonical (U, V) =
// (min, max), partner-ascending, with freshly allocated storage. Each
// returned pair is bitwise identical to the copy Row(min(U,V)) would emit:
// the wedge products are the same two weights multiplied (commutative), they
// are accumulated over the same common neighbors in the same ascending-k
// order whichever endpoint enumerates, and the diagonal and Tanimoto
// denominators are single commutative adds of the endpoint norms (see the
// FMA notes in enumerateRow). This is the incremental engine's kernel: the
// pairs an arrival at d can change are exactly the pairs involving d.
func (rk *RowKernel) PairsTouching(g *graph.Graph, d int, h1, h2 []float64) []Pair {
	if g.NumVertices() > rk.n {
		panic(fmt.Sprintf("core: RowKernel sized for %d vertices got graph with %d (call Grow)", rk.n, g.NumVertices()))
	}
	ra := rk.ra
	w := ra.enumerateRowAll(g, d)
	var pairs []Pair
	if w > 0 {
		commons := make([]int32, w)
		pairs = make([]Pair, len(ra.touched))
		ra.emitRow(d, h1, h2, pairs, commons)
		for i := range pairs {
			if pairs[i].U > pairs[i].V {
				pairs[i].U, pairs[i].V = pairs[i].V, pairs[i].U
			}
		}
	}
	ra.resetMarks(g, d)
	return pairs
}

// enumerateRowAll is enumerateRow without the v > u restriction: it logs the
// wedges of every partner of u, in the same ascending-k order per partner.
func (ra *rowAccum) enumerateRowAll(g *graph.Graph, u int) int {
	ra.touched = ra.touched[:0]
	ra.ks = ra.ks[:0]
	ra.vs = ra.vs[:0]
	uu := int32(u)
	for _, hk := range g.Neighbors(u) {
		k, wk := hk.To, hk.Weight
		ra.wTo[k] = wk
		for _, hv := range g.Neighbors(int(k)) {
			v := hv.To
			if v == uu {
				continue
			}
			if ra.cnt[v] == 0 {
				ra.touched = append(ra.touched, v)
			}
			ra.cnt[v]++
			// Two statements — see the FMA note in enumerateRow.
			prod := wk * hv.Weight
			ra.dot[v] += prod
			ra.ks = append(ra.ks, k)
			ra.vs = append(ra.vs, v)
		}
	}
	return len(ra.ks)
}
