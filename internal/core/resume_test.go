package core

import (
	"context"
	"fmt"
	"testing"

	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

// requireIdenticalChainState extends requireIdenticalSweep to the raw chain
// array and its rewrite counter — the resume contract is bitwise state
// equality, not just equal output.
func requireIdenticalChainState(t *testing.T, label string, got, want *Result) {
	t.Helper()
	requireIdenticalSweep(t, label, got, want)
	gc, wc := got.Chain.c, want.Chain.c
	if len(gc) != len(wc) {
		t.Fatalf("%s: chain has %d entries, want %d", label, len(gc), len(wc))
	}
	for i := range wc {
		if gc[i] != wc[i] {
			t.Fatalf("%s: chain[%d] = %d, want %d", label, i, gc[i], wc[i])
		}
	}
	if got.Chain.Changes() != want.Chain.Changes() {
		t.Fatalf("%s: %d chain rewrites, want %d", label, got.Chain.Changes(), want.Chain.Changes())
	}
}

// TestSweepResumeFromEveryCheckpoint is the resume engine's differential
// test: a checkpointing run must (a) itself match SweepParallel bitwise, and
// (b) every checkpoint it emits, replayed on a fresh engine over the same
// sorted list, must reproduce the same final state — merge stream, chain
// array, rewrite counter — at several worker counts on both sides.
func TestSweepResumeFromEveryCheckpoint(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.ErdosRenyi(300, 0.08, rng.New(seed))
		want, err := SweepParallel(g, Similarity(g), 4)
		if err != nil {
			t.Fatal(err)
		}
		pl := Similarity(g)
		var ckpts []SweepState
		got, err := SweepResumeCtx(context.Background(), g, pl, nil, 4, 2048,
			func(s SweepState) { ckpts = append(ckpts, s) }, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalChainState(t, fmt.Sprintf("seed=%d full", seed), got, want)
		if len(ckpts) < 3 {
			t.Fatalf("seed=%d: only %d checkpoints (need intermediate coverage)", seed, len(ckpts))
		}
		last := ckpts[len(ckpts)-1]
		if last.Pos != len(pl.Pairs) {
			t.Fatalf("seed=%d: final checkpoint at %d, want %d", seed, last.Pos, len(pl.Pairs))
		}
		for ci := range ckpts {
			workers := 1 + ci%8
			res, err := SweepResumeCtx(context.Background(), g, pl, &ckpts[ci], workers, 0, nil, nil)
			if err != nil {
				t.Fatalf("seed=%d ckpt=%d: %v", seed, ci, err)
			}
			requireIdenticalChainState(t,
				fmt.Sprintf("seed=%d resume from pos %d T=%d", seed, ckpts[ci].Pos, workers), res, want)
		}
	}
}

// TestSweepResumeRejectsBadCheckpoints pins the validation errors.
func TestSweepResumeRejectsBadCheckpoints(t *testing.T) {
	g := graph.ErdosRenyi(40, 0.1, rng.New(7))
	pl := Similarity(g)
	pl.Sort()
	bad := []SweepState{
		{Pos: -1, Chain: make([]int32, g.NumEdges())},
		{Pos: len(pl.Pairs) + 1, Chain: make([]int32, g.NumEdges())},
		{Pos: 0, Chain: make([]int32, g.NumEdges()+3)},
	}
	for i := range bad {
		if _, err := SweepResumeCtx(context.Background(), g, pl, &bad[i], 2, 0, nil, nil); err == nil {
			t.Errorf("checkpoint %d accepted", i)
		}
	}
}

// TestRowKernelMatchesBatch checks that RowKernel.Row reproduces, row for
// row, exactly the pairs the batch wedge kernel emits — same order, bitwise
// similarities, identical Common lists — on every shared test family.
func TestRowKernelMatchesBatch(t *testing.T) {
	for name, g := range wedgeTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			batch := Similarity(g)
			n := g.NumVertices()
			h1 := make([]float64, n)
			h2 := make([]float64, n)
			VertexNorms(g, h1, h2, 0, n)
			rk := NewRowKernel(n)
			var rows []Pair
			for u := 0; u < n; u++ {
				rows = append(rows, rk.Row(g, u, h1, h2)...)
			}
			if len(rows) != len(batch.Pairs) {
				t.Fatalf("%d pairs, batch has %d", len(rows), len(batch.Pairs))
			}
			for i, want := range batch.Pairs {
				gotP := rows[i]
				if gotP.U != want.U || gotP.V != want.V || gotP.Sim != want.Sim {
					t.Fatalf("pair %d = (%d,%d,%x), want (%d,%d,%x)",
						i, gotP.U, gotP.V, gotP.Sim, want.U, want.V, want.Sim)
				}
				if len(gotP.Common) != len(want.Common) {
					t.Fatalf("pair %d: %d commons, want %d", i, len(gotP.Common), len(want.Common))
				}
				for j := range want.Common {
					if gotP.Common[j] != want.Common[j] {
						t.Fatalf("pair %d common %d = %d, want %d", i, j, gotP.Common[j], want.Common[j])
					}
				}
			}
		})
	}
}

// TestVertexNormsPartialRefresh checks the incremental norm contract: after
// an edge arrival, refreshing only the two endpoints on arrays carrying the
// old graph's norms yields exactly the fresh batch arrays.
func TestVertexNormsPartialRefresh(t *testing.T) {
	src := rng.New(11)
	g0 := graph.ErdosRenyi(60, 0.08, src)
	n := g0.NumVertices()
	h1 := make([]float64, n)
	h2 := make([]float64, n)
	VertexNorms(g0, h1, h2, 0, n)

	// Rebuild with one extra edge, refresh only its endpoints.
	b := graph.NewBuilder(n)
	for _, e := range g0.Edges() {
		b.MustAddEdge(int(e.U), int(e.V), e.Weight)
	}
	u, v := 0, n-1
	if _, ok := g0.EdgeBetween(u, v); ok {
		t.Skip("random graph already has the probe edge")
	}
	b.MustAddEdge(u, v, 0.7)
	g1 := b.Build(nil)
	VertexNorms(g1, h1, h2, u, u+1)
	VertexNorms(g1, h1, h2, v, v+1)

	w1 := make([]float64, n)
	w2 := make([]float64, n)
	VertexNorms(g1, w1, w2, 0, n)
	for i := 0; i < n; i++ {
		if h1[i] != w1[i] || h2[i] != w2[i] {
			t.Fatalf("vertex %d: partial (%x,%x) vs batch (%x,%x)", i, h1[i], h2[i], w1[i], w2[i])
		}
	}
}
