// Package core implements the paper's primary contribution: the two-phase
// serial link-clustering algorithm (Algorithms 1 and 2), the chain array C
// with its F(i)/MERGE primitives (Theorem 1), and the multi-threaded
// parallelization of the initialization phase (Section VI-A) together with
// the corrected pairwise chain-merge scheme used by the parallel sweeping
// phase (Section VI-B).
//
// Terminology maps one-to-one onto the paper: Similarity is Algorithm 1 and
// produces the map M as a PairList; Sweep is Algorithm 2 and produces the
// dendrogram's merge stream; Chain is the array C.
package core

import (
	"context"
	"slices"

	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/par"
)

// Counter names this package records into an obs.Recorder.
const (
	// CtrSimilarityPairs is |M|: the number of vertex pairs produced by
	// Algorithm 1 (= K1 of the graph).
	CtrSimilarityPairs = "similarity.pairs"
	// CtrSimilarityIncidentPairs is the total number of incident edge
	// pairs the list drives (= K2 of the graph).
	CtrSimilarityIncidentPairs = "similarity.incident_pairs"
	// CtrSimilarityWedgeRows counts rows (smaller endpoints owning at
	// least one pair of map M) produced by the wedge-major kernel.
	CtrSimilarityWedgeRows = "similarity.wedge_rows"
	// CtrSweepPairsProcessed counts incident edge pairs fed to MERGE.
	CtrSweepPairsProcessed = "sweep.pairs_processed"
	// CtrSweepChainRewrites counts array-C entry rewrites — the quantity
	// the paper plots in Fig. 2(1).
	CtrSweepChainRewrites = "sweep.chain_rewrites"
	// CtrSweepMerges counts dendrogram merge events.
	CtrSweepMerges = "sweep.merges"
)

// Pair is one key/value of the paper's map M: a vertex pair sharing at
// least one common neighbor, its Tanimoto similarity (Eq. 1), and the list
// of shared neighbors. For every common neighbor k, the two incident edges
// (U,k) and (V,k) have similarity Sim.
type Pair struct {
	U, V int32
	Sim  float64
	// Common is the list of shared neighbors, ascending. It aliases the
	// PairList's arena; callers must not modify it.
	Common []int32
}

// PairList is the materialized map M of Algorithm 1 plus the similarity
// scores. After Sort it is the list L of Algorithm 2.
//
// Pairs is exported and mutable; code that reorders or rewrites it after a
// Sort must call Invalidate, or the cached sort state goes stale and a later
// Sort silently no-ops on unsorted data.
type PairList struct {
	Pairs  []Pair
	sorted bool
}

// NumIncidentPairs returns the total number of incident edge pairs the list
// drives, i.e. the sum of common-neighbor counts (= K2 of the graph).
func (pl *PairList) NumIncidentPairs() int64 {
	var n int64
	for i := range pl.Pairs {
		n += int64(len(pl.Pairs[i].Common))
	}
	return n
}

// cmpPairs is the list-L order: non-increasing similarity, ties broken by
// (U, V) ascending. It is a total order (keys are unique), so sorting is
// deterministic under any parallel chunking.
func cmpPairs(a, b Pair) int {
	if a.Sim != b.Sim {
		if a.Sim > b.Sim {
			return -1
		}
		return 1
	}
	if a.U != b.U {
		return int(a.U) - int(b.U)
	}
	return int(a.V) - int(b.V)
}

// Sort orders the pairs by non-increasing similarity, breaking ties by
// (U, V) ascending so runs are deterministic. Sorting is idempotent. The
// K1·log K1 sort runs chunked across workers with a parallel merge (small
// lists stay serial); the result is identical for any worker count.
func (pl *PairList) Sort() {
	pl.SortWorkers(par.DefaultCap())
}

// SortWorkers is Sort with an explicit worker count, normalized like every
// parallel entry point; values below 2 sort serially.
func (pl *PairList) SortWorkers(workers int) {
	if pl.sorted {
		return
	}
	par.SortFunc(pl.Pairs, workers, cmpPairs)
	pl.sorted = true
}

// SortWorkersCtx is SortWorkers with cooperative cancellation and panic
// isolation: it returns nil with the list sorted (and the sorted flag set);
// ctx.Err() on cancellation, leaving the flag clear and the pairs an
// unspecified permutation (callers must treat the list as unsorted); or a
// *par.WorkerPanicError if the comparator panicked, in which case the list
// contents are unspecified and the run must be abandoned.
func (pl *PairList) SortWorkersCtx(ctx context.Context, workers int) error {
	if pl.sorted {
		return ctx.Err()
	}
	if err := par.SortFuncCtx(ctx, pl.Pairs, workers, cmpPairs); err != nil {
		return err
	}
	pl.sorted = true
	return nil
}

// Sorted reports whether Sort has run.
func (pl *PairList) Sorted() bool { return pl.sorted }

// Invalidate clears the cached sort state. Call it after mutating Pairs in
// place (reordering entries, rewriting similarities) so the next Sort
// actually re-sorts instead of trusting the stale flag.
func (pl *PairList) Invalidate() { pl.sorted = false }

// link is one node of the per-pair common-neighbor linked list used during
// accumulation by the legacy hash-map kernel; lists are materialized into a
// contiguous arena at finalize.
type link struct {
	v    int32
	next int32 // index into links, -1 terminates
}

// accumEntry is the in-progress value of one map-M key.
type accumEntry struct {
	u, v int32
	dot  float64
	head int32 // first link, -1 when none
	n    int32 // number of common neighbors
}

// accumulator builds map M incrementally through a global hash map — the
// legacy kernel, kept as the reference implementation the wedge-major
// kernel is differentially tested against. Each worker of the legacy
// parallel initialization owns one; mergeFrom combines them (Section VI-A,
// pass 2, step 2).
type accumulator struct {
	idx     map[uint64]int32 // packed pair -> entries index
	entries []accumEntry
	links   []link
}

func newAccumulator(hint int) *accumulator {
	return &accumulator{idx: make(map[uint64]int32, hint)}
}

func packPair(u, v int32) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// add accumulates one weight product and one common neighbor for the pair
// (u, v), which must satisfy u < v.
func (a *accumulator) add(u, v int32, prod float64, common int32) {
	key := packPair(u, v)
	i, ok := a.idx[key]
	if !ok {
		i = int32(len(a.entries))
		a.idx[key] = i
		a.entries = append(a.entries, accumEntry{u: u, v: v, head: -1})
	}
	e := &a.entries[i]
	e.dot += prod
	a.links = append(a.links, link{v: common, next: e.head})
	e.head = int32(len(a.links) - 1)
	e.n++
}

// addDot adds to the inner product of an existing pair without contributing
// a common neighbor (pass 3 of Algorithm 1). Pairs not already present are
// ignored, mirroring the "if (vi,vj) is a key of map M" guard.
func (a *accumulator) addDot(u, v int32, prod float64) {
	if i, ok := a.idx[packPair(u, v)]; ok {
		a.entries[i].dot += prod
	}
}

// mergeFrom folds b into a. b's link indices are rebased into a's arena.
func (a *accumulator) mergeFrom(b *accumulator) {
	for _, be := range b.entries {
		key := packPair(be.u, be.v)
		i, ok := a.idx[key]
		if !ok {
			i = int32(len(a.entries))
			a.idx[key] = i
			a.entries = append(a.entries, accumEntry{u: be.u, v: be.v, head: -1})
		}
		e := &a.entries[i]
		e.dot += be.dot
		for li := be.head; li >= 0; li = b.links[li].next {
			a.links = append(a.links, link{v: b.links[li].v, next: e.head})
			e.head = int32(len(a.links) - 1)
			e.n++
		}
	}
}

// vertexNorms computes H1 (average incident weight, the diagonal term Ã_ii)
// and H2 (|a_i|²) for vertices lo <= v < hi — pass 1 of Algorithm 1.
func vertexNorms(g *graph.Graph, h1, h2 []float64, lo, hi int) {
	for v := lo; v < hi; v++ {
		nb := g.Neighbors(v)
		if len(nb) == 0 {
			continue
		}
		var sum, sumSq float64
		for _, h := range nb {
			sum += h.Weight
			sumSq += h.Weight * h.Weight
		}
		avg := sum / float64(len(nb))
		h1[v] = avg
		h2[v] = avg*avg + sumSq
	}
}

// accumulateCommon runs pass 2 of Algorithm 1 for vertices lo <= v < hi:
// every ordered neighbor pair (vj < vk) of v contributes w_vj·w_vk and the
// common neighbor v to pair (vj, vk).
func accumulateCommon(g *graph.Graph, acc *accumulator, lo, hi int) {
	for v := lo; v < hi; v++ {
		nb := g.Neighbors(v)
		for j := 0; j < len(nb); j++ {
			for k := j + 1; k < len(nb); k++ {
				// Adjacency is sorted, so nb[j].To < nb[k].To.
				acc.add(nb[j].To, nb[k].To, nb[j].Weight*nb[k].Weight, int32(v))
			}
		}
	}
}

// finalize applies pass 3 (the (H1[i]+H1[j])·w_ij diagonal contribution for
// vertex pairs that are edges) and the closing similarity normalization of
// Algorithm 1, and materializes the PairList.
func (a *accumulator) finalize(g *graph.Graph, h1, h2 []float64) *PairList {
	for _, e := range g.Edges() {
		a.addDot(e.U, e.V, (h1[e.U]+h1[e.V])*e.Weight)
	}
	return a.materialize(h2)
}

// materialize converts the accumulator into a PairList, computing the
// Tanimoto score sim = dot / (H2[u] + H2[v] - dot) for every pair.
func (a *accumulator) materialize(h2 []float64) *PairList {
	arena := make([]int32, 0, len(a.links))
	pairs := make([]Pair, len(a.entries))
	for i := range a.entries {
		e := &a.entries[i]
		start := len(arena)
		for li := e.head; li >= 0; li = a.links[li].next {
			arena = append(arena, a.links[li].v)
		}
		common := arena[start : start+int(e.n)]
		// The linked list reversed insertion order; restore ascending
		// order for determinism.
		slices.Sort(common)
		pairs[i] = Pair{
			U:      e.u,
			V:      e.v,
			Sim:    e.dot / (h2[e.u] + h2[e.v] - e.dot),
			Common: common,
		}
	}
	return &PairList{Pairs: pairs}
}

// Similarity runs Algorithm 1 serially with the wedge-major (Gustavson)
// kernel, producing the similarity-annotated pair list (map M). The result
// is deterministic: pairs appear in (U, V)-lexicographic order until Sort
// is called.
func Similarity(g *graph.Graph) *PairList {
	return SimilarityRecorded(g, nil)
}

// SimilarityRecorded is Similarity with optional instrumentation: per-pass
// phase timers and the K1/K2 counters are recorded into rec. A nil rec
// records nothing and adds no measurable overhead.
func SimilarityRecorded(g *graph.Graph, rec *obs.Recorder) *PairList {
	return SimilarityWedgeRecorded(g, rec)
}

// SimilarityLegacy runs Algorithm 1 serially through the original global
// hash-map accumulator. It is retained as the differential-testing
// reference and as the baseline of the kernel benchmarks; Similarity (the
// wedge-major kernel) produces element-wise identical output after Sort,
// with bitwise-equal similarities. Pairs appear in first-encounter order
// (vertex-major by common neighbor).
func SimilarityLegacy(g *graph.Graph) *PairList {
	return SimilarityLegacyRecorded(g, nil)
}

// SimilarityLegacyRecorded is SimilarityLegacy with optional
// instrumentation.
func SimilarityLegacyRecorded(g *graph.Graph, rec *obs.Recorder) *PairList {
	end := rec.Phase("similarity")
	defer end()
	n := g.NumVertices()
	h1 := make([]float64, n)
	h2 := make([]float64, n)
	endPass := rec.Phase("pass1-norms")
	vertexNorms(g, h1, h2, 0, n)
	endPass()
	acc := newAccumulator(g.NumEdges())
	endPass = rec.Phase("pass2-common")
	accumulateCommon(g, acc, 0, n)
	endPass()
	endPass = rec.Phase("pass3-finalize")
	pl := acc.finalize(g, h1, h2)
	endPass()
	recordPairListStats(rec, pl)
	return pl
}

// recordPairListStats records the K1/K2 counters of a finished
// initialization phase.
func recordPairListStats(rec *obs.Recorder, pl *PairList) {
	if rec == nil {
		return
	}
	rec.Add(CtrSimilarityPairs, int64(len(pl.Pairs)))
	rec.Add(CtrSimilarityIncidentPairs, pl.NumIncidentPairs())
}
