package core

import "linkclust/internal/graph"

// Cache-blocked variant of the wedge-major row kernel.
//
// enumerateRow walks each neighbor k's full suffix before moving to the next
// k, so a hub row whose candidates span a wide id range strides across the
// dense scratch arrays (dot/cnt ~12 bytes per candidate) once per neighbor —
// on large graphs that is deg(u) passes over a working set far beyond L2,
// and every pass misses. The blocked kernel tiles the CANDIDATE space
// instead: per-neighbor cursors advance in lockstep through blocks of
// wedgeBlockV candidate ids, so all deg(u) suffix fragments that touch one
// block are processed while that block's scratch lines are resident (the
// BigClam row-cache fix mapped onto Gustavson row accumulation).
//
// Output is bitwise identical to enumerateRow for any block width: within a
// block neighbors are visited in ascending k, and a candidate v lives in
// exactly one block, so the per-(u,v) contribution order — the only order
// float accumulation and the common-list scatter depend on — is still
// ascending k. The touched list's first-touch order differs, but emitRow
// sorts it before any output is produced. The blocked/straight choice is a
// pure function of the row's structure (degree and candidate span), never of
// workers, so it cannot perturb determinism even indirectly.
var (
	// wedgeBlockV is the tile width in candidate vertex ids. At 8192
	// candidates the hot scratch per block (dot 8B + cnt 4B + pos 8B + wTo
	// 8B) is ~224 KiB — sized for a conventional 256 KiB+ L2. A var, not a
	// const, so tests can shrink it to force many blocks on small graphs.
	wedgeBlockV = int32(8192)
	// wedgeBlockedMinDeg is the row-degree floor for the blocked kernel:
	// below it the cursor bookkeeping costs more than the strides it saves.
	wedgeBlockedMinDeg = 8
	// wedgeBlockedMinSpanBlocks is the candidate-span floor, in block
	// widths: rows whose candidates already fit a couple of blocks are
	// cache-resident under the straight kernel.
	wedgeBlockedMinSpanBlocks = int32(2)
)

// enumerateRowDispatch routes row u to the blocked or the straight kernel on
// a structural gate. Both produce bitwise-identical scratch state.
func (ra *rowAccum) enumerateRowDispatch(g *graph.Graph, u int) int {
	if len(g.Neighbors(u)) >= wedgeBlockedMinDeg {
		return ra.enumerateRowBlocked(g, u)
	}
	return ra.enumerateRow(g, u)
}

// enumerateRowBlocked is enumerateRow with candidate-space tiling. It leaves
// exactly the scratch state enumerateRow would (same dot/cnt values, same
// per-v ascending-k wedge log, same wTo marks) and returns the same wedge
// count; the caller follows with emitRow/resetMarks as usual.
func (ra *rowAccum) enumerateRowBlocked(g *graph.Graph, u int) int {
	ra.touched = ra.touched[:0]
	ra.ks = ra.ks[:0]
	ra.vs = ra.vs[:0]
	uu := int32(u)
	nbk := g.Neighbors(u)
	ra.nbs = ra.nbs[:0]
	ra.cur = ra.cur[:0]
	minV, maxV := int32(-1), int32(-1)
	for _, hk := range nbk {
		ra.wTo[hk.To] = hk.Weight
		nb := g.Neighbors(int(hk.To))
		c := firstAfter(nb, uu)
		ra.nbs = append(ra.nbs, nb)
		ra.cur = append(ra.cur, int32(c))
		if c < len(nb) {
			if first := nb[c].To; minV == -1 || first < minV {
				minV = first
			}
			if last := nb[len(nb)-1].To; last > maxV {
				maxV = last
			}
		}
	}
	if minV == -1 {
		return 0 // no candidates beyond u anywhere
	}
	if int64(maxV)-int64(minV) < int64(wedgeBlockedMinSpanBlocks)*int64(wedgeBlockV) {
		// Narrow span: every candidate fits the resident tile already, so
		// run the cursors straight through (identical to enumerateRow).
		for i, hk := range nbk {
			k, wk := hk.To, hk.Weight
			nb := ra.nbs[i]
			for c := int(ra.cur[i]); c < len(nb); c++ {
				hv := nb[c]
				v := hv.To
				if ra.cnt[v] == 0 {
					ra.touched = append(ra.touched, v)
				}
				ra.cnt[v]++
				// Two statements — see the FMA note in enumerateRow.
				prod := wk * hv.Weight
				ra.dot[v] += prod
				ra.ks = append(ra.ks, k)
				ra.vs = append(ra.vs, v)
			}
		}
		return len(ra.ks)
	}
	for {
		// Process candidates [minV, minV+blockV) across all neighbors, then
		// jump to the smallest remaining candidate — empty blocks are never
		// visited, so sparse hub rows do not pay for their id-space holes.
		hi := int64(minV) + int64(wedgeBlockV)
		nextMin := int32(-1)
		for i, hk := range nbk {
			k, wk := hk.To, hk.Weight
			nb := ra.nbs[i]
			c := int(ra.cur[i])
			for c < len(nb) && int64(nb[c].To) < hi {
				hv := nb[c]
				v := hv.To
				if ra.cnt[v] == 0 {
					ra.touched = append(ra.touched, v)
				}
				ra.cnt[v]++
				// Two statements — see the FMA note in enumerateRow.
				prod := wk * hv.Weight
				ra.dot[v] += prod
				ra.ks = append(ra.ks, k)
				ra.vs = append(ra.vs, v)
				c++
			}
			ra.cur[i] = int32(c)
			if c < len(nb) && (nextMin == -1 || nb[c].To < nextMin) {
				nextMin = nb[c].To
			}
		}
		if nextMin == -1 {
			return len(ra.ks)
		}
		minV = nextMin
	}
}
