package core

import (
	"fmt"
	"testing"
)

// forceBlockedKernel shrinks the blocked kernel's structural gates so every
// row with candidates takes the blocked path cut into many tiny tiles, and
// returns a restore function. The gate vars are read only by synchronous
// kernel calls, so set/restore around them is race-free.
func forceBlockedKernel() (restore func()) {
	oldV, oldDeg, oldSpan := wedgeBlockV, wedgeBlockedMinDeg, wedgeBlockedMinSpanBlocks
	wedgeBlockV, wedgeBlockedMinDeg, wedgeBlockedMinSpanBlocks = 8, 1, 1
	return func() {
		wedgeBlockV, wedgeBlockedMinDeg, wedgeBlockedMinSpanBlocks = oldV, oldDeg, oldSpan
	}
}

// TestWedgeBlockedForcedDifferential forces the blocked kernel onto every row
// with 8-id tiles and requires bitwise-identical output to the unblocked
// kernel on every graph family — pre-Sort master order included — serially
// and at several worker counts.
func TestWedgeBlockedForcedDifferential(t *testing.T) {
	for name, g := range wedgeTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			plain := Similarity(g) // default gates: small rows run unblocked
			restore := forceBlockedKernel()
			defer restore()
			blocked := Similarity(g)
			requireIdenticalPreSort(t, "forced-blocked vs unblocked", blocked, plain)
			for _, workers := range []int{2, 8} {
				pb := SimilarityParallel(g, workers)
				requireIdenticalPreSort(t, fmt.Sprintf("forced-blocked parallel T=%d", workers), pb, plain)
			}
		})
	}
}

// TestWedgeBlockedScratchClean extends the reset discipline check to the
// blocked path: after forced-blocked runs over a dense graph, the shared
// dense scratch must be spotless.
func TestWedgeBlockedScratchClean(t *testing.T) {
	restore := forceBlockedKernel()
	defer restore()
	for name, g := range wedgeTestGraphs(t) {
		n := g.NumVertices()
		if n == 0 {
			continue
		}
		ra := newRowAccum(n)
		for u := 0; u < n; u++ {
			if w := ra.enumerateRowDispatch(g, u); w > 0 {
				pairs := make([]Pair, len(ra.touched))
				commons := make([]int32, w)
				h := make([]float64, n)
				ra.emitRow(u, h, h, pairs, commons)
			}
			ra.resetMarks(g, u)
		}
		for v := 0; v < n; v++ {
			if ra.dot[v] != 0 || ra.cnt[v] != 0 || ra.wTo[v] != 0 {
				t.Fatalf("%s: scratch dirty at %d: dot=%v cnt=%d wTo=%v", name, v, ra.dot[v], ra.cnt[v], ra.wTo[v])
			}
		}
	}
}
