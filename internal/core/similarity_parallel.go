package core

import (
	"slices"
	"sync"

	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/par"
)

// SimilarityParallel runs Algorithm 1 multi-threaded with the wedge-major
// kernel: rows of map M partition disjointly across workers, a count pass
// sizes the CSR layout and a fill pass writes every row into precomputed
// slots, with no map-merge phase and no edge rescan (see similarity_wedge.go).
//
// The resulting PairList contains exactly the same pairs, similarities and
// common-neighbor sets as Similarity(g) — bitwise, for any worker count.
//
// The workers argument is normalized like every parallel entry point of the
// pipeline: values below 2 (after clamping) run the serial implementation,
// values above max(runtime.GOMAXPROCS(0), runtime.NumCPU()) are clamped to that cap.
func SimilarityParallel(g *graph.Graph, workers int) *PairList {
	return SimilarityParallelRecorded(g, workers, nil)
}

// SimilarityParallelRecorded is SimilarityParallel with optional
// instrumentation: per-pass phase timers and the K1/K2 counters are
// recorded into rec. A nil rec records nothing.
func SimilarityParallelRecorded(g *graph.Graph, workers int, rec *obs.Recorder) *PairList {
	return SimilarityWedgeParallelRecorded(g, workers, rec)
}

// SimilarityParallelLegacy runs Algorithm 1 with the original
// multi-threaded scheme of Section VI-A, kept as the fallback/reference the
// wedge-major kernel is benchmarked and differentially tested against:
//
//   - pass 1 partitions the vertices round-robin across workers (disjoint
//     writes to H1/H2);
//   - pass 2 gives each worker a private hash-map accumulator over its
//     vertex set, then merges the per-worker maps pairwise and
//     hierarchically until at most three remain, which a single worker
//     folds together;
//   - pass 3 buckets the edge list by owning worker once, then each worker
//     applies the diagonal term to its own bucket's entries — no worker
//     rescans the full edge list;
//   - the closing normalization/materialization is partitioned by entry
//     ranges with precomputed arena offsets.
//
// The resulting PairList contains exactly the same pairs, similarities and
// common-neighbor sets as SimilarityLegacy(g); after Sort the two are
// identical element-wise.
//
// The workers argument is normalized exactly as in SimilarityParallel.
func SimilarityParallelLegacy(g *graph.Graph, workers int) *PairList {
	return SimilarityParallelLegacyRecorded(g, workers, nil)
}

// SimilarityParallelLegacyRecorded is SimilarityParallelLegacy with
// optional instrumentation.
func SimilarityParallelLegacyRecorded(g *graph.Graph, workers int, rec *obs.Recorder) *PairList {
	workers = par.Normalize(workers)
	if workers < 2 {
		return SimilarityLegacyRecorded(g, rec)
	}
	end := rec.Phase("similarity")
	defer end()
	n := g.NumVertices()
	h1 := make([]float64, n)
	h2 := make([]float64, n)

	// Pass 1: round-robin vertex partition.
	endPass := rec.Phase("pass1-norms")
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for v := t; v < n; v += workers {
				vertexNorms(g, h1, h2, v, v+1)
			}
		}(t)
	}
	wg.Wait()
	endPass()

	// Pass 2, step 1: per-worker accumulators over round-robin vertices.
	endPass = rec.Phase("pass2-common")
	accs := make([]*accumulator, workers)
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			acc := newAccumulator(g.NumEdges() / workers)
			for v := t; v < n; v += workers {
				accumulateCommon(g, acc, v, v+1)
			}
			accs[t] = acc
		}(t)
	}
	wg.Wait()
	endPass()

	// Pass 2, step 2: hierarchical pairwise merge; a single worker folds
	// the final <= 3 maps (the paper's T=6 walkthrough).
	endPass = rec.Phase("pass2-merge-maps")
	for len(accs) > 3 {
		half := len(accs) / 2
		for i := 0; i < half; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				accs[2*i].mergeFrom(accs[2*i+1])
			}(i)
		}
		wg.Wait()
		next := make([]*accumulator, 0, half+1)
		for i := 0; i < half; i++ {
			next = append(next, accs[2*i])
		}
		if len(accs)%2 == 1 {
			next = append(next, accs[len(accs)-1])
		}
		accs = next
	}
	acc := accs[0]
	for _, other := range accs[1:] {
		acc.mergeFrom(other)
	}
	endPass()

	// Pass 3: edges are bucketed by owning worker (first vertex mod
	// workers) in one O(|E|) pass, then worker t applies the diagonal term
	// to its own bucket only. The historical scheme had every worker scan
	// the full edge list and skip foreign edges — O(workers·|E|) total
	// filter work; bucketing makes the pass O(|E|) overall. Map reads are
	// concurrent-safe and entry writes stay disjoint.
	endPass = rec.Phase("pass3-dot")
	edges := g.Edges()
	counts := make([]int32, workers)
	for i := range edges {
		counts[int(edges[i].U)%workers]++
	}
	buckets := make([][]int32, workers)
	for t := range buckets {
		buckets[t] = make([]int32, 0, counts[t])
	}
	for i := range edges {
		t := int(edges[i].U) % workers
		buckets[t] = append(buckets[t], int32(i))
	}
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(bucket []int32) {
			defer wg.Done()
			for _, i := range bucket {
				e := &edges[i]
				acc.addDot(e.U, e.V, (h1[e.U]+h1[e.V])*e.Weight)
			}
		}(buckets[t])
	}
	wg.Wait()
	endPass()

	endPass = rec.Phase("materialize")
	pl := acc.materializeParallel(h2, workers)
	endPass()
	recordPairListStats(rec, pl)
	return pl
}

// materializeParallel is materialize with the per-entry work split across
// workers using precomputed arena offsets.
func (a *accumulator) materializeParallel(h2 []float64, workers int) *PairList {
	offsets := make([]int64, len(a.entries)+1)
	for i := range a.entries {
		offsets[i+1] = offsets[i] + int64(a.entries[i].n)
	}
	arena := make([]int32, offsets[len(a.entries)])
	pairs := make([]Pair, len(a.entries))

	var wg sync.WaitGroup
	chunk := (len(a.entries) + workers - 1) / workers
	for t := 0; t < workers; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > len(a.entries) {
			hi = len(a.entries)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				e := &a.entries[i]
				common := arena[offsets[i]:offsets[i+1]:offsets[i+1]]
				common = common[:0]
				for li := e.head; li >= 0; li = a.links[li].next {
					common = append(common, a.links[li].v)
				}
				slices.Sort(common)
				pairs[i] = Pair{
					U:      e.u,
					V:      e.v,
					Sim:    e.dot / (h2[e.u] + h2[e.v] - e.dot),
					Common: common,
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return &PairList{Pairs: pairs}
}
