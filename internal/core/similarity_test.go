package core

import (
	"math"
	"testing"

	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

// findPair returns the pair (u,v) from pl, canonicalizing order.
func findPair(t *testing.T, pl *PairList, u, v int32) *Pair {
	t.Helper()
	if u > v {
		u, v = v, u
	}
	for i := range pl.Pairs {
		if pl.Pairs[i].U == u && pl.Pairs[i].V == v {
			return &pl.Pairs[i]
		}
	}
	t.Fatalf("pair (%d,%d) not found", u, v)
	return nil
}

func TestSimilarityPaperExample(t *testing.T) {
	// K_{2,4} with unit weights: hubs 0,1 (degree 4, H2 = 1+4 = 5),
	// leaves 2..5 (degree 2, H2 = 1+2 = 3).
	g := graph.PaperExample()
	pl := Similarity(g)
	if len(pl.Pairs) != 7 {
		t.Fatalf("|M| = %d, want K1 = 7", len(pl.Pairs))
	}
	// Hub pair (0,1): dot = 4 common unit products, not adjacent.
	hub := findPair(t, pl, 0, 1)
	if want := 4.0 / (5 + 5 - 4); math.Abs(hub.Sim-want) > 1e-15 {
		t.Errorf("hub pair sim = %v, want %v", hub.Sim, want)
	}
	if len(hub.Common) != 4 {
		t.Errorf("hub pair commons = %v, want the 4 leaves", hub.Common)
	}
	// Leaf pairs: dot = 2, not adjacent.
	for u := int32(2); u <= 5; u++ {
		for v := u + 1; v <= 5; v++ {
			p := findPair(t, pl, u, v)
			if want := 2.0 / (3 + 3 - 2); math.Abs(p.Sim-want) > 1e-15 {
				t.Errorf("leaf pair (%d,%d) sim = %v, want %v", u, v, p.Sim, want)
			}
			if len(p.Common) != 2 || p.Common[0] != 0 || p.Common[1] != 1 {
				t.Errorf("leaf pair (%d,%d) commons = %v, want [0 1]", u, v, p.Common)
			}
		}
	}
	if n := pl.NumIncidentPairs(); n != 16 {
		t.Errorf("incident pairs = %d, want K2 = 16", n)
	}
}

func TestSimilarityTriangleWithAdjacency(t *testing.T) {
	// A triangle exercises pass 3: every pair is adjacent AND shares a
	// common neighbor. Weights: w01=1, w02=2, w12=3.
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(0, 2, 2)
	b.MustAddEdge(1, 2, 3)
	g := b.Build(nil)
	pl := Similarity(g)
	if len(pl.Pairs) != 3 {
		t.Fatalf("|M| = %d, want 3", len(pl.Pairs))
	}
	// Vectors per Eq. 2 (index order 0,1,2):
	// a_0 = (1.5, 1, 2), a_1 = (1, 2, 3), a_2 = (2, 3, 2.5)
	vec := [3][3]float64{
		{1.5, 1, 2},
		{1, 2, 3},
		{2, 3, 2.5},
	}
	dot := func(u, v int) float64 {
		var s float64
		for k := 0; k < 3; k++ {
			s += vec[u][k] * vec[v][k]
		}
		return s
	}
	for _, tc := range [][2]int32{{0, 1}, {0, 2}, {1, 2}} {
		u, v := int(tc[0]), int(tc[1])
		want := dot(u, v) / (dot(u, u) + dot(v, v) - dot(u, v))
		p := findPair(t, pl, tc[0], tc[1])
		if math.Abs(p.Sim-want) > 1e-12 {
			t.Errorf("pair (%d,%d) sim = %v, want %v", u, v, p.Sim, want)
		}
	}
}

// bruteForcePairs computes map M and the Eq. (1) similarities directly from
// the Ã vectors, in O(|V|³).
func bruteForcePairs(g *graph.Graph) map[[2]int32]float64 {
	n := g.NumVertices()
	vec := make([][]float64, n)
	for i := 0; i < n; i++ {
		vec[i] = make([]float64, n)
		nb := g.Neighbors(i)
		if len(nb) == 0 {
			continue
		}
		sum := 0.0
		for _, h := range nb {
			vec[i][h.To] = h.Weight
			sum += h.Weight
		}
		vec[i][i] = sum / float64(len(nb))
	}
	dot := func(u, v int) float64 {
		var s float64
		for k := 0; k < n; k++ {
			s += vec[u][k] * vec[v][k]
		}
		return s
	}
	hasCommon := func(u, v int) bool {
		for _, a := range g.Neighbors(u) {
			for _, b := range g.Neighbors(v) {
				if a.To == b.To {
					return true
				}
			}
		}
		return false
	}
	out := make(map[[2]int32]float64)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !hasCommon(u, v) {
				continue
			}
			d := dot(u, v)
			out[[2]int32{int32(u), int32(v)}] = d / (dot(u, u) + dot(v, v) - d)
		}
	}
	return out
}

func TestSimilarityMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		src := rng.New(seed)
		g := graph.ErdosRenyi(25, 0.25, src)
		want := bruteForcePairs(g)
		pl := Similarity(g)
		if len(pl.Pairs) != len(want) {
			t.Fatalf("seed %d: |M| = %d, brute force %d", seed, len(pl.Pairs), len(want))
		}
		for i := range pl.Pairs {
			p := &pl.Pairs[i]
			w, ok := want[[2]int32{p.U, p.V}]
			if !ok {
				t.Fatalf("seed %d: unexpected pair (%d,%d)", seed, p.U, p.V)
			}
			if math.Abs(p.Sim-w) > 1e-9*math.Max(1, math.Abs(w)) {
				t.Fatalf("seed %d: pair (%d,%d) sim %v, want %v", seed, p.U, p.V, p.Sim, w)
			}
		}
	}
}

func TestSimilaritySimRange(t *testing.T) {
	// Tanimoto similarity of non-negative vectors lies in (0, 1].
	g := graph.ErdosRenyi(40, 0.2, rng.New(3))
	pl := Similarity(g)
	for i := range pl.Pairs {
		s := pl.Pairs[i].Sim
		if s <= 0 || s > 1+1e-12 || math.IsNaN(s) {
			t.Fatalf("pair %d sim %v outside (0,1]", i, s)
		}
	}
}

func TestSimilarityEmptyAndEdgeless(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewBuilder(0).Build(nil),
		graph.NewBuilder(5).Build(nil),
		graph.DisjointEdges(4), // K1 = K2 = 0: no pairs at all
	} {
		pl := Similarity(g)
		if len(pl.Pairs) != 0 {
			t.Fatalf("graph with no incident pairs produced %d pairs", len(pl.Pairs))
		}
	}
}

func TestSimilarityCommonSorted(t *testing.T) {
	g := graph.ErdosRenyi(30, 0.3, rng.New(8))
	pl := Similarity(g)
	for i := range pl.Pairs {
		c := pl.Pairs[i].Common
		for j := 1; j < len(c); j++ {
			if c[j-1] >= c[j] {
				t.Fatalf("pair %d commons not ascending: %v", i, c)
			}
		}
	}
}

func TestPairListSort(t *testing.T) {
	g := graph.ErdosRenyi(30, 0.3, rng.New(4))
	pl := Similarity(g)
	pl.Sort()
	if !pl.Sorted() {
		t.Fatal("Sorted() false after Sort")
	}
	for i := 1; i < len(pl.Pairs); i++ {
		a, b := &pl.Pairs[i-1], &pl.Pairs[i]
		if a.Sim < b.Sim {
			t.Fatalf("pairs %d,%d out of order: %v < %v", i-1, i, a.Sim, b.Sim)
		}
		if a.Sim == b.Sim && (a.U > b.U || (a.U == b.U && a.V >= b.V)) {
			t.Fatalf("tie at %d broken wrongly", i)
		}
	}
}

// TestPairListInvalidate is the regression test for the stale sorted flag:
// Sort is a no-op once the flag is set, so callers that mutate Pairs in
// place must Invalidate before re-sorting or the list silently stays in the
// mutated (wrong) order.
func TestPairListInvalidate(t *testing.T) {
	g := graph.ErdosRenyi(30, 0.3, rng.New(4))
	pl := Similarity(g)
	pl.Sort()
	if len(pl.Pairs) < 3 {
		t.Fatal("workload too small to exercise the regression")
	}
	// Mutate the slice behind Sort's back: reverse into ascending order.
	for i, j := 0, len(pl.Pairs)-1; i < j; i, j = i+1, j-1 {
		pl.Pairs[i], pl.Pairs[j] = pl.Pairs[j], pl.Pairs[i]
	}
	// The stale flag makes this Sort a silent no-op — the historical bug.
	pl.Sort()
	if pl.Pairs[0].Sim >= pl.Pairs[len(pl.Pairs)-1].Sim {
		t.Fatal("mutation did not disorder the list; test is vacuous")
	}
	pl.Invalidate()
	if pl.Sorted() {
		t.Fatal("Sorted() still true after Invalidate")
	}
	pl.Sort()
	if !pl.Sorted() {
		t.Fatal("Sorted() false after re-Sort")
	}
	for i := 1; i < len(pl.Pairs); i++ {
		if pl.Pairs[i-1].Sim < pl.Pairs[i].Sim {
			t.Fatalf("pairs %d,%d out of order after Invalidate+Sort", i-1, i)
		}
	}
}

func TestSimilarityParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		g := graph.ErdosRenyi(60, 0.15, rng.New(seed))
		serial := Similarity(g)
		serial.Sort()
		for _, workers := range []int{2, 3, 4, 7} {
			par := SimilarityParallel(g, workers)
			par.Sort()
			if len(par.Pairs) != len(serial.Pairs) {
				t.Fatalf("workers=%d: %d pairs, want %d", workers, len(par.Pairs), len(serial.Pairs))
			}
			for i := range serial.Pairs {
				s, p := &serial.Pairs[i], &par.Pairs[i]
				if s.U != p.U || s.V != p.V {
					t.Fatalf("workers=%d pair %d: (%d,%d) vs (%d,%d)", workers, i, s.U, s.V, p.U, p.V)
				}
				if math.Abs(s.Sim-p.Sim) > 1e-12 {
					t.Fatalf("workers=%d pair %d: sim %v vs %v", workers, i, s.Sim, p.Sim)
				}
				if len(s.Common) != len(p.Common) {
					t.Fatalf("workers=%d pair %d: commons %v vs %v", workers, i, s.Common, p.Common)
				}
				for j := range s.Common {
					if s.Common[j] != p.Common[j] {
						t.Fatalf("workers=%d pair %d: commons %v vs %v", workers, i, s.Common, p.Common)
					}
				}
			}
		}
	}
}

func TestSimilarityParallelFallback(t *testing.T) {
	g := graph.PaperExample()
	pl := SimilarityParallel(g, 1)
	if len(pl.Pairs) != 7 {
		t.Fatalf("workers=1 fallback produced %d pairs", len(pl.Pairs))
	}
	pl = SimilarityParallel(g, 0)
	if len(pl.Pairs) != 7 {
		t.Fatalf("workers=0 fallback produced %d pairs", len(pl.Pairs))
	}
}

func TestSimilarityParallelMoreWorkersThanVertices(t *testing.T) {
	g := graph.Complete(4)
	pl := SimilarityParallel(g, 16)
	serial := Similarity(g)
	if len(pl.Pairs) != len(serial.Pairs) {
		t.Fatalf("%d pairs, want %d", len(pl.Pairs), len(serial.Pairs))
	}
}

// TestSimilarityUnweightedIsJaccard: with unit weights, the Tanimoto
// coefficient of Eq. (1)-(2) reduces to Ahn et al.'s original Jaccard
// similarity of inclusive neighborhoods,
// |n+(i) ∩ n+(j)| / |n+(i) ∪ n+(j)| — the vectors become indicator vectors.
func TestSimilarityUnweightedIsJaccard(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		src := rng.New(seed)
		b := graph.NewBuilder(30)
		for u := 0; u < 30; u++ {
			for v := u + 1; v < 30; v++ {
				if src.Float64() < 0.2 {
					b.MustAddEdge(u, v, 1)
				}
			}
		}
		g := b.Build(nil)
		incl := make([]map[int32]bool, g.NumVertices())
		for v := 0; v < g.NumVertices(); v++ {
			incl[v] = map[int32]bool{int32(v): true}
			for _, h := range g.Neighbors(v) {
				incl[v][h.To] = true
			}
		}
		pl := Similarity(g)
		for i := range pl.Pairs {
			p := &pl.Pairs[i]
			inter := 0
			for k := range incl[p.U] {
				if incl[p.V][k] {
					inter++
				}
			}
			union := len(incl[p.U]) + len(incl[p.V]) - inter
			want := float64(inter) / float64(union)
			if math.Abs(p.Sim-want) > 1e-12 {
				t.Fatalf("seed %d pair (%d,%d): sim %v, Jaccard %v", seed, p.U, p.V, p.Sim, want)
			}
		}
	}
}
