package core

import (
	"context"
	"fmt"
	"slices"
	"sync/atomic"

	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/par"
)

// Wedge-major (Gustavson/SPA) implementation of Algorithm 1.
//
// The legacy implementation (similarityLegacyRecorded) is vertex-major over
// the *common neighbor*: for every vertex v, each ordered neighbor pair
// (vj, vk) of v contributes to map-M key (vj, vk) through a global hash-map
// accumulator. That funnels every one of the K2 wedge contributions through
// a map lookup, a linked-list append, and — in the parallel path — a
// hierarchical merge of per-worker maps.
//
// The wedge-major kernel instead groups work by the *smaller endpoint* u of
// each map key: for every neighbor k of u and every neighbor v > u of k,
// the wedge (u, k, v) contributes w_uk·w_kv and common neighbor k to pair
// (u, v). All contributions to row u therefore land in a per-row sparse
// accumulator — dense scratch arrays of size |V| with a touched-list reset
// in O(row) — exactly Gustavson's sparse-matrix row accumulation. Rows
// partition disjointly across workers, so the parallel path needs no hash
// map, no link arena, and no merge phase at all: a count pass sizes a
// CSR-style layout (per-row pair and wedge offsets), and a fill pass writes
// every row into its precomputed slots. The diagonal (H1) term of pass 3 is
// applied inline by each row's owner, eliminating the full-edge rescans of
// the legacy parallel path.
//
// For a fixed pair (u, v) both implementations accumulate contributions in
// ascending order of the common neighbor and apply the diagonal term last,
// so similarities are bitwise identical to the legacy serial kernel, for
// any worker count.

// rowAccum is the per-worker sparse accumulator (SPA). The dense arrays are
// indexed by candidate far endpoint v and are valid only for entries on the
// touched list; every row resets exactly the entries it dirtied.
type rowAccum struct {
	dot     []float64 // accumulated inner product per candidate v
	cnt     []int32   // common-neighbor count per candidate v
	pos     []int64   // scatter cursor into the row's common region
	wTo     []float64 // weight of edge (u, v) for v adjacent to the row owner
	touched []int32   // candidate v's touched this row, first-touch order
	ks      []int32   // wedge centers k, in enumeration (ascending-k) order
	vs      []int32   // wedge far endpoints v, parallel to ks

	// Blocked-kernel scratch (see similarity_blocked.go): cached neighbor
	// slices and per-neighbor suffix cursors of the current row.
	nbs [][]graph.Half
	cur []int32

	// Relabeled-kernel scratch (see relabel.go): the per-wedge product log
	// parallel to ks/vs, the per-row product scatter region, and the
	// region-sort buffers.
	ps   []float64
	pr   []float64
	idx  []int32
	kTmp []int32
	pTmp []float64
}

func newRowAccum(n int) *rowAccum {
	return &rowAccum{
		dot: make([]float64, n),
		cnt: make([]int32, n),
		pos: make([]int64, n),
		wTo: make([]float64, n),
	}
}

// firstAfter returns the index of the first neighbor with id greater than u.
// Adjacency lists are sorted by To, so the suffix from this index holds
// exactly the far endpoints v > u.
func firstAfter(nb []graph.Half, u int32) int {
	lo, hi := 0, len(nb)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if nb[m].To <= u {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// countRow enumerates row u's wedges counting distinct pairs and total
// wedges, leaving the scratch clean. It is the cheap sizing pass of the
// parallel kernel: no dot accumulation, no wedge recording.
func (ra *rowAccum) countRow(g *graph.Graph, u int) (pairs int32, wedges int64) {
	ra.touched = ra.touched[:0]
	uu := int32(u)
	for _, hk := range g.Neighbors(u) {
		nb := g.Neighbors(int(hk.To))
		suffix := nb[firstAfter(nb, uu):]
		wedges += int64(len(suffix))
		for i := range suffix {
			v := suffix[i].To
			if ra.cnt[v] == 0 {
				ra.touched = append(ra.touched, v)
				ra.cnt[v] = 1
			}
		}
	}
	pairs = int32(len(ra.touched))
	for _, v := range ra.touched {
		ra.cnt[v] = 0
	}
	return pairs, wedges
}

// enumerateRow enumerates the wedges of row u into the scratch — dot
// accumulation, common-neighbor counts, the touched list, the (k, v) wedge
// log — and marks wTo for u's neighbors (the inline diagonal term). The
// caller must follow with emitRow, which consumes and resets the scratch.
// It returns the row's wedge count (the length of the common arena region
// the row needs).
func (ra *rowAccum) enumerateRow(g *graph.Graph, u int) int {
	ra.touched = ra.touched[:0]
	ra.ks = ra.ks[:0]
	ra.vs = ra.vs[:0]
	uu := int32(u)
	for _, hk := range g.Neighbors(u) {
		k, wk := hk.To, hk.Weight
		ra.wTo[k] = wk
		nb := g.Neighbors(int(k))
		for _, hv := range nb[firstAfter(nb, uu):] {
			v := hv.To
			if ra.cnt[v] == 0 {
				ra.touched = append(ra.touched, v)
			}
			ra.cnt[v]++
			// Two statements so the compiler cannot fuse the multiply-add:
			// fusion would round differently from the legacy kernel on FMA
			// targets and break bitwise equality.
			prod := wk * hv.Weight
			ra.dot[v] += prod
			ra.ks = append(ra.ks, k)
			ra.vs = append(ra.vs, v)
		}
	}
	return len(ra.ks)
}

// emitRow finishes row u after enumerateRow: it orders the row's pairs by v
// ascending, scatters the common-neighbor lists into commons (len = the
// row's wedge count; lists come out ascending because wedges were logged
// with ascending k), applies the diagonal term for candidates adjacent to
// u, computes the Tanimoto similarity, writes the row's pairs into pairs
// (len = the row's distinct-pair count), and resets the scratch. The
// emitted Common slices alias commons.
func (ra *rowAccum) emitRow(u int, h1, h2 []float64, pairs []Pair, commons []int32) {
	slices.Sort(ra.touched)
	var off int64
	for _, v := range ra.touched {
		ra.pos[v] = off
		off += int64(ra.cnt[v])
	}
	for i, v := range ra.vs {
		commons[ra.pos[v]] = ra.ks[i]
		ra.pos[v]++
	}
	uu := int32(u)
	h1u, h2u := h1[u], h2[u]
	var start int64
	for i, v := range ra.touched {
		d := ra.dot[v]
		if w := ra.wTo[v]; w != 0 {
			// Separate statement: see the FMA note in enumerateRow.
			diag := (h1u + h1[v]) * w
			d += diag
		}
		n := int64(ra.cnt[v])
		end := start + n
		pairs[i] = Pair{
			U:      uu,
			V:      v,
			Sim:    d / (h2u + h2[v] - d),
			Common: commons[start:end:end],
		}
		start = end
		ra.dot[v] = 0
		ra.cnt[v] = 0
	}
}

// resetMarks clears the wTo marks enumerateRow left for u's neighbors.
func (ra *rowAccum) resetMarks(g *graph.Graph, u int) {
	for _, hk := range g.Neighbors(u) {
		ra.wTo[hk.To] = 0
	}
}

// arenaChunks is a grow-only arena for the serial kernel's common-neighbor
// lists. Allocations never move once handed out — growth appends a fresh
// chunk instead of reallocating — so Pair.Common slices stay valid while
// the arena keeps growing, without a sizing pre-pass.
type arenaChunks struct {
	cur       []int32
	chunkSize int
}

func (a *arenaChunks) alloc(n int) []int32 {
	if cap(a.cur)-len(a.cur) < n {
		size := a.chunkSize
		if n > size {
			size = n
		}
		a.cur = make([]int32, 0, size)
	}
	lo := len(a.cur)
	a.cur = a.cur[:lo+n]
	return a.cur[lo : lo+n : lo+n]
}

// SimilarityWedge runs Algorithm 1 serially with the wedge-major kernel.
// Pairs appear in (U, V)-lexicographic order; similarities and
// common-neighbor lists are bitwise identical to SimilarityLegacy, so the
// two agree element-wise after Sort.
func SimilarityWedge(g *graph.Graph) *PairList {
	return SimilarityWedgeRecorded(g, nil)
}

// SimilarityWedgeRecorded is SimilarityWedge with optional instrumentation.
func SimilarityWedgeRecorded(g *graph.Graph, rec *obs.Recorder) *PairList {
	// A background context never cancels, so the error is impossible.
	pl, _ := similarityWedgeCtx(context.Background(), g, rec)
	return pl
}

// similarityWedgeCtx is the serial wedge-major kernel with cooperative
// cancellation: the context is checked every wedgeRowBlock rows, matching the
// parallel kernel's claim granularity.
func similarityWedgeCtx(ctx context.Context, g *graph.Graph, rec *obs.Recorder) (*PairList, error) {
	end := rec.Phase("similarity")
	defer end()
	n := g.NumVertices()
	h1 := make([]float64, n)
	h2 := make([]float64, n)
	endPass := rec.Phase("pass1-norms")
	vertexNorms(g, h1, h2, 0, n)
	endPass()

	endPass = rec.Phase("pass2-wedge-rows")
	defer endPass()
	ra := newRowAccum(n)
	chunk := 4 * g.NumEdges()
	if chunk < 1024 {
		chunk = 1024
	}
	arena := &arenaChunks{chunkSize: chunk}
	pairs := make([]Pair, 0, g.NumEdges())
	var rows int64
	for u := 0; u < n; u++ {
		if u%wedgeRowBlock == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		w := ra.enumerateRowDispatch(g, u)
		if w > 0 {
			rows++
			commons := arena.alloc(w)
			base := len(pairs)
			need := len(ra.touched)
			pairs = slices.Grow(pairs, need)[:base+need]
			ra.emitRow(u, h1, h2, pairs[base:], commons)
		}
		ra.resetMarks(g, u)
	}

	pl := &PairList{Pairs: pairs}
	recordPairListStats(rec, pl)
	rec.Add(CtrSimilarityWedgeRows, rows)
	return pl, nil
}

// SimilarityWedgeParallel runs Algorithm 1 with the wedge-major kernel and
// worker-partitioned rows: a count pass sizes the CSR layout, a fill pass
// writes each row into its precomputed slots. There is no merge phase — no
// two workers ever touch the same output slot — and the result is
// deterministic: identical to SimilarityWedge for any worker count,
// including bitwise-equal similarities.
//
// The workers argument is normalized like every parallel entry point of the
// pipeline: values below 2 (after clamping) run the serial wedge kernel,
// values above max(runtime.GOMAXPROCS(0), runtime.NumCPU()) are clamped to that cap.
func SimilarityWedgeParallel(g *graph.Graph, workers int) *PairList {
	return SimilarityWedgeParallelRecorded(g, workers, nil)
}

// wedgeRowBlock is the dynamic-scheduling granule of both parallel passes:
// workers claim contiguous row blocks off an atomic cursor, so hub-heavy
// prefixes cannot serialize the sweep behind one unlucky static partition.
const wedgeRowBlock = 256

// SimilarityWedgeParallelRecorded is SimilarityWedgeParallel with optional
// instrumentation. A panic inside the kernel propagates to the caller as a
// *par.WorkerPanicError panic (use SimilarityCtx for an error return).
func SimilarityWedgeParallelRecorded(g *graph.Graph, workers int, rec *obs.Recorder) *PairList {
	// A background context never cancels, so the error is impossible.
	pl, _ := similarityWedgeParallelCtx(context.Background(), g, workers, rec)
	return pl
}

// SimilarityCtx is the cancellable, panic-isolated entry point of Algorithm 1:
// SimilarityParallelRecorded with cooperative cancellation. The context is
// checked at every row-block claim (wedgeRowBlock rows), in the serial path as
// in the parallel one, so cancel latency is bounded by one block of rows per
// worker. On cancellation it returns ctx.Err() and the partial output is
// discarded; a panic inside the kernel surfaces as a *par.WorkerPanicError.
func SimilarityCtx(ctx context.Context, g *graph.Graph, workers int, rec *obs.Recorder) (pl *PairList, err error) {
	defer par.RecoverPanicError(&err)
	workers = par.Normalize(workers)
	if workers < 2 {
		return similarityWedgeCtx(ctx, g, rec)
	}
	return similarityWedgeParallelCtx(ctx, g, workers, rec)
}

// similarityWedgeParallelCtx is the parallel wedge-major kernel. Fan-outs run
// through par.Run (panic isolation); the dynamic row cursor of passes 2 and 3
// doubles as the cancellation point — workers re-check the context at every
// block claim and stop claiming when it is canceled or a sibling panicked.
func similarityWedgeParallelCtx(ctx context.Context, g *graph.Graph, workers int, rec *obs.Recorder) (*PairList, error) {
	workers = par.Normalize(workers)
	if workers < 2 {
		return similarityWedgeCtx(ctx, g, rec)
	}
	end := rec.Phase("similarity")
	defer end()
	n := g.NumVertices()
	h1 := make([]float64, n)
	h2 := make([]float64, n)

	// Pass 1: vertex norms over contiguous blocks (disjoint writes).
	endPass := rec.Phase("pass1-norms")
	par.Do(n, workers, func(_, lo, hi int) {
		vertexNorms(g, h1, h2, lo, hi)
	})
	endPass()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Per-worker scratch, shared by both passes.
	accs := make([]*rowAccum, workers)
	for t := range accs {
		accs[t] = newRowAccum(n)
	}

	// Pass 2 (count): per-row distinct-pair and wedge counts.
	endPass = rec.Phase("pass2-wedge-count")
	rowPairs := make([]int32, n)
	rowWedges := make([]int64, n)
	var cursor atomic.Int64
	par.Run(workers, func(t int, aborted func() bool) {
		ra := accs[t]
		for {
			if aborted() || ctx.Err() != nil {
				return
			}
			lo := int(cursor.Add(wedgeRowBlock)) - wedgeRowBlock
			if lo >= n {
				return
			}
			hi := lo + wedgeRowBlock
			if hi > n {
				hi = n
			}
			for u := lo; u < hi; u++ {
				rowPairs[u], rowWedges[u] = ra.countRow(g, u)
			}
		}
	})
	if err := ctx.Err(); err != nil {
		endPass()
		return nil, err
	}

	// CSR offsets (serial O(|V|) prefix sums).
	pairOff := make([]int64, n+1)
	wedgeOff := make([]int64, n+1)
	var rows int64
	for u := 0; u < n; u++ {
		pairOff[u+1] = pairOff[u] + int64(rowPairs[u])
		wedgeOff[u+1] = wedgeOff[u] + rowWedges[u]
		if rowPairs[u] > 0 {
			rows++
		}
	}
	endPass()

	// Pass 3 (fill): every row writes its precomputed slots; the diagonal
	// term is applied inline by the row owner, so no edge rescan exists.
	endPass = rec.Phase("pass3-wedge-fill")
	pairs := make([]Pair, pairOff[n])
	arena := make([]int32, wedgeOff[n])
	cursor.Store(0)
	par.Run(workers, func(t int, aborted func() bool) {
		ra := accs[t]
		for {
			if aborted() || ctx.Err() != nil {
				return
			}
			lo := int(cursor.Add(wedgeRowBlock)) - wedgeRowBlock
			if lo >= n {
				return
			}
			hi := lo + wedgeRowBlock
			if hi > n {
				hi = n
			}
			for u := lo; u < hi; u++ {
				w := ra.enumerateRowDispatch(g, u)
				if int64(w) != rowWedges[u] || len(ra.touched) != int(rowPairs[u]) {
					panic(fmt.Sprintf("core: wedge fill pass disagrees with count pass at row %d (%d/%d wedges, %d/%d pairs)",
						u, w, rowWedges[u], len(ra.touched), rowPairs[u]))
				}
				if w > 0 {
					ra.emitRow(u, h1, h2, pairs[pairOff[u]:pairOff[u+1]], arena[wedgeOff[u]:wedgeOff[u+1]])
				}
				ra.resetMarks(g, u)
			}
		}
	})
	endPass()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	pl := &PairList{Pairs: pairs}
	recordPairListStats(rec, pl)
	rec.Add(CtrSimilarityWedgeRows, rows)
	return pl, nil
}
