package core

import (
	"fmt"
	"testing"

	"linkclust/internal/assoc"
	"linkclust/internal/corpus"
	"linkclust/internal/graph"
	"linkclust/internal/planted"
	"linkclust/internal/rng"
)

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// wedgeTestGraphs returns the differential-test graph families: random
// (Erdős–Rényi at several densities), planted overlapping communities, the
// paper's example, structured families (complete, circulant), and a
// word-association network built from a small synthetic corpus.
func wedgeTestGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	out := map[string]*graph.Graph{
		"paper-example": graph.PaperExample(),
		"complete-16":   graph.Complete(16),
		"disjoint":      graph.DisjointEdges(6),
		"empty":         graph.NewBuilder(0).Build(nil),
		"edgeless":      graph.NewBuilder(7).Build(nil),
	}
	if g, err := graph.Circulant(48, 6); err == nil {
		out["circulant-48"] = g
	} else {
		t.Fatalf("circulant: %v", err)
	}
	for _, seed := range []uint64{1, 5} {
		out[fmt.Sprintf("erdos-renyi-sparse-%d", seed)] = graph.ErdosRenyi(120, 0.05, rng.New(seed))
		out[fmt.Sprintf("erdos-renyi-dense-%d", seed)] = graph.ErdosRenyi(60, 0.3, rng.New(seed))
	}
	pcfg := planted.DefaultConfig()
	pcfg.Nodes = 150
	pcfg.Communities = 6
	bench, err := planted.Generate(pcfg)
	if err != nil {
		t.Fatalf("planted: %v", err)
	}
	out["planted"] = bench.Graph
	ccfg := corpus.DefaultSynthConfig()
	ccfg.Vocab = 800
	ccfg.Docs = 1500
	ccfg.Topics = 8
	wg, err := assoc.Build(corpus.Synthesize(ccfg), 0.5, assoc.Options{EdgePermSeed: 42})
	if err != nil {
		t.Fatalf("assoc: %v", err)
	}
	out["word-association"] = wg
	return out
}

// requireIdenticalSorted asserts two pair lists are element-wise identical
// after Sort — including bitwise-equal similarities and identical
// common-neighbor lists.
func requireIdenticalSorted(t *testing.T, label string, got, want *PairList) {
	t.Helper()
	got.Sort()
	want.Sort()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got.Pairs), len(want.Pairs))
	}
	for i := range want.Pairs {
		g, w := &got.Pairs[i], &want.Pairs[i]
		if g.U != w.U || g.V != w.V {
			t.Fatalf("%s pair %d: (%d,%d), want (%d,%d)", label, i, g.U, g.V, w.U, w.V)
		}
		if g.Sim != w.Sim {
			t.Fatalf("%s pair (%d,%d): sim %v, want bitwise-equal %v", label, g.U, g.V, g.Sim, w.Sim)
		}
		if len(g.Common) != len(w.Common) {
			t.Fatalf("%s pair (%d,%d): commons %v, want %v", label, g.U, g.V, g.Common, w.Common)
		}
		for j := range w.Common {
			if g.Common[j] != w.Common[j] {
				t.Fatalf("%s pair (%d,%d): commons %v, want %v", label, g.U, g.V, g.Common, w.Common)
			}
		}
	}
}

// TestWedgeDifferential is the differential test of the kernel swap: the
// wedge-major serial kernel, the wedge-major parallel kernel at 1..8
// workers, and the legacy hash-map kernel (serial and parallel) must all
// produce element-wise identical sorted pair lists on every graph family.
func TestWedgeDifferential(t *testing.T) {
	for name, g := range wedgeTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			legacy := SimilarityLegacy(g)
			wedge := SimilarityWedge(g)
			requireIdenticalSorted(t, "wedge-serial vs legacy", wedge, legacy)
			for workers := 1; workers <= 8; workers++ {
				pw := SimilarityWedgeParallel(g, workers)
				requireIdenticalSorted(t, fmt.Sprintf("wedge-parallel-%d vs legacy", workers), pw, legacy)
			}
			// The legacy parallel path reorders float additions through its
			// hierarchical map merges, so it only matches to tolerance —
			// the historical contract (TestSimilarityParallelMatchesSerial
			// used 1e-12 long before the wedge kernel existed).
			pl := SimilarityParallelLegacy(g, 4)
			pl.Sort()
			if len(pl.Pairs) != len(legacy.Pairs) {
				t.Fatalf("legacy-parallel: %d pairs, want %d", len(pl.Pairs), len(legacy.Pairs))
			}
			for i := range legacy.Pairs {
				p, w := &pl.Pairs[i], &legacy.Pairs[i]
				if p.U != w.U || p.V != w.V || abs(p.Sim-w.Sim) > 1e-12 {
					t.Fatalf("legacy-parallel pair %d: (%d,%d,%v) vs (%d,%d,%v)", i, p.U, p.V, p.Sim, w.U, w.V, w.Sim)
				}
			}
		})
	}
}

// TestWedgeUnsortedOrder pins the wedge kernel's deterministic pre-Sort
// contract: pairs appear in (U, V)-lexicographic order, identically for the
// serial and parallel paths.
func TestWedgeUnsortedOrder(t *testing.T) {
	g := graph.ErdosRenyi(80, 0.15, rng.New(11))
	serial := SimilarityWedge(g)
	for i := 1; i < len(serial.Pairs); i++ {
		a, b := &serial.Pairs[i-1], &serial.Pairs[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			t.Fatalf("pairs %d,%d not (U,V)-lexicographic: (%d,%d) then (%d,%d)", i-1, i, a.U, a.V, b.U, b.V)
		}
	}
	for _, workers := range []int{2, 5, 8} {
		par := SimilarityWedgeParallel(g, workers)
		if len(par.Pairs) != len(serial.Pairs) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(par.Pairs), len(serial.Pairs))
		}
		for i := range serial.Pairs {
			s, p := &serial.Pairs[i], &par.Pairs[i]
			if s.U != p.U || s.V != p.V || s.Sim != p.Sim {
				t.Fatalf("workers=%d pair %d differs pre-Sort: (%d,%d,%v) vs (%d,%d,%v)",
					workers, i, p.U, p.V, p.Sim, s.U, s.V, s.Sim)
			}
		}
	}
}

// TestWedgeRowAccumScratchClean verifies the O(row) reset discipline: after
// a full run the dense scratch must be spotless, or later rows would
// inherit ghost contributions. Exercised indirectly by reusing one graph's
// accumulator across two very different graphs of the same vertex count.
func TestWedgeRowAccumScratchClean(t *testing.T) {
	n := 50
	ra := newRowAccum(n)
	dense := graph.ErdosRenyi(n, 0.4, rng.New(3))
	for u := 0; u < n; u++ {
		if w := ra.enumerateRow(dense, u); w > 0 {
			pairs := make([]Pair, len(ra.touched))
			commons := make([]int32, w)
			h := make([]float64, n)
			ra.emitRow(u, h, h, pairs, commons)
		}
		ra.resetMarks(dense, u)
	}
	for v := 0; v < n; v++ {
		if ra.dot[v] != 0 || ra.cnt[v] != 0 || ra.wTo[v] != 0 {
			t.Fatalf("scratch dirty at %d after full run: dot=%v cnt=%d wTo=%v", v, ra.dot[v], ra.cnt[v], ra.wTo[v])
		}
	}
}

// TestWedgeCountMatchesFill cross-checks the sizing pass against the fill
// pass row by row.
func TestWedgeCountMatchesFill(t *testing.T) {
	g := graph.ErdosRenyi(90, 0.2, rng.New(7))
	n := g.NumVertices()
	count := newRowAccum(n)
	fill := newRowAccum(n)
	for u := 0; u < n; u++ {
		pairs, wedges := count.countRow(g, u)
		w := fill.enumerateRow(g, u)
		if int64(w) != wedges || len(fill.touched) != int(pairs) {
			t.Fatalf("row %d: count pass (%d pairs, %d wedges) vs fill pass (%d pairs, %d wedges)",
				u, pairs, wedges, len(fill.touched), w)
		}
		if w > 0 {
			ps := make([]Pair, len(fill.touched))
			cs := make([]int32, w)
			h := make([]float64, n)
			fill.emitRow(u, h, h, ps, cs)
		}
		fill.resetMarks(g, u)
	}
}
