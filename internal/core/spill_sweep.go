package core

import (
	"context"
	"fmt"
	"slices"

	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/par"
	"linkclust/internal/spill"
)

// Counter names recorded by the out-of-core (spilled) sweep.
const (
	// CtrSpillBuckets counts the non-empty similarity buckets written to
	// disk. The bucket policy (width by list size) is shared with the
	// in-memory pipelined sweep, so this always equals CtrPipelineBuckets
	// for the same pair list — and like it, is worker-invariant.
	CtrSpillBuckets = "spill.buckets"
	// CtrSpillBytesWritten is the bytes the spill store wrote (encoded pair
	// payloads plus per-bucket headers). A pure function of the pair list,
	// hence worker-invariant.
	CtrSpillBytesWritten = "spill.bytes_written"
	// CtrSpillReadStalls counts consumer waits during read-back: times the
	// sweep finished every published bucket and blocked for the next one to
	// come off disk. A timing artifact — NOT worker-invariant.
	CtrSpillReadStalls = "spill.read_stalls"
)

// spillScatterPollPairs is the cancellation-poll interval of the spill
// scatter: each worker checks ctx once per this many pairs encoded, so
// cancel latency during the write phase is bounded by one poll interval
// plus one in-flight block per writer.
const spillScatterPollPairs = 2048

// SpillOptions configures the out-of-core sweep's disk store.
type SpillOptions struct {
	// Dir is the parent directory for the run's private spill directory
	// (one per run, removed on every exit path); empty means os.TempDir().
	Dir string
}

// SweepSpilled runs Algorithm 2 out of core: the pair list is MSD-radix
// partitioned — with exactly the pipelined sweep's bucket policy — into
// per-bucket spill files instead of an in-memory scratch, the in-memory
// list is released, and a producer pool streams the buckets back from disk
// (each sorted on arrival) into the same streaming engine the pipelined
// sweep drives. The pair list therefore never needs to be resident twice,
// and during the merge phase only the engine's window plus a bounded bucket
// read-ahead is in memory; the merge stream stays bitwise identical to
// Sweep, SweepParallel, and SweepPipelined at any worker count.
//
// SweepSpilled CONSUMES the pair list: on success and on any read-phase
// failure pl.Pairs is nil (the memory was released to disk). Only a
// write-phase failure — store creation or a block write, before anything
// was released — leaves pl intact, which is what lets the facade fall back
// to coarse-grained clustering when the disk itself fails.
func SweepSpilled(g *graph.Graph, pl *PairList, workers int) (*Result, error) {
	return SweepSpilledOpts(context.Background(), g, pl, workers, SpillOptions{}, nil)
}

// SweepSpilledCtx is SweepSpilled with cooperative cancellation, panic
// isolation, and optional instrumentation, with the spill directory in its
// default location.
func SweepSpilledCtx(ctx context.Context, g *graph.Graph, pl *PairList, workers int, rec *obs.Recorder) (*Result, error) {
	return SweepSpilledOpts(ctx, g, pl, workers, SpillOptions{}, rec)
}

// SweepSpilledOpts is the fully parameterized out-of-core sweep.
// Cancellation points are the scatter's per-worker poll (write phase), the
// producer's bucket claims and publishes, and the engine's op-count window
// cuts (read phase); on every exit path — success, cancellation, fault, or
// panic — the run's spill directory is removed and no goroutine outlives
// the call. Spill I/O failures surface as typed errors from internal/spill
// (errors.Is against spill.ErrWriteFault, spill.ErrChecksum,
// spill.ErrTruncated, spill.ErrFormat).
func SweepSpilledOpts(ctx context.Context, g *graph.Graph, pl *PairList, workers int, opt SpillOptions, rec *obs.Recorder) (res *Result, err error) {
	defer par.RecoverPanicError(&err)
	workers = par.Normalize(workers)
	end := rec.Phase("sweep")
	defer end()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	e := &sweepEngine{g: g, workers: workers, ctx: ctx}
	n := len(pl.Pairs)
	if n == 0 {
		e.pl = &PairList{}
		e.init()
		if err := e.consume(0, true); err != nil {
			return nil, err
		}
		pl.Pairs = nil
		pl.Invalidate()
		recordSweepEngine(rec, e)
		recordSpill(rec, 0, 0, 0)
		return e.res, nil
	}

	// Phase A — histogram + scatter to disk. The bucket policy (bit width by
	// list size, the simBucket key transform) is exactly partitionPairs', so
	// bucket ids, per-bucket extents, and the non-empty bucket count match
	// the in-memory pipelined sweep bucket for bucket.
	endWrite := rec.Phase("spill-write")
	pairs := pl.Pairs
	bits := pipelineBits
	if n < pipelineSmallPairs {
		bits = pipelineSmallBits
	}
	nb := 1 << bits
	shift := uint(64 - bits)
	w := workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	counts := make([]int, w*nb)
	par.Do(n, w, func(t, lo, hi int) {
		row := counts[t*nb : (t+1)*nb]
		for i := lo; i < hi; i++ {
			row[simBucket(pairs[i].Sim, shift)]++
		}
	})
	offs := make([]int, nb+1)
	pos := 0
	var bucketIDs []int
	for b := 0; b < nb; b++ {
		offs[b] = pos
		for t := 0; t < w; t++ {
			pos += counts[t*nb+b]
		}
		if pos > offs[b] {
			bucketIDs = append(bucketIDs, b)
		}
	}
	offs[nb] = pos

	store, err := spill.NewStore(bucketIDs, spill.Options{Dir: opt.Dir})
	if err != nil {
		endWrite()
		return nil, err
	}
	defer store.Remove()

	par.Do(n, w, func(t, lo, hi int) {
		var buf []byte
		for i := lo; i < hi; i++ {
			if (i-lo)%spillScatterPollPairs == 0 && ctx.Err() != nil {
				return
			}
			buf = appendPairRecord(buf[:0], &pairs[i])
			if store.Append(simBucket(pairs[i].Sim, shift), buf) != nil {
				return // sticky store error; FinishWrites reports it
			}
		}
	})
	if ctx.Err() != nil {
		store.Abort()
	}
	werr := store.FinishWrites()
	endWrite()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if werr != nil {
		return nil, fmt.Errorf("core: spilling pair list: %w", werr)
	}

	// Phase B — the write succeeded in full; the on-disk copy is now the
	// authoritative one, so release the in-memory list. From here on the
	// run cannot fall back: a read failure is terminal.
	pl.Pairs = nil
	pl.Invalidate()
	pairs = nil

	// Phase C — stream the buckets back through the engine, mirroring
	// SweepPipelinedCtx's producer/consumer structure. buf holds the pair
	// headers only (the dominant commons payload stays on disk until its
	// bucket is decoded, and is dropped again once the engine's window
	// cursor passes it).
	buf := make([]Pair, n)
	e.pl = &PairList{Pairs: buf}
	e.init()

	endMerge := rec.Phase("merge")
	defer endMerge()

	prodCtx, stopProducer := context.WithCancel(ctx)
	defer stopProducer()

	slotPairs := make([][]Pair, len(bucketIDs))
	slotErr := make([]error, len(bucketIDs))
	var readErr error
	frontiers := make(chan int, pipelineBucketAhead)
	prodDone := make(chan error, 1)
	go func() {
		defer close(frontiers)
		prodDone <- par.OrderedCtx(prodCtx, len(bucketIDs), pipelineSorters(workers), func(i int) {
			b := bucketIDs[i]
			bk, err := store.OpenBucket(b)
			if err != nil {
				slotErr[i] = err
				return
			}
			defer bk.Close()
			want := offs[b+1] - offs[b]
			if bk.Pairs != want {
				slotErr[i] = fmt.Errorf("core: spill bucket %d holds %d pairs, partition expects %d", b, bk.Pairs, want)
				return
			}
			ps, err := decodePairRecords(bk.Payload, want)
			if err != nil {
				slotErr[i] = err
				return
			}
			slices.SortFunc(ps, cmpPairs)
			slotPairs[i] = ps
		}, func(i int) {
			if readErr != nil {
				return
			}
			if slotErr[i] != nil {
				// Stop the stream at the first bad bucket: record the error,
				// release the workers, and publish nothing further — the
				// consumer drains to the close and reports readErr.
				readErr = slotErr[i]
				stopProducer()
				return
			}
			b := bucketIDs[i]
			copy(buf[offs[b]:offs[b+1]], slotPairs[i])
			slotPairs[i] = nil
			select {
			case frontiers <- offs[b+1]:
			case <-prodCtx.Done():
			}
		})
	}()

	// Join the producer before unwinding on a consumer panic, exactly as the
	// pipelined sweep does: release it, drain to the channel close, wait.
	prodJoined := false
	defer func() {
		if !prodJoined {
			stopProducer()
			for range frontiers {
			}
			<-prodDone
		}
	}()

	var stalls int64
	released := 0
	var cerr error
	for {
		var f int
		var ok bool
		select {
		case f, ok = <-frontiers:
		default:
			f, ok = <-frontiers
			if ok {
				stalls++
			}
		}
		if !ok {
			break
		}
		if cerr == nil {
			cerr = e.consume(f, false)
			if cerr != nil {
				stopProducer()
				continue
			}
			// Everything below the window cursor is at its final position
			// and will never be re-read: drop the commons references so each
			// bucket's decode arena frees as the sweep moves past it.
			for ; released < e.wp; released++ {
				buf[released].Common = nil
			}
		}
	}
	prodJoined = true
	perr := <-prodDone
	err = cerr
	if err == nil && readErr != nil {
		err = readErr
	}
	if err == nil && perr != nil {
		err = perr
	}
	if err == nil {
		err = e.consume(n, true)
	}
	if err != nil {
		return nil, err
	}
	recordSweepEngine(rec, e)
	recordSpill(rec, int64(len(bucketIDs)), store.BytesWritten(), stalls)
	return e.res, nil
}

// SpillPayloadBytes returns the exact on-disk payload footprint SweepSpilled
// would write for pl: the fixed record prefix plus the common-neighbor
// words of every pair. Callers size memory budgets against it — the bench
// harness derives its "pair list at least 4× the budget" out-of-core
// criterion from this value.
func SpillPayloadBytes(pl *PairList) int64 {
	total := int64(0)
	for i := range pl.Pairs {
		total += pairRecordFixed + 4*int64(len(pl.Pairs[i].Common))
	}
	return total
}

func recordSpill(rec *obs.Recorder, buckets, bytes, stalls int64) {
	if rec == nil {
		return
	}
	rec.Add(CtrSpillBuckets, buckets)
	rec.Add(CtrSpillBytesWritten, bytes)
	rec.Add(CtrSpillReadStalls, stalls)
}

// ClusterOutOfCore is the end-to-end out-of-core pipeline: the parallel
// initialization phase followed by SweepSpilled. Output is bitwise
// identical to Cluster for any worker count.
func ClusterOutOfCore(g *graph.Graph, workers int) (*Result, error) {
	return SweepSpilled(g, SimilarityParallel(g, workers), workers)
}

// ClusterOutOfCoreCtx is ClusterOutOfCore with cooperative cancellation,
// panic isolation, optional instrumentation, and an explicit spill
// directory.
func ClusterOutOfCoreCtx(ctx context.Context, g *graph.Graph, workers int, opt SpillOptions, rec *obs.Recorder) (*Result, error) {
	pl, err := SimilarityCtx(ctx, g, workers, rec)
	if err != nil {
		return nil, err
	}
	return SweepSpilledOpts(ctx, g, pl, workers, opt, rec)
}
