package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"linkclust/internal/fault"
	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/rng"
	"linkclust/internal/spill"
)

// faultReset clears process-global fault armings; deferred by every test
// that arms a point.
func faultReset(t *testing.T) {
	t.Helper()
	fault.Reset()
}

func armSpillWrite(t *testing.T) {
	t.Helper()
	fault.Arm(fault.SpillWrite, 1, nil)
}

func armSpillRead(t *testing.T) {
	t.Helper()
	fault.Arm(fault.SpillRead, 1, nil)
}

// requireEmptySpillParent asserts the spilled sweep left nothing behind in
// the directory it was told to spill under.
func requireEmptySpillParent(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading spill parent: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill parent not cleaned: %d entries left, first %q", len(entries), entries[0].Name())
	}
}

// TestSweepSpilledDifferential is the core acceptance differential: on every
// graph family and worker counts 1..8, the out-of-core sweep must reproduce
// the serial sweep exactly, consume its pair list, and leave its spill
// parent empty.
func TestSweepSpilledDifferential(t *testing.T) {
	for name, g := range wedgeTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := Sweep(g, Similarity(g))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			dir := t.TempDir()
			for workers := 1; workers <= 8; workers++ {
				pl := Similarity(g)
				res, err := SweepSpilledOpts(context.Background(), g, pl, workers, SpillOptions{Dir: dir}, nil)
				if err != nil {
					t.Fatalf("T=%d: %v", workers, err)
				}
				requireIdenticalSweep(t, fmt.Sprintf("spilled T=%d vs serial", workers), res, serial)
				if pl.Pairs != nil {
					t.Fatalf("T=%d: pair list not consumed by spilled sweep", workers)
				}
				requireEmptySpillParent(t, dir)
			}
		})
	}
}

// TestSweepSpilledLargeRandom crosses the wide-bucket (16-bit) regime and
// many windows, where the read-back pipeline actually streams.
func TestSweepSpilledLargeRandom(t *testing.T) {
	for seed := uint64(0); seed < 2; seed++ {
		g := graph.ErdosRenyi(300, 0.06, rng.New(seed))
		serial, err := Sweep(g, Similarity(g))
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		for _, workers := range []int{1, 3, 8} {
			res, err := SweepSpilled(g, Similarity(g), workers)
			if err != nil {
				t.Fatalf("seed %d T=%d: %v", seed, workers, err)
			}
			requireIdenticalSweep(t, fmt.Sprintf("seed %d T=%d", seed, workers), res, serial)
		}
	}
}

// TestSweepSpilledEmpty covers the degenerate entry: no pairs, no spill
// directory created, a valid empty result.
func TestSweepSpilledEmpty(t *testing.T) {
	g := graph.DisjointEdges(5)
	dir := t.TempDir()
	res, err := SweepSpilledOpts(context.Background(), g, Similarity(g), 4, SpillOptions{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merges) != 0 || res.PairsProcessed != 0 {
		t.Fatalf("empty graph produced %d merges, %d ops", len(res.Merges), res.PairsProcessed)
	}
	requireEmptySpillParent(t, dir)
}

// TestSweepSpilledErrorParity feeds a foreign pair list: the spilled sweep
// must surface exactly the serial sweep's error and still clean its spill
// directory.
func TestSweepSpilledErrorParity(t *testing.T) {
	g, err := graph.Circulant(48, 6)
	if err != nil {
		t.Fatal(err)
	}
	foreign := graph.Complete(48)
	_, serialErr := Sweep(g, Similarity(foreign))
	if serialErr == nil {
		t.Fatal("serial sweep accepted a foreign pair list")
	}
	dir := t.TempDir()
	for workers := 1; workers <= 8; workers++ {
		_, spErr := SweepSpilledOpts(context.Background(), g, Similarity(foreign), workers, SpillOptions{Dir: dir}, nil)
		if spErr == nil {
			t.Fatalf("T=%d: spilled sweep accepted a foreign pair list", workers)
		}
		if spErr.Error() != serialErr.Error() {
			t.Fatalf("T=%d: error %q, want serial's %q", workers, spErr, serialErr)
		}
		requireEmptySpillParent(t, dir)
	}
}

// TestSweepSpilledCounters checks the spilled path's instrumentation: the
// bucket and bytes counters must be positive and worker-invariant, and the
// bucket count must equal the in-memory pipelined sweep's — the two share
// one bucket policy.
func TestSweepSpilledCounters(t *testing.T) {
	g := graph.ErdosRenyi(200, 0.08, rng.New(4))
	pipRec := obs.New()
	if _, err := SweepPipelinedRecorded(g, Similarity(g), 4, pipRec); err != nil {
		t.Fatal(err)
	}
	pipBuckets := pipRec.Counter(CtrPipelineBuckets)
	var buckets, bytes int64 = -1, -1
	for _, workers := range []int{1, 4, 8} {
		rec := obs.New()
		res, err := SweepSpilledOpts(context.Background(), g, Similarity(g), workers, SpillOptions{}, rec)
		if err != nil {
			t.Fatalf("T=%d: %v", workers, err)
		}
		if got := rec.Counter(CtrSweepPairsProcessed); got != res.PairsProcessed {
			t.Fatalf("T=%d: pairs counter %d, want %d", workers, got, res.PairsProcessed)
		}
		b, by := rec.Counter(CtrSpillBuckets), rec.Counter(CtrSpillBytesWritten)
		if b < 1 || by < 1 {
			t.Fatalf("T=%d: buckets=%d bytes=%d, want both positive", workers, b, by)
		}
		if b != pipBuckets {
			t.Fatalf("T=%d: %d spill buckets, pipelined reports %d — bucket policies diverged", workers, b, pipBuckets)
		}
		if buckets >= 0 && (b != buckets || by != bytes) {
			t.Fatalf("T=%d: buckets/bytes %d/%d, want worker-invariant %d/%d", workers, b, by, buckets, bytes)
		}
		buckets, bytes = b, by
	}
}

// TestSweepSpilledPreCanceled: a canceled context must return before any
// spill file is created.
func TestSweepSpilledPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.ErdosRenyi(60, 0.15, rng.New(3))
	dir := t.TempDir()
	pl := Similarity(g)
	res, err := SweepSpilledOpts(ctx, g, pl, 4, SpillOptions{Dir: dir}, nil)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if pl.Pairs == nil {
		t.Fatal("pre-canceled run consumed the pair list")
	}
	requireEmptySpillParent(t, dir)
}

// TestSweepSpilledBadDir: an unusable spill parent must fail with a typed
// error before the pair list is consumed — the contract the facade's
// coarse-degrade fallback relies on.
func TestSweepSpilledBadDir(t *testing.T) {
	g := graph.ErdosRenyi(60, 0.15, rng.New(3))
	pl := Similarity(g)
	_, err := SweepSpilledOpts(context.Background(), g, pl, 4,
		SpillOptions{Dir: "/nonexistent/spill/parent"}, nil)
	if err == nil {
		t.Fatal("spilled sweep accepted an unusable directory")
	}
	if pl.Pairs == nil {
		t.Fatal("write-phase failure consumed the pair list")
	}
	if _, err := Sweep(g, pl); err != nil {
		t.Fatalf("pair list unusable after failed spill: %v", err)
	}
}

// TestSweepSpilledWriteFaultKeepsList: an injected block-write fault (the
// deterministic ENOSPC) must surface spill.ErrWriteFault, keep the pair
// list intact and sweepable, and leave the spill parent empty.
func TestSweepSpilledWriteFaultKeepsList(t *testing.T) {
	defer faultReset(t)
	g := graph.ErdosRenyi(120, 0.1, rng.New(9))
	serial, err := Sweep(g, Similarity(g))
	if err != nil {
		t.Fatal(err)
	}
	armSpillWrite(t)
	dir := t.TempDir()
	pl := Similarity(g)
	_, spErr := SweepSpilledOpts(context.Background(), g, pl, 4, SpillOptions{Dir: dir}, nil)
	if !errors.Is(spErr, spill.ErrWriteFault) {
		t.Fatalf("error %v, want spill.ErrWriteFault", spErr)
	}
	faultReset(t)
	if pl.Pairs == nil {
		t.Fatal("write fault consumed the pair list")
	}
	requireEmptySpillParent(t, dir)
	res, err := Sweep(g, pl)
	if err != nil {
		t.Fatalf("reusing pair list after write fault: %v", err)
	}
	requireIdenticalSweep(t, "reuse after write fault", res, serial)
}

// TestSweepSpilledReadFaultCleansUp: an injected read-back corruption must
// surface spill.ErrChecksum and still remove the spill directory; the pair
// list is gone (it was released to disk), which is the documented contract.
func TestSweepSpilledReadFaultCleansUp(t *testing.T) {
	defer faultReset(t)
	g := graph.ErdosRenyi(120, 0.1, rng.New(9))
	armSpillRead(t)
	dir := t.TempDir()
	pl := Similarity(g)
	_, err := SweepSpilledOpts(context.Background(), g, pl, 4, SpillOptions{Dir: dir}, nil)
	if !errors.Is(err, spill.ErrChecksum) {
		t.Fatalf("error %v, want spill.ErrChecksum", err)
	}
	faultReset(t)
	if pl.Pairs != nil {
		t.Fatal("read-phase failure left the pair list claiming to be valid")
	}
	requireEmptySpillParent(t, dir)
}
