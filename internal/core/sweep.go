package core

import (
	"context"
	"fmt"

	"linkclust/internal/fault"
	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/par"
)

// Merge is one dendrogram event: at Level, clusters A and B fused into Into
// (= min(A, B)), following Eq. (5). For the strict (fine-grained) sweep the
// level increments by one per event; the coarse-grained algorithm emits the
// chunk counter instead, so several events may share a level.
type Merge struct {
	Level int32
	A, B  int32
	Into  int32
	Sim   float64 // similarity of the pair that triggered the merge
}

// Result is the output of a sweeping run.
type Result struct {
	// Merges is the dendrogram's merge stream in execution order.
	Merges []Merge
	// Chain is the final array C; Chain.Assignments() yields the bottom
	// partition reached by the run.
	Chain *Chain
	// Levels is the last level counter value (r in the paper).
	Levels int32
	// PairsProcessed counts incident edge pairs fed to MERGE.
	PairsProcessed int64
}

// NumClusters returns the number of clusters at the end of the run.
func (r *Result) NumClusters() int { return r.Chain.NumClusters() }

// Sweep runs Algorithm 2: sorts the pair list by non-increasing similarity
// and replays it, merging, for each vertex pair (U, V) and each common
// neighbor k, the clusters of edges (U, k) and (V, k). The pair list is
// sorted in place. An error is returned only if the pair list references an
// edge absent from g, which indicates the list was built from a different
// graph.
func Sweep(g *graph.Graph, pl *PairList) (*Result, error) {
	return SweepRecorded(g, pl, nil)
}

// SweepRecorded is Sweep with optional instrumentation: sort and merge
// phase timers plus the pairs-processed, chain-rewrite (Fig. 2(1)) and
// merge-event counters are recorded into rec. A nil rec records nothing and
// adds no measurable overhead (instrumentation happens at phase
// granularity, never inside the merge loop).
func SweepRecorded(g *graph.Graph, pl *PairList, rec *obs.Recorder) (*Result, error) {
	end := rec.Phase("sweep")
	defer end()
	endSort := rec.Phase("sort")
	pl.Sort()
	endSort()
	endMerge := rec.Phase("merge")
	defer endMerge()
	res := &Result{Chain: NewChain(g.NumEdges())}
	for i := range pl.Pairs {
		p := &pl.Pairs[i]
		for _, k := range p.Common {
			e1, ok1 := g.EdgeBetween(int(p.U), int(k))
			e2, ok2 := g.EdgeBetween(int(p.V), int(k))
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("core: pair (%d,%d) common neighbor %d has no incident edges in graph", p.U, p.V, k)
			}
			res.PairsProcessed++
			if c1, c2, merged := res.Chain.Merge(e1, e2); merged {
				res.Levels++
				into := c1
				if c2 < into {
					into = c2
				}
				res.Merges = append(res.Merges, Merge{
					Level: res.Levels,
					A:     c1,
					B:     c2,
					Into:  into,
					Sim:   p.Sim,
				})
			}
		}
	}
	if rec != nil {
		rec.Add(CtrSweepPairsProcessed, res.PairsProcessed)
		rec.Add(CtrSweepChainRewrites, res.Chain.Changes())
		rec.Add(CtrSweepMerges, int64(len(res.Merges)))
	}
	return res, nil
}

// SweepCtx is the serial sweep with cooperative cancellation and panic
// isolation: the context is checked once per sweepWindowOps incident-edge
// operations — the same window granularity as the parallel engines, so all
// sweeps share the one-window cancel-latency bound — and a panic inside the
// sort comparator surfaces as a *par.WorkerPanicError instead of crashing
// the process. Each checkpoint is also a fault.CancelWindow injection hit.
// On error the pair list may be left partially sorted (its sorted flag stays
// accurate) and the partial Result is discarded.
func SweepCtx(ctx context.Context, g *graph.Graph, pl *PairList, rec *obs.Recorder) (res *Result, err error) {
	defer par.RecoverPanicError(&err)
	end := rec.Phase("sweep")
	defer end()
	endSort := rec.Phase("sort")
	serr := pl.SortWorkersCtx(ctx, par.DefaultCap())
	endSort()
	if serr != nil {
		return nil, serr
	}
	endMerge := rec.Phase("merge")
	defer endMerge()
	res = &Result{Chain: NewChain(g.NumEdges())}
	sinceCheck := 0
	for i := range pl.Pairs {
		if sinceCheck >= sweepWindowOps {
			sinceCheck = 0
			fault.Hit(fault.CancelWindow)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		p := &pl.Pairs[i]
		sinceCheck += len(p.Common)
		for _, k := range p.Common {
			e1, ok1 := g.EdgeBetween(int(p.U), int(k))
			e2, ok2 := g.EdgeBetween(int(p.V), int(k))
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("core: pair (%d,%d) common neighbor %d has no incident edges in graph", p.U, p.V, k)
			}
			res.PairsProcessed++
			if c1, c2, merged := res.Chain.Merge(e1, e2); merged {
				res.Levels++
				into := c1
				if c2 < into {
					into = c2
				}
				res.Merges = append(res.Merges, Merge{
					Level: res.Levels,
					A:     c1,
					B:     c2,
					Into:  into,
					Sim:   p.Sim,
				})
			}
		}
	}
	if rec != nil {
		rec.Add(CtrSweepPairsProcessed, res.PairsProcessed)
		rec.Add(CtrSweepChainRewrites, res.Chain.Changes())
		rec.Add(CtrSweepMerges, int64(len(res.Merges)))
	}
	return res, nil
}

// Cluster is the serial end-to-end pipeline: Algorithm 1 followed by
// Algorithm 2.
func Cluster(g *graph.Graph) (*Result, error) {
	return ClusterRecorded(g, nil)
}

// ClusterRecorded is the end-to-end pipeline with optional instrumentation
// covering both phases.
func ClusterRecorded(g *graph.Graph, rec *obs.Recorder) (*Result, error) {
	return SweepRecorded(g, SimilarityRecorded(g, rec), rec)
}
