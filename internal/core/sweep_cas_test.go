package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/rng"
)

// TestSweepCASDifferential is the differential test of the lock-free
// min-reservation scheduler: on every graph family and every worker count
// 1..8, the engine — which routes large rounds through the CAS pass and small
// ones through the serial claim scan — must reproduce the serial sweep
// bitwise. It also checks the scheduling telemetry: a single-worker run must
// never enter the CAS pass, and across the families at least one
// multi-worker run must (otherwise the path under test silently never ran).
func TestSweepCASDifferential(t *testing.T) {
	var casRounds int64
	for name, g := range wedgeTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := Sweep(g, Similarity(g))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			for workers := 1; workers <= 8; workers++ {
				rec := obs.New()
				par, err := SweepParallelRecorded(g, Similarity(g), workers, rec)
				if err != nil {
					t.Fatalf("T=%d: %v", workers, err)
				}
				requireIdenticalSweep(t, fmt.Sprintf("T=%d vs serial", workers), par, serial)
				rounds := rec.Counter(CtrSweepCASRounds)
				if workers == 1 && rounds != 0 {
					t.Fatalf("T=1 scheduled %d CAS rounds; the serial claim scan owns single-worker windows", rounds)
				}
				casRounds += rounds
			}
		})
	}
	if casRounds == 0 {
		t.Fatal("no graph family scheduled a CAS round; the lock-free scheduler was never exercised")
	}
}

// TestSweepCASEngaged pins the dispatch gate on one workload big enough to
// guarantee CAS rounds: multi-worker runs must schedule through the lock-free
// pass (and still match serial bitwise), single-worker runs must not.
func TestSweepCASEngaged(t *testing.T) {
	g := graph.ErdosRenyi(400, 0.05, rng.New(1))
	serial, err := Sweep(g, Similarity(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		rec := obs.New()
		par, err := SweepParallelRecorded(g, Similarity(g), workers, rec)
		if err != nil {
			t.Fatalf("T=%d: %v", workers, err)
		}
		requireIdenticalSweep(t, fmt.Sprintf("T=%d", workers), par, serial)
		if rec.Counter(CtrSweepCASRounds) == 0 {
			t.Fatalf("T=%d: no CAS rounds on a %d-op workload", workers, serial.PairsProcessed)
		}
	}
	rec := obs.New()
	if _, err := SweepParallelRecorded(g, Similarity(g), 1, rec); err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter(CtrSweepCASRounds); got != 0 {
		t.Fatalf("T=1 scheduled %d CAS rounds", got)
	}
}

// TestSweepCASPipelined checks that the pipelined engine — which shares the
// window scheduler — also routes through the CAS pass at multi-worker counts
// and stays bitwise identical to serial.
func TestSweepCASPipelined(t *testing.T) {
	g := graph.ErdosRenyi(400, 0.05, rng.New(2))
	serial, err := Sweep(g, Similarity(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		rec := obs.New()
		pip, err := SweepPipelinedRecorded(g, Similarity(g), workers, rec)
		if err != nil {
			t.Fatalf("T=%d: %v", workers, err)
		}
		requireIdenticalSweep(t, fmt.Sprintf("pipelined T=%d", workers), pip, serial)
		if rec.Counter(CtrSweepCASRounds) == 0 {
			t.Fatalf("pipelined T=%d: no CAS rounds", workers)
		}
	}
}

// TestChainFindCompressAtomic checks the atomic find against the plain one on
// a maximal path: same root, full compression, and a rewrite count equal to
// the number of entries that did not already point at the root.
func TestChainFindCompressAtomic(t *testing.T) {
	n := 1000
	ch := NewChain(n)
	for i := 1; i < n; i++ {
		ch.c[i] = int32(i - 1) // one long path: n-1 -> n-2 -> ... -> 0
	}
	root, rewrites := ch.FindCompressAtomic(int32(n - 1))
	if root != 0 {
		t.Fatalf("root %d, want 0", root)
	}
	// Entry 1 already pointed at the root; entries 2..n-1 each take one CAS.
	if want := int64(n - 2); rewrites != want {
		t.Fatalf("%d rewrites, want %d", rewrites, want)
	}
	for i := range ch.c {
		if ch.c[i] != 0 {
			t.Fatalf("c[%d] = %d after compression, want 0", i, ch.c[i])
		}
	}
}

// TestChainFindCompressAtomicConcurrent hammers one long path from many
// goroutines. Under -race this proves the CAS discipline; the rewrite
// accounting must stay exact — every entry not already at the root is
// rewritten exactly once, credited to exactly one caller — because the
// engine's golden counter CtrSweepChainRewrites is built from these sums.
func TestChainFindCompressAtomicConcurrent(t *testing.T) {
	n := 4096
	ch := NewChain(n)
	for i := 1; i < n; i++ {
		ch.c[i] = int32(i - 1)
	}
	workers := 8
	var total atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := int32(n - 1 - w*17) // staggered entries onto the same path
		wg.Add(1)
		go func() {
			defer wg.Done()
			root, rw := ch.FindCompressAtomic(start)
			if root != 0 {
				t.Errorf("start %d: root %d, want 0", start, root)
			}
			total.Add(rw)
		}()
	}
	wg.Wait()
	// The union of the walked paths covers entries 2..n-1 (the topmost start
	// is n-1), each rewritten exactly once across all callers.
	if want := int64(n - 2); total.Load() != want {
		t.Fatalf("total rewrites %d, want exactly %d", total.Load(), want)
	}
	for i := range ch.c {
		if ch.c[i] != 0 {
			t.Fatalf("c[%d] = %d after concurrent compression, want 0", i, ch.c[i])
		}
	}
}
