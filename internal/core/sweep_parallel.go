package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"linkclust/internal/fault"
	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/par"
)

// Counter names recorded by the parallel fine-grained sweep.
const (
	// CtrSweepWindows counts merge-batch windows cut from the sorted list.
	CtrSweepWindows = "sweep.windows"
	// CtrSweepRounds counts conflict-free sub-batch rounds across windows.
	CtrSweepRounds = "sweep.rounds"
	// CtrSweepDeferrals counts operations pushed to a later round because a
	// cluster they touch was already reserved in the current one.
	CtrSweepDeferrals = "sweep.deferrals"
	// CtrSweepNoopDrops counts operations retired without a merge because
	// both edges already shared a cluster when they were scanned.
	CtrSweepNoopDrops = "sweep.noop_drops"
	// CtrSweepSerialDrains counts windows whose conflict-heavy residue was
	// finished by the exact serial drain instead of further rounds.
	CtrSweepSerialDrains = "sweep.serial_drains"
	// CtrSweepFlattens counts periodic whole-chain flatten passes.
	CtrSweepFlattens = "sweep.flattens"
	// CtrSweepCASRounds counts rounds scheduled through the lock-free
	// min-reservation path instead of the serial claim scan. Unlike the
	// counters above it is telemetry, not an invariant: the CAS path engages
	// only when the round is large enough AND more than one worker is
	// available, so the value is worker-dependent — but which operations it
	// selects, defers, or drops is not (see casRound).
	CtrSweepCASRounds = "sweep.cas_rounds"
)

// Engine tuning. Every threshold is a function of operation counts only —
// never of the worker count — so the engine's control flow (which operations
// are selected, deferred, dropped, or drained in which round) is identical
// for any number of workers. The merge stream's bitwise equality across
// worker counts follows by construction: a round's selection is a pure
// function of the (c1, c2) pairs of its pending ops — computed either by the
// serial claim scan or by the equivalent lock-free min-reservation pass (see
// casRound), which produce the same selected/deferred/dropped partition.
const (
	// sweepWindowOps is the target operation count of one merge batch.
	// Windows never split a vertex pair, so the last pair may overshoot.
	sweepWindowOps = 8192
	// sweepDrainOps is the pending-residue size below which a window is
	// finished by the serial drain: conflict-heavy tails retire ~1 op per
	// round, where barrier overhead would dominate.
	sweepDrainOps = 96
	// sweepParMinOps is the per-phase work floor for goroutine fan-out;
	// smaller phases run inline on the calling goroutine.
	sweepParMinOps = 512
	// sweepFlattenOps is the operation interval of the periodic whole-chain
	// flatten. The serial sweep path-compresses on every MERGE — 99%+ of
	// which are no-ops on real workloads — while the engine retires
	// pre-window no-ops during resolution without touching the chain, so an
	// explicit flatten keeps find paths short. The trigger counts
	// operations, never workers or wall time, so flatten points (and the
	// chain states they produce) are identical for any worker count.
	sweepFlattenOps = 1 << 19
)

// SweepParallel runs Algorithm 2 multi-threaded over merge batches: the
// sorted pair list is cut into windows of incident-edge operations, each
// window is processed in conflict-free sub-batch rounds (deterministic
// reservations in serial-index order), and the selected operations of a
// round apply concurrently to one shared chain — their clusters are pairwise
// disjoint, so their writes are too. The pair list is sorted in place.
//
// The result is exact, not just dendrogram-equivalent: the merge stream
// (Level, A, B, Into, Sim per event, in order) is bitwise identical to the
// serial Sweep for any worker count, and the final partition (NumClusters,
// Chain.Assignments) matches element-wise. Only the internal pointer
// structure of array C and its change counter may differ: the serial sweep
// path-compresses on every MERGE including no-ops, while the engine retires
// pre-window no-ops without touching the chain and keeps it flat with
// periodic count-triggered flatten passes, so the two take different rewrite
// sequences to the same partition.
//
// The ISSUE's replica scheme (per-worker clones folded with MergeChains, as
// the coarse sweep uses via MergeOpsReplicated) cannot achieve stream
// exactness: replica folds only reveal partition diffs, losing which
// operation caused which merge and the serial (A, B) operand order. The
// reservation engine keeps a single chain precisely so every event is
// attributed at its serial position.
func SweepParallel(g *graph.Graph, pl *PairList, workers int) (*Result, error) {
	return SweepParallelRecorded(g, pl, workers, nil)
}

// SweepParallelRecorded is SweepParallel with optional instrumentation:
// sort/merge phase timers plus the serial sweep's counters and the engine's
// window/round/deferral counters are recorded into rec. A nil rec records
// nothing and adds no measurable overhead.
func SweepParallelRecorded(g *graph.Graph, pl *PairList, workers int, rec *obs.Recorder) (*Result, error) {
	return SweepParallelCtx(context.Background(), g, pl, workers, rec)
}

// SweepParallelCtx is SweepParallelRecorded with cooperative cancellation and
// panic isolation. The context is checked at every op-count window cut (8192
// incident operations) and inside the parallel sort, so cancel latency is
// bounded by one window of merge work (or one sort round) for any worker
// count; on cancellation every pool drains before ctx.Err() is returned, so
// no goroutine outlives the call. A panic inside a worker surfaces as a
// *par.WorkerPanicError. The checks are pure reads — when ctx never cancels,
// the merge stream is bitwise identical to the serial Sweep.
func SweepParallelCtx(ctx context.Context, g *graph.Graph, pl *PairList, workers int, rec *obs.Recorder) (res *Result, err error) {
	defer par.RecoverPanicError(&err)
	workers = par.Normalize(workers)
	end := rec.Phase("sweep")
	defer end()
	endSort := rec.Phase("sort")
	serr := pl.SortWorkersCtx(ctx, workers)
	endSort()
	if serr != nil {
		return nil, serr
	}
	endMerge := rec.Phase("merge")
	defer endMerge()

	e := &sweepEngine{g: g, pl: pl, workers: workers, ctx: ctx}
	res, err = e.run()
	if err != nil {
		return nil, err
	}
	recordSweepEngine(rec, e)
	return res, nil
}

// sweepEngine holds the shared chain, the per-window operation buffers
// (reused across windows), and the cluster reservation table.
type sweepEngine struct {
	g       *graph.Graph
	pl      *PairList
	ch      *Chain
	workers int
	res     *Result

	// ctx is the run's cancellation context; nil means not cancellable
	// (legacy entry points). It is polled at every window cut in consume —
	// the engine's sole cancellation point, which bounds cancel latency by
	// one window of operations.
	ctx context.Context

	// Flat CSR copy of the adjacency with neighbor id and edge id packed
	// into one uint64 (id in the high half so packed order = neighbor
	// order). graph.Half is 24 bytes, so probing To fields during
	// resolution touches a cache line per ~2.6 entries; the packed copy
	// fits 8 per line and the final probe's line already holds the edge id.
	// Rebuilt in O(|V|+|E|) per sweep.
	adjOff []int32
	adjTE  []uint64

	// Survivor arrays: one entry per operation that was still live (edges in
	// different clusters) against the pre-window chain state. The 99%+ of
	// operations that are already no-ops before their window starts never
	// reach these — resolution drops them on the spot, which is exact
	// because cluster merging is monotone: edges sharing a cluster before
	// the window still share it at the op's serial position.
	sIdx   []int32       // survivor -> op index within the window
	e1, e2 []int32       // resolved incident edge ids, per survivor
	c1, c2 []int32       // cluster ids from the round's find phase
	evA    []int32       // merge operand A per survivor; -1 marks "no event"
	evB    []int32       // merge operand B per survivor
	pend   []int32       // survivors still pending in the current window
	next   []int32       // pending list under construction for the next round
	sel    []int32       // survivors selected by the current round's scan
	offs   []int32       // per-pair op offsets within the window
	wbuf   []survivorBuf // per-worker survivor staging buffers
	rbuf   []roundBuf    // per-worker CAS-round staging buffers
	parChg []int64       // per-worker change counts of the apply phase

	// resv is the per-cluster reservation table, shared by both round
	// schedulers. The serial claim scan tags a cluster with the round base
	// gen<<32; the CAS path tags it with base|opID, CASed downward so the
	// table converges to the minimum pending op id touching each cluster.
	// Tags from different rounds never collide: a later round's base exceeds
	// every tag (base or base|op) of any earlier round.
	resv []int64
	gen  int64 // current reservation generation (bumped per round)

	// Streaming window cursor: pairs [wp, wq) are accumulated into the
	// window under construction, carrying wops incident operations. The
	// monolithic run and the pipelined consumer share this state, so window
	// boundaries — a greedy, purely op-count-based function of the sorted
	// pair order — are identical whether the list arrives whole or in
	// sorted-bucket increments.
	wp, wq int
	wops   int

	opsSinceFlatten int64

	windows, rounds, deferrals, drops, drains, flattens, casRounds int64

	errMu sync.Mutex
	errOp int
	err   error
}

// survivorBuf stages one resolution worker's surviving operations. Workers
// cover contiguous, ascending op ranges, so concatenating the buffers in
// worker order restores serial op order.
type survivorBuf struct {
	idx    []int32
	e1, e2 []int32
	c1, c2 []int32
	drops  int64
}

func (b *survivorBuf) reset() {
	b.idx = b.idx[:0]
	b.e1, b.e2 = b.e1[:0], b.e2[:0]
	b.c1, b.c2 = b.c1[:0], b.c2[:0]
	b.drops = 0
}

// roundBuf stages one worker's output of a CAS round: the deferred ops of
// its contiguous pend range (concatenated in worker order to restore serial
// pend order) and its counter contributions.
type roundBuf struct {
	next          []int32
	chg           int64
	drops, defers int64
}

func (e *sweepEngine) run() (*Result, error) {
	e.init()
	if err := e.consume(len(e.pl.Pairs), true); err != nil {
		return nil, err
	}
	return e.res, nil
}

// init allocates the chain, the reservation table, and the per-worker
// buffers, and builds the packed adjacency. It must run before the first
// consume call.
func (e *sweepEngine) init() {
	m := e.g.NumEdges()
	e.ch = NewChain(m)
	e.res = &Result{Chain: e.ch}
	e.resv = make([]int64, m)
	e.parChg = make([]int64, e.workers)
	e.wbuf = make([]survivorBuf, e.workers)
	e.rbuf = make([]roundBuf, e.workers)
	e.buildCSR()
}

// consume advances the window cutter over pairs below the frontier index and
// processes every completed window. A window completes when it carries at
// least sweepWindowOps incident operations (never splitting a pair), or —
// with final set — when the stream ends. Because completion is decided
// purely by op counts against the pair order, feeding the list in any
// sequence of frontier increments produces exactly the windows (and thus
// exactly the merge stream) of a single whole-list call.
//
// Pairs below the frontier must be in their final sorted positions and must
// not change afterwards; the pipelined producer guarantees this by emitting
// a frontier only after the bucket below it is sorted and copied in place.
func (e *sweepEngine) consume(frontier int, final bool) error {
	pairs := e.pl.Pairs
	for {
		// Accumulate pairs into the window under construction, with
		// per-pair op offsets for the parallel fill.
		for e.wq < frontier && e.wops < sweepWindowOps {
			e.offs = append(e.offs, int32(e.wops))
			e.wops += len(pairs[e.wq].Common)
			e.wq++
		}
		if e.wops < sweepWindowOps && !(final && e.wq >= frontier) {
			return nil // window still open; wait for more pairs
		}
		if e.wq == e.wp {
			return nil // final call with nothing accumulated
		}
		e.offs = append(e.offs, int32(e.wops))
		if w := e.wops; w > 0 {
			// The window cut is the engine's cancellation point (and the
			// fault.CancelWindow injection site): one check per
			// sweepWindowOps operations bounds cancel latency by one window
			// without touching any per-op hot path.
			fault.Hit(fault.CancelWindow)
			if e.ctx != nil {
				if err := e.ctx.Err(); err != nil {
					return err
				}
			}
			if err := e.window(e.wp, e.wq, w); err != nil {
				return err
			}
			e.res.PairsProcessed += int64(w)
			e.windows++
			e.opsSinceFlatten += int64(w)
			if e.opsSinceFlatten >= sweepFlattenOps {
				e.flatten()
				e.opsSinceFlatten = 0
			}
		}
		e.wp = e.wq
		e.wops = 0
		e.offs = e.offs[:0]
	}
}

// flatten rewrites every chain entry to point directly at its cluster
// terminal. A single ascending pass suffices: writes preserve c[i] <= i, so
// when entry i is reached every entry below it is already flat and c[c[i]]
// is i's terminal.
func (e *sweepEngine) flatten() {
	c := e.ch.c
	var changes int64
	for i := range c {
		if r := c[c[i]]; c[i] != r {
			c[i] = r
			changes++
		}
	}
	e.ch.changes += changes
	e.flattens++
}

// window processes ops [0, w) resolved from pairs [p0, p1) to completion and
// emits their merge events in serial operation order. Only the survivors of
// resolution (live against the pre-window state) enter the round loop.
func (e *sweepEngine) window(p0, p1, w int) error {
	ns := e.resolve(p0, p1, w)
	if e.err != nil {
		return e.err
	}
	if cap(e.evA) < ns {
		e.evA = make([]int32, ns)
		e.evB = make([]int32, ns)
	}
	e.evA, e.evB = e.evA[:ns], e.evB[:ns]
	pend := e.pend[:0]
	for j := 0; j < ns; j++ {
		pend = append(pend, int32(j))
		e.evA[j] = -1
	}
	first := true
	for len(pend) > 0 {
		e.rounds++
		if len(pend) <= sweepDrainOps {
			e.drain(pend)
			e.drains++
			break
		}
		// Large rounds with real parallelism available go through the
		// lock-free min-reservation scheduler; small rounds (and 1-worker
		// runs) keep the serial claim scan, whose barrier-free passes win
		// below the fan-out floor. The two produce the same selection,
		// deferral order, drop count, and rewrite count (see casRound), so
		// the dispatch — though worker-dependent — cannot change the merge
		// stream or any invariant counter.
		if e.workers >= 2 && len(pend) >= sweepParMinOps {
			e.casRound(pend, first)
		} else {
			// Round 1's find is fused into resolution (the chain is
			// quiescent there and round 1's pre-round state is the
			// pre-window state).
			if !first {
				e.find(pend)
			}
			sel := e.scan(pend)
			e.apply(sel)
		}
		first = false
		pend, e.next = e.next, pend
	}
	e.pend = pend[:0]
	// Emission in op order restores the serial stream: an op selected in a
	// late round may precede (in serial index) one selected earlier, and the
	// disjoint-cluster reservation makes their applications commute. The
	// survivor list is sorted by op index, so a single cursor pairs each
	// event with its pair's similarity via the per-pair op offsets.
	res := e.res
	pairs := e.pl.Pairs
	cur := 0
	for pi := p0; pi < p1 && cur < ns; pi++ {
		sim := pairs[pi].Sim
		lim := e.offs[pi-p0+1]
		for cur < ns && e.sIdx[cur] < lim {
			a := e.evA[cur]
			if a < 0 {
				cur++
				continue
			}
			b := e.evB[cur]
			into := a
			if b < into {
				into = b
			}
			res.Levels++
			res.Merges = append(res.Merges, Merge{
				Level: res.Levels,
				A:     a,
				B:     b,
				Into:  into,
				Sim:   sim,
			})
			cur++
		}
	}
	return nil
}

// resolve computes the window's operations — for every pair and every common
// neighbor k, the ids of edges (U, k) and (V, k) plus their pre-window
// cluster terminals — and keeps only the survivors: ops whose edges are in
// different clusters. Pairs partition contiguously across workers by op
// offsets; within a pair the sorted Common list is merged against the sorted
// packed adjacency with a galloping scan, replacing the serial sweep's two
// binary searches per operation. Returns the survivor count after
// concatenating the worker buffers in op order into the shared arrays.
func (e *sweepEngine) resolve(p0, p1, w int) int {
	np := p1 - p0
	used := 0
	if w < sweepParMinOps || e.workers < 2 {
		// Single-worker resolution writes survivors straight into the shared
		// arrays — the staging buffers exist only to keep concurrent workers
		// apart, and skipping the concatenation copy is a measurable win on
		// the windows-dominated serial path.
		b := survivorBuf{idx: e.sIdx[:0], e1: e.e1[:0], e2: e.e2[:0], c1: e.c1[:0], c2: e.c2[:0]}
		e.resolveRange(p0, p0, p1, &b)
		e.drops += b.drops
		e.sIdx, e.e1, e.e2, e.c1, e.c2 = b.idx, b.e1, b.e2, b.c1, b.c2
		return len(e.sIdx)
	}
	// Precompute the balanced pair ranges, then fan out through par.Run
	// so a panic inside resolution is isolated like every other pool.
	type resolveRange struct{ lo, hi int }
	var ranges []resolveRange
	prev := 0
	for t := 0; t < e.workers && prev < np; t++ {
		target := w * (t + 1) / e.workers
		end := prev
		for end < np && int(e.offs[end]) < target {
			end++
		}
		if t == e.workers-1 {
			end = np
		}
		if end == prev {
			continue
		}
		e.wbuf[used].reset()
		ranges = append(ranges, resolveRange{lo: p0 + prev, hi: p0 + end})
		used++
		prev = end
	}
	par.Run(len(ranges), func(t int, _ func() bool) {
		e.resolveRange(p0, ranges[t].lo, ranges[t].hi, &e.wbuf[t])
	})
	e.sIdx = e.sIdx[:0]
	e.e1, e.e2 = e.e1[:0], e.e2[:0]
	e.c1, e.c2 = e.c1[:0], e.c2[:0]
	for i := 0; i < used; i++ {
		b := &e.wbuf[i]
		e.drops += b.drops
		e.sIdx = append(e.sIdx, b.idx...)
		e.e1 = append(e.e1, b.e1...)
		e.e2 = append(e.e2, b.e2...)
		e.c1 = append(e.c1, b.c1...)
		e.c2 = append(e.c2, b.c2...)
	}
	return len(e.sIdx)
}

// buildCSR flattens the adjacency into the packed resolution layout.
func (e *sweepEngine) buildCSR() {
	n := e.g.NumVertices()
	e.adjOff = make([]int32, n+1)
	e.adjTE = make([]uint64, 2*e.g.NumEdges())
	pos := int32(0)
	for v := 0; v < n; v++ {
		e.adjOff[v] = pos
		for _, h := range e.g.Neighbors(v) {
			e.adjTE[pos] = uint64(uint32(h.To))<<32 | uint64(uint32(h.Edge))
			pos++
		}
	}
	e.adjOff[n] = pos
}

func (e *sweepEngine) resolveRange(p0, lo, hi int, b *survivorBuf) {
	pairs := e.pl.Pairs
	adjOff, adjTE := e.adjOff, e.adjTE
	c := e.ch.c
	drops := int64(0)
	off := int(e.offs[lo-p0])
	for pi := lo; pi < hi; pi++ {
		pr := &pairs[pi]
		tu := adjTE[adjOff[pr.U]:adjOff[pr.U+1]]
		tv := adjTE[adjOff[pr.V]:adjOff[pr.V+1]]
		iu, iv := 0, 0
		for _, k := range pr.Common {
			// The gallop is inlined by hand on both sides: at two calls
			// per incident pair this is the innermost kernel of the whole
			// sweep, and the call overhead alone is measurable.
			key := uint64(uint32(k)) << 32
			for iu < len(tu) && tu[iu]>>32 < uint64(uint32(k)) {
				step := 1
				for iu+step < len(tu) && tu[iu+step]>>32 < uint64(uint32(k)) {
					iu += step
					step <<= 1
				}
				glo, ghi := iu+1, iu+step
				if ghi > len(tu) {
					ghi = len(tu)
				}
				for glo < ghi {
					mid := int(uint(glo+ghi) >> 1)
					if tu[mid]>>32 < uint64(uint32(k)) {
						glo = mid + 1
					} else {
						ghi = mid
					}
				}
				iu = glo
				break
			}
			if iu >= len(tu) || tu[iu]&^uint64(1<<32-1) != key {
				e.fail(pi, off, k)
				return
			}
			e1 := int32(uint32(tu[iu]))
			for iv < len(tv) && tv[iv]>>32 < uint64(uint32(k)) {
				step := 1
				for iv+step < len(tv) && tv[iv+step]>>32 < uint64(uint32(k)) {
					iv += step
					step <<= 1
				}
				glo, ghi := iv+1, iv+step
				if ghi > len(tv) {
					ghi = len(tv)
				}
				for glo < ghi {
					mid := int(uint(glo+ghi) >> 1)
					if tv[mid]>>32 < uint64(uint32(k)) {
						glo = mid + 1
					} else {
						ghi = mid
					}
				}
				iv = glo
				break
			}
			if iv >= len(tv) || tv[iv]&^uint64(1<<32-1) != key {
				e.fail(pi, off, k)
				return
			}
			e2 := int32(uint32(tv[iv]))
			// Fused round-1 find, while e1/e2 are still in registers. Equal
			// terminals against the pre-window state mean the op is a no-op
			// at its serial position too (merging is monotone), so it is
			// retired here and never enters the round machinery.
			x := e1
			for c[x] != x {
				x = c[x]
			}
			y := e2
			for c[y] != y {
				y = c[y]
			}
			if x == y {
				drops++
			} else {
				b.idx = append(b.idx, int32(off))
				b.e1 = append(b.e1, e1)
				b.e2 = append(b.e2, e2)
				b.c1 = append(b.c1, x)
				b.c2 = append(b.c2, y)
			}
			off++
			iu++
			iv++
		}
	}
	b.drops = drops
}

// fail records a resolution failure, keeping the first in serial op order so
// the reported error matches the serial sweep's.
func (e *sweepEngine) fail(pi, op int, k int32) {
	e.errMu.Lock()
	if e.err == nil || op < e.errOp {
		pr := &e.pl.Pairs[pi]
		e.errOp = op
		e.err = fmt.Errorf("core: pair (%d,%d) common neighbor %d has no incident edges in graph", pr.U, pr.V, k)
	}
	e.errMu.Unlock()
}

// gallopTo locates neighbor k in a sorted neighbor-id array, starting from
// index from: an exponential probe bounds the range, a binary search pins
// it. Successive k values are ascending, so resuming from the previous match
// makes a whole pair's lookups O(|Common| · log(gap)) with strong locality
// instead of |Common| full binary searches.
func gallopTo(to []int32, from int, k int32) (pos int, ok bool) {
	i := from
	if i < len(to) && to[i] < k {
		step := 1
		for i+step < len(to) && to[i+step] < k {
			i += step
			step <<= 1
		}
		lo, hi := i+1, i+step
		if hi > len(to) {
			hi = len(to)
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if to[mid] < k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		i = lo
	}
	if i < len(to) && to[i] == k {
		return i, true
	}
	return i, false
}

// find computes the pre-round cluster ids of every pending op. It is
// read-only on the shared chain, so the fan-out is race-free.
func (e *sweepEngine) find(pend []int32) {
	c := e.ch.c
	body := func(lo, hi int) {
		for x := lo; x < hi; x++ {
			j := pend[x]
			i := e.e1[j]
			for c[i] != i {
				i = c[i]
			}
			e.c1[j] = i
			i = e.e2[j]
			for c[i] != i {
				i = c[i]
			}
			e.c2[j] = i
		}
	}
	if len(pend) < sweepParMinOps || e.workers < 2 {
		body(0, len(pend))
		return
	}
	par.Do(len(pend), e.workers, func(_, lo, hi int) { body(lo, hi) })
}

// scan is the serial heart of a round: walking pending ops in serial-index
// order, it drops no-ops, reserves the two clusters of every live op, and
// selects the ops whose clusters were both free. A conflicting op is
// deferred to the next round but still reserves its clusters — that is the
// per-cluster FIFO (by serial index) that makes every selected op's operand
// pair equal what the serial sweep would have computed at that op's turn:
// no later op can touch a cluster while an earlier op still has business
// with it, and merges of disjoint clusters commute.
//
// The scan also path-compresses both find paths to their current terminals.
// Compression here is safe (the scan runs alone between the find and apply
// barriers) and partition-preserving, and because it happens in the serial
// scan it is identical for any worker count. The bulk of the chain — edges
// whose ops were retired during resolution and never reach a scan — is kept
// flat by the periodic whole-chain flatten instead (see sweepFlattenOps).
func (e *sweepEngine) scan(pend []int32) []int32 {
	e.gen++
	base := e.gen << 32
	c := e.ch.c
	resv := e.resv
	sel := e.sel[:0]
	nxt := e.next[:0]
	var changes int64
	for _, j := range pend {
		c1, c2 := e.c1[j], e.c2[j]
		changes += compressPath(c, e.e1[j], c1)
		changes += compressPath(c, e.e2[j], c2)
		if c1 == c2 {
			e.drops++
			continue
		}
		if resv[c1] == base || resv[c2] == base {
			resv[c1], resv[c2] = base, base
			nxt = append(nxt, j)
			e.deferrals++
			continue
		}
		resv[c1], resv[c2] = base, base
		e.evA[j], e.evB[j] = c1, c2
		sel = append(sel, j)
	}
	e.ch.changes += changes
	e.sel = sel
	e.next = nxt
	return sel
}

// apply performs the selected merges on the shared chain. Selection
// guarantees pairwise-disjoint cluster pairs, chain pointers never leave
// their own cluster, and the scan already compressed both paths — so each
// op rewrites at most the four entries {e1, c1, e2, c2}, all within its own
// two clusters, and concurrent ops touch disjoint memory.
func (e *sweepEngine) apply(sel []int32) {
	if len(sel) == 0 {
		return
	}
	c := e.ch.c
	body := func(lo, hi int) int64 {
		var n int64
		for x := lo; x < hi; x++ {
			j := sel[x]
			cmin := e.evA[j]
			if b := e.evB[j]; b < cmin {
				cmin = b
			}
			n += compressPath(c, e.e1[j], cmin)
			n += compressPath(c, e.e2[j], cmin)
		}
		return n
	}
	if len(sel) < sweepParMinOps/8 || e.workers < 2 {
		e.ch.changes += body(0, len(sel))
		return
	}
	par.Do(len(sel), e.workers, func(t, lo, hi int) { e.parChg[t] = body(lo, hi) })
	for t := range e.parChg {
		e.ch.changes += e.parChg[t]
		e.parChg[t] = 0
	}
}

// casRound schedules one round through the lock-free min-reservation path
// (gbbs unite_variants style) instead of the serial claim scan. Two barrier-
// separated parallel passes over the pending ops replace the scan's single
// serial walk:
//
// Pass A (find + reserve): every worker computes the pre-round cluster pair
// (c1, c2) of each op in its contiguous pend range (fused with atomic path
// compression to the op's own terminals — safe because no merges happen
// before the barrier, so terminals are fixed points all pass long) and, for
// live ops, CASes the op's id into resv[c1] and resv[c2], keeping the
// MINIMUM id per cluster (reserveMin).
//
// Pass B (select + apply): op j wins iff resv[c1] == resv[c2] == base|j,
// i.e. j is the minimum live op id touching both its clusters. Winners merge
// in place (their cluster pairs are pairwise disjoint by construction — each
// reserved cluster names exactly one minimum); losers go to the per-worker
// deferral list, concatenated in worker order to restore serial pend order.
//
// Equivalence with the serial scan: the scan walks ops in ascending serial
// index and selects an op iff neither cluster was reserved earlier in the
// walk — which holds iff no SMALLER live op id touches either cluster, i.e.
// iff the op is the minimum live id on both. That is exactly the CAS winner
// condition, so selection, deferral order (pend order is preserved), drop
// set, and therefore the merge stream are identical. The rewrite counter
// also matches: per round, both schedulers rewrite exactly the chain entries
// that do not yet point at their round-start terminal (each counted once —
// compressPathAtomic credits only the successful CASer of a transition), and
// winners' merge writes start from identically-compressed paths.
func (e *sweepEngine) casRound(pend []int32, first bool) {
	e.casRounds++
	e.gen++
	base := e.gen << 32
	c := e.ch.c
	resv := e.resv
	used := e.workers
	if used > len(pend) {
		used = len(pend)
	}
	par.Do(len(pend), e.workers, func(t, lo, hi int) {
		var chg int64
		for x := lo; x < hi; x++ {
			j := pend[x]
			var c1, c2 int32
			if first {
				// Round 1's find was fused into resolution against the
				// quiescent pre-window chain.
				c1, c2 = e.c1[j], e.c2[j]
			} else {
				c1 = findAtomic(c, e.e1[j])
				c2 = findAtomic(c, e.e2[j])
				e.c1[j], e.c2[j] = c1, c2
			}
			chg += compressPathAtomic(c, e.e1[j], c1)
			chg += compressPathAtomic(c, e.e2[j], c2)
			if c1 != c2 {
				tag := base | int64(uint32(j))
				reserveMin(resv, c1, base, tag)
				reserveMin(resv, c2, base, tag)
			}
		}
		e.rbuf[t].chg = chg
	})
	// Barrier: par.Do joined, so every reservation and compression write
	// happens-before every pass-B read; plain loads are race-free below.
	par.Do(len(pend), e.workers, func(t, lo, hi int) {
		b := &e.rbuf[t]
		b.next = b.next[:0]
		var chg, drops, defers int64
		for x := lo; x < hi; x++ {
			j := pend[x]
			c1, c2 := e.c1[j], e.c2[j]
			if c1 == c2 {
				drops++
				continue
			}
			tag := base | int64(uint32(j))
			if resv[c1] == tag && resv[c2] == tag {
				cmin := c1
				if c2 < cmin {
					cmin = c2
				}
				chg += compressPath(c, e.e1[j], cmin)
				chg += compressPath(c, e.e2[j], cmin)
				e.evA[j], e.evB[j] = c1, c2
			} else {
				b.next = append(b.next, j)
				defers++
			}
		}
		b.chg += chg
		b.drops, b.defers = drops, defers
	})
	nxt := e.next[:0]
	for t := 0; t < used; t++ {
		b := &e.rbuf[t]
		e.ch.changes += b.chg
		e.drops += b.drops
		e.deferrals += b.defers
		nxt = append(nxt, b.next...)
		b.chg, b.drops, b.defers = 0, 0, 0
	}
	e.next = nxt
}

// findAtomic walks the chain to its terminal through atomic loads. It is
// safe concurrent with compressPathAtomic: compression only rewrites entries
// to their (fixed) terminals, so every value read is a valid next hop and the
// walk still converges — typically faster, because peers shortcut the path.
func findAtomic(c []int32, i int32) int32 {
	for {
		v := atomic.LoadInt32(&c[i])
		if v == i {
			return i
		}
		i = v
	}
}

// compressPathAtomic rewrites the chain from i toward root (i's terminal)
// with CAS, returning the number of transitions it won. Concurrent
// compressions of overlapping paths write the same values (a path has one
// terminal), so a failed CAS means a peer already did this hop: the loop
// re-reads and either stops (entry now points at root) or continues from the
// still-valid next pointer. Each entry's single non-root -> root transition
// is credited to exactly one worker, making the summed count equal the
// serial scan's rewrite count for the same round.
func compressPathAtomic(c []int32, i, root int32) int64 {
	var n int64
	for i != root {
		v := atomic.LoadInt32(&c[i])
		if v == root {
			return n
		}
		if atomic.CompareAndSwapInt32(&c[i], v, root) {
			n++
			i = v
		}
	}
	return n
}

// reserveMin CASes tag = base|opID into resv[cl], keeping the minimum: it
// yields if the table already holds a tag from this round (cur >= base) that
// is no larger than ours. Tags of earlier rounds (and the zero value) are
// always below base, so they lose to any current-round tag.
func reserveMin(resv []int64, cl int32, base, tag int64) {
	for {
		cur := atomic.LoadInt64(&resv[cl])
		if cur >= base && cur <= tag {
			return
		}
		if atomic.CompareAndSwapInt64(&resv[cl], cur, tag) {
			return
		}
	}
}

// drain retires a window's residue with exact serial semantics: find, merge,
// record — one op at a time, in serial-index order. Its trigger is a pure
// op-count threshold, so whether a window drains is worker-independent.
func (e *sweepEngine) drain(pend []int32) {
	c := e.ch.c
	var changes int64
	for _, j := range pend {
		c1 := chainFind(c, e.e1[j])
		c2 := chainFind(c, e.e2[j])
		if c1 == c2 {
			changes += compressPath(c, e.e1[j], c1)
			changes += compressPath(c, e.e2[j], c2)
			e.drops++
			continue
		}
		cmin := c1
		if c2 < cmin {
			cmin = c2
		}
		changes += compressPath(c, e.e1[j], cmin)
		changes += compressPath(c, e.e2[j], cmin)
		e.evA[j], e.evB[j] = c1, c2
	}
	e.ch.changes += changes
}

// chainFind is Chain.Find on the raw array.
func chainFind(c []int32, i int32) int32 {
	for c[i] != i {
		i = c[i]
	}
	return i
}

// compressPath rewrites every entry on the chain from i to root (writing
// root itself only if it does not already point there), reading each next
// pointer before overwriting it. It returns the number of rewrites. With
// root = the path's own terminal this is pure path compression; with root =
// the minimum of two clusters it is the MERGE write pass.
func compressPath(c []int32, i, root int32) int64 {
	var n int64
	for c[i] != root {
		next := c[i]
		c[i] = root
		i = next
		n++
	}
	return n
}
