package core

import (
	"fmt"
	"testing"

	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/rng"
)

// requireIdenticalSweep asserts that two sweep results are exactly equal:
// bitwise-identical merge streams (Level, A, B, Into, Sim per event, in
// order), element-wise identical final assignments, and matching summary
// fields. This is the engine's contract — not dendrogram equivalence up to
// reordering, but the serial stream itself.
func requireIdenticalSweep(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Merges) != len(want.Merges) {
		t.Fatalf("%s: %d merges, want %d", label, len(got.Merges), len(want.Merges))
	}
	for i := range want.Merges {
		if got.Merges[i] != want.Merges[i] {
			t.Fatalf("%s: merge %d = %+v, want %+v", label, i, got.Merges[i], want.Merges[i])
		}
	}
	ga, wa := got.Chain.Assignments(), want.Chain.Assignments()
	if len(ga) != len(wa) {
		t.Fatalf("%s: %d assignments, want %d", label, len(ga), len(wa))
	}
	for i := range wa {
		if ga[i] != wa[i] {
			t.Fatalf("%s: assignment[%d] = %d, want %d", label, i, ga[i], wa[i])
		}
	}
	if got.NumClusters() != want.NumClusters() {
		t.Fatalf("%s: %d clusters, want %d", label, got.NumClusters(), want.NumClusters())
	}
	if got.Levels != want.Levels {
		t.Fatalf("%s: %d levels, want %d", label, got.Levels, want.Levels)
	}
	if got.PairsProcessed != want.PairsProcessed {
		t.Fatalf("%s: %d ops processed, want %d", label, got.PairsProcessed, want.PairsProcessed)
	}
}

// TestSweepParallelDifferential is the differential test of the parallel
// fine-grained sweep: on every graph family (random, planted communities,
// word association, structured, degenerate) and every worker count 1..8, the
// engine must reproduce the serial sweep exactly — bitwise-equal merge
// streams and identical final partitions.
func TestSweepParallelDifferential(t *testing.T) {
	for name, g := range wedgeTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := Sweep(g, Similarity(g))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			for workers := 1; workers <= 8; workers++ {
				par, err := SweepParallel(g, Similarity(g), workers)
				if err != nil {
					t.Fatalf("T=%d: %v", workers, err)
				}
				requireIdenticalSweep(t, fmt.Sprintf("T=%d vs serial", workers), par, serial)
			}
		})
	}
}

// TestSweepParallelRandomLarge pushes past the shared families with graphs
// big enough to cut many windows and cross the engine's fan-out thresholds.
func TestSweepParallelRandomLarge(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.ErdosRenyi(300, 0.06, rng.New(seed))
		serial, err := Sweep(g, Similarity(g))
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		for _, workers := range []int{1, 3, 8} {
			par, err := SweepParallel(g, Similarity(g), workers)
			if err != nil {
				t.Fatalf("seed %d T=%d: %v", seed, workers, err)
			}
			requireIdenticalSweep(t, fmt.Sprintf("seed %d T=%d", seed, workers), par, serial)
		}
	}
}

// TestSweepParallelWorkerExtremes pins worker-count normalization: negative,
// zero, and absurdly large requests all run and all reproduce the serial
// stream.
func TestSweepParallelWorkerExtremes(t *testing.T) {
	g := graph.ErdosRenyi(100, 0.1, rng.New(9))
	serial, err := Sweep(g, Similarity(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-3, 0, 1, 1 << 20} {
		par, err := SweepParallel(g, Similarity(g), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireIdenticalSweep(t, fmt.Sprintf("workers=%d", workers), par, serial)
	}
}

// TestSweepParallelErrorParity feeds both sweeps a pair list computed from a
// different graph than the one being swept. The serial sweep reports the
// first operation whose incident edge is missing; the engine resolves
// batches concurrently but must surface the identical error.
func TestSweepParallelErrorParity(t *testing.T) {
	g, err := graph.Circulant(48, 6)
	if err != nil {
		t.Fatal(err)
	}
	foreign := graph.Complete(48)
	_, serialErr := Sweep(g, Similarity(foreign))
	if serialErr == nil {
		t.Fatal("serial sweep accepted a foreign pair list")
	}
	for workers := 1; workers <= 8; workers++ {
		_, parErr := SweepParallel(g, Similarity(foreign), workers)
		if parErr == nil {
			t.Fatalf("T=%d: parallel sweep accepted a foreign pair list", workers)
		}
		if parErr.Error() != serialErr.Error() {
			t.Fatalf("T=%d: error %q, want serial's %q", workers, parErr, serialErr)
		}
	}
}

// TestSweepParallelCounters checks the recorded instrumentation against the
// result: the op/merge counters must agree with the returned Result, and the
// engine's accounting identity must hold — every operation is retired exactly
// once, as either a merge event or a no-op drop.
func TestSweepParallelCounters(t *testing.T) {
	g := graph.ErdosRenyi(200, 0.08, rng.New(4))
	rec := obs.New()
	res, err := SweepParallelRecorded(g, Similarity(g), 4, rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter(CtrSweepPairsProcessed); got != res.PairsProcessed {
		t.Fatalf("pairs counter %d, want %d", got, res.PairsProcessed)
	}
	if got := rec.Counter(CtrSweepMerges); got != int64(len(res.Merges)) {
		t.Fatalf("merges counter %d, want %d", got, len(res.Merges))
	}
	if got := rec.Counter(CtrSweepChainRewrites); got != res.Chain.Changes() {
		t.Fatalf("rewrites counter %d, want %d", got, res.Chain.Changes())
	}
	if rec.Counter(CtrSweepWindows) < 1 {
		t.Fatal("no windows recorded")
	}
	if rec.Counter(CtrSweepRounds) < rec.Counter(CtrSweepWindows) {
		t.Fatalf("rounds %d < windows %d", rec.Counter(CtrSweepRounds), rec.Counter(CtrSweepWindows))
	}
	retired := rec.Counter(CtrSweepMerges) + rec.Counter(CtrSweepNoopDrops)
	if retired != res.PairsProcessed {
		t.Fatalf("merges + drops = %d, want every op retired once (%d)", retired, res.PairsProcessed)
	}
}
