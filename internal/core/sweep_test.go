package core

import (
	"testing"

	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

func TestSweepPaperExample(t *testing.T) {
	g := graph.PaperExample()
	res, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	// 8 edges end in a single cluster after 7 pairwise merges.
	if res.NumClusters() != 1 {
		t.Fatalf("clusters = %d, want 1", res.NumClusters())
	}
	if res.Levels != 7 || len(res.Merges) != 7 {
		t.Fatalf("levels = %d merges = %d, want 7", res.Levels, len(res.Merges))
	}
	if res.PairsProcessed != 16 {
		t.Fatalf("pairs processed = %d, want K2 = 16", res.PairsProcessed)
	}
	// The hub pair (sim 2/3) outranks leaf pairs (sim 1/2): the first
	// four merges all stem from it, joining the two edges at each leaf.
	for i := 0; i < 4; i++ {
		m := res.Merges[i]
		e1, e2 := g.Edge(int(m.A)), g.Edge(int(m.B))
		leaf1 := e1.V // hub edges are (hub, leaf) with hub < leaf... check both.
		if e1.U != 0 && e1.U != 1 {
			leaf1 = e1.U
		}
		leaf2 := e2.V
		if e2.U != 0 && e2.U != 1 {
			leaf2 = e2.U
		}
		if leaf1 != leaf2 {
			t.Fatalf("merge %d joined edges at different leaves: %+v %+v", i, e1, e2)
		}
	}
}

func TestSweepMergeLevelsStrictlyIncrease(t *testing.T) {
	g := graph.ErdosRenyi(40, 0.2, rng.New(2))
	res, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range res.Merges {
		if m.Level != int32(i+1) {
			t.Fatalf("merge %d has level %d, want %d", i, m.Level, i+1)
		}
		if m.Into != min32(m.A, m.B) {
			t.Fatalf("merge %d: Into=%d, want min(%d,%d)", i, m.Into, m.A, m.B)
		}
		if m.A == m.B {
			t.Fatalf("merge %d joins a cluster with itself", i)
		}
	}
}

func TestSweepMergeSimsNonIncreasing(t *testing.T) {
	// Single-linkage dendrograms merge at non-increasing similarity.
	g := graph.ErdosRenyi(40, 0.25, rng.New(7))
	res, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Merges); i++ {
		if res.Merges[i].Sim > res.Merges[i-1].Sim+1e-12 {
			t.Fatalf("merge %d sim %v > previous %v", i, res.Merges[i].Sim, res.Merges[i-1].Sim)
		}
	}
}

func TestSweepClusterCountConsistency(t *testing.T) {
	// clusters at end = |E| - (number of merges).
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.ErdosRenyi(30, 0.2, rng.New(seed))
		res, err := Cluster(g)
		if err != nil {
			t.Fatal(err)
		}
		want := g.NumEdges() - len(res.Merges)
		if got := res.NumClusters(); got != want {
			t.Fatalf("seed %d: clusters = %d, want %d", seed, got, want)
		}
	}
}

func TestSweepConnectedEdgesConverge(t *testing.T) {
	// In a complete graph all edges are mutually reachable through
	// incident pairs, so the sweep must end with one cluster.
	res, err := Cluster(graph.Complete(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 1 {
		t.Fatalf("K7 clusters = %d, want 1", res.NumClusters())
	}
}

func TestSweepDisjointEdgesUntouched(t *testing.T) {
	// A perfect matching has no incident edge pairs: nothing merges.
	g := graph.DisjointEdges(5)
	res, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 5 || len(res.Merges) != 0 {
		t.Fatalf("matching: clusters=%d merges=%d", res.NumClusters(), len(res.Merges))
	}
}

func TestSweepDeterministic(t *testing.T) {
	g := graph.ErdosRenyi(35, 0.2, rng.New(11))
	a, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Merges) != len(b.Merges) {
		t.Fatalf("merge counts differ: %d vs %d", len(a.Merges), len(b.Merges))
	}
	for i := range a.Merges {
		if a.Merges[i] != b.Merges[i] {
			t.Fatalf("merge %d differs: %+v vs %+v", i, a.Merges[i], b.Merges[i])
		}
	}
}

func TestSweepWithParallelInit(t *testing.T) {
	// Parallel Phase I feeding serial Phase II must give the same
	// dendrogram as the all-serial pipeline.
	g := graph.ErdosRenyi(50, 0.15, rng.New(13))
	serial, err := Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		par, err := Sweep(g, SimilarityParallel(g, workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Merges) != len(serial.Merges) {
			t.Fatalf("workers=%d: %d merges, want %d", workers, len(par.Merges), len(serial.Merges))
		}
		sa, pa := serial.Chain.Assignments(), par.Chain.Assignments()
		for i := range sa {
			if sa[i] != pa[i] {
				t.Fatalf("workers=%d: edge %d cluster %d, want %d", workers, i, pa[i], sa[i])
			}
		}
	}
}

func TestSweepMismatchedGraphFails(t *testing.T) {
	g1 := graph.Complete(5)
	pl := Similarity(g1)
	g2 := graph.DisjointEdges(5) // different incidence structure
	if _, err := Sweep(g2, pl); err == nil {
		t.Fatal("sweeping a foreign pair list succeeded")
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
