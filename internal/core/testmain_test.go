package core

import (
	"os"
	"runtime"
	"testing"
)

// TestMain oversubscribes the runtime on small CI machines so multi-worker
// scenarios keep engaging the parallel code paths: par.DefaultCap tracks
// max(GOMAXPROCS, NumCPU) with no unconditional floor, and without this
// bump a 1-core runner would normalize every T=2..8 request to serial.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
	os.Exit(m.Run())
}
