// Package corpus provides the text-processing substrate of the paper's
// evaluation pipeline: tokenization, stop-word removal, Porter stemming, and
// a deterministic synthetic tweet generator standing in for the proprietary
// December-2011 Twitter dataset (see DESIGN.md §2 for the substitution
// rationale).
//
// A Corpus is an ordered collection of documents; each document is the
// multiset of *distinct* stemmed terms that appear in it, because the
// word-association weights of Eq. (3) are defined on per-document presence
// indicator variables X_f.
package corpus

import (
	"bufio"
	"io"
	"sort"
	"strings"

	"linkclust/internal/stem"
)

// Document is the set of distinct processed terms of one message, in
// first-appearance order.
type Document []string

// Corpus is an ordered set of processed documents plus corpus-level term
// statistics.
type Corpus struct {
	docs []Document
	// docFreq[t] = number of documents containing term t at least once.
	docFreq map[string]int
}

// New returns an empty corpus.
func New() *Corpus {
	return &Corpus{docFreq: make(map[string]int)}
}

// NumDocs returns the number of documents.
func (c *Corpus) NumDocs() int { return len(c.docs) }

// Doc returns the i-th document. The returned slice is owned by the corpus.
func (c *Corpus) Doc(i int) Document { return c.docs[i] }

// DocFreq returns the number of documents containing term t.
func (c *Corpus) DocFreq(t string) int { return c.docFreq[t] }

// Vocabulary returns all distinct terms sorted by non-ascending document
// frequency, ties broken lexicographically — the candidate-word order the
// paper uses to pick the top fraction α.
func (c *Corpus) Vocabulary() []string {
	terms := make([]string, 0, len(c.docFreq))
	for t := range c.docFreq {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		fi, fj := c.docFreq[terms[i]], c.docFreq[terms[j]]
		if fi != fj {
			return fi > fj
		}
		return terms[i] < terms[j]
	})
	return terms
}

// AddDocument tokenizes, filters, and stems raw text, and appends the
// resulting document if it contains at least one term.
func (c *Corpus) AddDocument(raw string) {
	doc := Process(raw)
	if len(doc) == 0 {
		return
	}
	c.addProcessed(doc)
}

// AddTerms appends an already-processed term sequence as a document,
// de-duplicating terms. Used by the synthetic generator.
func (c *Corpus) AddTerms(terms []string) {
	if len(terms) == 0 {
		return
	}
	seen := make(map[string]struct{}, len(terms))
	doc := make(Document, 0, len(terms))
	for _, t := range terms {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		doc = append(doc, t)
	}
	c.addProcessed(doc)
}

func (c *Corpus) addProcessed(doc Document) {
	c.docs = append(c.docs, doc)
	for _, t := range doc {
		c.docFreq[t]++
	}
}

// ReadLines ingests one document per line from r.
func (c *Corpus) ReadLines(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		c.AddDocument(sc.Text())
	}
	return sc.Err()
}

// Process runs the paper's preprocessing pipeline on one raw message:
// lowercase, tokenize on non-letter boundaries, drop stop words and words
// shorter than two letters, Porter-stem, drop stems that are stop words, and
// de-duplicate while preserving first-appearance order.
func Process(raw string) Document {
	tokens := Tokenize(raw)
	seen := make(map[string]struct{}, len(tokens))
	doc := make(Document, 0, len(tokens))
	for _, tok := range tokens {
		if len(tok) < 2 || IsStopWord(tok) {
			continue
		}
		t := stem.Porter(tok)
		if len(t) < 2 || IsStopWord(t) {
			continue
		}
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		doc = append(doc, t)
	}
	return doc
}

// Tokenize lowercases raw and splits it into maximal runs of ASCII letters.
// Twitter artifacts (mentions, URLs, hashtags' leading '#') dissolve into
// their letter runs; purely non-alphabetic tokens disappear.
func Tokenize(raw string) []string {
	lower := strings.ToLower(raw)
	var tokens []string
	start := -1
	for i := 0; i <= len(lower); i++ {
		isLetter := i < len(lower) && lower[i] >= 'a' && lower[i] <= 'z'
		if isLetter {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			tokens = append(tokens, lower[start:i])
			start = -1
		}
	}
	return tokens
}
