package corpus

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"#linkclustering is GREAT http://x.co/ab1", []string{"linkclustering", "is", "great", "http", "x", "co", "ab"}},
		{"", nil},
		{"123 456", nil},
		{"don't stop", []string{"don", "t", "stop"}},
		{"a-b_c", []string{"a", "b", "c"}},
	}
	for _, tc := range cases {
		got := Tokenize(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestTokenizeOnlyLetters(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for i := 0; i < len(tok); i++ {
				if tok[i] < 'a' || tok[i] > 'z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "and", "is", "of", "you"} {
		if !IsStopWord(w) {
			t.Errorf("%q should be a stop word", w)
		}
	}
	for _, w := range []string{"cluster", "graph", "tweet", ""} {
		if IsStopWord(w) {
			t.Errorf("%q should not be a stop word", w)
		}
	}
}

func TestProcess(t *testing.T) {
	doc := Process("The clusters are clustering the networks of the network!")
	// "the", "are", "of" are stop words; clusters/clustering stem to
	// "cluster", networks/network to "network"; duplicates collapse.
	want := []string{"cluster", "network"}
	if len(doc) != len(want) {
		t.Fatalf("Process = %v, want %v", doc, want)
	}
	for i := range want {
		if doc[i] != want[i] {
			t.Fatalf("Process = %v, want %v", doc, want)
		}
	}
}

func TestProcessDropsShortAndStopStems(t *testing.T) {
	// "as" is a stop word; "a" too short; stems shorter than 2 dropped.
	doc := Process("a as ab")
	if len(doc) != 1 || doc[0] != "ab" {
		t.Fatalf("Process = %v, want [ab]", doc)
	}
}

func TestAddDocumentSkipsEmpty(t *testing.T) {
	c := New()
	c.AddDocument("the of and")
	c.AddDocument("")
	if c.NumDocs() != 0 {
		t.Fatalf("empty documents recorded: %d", c.NumDocs())
	}
	c.AddDocument("graph theory")
	if c.NumDocs() != 1 {
		t.Fatalf("NumDocs = %d, want 1", c.NumDocs())
	}
}

func TestDocFreqCountsDocumentsNotOccurrences(t *testing.T) {
	c := New()
	c.AddTerms([]string{"x", "x", "y"}) // x de-duplicated within doc
	c.AddTerms([]string{"x"})
	if f := c.DocFreq("x"); f != 2 {
		t.Fatalf("DocFreq(x) = %d, want 2", f)
	}
	if f := c.DocFreq("y"); f != 1 {
		t.Fatalf("DocFreq(y) = %d, want 1", f)
	}
	if f := c.DocFreq("z"); f != 0 {
		t.Fatalf("DocFreq(z) = %d, want 0", f)
	}
}

func TestVocabularyOrder(t *testing.T) {
	c := New()
	c.AddTerms([]string{"rare"})
	c.AddTerms([]string{"common", "mid"})
	c.AddTerms([]string{"common", "mid"})
	c.AddTerms([]string{"common"})
	v := c.Vocabulary()
	want := []string{"common", "mid", "rare"}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Vocabulary = %v, want %v", v, want)
		}
	}
}

func TestVocabularyTieBreakLexicographic(t *testing.T) {
	c := New()
	c.AddTerms([]string{"bb", "aa"})
	v := c.Vocabulary()
	if v[0] != "aa" || v[1] != "bb" {
		t.Fatalf("Vocabulary = %v, want [aa bb]", v)
	}
}

func TestReadLines(t *testing.T) {
	c := New()
	err := c.ReadLines(strings.NewReader("graphs and networks\nclustering edges\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2", c.NumDocs())
	}
}

func TestWordLabel(t *testing.T) {
	seen := make(map[string]struct{})
	for i := 0; i < 5000; i++ {
		l := WordLabel(i)
		if len(l) < 2 {
			t.Fatalf("WordLabel(%d) = %q too short", i, l)
		}
		if IsStopWord(l) {
			t.Fatalf("WordLabel(%d) = %q is a stop word", i, l)
		}
		for j := 0; j < len(l); j++ {
			if l[j] < 'a' || l[j] > 'z' {
				t.Fatalf("WordLabel(%d) = %q not letter-only", i, l)
			}
		}
		if _, dup := seen[l]; dup {
			t.Fatalf("WordLabel(%d) = %q duplicates an earlier label", i, l)
		}
		seen[l] = struct{}{}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := SynthConfig{Vocab: 200, Topics: 5, Docs: 300, MinLen: 3, MaxLen: 8, ZipfExponent: 1.1, TopicMixture: 0.6, Seed: 7}
	a, b := Synthesize(cfg), Synthesize(cfg)
	if a.NumDocs() != b.NumDocs() {
		t.Fatalf("doc counts differ: %d vs %d", a.NumDocs(), b.NumDocs())
	}
	for i := 0; i < a.NumDocs(); i++ {
		da, db := a.Doc(i), b.Doc(i)
		if len(da) != len(db) {
			t.Fatalf("doc %d lengths differ", i)
		}
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("doc %d term %d differs: %q vs %q", i, j, da[j], db[j])
			}
		}
	}
}

func TestSynthesizeShape(t *testing.T) {
	cfg := SynthConfig{Vocab: 500, Topics: 10, Docs: 2000, MinLen: 4, MaxLen: 10, ZipfExponent: 1.1, TopicMixture: 0.7, Seed: 3}
	c := Synthesize(cfg)
	if c.NumDocs() != cfg.Docs {
		t.Fatalf("NumDocs = %d, want %d", c.NumDocs(), cfg.Docs)
	}
	for i := 0; i < c.NumDocs(); i++ {
		d := c.Doc(i)
		if len(d) < cfg.MinLen || len(d) > cfg.MaxLen {
			t.Fatalf("doc %d has %d terms, want [%d,%d]", i, len(d), cfg.MinLen, cfg.MaxLen)
		}
	}
	// Heavy tail: the most frequent word must appear in far more docs
	// than the median word.
	v := c.Vocabulary()
	if len(v) < 100 {
		t.Fatalf("vocabulary too small: %d", len(v))
	}
	top, mid := c.DocFreq(v[0]), c.DocFreq(v[len(v)/2])
	if top < 5*mid {
		t.Fatalf("frequency not heavy-tailed: top=%d mid=%d", top, mid)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	bad := []SynthConfig{
		{Vocab: 0, Topics: 1, Docs: 1, MinLen: 1, MaxLen: 2, ZipfExponent: 1, TopicMixture: 0.5},
		{Vocab: 10, Topics: 0, Docs: 1, MinLen: 1, MaxLen: 2, ZipfExponent: 1, TopicMixture: 0.5},
		{Vocab: 10, Topics: 1, Docs: -1, MinLen: 1, MaxLen: 2, ZipfExponent: 1, TopicMixture: 0.5},
		{Vocab: 10, Topics: 1, Docs: 1, MinLen: 0, MaxLen: 2, ZipfExponent: 1, TopicMixture: 0.5},
		{Vocab: 10, Topics: 1, Docs: 1, MinLen: 3, MaxLen: 2, ZipfExponent: 1, TopicMixture: 0.5},
		{Vocab: 10, Topics: 1, Docs: 1, MinLen: 1, MaxLen: 2, ZipfExponent: 0, TopicMixture: 0.5},
		{Vocab: 10, Topics: 1, Docs: 1, MinLen: 1, MaxLen: 2, ZipfExponent: 1, TopicMixture: 1.5},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config accepted", i)
				}
			}()
			Synthesize(cfg)
		}()
	}
}

func TestSynthesizeRawPipelines(t *testing.T) {
	cfg := SynthConfig{Vocab: 100, Topics: 4, Docs: 200, MinLen: 3, MaxLen: 7, ZipfExponent: 1.1, TopicMixture: 0.5, Seed: 9}
	raws := SynthesizeRaw(cfg)
	if len(raws) != cfg.Docs {
		t.Fatalf("%d raw docs, want %d", len(raws), cfg.Docs)
	}
	c := New()
	for _, r := range raws {
		c.AddDocument(r)
	}
	if c.NumDocs() == 0 {
		t.Fatal("pipeline produced no documents")
	}
	// Fillers are stop words and must not survive processing.
	if c.DocFreq("the") != 0 || c.DocFreq("and") != 0 {
		t.Fatal("stop words leaked into the processed corpus")
	}
}

func BenchmarkProcess(b *testing.B) {
	text := "Networks reveal overlapping communities when clustering links instead of nodes #graphs"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Process(text)
	}
}

func BenchmarkSynthesize(b *testing.B) {
	cfg := SynthConfig{Vocab: 1000, Topics: 10, Docs: 1000, MinLen: 4, MaxLen: 10, ZipfExponent: 1.1, TopicMixture: 0.7, Seed: 1}
	for i := 0; i < b.N; i++ {
		_ = Synthesize(cfg)
	}
}
