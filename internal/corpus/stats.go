package corpus

import "math"

// Stats summarizes the corpus-level regularities that make the synthetic
// generator a defensible stand-in for the paper's tweet corpus: document
// volume, vocabulary size, document length, the Zipf exponent of the term
// frequency distribution, and the Heaps exponent of vocabulary growth.
// Natural short-text corpora show Zipf slopes near −1 and Heaps exponents
// around 0.4–0.7; `lcbench -experiment corpus` reports these for the
// harness corpus.
type Stats struct {
	Docs          int
	DistinctTerms int
	// TotalTerms counts term occurrences (distinct per document, matching
	// the per-document presence semantics of Eq. 3).
	TotalTerms int64
	AvgDocLen  float64
	// ZipfExponent is the least-squares slope of log(docFreq) versus
	// log(rank) over the high-frequency vocabulary — about −1 for natural
	// text.
	ZipfExponent float64
	// HeapsExponent is the slope of log(vocabulary) versus log(terms
	// seen) — vocabulary growth V ∝ N^β.
	HeapsExponent float64
}

// ComputeStats scans the corpus once (plus a frequency sort) and returns
// its statistics. Degenerate corpora (no documents, single term) yield zero
// exponents.
func ComputeStats(c *Corpus) Stats {
	s := Stats{Docs: c.NumDocs(), DistinctTerms: len(c.docFreq)}
	for d := 0; d < c.NumDocs(); d++ {
		s.TotalTerms += int64(len(c.Doc(d)))
	}
	if s.Docs > 0 {
		s.AvgDocLen = float64(s.TotalTerms) / float64(s.Docs)
	}

	// Zipf: regression over the top half of the vocabulary (the tail is
	// dominated by ties at frequency 1, which flatten the slope).
	vocab := c.Vocabulary()
	top := len(vocab) / 2
	if top > 2000 {
		top = 2000
	}
	if top >= 3 {
		xs := make([]float64, top)
		ys := make([]float64, top)
		for r := 0; r < top; r++ {
			xs[r] = math.Log(float64(r + 1))
			ys[r] = math.Log(float64(c.DocFreq(vocab[r])))
		}
		s.ZipfExponent = slope(xs, ys)
	}

	// Heaps: vocabulary size sampled along the document stream at
	// geometric checkpoints.
	if s.TotalTerms >= 8 && s.DistinctTerms >= 2 {
		seen := make(map[string]struct{}, s.DistinctTerms)
		var tokens int64
		var xs, ys []float64
		next := int64(4)
		for d := 0; d < c.NumDocs(); d++ {
			for _, t := range c.Doc(d) {
				tokens++
				seen[t] = struct{}{}
				if tokens >= next {
					xs = append(xs, math.Log(float64(tokens)))
					ys = append(ys, math.Log(float64(len(seen))))
					next *= 2
				}
			}
		}
		if len(xs) >= 3 {
			s.HeapsExponent = slope(xs, ys)
		}
	}
	return s
}

// slope returns the least-squares slope of ys over xs.
func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
