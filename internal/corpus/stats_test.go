package corpus

import (
	"math"
	"testing"
)

func TestComputeStatsBasic(t *testing.T) {
	c := New()
	c.AddTerms([]string{"a", "b", "c"})
	c.AddTerms([]string{"a", "b"})
	c.AddTerms([]string{"a"})
	s := ComputeStats(c)
	if s.Docs != 3 || s.DistinctTerms != 3 || s.TotalTerms != 6 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.AvgDocLen-2) > 1e-12 {
		t.Fatalf("avg doc len = %v", s.AvgDocLen)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(New())
	if s.Docs != 0 || s.ZipfExponent != 0 || s.HeapsExponent != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestSyntheticCorpusIsZipfian(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.Vocab = 3000
	cfg.Docs = 8000
	cfg.Topics = 12
	s := ComputeStats(Synthesize(cfg))
	// The generator draws from Zipf(1.05) with topical/mainstream mixing;
	// the realized document-frequency slope must be clearly negative and
	// in the heavy-tailed regime natural short text shows.
	if s.ZipfExponent > -0.4 || s.ZipfExponent < -2.5 {
		t.Fatalf("Zipf exponent %v outside heavy-tail range", s.ZipfExponent)
	}
	// Vocabulary growth is sublinear but real: 0 < beta < 1.
	if s.HeapsExponent <= 0.05 || s.HeapsExponent >= 1 {
		t.Fatalf("Heaps exponent %v outside (0,1)", s.HeapsExponent)
	}
	if s.AvgDocLen < float64(cfg.MinLen) || s.AvgDocLen > float64(cfg.MaxLen) {
		t.Fatalf("avg doc len %v outside [%d,%d]", s.AvgDocLen, cfg.MinLen, cfg.MaxLen)
	}
}

func TestSlope(t *testing.T) {
	// y = 3x - 1.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{-1, 2, 5, 8}
	if got := slope(xs, ys); math.Abs(got-3) > 1e-12 {
		t.Fatalf("slope = %v, want 3", got)
	}
	// Degenerate: constant x.
	if got := slope([]float64{2, 2}, []float64{1, 5}); got != 0 {
		t.Fatalf("degenerate slope = %v", got)
	}
}
