package corpus

// English stop words. The paper removes "common stop words" (citing the
// CLiPS list) before building the word association graph; this embedded list
// covers the same standard English function words.
var stopWordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "am", "an",
	"and", "any", "are", "aren", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"cannot", "could", "couldn", "did", "didn", "do", "does", "doesn",
	"doing", "don", "down", "during", "each", "few", "for", "from",
	"further", "had", "hadn", "has", "hasn", "have", "haven", "having",
	"he", "her", "here", "hers", "herself", "him", "himself", "his", "how",
	"i", "if", "in", "into", "is", "isn", "it", "its", "itself", "just",
	"let", "me", "more", "most", "mustn", "my", "myself", "no", "nor",
	"not", "now", "of", "off", "on", "once", "only", "or", "other",
	"ought", "our", "ours", "ourselves", "out", "over", "own", "same",
	"shan", "she", "should", "shouldn", "so", "some", "such", "than",
	"that", "the", "their", "theirs", "them", "themselves", "then",
	"there", "these", "they", "this", "those", "through", "to", "too",
	"under", "until", "up", "very", "was", "wasn", "we", "were", "weren",
	"what", "when", "where", "which", "while", "who", "whom", "why",
	"will", "with", "won", "would", "wouldn", "you", "your", "yours",
	"yourself", "yourselves",
}

var stopWords = func() map[string]struct{} {
	m := make(map[string]struct{}, len(stopWordList))
	for _, w := range stopWordList {
		m[w] = struct{}{}
	}
	return m
}()

// IsStopWord reports whether the lowercase word is an English stop word.
func IsStopWord(w string) bool {
	_, ok := stopWords[w]
	return ok
}
