package corpus

import (
	"strings"

	"linkclust/internal/rng"
)

// SynthConfig parameterizes the synthetic tweet generator that stands in for
// the paper's December-2011 Twitter corpus.
//
// The generative model: every word has a global Zipf rank (heavy-tailed
// frequencies, as in real tweet corpora) and belongs to one of Topics latent
// topics (round-robin by rank, so every topic owns words across the whole
// frequency spectrum). Each document samples one topic and then draws words:
// with probability TopicMixture from the topic's own words (Zipf over the
// topic-local ranks), otherwise from the global Zipf distribution. Topical
// draws create the word co-occurrence communities that make link clustering
// produce non-trivial dendrograms; global draws make frequent words co-occur
// broadly, reproducing the paper's observation that graph density falls as
// the vocabulary fraction α grows.
type SynthConfig struct {
	Vocab        int     // number of distinct words (> 0)
	Topics       int     // number of latent topics (> 0)
	Docs         int     // number of documents to generate (>= 0)
	MinLen       int     // minimum distinct terms per document (>= 1)
	MaxLen       int     // maximum distinct terms per document (>= MinLen)
	ZipfExponent float64 // word-frequency skew (> 0); tweets ≈ 1.1
	TopicMixture float64 // probability of a topical draw, in [0, 1]
	// MainstreamProb is the probability that a document is "mainstream":
	// all of its words are drawn from only the top MainstreamFrac of the
	// vocabulary. Mainstream documents give frequent words the positive
	// mutual association (beyond what independence predicts) that real
	// tweet corpora show, which is what makes the association graph
	// densest at small α — the paper's Fig. 4(1) density observation.
	// Zero disables the mechanism.
	MainstreamProb float64 // in [0, 1]
	MainstreamFrac float64 // in (0, 1]; used only when MainstreamProb > 0
	Seed           uint64  // PRNG seed
}

// DefaultSynthConfig returns the configuration used by the experiment
// harness: a tweet-like corpus with short documents and mild Zipf skew.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		Vocab:          20000,
		Topics:         40,
		Docs:           60000,
		MinLen:         4,
		MaxLen:         12,
		ZipfExponent:   1.05,
		TopicMixture:   0.7,
		MainstreamProb: 0.35,
		MainstreamFrac: 0.05,
		Seed:           1,
	}
}

func (c SynthConfig) validate() {
	switch {
	case c.Vocab <= 0:
		panic("corpus: SynthConfig.Vocab must be positive")
	case c.Topics <= 0:
		panic("corpus: SynthConfig.Topics must be positive")
	case c.Docs < 0:
		panic("corpus: SynthConfig.Docs must be non-negative")
	case c.MinLen < 1 || c.MaxLen < c.MinLen:
		panic("corpus: SynthConfig document length bounds invalid")
	case c.ZipfExponent <= 0:
		panic("corpus: SynthConfig.ZipfExponent must be positive")
	case c.TopicMixture < 0 || c.TopicMixture > 1:
		panic("corpus: SynthConfig.TopicMixture must be in [0,1]")
	case c.MainstreamProb < 0 || c.MainstreamProb > 1:
		panic("corpus: SynthConfig.MainstreamProb must be in [0,1]")
	case c.MainstreamProb > 0 && (c.MainstreamFrac <= 0 || c.MainstreamFrac > 1):
		panic("corpus: SynthConfig.MainstreamFrac must be in (0,1]")
	}
}

// Synthesize generates a corpus of already-processed term documents under
// cfg. The same configuration always yields the same corpus.
func Synthesize(cfg SynthConfig) *Corpus {
	cfg.validate()
	src := rng.New(cfg.Seed)
	global := rng.NewZipf(src.Fork(), cfg.Vocab, cfg.ZipfExponent)

	// Topic t owns the words with rank ≡ t (mod Topics); a topical draw
	// samples a topic-local Zipf rank and maps it back to a global word.
	perTopic := (cfg.Vocab + cfg.Topics - 1) / cfg.Topics
	topical := rng.NewZipf(src.Fork(), perTopic, cfg.ZipfExponent)

	var mainstream *rng.Zipf
	if cfg.MainstreamProb > 0 {
		pool := int(cfg.MainstreamFrac * float64(cfg.Vocab))
		if pool < 2 {
			pool = 2
		}
		mainstream = rng.NewZipf(src.Fork(), pool, cfg.ZipfExponent)
	}

	c := New()
	terms := make([]string, 0, cfg.MaxLen)
	seen := make(map[int]struct{}, cfg.MaxLen)
	for d := 0; d < cfg.Docs; d++ {
		topic := src.Intn(cfg.Topics)
		isMainstream := mainstream != nil && src.Float64() < cfg.MainstreamProb
		length := cfg.MinLen + src.Intn(cfg.MaxLen-cfg.MinLen+1)
		terms = terms[:0]
		clear(seen)
		// Draw distinct words; cap attempts so degenerate configs (tiny
		// vocabularies) still terminate with a shorter document.
		for attempts := 0; len(terms) < length && attempts < 50*length; attempts++ {
			var w int
			switch {
			case isMainstream:
				w = mainstream.Sample()
			case src.Float64() < cfg.TopicMixture:
				w = topical.Sample()*cfg.Topics + topic
				if w >= cfg.Vocab {
					continue
				}
			default:
				w = global.Sample()
			}
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			terms = append(terms, WordLabel(w))
		}
		c.AddTerms(terms)
	}
	return c
}

// SynthesizeRaw generates cfg.Docs raw tweet-like strings (with stop words,
// hashtags and punctuation sprinkled in) for exercising the full
// tokenize/stop/stem pipeline end to end. Because Porter stemming may merge
// synthetic labels, the processed vocabulary is close to, but not exactly,
// cfg.Vocab.
func SynthesizeRaw(cfg SynthConfig) []string {
	cfg.validate()
	src := rng.New(cfg.Seed ^ 0x5eed)
	global := rng.NewZipf(src.Fork(), cfg.Vocab, cfg.ZipfExponent)
	fillers := []string{"the", "a", "is", "to", "and", "of", "in", "on", "so", "i", "my"}

	docs := make([]string, 0, cfg.Docs)
	var sb strings.Builder
	for d := 0; d < cfg.Docs; d++ {
		sb.Reset()
		length := cfg.MinLen + src.Intn(cfg.MaxLen-cfg.MinLen+1)
		for i := 0; i < length; i++ {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			if src.Float64() < 0.3 {
				sb.WriteString(fillers[src.Intn(len(fillers))])
				sb.WriteByte(' ')
			}
			if src.Float64() < 0.1 {
				sb.WriteByte('#')
			}
			sb.WriteString(WordLabel(global.Sample()))
			if src.Float64() < 0.15 {
				sb.WriteByte('!')
			}
		}
		docs = append(docs, sb.String())
	}
	return docs
}

// WordLabel returns the deterministic pseudo-word for vocabulary index i:
// a letter-only token ("qb", "qcaa", ...) that survives tokenization and is
// never a stop word.
func WordLabel(i int) string {
	// Base-26 digits prefixed by 'q' keep labels >= 2 letters, letter-only
	// and outside the stop-word list.
	var buf [12]byte
	pos := len(buf)
	n := i
	for {
		pos--
		buf[pos] = byte('a' + n%26)
		n /= 26
		if n == 0 {
			break
		}
	}
	return "q" + string(buf[pos:])
}
