package dendro

import (
	"sort"

	"linkclust/internal/graph"
)

// Community is one link community: a set of edges and the vertices they
// touch. Because a vertex's edges may fall into several link communities,
// node membership overlaps across communities — the defining property of
// link clustering (Ahn et al.).
type Community struct {
	Label int32   // cluster label (minimum edge id)
	Edges []int32 // member edge ids, ascending
	Nodes []int32 // induced vertex ids, ascending
}

// Communities groups an edge clustering into link communities, sorted by
// decreasing edge count (ties by label).
func Communities(g *graph.Graph, labels []int32) []Community {
	byLabel := make(map[int32]*Community)
	for e, l := range labels {
		c, ok := byLabel[l]
		if !ok {
			c = &Community{Label: l}
			byLabel[l] = c
		}
		c.Edges = append(c.Edges, int32(e))
	}
	out := make([]Community, 0, len(byLabel))
	for _, c := range byLabel {
		nodes := make(map[int32]struct{}, len(c.Edges)+1)
		for _, e := range c.Edges {
			edge := g.Edge(int(e))
			nodes[edge.U] = struct{}{}
			nodes[edge.V] = struct{}{}
		}
		c.Nodes = make([]int32, 0, len(nodes))
		for v := range nodes {
			c.Nodes = append(c.Nodes, v)
		}
		sort.Slice(c.Nodes, func(i, j int) bool { return c.Nodes[i] < c.Nodes[j] })
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Edges) != len(out[j].Edges) {
			return len(out[i].Edges) > len(out[j].Edges)
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// NodeMemberships inverts a community list: for every vertex, the indices
// (into the communities slice) of the communities it belongs to. Vertices
// in more than one community are the overlap link clustering reveals.
func NodeMemberships(g *graph.Graph, comms []Community) [][]int {
	out := make([][]int, g.NumVertices())
	for ci := range comms {
		for _, v := range comms[ci].Nodes {
			out[v] = append(out[v], ci)
		}
	}
	return out
}
