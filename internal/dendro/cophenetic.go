package dendro

import (
	"errors"
	"math"

	"linkclust/internal/unionfind"
)

// CopheneticCorrelation measures how faithfully the dendrogram preserves
// the input similarities: the Pearson correlation between each observed
// pair similarity and the cophenetic similarity of that pair (the merge
// similarity at which the two items first share a cluster). Values near 1
// mean the hierarchy reflects the similarity structure well — for
// single-linkage the cophenetic similarity is the max-min path similarity,
// so it upper-bounds each observed similarity.
//
// pairs supplies the observed similarities: it is called once with an emit
// callback to invoke per (itemA, itemB, sim) observation. Pairs never
// joined by the dendrogram get cophenetic similarity 0. An error is
// returned when there are fewer than two usable observations or either
// series is constant.
//
// The computation resolves all queries in one replay of the merge stream
// with small-to-large list merging: O((M + Q) log Q) for M merges and Q
// observations.
func (d *Dendrogram) CopheneticCorrelation(pairs func(emit func(a, b int32, sim float64))) (float64, error) {
	type query struct {
		a, b int32
		sim  float64
		coph float64
	}
	var qs []query
	pairs(func(a, b int32, sim float64) {
		if a == b || a < 0 || b < 0 || int(a) >= d.n || int(b) >= d.n {
			return
		}
		qs = append(qs, query{a: a, b: b, sim: sim})
	})
	if len(qs) < 2 {
		return 0, errors.New("dendro: cophenetic correlation needs at least two pairs")
	}

	uf := unionfind.NewMin(d.n)
	// waiting[root] holds indices of unresolved queries with at least one
	// endpoint in root's cluster.
	waiting := make(map[int32][]int, d.n)
	for i := range qs {
		ra, rb := uf.Find(qs[i].a), uf.Find(qs[i].b)
		waiting[ra] = append(waiting[ra], i)
		waiting[rb] = append(waiting[rb], i)
	}
	resolved := make([]bool, len(qs))
	for mi := range d.merges {
		m := &d.merges[mi]
		ra, rb := uf.Find(m.A), uf.Find(m.B)
		if ra == rb {
			continue
		}
		uf.Union(ra, rb)
		root := uf.Find(ra)
		// Small-to-large: fold the smaller waiting list into the larger.
		la, lb := waiting[ra], waiting[rb]
		if len(la) < len(lb) {
			la, lb = lb, la
		}
		delete(waiting, ra)
		delete(waiting, rb)
		for _, qi := range lb {
			if resolved[qi] {
				continue
			}
			if uf.Find(qs[qi].a) == uf.Find(qs[qi].b) {
				qs[qi].coph = m.Sim
				resolved[qi] = true
				continue
			}
			la = append(la, qi)
		}
		// Compact resolved entries out of the surviving list lazily.
		out := la[:0]
		for _, qi := range la {
			if !resolved[qi] {
				out = append(out, qi)
			}
		}
		if len(out) > 0 {
			waiting[root] = out
		}
	}

	// Pearson correlation.
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(qs))
	for i := range qs {
		x, y := qs[i].sim, qs[i].coph
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	den := math.Sqrt(n*sxx-sx*sx) * math.Sqrt(n*syy-sy*sy)
	if den == 0 {
		return 0, errors.New("dendro: cophenetic correlation undefined for constant series")
	}
	return (n*sxy - sx*sy) / den, nil
}
