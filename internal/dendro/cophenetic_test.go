package dendro

import (
	"math"
	"testing"

	"linkclust/internal/baseline"
	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

// bruteCophenetic computes the cophenetic similarity of every queried pair
// by scanning merges per query — the O(Q·M) reference.
func bruteCophenetic(d *Dendrogram, a, b int32) float64 {
	uf := make([]int32, d.n)
	for i := range uf {
		uf[i] = int32(i)
	}
	var find func(int32) int32
	find = func(i int32) int32 {
		for uf[i] != i {
			i = uf[i]
		}
		return i
	}
	for i := range d.merges {
		m := &d.merges[i]
		ra, rb := find(m.A), find(m.B)
		if ra != rb {
			if ra < rb {
				uf[rb] = ra
			} else {
				uf[ra] = rb
			}
		}
		if find(a) == find(b) {
			return m.Sim
		}
	}
	return 0
}

func TestCopheneticMatchesBruteForce(t *testing.T) {
	g := graph.ErdosRenyi(20, 0.3, rng.New(3))
	res, err := core.Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	d := New(g.NumEdges(), res.Merges)
	src := rng.New(7)
	type pr struct {
		a, b int32
		sim  float64
	}
	var queries []pr
	for i := 0; i < 60; i++ {
		a := int32(src.Intn(g.NumEdges()))
		b := int32(src.Intn(g.NumEdges()))
		if a != b {
			queries = append(queries, pr{a, b, src.Float64()})
		}
	}
	// The fast path and brute force must assign identical cophenetic
	// values; validate through two correlations on identical inputs.
	fast, err := d.CopheneticCorrelation(func(emit func(int32, int32, float64)) {
		for _, q := range queries {
			emit(q.a, q.b, q.sim)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force correlation.
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(queries))
	for _, q := range queries {
		y := bruteCophenetic(d, q.a, q.b)
		sx += q.sim
		sy += y
		sxx += q.sim * q.sim
		syy += y * y
		sxy += q.sim * y
	}
	want := (n*sxy - sx*sy) / (math.Sqrt(n*sxx-sx*sx) * math.Sqrt(n*syy-sy*sy))
	if math.Abs(fast-want) > 1e-9 {
		t.Fatalf("fast %v vs brute %v", fast, want)
	}
}

// TestCopheneticHighForSingleLinkage: feeding the dendrogram its own
// incident-pair similarities must give a strong positive correlation (1 for
// an ultrametric input; high for real data).
func TestCopheneticHighForSingleLinkage(t *testing.T) {
	g := graph.ErdosRenyi(25, 0.3, rng.New(5))
	pl := core.Similarity(g)
	es := baseline.NewEdgeSim(g, pl)
	res, err := core.Sweep(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	d := New(g.NumEdges(), res.Merges)
	c, err := d.CopheneticCorrelation(func(emit func(int32, int32, float64)) {
		es.Pairs(func(e1, e2 int32, sim float64) { emit(e1, e2, sim) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.5 {
		t.Fatalf("cophenetic correlation %v unexpectedly low", c)
	}
	if c > 1+1e-9 {
		t.Fatalf("correlation %v above 1", c)
	}
}

func TestCopheneticUpperBoundsSimilarity(t *testing.T) {
	// Single-linkage cophenetic similarity is the max-min path, hence
	// >= the direct similarity for every incident pair.
	g := graph.ErdosRenyi(18, 0.35, rng.New(9))
	pl := core.Similarity(g)
	es := baseline.NewEdgeSim(g, pl)
	res, err := core.Sweep(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	d := New(g.NumEdges(), res.Merges)
	es.Pairs(func(e1, e2 int32, sim float64) {
		if coph := bruteCophenetic(d, e1, e2); coph < sim-1e-9 {
			t.Fatalf("cophenetic %v < direct %v for (%d,%d)", coph, sim, e1, e2)
		}
	})
}

func TestCopheneticErrors(t *testing.T) {
	d := New(4, nil)
	if _, err := d.CopheneticCorrelation(func(emit func(int32, int32, float64)) {}); err == nil {
		t.Fatal("no pairs accepted")
	}
	// Constant cophenetic series (no merges => all zeros) is undefined
	// only when the observed side is constant too; zeros on one side with
	// varying sims still has zero variance on y — undefined.
	_, err := d.CopheneticCorrelation(func(emit func(int32, int32, float64)) {
		emit(0, 1, 0.3)
		emit(1, 2, 0.7)
	})
	if err == nil {
		t.Fatal("constant cophenetic series accepted")
	}
	// Out-of-range and self pairs are ignored.
	if _, err := d.CopheneticCorrelation(func(emit func(int32, int32, float64)) {
		emit(0, 0, 1)
		emit(-1, 2, 1)
		emit(9, 2, 1)
		emit(0, 1, 0.5)
	}); err == nil {
		t.Fatal("single usable pair accepted")
	}
}
