// Package dendro turns the merge stream of a link-clustering run into a
// queryable dendrogram: flat cuts by similarity threshold or by level,
// partition density (Ahn, Bagrow & Lehmann, Nature 2010 — the standard
// quality functional for choosing where to cut a link dendrogram), and the
// extraction of overlapping node communities from link communities.
package dendro

import (
	"sort"

	"linkclust/internal/core"
	"linkclust/internal/unionfind"
)

// Dendrogram is a link dendrogram over n edges described by its merge
// stream. Merge streams from both the strict sweep (one level per merge)
// and the coarse-grained sweep (one level per chunk) are supported.
type Dendrogram struct {
	n      int
	merges []core.Merge
}

// New builds a dendrogram over n edges from a merge stream. The stream is
// not copied; callers must not mutate it afterwards.
func New(n int, merges []core.Merge) *Dendrogram {
	return &Dendrogram{n: n, merges: merges}
}

// NumEdges returns the number of leaves (edges).
func (d *Dendrogram) NumEdges() int { return d.n }

// NumMerges returns the number of merge events.
func (d *Dendrogram) NumMerges() int { return len(d.merges) }

// NumLevels returns the highest level in the stream (0 when empty).
func (d *Dendrogram) NumLevels() int32 {
	var max int32
	for i := range d.merges {
		if d.merges[i].Level > max {
			max = d.merges[i].Level
		}
	}
	return max
}

// CutSim returns the min-labeled flat clustering obtained by applying every
// merge with similarity >= theta.
func (d *Dendrogram) CutSim(theta float64) []int32 {
	return d.cut(func(m *core.Merge) bool { return m.Sim >= theta })
}

// CutLevel returns the min-labeled flat clustering obtained by applying
// every merge with level <= r.
func (d *Dendrogram) CutLevel(r int32) []int32 {
	return d.cut(func(m *core.Merge) bool { return m.Level <= r })
}

// CutK applies merges in stream order until at most k clusters remain (or
// the stream ends) and returns the min-labeled flat clustering. For the
// strict sweep this is the classic "cut the dendrogram into k clusters"
// operation; coarse streams stop at the first boundary at or below k.
func (d *Dendrogram) CutK(k int) []int32 {
	uf := unionfind.NewMin(d.n)
	clusters := d.n
	for i := range d.merges {
		if clusters <= k {
			break
		}
		if uf.Union(d.merges[i].A, d.merges[i].B) {
			clusters--
		}
	}
	return uf.Labels()
}

func (d *Dendrogram) cut(keep func(*core.Merge) bool) []int32 {
	uf := unionfind.NewMin(d.n)
	for i := range d.merges {
		if keep(&d.merges[i]) {
			uf.Union(d.merges[i].A, d.merges[i].B)
		}
	}
	return uf.Labels()
}

// ClustersPerLevel returns, for levels 0..NumLevels(), the number of
// clusters after applying all merges up to each level. Level 0 is the
// all-singletons bottom.
func (d *Dendrogram) ClustersPerLevel() []int {
	levels := int(d.NumLevels())
	out := make([]int, levels+1)
	out[0] = d.n
	clusters := d.n
	idx := 0
	applied := unionfind.NewMin(d.n)
	for l := 1; l <= levels; l++ {
		for idx < len(d.merges) && d.merges[idx].Level <= int32(l) {
			if applied.Union(d.merges[idx].A, d.merges[idx].B) {
				clusters--
			}
			idx++
		}
		out[l] = clusters
	}
	return out
}

// Thresholds returns the distinct merge similarities in non-increasing
// order — the natural cut points of the dendrogram.
func (d *Dendrogram) Thresholds() []float64 {
	set := make(map[float64]struct{}, len(d.merges))
	for i := range d.merges {
		set[d.merges[i].Sim] = struct{}{}
	}
	out := make([]float64, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
