package dendro

import (
	"math"
	"testing"

	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

func clusterCount(labels []int32) int {
	set := make(map[int32]struct{})
	for _, l := range labels {
		set[l] = struct{}{}
	}
	return len(set)
}

func paperDendrogram(t *testing.T) (*graph.Graph, *Dendrogram) {
	t.Helper()
	g := graph.PaperExample()
	res, err := core.Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, New(g.NumEdges(), res.Merges)
}

func TestCutSimExtremes(t *testing.T) {
	g, d := paperDendrogram(t)
	// Above every similarity: all singletons.
	if n := clusterCount(d.CutSim(1.1)); n != g.NumEdges() {
		t.Fatalf("top cut has %d clusters, want %d", n, g.NumEdges())
	}
	// At/below the minimum similarity: one cluster (K_{2,4} is link-connected).
	if n := clusterCount(d.CutSim(0)); n != 1 {
		t.Fatalf("bottom cut has %d clusters, want 1", n)
	}
}

func TestCutSimMiddleLayer(t *testing.T) {
	_, d := paperDendrogram(t)
	// Between leaf-pair sim (1/2) and hub-pair sim (2/3): only the four
	// hub-pair merges apply, leaving 4 clusters of 2 edges each.
	labels := d.CutSim(0.6)
	if n := clusterCount(labels); n != 4 {
		t.Fatalf("middle cut has %d clusters, want 4", n)
	}
}

func TestCutMonotone(t *testing.T) {
	// Lowering the threshold can only merge clusters, never split.
	g := graph.ErdosRenyi(30, 0.2, rng.New(1))
	res, err := core.Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	d := New(g.NumEdges(), res.Merges)
	ths := d.Thresholds()
	prev := g.NumEdges() + 1
	for _, th := range ths {
		n := clusterCount(d.CutSim(th))
		if n > prev {
			t.Fatalf("threshold %v: clusters rose from %d to %d", th, prev, n)
		}
		prev = n
	}
}

func TestCutLevel(t *testing.T) {
	g, d := paperDendrogram(t)
	if n := clusterCount(d.CutLevel(0)); n != g.NumEdges() {
		t.Fatalf("level 0 has %d clusters", n)
	}
	// Strict sweep: level r applies exactly r merges.
	for r := int32(1); r <= d.NumLevels(); r++ {
		want := g.NumEdges() - int(r)
		if n := clusterCount(d.CutLevel(r)); n != want {
			t.Fatalf("level %d has %d clusters, want %d", r, n, want)
		}
	}
}

func TestClustersPerLevel(t *testing.T) {
	g, d := paperDendrogram(t)
	counts := d.ClustersPerLevel()
	if len(counts) != int(d.NumLevels())+1 {
		t.Fatalf("counts length %d", len(counts))
	}
	if counts[0] != g.NumEdges() {
		t.Fatalf("level 0 count %d", counts[0])
	}
	for l := 1; l < len(counts); l++ {
		if counts[l] != counts[l-1]-1 {
			t.Fatalf("level %d: %d clusters after %d", l, counts[l], counts[l-1])
		}
	}
	if counts[len(counts)-1] != 1 {
		t.Fatalf("final count %d, want 1", counts[len(counts)-1])
	}
}

func TestThresholdsSortedDistinct(t *testing.T) {
	_, d := paperDendrogram(t)
	ths := d.Thresholds()
	if len(ths) != 2 {
		t.Fatalf("thresholds = %v, want the two distinct sims", ths)
	}
	if !(ths[0] > ths[1]) {
		t.Fatalf("thresholds not descending: %v", ths)
	}
}

func TestPartitionDensityKnownValues(t *testing.T) {
	// One community spanning all of K4: m=6, n=4 -> D = 2/6 * 6*(6-3)/((2)(3)) = 1.
	k4 := graph.Complete(4)
	labels := make([]int32, k4.NumEdges())
	if d := PartitionDensity(k4, labels); math.Abs(d-1) > 1e-12 {
		t.Fatalf("K4 single community density = %v, want 1", d)
	}
	// A path of 3 edges in one community: m=3, n=4 -> contribution
	// 3*(3-3)/... = 0 -> D = 0 (tree-like communities score zero).
	p := graph.Path(4)
	labels = make([]int32, p.NumEdges())
	if d := PartitionDensity(p, labels); d != 0 {
		t.Fatalf("path community density = %v, want 0", d)
	}
	// All singletons: every community has n_c = 2 -> D = 0.
	g := graph.Complete(5)
	labels = make([]int32, g.NumEdges())
	for i := range labels {
		labels[i] = int32(i)
	}
	if d := PartitionDensity(g, labels); d != 0 {
		t.Fatalf("singleton density = %v, want 0", d)
	}
	// Empty graph.
	if d := PartitionDensity(graph.NewBuilder(2).Build(nil), nil); d != 0 {
		t.Fatalf("empty graph density = %v", d)
	}
}

func TestPartitionDensityRange(t *testing.T) {
	// D is bounded above by 1 and below by -2/3 (Ahn et al.); check on
	// random cuts.
	g := graph.ErdosRenyi(25, 0.3, rng.New(2))
	res, err := core.Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	d := New(g.NumEdges(), res.Merges)
	for _, th := range d.Thresholds() {
		dens := PartitionDensity(g, d.CutSim(th))
		if dens > 1+1e-9 || dens < -2.0/3-1e-9 {
			t.Fatalf("density %v out of [-2/3, 1]", dens)
		}
	}
}

func TestBestCutTwoCliques(t *testing.T) {
	// Two K4s sharing one vertex: the best cut separates the cliques into
	// two dense link communities with density 1 and the shared vertex in
	// both communities.
	b := graph.NewBuilder(7)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.MustAddEdge(u, v, 1)
		}
	}
	for u := 3; u < 7; u++ {
		for v := u + 1; v < 7; v++ {
			b.MustAddEdge(u, v, 1)
		}
	}
	g := b.Build(nil)
	res, err := core.Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	d := New(g.NumEdges(), res.Merges)
	_, density, labels := BestCut(g, d)
	if math.Abs(density-1) > 1e-9 {
		t.Fatalf("best density = %v, want 1", density)
	}
	comms := Communities(g, labels)
	if len(comms) != 2 {
		t.Fatalf("%d communities, want 2", len(comms))
	}
	// Vertex 3 (the bridge) belongs to both.
	memb := NodeMemberships(g, comms)
	if len(memb[3]) != 2 {
		t.Fatalf("bridge vertex in %d communities, want 2", len(memb[3]))
	}
	for _, v := range []int{0, 1, 2, 4, 5, 6} {
		if len(memb[v]) != 1 {
			t.Fatalf("vertex %d in %d communities, want 1", v, len(memb[v]))
		}
	}
}

func TestCommunitiesPartitionEdges(t *testing.T) {
	g := graph.ErdosRenyi(20, 0.3, rng.New(5))
	res, err := core.Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	d := New(g.NumEdges(), res.Merges)
	labels := d.CutSim(0.3)
	comms := Communities(g, labels)
	seen := make(map[int32]bool)
	total := 0
	for _, c := range comms {
		total += len(c.Edges)
		for _, e := range c.Edges {
			if seen[e] {
				t.Fatalf("edge %d in two communities", e)
			}
			seen[e] = true
		}
		// Nodes ascending and consistent with edges.
		for i := 1; i < len(c.Nodes); i++ {
			if c.Nodes[i-1] >= c.Nodes[i] {
				t.Fatalf("community nodes not sorted: %v", c.Nodes)
			}
		}
	}
	if total != g.NumEdges() {
		t.Fatalf("communities cover %d edges, want %d", total, g.NumEdges())
	}
	// Sorted by size descending.
	for i := 1; i < len(comms); i++ {
		if len(comms[i].Edges) > len(comms[i-1].Edges) {
			t.Fatalf("communities not sorted by size")
		}
	}
}

func TestDendrogramEmpty(t *testing.T) {
	d := New(0, nil)
	if d.NumLevels() != 0 || d.NumMerges() != 0 {
		t.Fatal("empty dendrogram not empty")
	}
	if labels := d.CutSim(0.5); len(labels) != 0 {
		t.Fatal("cut of empty dendrogram not empty")
	}
	counts := d.ClustersPerLevel()
	if len(counts) != 1 || counts[0] != 0 {
		t.Fatalf("ClustersPerLevel = %v", counts)
	}
}

func TestCutK(t *testing.T) {
	g, d := paperDendrogram(t)
	for _, k := range []int{1, 2, 4, 8} {
		labels := d.CutK(k)
		n := clusterCount(labels)
		if n > k && n != g.NumEdges() {
			t.Fatalf("CutK(%d) gave %d clusters", k, n)
		}
		if n > k {
			t.Fatalf("CutK(%d) did not reach k: %d clusters", k, n)
		}
	}
	// k larger than the edge count: nothing merges.
	if n := clusterCount(d.CutK(100)); n != g.NumEdges() {
		t.Fatalf("CutK(100) = %d clusters, want %d", n, g.NumEdges())
	}
	// k <= 0 behaves like k = reachable minimum.
	if n := clusterCount(d.CutK(0)); n != 1 {
		t.Fatalf("CutK(0) = %d clusters, want 1 (stream ends)", n)
	}
}

func TestCutKMatchesCutLevelOnStrictStream(t *testing.T) {
	// On a strict (one merge per level) stream, CutK(n-r) == CutLevel(r).
	g := graph.ErdosRenyi(20, 0.3, rng.New(6))
	res, err := core.Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	d := New(g.NumEdges(), res.Merges)
	for r := int32(0); r <= d.NumLevels(); r += 3 {
		a := d.CutLevel(r)
		b := d.CutK(g.NumEdges() - int(r))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("r=%d: CutLevel and CutK disagree at edge %d", r, i)
			}
		}
	}
}
