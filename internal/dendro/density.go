package dendro

import (
	"sort"

	"linkclust/internal/graph"
)

// PartitionDensity computes the partition density of an edge clustering
// (Ahn et al. 2010):
//
//	D = (2/M) Σ_c m_c · (m_c - n_c + 1) / ((n_c - 2)(n_c - 1)),
//
// where m_c is the number of links in community c and n_c the number of
// vertices those links touch. Communities with n_c = 2 (a single link, or
// parallel structure collapsing to two nodes) contribute 0 by convention.
// labels[e] is the cluster id of edge e.
func PartitionDensity(g *graph.Graph, labels []int32) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	type comm struct {
		links int
		nodes map[int32]struct{}
	}
	comms := make(map[int32]*comm)
	for e := 0; e < m; e++ {
		c, ok := comms[labels[e]]
		if !ok {
			c = &comm{nodes: make(map[int32]struct{})}
			comms[labels[e]] = c
		}
		edge := g.Edge(e)
		c.links++
		c.nodes[edge.U] = struct{}{}
		c.nodes[edge.V] = struct{}{}
	}
	var d float64
	for _, c := range comms {
		nc := float64(len(c.nodes))
		mc := float64(c.links)
		if nc <= 2 {
			continue
		}
		d += mc * (mc - nc + 1) / ((nc - 2) * (nc - 1))
	}
	return 2 * d / float64(m)
}

// BestCut scans every distinct merge similarity of the dendrogram (plus the
// all-singletons cut) and returns the threshold whose flat clustering
// maximizes partition density, along with that density and clustering.
// On an empty dendrogram it returns theta = 1 with the singleton cut.
func BestCut(g *graph.Graph, d *Dendrogram) (theta float64, density float64, labels []int32) {
	best := -1.0
	candidates := append(d.Thresholds(), 2) // 2 = above everything: singletons
	sort.Sort(sort.Reverse(sort.Float64Slice(candidates)))
	for _, th := range candidates {
		l := d.CutSim(th)
		dens := PartitionDensity(g, l)
		if dens > best {
			best, theta, labels = dens, th, l
		}
	}
	return theta, best, labels
}
