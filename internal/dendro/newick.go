package dendro

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteNewick serializes the dendrogram in Newick format, one tree per
// connected component (one line each), usable with standard dendrogram and
// phylogeny tooling. Leaves are edges, named by leafName (nil uses "e<id>").
// Node heights are 1−similarity, so branch lengths are the similarity drops
// between consecutive merges; levels without a recorded similarity (Sim 0)
// sit at height 1.
func (d *Dendrogram) WriteNewick(w io.Writer, leafName func(edge int32) string) error {
	if leafName == nil {
		leafName = func(e int32) string { return fmt.Sprintf("e%d", e) }
	}
	bw := bufio.NewWriter(w)

	type node struct {
		children []int // node indices; empty for leaves
		edge     int32 // leaf payload
		height   float64
	}
	nodes := make([]node, d.n, d.n+len(d.merges))
	for i := 0; i < d.n; i++ {
		nodes[i] = node{edge: int32(i)}
	}
	// root node of each current cluster, keyed by cluster label.
	rootOf := make(map[int32]int, d.n)
	for i := 0; i < d.n; i++ {
		rootOf[int32(i)] = i
	}
	for i := range d.merges {
		m := &d.merges[i]
		a, oka := rootOf[m.A]
		b, okb := rootOf[m.B]
		if !oka || !okb {
			return fmt.Errorf("dendro: merge %d references unknown cluster (%d, %d)", i, m.A, m.B)
		}
		h := 1 - m.Sim
		if h < nodes[a].height {
			h = nodes[a].height
		}
		if h < nodes[b].height {
			h = nodes[b].height
		}
		nodes = append(nodes, node{children: []int{a, b}, height: h})
		delete(rootOf, m.A)
		delete(rootOf, m.B)
		rootOf[m.Into] = len(nodes) - 1
	}

	// Stable root order: by cluster label.
	roots := make([]int32, 0, len(rootOf))
	for label := range rootOf {
		roots = append(roots, label)
	}
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && roots[j-1] > roots[j]; j-- {
			roots[j-1], roots[j] = roots[j], roots[j-1]
		}
	}

	var write func(idx int, parentHeight float64) error
	write = func(idx int, parentHeight float64) error {
		n := &nodes[idx]
		if len(n.children) == 0 {
			fmt.Fprintf(bw, "%s:%s", sanitizeNewick(leafName(n.edge)), formatLen(parentHeight-n.height))
			return nil
		}
		bw.WriteByte('(')
		for ci, c := range n.children {
			if ci > 0 {
				bw.WriteByte(',')
			}
			if err := write(c, n.height); err != nil {
				return err
			}
		}
		bw.WriteByte(')')
		fmt.Fprintf(bw, ":%s", formatLen(parentHeight-n.height))
		return nil
	}
	for _, label := range roots {
		idx := rootOf[label]
		if err := write(idx, nodes[idx].height); err != nil {
			return err
		}
		bw.WriteString(";\n")
	}
	return bw.Flush()
}

// sanitizeNewick replaces characters with structural meaning in Newick.
func sanitizeNewick(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '(', ')', ',', ':', ';', ' ', '\t', '\n', '[', ']', '\'':
			return '_'
		default:
			return r
		}
	}, s)
}

func formatLen(l float64) string {
	if l < 0 {
		l = 0
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", l), "0"), ".")
}
