package dendro

import (
	"bytes"
	"strings"
	"testing"

	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

func TestNewickPaperExample(t *testing.T) {
	g, d := paperDendrogram(t)
	var buf bytes.Buffer
	err := d.WriteNewick(&buf, func(e int32) string {
		edge := g.Edge(int(e))
		return g.Label(int(edge.U)) + "-" + g.Label(int(edge.V))
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// K_{2,4} is link-connected: exactly one tree.
	if strings.Count(out, ";") != 1 {
		t.Fatalf("want 1 tree, got:\n%s", out)
	}
	// All 8 leaves present.
	for _, leaf := range []string{"a-c", "a-d", "a-e", "a-f", "b-c", "b-d", "b-e", "b-f"} {
		if !strings.Contains(out, leaf) {
			t.Fatalf("leaf %s missing:\n%s", leaf, out)
		}
	}
	// Balanced parentheses.
	if strings.Count(out, "(") != strings.Count(out, ")") {
		t.Fatalf("unbalanced parentheses:\n%s", out)
	}
	// 7 merges -> 7 internal nodes -> 7 '(' .
	if strings.Count(out, "(") != 7 {
		t.Fatalf("want 7 internal nodes, got %d:\n%s", strings.Count(out, "("), out)
	}
}

func TestNewickForest(t *testing.T) {
	// A perfect matching never merges: n trees of single leaves.
	g := graph.DisjointEdges(3)
	res, err := core.Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	d := New(g.NumEdges(), res.Merges)
	var buf bytes.Buffer
	if err := d.WriteNewick(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(buf.String())
	lines := strings.Split(out, "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 trees, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "e0") || !strings.Contains(out, "e2") {
		t.Fatalf("default leaf names missing:\n%s", out)
	}
}

func TestNewickBranchLengthsNonNegative(t *testing.T) {
	g := graph.ErdosRenyi(20, 0.3, rng.New(4))
	res, err := core.Cluster(g)
	if err != nil {
		t.Fatal(err)
	}
	d := New(g.NumEdges(), res.Merges)
	var buf bytes.Buffer
	if err := d.WriteNewick(&buf, nil); err != nil {
		t.Fatal(err)
	}
	for _, tok := range strings.FieldsFunc(buf.String(), func(r rune) bool {
		return r == '(' || r == ')' || r == ',' || r == ';' || r == '\n'
	}) {
		if i := strings.LastIndex(tok, ":"); i >= 0 {
			if strings.HasPrefix(tok[i+1:], "-") {
				t.Fatalf("negative branch length in %q", tok)
			}
		}
	}
}

func TestNewickSanitize(t *testing.T) {
	if got := sanitizeNewick("a b(c):d;e"); got != "a_b_c__d_e" {
		t.Fatalf("sanitize = %q", got)
	}
}

func TestNewickCoarseStream(t *testing.T) {
	// Coarse merges (shared levels, possibly multi-way fusions expressed
	// pairwise) must still serialize.
	merges := []core.Merge{
		{Level: 1, A: 0, B: 1, Into: 0, Sim: 0.9},
		{Level: 1, A: 2, B: 3, Into: 2, Sim: 0.9},
		{Level: 2, A: 0, B: 2, Into: 0, Sim: 0.5},
	}
	d := New(5, merges)
	var buf bytes.Buffer
	if err := d.WriteNewick(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, ";") != 2 { // joined tree + lone e4
		t.Fatalf("want 2 trees:\n%s", out)
	}
}
