// Package fault provides deterministic, always-compiled fault-injection
// points for the execution layer's failure-behavior tests. Production code
// calls Hit at a small set of named sites (the registry below); a test arms
// a point with the ordinal of the hit that should fire and an action to run
// at that hit — panic, cancel a context, sleep, or nothing (the caller can
// branch on Hit's return value instead, as the memory-budget check does).
//
// The design constraints mirror the differential harness the points feed:
//
//   - Deterministic addressing. A point fires at its N-th hit, counted by a
//     global atomic per point. At serial sites (window cuts, budget checks,
//     ordered bucket emissions) the N-th hit is the same program state on
//     every run, so a fault is a reproducible coordinate, not a probability.
//     At concurrent sites (worker spawns) the N-th hit may land on any
//     worker, but the *observable* outcome — a typed error from the entry
//     point — is identical.
//   - Zero cost when disarmed. The fast path is one atomic load; no point
//     allocates, and nothing is registered at init time. The package is
//     compiled into release builds (no build tags), so the tested binary is
//     the shipped binary.
//   - No dependencies. The package imports only the standard library and is
//     imported by internal/par and internal/obs; it must never import
//     anything from this module.
//
// Tests must call Reset (typically via defer) after arming points; armed
// state is process-global.
package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Point identifies one injection site. The registry is intentionally small:
// every point is documented in DESIGN.md and exercised by the fault-matrix
// CI job.
type Point uint8

const (
	// WorkerPanic fires in a par worker pool immediately before the worker
	// body runs — one hit per worker launch. Arming it with a panicking
	// action simulates a crash inside a fan-out; the pool must recover it,
	// cancel its siblings, and surface a typed *par.WorkerPanicError.
	WorkerPanic Point = iota
	// SlowProducer fires in the pipelined sweep's bucket producer, once per
	// bucket sorted. Arming it with a sleep simulates a stalled sort stage;
	// the merge stream must stay bitwise identical (slow is not wrong).
	SlowProducer
	// CancelWindow fires at every op-count window cut of the sweep engine —
	// the engine's cancellation points. Arming it with a context-cancel
	// action at hit K cancels the run at window K exactly, which is how the
	// harness pins the one-window cancel-latency bound.
	CancelWindow
	// MemBreach fires at every memory-budget phase-boundary check. The
	// budget check treats a firing hit as a breach, forcing the degrade
	// path without having to actually exhaust the heap.
	MemBreach
	// StreamIngest fires once per arrival batch at the head of the stream
	// engine's ingest, before any state is touched. Arming it with a
	// context-cancel action proves a cancelled ingest is atomic: the engine
	// reports ctx.Err() and the next Snapshot still matches the batch oracle
	// on the pre-batch graph.
	StreamIngest
	// StreamCompact fires at the entry of every stream compaction (the
	// batch-path fallback), after the trigger decided but before the batch
	// recompute starts. Arming it with a context-cancel action exercises the
	// engine's compaction-abort path; disarmed runs stay golden.
	StreamCompact
	// SpillWrite fires in the spill store's write-behind pool, once per
	// block write (the flush of a full or final per-bucket buffer). A firing
	// hit is the fault: the block is not written and the store fails with an
	// ENOSPC-shaped typed error. Block flush order is worker-dependent, so
	// like WorkerPanic the N-th hit may land on any bucket, but the
	// observable outcome — a typed write error from the entry point, the
	// pair list intact, no spill files left behind — is identical.
	SpillWrite
	// SpillRead fires in the spill store's bucket open path, once per
	// bucket, after the real checksum verified. A firing hit reports the
	// bucket as corrupted (the checksum-mismatch typed error), exercising
	// the read-back failure path without crafting a corrupt file on disk.
	SpillRead
	// JournalAppend fires in the persistence layer's job journal, once per
	// record append, before any byte reaches the file. A firing hit is the
	// fault: the append fails with the journal's typed write error and the
	// daemon must degrade to memory-only durability — it keeps serving, it
	// never corrupts the journal tail. Armed with a process-kill action it
	// is the kill-and-restart harness's "crash at journal append" point.
	JournalAppend
	// CacheStoreWrite fires in the persistence layer's entry store, once
	// per entry write (durable cache entries, checkpoints, graph blobs),
	// before the temp file is created. A firing hit fails the write with
	// the store's typed error; callers treat a failed store as a skipped
	// write (memory-only), never as job failure.
	CacheStoreWrite
	// CacheStoreLoad fires in the persistence layer's entry store, once per
	// entry read, after the real checksum verified. A firing hit reports
	// the entry as corrupted, exercising the corruption-as-miss path
	// without crafting a corrupt file on disk.
	CacheStoreLoad
	numPoints
)

// String returns the registry name of the point.
func (p Point) String() string {
	switch p {
	case WorkerPanic:
		return "worker-panic"
	case SlowProducer:
		return "slow-producer"
	case CancelWindow:
		return "cancel-window"
	case MemBreach:
		return "mem-breach"
	case StreamIngest:
		return "stream-ingest"
	case StreamCompact:
		return "stream-compact"
	case SpillWrite:
		return "spill-write"
	case SpillRead:
		return "spill-read"
	case JournalAppend:
		return "journal-append"
	case CacheStoreWrite:
		return "cache-store-write"
	case CacheStoreLoad:
		return "cache-store-load"
	default:
		return "invalid"
	}
}

// Points returns every registered injection point, for docs and the
// fault-matrix test that arms each one in turn.
func Points() []Point {
	return []Point{WorkerPanic, SlowProducer, CancelWindow, MemBreach, StreamIngest, StreamCompact, SpillWrite, SpillRead, JournalAppend, CacheStoreWrite, CacheStoreLoad}
}

type arming struct {
	hitN   int64
	action func()
}

var (
	// armedCount gates the fast path: zero means every Hit is a single
	// atomic load and an immediate return.
	armedCount atomic.Int32
	mu         sync.Mutex
	armed      [numPoints]atomic.Pointer[arming]
	hits       [numPoints]atomic.Int64
)

// Arm schedules action to run at the hitN-th Hit of p (1-based) counted from
// the last Reset. A nil action is valid: the firing hit then only reports
// true to its call site. Re-arming a point replaces its previous arming; the
// hit counter is not reset (use Reset between scenarios).
func Arm(p Point, hitN int64, action func()) {
	if p >= numPoints || hitN < 1 {
		panic("fault: invalid arming")
	}
	mu.Lock()
	defer mu.Unlock()
	if armed[p].Swap(&arming{hitN: hitN, action: action}) == nil {
		armedCount.Add(1)
	}
}

// Reset disarms every point and zeroes every hit counter. Tests that arm
// points must defer a Reset; armed state is process-global.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for p := Point(0); p < numPoints; p++ {
		if armed[p].Swap(nil) != nil {
			armedCount.Add(-1)
		}
		hits[p].Store(0)
	}
}

// Armed reports how many points are currently armed. The golden differential
// tests assert 0 before pinning hashes.
func Armed() int {
	return int(armedCount.Load())
}

// ArmFromEnv arms one point from a "name:hitN:action" spec, the interface a
// crash harness uses to inject faults into a daemon subprocess it cannot call
// Arm inside. name is a registry name as printed by Point.String, hitN the
// 1-based firing ordinal, and action one of:
//
//   - "kill" — the process SIGKILLs itself at the hit (os.Process.Kill on
//     the daemon's own pid), the deterministic stand-in for a crash or
//     OOM-kill at exactly that persistence operation. No deferred cleanup
//     runs, which is the point.
//   - "fail" — no action; the firing hit only reports true to its call
//     site, exercising the typed-error path.
//
// An empty spec is a no-op, so callers can pass os.Getenv verbatim.
func ArmFromEnv(spec string) error {
	if spec == "" {
		return nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("fault: spec %q, want name:hitN:action", spec)
	}
	var point Point = numPoints
	for p := Point(0); p < numPoints; p++ {
		if p.String() == parts[0] {
			point = p
			break
		}
	}
	if point == numPoints {
		return fmt.Errorf("fault: unknown point %q", parts[0])
	}
	hitN, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || hitN < 1 {
		return fmt.Errorf("fault: bad hit ordinal %q", parts[1])
	}
	var action func()
	switch parts[2] {
	case "kill":
		action = func() {
			p, err := os.FindProcess(os.Getpid())
			if err == nil {
				p.Kill()
			}
			select {} // never proceed past the kill point
		}
	case "fail":
		action = nil
	default:
		return fmt.Errorf("fault: unknown action %q (want kill or fail)", parts[2])
	}
	Arm(point, hitN, action)
	return nil
}

// Hit records one arrival at point p and reports whether the armed action
// fired at this hit. When no point is armed anywhere in the process, Hit is
// one atomic load. Hits are counted only while at least one point is armed,
// so a test's hit ordinals are relative to its own Arm/Reset bracket rather
// than to process history.
func Hit(p Point) bool {
	if armedCount.Load() == 0 {
		return false
	}
	n := hits[p].Add(1)
	a := armed[p].Load()
	if a == nil || n != a.hitN {
		return false
	}
	if a.action != nil {
		a.action()
	}
	return true
}
