package fault

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDisarmedHitIsFalse(t *testing.T) {
	Reset()
	for _, p := range Points() {
		if Hit(p) {
			t.Fatalf("disarmed point %v fired", p)
		}
	}
	if Armed() != 0 {
		t.Fatalf("Armed() = %d, want 0", Armed())
	}
}

func TestArmFiresAtExactHit(t *testing.T) {
	defer Reset()
	Reset()
	var fired atomic.Int32
	Arm(CancelWindow, 3, func() { fired.Add(1) })
	for i := 1; i <= 5; i++ {
		got := Hit(CancelWindow)
		if want := i == 3; got != want {
			t.Fatalf("hit %d: fired=%v, want %v", i, got, want)
		}
	}
	if fired.Load() != 1 {
		t.Fatalf("action ran %d times, want 1", fired.Load())
	}
}

func TestArmNilActionReportsOnly(t *testing.T) {
	defer Reset()
	Reset()
	Arm(MemBreach, 1, nil)
	if !Hit(MemBreach) {
		t.Fatal("first hit of armed point did not report")
	}
	if Hit(MemBreach) {
		t.Fatal("second hit reported after one-shot fired")
	}
}

func TestPointsAreIndependent(t *testing.T) {
	defer Reset()
	Reset()
	Arm(WorkerPanic, 1, nil)
	if Hit(SlowProducer) {
		t.Fatal("unarmed sibling point fired")
	}
	if !Hit(WorkerPanic) {
		t.Fatal("armed point did not fire")
	}
}

func TestResetClearsCountersAndArmings(t *testing.T) {
	Reset()
	Arm(SlowProducer, 2, nil)
	Hit(SlowProducer)
	Reset()
	if Armed() != 0 {
		t.Fatalf("Armed() = %d after Reset, want 0", Armed())
	}
	// Re-arm at hit 2: the counter must have restarted from zero.
	defer Reset()
	Arm(SlowProducer, 2, nil)
	if Hit(SlowProducer) {
		t.Fatal("hit 1 fired an arming for hit 2")
	}
	if !Hit(SlowProducer) {
		t.Fatal("hit 2 did not fire")
	}
}

// TestArmFromEnv covers the subprocess arming interface: a valid fail spec
// arms the named point at the named ordinal, malformed specs error without
// arming anything, and the empty spec is a no-op.
func TestArmFromEnv(t *testing.T) {
	defer Reset()
	Reset()
	if err := ArmFromEnv(""); err != nil || Armed() != 0 {
		t.Fatalf("empty spec: err=%v armed=%d, want nil/0", err, Armed())
	}
	for _, bad := range []string{"journal-append", "journal-append:1", "nope:1:fail", "journal-append:0:fail", "journal-append:x:fail", "journal-append:1:explode"} {
		if err := ArmFromEnv(bad); err == nil {
			t.Fatalf("spec %q accepted, want error", bad)
		}
	}
	if Armed() != 0 {
		t.Fatalf("Armed() = %d after rejected specs, want 0", Armed())
	}
	if err := ArmFromEnv("cache-store-load:2:fail"); err != nil {
		t.Fatal(err)
	}
	if Hit(CacheStoreLoad) {
		t.Fatal("hit 1 fired a spec armed for hit 2")
	}
	if !Hit(CacheStoreLoad) {
		t.Fatal("hit 2 did not fire")
	}
}

// TestConcurrentHitsFireExactlyOnce drives an armed point from many
// goroutines: exactly one hit may observe the firing ordinal.
func TestConcurrentHitsFireExactlyOnce(t *testing.T) {
	defer Reset()
	Reset()
	var fired atomic.Int32
	Arm(WorkerPanic, 64, func() { fired.Add(1) })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				Hit(WorkerPanic)
			}
		}()
	}
	wg.Wait()
	if fired.Load() != 1 {
		t.Fatalf("action ran %d times across 256 concurrent hits, want 1", fired.Load())
	}
}
