package graph

import (
	"fmt"
	"sort"
)

// ConnectedComponents returns the vertex-connected components of g: for
// every vertex, the id of its component, labeled by the minimum vertex in
// the component, plus the number of components. Isolated vertices form
// their own components.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int32
	for start := 0; start < n; start++ {
		if labels[start] >= 0 {
			continue
		}
		count++
		root := int32(start) // minimum: vertices are visited in order
		stack = append(stack[:0], root)
		labels[start] = root
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.Neighbors(int(v)) {
				if labels[h.To] < 0 {
					labels[h.To] = root
					stack = append(stack, h.To)
				}
			}
		}
	}
	return labels, count
}

// InducedSubgraph returns the subgraph induced by the given vertices (which
// must be distinct and in range) together with the mapping from new vertex
// ids to original ids. Labels are carried over; edge weights are preserved;
// edge ids are renumbered in the original id order of their surviving
// edges.
func InducedSubgraph(g *Graph, vertices []int) (*Graph, []int, error) {
	old2new := make(map[int]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.NumVertices() {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range [0,%d)", v, g.NumVertices())
		}
		if _, dup := old2new[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		old2new[v] = i
	}
	var b *Builder
	if g.Labeled() {
		labels := make([]string, len(vertices))
		for i, v := range vertices {
			labels[i] = g.Label(v)
		}
		b = NewLabeledBuilder(labels)
	} else {
		b = NewBuilder(len(vertices))
	}
	for _, e := range g.Edges() {
		nu, okU := old2new[int(e.U)]
		nv, okV := old2new[int(e.V)]
		if okU && okV {
			if err := b.AddEdge(nu, nv, e.Weight); err != nil {
				return nil, nil, err
			}
		}
	}
	mapping := append([]int(nil), vertices...)
	return b.Build(nil), mapping, nil
}

// DegreeHistogram returns the sorted distinct degrees of g and the count of
// vertices at each.
func DegreeHistogram(g *Graph) (degrees []int, counts []int) {
	hist := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		hist[g.Degree(v)]++
	}
	degrees = make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}
