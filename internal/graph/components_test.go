package graph

import (
	"testing"
	"testing/quick"

	"linkclust/internal/rng"
)

func TestConnectedComponentsBasic(t *testing.T) {
	// Two triangles and an isolated vertex.
	b := NewBuilder(7)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(0, 2, 1)
	b.MustAddEdge(3, 4, 1)
	b.MustAddEdge(4, 5, 1)
	b.MustAddEdge(3, 5, 1)
	g := b.Build(nil)
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	want := []int32{0, 0, 0, 3, 3, 3, 6}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestConnectedComponentsEmptyAndComplete(t *testing.T) {
	if labels, count := ConnectedComponents(NewBuilder(0).Build(nil)); count != 0 || len(labels) != 0 {
		t.Fatalf("empty graph: %v %d", labels, count)
	}
	labels, count := ConnectedComponents(Complete(5))
	if count != 1 {
		t.Fatalf("K5 components = %d", count)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatalf("K5 labels = %v", labels)
		}
	}
}

func TestConnectedComponentsQuick(t *testing.T) {
	// Label agreement is an equivalence consistent with edges: endpoints
	// of every edge share a label, and the component count equals the
	// number of distinct labels.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		g := ErdosRenyi(n, 0.08, rng.New(seed))
		labels, count := ConnectedComponents(g)
		for _, e := range g.Edges() {
			if labels[e.U] != labels[e.V] {
				return false
			}
		}
		distinct := make(map[int32]struct{})
		for v, l := range labels {
			if l > int32(v) {
				return false // label is the minimum member
			}
			distinct[l] = struct{}{}
		}
		return len(distinct) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewLabeledBuilder([]string{"a", "b", "c", "d"})
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 2)
	b.MustAddEdge(2, 3, 3)
	b.MustAddEdge(0, 3, 4)
	g := b.Build(nil)

	sub, mapping, err := InducedSubgraph(g, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub has %d vertices %d edges", sub.NumVertices(), sub.NumEdges())
	}
	if sub.Label(0) != "b" || sub.Label(2) != "d" {
		t.Fatalf("labels lost: %q %q", sub.Label(0), sub.Label(2))
	}
	if mapping[1] != 2 {
		t.Fatalf("mapping = %v", mapping)
	}
	if w := sub.Weight(0, 1); w != 2 {
		t.Fatalf("edge b-c weight %v", w)
	}
	if w := sub.Weight(1, 2); w != 3 {
		t.Fatalf("edge c-d weight %v", w)
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := Complete(3)
	if _, _, err := InducedSubgraph(g, []int{0, 5}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, _, err := InducedSubgraph(g, []int{1, 1}); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5) // center degree 4, four leaves degree 1
	degrees, counts := DegreeHistogram(g)
	if len(degrees) != 2 || degrees[0] != 1 || degrees[1] != 4 {
		t.Fatalf("degrees = %v", degrees)
	}
	if counts[0] != 4 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
