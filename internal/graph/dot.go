package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT serializes g in Graphviz DOT format for visualization. Vertex
// names come from labels when present. edgeColor, when non-nil, assigns a
// color-class integer to each edge id (e.g. a link-community label); edges
// in the same class share one of a rotating palette of colors, which is how
// link communities are usually drawn.
func WriteDOT(w io.Writer, g *Graph, edgeColor func(edge int32) int32) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph linkclust {")
	fmt.Fprintln(bw, "  node [shape=circle fontsize=10];")
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(bw, "  n%d [label=%q];\n", v, g.Label(v))
	}
	palette := []string{
		"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
		"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
	}
	colorIndex := make(map[int32]int)
	for i, e := range g.Edges() {
		attrs := []string{fmt.Sprintf("weight=%g", e.Weight)}
		if g.Weight(int(e.U), int(e.V)) != 1 {
			attrs = append(attrs, fmt.Sprintf(`label="%.3g"`, e.Weight))
		}
		if edgeColor != nil {
			class := edgeColor(int32(i))
			idx, ok := colorIndex[class]
			if !ok {
				idx = len(colorIndex) % len(palette)
				colorIndex[class] = idx
			}
			attrs = append(attrs, fmt.Sprintf("color=%q penwidth=2", palette[idx]))
		}
		fmt.Fprintf(bw, "  n%d -- n%d [%s];\n", e.U, e.V, strings.Join(attrs, " "))
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
