package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOTBasic(t *testing.T) {
	b := NewLabeledBuilder([]string{"x", "y", "z"})
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 2.5)
	g := b.Build(nil)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph linkclust {",
		`n0 [label="x"]`,
		"n0 -- n1",
		"n1 -- n2",
		`label="2.5"`, // non-unit weight labeled
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "--") != 2 {
		t.Fatalf("edge count wrong:\n%s", out)
	}
}

func TestWriteDOTEdgeColors(t *testing.T) {
	g := Complete(4)
	labels := []int32{0, 0, 0, 5, 5, 5} // two color classes
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, func(e int32) int32 { return labels[e] })
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "#1f77b4") != 3 || strings.Count(out, "#ff7f0e") != 3 {
		t.Fatalf("color classes wrong:\n%s", out)
	}
}

func TestWriteDOTEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, NewBuilder(0).Build(nil), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph linkclust {") {
		t.Fatal("empty graph produced no header")
	}
}
