package graph

import (
	"fmt"
	"math"
	"slices"
)

// maxDynamicVertices caps Dynamic's vertex growth, mirroring the reader's
// hardened bound: vertex and edge ids must stay representable as int32.
const maxDynamicVertices = 1 << 31

// Dynamic is a mutable weighted undirected graph for streaming ingestion.
// It maintains exactly the invariants Builder.Build establishes — adjacency
// sorted by neighbor id, canonical U < V edges, dense edge ids in first-
// insertion order, last-write-wins weight overwrites that keep the original
// edge id — so a Dynamic fed a sequence of arrivals and a Builder fed the
// same sequence produce element-wise identical graphs. That equivalence is
// what makes a batch run on the accumulated graph a valid oracle for the
// incremental engine in internal/stream.
//
// Snapshot returns an immutable *Graph view in O(1); copy-on-write keeps
// every issued snapshot stable under later mutations (mutated adjacency rows
// and overwritten edge records are re-allocated, never rewritten in place).
// Dynamic is not safe for concurrent use; callers serialize access.
type Dynamic struct {
	adj   [][]Half
	edges []Edge
	seen  map[[2]int32]int32 // canonical pair -> edge id

	// Copy-on-write state: Snapshot marks the outer adjacency array and the
	// edge slice as shared; the first subsequent row replacement (or edge
	// overwrite) clones the shared container. Appends never need a clone —
	// they write beyond every snapshot's length. Inner rows are always
	// re-allocated on mutation, so they need no flag.
	adjShared   bool
	edgesShared bool
}

// NewDynamic returns an empty mutable graph.
func NewDynamic() *Dynamic {
	return &Dynamic{seen: make(map[[2]int32]int32)}
}

// NumVertices returns the current vertex count.
func (d *Dynamic) NumVertices() int { return len(d.adj) }

// NumEdges returns the current edge count.
func (d *Dynamic) NumEdges() int { return len(d.edges) }

// EnsureVertices grows the vertex set to at least n (new vertices start
// isolated). Shrinking is not supported; a smaller n is a no-op. Counts
// beyond the int32 id space are rejected with an error wrapping
// ErrVertexRange.
func (d *Dynamic) EnsureVertices(n int) error {
	if n > maxDynamicVertices {
		return fmt.Errorf("graph: vertex count %d exceeds %d: %w", n, maxDynamicVertices, ErrVertexRange)
	}
	for len(d.adj) < n {
		// Appending can extend shared backing in place, but only beyond
		// every snapshot's length, so snapshots never observe the growth.
		d.adj = append(d.adj, nil)
	}
	return nil
}

// AddEdge inserts the undirected edge {u, v} with the given weight, or
// overwrites the weight if the pair exists (the edge keeps its original id,
// exactly like Builder.AddEdge). New edges are assigned the next dense id.
// Validation mirrors Builder.AddEdge: errors wrap ErrVertexRange,
// ErrSelfLoop, or ErrBadWeight. It returns the edge's id and whether the
// call overwrote an existing edge.
func (d *Dynamic) AddEdge(u, v int, w float64) (id int32, overwrote bool, err error) {
	n := len(d.adj)
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, false, fmt.Errorf("graph: edge (%d,%d) outside [0,%d): %w", u, v, n, ErrVertexRange)
	}
	if u == v {
		return 0, false, fmt.Errorf("graph: edge (%d,%d): %w", u, v, ErrSelfLoop)
	}
	if !(w > 0) || math.IsInf(w, 1) {
		return 0, false, fmt.Errorf("graph: edge (%d,%d) weight %v (must be positive and finite): %w", u, v, w, ErrBadWeight)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int32{int32(u), int32(v)}
	if e, ok := d.seen[key]; ok {
		d.setWeight(e, u, v, w)
		return e, true, nil
	}
	e := int32(len(d.edges))
	d.seen[key] = e
	if d.edgesShared && len(d.edges) == cap(d.edges) {
		// The append below would reallocate anyway; let it.
		d.edgesShared = false
	}
	d.edges = append(d.edges, Edge{U: int32(u), V: int32(v), Weight: w})
	d.insertHalf(u, Half{To: int32(v), Weight: w, Edge: e})
	d.insertHalf(v, Half{To: int32(u), Weight: w, Edge: e})
	return e, false, nil
}

// setWeight overwrites edge e = {u, v} with weight w, cloning the shared
// edge slice and both adjacency rows so issued snapshots keep the old value.
func (d *Dynamic) setWeight(e int32, u, v int, w float64) {
	if d.edgesShared {
		d.edges = slices.Clone(d.edges)
		d.edgesShared = false
	}
	d.edges[e].Weight = w
	d.rewriteHalf(u, int32(v), w)
	d.rewriteHalf(v, int32(u), w)
}

// mutableOuter clones the outer adjacency array if a snapshot shares it, so
// a row-pointer replacement cannot leak into issued views.
func (d *Dynamic) mutableOuter() {
	if d.adjShared {
		d.adj = slices.Clone(d.adj)
		d.adjShared = false
	}
}

// insertHalf inserts h into v's row at its sorted position. The row is
// always re-allocated: an in-place insertion would shift entries a snapshot
// may still be reading.
func (d *Dynamic) insertHalf(v int, h Half) {
	d.mutableOuter()
	old := d.adj[v]
	i, _ := slices.BinarySearchFunc(old, h.To, func(x Half, to int32) int { return int(x.To) - int(to) })
	row := make([]Half, len(old)+1)
	copy(row, old[:i])
	row[i] = h
	copy(row[i+1:], old[i:])
	d.adj[v] = row
}

// rewriteHalf replaces the weight of v's half-edge to neighbor to, cloning
// the row.
func (d *Dynamic) rewriteHalf(v int, to int32, w float64) {
	d.mutableOuter()
	row := slices.Clone(d.adj[v])
	i, ok := slices.BinarySearchFunc(row, to, func(x Half, t int32) int { return int(x.To) - int(t) })
	if !ok {
		panic(fmt.Sprintf("graph: dynamic adjacency of %d lost neighbor %d", v, to))
	}
	row[i].Weight = w
	d.adj[v] = row
}

// Snapshot returns an immutable view of the current graph. The view costs
// O(1) and stays valid forever: later mutations copy-on-write everything the
// view can reach. Vertices are unlabeled.
func (d *Dynamic) Snapshot() *Graph {
	d.adjShared = true
	d.edgesShared = true
	return &Graph{adj: d.adj[:len(d.adj):len(d.adj)], edges: d.edges[:len(d.edges):len(d.edges)]}
}
