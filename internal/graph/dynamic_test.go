package graph

import (
	"errors"
	"math"
	"testing"

	"linkclust/internal/rng"
)

// requireSameGraph asserts two graphs are element-wise identical: vertex and
// edge counts, edge records in id order, and adjacency rows entry for entry.
func requireGraphsIdentical(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("%s: %d vertices, want %d", label, got.NumVertices(), want.NumVertices())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: %d edges, want %d", label, got.NumEdges(), want.NumEdges())
	}
	for e := range want.Edges() {
		if got.Edge(e) != want.Edge(e) {
			t.Fatalf("%s: edge %d = %+v, want %+v", label, e, got.Edge(e), want.Edge(e))
		}
	}
	for v := 0; v < want.NumVertices(); v++ {
		gn, wn := got.Neighbors(v), want.Neighbors(v)
		if len(gn) != len(wn) {
			t.Fatalf("%s: vertex %d has %d neighbors, want %d", label, v, len(gn), len(wn))
		}
		for i := range wn {
			if gn[i] != wn[i] {
				t.Fatalf("%s: adj[%d][%d] = %+v, want %+v", label, v, i, gn[i], wn[i])
			}
		}
	}
}

// TestDynamicMatchesBuilder feeds identical arrival sequences — including
// duplicate overwrites — to a Dynamic and a Builder and requires the
// resulting graphs to be element-wise identical, for several random
// sequences.
func TestDynamicMatchesBuilder(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		src := rng.New(seed)
		n := 8 + src.Intn(24)
		d := NewDynamic()
		if err := d.EnsureVertices(n); err != nil {
			t.Fatal(err)
		}
		b := NewBuilder(n)
		for i := 0; i < 6*n; i++ {
			u, v := src.Intn(n), src.Intn(n)
			w := 0.25 + src.Float64()
			if u == v {
				continue
			}
			if err := b.AddEdge(u, v, w); err != nil {
				t.Fatal(err)
			}
			if _, _, err := d.AddEdge(u, v, w); err != nil {
				t.Fatal(err)
			}
		}
		requireGraphsIdentical(t, "dynamic vs builder", d.Snapshot(), b.Build(nil))
	}
}

// TestDynamicValidation mirrors Builder.AddEdge's typed rejections.
func TestDynamicValidation(t *testing.T) {
	d := NewDynamic()
	if err := d.EnsureVertices(4); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		u, v int
		w    float64
		want error
	}{
		{-1, 2, 1, ErrVertexRange},
		{0, 4, 1, ErrVertexRange},
		{2, 2, 1, ErrSelfLoop},
		{0, 1, 0, ErrBadWeight},
		{0, 1, -3, ErrBadWeight},
		{0, 1, math.NaN(), ErrBadWeight},
		{0, 1, math.Inf(1), ErrBadWeight},
	}
	for _, c := range cases {
		if _, _, err := d.AddEdge(c.u, c.v, c.w); !errors.Is(err, c.want) {
			t.Errorf("AddEdge(%d,%d,%v): err = %v, want %v", c.u, c.v, c.w, err, c.want)
		}
	}
	if d.NumEdges() != 0 {
		t.Fatalf("rejected arrivals added %d edges", d.NumEdges())
	}
	if err := d.EnsureVertices(maxDynamicVertices + 1); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("oversized EnsureVertices: err = %v, want ErrVertexRange", err)
	}
}

// TestDynamicSnapshotIsolation takes a snapshot mid-stream and checks that
// later arrivals — inserts touching snapshot rows, weight overwrites, vertex
// growth — never change what the snapshot sees.
func TestDynamicSnapshotIsolation(t *testing.T) {
	d := NewDynamic()
	if err := d.EnsureVertices(4); err != nil {
		t.Fatal(err)
	}
	mustAdd := func(u, v int, w float64) {
		t.Helper()
		if _, _, err := d.AddEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1, 1)
	mustAdd(1, 2, 2)
	snap := d.Snapshot()

	ref := NewBuilder(4)
	ref.MustAddEdge(0, 1, 1)
	ref.MustAddEdge(1, 2, 2)
	want := ref.Build(nil)

	// Mutate everything the snapshot can reach: overwrite an edge weight,
	// insert into a snapshot row, and grow the vertex set.
	mustAdd(0, 1, 9)
	mustAdd(1, 3, 4)
	if err := d.EnsureVertices(10); err != nil {
		t.Fatal(err)
	}
	mustAdd(1, 9, 5)

	requireGraphsIdentical(t, "snapshot after mutations", snap, want)

	// The live view reflects every mutation and still matches a Builder fed
	// the same sequence.
	ref2 := NewBuilder(10)
	ref2.MustAddEdge(0, 1, 1)
	ref2.MustAddEdge(1, 2, 2)
	ref2.MustAddEdge(0, 1, 9)
	ref2.MustAddEdge(1, 3, 4)
	ref2.MustAddEdge(1, 9, 5)
	requireGraphsIdentical(t, "live view after mutations", d.Snapshot(), ref2.Build(nil))
}

// TestDynamicOverwriteKeepsEdgeID pins the Builder-compatible last-write-wins
// semantics: an overwrite keeps the original edge id and reports overwrote.
func TestDynamicOverwriteKeepsEdgeID(t *testing.T) {
	d := NewDynamic()
	if err := d.EnsureVertices(3); err != nil {
		t.Fatal(err)
	}
	id0, over, err := d.AddEdge(2, 1, 1)
	if err != nil || over {
		t.Fatalf("first add: id=%d over=%v err=%v", id0, over, err)
	}
	id1, _, err := d.AddEdge(0, 1, 1)
	if err != nil || id1 != 1 {
		t.Fatalf("second add: id=%d err=%v", id1, err)
	}
	// Same pair, either orientation, overwrites in place.
	id2, over, err := d.AddEdge(1, 2, 7)
	if err != nil || !over || id2 != id0 {
		t.Fatalf("overwrite: id=%d over=%v err=%v, want id=%d over=true", id2, over, err, id0)
	}
	g := d.Snapshot()
	if e := g.Edge(int(id0)); e.U != 1 || e.V != 2 || e.Weight != 7 {
		t.Fatalf("edge %d = %+v, want {1 2 7}", id0, e)
	}
	if w := g.Weight(2, 1); w != 7 {
		t.Fatalf("adjacency weight %v, want 7", w)
	}
}
