package graph

import (
	"errors"
	"fmt"
)

// Sentinel error classes for graph construction and parsing. Construction
// errors (Builder.AddEdge) wrap these so callers can classify failures with
// errors.Is regardless of the formatted detail; Read additionally wraps them
// in a *ParseError carrying the offending line number.
var (
	// ErrVertexRange marks a vertex id outside [0, NumVertices()) or a
	// vertex count that does not fit the int32 id space.
	ErrVertexRange = errors.New("vertex id out of range")
	// ErrSelfLoop marks an edge whose endpoints coincide.
	ErrSelfLoop = errors.New("self-loop")
	// ErrBadWeight marks an edge weight that is not a positive finite
	// number (zero, negative, NaN, or infinite).
	ErrBadWeight = errors.New("invalid edge weight")
	// ErrDuplicateEdge marks a repeated endpoint pair in a serialized graph.
	// Only Read rejects duplicates; the programmatic Builder keeps its
	// documented last-write-wins semantics.
	ErrDuplicateEdge = errors.New("duplicate edge")
)

// ParseError is the typed error returned by Read for malformed input: the
// 1-based line number of the offending line and the underlying cause, which
// wraps one of the sentinel classes above where applicable. Match with
// errors.As for the location or errors.Is for the class.
type ParseError struct {
	Line int
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("graph: line %d: %v", e.Line, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// parseErrf builds a *ParseError whose cause is a formatted message; pass a
// %w verb to chain a sentinel class.
func parseErrf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Err: fmt.Errorf(format, args...)}
}
