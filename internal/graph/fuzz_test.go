package graph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// fuzzVertexCap bounds the vertex counts the fuzzer is willing to build:
// Read legitimately accepts any count in the int32 id space, but Build
// reserves O(n) adjacency headers, so a hostile "vertices 2000000000" would
// be an allocation bomb for the fuzz process rather than a parser bug.
const fuzzVertexCap = 1 << 20

// declaresHugeGraph reports whether input contains a vertices directive the
// fuzzer should not materialize.
func declaresHugeGraph(input string) bool {
	for _, line := range strings.Split(input, "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 2 && fields[0] == "vertices" {
			if n, err := strconv.Atoi(fields[1]); err == nil && n > fuzzVertexCap {
				return true
			}
		}
	}
	return false
}

// FuzzReadGraph asserts the parser's robustness contract on hostile input:
// arbitrary bytes never panic, rejection is always a clean error, and
// anything accepted survives a Write/Read round trip unchanged.
func FuzzReadGraph(f *testing.F) {
	f.Add("vertices 3\nedge 0 1 1.5\nedge 1 2 2\n")
	f.Add("vertices 2\nlabel 0 hello\nedge 0 1 0.25\n")
	f.Add("# comment only\n")
	f.Add("vertices 0\n")
	f.Add("vertices 1\nedge 0 0 1\n")
	f.Add("vertices -3\n")
	f.Add("edge 1 2 3\nvertices 4\n")
	// Hostile classes: non-finite and non-positive weights, duplicate pairs,
	// id-space overflow, junk numerals.
	f.Add("vertices 2\nedge 0 1 NaN\n")
	f.Add("vertices 2\nedge 0 1 +Inf\n")
	f.Add("vertices 2\nedge 0 1 -Inf\n")
	f.Add("vertices 2\nedge 0 1 -0.5\n")
	f.Add("vertices 2\nedge 0 1 0\n")
	f.Add("vertices 3\nedge 0 1 1\nedge 1 0 2\n")
	f.Add("vertices 2147483647\n")
	f.Add("vertices 9223372036854775807\n")
	f.Add("vertices 2\nedge 0 1 1e400\n")
	f.Add("vertices 2\nedge 00 01 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		if declaresHugeGraph(input) {
			t.Skip("vertex count above the fuzz materialization cap")
		}
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write of accepted graph failed: %v", err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\noriginal input: %q", err, input)
		}
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				g.NumVertices(), g.NumEdges(), h.NumVertices(), h.NumEdges())
		}
		for i := 0; i < g.NumEdges(); i++ {
			if g.Edge(i) != h.Edge(i) {
				t.Fatalf("round trip changed edge %d", i)
			}
		}
	})
}
