package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead asserts the parser's robustness contract: arbitrary input never
// panics, and anything it accepts survives a Write/Read round trip
// unchanged.
func FuzzRead(f *testing.F) {
	f.Add("vertices 3\nedge 0 1 1.5\nedge 1 2 2\n")
	f.Add("vertices 2\nlabel 0 hello\nedge 0 1 0.25\n")
	f.Add("# comment only\n")
	f.Add("vertices 0\n")
	f.Add("vertices 1\nedge 0 0 1\n")
	f.Add("vertices -3\n")
	f.Add("edge 1 2 3\nvertices 4\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write of accepted graph failed: %v", err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\noriginal input: %q", err, input)
		}
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				g.NumVertices(), g.NumEdges(), h.NumVertices(), h.NumEdges())
		}
		for i := 0; i < g.NumEdges(); i++ {
			if g.Edge(i) != h.Edge(i) {
				t.Fatalf("round trip changed edge %d", i)
			}
		}
	})
}
