package graph

import (
	"fmt"
	"math"

	"linkclust/internal/rng"
)

// Generators for the graph families the paper analyzes: the appendix studies
// k-regular and complete graphs; random families (Erdős–Rényi, Chung–Lu
// power law) provide workloads with tunable density for benchmarks, and
// small deterministic families (path, star, cycle, grid, disjoint edges)
// exercise boundary behaviour in tests.

// Complete returns the complete graph K_n with unit weights.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v, 1)
		}
	}
	return b.Build(nil)
}

// Circulant returns a k-regular circulant graph on n vertices (each vertex
// is joined to its k/2 nearest successors and predecessors on a ring). It
// requires k even, 0 < k < n, and unit weights are used. Circulant graphs
// are the canonical k-regular family from the paper's appendix analysis.
func Circulant(n, k int) (*Graph, error) {
	if k <= 0 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("graph: circulant requires even k in (0,%d), got %d", n, k)
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for d := 1; d <= k/2; d++ {
			b.MustAddEdge(v, (v+d)%n, 1)
		}
	}
	return b.Build(nil), nil
}

// Path returns the path graph 0-1-...-(n-1) with unit weights.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.MustAddEdge(v, v+1, 1)
	}
	return b.Build(nil)
}

// Cycle returns the cycle graph on n >= 3 vertices with unit weights.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle requires n >= 3")
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(v, (v+1)%n, 1)
	}
	return b.Build(nil)
}

// Star returns the star graph with center 0 and n-1 leaves, unit weights.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, v, 1)
	}
	return b.Build(nil)
}

// DisjointEdges returns a perfect matching on 2m vertices: m singular edges
// with no incidences. This is the paper's example of a graph with
// K1 = K2 = 0 but |E| = |V|/2.
func DisjointEdges(m int) *Graph {
	b := NewBuilder(2 * m)
	for i := 0; i < m; i++ {
		b.MustAddEdge(2*i, 2*i+1, 1)
	}
	return b.Build(nil)
}

// Grid returns the rows×cols grid graph with unit weights.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.MustAddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				b.MustAddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return b.Build(nil)
}

// ErdosRenyi returns a G(n, p) random graph with weights drawn uniformly
// from (0, 1].
func ErdosRenyi(n int, p float64, src *rng.Source) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Float64() < p {
				b.MustAddEdge(u, v, 1-src.Float64())
			}
		}
	}
	return b.Build(nil)
}

// ChungLu returns a random graph whose expected degree sequence follows a
// power law with the given exponent (> 1) and average degree roughly
// avgDeg. Edge (u,v) is included with probability min(1, w_u*w_v/S) where
// w_i ∝ (i+1)^(-1/(exponent-1)); weights are uniform in (0, 1]. The
// construction samples Θ(n·avgDeg) candidate pairs rather than all n², so
// it scales to large sparse graphs.
func ChungLu(n int, exponent, avgDeg float64, src *rng.Source) *Graph {
	if n < 2 {
		return NewBuilder(n).Build(nil)
	}
	w := make([]float64, n)
	var sum float64
	beta := 1 / (exponent - 1)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -beta)
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	// cumulative distribution proportional to w for endpoint sampling.
	cdf := make([]float64, n)
	total := 0.0
	for i, wi := range w {
		total += wi
		cdf[i] = total
	}
	sample := func() int {
		u := src.Float64() * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	b := NewBuilder(n)
	// Expected number of edges is total/2 * avg acceptance; sampling
	// total/2 pairs with the w-proportional endpoint distribution gives
	// the Chung–Lu measure.
	trials := int(total / 2)
	for t := 0; t < trials; t++ {
		u, v := sample(), sample()
		if u == v {
			continue
		}
		// AddEdge overwrites duplicates, which matches the "ignore
		// multi-edges" convention of the Chung–Lu model.
		b.MustAddEdge(u, v, 1-src.Float64())
	}
	return b.Build(nil)
}

// PaperExample returns a graph realizing the statistics quoted for the
// Fig. 1 example in Section IV-C: K1 = 7 < K2 = 16 < K3 = 28 (hence
// |E| = 8). The complete bipartite graph K_{2,4} is the unique 6-vertex
// degree profile meeting them: hubs a, b of degree 4 and leaves c..f of
// degree 2.
func PaperExample() *Graph {
	b := NewLabeledBuilder([]string{"a", "b", "c", "d", "e", "f"})
	for leaf := 2; leaf <= 5; leaf++ {
		b.MustAddEdge(0, leaf, 1)
		b.MustAddEdge(1, leaf, 1)
	}
	return b.Build(nil)
}
