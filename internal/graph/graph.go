// Package graph provides the weighted undirected graph substrate used by the
// link-clustering algorithms: a compact adjacency representation with stable
// edge identifiers, deterministic generators for the graph families analyzed
// in the paper, structural statistics (density and the K1/K2/K3 quantities of
// Theorem 2), and a simple text serialization.
//
// Vertices are dense integers 0..NumVertices()-1, optionally labeled. Edges
// are undirected, carry a positive float64 weight, and are identified by a
// dense index 0..NumEdges()-1; the endpoint pair of an edge is canonicalized
// as U < V. Self-loops and parallel edges are rejected at construction time.
//
// Internally vertex and edge ids are stored as int32: every workload in this
// repository (and the paper's largest graph) fits comfortably below 2^31,
// and the halved footprint matters for the memory experiments of Fig. 4(3).
package graph

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Half is one directed half of an undirected edge as seen from a vertex's
// adjacency list: the opposite endpoint, the weight, and the edge id.
type Half struct {
	To     int32
	Weight float64
	Edge   int32
}

// Edge is an undirected weighted edge with canonical endpoint order U < V.
type Edge struct {
	U, V   int32
	Weight float64
}

// Graph is an immutable weighted undirected graph. Construct one with a
// Builder or a generator.
type Graph struct {
	adj    [][]Half // adj[v] sorted by To
	edges  []Edge
	labels []string // nil when vertices are unlabeled
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v, sorted by neighbor id. The
// returned slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []Half { return g.adj[v] }

// Edge returns the e-th edge.
func (g *Graph) Edge(e int) Edge { return g.edges[e] }

// Edges returns the full edge list in id order. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgeBetween returns the id of the edge joining u and v, if any.
func (g *Graph) EdgeBetween(u, v int) (int32, bool) {
	au := g.adj[u]
	if len(g.adj[v]) < len(au) {
		u, v = v, u
		au = g.adj[u]
	}
	t := int32(v)
	i := sort.Search(len(au), func(i int) bool { return au[i].To >= t })
	if i < len(au) && au[i].To == t {
		return au[i].Edge, true
	}
	return 0, false
}

// Weight returns the weight of the edge joining u and v, or 0 when the
// vertices are not adjacent.
func (g *Graph) Weight(u, v int) float64 {
	if e, ok := g.EdgeBetween(u, v); ok {
		return g.edges[e].Weight
	}
	return 0
}

// Label returns the label of vertex v, or its decimal id when the graph is
// unlabeled.
func (g *Graph) Label(v int) string {
	if g.labels == nil {
		return fmt.Sprintf("%d", v)
	}
	return g.labels[v]
}

// Labeled reports whether the graph carries vertex labels.
func (g *Graph) Labeled() bool { return g.labels != nil }

// Density returns 2|E| / (|V|(|V|-1)), the paper's density definition, or 0
// for graphs with fewer than two vertices.
func (g *Graph) Density() float64 {
	n := len(g.adj)
	if n < 2 {
		return 0
	}
	return 2 * float64(len(g.edges)) / (float64(n) * float64(n-1))
}

// Builder accumulates edges and produces an immutable Graph. The zero value
// is not usable; call NewBuilder.
type Builder struct {
	n      int
	labels []string
	seen   map[[2]int32]int // canonical pair -> index into us/vs/ws
	us, vs []int32
	ws     []float64
}

// NewBuilder returns a Builder for a graph with n vertices and no labels.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, seen: make(map[[2]int32]int)}
}

// NewLabeledBuilder returns a Builder whose vertices carry the given labels.
func NewLabeledBuilder(labels []string) *Builder {
	b := NewBuilder(len(labels))
	b.labels = append([]string(nil), labels...)
	return b
}

// NumVertices returns the vertex count the builder was created with.
func (b *Builder) NumVertices() int { return b.n }

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.us) }

// AddEdge inserts the undirected edge {u, v} with the given weight. Adding
// the same pair again overwrites the weight (last write wins). It returns an
// error wrapping ErrVertexRange, ErrSelfLoop, or ErrBadWeight for
// out-of-range endpoints, self-loops, or weights that are not positive
// finite numbers (zero, negative, NaN, ±Inf).
func (b *Builder) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) outside [0,%d): %w", u, v, b.n, ErrVertexRange)
	}
	if u == v {
		return fmt.Errorf("graph: edge (%d,%d): %w", u, v, ErrSelfLoop)
	}
	if !(w > 0) || math.IsInf(w, 1) {
		return fmt.Errorf("graph: edge (%d,%d) weight %v (must be positive and finite): %w", u, v, w, ErrBadWeight)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int32{int32(u), int32(v)}
	if i, ok := b.seen[key]; ok {
		b.ws[i] = w
		return nil
	}
	b.seen[key] = len(b.us)
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	b.ws = append(b.ws, w)
	return nil
}

// HasEdge reports whether the pair {u, v} has already been added.
// Out-of-range endpoints simply report false.
func (b *Builder) HasEdge(u, v int) bool {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return false
	}
	if u > v {
		u, v = v, u
	}
	_, ok := b.seen[[2]int32{int32(u), int32(v)}]
	return ok
}

// MustAddEdge is AddEdge that panics on error; intended for tests and
// generators with statically valid inputs.
func (b *Builder) MustAddEdge(u, v int, w float64) {
	if err := b.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// Build finalizes the graph. Edge ids are assigned in insertion order; pass
// a non-nil perm (a permutation of 0..NumEdges()-1) to assign edge ids in a
// custom order instead, as the sweeping algorithm's random edge enumeration
// requires. Build panics if perm has the wrong length or is not a
// permutation.
func (b *Builder) Build(perm []int) *Graph {
	m := len(b.us)
	order := perm
	if order == nil {
		order = make([]int, m)
		for i := range order {
			order[i] = i
		}
	} else {
		if len(order) != m {
			panic(fmt.Sprintf("graph: perm length %d != edge count %d", len(order), m))
		}
		seen := make([]bool, m)
		for _, p := range order {
			if p < 0 || p >= m || seen[p] {
				panic("graph: perm is not a permutation of edge indices")
			}
			seen[p] = true
		}
	}

	g := &Graph{
		adj:    make([][]Half, b.n),
		edges:  make([]Edge, m),
		labels: b.labels,
	}
	deg := make([]int32, b.n)
	for i := range b.us {
		deg[b.us[i]]++
		deg[b.vs[i]]++
	}
	for v := range g.adj {
		g.adj[v] = make([]Half, 0, deg[v])
	}
	// order[e] is the insertion index of the edge that receives id e.
	for e, src := range order {
		u, v, w := b.us[src], b.vs[src], b.ws[src]
		g.edges[e] = Edge{U: u, V: v, Weight: w}
		g.adj[u] = append(g.adj[u], Half{To: v, Weight: w, Edge: int32(e)})
		g.adj[v] = append(g.adj[v], Half{To: u, Weight: w, Edge: int32(e)})
	}
	for v := range g.adj {
		// slices.SortFunc (pdqsort, no interface boxing) — this runs once
		// per vertex on every graph construction.
		slices.SortFunc(g.adj[v], func(x, y Half) int { return int(x.To) - int(y.To) })
	}
	return g
}
