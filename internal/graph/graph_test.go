package graph

import (
	"math"
	"testing"
	"testing/quick"

	"linkclust/internal/rng"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1, 2.5)
	b.MustAddEdge(2, 1, 1.0) // canonicalized to (1,2)
	g := b.Build(nil)

	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if e := g.Edge(1); e.U != 1 || e.V != 2 {
		t.Fatalf("edge 1 = %+v, want canonical (1,2)", e)
	}
	if w := g.Weight(1, 0); w != 2.5 {
		t.Fatalf("Weight(1,0) = %v, want 2.5", w)
	}
	if w := g.Weight(0, 3); w != 0 {
		t.Fatalf("Weight(0,3) = %v, want 0", w)
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(1), g.Degree(3))
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	for _, tc := range []struct {
		u, v int
		w    float64
	}{
		{0, 0, 1},           // self loop
		{-1, 1, 1},          // out of range
		{0, 3, 1},           // out of range
		{0, 1, 0},           // zero weight
		{0, 1, -2},          // negative weight
		{0, 1, math.NaN()},  // NaN weight
		{0, 1, math.Inf(1)}, // infinite weight
	} {
		if err := b.AddEdge(tc.u, tc.v, tc.w); err == nil {
			t.Errorf("AddEdge(%d,%d,%v) succeeded, want error", tc.u, tc.v, tc.w)
		}
	}
	if b.NumEdges() != 0 {
		t.Fatalf("bad edges were recorded: %d", b.NumEdges())
	}
}

func TestBuilderDuplicateOverwrites(t *testing.T) {
	b := NewBuilder(2)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 0, 7)
	g := b.Build(nil)
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge not merged: %d edges", g.NumEdges())
	}
	if w := g.Weight(0, 1); w != 7 {
		t.Fatalf("weight = %v, want last-write 7", w)
	}
}

func TestBuildWithPermutation(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1, 1) // insertion 0
	b.MustAddEdge(1, 2, 2) // insertion 1
	b.MustAddEdge(2, 3, 3) // insertion 2
	// Edge id e receives insertion perm[e].
	g := b.Build([]int{2, 0, 1})
	if e := g.Edge(0); e.U != 2 || e.V != 3 {
		t.Fatalf("edge 0 = %+v, want (2,3)", e)
	}
	if e := g.Edge(1); e.U != 0 || e.V != 1 {
		t.Fatalf("edge 1 = %+v, want (0,1)", e)
	}
	// Adjacency must agree with edge ids.
	id, ok := g.EdgeBetween(3, 2)
	if !ok || id != 0 {
		t.Fatalf("EdgeBetween(3,2) = %d,%v want 0,true", id, ok)
	}
}

func TestBuildPanicsOnBadPerm(t *testing.T) {
	for _, perm := range [][]int{{0}, {0, 0, 1}, {0, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Build(%v) did not panic", perm)
				}
			}()
			b := NewBuilder(4)
			b.MustAddEdge(0, 1, 1)
			b.MustAddEdge(1, 2, 1)
			b.MustAddEdge(2, 3, 1)
			b.Build(perm)
		}()
	}
}

func TestNeighborsSorted(t *testing.T) {
	src := rng.New(5)
	g := ErdosRenyi(60, 0.2, src)
	for v := 0; v < g.NumVertices(); v++ {
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i-1].To >= nb[i].To {
				t.Fatalf("adjacency of %d not strictly sorted", v)
			}
		}
	}
}

func TestAdjacencyEdgeIDsConsistent(t *testing.T) {
	g := ErdosRenyi(40, 0.3, rng.New(9))
	for v := 0; v < g.NumVertices(); v++ {
		for _, h := range g.Neighbors(v) {
			e := g.Edge(int(h.Edge))
			if !((int(e.U) == v && e.V == h.To) || (int(e.V) == v && e.U == h.To)) {
				t.Fatalf("half %+v at vertex %d disagrees with edge %+v", h, v, e)
			}
			if e.Weight != h.Weight {
				t.Fatalf("weight mismatch at vertex %d: %v vs %v", v, h.Weight, e.Weight)
			}
		}
	}
}

func TestLabels(t *testing.T) {
	b := NewLabeledBuilder([]string{"x", "y"})
	b.MustAddEdge(0, 1, 1)
	g := b.Build(nil)
	if !g.Labeled() || g.Label(0) != "x" || g.Label(1) != "y" {
		t.Fatalf("labels lost: %q %q", g.Label(0), g.Label(1))
	}
	u := NewBuilder(2).Build(nil)
	if u.Labeled() || u.Label(1) != "1" {
		t.Fatalf("unlabeled fallback wrong: %q", u.Label(1))
	}
}

func TestDensity(t *testing.T) {
	if d := Complete(5).Density(); d != 1 {
		t.Fatalf("K5 density = %v, want 1", d)
	}
	if d := Path(5).Density(); d != 2*4.0/(5*4) {
		t.Fatalf("P5 density = %v", d)
	}
	if d := NewBuilder(1).Build(nil).Density(); d != 0 {
		t.Fatalf("singleton density = %v, want 0", d)
	}
	if d := NewBuilder(0).Build(nil).Density(); d != 0 {
		t.Fatalf("empty density = %v, want 0", d)
	}
}

func TestPaperExampleStats(t *testing.T) {
	g := PaperExample()
	s := ComputeStats(g)
	if s.Edges != 8 {
		t.Fatalf("|E| = %d, want 8", s.Edges)
	}
	if s.K1 != 7 {
		t.Errorf("K1 = %d, want 7", s.K1)
	}
	if s.K2 != 16 {
		t.Errorf("K2 = %d, want 16", s.K2)
	}
	if s.K3 != 28 {
		t.Errorf("K3 = %d, want 28", s.K3)
	}
}

func TestStatsOrdering(t *testing.T) {
	// K1 <= K2 <= K3 holds for any graph (Section IV-C).
	for seed := uint64(0); seed < 8; seed++ {
		g := ErdosRenyi(30, 0.15, rng.New(seed))
		s := ComputeStats(g)
		if s.K1 > s.K2 || s.K2 > s.K3 {
			t.Fatalf("seed %d: K1=%d K2=%d K3=%d violates ordering", seed, s.K1, s.K2, s.K3)
		}
	}
}

func TestDisjointEdgesStats(t *testing.T) {
	// Paper: disjoint singular edges have K1 = K2 = 0, |E| = |V|/2.
	g := DisjointEdges(6)
	s := ComputeStats(g)
	if s.K1 != 0 || s.K2 != 0 {
		t.Fatalf("K1=%d K2=%d, want 0,0", s.K1, s.K2)
	}
	if s.Edges != 6 || s.Vertices != 12 {
		t.Fatalf("|E|=%d |V|=%d", s.Edges, s.Vertices)
	}
}

func TestCompleteStats(t *testing.T) {
	// K_n: K2 = n*C(n-1,2); K1 = C(n,2) for n >= 3.
	n := 7
	s := ComputeStats(Complete(n))
	wantK2 := int64(n) * int64(n-1) * int64(n-2) / 2
	if s.K2 != wantK2 {
		t.Fatalf("K2 = %d, want %d", s.K2, wantK2)
	}
	wantK1 := int64(n) * int64(n-1) / 2
	if s.K1 != wantK1 {
		t.Fatalf("K1 = %d, want %d", s.K1, wantK1)
	}
}

func TestCirculant(t *testing.T) {
	g, err := Circulant(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
	if _, err := Circulant(10, 3); err == nil {
		t.Fatal("odd k accepted")
	}
	if _, err := Circulant(4, 4); err == nil {
		t.Fatal("k >= n accepted")
	}
}

func TestStarAndCycleAndGrid(t *testing.T) {
	st := Star(5)
	if st.Degree(0) != 4 || st.Degree(1) != 1 {
		t.Fatalf("star degrees wrong")
	}
	cy := Cycle(5)
	if cy.NumEdges() != 5 {
		t.Fatalf("C5 has %d edges", cy.NumEdges())
	}
	gr := Grid(3, 4)
	if gr.NumEdges() != 3*3+2*4 {
		t.Fatalf("3x4 grid has %d edges, want 17", gr.NumEdges())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 0.1, rng.New(3))
	b := ErdosRenyi(50, 0.1, rng.New(3))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestChungLuShape(t *testing.T) {
	g := ChungLu(500, 2.5, 8, rng.New(4))
	s := ComputeStats(g)
	if s.Edges == 0 {
		t.Fatal("Chung-Lu generated no edges")
	}
	if s.AvgDegree < 2 || s.AvgDegree > 16 {
		t.Fatalf("average degree %v far from target 8", s.AvgDegree)
	}
	// Heavy tail: max degree should well exceed the average.
	if float64(s.MaxDegree) < 3*s.AvgDegree {
		t.Fatalf("max degree %d not heavy-tailed vs avg %v", s.MaxDegree, s.AvgDegree)
	}
}

func TestQuickBuilderInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 2
		trials := int(mRaw)
		src := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < trials; i++ {
			u, v := src.Intn(n), src.Intn(n)
			if u == v {
				continue
			}
			b.MustAddEdge(u, v, 1+src.Float64())
		}
		g := b.Build(nil)
		// Handshake: sum of degrees = 2|E|.
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		if sum != 2*g.NumEdges() {
			return false
		}
		// Every edge canonical and discoverable from both endpoints.
		for i, e := range g.Edges() {
			if e.U >= e.V {
				return false
			}
			id1, ok1 := g.EdgeBetween(int(e.U), int(e.V))
			id2, ok2 := g.EdgeBetween(int(e.V), int(e.U))
			if !ok1 || !ok2 || id1 != int32(i) || id2 != int32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
