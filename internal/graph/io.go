package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text serialization. The format is line oriented:
//
//	# comment
//	vertices <n>
//	label <v> <text>          (optional, any number)
//	edge <u> <v> <weight>
//
// Edge ids are assigned in file order, so a round trip preserves them.

// Write serializes g to w in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "vertices %d\n", g.NumVertices())
	if g.Labeled() {
		for v := 0; v < g.NumVertices(); v++ {
			fmt.Fprintf(bw, "label %d %s\n", v, g.Label(v))
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge %d %d %s\n", e.U, e.V, strconv.FormatFloat(e.Weight, 'g', -1, 64))
	}
	return bw.Flush()
}

// maxReadVertices caps the vertex count Read accepts: vertex and edge ids
// are int32 internally, so counts past the int32 id space are structurally
// unrepresentable and would silently truncate. (Counts below the cap can
// still be large allocations — Build reserves O(n) adjacency headers — so
// callers reading untrusted input from quota-bound contexts should impose
// their own size policy before Read.)
const maxReadVertices = 1 << 31

// Read parses a graph in the text format produced by Write. Input is treated
// as untrusted: malformed directives, vertex ids outside the declared range
// or the int32 id space, self-loops, duplicate endpoint pairs, and weights
// that are not positive finite numbers (zero, negative, NaN, ±Inf) are all
// rejected with a *ParseError carrying the 1-based line number and wrapping
// the matching sentinel class (ErrVertexRange, ErrSelfLoop,
// ErrDuplicateEdge, ErrBadWeight).
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	var labels map[int]string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "vertices":
			if b != nil {
				return nil, parseErrf(lineNo, "duplicate vertices directive")
			}
			if len(fields) != 2 {
				return nil, parseErrf(lineNo, "want 'vertices <n>'")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, parseErrf(lineNo, "bad vertex count %q", fields[1])
			}
			if n >= maxReadVertices {
				return nil, parseErrf(lineNo, "vertex count %d exceeds the int32 id space: %w", n, ErrVertexRange)
			}
			b = NewBuilder(n)
			labels = make(map[int]string)
		case "label":
			if b == nil {
				return nil, parseErrf(lineNo, "label before vertices")
			}
			if len(fields) < 3 {
				return nil, parseErrf(lineNo, "want 'label <v> <text>'")
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 || v >= b.NumVertices() {
				return nil, parseErrf(lineNo, "label vertex %q outside [0,%d): %w", fields[1], b.NumVertices(), ErrVertexRange)
			}
			labels[v] = strings.Join(fields[2:], " ")
		case "edge":
			if b == nil {
				return nil, parseErrf(lineNo, "edge before vertices")
			}
			if len(fields) != 4 {
				return nil, parseErrf(lineNo, "want 'edge <u> <v> <w>'")
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, parseErrf(lineNo, "malformed edge %q", line)
			}
			if b.HasEdge(u, v) {
				return nil, parseErrf(lineNo, "edge (%d,%d) repeats an earlier pair: %w", u, v, ErrDuplicateEdge)
			}
			if err := b.AddEdge(u, v, w); err != nil {
				return nil, &ParseError{Line: lineNo, Err: err}
			}
		default:
			return nil, parseErrf(lineNo, "unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: input has no vertices directive")
	}
	if len(labels) > 0 {
		ls := make([]string, b.NumVertices())
		for v := range ls {
			if l, ok := labels[v]; ok {
				ls[v] = l
			} else {
				ls[v] = strconv.Itoa(v)
			}
		}
		b.labels = ls
	}
	return b.Build(nil), nil
}
