package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text serialization. The format is line oriented:
//
//	# comment
//	vertices <n>
//	label <v> <text>          (optional, any number)
//	edge <u> <v> <weight>
//
// Edge ids are assigned in file order, so a round trip preserves them.

// Write serializes g to w in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "vertices %d\n", g.NumVertices())
	if g.Labeled() {
		for v := 0; v < g.NumVertices(); v++ {
			fmt.Fprintf(bw, "label %d %s\n", v, g.Label(v))
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge %d %d %s\n", e.U, e.V, strconv.FormatFloat(e.Weight, 'g', -1, 64))
	}
	return bw.Flush()
}

// Read parses a graph in the text format produced by Write.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	var labels map[int]string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "vertices":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate vertices directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want 'vertices <n>'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNo, fields[1])
			}
			b = NewBuilder(n)
			labels = make(map[int]string)
		case "label":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: label before vertices", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: want 'label <v> <text>'", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 || v >= b.NumVertices() {
				return nil, fmt.Errorf("graph: line %d: bad vertex %q", lineNo, fields[1])
			}
			labels[v] = strings.Join(fields[2:], " ")
		case "edge":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before vertices", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'edge <u> <v> <w>'", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed edge %q", lineNo, line)
			}
			if err := b.AddEdge(u, v, w); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: input has no vertices directive")
	}
	if len(labels) > 0 {
		ls := make([]string, b.NumVertices())
		for v := range ls {
			if l, ok := labels[v]; ok {
				ls[v] = l
			} else {
				ls[v] = strconv.Itoa(v)
			}
		}
		b.labels = ls
	}
	return b.Build(nil), nil
}
