package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"linkclust/internal/rng"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := ErdosRenyi(30, 0.2, rng.New(1))
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			h.NumVertices(), h.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(i) != h.Edge(i) {
			t.Fatalf("edge %d: %+v vs %+v", i, g.Edge(i), h.Edge(i))
		}
	}
}

func TestRoundTripLabels(t *testing.T) {
	b := NewLabeledBuilder([]string{"alpha", "beta gamma", "delta"})
	b.MustAddEdge(0, 1, 0.5)
	b.MustAddEdge(1, 2, 1.25)
	g := b.Build(nil)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Labeled() {
		t.Fatal("labels lost in round trip")
	}
	for v := 0; v < 3; v++ {
		if g.Label(v) != h.Label(v) {
			t.Fatalf("label %d: %q vs %q", v, g.Label(v), h.Label(v))
		}
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
vertices 3

edge 0 1 1.5
# another
edge 1 2 2
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("%d edges, want 2", g.NumEdges())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                                    // no vertices
		"edge 0 1 1",                          // edge before vertices
		"vertices x",                          // bad count
		"vertices -1",                         // negative count
		"vertices 2\nvertices 2",              // duplicate directive
		"vertices 2\nedge 0 1",                // short edge line
		"vertices 2\nedge 0 1 zero",           // bad weight
		"vertices 2\nedge 0 0 1",              // self-loop
		"vertices 2\nedge 0 5 1",              // out of range
		"vertices 2\nedge 0 1 -1",             // non-positive weight
		"vertices 2\nlabel 5 x\nedge 0 1 1",   // label out of range
		"vertices 2\nbogus 1 2\nedge 0 1 1.0", // unknown directive
		"label 0 x",                           // label before vertices
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestReadPartialLabelsFillDefaults(t *testing.T) {
	in := "vertices 3\nlabel 1 middle\nedge 0 1 1\nedge 1 2 1\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Label(0) != "0" || g.Label(1) != "middle" || g.Label(2) != "2" {
		t.Fatalf("labels = %q %q %q", g.Label(0), g.Label(1), g.Label(2))
	}
}

// TestReadTypedErrors pins the hostile-input contract: each rejection class
// surfaces as a *ParseError with the offending 1-based line number, wrapping
// the matching sentinel.
func TestReadTypedErrors(t *testing.T) {
	cases := []struct {
		name     string
		in       string
		line     int
		sentinel error
	}{
		{"nan weight", "vertices 2\nedge 0 1 NaN\n", 2, ErrBadWeight},
		{"negative weight", "vertices 2\nedge 0 1 -3\n", 2, ErrBadWeight},
		{"zero weight", "vertices 2\n# pad\nedge 0 1 0\n", 3, ErrBadWeight},
		{"infinite weight", "vertices 2\nedge 0 1 +Inf\n", 2, ErrBadWeight},
		{"self loop", "vertices 2\nedge 1 1 1\n", 2, ErrSelfLoop},
		{"duplicate pair", "vertices 3\nedge 0 1 1\nedge 1 0 2\n", 3, ErrDuplicateEdge},
		{"endpoint out of range", "vertices 2\nedge 0 9 1\n", 2, ErrVertexRange},
		{"label out of range", "vertices 2\nlabel 7 x\n", 2, ErrVertexRange},
		{"count overflows int32 ids", "vertices 2147483648\n", 1, ErrVertexRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Read(%q) succeeded, want error", tc.in)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v (%T), want *ParseError", err, err)
			}
			if pe.Line != tc.line {
				t.Errorf("line = %d, want %d (err: %v)", pe.Line, tc.line, err)
			}
			if !errors.Is(err, tc.sentinel) {
				t.Errorf("err = %v, want errors.Is(err, %v)", err, tc.sentinel)
			}
		})
	}
}

// TestBuilderKeepsLastWriteWins documents that duplicate rejection is a
// Read-level policy: the programmatic Builder still overwrites.
func TestBuilderKeepsLastWriteWins(t *testing.T) {
	b := NewBuilder(2)
	b.MustAddEdge(0, 1, 1)
	if !b.HasEdge(1, 0) {
		t.Fatal("HasEdge(1,0) = false after AddEdge(0,1)")
	}
	if b.HasEdge(0, 0) || b.HasEdge(-1, 5) {
		t.Fatal("HasEdge reported a pair that was never added")
	}
	b.MustAddEdge(1, 0, 7)
	g := b.Build(nil)
	if g.NumEdges() != 1 || g.Edge(0).Weight != 7 {
		t.Fatalf("edges = %d weight = %v, want 1 edge of weight 7", g.NumEdges(), g.Edge(0).Weight)
	}
}
