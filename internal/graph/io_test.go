package graph

import (
	"bytes"
	"strings"
	"testing"

	"linkclust/internal/rng"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := ErdosRenyi(30, 0.2, rng.New(1))
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			h.NumVertices(), h.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(i) != h.Edge(i) {
			t.Fatalf("edge %d: %+v vs %+v", i, g.Edge(i), h.Edge(i))
		}
	}
}

func TestRoundTripLabels(t *testing.T) {
	b := NewLabeledBuilder([]string{"alpha", "beta gamma", "delta"})
	b.MustAddEdge(0, 1, 0.5)
	b.MustAddEdge(1, 2, 1.25)
	g := b.Build(nil)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Labeled() {
		t.Fatal("labels lost in round trip")
	}
	for v := 0; v < 3; v++ {
		if g.Label(v) != h.Label(v) {
			t.Fatalf("label %d: %q vs %q", v, g.Label(v), h.Label(v))
		}
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
vertices 3

edge 0 1 1.5
# another
edge 1 2 2
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("%d edges, want 2", g.NumEdges())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                                    // no vertices
		"edge 0 1 1",                          // edge before vertices
		"vertices x",                          // bad count
		"vertices -1",                         // negative count
		"vertices 2\nvertices 2",              // duplicate directive
		"vertices 2\nedge 0 1",                // short edge line
		"vertices 2\nedge 0 1 zero",           // bad weight
		"vertices 2\nedge 0 0 1",              // self-loop
		"vertices 2\nedge 0 5 1",              // out of range
		"vertices 2\nedge 0 1 -1",             // non-positive weight
		"vertices 2\nlabel 5 x\nedge 0 1 1",   // label out of range
		"vertices 2\nbogus 1 2\nedge 0 1 1.0", // unknown directive
		"label 0 x",                           // label before vertices
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestReadPartialLabelsFillDefaults(t *testing.T) {
	in := "vertices 3\nlabel 1 middle\nedge 0 1 1\nedge 1 2 1\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Label(0) != "0" || g.Label(1) != "middle" || g.Label(2) != "2" {
		t.Fatalf("labels = %q %q %q", g.Label(0), g.Label(1), g.Label(2))
	}
}
