package graph

import "slices"

// DegreeOrder returns a vertex permutation that relabels vertices by
// descending degree (incident-edge count), ties broken by ascending original
// id: perm[old] = new. Hot (high-degree) rows land at the low end of the id
// space, so the dense per-row scratch of the wedge kernel touches a compact,
// cache-resident prefix on the rows that dominate the K2 wedge work, and the
// packed adjacency of the sweep engine clusters hub lines together.
//
// The order is a pure function of the degree sequence — no randomness, no
// worker dependence — so a relabeled run is as deterministic as the original.
func DegreeOrder(g *Graph) []int32 {
	n := g.NumVertices()
	byDeg := make([]int32, n)
	for v := range byDeg {
		byDeg[v] = int32(v)
	}
	slices.SortFunc(byDeg, func(a, b int32) int {
		if d := g.Degree(int(b)) - g.Degree(int(a)); d != 0 {
			return d
		}
		return int(a) - int(b)
	})
	perm := make([]int32, n)
	for newID, old := range byDeg {
		perm[old] = int32(newID)
	}
	return perm
}

// InversePermutation returns inv with inv[perm[v]] = v. It panics if perm is
// not a permutation of 0..len(perm)-1.
func InversePermutation(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for i := range inv {
		inv[i] = -1
	}
	for old, newID := range perm {
		if newID < 0 || int(newID) >= len(perm) || inv[newID] != -1 {
			panic("graph: perm is not a permutation of vertex ids")
		}
		inv[newID] = int32(old)
	}
	return inv
}

// Relabel returns a copy of g with vertex v renamed to perm[v]. Edge ids are
// preserved exactly — edge e of the result joins the renamed endpoints of
// edge e of g with the same weight — so any structure indexed by edge id
// (chain array C, merge streams, dendrograms) carries over between the two
// graphs unchanged. Labels follow their vertices.
//
// Relabel panics if perm is not a permutation of 0..NumVertices()-1.
func Relabel(g *Graph, perm []int32) *Graph {
	n := g.NumVertices()
	if len(perm) != n {
		panic("graph: perm length does not match vertex count")
	}
	InversePermutation(perm) // validation only

	out := &Graph{
		adj:   make([][]Half, n),
		edges: make([]Edge, g.NumEdges()),
	}
	for v := 0; v < n; v++ {
		old := g.adj[v]
		lst := make([]Half, len(old))
		for i, h := range old {
			lst[i] = Half{To: perm[h.To], Weight: h.Weight, Edge: h.Edge}
		}
		slices.SortFunc(lst, func(x, y Half) int { return int(x.To) - int(y.To) })
		out.adj[perm[v]] = lst
	}
	for e, ed := range g.edges {
		u, v := perm[ed.U], perm[ed.V]
		if u > v {
			u, v = v, u
		}
		out.edges[e] = Edge{U: u, V: v, Weight: ed.Weight}
	}
	if g.labels != nil {
		out.labels = make([]string, n)
		for v, l := range g.labels {
			out.labels[perm[v]] = l
		}
	}
	return out
}
