package graph

import (
	"fmt"
	"testing"

	"linkclust/internal/rng"
)

// relabelTestGraphs is the family set for the relabeling properties: the
// paper's example, structured graphs, random graphs at two densities, and
// degenerate shapes.
func relabelTestGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	out := map[string]*Graph{
		"paper-example": PaperExample(),
		"complete-12":   Complete(12),
		"disjoint":      DisjointEdges(5),
		"empty":         NewBuilder(0).Build(nil),
		"edgeless":      NewBuilder(6).Build(nil),
	}
	if g, err := Circulant(40, 4); err == nil {
		out["circulant-40"] = g
	} else {
		t.Fatalf("circulant: %v", err)
	}
	for _, seed := range []uint64{2, 9} {
		out[fmt.Sprintf("erdos-renyi-%d", seed)] = ErdosRenyi(90, 0.08, rng.New(seed))
	}
	return out
}

// TestDegreeOrderIsSortedPermutation checks the two defining properties of
// DegreeOrder: it is a permutation of the vertex ids, and walking the new ids
// in order visits vertices by descending degree with ties broken by ascending
// original id.
func TestDegreeOrderIsSortedPermutation(t *testing.T) {
	for name, g := range relabelTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			perm := DegreeOrder(g)
			if len(perm) != g.NumVertices() {
				t.Fatalf("perm length %d, want %d", len(perm), g.NumVertices())
			}
			inv := InversePermutation(perm) // panics if not a permutation
			for newID := 1; newID < len(inv); newID++ {
				prev, cur := int(inv[newID-1]), int(inv[newID])
				dp, dc := g.Degree(prev), g.Degree(cur)
				if dp < dc || (dp == dc && prev >= cur) {
					t.Fatalf("order violated at new id %d: vertex %d (deg %d) before vertex %d (deg %d)",
						newID, prev, dp, cur, dc)
				}
			}
		})
	}
}

// TestInversePermutationRejectsNonPermutations pins the validation: duplicate
// and out-of-range images must panic rather than produce a silent bad
// relabeling.
func TestInversePermutationRejectsNonPermutations(t *testing.T) {
	for name, perm := range map[string][]int32{
		"duplicate":    {0, 1, 1},
		"out-of-range": {0, 3, 1},
		"negative":     {0, -1, 2},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("InversePermutation accepted %v", perm)
				}
			}()
			InversePermutation(perm)
		})
	}
}

// requireSameGraph asserts two graphs are structurally identical: same
// adjacency (neighbor ids, weights, and edge ids, in order), same edge table,
// and same labels.
func requireSameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape (%d vertices, %d edges), want (%d, %d)",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	for v := 0; v < want.NumVertices(); v++ {
		gn, wn := got.Neighbors(v), want.Neighbors(v)
		if len(gn) != len(wn) {
			t.Fatalf("vertex %d: %d neighbors, want %d", v, len(gn), len(wn))
		}
		for i := range wn {
			if gn[i] != wn[i] {
				t.Fatalf("vertex %d neighbor %d: %+v, want %+v", v, i, gn[i], wn[i])
			}
		}
	}
	for e := 0; e < want.NumEdges(); e++ {
		if got.Edge(e) != want.Edge(e) {
			t.Fatalf("edge %d: %+v, want %+v", e, got.Edge(e), want.Edge(e))
		}
	}
	if got.Labeled() != want.Labeled() {
		t.Fatalf("labeled %v, want %v", got.Labeled(), want.Labeled())
	}
	for v := 0; v < want.NumVertices() && want.Labeled(); v++ {
		if got.Label(v) != want.Label(v) {
			t.Fatalf("vertex %d label %q, want %q", v, got.Label(v), want.Label(v))
		}
	}
}

// TestRelabelRoundTrip is the round-trip property: relabeling by the degree
// order and then by its inverse reproduces the original graph exactly —
// adjacency, edge table (ids included), and labels.
func TestRelabelRoundTrip(t *testing.T) {
	for name, g := range relabelTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			perm := DegreeOrder(g)
			back := Relabel(Relabel(g, perm), InversePermutation(perm))
			requireSameGraph(t, back, g)
		})
	}
}

// TestRelabelPreservesEdgeIDs pins the property the clustering pipeline
// depends on: edge e of the relabeled graph joins the renamed endpoints of
// edge e of the original with the same weight, so dendrograms (indexed by
// edge id) carry over between the graphs without translation.
func TestRelabelPreservesEdgeIDs(t *testing.T) {
	for name, g := range relabelTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			perm := DegreeOrder(g)
			rg := Relabel(g, perm)
			for e := 0; e < g.NumEdges(); e++ {
				orig, rel := g.Edge(e), rg.Edge(e)
				u, v := perm[orig.U], perm[orig.V]
				if u > v {
					u, v = v, u
				}
				if rel.U != u || rel.V != v || rel.Weight != orig.Weight {
					t.Fatalf("edge %d: %+v, want (%d,%d,%v) from original %+v", e, rel, u, v, orig.Weight, orig)
				}
			}
		})
	}
}

// TestRelabelPermutesLabels checks that vertex labels follow their vertices
// through a relabeling.
func TestRelabelPermutesLabels(t *testing.T) {
	b := NewLabeledBuilder([]string{"a", "b", "c", "d"})
	for _, e := range [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build(nil)
	perm := DegreeOrder(g)
	rg := Relabel(g, perm)
	for v := 0; v < g.NumVertices(); v++ {
		if got := rg.Label(int(perm[v])); got != g.Label(v) {
			t.Fatalf("vertex %d renamed %d: label %q, want %q", v, perm[v], got, g.Label(v))
		}
	}
}
