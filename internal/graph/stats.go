package graph

// Stats collects the structural quantities used throughout the paper's
// complexity analysis (Section IV-C) and evaluation (Fig. 4(1)).
type Stats struct {
	Vertices int
	Edges    int
	Density  float64
	// K1 is the number of vertex pairs with at least one common neighbor
	// (= number of keys of map M in Algorithm 1).
	K1 int64
	// K2 is the number of pairs of incident edges: sum over vertices of
	// C(degree, 2).
	K2 int64
	// K3 is the number of pairs of distinct edges: C(|E|, 2).
	K3 int64
	// MaxDegree and AvgDegree summarize the degree distribution.
	MaxDegree int
	AvgDegree float64
}

// ComputeStats returns the structural statistics of g. Computing K1 requires
// enumerating neighbor pairs, which is Θ(K2) time and Θ(K1) space; the other
// fields are linear.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Density:  g.Density(),
	}
	var degSum int64
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(v)
		degSum += int64(d)
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		s.K2 += int64(d) * int64(d-1) / 2
	}
	if g.NumVertices() > 0 {
		s.AvgDegree = float64(degSum) / float64(g.NumVertices())
	}
	m := int64(g.NumEdges())
	s.K3 = m * (m - 1) / 2
	s.K1 = CountVertexPairsWithCommonNeighbor(g)
	return s
}

// CountVertexPairsWithCommonNeighbor returns K1: the number of unordered
// vertex pairs sharing at least one common neighbor. Pairs are counted once
// regardless of how many neighbors they share, and adjacency of the pair
// itself is irrelevant.
func CountVertexPairsWithCommonNeighbor(g *Graph) int64 {
	seen := make(map[uint64]struct{})
	for v := 0; v < g.NumVertices(); v++ {
		nb := g.Neighbors(v)
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				a, b := nb[i].To, nb[j].To
				seen[pairKey(a, b)] = struct{}{}
			}
		}
	}
	return int64(len(seen))
}

// pairKey packs a canonical vertex pair into one map key. Callers guarantee
// a != b; adjacency lists are sorted so a < b already holds for neighbor
// pairs, but we canonicalize defensively.
func pairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}
