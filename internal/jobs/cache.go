package jobs

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"linkclust"
	"linkclust/internal/core"
)

// cache is the daemon's content-addressed store: similarity pair lists
// keyed by the canonical graph hash alone (Phase I output depends only on
// the graph and is bitwise worker-invariant), and finished results keyed by
// resultKey (graph hash + result-affecting options). Both sides are bounded
// LRU — the daemon is long-running and graphs are large, so an unbounded
// map would be a slow leak.
//
// Pair lists are stored in their *unsorted* master order (the similarity
// kernel's deterministic output order) and deep-cloned on every hit: the
// sweep engines sort pair lists in place, so handing the stored slice to a
// job would corrupt the cache for concurrent readers.
type cache struct {
	mu         sync.Mutex
	maxEntries int

	pairs    map[[sha256.Size]byte]*list.Element
	pairsLRU *list.List // front = most recent; values are *pairEntry

	results    map[[sha256.Size]byte]*list.Element
	resultsLRU *list.List // values are *resultEntry
}

type pairEntry struct {
	key   [sha256.Size]byte
	pairs []core.Pair // unsorted master order
}

type resultEntry struct {
	key    [sha256.Size]byte
	result Result
	report *linkclust.RunReport
	merges []byte // serialized LCMG document
}

// newCache returns a cache bounded to maxEntries per side; maxEntries <= 0
// disables caching entirely (every lookup misses, every insert is dropped).
func newCache(maxEntries int) *cache {
	return &cache{
		maxEntries: maxEntries,
		pairs:      make(map[[sha256.Size]byte]*list.Element),
		pairsLRU:   list.New(),
		results:    make(map[[sha256.Size]byte]*list.Element),
		resultsLRU: list.New(),
	}
}

// getPairs returns a private, unsorted clone of the cached pair list for
// graphKey, or nil on a miss.
func (c *cache) getPairs(graphKey [sha256.Size]byte) *core.PairList {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.pairs[graphKey]
	if !ok {
		return nil
	}
	c.pairsLRU.MoveToFront(el)
	e := el.Value.(*pairEntry)
	return &core.PairList{Pairs: append([]core.Pair(nil), e.pairs...)}
}

// putPairs stores a clone of pl (which must be in the similarity kernel's
// unsorted master order) under graphKey.
func (c *cache) putPairs(graphKey [sha256.Size]byte, pl *core.PairList) {
	if c.maxEntries <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.pairs[graphKey]; ok {
		c.pairsLRU.MoveToFront(el)
		return
	}
	e := &pairEntry{key: graphKey, pairs: append([]core.Pair(nil), pl.Pairs...)}
	c.pairs[graphKey] = c.pairsLRU.PushFront(e)
	if c.pairsLRU.Len() > c.maxEntries {
		oldest := c.pairsLRU.Back()
		c.pairsLRU.Remove(oldest)
		delete(c.pairs, oldest.Value.(*pairEntry).key)
	}
}

// getResult returns the cached finished result for key, or nil on a miss.
// The returned entry is immutable and shared; callers must not mutate it.
func (c *cache) getResult(key [sha256.Size]byte) *resultEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.results[key]
	if !ok {
		return nil
	}
	c.resultsLRU.MoveToFront(el)
	return el.Value.(*resultEntry)
}

// putResult stores a finished result. Degraded or error-tagged runs must
// never reach here — the caller guarantees only clean, deterministic
// results are cached (see Manager.runJob).
func (c *cache) putResult(e *resultEntry) {
	if c.maxEntries <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.results[e.key]; ok {
		c.resultsLRU.MoveToFront(el)
		return
	}
	c.results[e.key] = c.resultsLRU.PushFront(e)
	if c.resultsLRU.Len() > c.maxEntries {
		oldest := c.resultsLRU.Back()
		c.resultsLRU.Remove(oldest)
		delete(c.results, oldest.Value.(*resultEntry).key)
	}
}

// stats reports entry counts for /metrics.
func (c *cache) stats() (pairEntries, resultEntries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pairsLRU.Len(), c.resultsLRU.Len()
}
