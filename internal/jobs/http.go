package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// MaxGraphBytes bounds the request body of a submission; graphs past it are
// rejected with 413 before parsing.
const MaxGraphBytes = 64 << 20

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	// Graph is the graph in the library's text format (see WriteGraph).
	Graph string `json:"graph"`
	// Options configures the run; the zero value is a serial fine-grained
	// sweep with the daemon's default timeout and budget.
	Options Options `json:"options"`
}

// NewHandler returns the daemon's HTTP API over m:
//
//	POST /jobs              submit a job; 200 + final status on a result-cache
//	                        hit, 202 + queued status otherwise
//	GET  /jobs/{id}         job status
//	GET  /jobs/{id}/result  result summary of a finished job
//	GET  /jobs/{id}/merges  serialized merge stream (LCMG binary)
//	GET  /runreport/{id}    the job's obs run report (partial for
//	                        canceled/failed jobs, error-tagged)
//	GET  /metrics           manager counters and gauges
//	GET  /healthz           "ok", or 503 once draining
//
// Error mapping: 400 malformed request/graph, 404 unknown job, 409 artifact
// requested before the job finished, 413 oversized body, 429 queue full or
// memory-budget rejection, 503 draining.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxGraphBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("jobs: graph exceeds %d bytes", int64(MaxGraphBytes)))
				return
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var req SubmitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("jobs: malformed submit body: %w", err))
			return
		}
		if req.Graph == "" {
			httpError(w, http.StatusBadRequest, errors.New("jobs: empty graph"))
			return
		}
		st, err := m.Submit([]byte(req.Graph), req.Options)
		if err != nil {
			httpError(w, submitStatusCode(err), err)
			return
		}
		code := http.StatusAccepted
		if st.State == StateDone {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if st.State != StateDone {
			httpError(w, http.StatusConflict, fmt.Errorf("%w: state %s", ErrNotFinished, st.State))
			return
		}
		writeJSON(w, http.StatusOK, st.Result)
	})

	mux.HandleFunc("GET /jobs/{id}/merges", func(w http.ResponseWriter, r *http.Request) {
		data, err := m.Merges(r.PathValue("id"))
		if err != nil {
			code := http.StatusNotFound
			if errors.Is(err, ErrNotFinished) {
				code = http.StatusConflict
			}
			httpError(w, code, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})

	mux.HandleFunc("GET /runreport/{id}", func(w http.ResponseWriter, r *http.Request) {
		rep, err := m.Report(r.PathValue("id"))
		if err != nil {
			code := http.StatusNotFound
			if errors.Is(err, ErrNotFinished) {
				code = http.StatusConflict
			}
			httpError(w, code, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		rep.WriteJSON(w)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Metrics())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if m.Draining() {
			httpError(w, http.StatusServiceUnavailable, ErrDraining)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})

	return mux
}

// submitStatusCode maps Submit errors to HTTP codes: backpressure (queue
// full, memory ceiling) is 429 so well-behaved clients retry with backoff,
// drain is 503, anything else is a 400 (malformed graph or options).
func submitStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
