package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// MaxGraphBytes bounds the request body of a submission; graphs past it are
// rejected with 413 before parsing.
const MaxGraphBytes = 64 << 20

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	// Graph is the graph in the library's text format (see WriteGraph).
	Graph string `json:"graph"`
	// Options configures the run; the zero value is a serial fine-grained
	// sweep with the daemon's default timeout and budget.
	Options Options `json:"options"`
	// IdempotencyKey deduplicates retried submissions: a key seen before
	// returns the original job's current status instead of creating a new
	// job. The Idempotency-Key request header takes precedence. Keys
	// survive daemon restarts when persistence is enabled.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// NewHandler returns the daemon's HTTP API over m:
//
//	POST /jobs              submit a job; 200 + final status on a result-cache
//	                        hit, 202 + queued status otherwise
//	GET  /jobs/{id}         job status
//	GET  /jobs/{id}/result  result summary of a finished job
//	GET  /jobs/{id}/merges  serialized merge stream (LCMG binary)
//	GET  /runreport/{id}    the job's obs run report (partial for
//	                        canceled/failed jobs, error-tagged)
//	GET  /metrics           manager counters and gauges
//	GET  /healthz           liveness: always 200 while the process serves
//	GET  /readyz            readiness: 503 + Retry-After until startup
//	                        recovery (journal replay) finishes, and again
//	                        once draining; 200 between
//
// Error mapping: 400 malformed request/graph, 404 unknown job, 409 artifact
// requested before the job finished, 413 oversized body, 429 queue full or
// memory-budget rejection, 503 recovering or draining. 429 and 503 bodies
// carry "retryable": true and a Retry-After header; 4xx failures are
// terminal — retrying the identical request cannot succeed.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxGraphBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("jobs: graph exceeds %d bytes", int64(MaxGraphBytes)))
				return
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var req SubmitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("jobs: malformed submit body: %w", err))
			return
		}
		if req.Graph == "" {
			httpError(w, http.StatusBadRequest, errors.New("jobs: empty graph"))
			return
		}
		idemKey := r.Header.Get("Idempotency-Key")
		if idemKey == "" {
			idemKey = req.IdempotencyKey
		}
		st, err := m.SubmitIdem([]byte(req.Graph), req.Options, idemKey)
		if err != nil {
			httpError(w, submitStatusCode(err), err)
			return
		}
		code := http.StatusAccepted
		if st.State == StateDone {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if st.State != StateDone {
			httpError(w, http.StatusConflict, fmt.Errorf("%w: state %s", ErrNotFinished, st.State))
			return
		}
		writeJSON(w, http.StatusOK, st.Result)
	})

	mux.HandleFunc("GET /jobs/{id}/merges", func(w http.ResponseWriter, r *http.Request) {
		data, err := m.Merges(r.PathValue("id"))
		if err != nil {
			code := http.StatusNotFound
			if errors.Is(err, ErrNotFinished) {
				code = http.StatusConflict
			}
			httpError(w, code, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})

	mux.HandleFunc("GET /runreport/{id}", func(w http.ResponseWriter, r *http.Request) {
		rep, err := m.Report(r.PathValue("id"))
		if err != nil {
			code := http.StatusNotFound
			if errors.Is(err, ErrNotFinished) {
				code = http.StatusConflict
			}
			httpError(w, code, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		rep.WriteJSON(w)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Metrics())
	})

	// Liveness: the process is up and serving HTTP. Stays 200 through
	// recovery and drain — a draining daemon is alive, it is just not ready
	// for new work; restarting it on a failed liveness probe would turn
	// every graceful drain into a crash.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})

	// Readiness: take traffic only between "journal replay finished" and
	// "drain began". Not-ready responses carry Retry-After so a submitting
	// client (or a rolling deploy) knows to come back, not give up.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case m.Draining():
			httpError(w, http.StatusServiceUnavailable, ErrDraining)
		case !m.Ready():
			httpError(w, http.StatusServiceUnavailable, ErrRecovering)
		default:
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ready\n")
		}
	})

	return mux
}

// submitStatusCode maps Submit errors to HTTP codes: backpressure (queue
// full, memory ceiling) is 429 so well-behaved clients retry with backoff,
// recovery and drain are 503, anything else is a 400 (malformed graph or
// options).
func submitStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrRecovering):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the JSON error envelope. Retryable marks transient failures
// (backpressure, recovery, drain) a client should retry after the
// Retry-After delay; its absence marks terminal errors where retrying the
// identical request cannot succeed.
type errorBody struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable,omitempty"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	retryable := code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
	if retryable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, errorBody{Error: err.Error(), Retryable: retryable})
}
