package jobs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"linkclust"
)

func startServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m := NewManager(cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return m, srv
}

func submit(t *testing.T, srv *httptest.Server, req SubmitRequest) (int, Status) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func pollDone(t *testing.T, srv *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st Status
		if code := getJSON(t, srv.URL+"/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHTTPLifecycle(t *testing.T) {
	_, srv := startServer(t, Config{Concurrency: 2})
	text := string(graphText(t, 50, 31))

	code, st := submit(t, srv, SubmitRequest{Graph: text, Options: Options{Workers: 2}})
	if code != http.StatusAccepted {
		t.Fatalf("cold submit = %d, want 202", code)
	}
	st = pollDone(t, srv, st.ID)
	if st.State != StateDone {
		t.Fatalf("job %s (%s)", st.State, st.Error)
	}

	// Result endpoint.
	var res Result
	if code := getJSON(t, srv.URL+"/jobs/"+st.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}
	if res.MergesSHA256 != st.Result.MergesSHA256 {
		t.Fatal("result endpoint disagrees with status")
	}

	// Merge stream is the LCMG binary document.
	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/merges")
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 4)
	if _, err := resp.Body.Read(blob); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if string(blob) != "LCMG" {
		t.Fatalf("merges magic = %q, want LCMG", blob)
	}

	// Run report with the similarity phase present (cold run).
	var rep linkclust.RunReport
	if code := getJSON(t, srv.URL+"/runreport/"+st.ID, &rep); code != http.StatusOK {
		t.Fatalf("GET runreport = %d", code)
	}
	if rep.Schema == "" || !hasPhase(&rep, "similarity") {
		t.Fatalf("cold run report lacks schema or similarity phase: %+v", rep.Phases)
	}

	// Cached resubmit: 200, no phases in its report.
	code, st2 := submit(t, srv, SubmitRequest{Graph: text, Options: Options{}})
	if code != http.StatusOK || !st2.Cached {
		t.Fatalf("resubmit = %d cached=%v, want 200 cached", code, st2.Cached)
	}
	var rep2 linkclust.RunReport
	if code := getJSON(t, srv.URL+"/runreport/"+st2.ID, &rep2); code != http.StatusOK {
		t.Fatalf("GET cached runreport = %d", code)
	}
	if len(rep2.Phases) != 0 {
		t.Fatalf("cached job report has phases %v", rep2.Phases)
	}

	// Metrics reflect the hit.
	var mt Metrics
	if code := getJSON(t, srv.URL+"/metrics", &mt); code != http.StatusOK {
		t.Fatalf("GET metrics = %d", code)
	}
	if mt.Submitted != 2 || mt.CacheHitResult != 1 {
		t.Fatalf("metrics submitted=%d hits=%d, want 2/1", mt.Submitted, mt.CacheHitResult)
	}
}

func TestHTTPErrors(t *testing.T) {
	m, srv := startServer(t, Config{})

	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", "{", http.StatusBadRequest},
		{"empty graph", `{"graph":""}`, http.StatusBadRequest},
		{"bad graph", `{"graph":"nonsense"}`, http.StatusBadRequest},
		{"bad algorithm", `{"graph":"vertices 0\n","options":{"algorithm":"fancy"}}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: code = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	if code := getJSON(t, srv.URL+"/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/runreport/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown report = %d, want 404", code)
	}

	// Artifact of an unfinished job: 409. Submit something slow enough to
	// still be queued/running when we ask.
	code, st := submit(t, srv, SubmitRequest{Graph: string(graphText(t, 150, 32))})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	if code := getJSON(t, srv.URL+"/jobs/"+st.ID+"/result", nil); code != http.StatusConflict && code != http.StatusOK {
		t.Errorf("unfinished result = %d, want 409 (or 200 if it finished)", code)
	}
	pollDone(t, srv, st.ID)

	// Draining: readiness flips to 503 (liveness stays 200 — the process is
	// still up, just not taking work) and submissions are refused.
	m.Drain()
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", code)
	}
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200", code)
	}
	code, _ = submit(t, srv, SubmitRequest{Graph: string(graphText(t, 10, 33))})
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining submit = %d, want 503", code)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, srv := startServer(t, Config{})
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", code)
	}
}

func TestHTTPQueueBackpressure(t *testing.T) {
	_, srv := startServer(t, Config{Concurrency: 1, QueueDepth: 1})
	text := string(graphText(t, 150, 34))
	saw429 := false
	ids := []string{}
	for i := 0; i < 12; i++ {
		code, st := submit(t, srv, SubmitRequest{Graph: text, Options: Options{Algorithm: AlgoCoarse}})
		switch code {
		case http.StatusAccepted:
			ids = append(ids, st.ID)
		case http.StatusOK:
			// Result-cache hit once the first run finishes — also fine.
		case http.StatusTooManyRequests:
			saw429 = true
		default:
			t.Fatalf("submit %d = %d", i, code)
		}
	}
	if !saw429 {
		t.Skip("queue never filled on this machine")
	}
	for _, id := range ids {
		pollDone(t, srv, id)
	}
}
