// Package jobs is the service layer behind the linkclustd daemon: a bounded
// job queue feeding a worker pool that runs the facade's cancellable
// clustering pipelines over shared immutable graphs, with content-addressed
// caching of similarity pair lists and dendrograms, memory-budget admission
// control, and graceful drain. The HTTP handler in this package is a thin
// JSON shell over the Manager; cmd/linkclustd adds only flags, listening,
// and signal handling.
//
// Determinism is what makes the cache sound: every engine in the facade
// (serial, windowed-parallel, pipelined) produces a bitwise-identical merge
// stream for a given (graph, algorithm) at any worker count, so worker
// count and pipeline mode are deliberately excluded from cache keys — a
// result computed at T=8 pipelined serves a T=1 serial request verbatim.
// See DESIGN.md §8.
package jobs

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"time"

	"linkclust"
	"linkclust/internal/core"
)

// Algorithm selects the sweeping phase of a job.
type Algorithm string

const (
	// AlgoSweep is the fine-grained sweep (Algorithm 2); the engine —
	// serial, windowed-parallel, or pipelined — follows Options.Workers and
	// Options.Pipeline and never changes the output.
	AlgoSweep Algorithm = "sweep"
	// AlgoCoarse is the coarse-grained sweep of Section V with the default
	// parameters (γ=2, φ=100, δ0=1000, η0=8).
	AlgoCoarse Algorithm = "coarse"
)

// Options configures one clustering job. The zero value is valid: AlgoSweep,
// serial, the manager's default timeout and memory budget.
type Options struct {
	// Algorithm selects the sweeping phase; empty means AlgoSweep.
	Algorithm Algorithm `json:"algorithm,omitempty"`
	// Workers is the per-job worker count, normalized like every facade
	// entry point (see par.Normalize). Does not affect the output.
	Workers int `json:"workers,omitempty"`
	// Pipeline selects the sort-overlapped sweep when Workers > 1. Does not
	// affect the output.
	Pipeline bool `json:"pipeline,omitempty"`
	// Engine selects the sweep engine for AlgoSweep jobs: "auto" (the
	// default — serial below the measured op-count threshold, otherwise
	// Workers/Pipeline decide), "serial", "parallel", "pipelined", or
	// "spill" (the out-of-core sweep over the daemon's spill directory).
	// Does not affect the output, so it is excluded from result cache keys
	// like Workers and Pipeline — spilled results are cacheable under the
	// same keys precisely because the spilled merge stream is bitwise
	// identical.
	Engine string `json:"engine,omitempty"`
	// TimeoutMS bounds the job's run time; 0 inherits the manager default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MemBudgetBytes is the per-job soft live-heap growth budget; on breach
	// at the init/sweep boundary the job first spills the pair list to disk
	// and sweeps out of core (bitwise-identical output, still cacheable),
	// degrading fine→coarse only if the spill itself fails (see
	// linkclust.ClusterOptions.MemBudgetBytes). 0 inherits the manager
	// default; negative disables the budget for this job.
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
}

// normalize applies defaults and validates the algorithm.
func (o Options) normalize() (Options, error) {
	if o.Algorithm == "" {
		o.Algorithm = AlgoSweep
	}
	if o.Algorithm != AlgoSweep && o.Algorithm != AlgoCoarse {
		return o, fmt.Errorf("jobs: unknown algorithm %q (want %q or %q)", o.Algorithm, AlgoSweep, AlgoCoarse)
	}
	if o.Engine == "" {
		o.Engine = linkclust.EngineAuto
	}
	switch o.Engine {
	case linkclust.EngineAuto, linkclust.EngineSerial, linkclust.EngineParallel, linkclust.EnginePipelined, linkclust.EngineSpill:
	default:
		return o, fmt.Errorf("jobs: unknown engine %q (want %q, %q, %q, %q or %q)",
			o.Engine, linkclust.EngineAuto, linkclust.EngineSerial, linkclust.EngineParallel, linkclust.EnginePipelined, linkclust.EngineSpill)
	}
	if o.TimeoutMS < 0 {
		return o, fmt.Errorf("jobs: negative timeout_ms %d", o.TimeoutMS)
	}
	return o, nil
}

// resultKey is the content address of a job's output: SHA-256 over the
// canonical graph bytes' hash and the result-affecting options. Worker
// count and pipeline mode are excluded — the engines are bitwise
// worker-invariant — and so are the timeout and memory budget, because a
// run that degrades or is cancelled never populates the cache (only clean,
// budget-respecting results are stored; see Manager.runJob).
func (o Options) resultKey(graphKey [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(graphKey[:])
	h.Write([]byte("algo=" + string(o.Algorithm)))
	if o.Algorithm == AlgoCoarse {
		p := linkclust.DefaultCoarseParams()
		h.Write([]byte(fmt.Sprintf(";gamma=%g;phi=%d;delta0=%d;eta0=%g", p.Gamma, p.Phi, p.Delta0, p.Eta0)))
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Result summarizes a finished clustering run. MergesSHA256 is the SHA-256
// of the serialized merge stream (the LCMG document served at
// /jobs/{id}/merges) — the value a client compares against a local
// `linkclust cluster -save-merges` file to confirm bitwise identity.
type Result struct {
	Levels         int32  `json:"levels"`
	Merges         int    `json:"merges"`
	FinalClusters  int    `json:"final_clusters"`
	PairsProcessed int64  `json:"pairs_processed"`
	MergesSHA256   string `json:"merges_sha256"`
	Degraded       bool   `json:"degraded,omitempty"`
	// Spilled marks a run that went through the out-of-core sweep (explicit
	// Engine "spill" or budget admission). Informational only: a spilled
	// merge stream is bitwise identical to an in-memory one.
	Spilled bool `json:"spilled,omitempty"`
}

// Job is one queued/running/finished clustering request. Fields are
// snapshotted by Manager.Status; external readers never touch a live Job.
type Job struct {
	ID         string
	State      State
	Options    Options
	GraphSHA   string // hex of the canonical graph bytes' SHA-256
	Cached     bool   // result served from the dendrogram cache
	PairsHit   bool   // similarity phase skipped via the pair-list cache
	EnqueuedAt time.Time
	StartedAt  time.Time
	FinishedAt time.Time
	Err        string
	Result     *Result

	graphKey  [sha256.Size]byte
	resultKey [sha256.Size]byte
	graph     *linkclust.Graph // shared immutable; interned by the manager
	report    *linkclust.RunReport
	merges    []byte // serialized LCMG document
	// resume is the durable sweep checkpoint an interrupted job restarts
	// from (set only by journal replay; nil means run from scratch).
	resume *core.SweepState
}

// Status is the JSON view of a job served by the HTTP layer.
type Status struct {
	ID         string    `json:"id"`
	State      State     `json:"state"`
	Options    Options   `json:"options"`
	GraphSHA   string    `json:"graph_sha256"`
	Cached     bool      `json:"cached"`
	PairsHit   bool      `json:"pairs_cache_hit"`
	EnqueuedAt time.Time `json:"enqueued_at"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	Error      string    `json:"error,omitempty"`
	Result     *Result   `json:"result,omitempty"`
}

// snapshot renders the job for external readers; callers hold the manager
// lock.
func (j *Job) snapshot() Status {
	s := Status{
		ID:         j.ID,
		State:      j.State,
		Options:    j.Options,
		GraphSHA:   j.GraphSHA,
		Cached:     j.Cached,
		PairsHit:   j.PairsHit,
		EnqueuedAt: j.EnqueuedAt,
		StartedAt:  j.StartedAt,
		FinishedAt: j.FinishedAt,
		Error:      j.Err,
	}
	if j.Result != nil {
		r := *j.Result
		s.Result = &r
	}
	return s
}

// jobID builds a debuggable id: a sequence number plus a graph-hash prefix.
func jobID(seq int64, graphKey [sha256.Size]byte) string {
	return "j" + strconv.FormatInt(seq, 10) + "-" + fmt.Sprintf("%x", graphKey[:4])
}
