package jobs

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"linkclust"
	"linkclust/internal/core"
	"linkclust/internal/obs"
	"linkclust/internal/par"
	"linkclust/internal/persist"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull means the bounded queue rejected the submission (429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrOverloaded means the admission memory check rejected the
	// submission: the process live heap is already past the configured
	// ceiling (429).
	ErrOverloaded = errors.New("jobs: memory budget exhausted")
	// ErrDraining means the manager is shutting down (503).
	ErrDraining = errors.New("jobs: draining")
	// ErrRecovering means startup journal replay has not finished yet;
	// submissions are rejected (503 + Retry-After) until the manager is
	// ready. Read endpoints work throughout.
	ErrRecovering = errors.New("jobs: recovering")
	// ErrUnknownJob means the job id is not (or no longer) retained (404).
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrNotFinished means the requested artifact exists only for finished
	// jobs (409).
	ErrNotFinished = errors.New("jobs: job not finished")
)

// Config parameterizes a Manager. The zero value is usable: every field has
// a conservative default applied by NewManager.
type Config struct {
	// Concurrency is the number of jobs run simultaneously (the worker-pool
	// size; default 1). Each job additionally fans out to its own
	// Options.Workers engine workers, so total goroutine pressure is
	// bounded by Concurrency × par.DefaultCap().
	Concurrency int
	// QueueDepth bounds the number of jobs waiting to run (default 16);
	// submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// DefaultJobTimeout applies to jobs that don't set Options.TimeoutMS
	// (default 5m; <0 disables).
	DefaultJobTimeout time.Duration
	// MemBudgetBytes is the admission ceiling: a submission is rejected
	// with ErrOverloaded while the process live heap exceeds it (0
	// disables). Checked with a stop-the-world-free runtime/metrics read
	// (obs.LiveHeapBytes) at every enqueue.
	MemBudgetBytes int64
	// JobMemBudgetBytes is the default per-job soft growth budget handed
	// to the pipeline; on breach at the init/sweep boundary a sweep job
	// first spills its pair list to disk (SpillDir) and sweeps out of
	// core, degrading fine→coarse only if the spill fails (0 disables).
	JobMemBudgetBytes int64
	// SpillDir is the parent directory for out-of-core spill files —
	// per-run subdirectories are created and removed under it. Empty means
	// the system temp directory.
	SpillDir string
	// CacheEntries bounds each side of the content-addressed cache and the
	// shared-graph registry (default 64; <0 disables caching).
	CacheEntries int
	// MaxJobs bounds retained job records; the oldest finished jobs are
	// evicted first (default 1024).
	MaxJobs int
	// StateDir enables crash-safe persistence: the job journal, the durable
	// cache tier, graph blobs, and sweep checkpoints all live under it, and
	// startup replays the journal (re-serving completed results, re-running
	// interrupted jobs). Empty disables persistence entirely. Only
	// NewPersistentManager honors it; see that constructor for the error
	// semantics (locked or unopenable state dirs).
	StateDir string
	// CheckpointOps is the approximate operation-count interval between
	// durable sweep checkpoints for persistent managers (default 1<<20 when
	// StateDir is set; <0 disables checkpointing). Checkpoints land only at
	// the engine's window boundaries, so resumed output is bitwise identical
	// to an uninterrupted run regardless of the interval.
	CheckpointOps int
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultJobTimeout == 0 {
		c.DefaultJobTimeout = 5 * time.Minute
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.StateDir != "" && c.CheckpointOps == 0 {
		c.CheckpointOps = 1 << 20
	}
	return c
}

// Metrics is the monotonic-counter snapshot served at /metrics.
type Metrics struct {
	Submitted         int64 `json:"jobs_submitted"`
	Completed         int64 `json:"jobs_completed"`
	Failed            int64 `json:"jobs_failed"`
	Canceled          int64 `json:"jobs_canceled"`
	Degraded          int64 `json:"jobs_degraded"`
	Spilled           int64 `json:"jobs_spilled"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedOverload  int64 `json:"rejected_mem_budget"`
	RejectedDraining  int64 `json:"rejected_draining"`
	CacheHitResult    int64 `json:"cache_hits_result"`
	CacheHitPairs     int64 `json:"cache_hits_pairs"`
	Active            int64 `json:"jobs_active"`
	QueueDepth        int64 `json:"queue_depth"`
	CachePairEntries  int64 `json:"cache_pair_entries"`
	CacheResultEnts   int64 `json:"cache_result_entries"`
	LiveHeapBytes     int64 `json:"live_heap_bytes"`

	// Persistence (all zero for memory-only managers).
	RejectedRecovering    int64 `json:"rejected_recovering"`
	DiskHitResult         int64 `json:"disk_cache_hits_result"`
	DiskHitPairs          int64 `json:"disk_cache_hits_pairs"`
	JournalReplayed       int64 `json:"journal_records_replayed"`
	JobsRecovered         int64 `json:"jobs_recovered"`
	JobsResumed           int64 `json:"jobs_resumed_from_checkpoint"`
	CorruptEntries        int64 `json:"persist_corrupt_entries"`
	PersistWriteSkips     int64 `json:"persist_write_skips"`
	JanitorReclaimedBytes int64 `json:"janitor_reclaimed_bytes"`
	PersistDegraded       int64 `json:"persist_degraded"`
}

// Manager owns the queue, the worker pool, the caches, and every job
// record. All methods are safe for concurrent use.
type Manager struct {
	cfg   Config
	cache *cache
	store *persister // nil for memory-only managers

	baseCtx context.Context
	cancel  context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup

	// readyFlag flips true once journal replay finishes (immediately for
	// memory-only managers); replayDone is closed at the same moment and is
	// what Drain waits on before closing the queue.
	readyFlag  atomic.Bool
	replayDone chan struct{}

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	order    []string // insertion order, for bounded retention
	idem     map[string]string
	graphs   map[[sha256.Size]byte]*graphEntry
	graphLRU []([sha256.Size]byte)
	rawIndex map[[sha256.Size]byte]*rawEntry
	rawLRU   []([sha256.Size]byte)
	seq      int64

	mSubmitted, mCompleted, mFailed, mCanceled, mDegraded, mSpilled atomic.Int64
	mRejQueue, mRejOverload, mRejDraining, mRejRecovering           atomic.Int64
	mHitResult, mHitPairs, mActive                                  atomic.Int64
	mDiskHitResult, mDiskHitPairs, mRecovered, mResumed             atomic.Int64
	mReplayed, mJanitorBytes                                        atomic.Int64
}

type graphEntry struct {
	g *linkclust.Graph
}

// rawEntry short-circuits re-parsing: byte-identical submissions map
// straight to their canonical graph key and shared parsed Graph. Without it
// every cached resubmit would still pay the full text parse + canonical
// serialization just to recompute a key the manager already knows.
type rawEntry struct {
	graphKey [sha256.Size]byte
	g        *linkclust.Graph
}

// NewManager starts a manager with cfg's worker pool running. It delegates
// to NewPersistentManager and panics if cfg.StateDir is set but cannot be
// opened — callers that configure persistence should use
// NewPersistentManager and handle the error.
func NewManager(cfg Config) *Manager {
	m, err := NewPersistentManager(cfg)
	if err != nil {
		panic(fmt.Sprintf("jobs: %v", err))
	}
	return m
}

// NewPersistentManager starts a manager, opening and recovering the state
// directory when cfg.StateDir is set: lockfile, janitor, journal replay. It
// returns immediately — replay runs on its own goroutine, Ready reports its
// completion, and submissions fail with ErrRecovering until then. Errors are
// startup-fatal conditions only: a state dir held by a live process
// (persist.ErrLocked) or unreadable/uncreatable state files. Corrupt journal
// tails and cache entries are recovery inputs, not errors.
func NewPersistentManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	var (
		store      *persister
		replayRecs []persist.Record
		janitorB   int64
	)
	if cfg.StateDir != "" {
		var err error
		store, replayRecs, janitorB, err = openPersister(cfg.StateDir)
		if err != nil {
			return nil, err
		}
		if cfg.SpillDir == "" {
			// Spills under the state dir put orphaned spill runs from a
			// crashed process inside the janitor's reach.
			cfg.SpillDir = store.dir.SpillDir()
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		cache:      newCache(cfg.CacheEntries),
		store:      store,
		baseCtx:    ctx,
		cancel:     cancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		replayDone: make(chan struct{}),
		jobs:       make(map[string]*Job),
		idem:       make(map[string]string),
		graphs:     make(map[[sha256.Size]byte]*graphEntry),
		rawIndex:   make(map[[sha256.Size]byte]*rawEntry),
	}
	for i := 0; i < cfg.Concurrency; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
	if store == nil {
		m.readyFlag.Store(true)
		close(m.replayDone)
	} else {
		m.mJanitorBytes.Store(janitorB)
		m.mReplayed.Store(int64(len(replayRecs)))
		go m.replay(replayRecs)
	}
	return m, nil
}

// Ready reports whether startup recovery has finished (always true for
// memory-only managers). The HTTP readiness probe serves it.
func (m *Manager) Ready() bool { return m.readyFlag.Load() }

// Submit parses graphText (the library's text graph format, treated as
// untrusted input), applies admission control, and either answers from the
// result cache (the returned Status is already StateDone with Cached=true)
// or enqueues a job. Admission order: drain state, then the memory ceiling
// (cheap runtime/metrics read), then parsing, then the cache, then the
// bounded queue.
func (m *Manager) Submit(graphText []byte, opts Options) (Status, error) {
	return m.SubmitIdem(graphText, opts, "")
}

// SubmitIdem is Submit with a client idempotency key: a non-empty key seen
// before returns the current status of the job it originally created — no
// new job, no duplicate work — which is what lets a client retry a submission
// whose response was lost (to a crash, a timeout, a dropped connection)
// without double-submitting. Keys are journaled with their jobs, so the
// mapping survives a daemon restart.
func (m *Manager) SubmitIdem(graphText []byte, opts Options, idemKey string) (Status, error) {
	opts, err := opts.normalize()
	if err != nil {
		return Status{}, err
	}
	if !m.Ready() {
		m.mRejRecovering.Add(1)
		return Status{}, ErrRecovering
	}
	if m.isDraining() {
		m.mRejDraining.Add(1)
		return Status{}, ErrDraining
	}
	if idemKey != "" {
		m.mu.Lock()
		if id, ok := m.idem[idemKey]; ok {
			if j, live := m.jobs[id]; live {
				s := j.snapshot()
				m.mu.Unlock()
				return s, nil
			}
			// The mapped job was evicted from retention; the key no longer
			// proves anything — treat the submission as fresh.
			delete(m.idem, idemKey)
		}
		m.mu.Unlock()
	}
	if m.cfg.MemBudgetBytes > 0 && int64(obs.LiveHeapBytes()) > m.cfg.MemBudgetBytes {
		m.mRejOverload.Add(1)
		return Status{}, fmt.Errorf("%w: live heap %d > budget %d bytes",
			ErrOverloaded, obs.LiveHeapBytes(), m.cfg.MemBudgetBytes)
	}
	// Fast path for byte-identical resubmissions: the raw-bytes index maps
	// straight to the canonical key and the shared parsed Graph, skipping
	// the parse + canonical serialization entirely — on a result-cache hit
	// the whole submission is then a couple of hashes and map lookups.
	rawKey := sha256.Sum256(graphText)
	var (
		g        *linkclust.Graph
		graphKey [sha256.Size]byte
	)
	m.mu.Lock()
	if e, ok := m.rawIndex[rawKey]; ok {
		g, graphKey = e.g, e.graphKey
	}
	m.mu.Unlock()
	if g == nil {
		var err error
		g, err = linkclust.ReadGraph(bytes.NewReader(graphText))
		if err != nil {
			return Status{}, fmt.Errorf("jobs: parsing graph: %w", err)
		}
		// Content address: hash the *canonical* serialization, not the
		// request bytes, so whitespace/comment variants of the same graph
		// share cache entries and one immutable in-memory Graph.
		var canon bytes.Buffer
		if err := linkclust.WriteGraph(&canon, g); err != nil {
			return Status{}, err
		}
		graphKey = sha256.Sum256(canon.Bytes())
	}
	// Persist the canonical graph blob before the job becomes durable in the
	// journal: replay can only re-run an interrupted job whose graph it can
	// reload. Content-addressed, so repeats are a stat.
	m.store.ensureGraph(graphKey, g)

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.mRejDraining.Add(1)
		return Status{}, ErrDraining
	}
	m.seq++
	j := &Job{
		ID:         jobID(m.seq, graphKey),
		State:      StateQueued,
		Options:    opts,
		GraphSHA:   hex.EncodeToString(graphKey[:]),
		EnqueuedAt: time.Now(),
		graphKey:   graphKey,
		resultKey:  opts.resultKey(graphKey),
	}
	j.graph = m.internGraphLocked(graphKey, g)
	m.recordRawLocked(rawKey, graphKey, j.graph)
	if idemKey != "" {
		m.idem[idemKey] = j.ID
	}
	m.mSubmitted.Add(1)
	if m.store != nil {
		optsJSON, _ := json.Marshal(opts)
		m.store.append(persist.Record{
			Op: persist.OpSubmit, ID: j.ID, Seq: m.seq, GraphSHA: j.GraphSHA,
			Options: optsJSON, IdemKey: idemKey, AtUnixMS: j.EnqueuedAt.UnixMilli(),
		})
	}

	// Full-result cache hit: the job completes at submission, no queue, no
	// phases — the run report records only the hit. The durable tier backs
	// the memory LRU: an entry evicted from memory (or written by a previous
	// process) is promoted back on its next hit.
	e := m.cache.getResult(j.resultKey)
	source := "result-hit"
	if e != nil {
		m.mHitResult.Add(1)
	} else if m.store != nil {
		if res, merges, ok := m.store.loadResult(j.resultKey); ok {
			e = &resultEntry{key: j.resultKey, result: *res, merges: merges}
			m.cache.putResult(e)
			m.mDiskHitResult.Add(1)
			source = "result-disk-hit"
		}
	}
	if e != nil {
		j.State = StateDone
		j.Cached = true
		now := time.Now()
		j.StartedAt, j.FinishedAt = now, now
		r := e.result
		j.Result = &r
		j.merges = e.merges
		rec := linkclust.NewRecorder()
		rec.SetMeta("job", j.ID)
		rec.SetMeta("cache", source)
		rec.SetMeta("algorithm", string(opts.Algorithm))
		j.report = rec.Report()
		m.retainLocked(j)
		s := j.snapshot()
		if m.store != nil {
			resJSON, _ := json.Marshal(j.Result)
			m.store.append(persist.Record{
				Op: persist.OpDone, ID: j.ID, RKey: resultName(j.resultKey),
				Result: resJSON, AtUnixMS: now.UnixMilli(),
			})
		}
		m.mu.Unlock()
		m.mCompleted.Add(1)
		return s, nil
	}

	select {
	case m.queue <- j:
	default:
		// The submit record is already journaled; cancel it there too so a
		// restart does not resurrect a job the client was told was rejected.
		if m.store != nil {
			m.store.append(persist.Record{
				Op: persist.OpCancel, ID: j.ID, Err: ErrQueueFull.Error(),
				AtUnixMS: time.Now().UnixMilli(),
			})
		}
		m.mu.Unlock()
		m.mRejQueue.Add(1)
		return Status{}, fmt.Errorf("%w: depth %d", ErrQueueFull, m.cfg.QueueDepth)
	}
	m.retainLocked(j)
	s := j.snapshot()
	m.mu.Unlock()
	return s, nil
}

// internGraphLocked deduplicates parsed graphs: concurrent jobs over the
// same content share one immutable *Graph. The registry is bounded; an
// evicted graph only means a later submission re-parses (jobs hold their
// own pointer, so eviction never invalidates queued or running work).
func (m *Manager) internGraphLocked(key [sha256.Size]byte, g *linkclust.Graph) *linkclust.Graph {
	if e, ok := m.graphs[key]; ok {
		return e.g
	}
	if m.cfg.CacheEntries > 0 {
		m.graphs[key] = &graphEntry{g: g}
		m.graphLRU = append(m.graphLRU, key)
		if len(m.graphLRU) > m.cfg.CacheEntries {
			delete(m.graphs, m.graphLRU[0])
			m.graphLRU = m.graphLRU[1:]
		}
	}
	return g
}

// recordRawLocked remembers that raw request bytes hashing to rawKey parse
// to the graph interned under graphKey. Bounded like the graph registry; an
// eviction only costs a later byte-identical submission one re-parse.
func (m *Manager) recordRawLocked(rawKey, graphKey [sha256.Size]byte, g *linkclust.Graph) {
	if m.cfg.CacheEntries <= 0 {
		return
	}
	if _, ok := m.rawIndex[rawKey]; ok {
		return
	}
	m.rawIndex[rawKey] = &rawEntry{graphKey: graphKey, g: g}
	m.rawLRU = append(m.rawLRU, rawKey)
	if len(m.rawLRU) > m.cfg.CacheEntries {
		delete(m.rawIndex, m.rawLRU[0])
		m.rawLRU = m.rawLRU[1:]
	}
}

// retainLocked records the job and evicts the oldest finished records past
// the retention bound.
func (m *Manager) retainLocked(j *Job) {
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	if len(m.order) <= m.cfg.MaxJobs {
		return
	}
	for i, id := range m.order {
		old, ok := m.jobs[id]
		if !ok || old.State == StateQueued || old.State == StateRunning {
			continue
		}
		delete(m.jobs, id)
		m.order = append(m.order[:i], m.order[i+1:]...)
		return
	}
}

// runJob executes one queued job on a worker-pool goroutine.
func (m *Manager) runJob(j *Job) {
	m.mActive.Add(1)
	defer m.mActive.Add(-1)
	m.mu.Lock()
	j.State = StateRunning
	j.StartedAt = time.Now()
	m.mu.Unlock()
	if m.store != nil {
		m.store.append(persist.Record{Op: persist.OpStart, ID: j.ID, AtUnixMS: j.StartedAt.UnixMilli()})
	}

	rec := linkclust.NewRecorder()
	rec.SetMeta("job", j.ID)
	rec.SetMeta("algorithm", string(j.Options.Algorithm))
	rec.SetMeta("workers", strconv.Itoa(j.Options.Workers))

	ctx := m.baseCtx
	timeout := time.Duration(j.Options.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = m.cfg.DefaultJobTimeout
	}
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	res, merges, pairsHit, err := m.execute(ctx, j, rec)
	cancel()

	m.mu.Lock()
	j.FinishedAt = time.Now()
	j.PairsHit = pairsHit
	switch {
	case err == nil:
		j.State = StateDone
		j.Result = res
		j.merges = merges
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.State = StateCanceled
		j.Err = err.Error()
	default:
		j.State = StateFailed
		j.Err = err.Error()
	}
	if err != nil {
		// Preserve the partial report, tagged like the CLI's error path.
		rec.SetMeta("error", err.Error())
	}
	j.report = rec.Report()
	state, result := j.State, j.Result
	jerr := j.Err
	finished := j.FinishedAt
	m.mu.Unlock()

	switch state {
	case StateDone:
		m.mCompleted.Add(1)
	case StateCanceled:
		m.mCanceled.Add(1)
	default:
		m.mFailed.Add(1)
	}

	if m.store == nil {
		return
	}
	// Journal the terminal record. Two deliberate gaps: a drain-cancelled
	// job gets no record (a redeploy's interrupted jobs must re-run on the
	// next start), and a degraded result gets none either (degraded output
	// is not cached, and a re-run may produce the finer result). Both replay
	// as "interrupted" and re-run; their checkpoints are kept for resume.
	at := finished.UnixMilli()
	switch {
	case state == StateDone && !result.Degraded:
		resJSON, _ := json.Marshal(result)
		m.store.append(persist.Record{
			Op: persist.OpDone, ID: j.ID, RKey: resultName(j.resultKey),
			Result: resJSON, AtUnixMS: at,
		})
		m.store.removeCkpt(j.ID)
	case state == StateFailed:
		m.store.append(persist.Record{Op: persist.OpFail, ID: j.ID, Err: jerr, AtUnixMS: at})
		m.store.removeCkpt(j.ID)
	case state == StateCanceled && !m.isDraining():
		m.store.append(persist.Record{Op: persist.OpCancel, ID: j.ID, Err: jerr, AtUnixMS: at})
		m.store.removeCkpt(j.ID)
	}
}

// execute runs the cache-aware pipeline: Phase I from the pair-list cache
// when possible, the memory-budget spill→degrade ladder at the phase
// boundary, then the engine selected by the job's options. Only
// non-degraded, non-error results populate the result cache — spilled
// results qualify because the out-of-core sweep is bitwise identical to
// what any in-memory engine would recompute.
func (m *Manager) execute(ctx context.Context, j *Job, rec *linkclust.Recorder) (*Result, []byte, bool, error) {
	g := j.graph
	budgetBytes := j.Options.MemBudgetBytes
	if budgetBytes == 0 {
		budgetBytes = m.cfg.JobMemBudgetBytes
	}
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	budget := obs.NewMemBudget(budgetBytes)

	pairsHit := false
	var pl *linkclust.PairList
	if cached := m.cache.getPairs(j.graphKey); cached != nil {
		m.mHitPairs.Add(1)
		pairsHit = true
		rec.SetMeta("cache", "pairs-hit")
		pl = cached
	} else if disk := m.store.loadPairs(j.graphKey); disk != nil {
		// Durable tier behind the memory LRU: the entry survives restarts
		// and memory eviction; promote it so the next hit is memory-speed.
		m.mDiskHitPairs.Add(1)
		pairsHit = true
		rec.SetMeta("cache", "pairs-disk-hit")
		m.cache.putPairs(j.graphKey, disk)
		pl = disk
	} else {
		var err error
		pl, err = linkclust.SimilarityCtx(ctx, g, j.Options.Workers, rec)
		if err != nil {
			return nil, nil, pairsHit, err
		}
		// Store before the sweep sorts pl in place; putPairs clones, and
		// the durable entry serializes the same master order.
		m.cache.putPairs(j.graphKey, pl)
		m.store.savePairs(j.graphKey, pl)
	}

	// Budget breach at the phase boundary. A sweep job first tries the
	// out-of-core spilled sweep — its merge stream is bitwise identical to
	// the in-memory engines, so the result stays cacheable. Only if the
	// spill itself fails cleanly (pair list intact, no cancellation, no
	// worker panic) does the job fall to the coarse-degrade rung. Coarse
	// jobs have nothing to spill for: a breach simply marks them degraded
	// as before.
	degraded := false
	var spillRes *linkclust.Result
	if budget.Exceeded() {
		spill := j.Options.Algorithm == AlgoSweep
		if spill {
			rec.Add(linkclust.CtrMemBudgetSpills, 1)
			rec.SetMeta("sweep_engine", linkclust.EngineSpill)
			sres, serr := linkclust.SweepSpilledCtx(ctx, g, pl, j.Options.Workers, m.cfg.SpillDir, rec)
			switch {
			case serr == nil:
				spillRes = sres
			case ctx.Err() != nil || pl.Pairs == nil:
				// Cancelled, or the pair list is already on disk (read-phase
				// failure): nothing left to degrade onto.
				return nil, nil, pairsHit, serr
			default:
				var wpe *par.WorkerPanicError
				if errors.As(serr, &wpe) {
					return nil, nil, pairsHit, serr
				}
				spill = false // write-phase failure with pl intact: degrade
			}
		}
		if !spill {
			rec.Add(linkclust.CtrMemBudgetDegrades, 1)
			m.mDegraded.Add(1)
			degraded = true
		}
	}

	var (
		merges []core.Merge
		res    = &Result{Degraded: degraded}
	)
	if spillRes != nil {
		merges = spillRes.Merges
		res.Levels = spillRes.Levels
		res.FinalClusters = spillRes.NumClusters()
		res.PairsProcessed = spillRes.PairsProcessed
		res.Spilled = true
		m.mSpilled.Add(1)
	} else if j.Options.Algorithm == AlgoCoarse || degraded {
		params := linkclust.DefaultCoarseParams()
		params.Workers = j.Options.Workers
		cres, err := linkclust.CoarseSweepCtx(ctx, g, pl, params, rec)
		if err != nil {
			return nil, nil, pairsHit, err
		}
		merges = cres.Merges
		res.Levels = cres.Levels
		res.FinalClusters = cres.FinalClusters
		res.PairsProcessed = cres.OpsProcessed
	} else {
		var (
			sres *linkclust.Result
			err  error
		)
		// Engine choice cannot change the output (all engines are bitwise
		// identical), so the daemon defaults to "auto": serial below the
		// measured op-count threshold — where parallel scheduling only adds
		// overhead — and the Workers/Pipeline-selected engine above it.
		engine := j.Options.Engine
		if engine == "" || engine == linkclust.EngineAuto {
			engine = core.ChooseSweepEngine(pl.NumIncidentPairs(), j.Options.Workers, j.Options.Pipeline)
		}
		// Checkpointed execution replaces the windowed-parallel engine when
		// persistence is on (same engine plus state capture — output stays
		// bitwise identical), and unconditionally when the job carries a
		// replayed checkpoint: the resumed sweep replays only pairs past the
		// checkpoint and emits the identical merge stream.
		checkpointing := m.store.enabled() && m.cfg.CheckpointOps > 0 && engine == linkclust.EngineParallel
		if j.resume != nil {
			engine = linkclust.EngineParallel
			checkpointing = checkpointing || m.store.enabled() && m.cfg.CheckpointOps > 0
			rec.SetMeta("resumed_from_pos", strconv.Itoa(j.resume.Pos))
			m.mResumed.Add(1)
		}
		rec.SetMeta("sweep_engine", engine)
		switch {
		case engine == linkclust.EngineParallel && (checkpointing || j.resume != nil):
			var save func(core.SweepState)
			saveEvery := 0
			if checkpointing {
				saveEvery = m.cfg.CheckpointOps
				total := len(pl.Pairs)
				save = func(st core.SweepState) {
					if st.Pos >= total {
						return // final state; the done record supersedes it
					}
					if m.store.saveCkpt(j.ID, j.graphKey, &st) {
						m.store.append(persist.Record{
							Op: persist.OpCkpt, ID: j.ID, Pos: st.Pos,
							AtUnixMS: time.Now().UnixMilli(),
						})
					}
				}
			}
			sres, err = core.SweepResumeCtx(ctx, g, pl, j.resume, j.Options.Workers, saveEvery, save, rec)
		case engine == linkclust.EnginePipelined:
			sres, err = linkclust.SweepPipelinedCtx(ctx, g, pl, j.Options.Workers, rec)
		case engine == linkclust.EngineParallel:
			sres, err = linkclust.SweepParallelCtx(ctx, g, pl, j.Options.Workers, rec)
		case engine == linkclust.EngineSpill:
			sres, err = linkclust.SweepSpilledCtx(ctx, g, pl, j.Options.Workers, m.cfg.SpillDir, rec)
			if err == nil {
				res.Spilled = true
				m.mSpilled.Add(1)
			}
		default:
			sres, err = linkclust.SweepCtx(ctx, g, pl, rec)
		}
		if err != nil {
			return nil, nil, pairsHit, err
		}
		merges = sres.Merges
		res.Levels = sres.Levels
		res.FinalClusters = sres.NumClusters()
		res.PairsProcessed = sres.PairsProcessed
	}
	res.Merges = len(merges)

	var buf bytes.Buffer
	if err := core.WriteMerges(&buf, g.NumEdges(), merges); err != nil {
		return nil, nil, pairsHit, err
	}
	sum := sha256.Sum256(buf.Bytes())
	res.MergesSHA256 = hex.EncodeToString(sum[:])

	if !degraded {
		m.cache.putResult(&resultEntry{key: j.resultKey, result: *res, merges: buf.Bytes()})
		m.store.saveResult(j.resultKey, res, buf.Bytes())
	}
	return res, buf.Bytes(), pairsHit, nil
}

// Status returns the job's current state snapshot.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrUnknownJob
	}
	return j.snapshot(), nil
}

// Report returns the job's run report: the full instrumented report for
// finished jobs (partial and error-tagged for canceled/failed ones).
func (m *Manager) Report(id string) (*linkclust.RunReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	if j.report == nil {
		return nil, ErrNotFinished
	}
	return j.report, nil
}

// Merges returns the serialized LCMG merge-stream document of a finished
// job. The bytes are immutable; callers must not modify them.
func (m *Manager) Merges(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	if j.State != StateDone {
		return nil, ErrNotFinished
	}
	return j.merges, nil
}

// Metrics snapshots the manager's counters and gauges.
func (m *Manager) Metrics() Metrics {
	pairEnts, resEnts := m.cache.stats()
	var corrupt, writeSkips, degraded int64
	if m.store != nil {
		corrupt = m.store.mCorrupt.Load()
		writeSkips = m.store.mWriteSkips.Load()
		if m.store.isDegraded() {
			degraded = 1
		}
	}
	return Metrics{
		Submitted:         m.mSubmitted.Load(),
		Completed:         m.mCompleted.Load(),
		Failed:            m.mFailed.Load(),
		Canceled:          m.mCanceled.Load(),
		Degraded:          m.mDegraded.Load(),
		Spilled:           m.mSpilled.Load(),
		RejectedQueueFull: m.mRejQueue.Load(),
		RejectedOverload:  m.mRejOverload.Load(),
		RejectedDraining:  m.mRejDraining.Load(),
		CacheHitResult:    m.mHitResult.Load(),
		CacheHitPairs:     m.mHitPairs.Load(),
		Active:            m.mActive.Load(),
		QueueDepth:        int64(len(m.queue)),
		CachePairEntries:  int64(pairEnts),
		CacheResultEnts:   int64(resEnts),
		LiveHeapBytes:     int64(obs.LiveHeapBytes()),

		RejectedRecovering:    m.mRejRecovering.Load(),
		DiskHitResult:         m.mDiskHitResult.Load(),
		DiskHitPairs:          m.mDiskHitPairs.Load(),
		JournalReplayed:       m.mReplayed.Load(),
		JobsRecovered:         m.mRecovered.Load(),
		JobsResumed:           m.mResumed.Load(),
		CorruptEntries:        corrupt,
		PersistWriteSkips:     writeSkips,
		JanitorReclaimedBytes: m.mJanitorBytes.Load(),
		PersistDegraded:       degraded,
	}
}

func (m *Manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Draining reports whether Drain has begun (used by the HTTP layer's
// health endpoint).
func (m *Manager) Draining() bool { return m.isDraining() }

// Drain shuts the manager down gracefully: new submissions are rejected
// with ErrDraining, in-flight jobs are cancelled through their contexts
// (the engines observe it within one scheduling window and unwind with
// their partial run reports preserved), still-queued jobs run against the
// already-cancelled context and finish immediately as canceled, and Drain
// returns once every worker goroutine has exited — no goroutine outlives
// the call. Persistent managers deliberately journal NO terminal record for
// drain-cancelled jobs: they are interrupted, not cancelled, and the next
// start re-runs them. Idempotent.
func (m *Manager) Drain() {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	m.cancel()
	if !already {
		// Replay's enqueues are the one sender outside m.mu; it selects on
		// baseCtx (cancelled above), so once replayDone closes no send can
		// follow and closing the queue is safe.
		<-m.replayDone
		m.mu.Lock()
		close(m.queue)
		m.mu.Unlock()
	}
	m.wg.Wait()
	if !already {
		m.store.close()
	}
}

// Close is Drain; it exists for defer symmetry in tests.
func (m *Manager) Close() { m.Drain() }
