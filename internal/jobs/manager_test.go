package jobs

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"linkclust"
	"linkclust/internal/core"
	"linkclust/internal/fault"
	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

func TestMain(m *testing.M) {
	// The suite exercises multi-worker jobs; on a 1-core CI box the
	// schedulable-parallelism cap would normalize them all to serial. Raising
	// GOMAXPROCS is the supported oversubscription knob (see par.DefaultCap).
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
	os.Exit(m.Run())
}

// graphText serializes a deterministic random graph in the canonical text
// format, as a client would submit it.
func graphText(t *testing.T, n int, seed uint64) []byte {
	t.Helper()
	g := graph.ErdosRenyi(n, 0.2, rng.New(seed))
	var buf bytes.Buffer
	if err := linkclust.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitState polls until the job reaches a terminal state and returns it.
func waitState(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// soloMerges runs the same clustering outside the service and returns the
// serialized merge stream — the ground truth for bitwise-identity checks.
func soloMerges(t *testing.T, text []byte, workers int) []byte {
	t.Helper()
	g, err := linkclust.ReadGraph(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	res, err := linkclust.ClusterCtx(context.Background(), g, linkclust.ClusterOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.WriteMerges(&buf, g.NumEdges(), res.Merges); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSubmitRunMatchesSolo(t *testing.T) {
	m := NewManager(Config{Concurrency: 2})
	defer m.Close()

	text := graphText(t, 60, 1)
	st, err := m.Submit(text, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("fresh submission state = %s, want %s", st.State, StateQueued)
	}
	st = waitState(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", st.State, st.Error)
	}
	if st.Cached || st.PairsHit {
		t.Fatalf("cold run reported cache hits: result=%v pairs=%v", st.Cached, st.PairsHit)
	}

	got, err := m.Merges(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := soloMerges(t, text, 1)
	if !bytes.Equal(got, want) {
		t.Fatal("service merge stream differs from solo ClusterCtx run")
	}
	sum := sha256.Sum256(want)
	if st.Result.MergesSHA256 != hex.EncodeToString(sum[:]) {
		t.Fatalf("MergesSHA256 = %s, want %x", st.Result.MergesSHA256, sum)
	}

	rep, err := m.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !hasPhase(rep, "similarity") {
		t.Fatal("cold run report is missing the similarity phase")
	}
}

func hasPhase(rep *linkclust.RunReport, name string) bool {
	for _, p := range rep.Phases {
		if p.Path == name || strings.HasPrefix(p.Path, name+"/") {
			return true
		}
	}
	return false
}

func TestResultCacheHitSkipsEverything(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	text := graphText(t, 50, 2)
	st, err := m.Submit(text, Options{Workers: 4, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	first := waitState(t, m, st.ID)
	if first.State != StateDone {
		t.Fatalf("first job %s (%s)", first.State, first.Error)
	}

	// Same graph, different worker count and engine: the engines are bitwise
	// worker-invariant, so this must be served from the dendrogram cache
	// without touching the queue.
	st2, err := m.Submit(text, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.Cached {
		t.Fatalf("resubmission state=%s cached=%v, want immediate cached done", st2.State, st2.Cached)
	}
	if st2.Result.MergesSHA256 != first.Result.MergesSHA256 {
		t.Fatal("cached result hash differs from original")
	}
	rep, err := m.Report(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 0 {
		t.Fatalf("cached job ran phases %v, want none", rep.Phases)
	}
	if rep.Meta["cache"] != "result-hit" {
		t.Fatalf("cache meta = %q, want result-hit", rep.Meta["cache"])
	}

	m1, err := m.Merges(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := m.Merges(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("cached merge stream differs from original")
	}
}

func TestPairsCacheSkipsSimilarity(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	text := graphText(t, 50, 3)
	st, err := m.Submit(text, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st = waitState(t, m, st.ID); st.State != StateDone {
		t.Fatalf("sweep job %s (%s)", st.State, st.Error)
	}

	// Same graph, different algorithm: misses the result cache but reuses
	// the Phase I pair list.
	st2, err := m.Submit(text, Options{Algorithm: AlgoCoarse})
	if err != nil {
		t.Fatal(err)
	}
	if st2 = waitState(t, m, st2.ID); st2.State != StateDone {
		t.Fatalf("coarse job %s (%s)", st2.State, st2.Error)
	}
	if st2.Cached {
		t.Fatal("different algorithm hit the result cache")
	}
	if !st2.PairsHit {
		t.Fatal("coarse job recomputed the pair list instead of hitting the cache")
	}
	rep, err := m.Report(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if hasPhase(rep, "similarity") {
		t.Fatal("pairs-cache hit still ran the similarity phase")
	}
	if !hasPhase(rep, "coarse") && len(rep.Phases) == 0 {
		t.Fatal("coarse job recorded no sweep phases")
	}
}

func TestPairsCacheResultIdentical(t *testing.T) {
	// A run whose Phase I came from the cache must produce the same merge
	// stream as a cold run: the cache stores the unsorted master order and
	// clones on every hit, so the sweep's in-place sort sees the same input.
	cold := NewManager(Config{CacheEntries: -1}) // caching disabled
	defer cold.Close()
	warm := NewManager(Config{})
	defer warm.Close()

	text := graphText(t, 55, 4)
	stCold, err := cold.Submit(text, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stCold = waitState(t, cold, stCold.ID); stCold.State != StateDone {
		t.Fatalf("cold job %s (%s)", stCold.State, stCold.Error)
	}

	// Prime the pair cache, then flush the result cache by submitting the
	// other algorithm first.
	stA, err := warm.Submit(text, Options{Algorithm: AlgoCoarse})
	if err != nil {
		t.Fatal(err)
	}
	if stA = waitState(t, warm, stA.ID); stA.State != StateDone {
		t.Fatalf("priming job %s (%s)", stA.State, stA.Error)
	}
	stB, err := warm.Submit(text, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stB = waitState(t, warm, stB.ID); stB.State != StateDone {
		t.Fatalf("warm job %s (%s)", stB.State, stB.Error)
	}
	if !stB.PairsHit {
		t.Fatal("warm job did not hit the pair cache")
	}
	if stB.Result.MergesSHA256 != stCold.Result.MergesSHA256 {
		t.Fatal("pairs-cache-fed sweep diverged from cold run")
	}
}

func TestQueueFull(t *testing.T) {
	m := NewManager(Config{Concurrency: 1, QueueDepth: 1})
	defer m.Close()

	// Big enough that the worker is still busy while we overfill the queue.
	big := graphText(t, 150, 5)
	ids := []string{}
	sawFull := false
	for i := 0; i < 12; i++ {
		st, err := m.Submit(big, Options{})
		switch {
		case err == nil:
			ids = append(ids, st.ID)
		case errors.Is(err, ErrQueueFull):
			sawFull = true
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if !sawFull {
		t.Skip("queue never filled on this machine (worker drained too fast)")
	}
	if m.Metrics().RejectedQueueFull == 0 {
		t.Fatal("queue-full rejection not counted")
	}
	for _, id := range ids {
		waitState(t, m, id)
	}
}

func TestBadOptions(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	if _, err := m.Submit(graphText(t, 10, 6), Options{Algorithm: "fancy"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := m.Submit([]byte("not a graph"), Options{}); err == nil {
		t.Fatal("malformed graph accepted")
	}
}

// TestSpilledRunCached: the first rung of the budget ladder. A forced
// breach on a sweep job spills the pair list to disk and completes out of
// core; because the spilled merge stream is bitwise identical, the result
// IS cached and serves a later in-memory resubmission verbatim.
func TestSpilledRunCached(t *testing.T) {
	defer fault.Reset()
	m := NewManager(Config{Concurrency: 1, SpillDir: t.TempDir()})
	defer m.Close()

	text := graphText(t, 40, 7)
	fault.Reset()
	fault.Arm(fault.MemBreach, 1, nil) // force the budget check to report a breach
	st, err := m.Submit(text, Options{MemBudgetBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	st = waitState(t, m, st.ID)
	fault.Reset()
	if st.State != StateDone {
		t.Fatalf("spilled job %s (%s)", st.State, st.Error)
	}
	if !st.Result.Spilled || st.Result.Degraded {
		t.Fatalf("forced breach: spilled=%v degraded=%v, want spilled and not degraded",
			st.Result.Spilled, st.Result.Degraded)
	}
	mt := m.Metrics()
	if mt.Spilled != 1 || mt.Degraded != 0 {
		t.Fatalf("metrics spilled=%d degraded=%d, want 1/0", mt.Spilled, mt.Degraded)
	}

	// Spilled output is bitwise identical, so the resubmission without any
	// fault must be served straight from the result cache.
	st2, err := m.Submit(text, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatal("spilled result was not cached")
	}
	if st2 = waitState(t, m, st2.ID); st2.State != StateDone {
		t.Fatalf("follow-up job %s (%s)", st2.State, st2.Error)
	}
	if st2.Result.MergesSHA256 != st.Result.MergesSHA256 {
		t.Fatalf("cached merge stream %s differs from spilled %s",
			st2.Result.MergesSHA256, st.Result.MergesSHA256)
	}
}

// TestDegradedRunNotCached: the second rung. When the breach's spill
// attempt itself fails (injected block-write fault, the deterministic
// ENOSPC), the job degrades fine→coarse and that result must NOT be
// cached under the fine-sweep key: a resubmission without faults runs cold.
func TestDegradedRunNotCached(t *testing.T) {
	defer fault.Reset()
	m := NewManager(Config{Concurrency: 1, SpillDir: t.TempDir()})
	defer m.Close()

	text := graphText(t, 40, 7)
	fault.Reset()
	fault.Arm(fault.MemBreach, 1, nil)
	fault.Arm(fault.SpillWrite, 1, nil) // first rung fails: spill write errors
	st, err := m.Submit(text, Options{MemBudgetBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	st = waitState(t, m, st.ID)
	fault.Reset()
	if st.State != StateDone {
		t.Fatalf("degraded job %s (%s)", st.State, st.Error)
	}
	if !st.Result.Degraded || st.Result.Spilled {
		t.Fatalf("failed spill: degraded=%v spilled=%v, want degraded and not spilled",
			st.Result.Degraded, st.Result.Spilled)
	}
	mt := m.Metrics()
	if mt.Degraded != 1 || mt.Spilled != 0 {
		t.Fatalf("metrics degraded=%d spilled=%d, want 1/0", mt.Degraded, mt.Spilled)
	}

	// The degraded (coarse) result must not have been cached under the
	// fine-sweep key: a resubmission without the fault runs cold.
	st2, err := m.Submit(text, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached {
		t.Fatal("degraded result leaked into the result cache")
	}
	if st2 = waitState(t, m, st2.ID); st2.State != StateDone {
		t.Fatalf("follow-up job %s (%s)", st2.State, st2.Error)
	}
	if st2.Result.Degraded {
		t.Fatal("follow-up run degraded without a fault armed")
	}
}

// TestExplicitSpillEngineJob: Engine "spill" runs the out-of-core sweep
// unconditionally and matches a serial job's merge stream bit for bit.
func TestExplicitSpillEngineJob(t *testing.T) {
	m := NewManager(Config{Concurrency: 1, SpillDir: t.TempDir()})
	defer m.Close()

	text := graphText(t, 40, 7)
	st, err := m.Submit(text, Options{Engine: linkclust.EngineSpill, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st = waitState(t, m, st.ID); st.State != StateDone {
		t.Fatalf("spill-engine job %s (%s)", st.State, st.Error)
	}
	if !st.Result.Spilled {
		t.Fatal("explicit spill engine did not mark the result spilled")
	}

	// Same graph through a second manager serially: identical stream.
	m2 := NewManager(Config{Concurrency: 1})
	defer m2.Close()
	st2, err := m2.Submit(text, Options{Engine: linkclust.EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	if st2 = waitState(t, m2, st2.ID); st2.State != StateDone {
		t.Fatalf("serial job %s (%s)", st2.State, st2.Error)
	}
	if st.Result.MergesSHA256 != st2.Result.MergesSHA256 {
		t.Fatalf("spilled stream %s != serial stream %s",
			st.Result.MergesSHA256, st2.Result.MergesSHA256)
	}
}

func TestJobTimeout(t *testing.T) {
	m := NewManager(Config{Concurrency: 1})
	defer m.Close()

	st, err := m.Submit(graphText(t, 200, 8), Options{TimeoutMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	st = waitState(t, m, st.ID)
	if st.State != StateCanceled {
		t.Fatalf("timed-out job state = %s, want canceled", st.State)
	}
	rep, err := m.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Meta["error"], "deadline") {
		t.Fatalf("partial report error meta = %q, want deadline mention", rep.Meta["error"])
	}
}

func TestDrainCancelsAndLeaksNothing(t *testing.T) {
	base := runtime.NumGoroutine()
	m := NewManager(Config{Concurrency: 2, QueueDepth: 8})

	// Enough sizeable jobs that some are mid-flight and some still queued
	// when the drain lands.
	ids := []string{}
	for i := 0; i < 6; i++ {
		st, err := m.Submit(graphText(t, 150, uint64(10+i)), Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	time.Sleep(5 * time.Millisecond) // let workers pick something up
	m.Drain()

	if _, err := m.Submit(graphText(t, 10, 99), Options{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit error = %v, want ErrDraining", err)
	}

	for _, id := range ids {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone:
			// Finished before the drain landed — fine.
		case StateCanceled:
			rep, err := m.Report(id)
			if err != nil {
				t.Fatalf("canceled job %s lost its partial report: %v", id, err)
			}
			if rep.Meta["error"] == "" {
				t.Fatalf("canceled job %s report not error-tagged", id)
			}
		default:
			t.Fatalf("job %s left in state %s after drain", id, st.State)
		}
	}

	// Drain promises no goroutine outlives it (same contract as the par
	// pools; see internal/par/leak_test.go).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after drain: %d running, baseline %d",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}

	m.Drain() // idempotent
}

func TestGraphInterning(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	text := graphText(t, 30, 20)
	// Whitespace/comment variants must canonicalize to the same key.
	variant := append([]byte("# a comment\n\n"), text...)

	st1, err := m.Submit(text, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m.Submit(variant, Options{Algorithm: AlgoCoarse})
	if err != nil {
		t.Fatal(err)
	}
	if st1.GraphSHA != st2.GraphSHA {
		t.Fatalf("canonicalization failed: %s vs %s", st1.GraphSHA, st2.GraphSHA)
	}
	waitState(t, m, st1.ID)
	waitState(t, m, st2.ID)

	m.mu.Lock()
	j1, j2 := m.jobs[st1.ID], m.jobs[st2.ID]
	shared := j1.graph == j2.graph
	m.mu.Unlock()
	if !shared {
		t.Fatal("equal-content graphs were not interned to one shared instance")
	}
}
