package jobs

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"linkclust"
	"linkclust/internal/core"
	"linkclust/internal/persist"
)

// persister couples a Manager to an opened state directory: the job journal,
// the durable cache tier behind the in-memory LRU, graph blobs for re-running
// interrupted jobs, and sweep checkpoints. Every method is nil-receiver-safe
// so the manager's hot paths stay unconditional — a memory-only manager just
// carries a nil *persister.
//
// Failure policy (see DESIGN.md §11): the write side degrades, the read side
// treats corruption as a miss. The first journal append failure flips
// `degraded` and the daemon runs memory-only from then on — results are still
// computed and served, nothing new is promised durable. A failed cache-entry
// write is skipped individually (the memory tier still has it). A corrupt
// entry on read is counted, deleted, dropped from the manifest, and reported
// as a miss; it is never decoded.
type persister struct {
	dir     *persist.Dir
	journal *persist.Journal

	mu       sync.Mutex // guards manifest
	manifest *persist.Manifest

	degraded atomic.Bool

	mCorrupt    atomic.Int64 // entries that failed validation on read
	mWriteSkips atomic.Int64 // entry writes skipped after a write fault
}

// Entry names inside the shared cache/ directory. Pairs are keyed by the
// graph hash, results by the result key; the prefix keeps the two namespaces
// disjoint even though both are SHA-256 hex.
func pairsName(key [32]byte) string  { return "p-" + hex.EncodeToString(key[:]) }
func resultName(key [32]byte) string { return "r-" + hex.EncodeToString(key[:]) }

// openPersister opens the state directory, runs the janitor, and replays the
// journal. The returned records are the replay input for Manager.replay.
func openPersister(stateDir string) (*persister, []persist.Record, int64, error) {
	dir, err := persist.Open(stateDir)
	if err != nil {
		return nil, nil, 0, err
	}
	reclaimed, _ := dir.Janitor() // best-effort: leftovers cost bytes, not correctness
	journal, records, _, err := dir.OpenJournal()
	if err != nil {
		dir.Close()
		return nil, nil, 0, err
	}
	p := &persister{dir: dir, journal: journal, manifest: dir.LoadManifest()}
	return p, records, reclaimed, nil
}

func (p *persister) close() {
	if p == nil {
		return
	}
	p.journal.Close()
	p.dir.Close()
}

// enabled reports whether writes should still be attempted.
func (p *persister) enabled() bool { return p != nil && !p.degraded.Load() }

// isDegraded reports whether the write side gave up (journal fault).
func (p *persister) isDegraded() bool { return p != nil && p.degraded.Load() }

// append journals one record; the first failure degrades the persister to
// memory-only (the journal's own error is already sticky, this mirrors it so
// entry writes stop too — a cache entry no journal can reference is wasted
// I/O for interrupted-job recovery, though still valid as a cache).
func (p *persister) append(rec persist.Record) {
	if !p.enabled() {
		return
	}
	if err := p.journal.Append(rec); err != nil {
		p.degraded.Store(true)
	}
}

// saveCacheEntry writes one durable cache entry and indexes it in the
// manifest. An entry write failure is skipped (memory tier still serves); a
// manifest save failure leaves the entry invisible, which is the documented
// crash-window cost, not an error.
func (p *persister) saveCacheEntry(k persist.Kind, name string, payload []byte) {
	if !p.enabled() {
		return
	}
	if err := p.dir.WriteEntry(k, name, payload); err != nil {
		p.mWriteSkips.Add(1)
		return
	}
	p.mu.Lock()
	p.manifest.Entries[name] = int64(len(payload))
	p.dir.SaveManifest(p.manifest)
	p.mu.Unlock()
}

// loadCacheEntry returns a manifest-indexed entry's payload, or nil on any
// kind of miss. Corrupt entries are counted, removed, and de-indexed.
func (p *persister) loadCacheEntry(k persist.Kind, name string) []byte {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	_, indexed := p.manifest.Entries[name]
	p.mu.Unlock()
	if !indexed {
		return nil
	}
	payload, err := p.dir.ReadEntry(k, name)
	if err != nil {
		p.dropCacheEntry(k, name, err)
		return nil
	}
	return payload
}

// dropCacheEntry removes a bad entry and its manifest line.
func (p *persister) dropCacheEntry(k persist.Kind, name string, err error) {
	if errors.Is(err, persist.ErrCorrupt) {
		p.mCorrupt.Add(1)
	}
	p.dir.RemoveEntry(k, name)
	p.mu.Lock()
	delete(p.manifest.Entries, name)
	p.dir.SaveManifest(p.manifest)
	p.mu.Unlock()
}

// savePairs persists a pair list (in the similarity kernel's unsorted master
// order — the same order the memory tier stores) under the graph hash.
func (p *persister) savePairs(graphKey [32]byte, pl *core.PairList) {
	if !p.enabled() {
		return
	}
	var buf bytes.Buffer
	if err := core.WritePairList(&buf, pl); err != nil {
		return
	}
	p.saveCacheEntry(persist.EntryPairs, pairsName(graphKey), buf.Bytes())
}

// loadPairs returns the durable pair list for graphKey, or nil on a miss.
func (p *persister) loadPairs(graphKey [32]byte) *core.PairList {
	payload := p.loadCacheEntry(persist.EntryPairs, pairsName(graphKey))
	if payload == nil {
		return nil
	}
	pl, err := core.ReadPairList(bytes.NewReader(payload))
	if err != nil {
		// CRC passed but the codec refused: a format skew, not bit rot.
		// Same treatment — miss, drop, recompute.
		p.dropCacheEntry(persist.EntryPairs, pairsName(graphKey), persist.ErrCorrupt)
		return nil
	}
	return pl
}

// Result entry payload: a 4-byte little-endian JSON length, the Result JSON,
// then the serialized LCMG merge document.
func encodeResultPayload(res *Result, merges []byte) []byte {
	rj, _ := json.Marshal(res)
	payload := make([]byte, 4+len(rj)+len(merges))
	binary.LittleEndian.PutUint32(payload, uint32(len(rj)))
	copy(payload[4:], rj)
	copy(payload[4+len(rj):], merges)
	return payload
}

func decodeResultPayload(payload []byte) (*Result, []byte, error) {
	if len(payload) < 4 {
		return nil, nil, persist.ErrCorrupt
	}
	n := binary.LittleEndian.Uint32(payload)
	if uint64(n) > uint64(len(payload)-4) {
		return nil, nil, persist.ErrCorrupt
	}
	var res Result
	if err := json.Unmarshal(payload[4:4+n], &res); err != nil {
		return nil, nil, persist.ErrCorrupt
	}
	return &res, payload[4+n:], nil
}

// saveResult persists a finished, non-degraded result under its result key.
func (p *persister) saveResult(resultKey [32]byte, res *Result, merges []byte) {
	if !p.enabled() {
		return
	}
	p.saveCacheEntry(persist.EntryResult, resultName(resultKey), encodeResultPayload(res, merges))
}

// loadResult returns the durable result for resultKey, or ok=false on a miss.
func (p *persister) loadResult(resultKey [32]byte) (*Result, []byte, bool) {
	name := resultName(resultKey)
	payload := p.loadCacheEntry(persist.EntryResult, name)
	if payload == nil {
		return nil, nil, false
	}
	res, merges, err := decodeResultPayload(payload)
	if err != nil {
		p.dropCacheEntry(persist.EntryResult, name, persist.ErrCorrupt)
		return nil, nil, false
	}
	return res, merges, true
}

// ensureGraph persists the canonical serialization of g under its content
// hash (skipped if the blob already exists — content addressing makes the
// check a stat). The blob is what lets replay re-run an interrupted job.
func (p *persister) ensureGraph(graphKey [32]byte, g *linkclust.Graph) {
	if !p.enabled() {
		return
	}
	name := hex.EncodeToString(graphKey[:])
	if _, err := os.Stat(p.dir.EntryPath(persist.EntryGraph, name)); err == nil {
		return
	}
	var canon bytes.Buffer
	if err := linkclust.WriteGraph(&canon, g); err != nil {
		return
	}
	if err := p.dir.WriteEntry(persist.EntryGraph, name, canon.Bytes()); err != nil {
		p.mWriteSkips.Add(1)
	}
}

// loadGraph reads and parses the graph blob for a hex hash.
func (p *persister) loadGraph(shaHex string) (*linkclust.Graph, error) {
	payload, err := p.dir.ReadEntry(persist.EntryGraph, shaHex)
	if err != nil {
		if errors.Is(err, persist.ErrCorrupt) {
			p.mCorrupt.Add(1)
			p.dir.RemoveEntry(persist.EntryGraph, shaHex)
		}
		return nil, err
	}
	g, err := linkclust.ReadGraph(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", persist.ErrCorrupt, err)
	}
	return g, nil
}

// saveCkpt atomically replaces the job's durable sweep checkpoint and
// reports whether it is on disk (the caller journals the ckpt record only
// then, so a journaled checkpoint always exists).
func (p *persister) saveCkpt(jobID string, graphKey [32]byte, st *core.SweepState) bool {
	if !p.enabled() {
		return false
	}
	if err := p.dir.WriteEntry(persist.EntryCkpt, jobID, persist.EncodeSweepState(graphKey, st)); err != nil {
		p.mWriteSkips.Add(1)
		return false
	}
	return true
}

// loadCkpt returns the job's checkpoint if it exists, validates, and is
// bound to the same graph; anything else is nil (re-run from scratch, which
// is always correct).
func (p *persister) loadCkpt(jobID string, graphKey [32]byte) *core.SweepState {
	if p == nil {
		return nil
	}
	payload, err := p.dir.ReadEntry(persist.EntryCkpt, jobID)
	if err != nil {
		if errors.Is(err, persist.ErrCorrupt) {
			p.mCorrupt.Add(1)
			p.dir.RemoveEntry(persist.EntryCkpt, jobID)
		}
		return nil
	}
	sha, st, err := persist.DecodeSweepState(payload)
	if err != nil || sha != graphKey {
		p.mCorrupt.Add(1)
		p.dir.RemoveEntry(persist.EntryCkpt, jobID)
		return nil
	}
	return st
}

// removeCkpt deletes the job's checkpoint once it has a journaled terminal
// record (drain-interrupted jobs keep theirs — that is the resume path).
func (p *persister) removeCkpt(jobID string) {
	if p == nil {
		return
	}
	p.dir.RemoveEntry(persist.EntryCkpt, jobID)
}

// --- Manager-side replay ---------------------------------------------------

// replay reconstructs the job table from the journal: completed jobs are
// re-served under their original ids, terminal failures are restored as
// records, and interrupted jobs (no terminal record — including jobs a drain
// cancelled) are re-enqueued under their original ids, resuming from their
// deepest valid checkpoint. Runs on its own goroutine; submissions are
// rejected with ErrRecovering until it finishes.
func (m *Manager) replay(records []persist.Record) {
	defer func() {
		m.readyFlag.Store(true)
		close(m.replayDone)
	}()
	type rjob struct {
		submit   persist.Record
		terminal *persist.Record
	}
	byID := make(map[string]*rjob)
	var order []string
	var maxSeq int64
	for i := range records {
		rec := records[i]
		switch rec.Op {
		case persist.OpSubmit:
			if _, dup := byID[rec.ID]; dup {
				continue
			}
			byID[rec.ID] = &rjob{submit: rec}
			order = append(order, rec.ID)
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		case persist.OpDone, persist.OpFail, persist.OpCancel:
			if e := byID[rec.ID]; e != nil {
				e.terminal = &records[i]
			}
		}
	}
	m.mu.Lock()
	if maxSeq > m.seq {
		m.seq = maxSeq
	}
	m.mu.Unlock()
	for _, id := range order {
		m.replayJob(id, byID[id].submit, byID[id].terminal)
	}
}

// serveRecovered completes j from its durable result entry, reporting whether
// the entry existed and validated. Callers hold no locks.
func (m *Manager) serveRecovered(j *Job, at time.Time) bool {
	res, merges, ok := m.store.loadResult(j.resultKey)
	if !ok {
		return false
	}
	j.State, j.Cached = StateDone, true
	j.StartedAt, j.FinishedAt = at, at
	j.Result, j.merges = res, merges
	rec := linkclust.NewRecorder()
	rec.SetMeta("job", j.ID)
	rec.SetMeta("cache", "recovered")
	rec.SetMeta("algorithm", string(j.Options.Algorithm))
	j.report = rec.Report()
	m.cache.putResult(&resultEntry{key: j.resultKey, result: *res, merges: merges})
	return true
}

// replayJob restores one journaled job. Any malformed or unrecoverable input
// degrades toward "re-run" and finally toward a failed record — never toward
// a replay abort.
func (m *Manager) replayJob(id string, submit persist.Record, terminal *persist.Record) {
	var opts Options
	if json.Unmarshal(submit.Options, &opts) != nil {
		return
	}
	opts, err := opts.normalize()
	if err != nil {
		return
	}
	keyBytes, err := hex.DecodeString(submit.GraphSHA)
	if err != nil || len(keyBytes) != 32 {
		return
	}
	var graphKey [32]byte
	copy(graphKey[:], keyBytes)

	j := &Job{
		ID:         id,
		Options:    opts,
		GraphSHA:   submit.GraphSHA,
		EnqueuedAt: time.UnixMilli(submit.AtUnixMS),
		graphKey:   graphKey,
		resultKey:  opts.resultKey(graphKey),
	}
	if submit.IdemKey != "" {
		m.mu.Lock()
		m.idem[submit.IdemKey] = id
		m.mu.Unlock()
	}

	rerun := true
	if terminal != nil {
		at := time.UnixMilli(terminal.AtUnixMS)
		switch terminal.Op {
		case persist.OpFail:
			j.State, j.Err, j.FinishedAt, rerun = StateFailed, terminal.Err, at, false
		case persist.OpCancel:
			j.State, j.Err, j.FinishedAt, rerun = StateCanceled, terminal.Err, at, false
		case persist.OpDone:
			// Serve the recorded result under the same id — if its durable
			// entry still validates. A corrupt or missing entry demotes the
			// job to interrupted: it re-runs, and determinism guarantees the
			// recompute is bitwise what the lost entry held.
			rerun = !m.serveRecovered(j, at)
		}
	}
	if rerun && terminal == nil {
		// Crash window between the durable result write and its done record:
		// the entry is content-addressed and CRC-validated, so if it exists it
		// is exactly what a re-run would recompute — serve it directly.
		rerun = !m.serveRecovered(j, time.UnixMilli(submit.AtUnixMS))
	}
	if rerun {
		g, err := m.store.loadGraph(submit.GraphSHA)
		if err != nil {
			j.State = StateFailed
			j.Err = fmt.Sprintf("jobs: graph unavailable after restart: %v", err)
			j.FinishedAt = time.Now()
		} else {
			j.State = StateQueued
			j.resume = m.store.loadCkpt(id, graphKey)
			m.mu.Lock()
			j.graph = m.internGraphLocked(graphKey, g)
			m.mu.Unlock()
		}
	}

	m.mu.Lock()
	m.retainLocked(j)
	m.mu.Unlock()
	if j.State != StateQueued {
		return
	}
	select {
	case m.queue <- j:
		m.mRecovered.Add(1)
	case <-m.baseCtx.Done():
		m.mu.Lock()
		j.State = StateCanceled
		j.Err = ErrDraining.Error()
		j.FinishedAt = time.Now()
		m.mu.Unlock()
	}
}
