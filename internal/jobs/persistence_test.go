package jobs

import (
	"testing"
	"time"

	"linkclust"
	"linkclust/internal/fault"
)

// In-process recovery tests for the persistent manager: journal replay,
// idempotency across restarts, the durable cache tier behind the memory LRU,
// and journal-fault degradation to memory-only service. The subprocess
// kill-and-restart differential harness lives in cmd/linkclustd.

func openPersistent(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewPersistentManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !m.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("manager never became ready")
		}
		time.Sleep(time.Millisecond)
	}
	return m
}

func resetJobFaults(t *testing.T) {
	t.Helper()
	fault.Reset()
	t.Cleanup(fault.Reset)
}

// TestPersistentRecoveryServesCompleted restarts against a state dir holding
// one completed job: the journal replay must re-serve the result under the
// original job id — same merges hash, no recompute — and the idempotency key
// must still map to it.
func TestPersistentRecoveryServesCompleted(t *testing.T) {
	resetJobFaults(t)
	dir := t.TempDir()
	text := graphText(t, 60, 201)

	m1 := openPersistent(t, Config{Concurrency: 2, StateDir: dir})
	st, err := m1.SubmitIdem(text, Options{}, "idem-a")
	if err != nil {
		t.Fatal(err)
	}
	st = waitState(t, m1, st.ID)
	if st.State != StateDone {
		t.Fatalf("job %s (%s)", st.State, st.Error)
	}
	wantSHA := st.Result.MergesSHA256
	m1.Close()

	m2 := openPersistent(t, Config{Concurrency: 2, StateDir: dir})
	defer m2.Close()
	got, err := m2.Status(st.ID)
	if err != nil {
		t.Fatalf("recovered job missing: %v", err)
	}
	if got.State != StateDone || !got.Cached || got.Result.MergesSHA256 != wantSHA {
		t.Fatalf("recovered job = %s cached=%v sha=%s, want done cached %s",
			got.State, got.Cached, got.Result.MergesSHA256, wantSHA)
	}
	if _, err := m2.Merges(st.ID); err != nil {
		t.Fatalf("recovered merges unavailable: %v", err)
	}

	// The idempotency key survived the restart and maps to the original job.
	again, err := m2.SubmitIdem(text, Options{}, "idem-a")
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != st.ID {
		t.Fatalf("idempotent resubmit returned %s, want original %s", again.ID, st.ID)
	}

	mt := m2.Metrics()
	if mt.JournalReplayed < 3 { // submit + start + done
		t.Fatalf("journal_records_replayed = %d, want >= 3", mt.JournalReplayed)
	}
	if mt.JobsRecovered != 0 {
		t.Fatalf("jobs_recovered = %d for a completed job, want 0 (served, not re-run)", mt.JobsRecovered)
	}
}

// TestPersistentRecoveryRerunsInterrupted drains mid-job (which journals no
// terminal record — the job is interrupted, not cancelled) and restarts: the
// replay must re-enqueue the job under its id and finish it with the same
// merges hash an uninterrupted run produces.
func TestPersistentRecoveryRerunsInterrupted(t *testing.T) {
	resetJobFaults(t)
	dir := t.TempDir()
	text := graphText(t, 300, 202)

	// Control hash from a memory-only manager.
	mc := NewManager(Config{Concurrency: 2})
	cst, err := mc.Submit(text, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cst = waitState(t, mc, cst.ID)
	if cst.State != StateDone {
		t.Fatalf("control job %s (%s)", cst.State, cst.Error)
	}
	wantSHA := cst.Result.MergesSHA256
	mc.Close()

	m1 := openPersistent(t, Config{Concurrency: 1, StateDir: dir, CheckpointOps: 1})
	st, err := m1.Submit(text, Options{Engine: linkclust.EngineParallel, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m1.Close() // drain cancels the in-flight job without a terminal record

	m2 := openPersistent(t, Config{Concurrency: 1, StateDir: dir, CheckpointOps: 1})
	defer m2.Close()
	got := waitState(t, m2, st.ID)
	if got.State != StateDone {
		t.Fatalf("re-run job %s (%s)", got.State, got.Error)
	}
	if got.Result.MergesSHA256 != wantSHA {
		t.Fatalf("re-run merges sha %s, control %s", got.Result.MergesSHA256, wantSHA)
	}
	if mt := m2.Metrics(); mt.JobsRecovered < 1 {
		t.Fatalf("jobs_recovered = %d, want >= 1", mt.JobsRecovered)
	}
}

// TestPersistentDiskCacheTiers exercises both durable cache sides across a
// restart: a result evicted from the memory LRU is promoted back from disk,
// and a pair list computed in the previous process serves a new algorithm's
// run without a similarity recompute.
func TestPersistentDiskCacheTiers(t *testing.T) {
	resetJobFaults(t)
	dir := t.TempDir()
	textA := graphText(t, 60, 204)
	textB := graphText(t, 60, 205)

	m1 := openPersistent(t, Config{Concurrency: 1, StateDir: dir})
	stA, err := m1.Submit(textA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stA = waitState(t, m1, stA.ID)
	if stA.State != StateDone {
		t.Fatalf("job A %s (%s)", stA.State, stA.Error)
	}
	m1.Close()

	// CacheEntries=1: B's completion evicts A's replayed result from the
	// memory tier, so the resubmission of A must come from disk.
	m2 := openPersistent(t, Config{Concurrency: 1, StateDir: dir, CacheEntries: 1})
	defer m2.Close()
	stB, err := m2.Submit(textB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stB = waitState(t, m2, stB.ID); stB.State != StateDone {
		t.Fatalf("job B %s (%s)", stB.State, stB.Error)
	}
	hitA, err := m2.Submit(textA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hitA.State != StateDone || !hitA.Cached {
		t.Fatalf("disk-tier resubmit = %s cached=%v, want done cached", hitA.State, hitA.Cached)
	}
	if hitA.Result.MergesSHA256 != stA.Result.MergesSHA256 {
		t.Fatal("disk-tier result differs from the original run")
	}
	if mt := m2.Metrics(); mt.DiskHitResult < 1 {
		t.Fatalf("disk_cache_hits_result = %d, want >= 1", mt.DiskHitResult)
	}

	// Pair-list tier: a coarse run over graph A has a fresh result key but the
	// same graph hash — its similarity phase must be served by the pair list
	// the previous process persisted.
	stC, err := m2.Submit(textA, Options{Algorithm: AlgoCoarse})
	if err != nil {
		t.Fatal(err)
	}
	if stC = waitState(t, m2, stC.ID); stC.State != StateDone {
		t.Fatalf("coarse job %s (%s)", stC.State, stC.Error)
	}
	if !stC.PairsHit {
		t.Fatal("coarse run recomputed similarity despite the durable pair list")
	}
	if mt := m2.Metrics(); mt.DiskHitPairs < 1 {
		t.Fatalf("disk_cache_hits_pairs = %d, want >= 1", mt.DiskHitPairs)
	}
}

// TestPersistentDegradedJournal arms a journal write fault: the first append
// fails, the manager flips to memory-only — jobs still run and serve — and
// nothing new is promised durable, so a restart finds an empty journal.
func TestPersistentDegradedJournal(t *testing.T) {
	resetJobFaults(t)
	dir := t.TempDir()
	text := graphText(t, 60, 206)

	m1 := openPersistent(t, Config{Concurrency: 1, StateDir: dir})
	fault.Arm(fault.JournalAppend, 1, nil)
	st, err := m1.SubmitIdem(text, Options{}, "")
	if err != nil {
		t.Fatalf("submit under journal fault: %v", err)
	}
	st = waitState(t, m1, st.ID)
	if st.State != StateDone {
		t.Fatalf("degraded job %s (%s)", st.State, st.Error)
	}
	if mt := m1.Metrics(); mt.PersistDegraded != 1 {
		t.Fatalf("persist_degraded = %d, want 1", mt.PersistDegraded)
	}
	// A second job through the degraded manager still works.
	st2, err := m1.Submit(graphText(t, 60, 207), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2 = waitState(t, m1, st2.ID); st2.State != StateDone {
		t.Fatalf("second degraded job %s (%s)", st2.State, st2.Error)
	}
	m1.Close()
	fault.Reset()

	m2 := openPersistent(t, Config{Concurrency: 1, StateDir: dir})
	defer m2.Close()
	if _, err := m2.Status(st.ID); err == nil {
		t.Fatal("degraded-mode job resurrected after restart — it was never journaled")
	}
	if mt := m2.Metrics(); mt.JournalReplayed != 0 {
		t.Fatalf("journal_records_replayed = %d after degraded run, want 0", mt.JournalReplayed)
	}
}
