// Package metrics provides ground-truth-free quality measures for node
// covers produced by link clustering: edge coverage, per-community
// conductance, and the extended (overlapping) modularity EQ of Shen et al.
// (2009). Together with partition density (internal/dendro) and overlapping
// NMI (internal/onmi, which needs ground truth) they form the evaluation
// toolkit for recovered communities.
package metrics

import (
	"errors"

	"linkclust/internal/graph"
	"linkclust/internal/onmi"
)

// Coverage returns the fraction of edges whose endpoints share at least one
// community of the cover — 1 when every edge is intra-community. Graphs
// without edges score 0.
func Coverage(g *graph.Graph, cover onmi.Cover) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	member := membershipSets(g.NumVertices(), cover)
	covered := 0
	for _, e := range g.Edges() {
		if shareCommunity(member[e.U], member[e.V]) {
			covered++
		}
	}
	return float64(covered) / float64(g.NumEdges())
}

// Conductance returns the weighted conductance of one node set S:
// cut(S) / min(vol(S), vol(V∖S)), where vol is the sum of incident edge
// weights and cut the weight crossing the boundary. Lower is better; a set
// with no boundary scores 0. Degenerate sets (empty volume on either side)
// score 1.
func Conductance(g *graph.Graph, community []int32) float64 {
	in := make(map[int32]bool, len(community))
	for _, v := range community {
		in[v] = true
	}
	var cut, volIn, volOut float64
	for _, e := range g.Edges() {
		switch {
		case in[e.U] && in[e.V]:
			volIn += 2 * e.Weight
		case !in[e.U] && !in[e.V]:
			volOut += 2 * e.Weight
		default:
			cut += e.Weight
			volIn += e.Weight
			volOut += e.Weight
		}
	}
	min := volIn
	if volOut < min {
		min = volOut
	}
	if min == 0 {
		if cut == 0 {
			return 0
		}
		return 1
	}
	return cut / min
}

// MeanConductance averages Conductance over the cover's communities.
func MeanConductance(g *graph.Graph, cover onmi.Cover) float64 {
	if len(cover) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, c := range cover {
		if len(c) == 0 {
			continue
		}
		sum += Conductance(g, c)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// OverlapModularity computes the extended modularity EQ (Shen et al. 2009)
// of a cover on a weighted graph:
//
//	EQ = 1/(2m) Σ_c Σ_{u,v ∈ c} (A_uv − k_u·k_v/(2m)) / (O_u·O_v),
//
// where m is the total edge weight, k the weighted degree, and O_v the
// number of communities containing v. Nodes outside every community are
// skipped (they contribute no pairs). EQ reduces to Newman modularity for
// non-overlapping partitions. An error is returned when the graph has no
// edges or the cover is empty.
func OverlapModularity(g *graph.Graph, cover onmi.Cover) (float64, error) {
	if g.NumEdges() == 0 {
		return 0, errors.New("metrics: graph has no edges")
	}
	nonEmpty := 0
	for _, c := range cover {
		if len(c) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		return 0, errors.New("metrics: cover is empty")
	}

	n := g.NumVertices()
	degree := make([]float64, n)
	var m2 float64 // 2m
	for _, e := range g.Edges() {
		degree[e.U] += e.Weight
		degree[e.V] += e.Weight
		m2 += 2 * e.Weight
	}
	memberCount := make([]float64, n)
	for _, c := range cover {
		seen := make(map[int32]bool, len(c))
		for _, v := range c {
			if !seen[v] {
				seen[v] = true
				memberCount[v]++
			}
		}
	}

	var eq float64
	for _, c := range cover {
		// Distinct members only.
		seen := make(map[int32]bool, len(c))
		members := make([]int32, 0, len(c))
		for _, v := range c {
			if !seen[v] {
				seen[v] = true
				members = append(members, v)
			}
		}
		for i := 0; i < len(members); i++ {
			u := members[i]
			for j := 0; j < len(members); j++ {
				v := members[j]
				// u == v stays in the sum: A_uu is 0 (no self-loops)
				// but the null model keeps k_u²/2m, which is what makes
				// the all-in-one cover score exactly 0, as in Newman
				// modularity.
				a := 0.0
				if u != v {
					a = g.Weight(int(u), int(v))
				}
				eq += (a - degree[u]*degree[v]/m2) / (memberCount[u] * memberCount[v])
			}
		}
	}
	return eq / m2, nil
}

// membershipSets returns, for every vertex, the set of community indices
// containing it.
func membershipSets(n int, cover onmi.Cover) []map[int]bool {
	out := make([]map[int]bool, n)
	for ci, c := range cover {
		for _, v := range c {
			if v < 0 || int(v) >= n {
				continue
			}
			if out[v] == nil {
				out[v] = make(map[int]bool, 2)
			}
			out[v][ci] = true
		}
	}
	return out
}

func shareCommunity(a, b map[int]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for c := range a {
		if b[c] {
			return true
		}
	}
	return false
}
