package metrics

import (
	"math"
	"testing"

	"linkclust/internal/graph"
	"linkclust/internal/onmi"
)

// twoCliques returns two K4s joined by a single bridge edge, with the
// natural two-community cover.
func twoCliques() (*graph.Graph, onmi.Cover) {
	b := graph.NewBuilder(8)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.MustAddEdge(u, v, 1)
		}
	}
	for u := 4; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			b.MustAddEdge(u, v, 1)
		}
	}
	b.MustAddEdge(3, 4, 1) // bridge
	return b.Build(nil), onmi.Cover{{0, 1, 2, 3}, {4, 5, 6, 7}}
}

func TestCoverage(t *testing.T) {
	g, cover := twoCliques()
	// 12 of 13 edges are intra-community.
	if got := Coverage(g, cover); math.Abs(got-12.0/13) > 1e-12 {
		t.Fatalf("coverage = %v, want 12/13", got)
	}
	// A cover with everything covers all edges.
	all := onmi.Cover{{0, 1, 2, 3, 4, 5, 6, 7}}
	if got := Coverage(g, all); got != 1 {
		t.Fatalf("full cover coverage = %v", got)
	}
	// Empty graph.
	if got := Coverage(graph.NewBuilder(3).Build(nil), cover); got != 0 {
		t.Fatalf("empty graph coverage = %v", got)
	}
}

func TestCoverageWithOverlap(t *testing.T) {
	// Path a-b-c with b in both communities: both edges covered.
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	g := b.Build(nil)
	cover := onmi.Cover{{0, 1}, {1, 2}}
	if got := Coverage(g, cover); got != 1 {
		t.Fatalf("overlap coverage = %v, want 1", got)
	}
}

func TestConductance(t *testing.T) {
	g, cover := twoCliques()
	// Each clique: cut 1, vol_in = 2*6 + 1 = 13.
	want := 1.0 / 13
	for _, c := range cover {
		if got := Conductance(g, c); math.Abs(got-want) > 1e-12 {
			t.Fatalf("clique conductance = %v, want %v", got, want)
		}
	}
	// The whole graph has no boundary.
	if got := Conductance(g, []int32{0, 1, 2, 3, 4, 5, 6, 7}); got != 0 {
		t.Fatalf("whole-graph conductance = %v, want 0", got)
	}
	// A random split cuts much more.
	if got := Conductance(g, []int32{0, 4}); got < 5*want {
		t.Fatalf("bad split conductance %v not clearly worse than %v", got, want)
	}
}

func TestMeanConductance(t *testing.T) {
	g, cover := twoCliques()
	mc := MeanConductance(g, cover)
	if math.Abs(mc-1.0/13) > 1e-12 {
		t.Fatalf("mean conductance = %v", mc)
	}
	if MeanConductance(g, nil) != 0 {
		t.Fatal("empty cover mean conductance != 0")
	}
	if MeanConductance(g, onmi.Cover{{}}) != 0 {
		t.Fatal("cover of empty communities != 0")
	}
}

func TestOverlapModularityPartitionCase(t *testing.T) {
	g, cover := twoCliques()
	eq, err := OverlapModularity(g, cover)
	if err != nil {
		t.Fatal(err)
	}
	// For a non-overlapping partition EQ is Newman modularity; the
	// two-clique split scores high.
	if eq < 0.3 {
		t.Fatalf("two-clique EQ = %v, expected > 0.3", eq)
	}
	// One community holding everything scores 0 (A sums to 2m and the
	// null model sums to 2m).
	all := onmi.Cover{{0, 1, 2, 3, 4, 5, 6, 7}}
	eqAll, err := OverlapModularity(g, all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eqAll) > 1e-9 {
		t.Fatalf("trivial cover EQ = %v, want 0", eqAll)
	}
	if eq <= eqAll {
		t.Fatalf("good cover (%v) not better than trivial (%v)", eq, eqAll)
	}
}

func TestOverlapModularityDiscountsSharedNodes(t *testing.T) {
	// Two triangles sharing node 2.
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(0, 2, 1)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(2, 3, 1)
	b.MustAddEdge(2, 4, 1)
	b.MustAddEdge(3, 4, 1)
	g := b.Build(nil)
	overlap := onmi.Cover{{0, 1, 2}, {2, 3, 4}}
	eq, err := OverlapModularity(g, overlap)
	if err != nil {
		t.Fatal(err)
	}
	if eq <= 0 {
		t.Fatalf("overlapping triangles EQ = %v, want positive", eq)
	}
	// Moving the shared node into only one community still scores, but
	// the overlapping cover must beat a deliberately wrong cover.
	wrong := onmi.Cover{{0, 3}, {1, 4}, {2}}
	eqWrong, err := OverlapModularity(g, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if eq <= eqWrong {
		t.Fatalf("overlap cover (%v) not better than wrong cover (%v)", eq, eqWrong)
	}
}

func TestOverlapModularityErrors(t *testing.T) {
	g := graph.NewBuilder(3).Build(nil)
	if _, err := OverlapModularity(g, onmi.Cover{{0}}); err == nil {
		t.Fatal("edgeless graph accepted")
	}
	g2, _ := twoCliques()
	if _, err := OverlapModularity(g2, nil); err == nil {
		t.Fatal("empty cover accepted")
	}
	if _, err := OverlapModularity(g2, onmi.Cover{{}}); err == nil {
		t.Fatal("cover of empty communities accepted")
	}
}
