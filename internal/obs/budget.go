package obs

import (
	"runtime"

	"linkclust/internal/fault"
)

// MemBudget is a soft memory budget checked at phase boundaries: it captures
// a runtime.MemStats baseline at construction and compares the live-heap
// growth against the limit on each Exceeded call. "Soft" means nothing is
// enforced between checks — a phase may overshoot and the overshoot is only
// observed at its boundary — which is the usable contract for this pipeline:
// allocation happens in a few large, phase-aligned steps (pair list, CSR
// arenas, chain snapshots), so the boundary after the initialization phase
// is exactly where degrading to the coarse algorithm still saves the
// sweep-phase allocations.
//
// A nil *MemBudget is valid and never exceeded, mirroring the package's nil
// *Recorder convention.
type MemBudget struct {
	limit     int64
	baseHeap  uint64
	lastDelta int64
}

// NewMemBudget returns a budget of limitBytes of live-heap growth measured
// from now. limitBytes <= 0 returns nil — no budget, never exceeded.
func NewMemBudget(limitBytes int64) *MemBudget {
	if limitBytes <= 0 {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &MemBudget{limit: limitBytes, baseHeap: ms.HeapAlloc}
}

// Exceeded reports whether the live heap has grown past the budget since
// construction. It reads runtime.MemStats (microseconds, not free — call at
// phase boundaries, never in hot loops) and records the observed delta for
// Used. The fault.MemBreach injection point is checked first: a firing hit
// reports a breach without the heap actually having grown, which is how the
// degradation path is tested deterministically.
func (b *MemBudget) Exceeded() bool {
	if b == nil {
		return false
	}
	if fault.Hit(fault.MemBreach) {
		b.lastDelta = b.limit + 1
		return true
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.lastDelta = int64(ms.HeapAlloc) - int64(b.baseHeap)
	return b.lastDelta > b.limit
}

// Used returns the live-heap delta observed by the last Exceeded call (0
// before the first call, or on a nil budget). Negative values mean a GC
// freed more than the run retained.
func (b *MemBudget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.lastDelta
}

// Limit returns the budget in bytes (0 on a nil budget).
func (b *MemBudget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}
