package obs

import (
	"runtime/metrics"

	"linkclust/internal/fault"
)

// liveHeapMetric is the runtime/metrics key the budget machinery samples:
// bytes occupied by live heap objects (plus dead objects not yet swept) —
// the runtime/metrics counterpart of MemStats.HeapAlloc. Unlike
// runtime.ReadMemStats, reading it does not stop the world: metrics.Read
// takes a snapshot of runtime-maintained counters, costing well under a
// microsecond (see BenchmarkMemBudgetExceeded), so it is safe on paths hot
// enough to run per job admission, not just at phase boundaries.
const liveHeapMetric = "/memory/classes/heap/objects:bytes"

// LiveHeapBytes returns the current live-heap size without stopping the
// world. It is safe to call concurrently from any goroutine; services use
// it for admission checks against an absolute heap ceiling (MemBudget
// measures *growth* relative to its construction instead).
func LiveHeapBytes() uint64 {
	s := [1]metrics.Sample{{Name: liveHeapMetric}}
	metrics.Read(s[:])
	return s[0].Value.Uint64()
}

// MemBudget is a soft memory budget checked at phase boundaries: it captures
// a live-heap baseline at construction and compares the live-heap growth
// against the limit on each Exceeded call. "Soft" means nothing is enforced
// between checks — a phase may overshoot and the overshoot is only observed
// at its boundary — which is the usable contract for this pipeline:
// allocation happens in a few large, phase-aligned steps (pair list, CSR
// arenas, chain snapshots), so the boundary after the initialization phase
// is exactly where degrading to the coarse algorithm still saves the
// sweep-phase allocations.
//
// The heap is sampled through runtime/metrics, not runtime.ReadMemStats:
// ReadMemStats stops the world, which made every budget check a global
// pause of every running job — unacceptable once a daemon calls Exceeded
// at each admission. The runtime/metrics value may lag allocations by a
// per-P cache flush, a tolerance the soft contract already absorbs.
//
// A nil *MemBudget is valid and never exceeded, mirroring the package's nil
// *Recorder convention. A MemBudget is owned by one run: Exceeded and Used
// are not safe for concurrent use (construct one budget per run or per
// admission instead — construction is as cheap as a check).
type MemBudget struct {
	limit     int64
	baseHeap  uint64
	lastDelta int64
	sample    [1]metrics.Sample
}

// NewMemBudget returns a budget of limitBytes of live-heap growth measured
// from now. limitBytes <= 0 returns nil — no budget, never exceeded.
func NewMemBudget(limitBytes int64) *MemBudget {
	if limitBytes <= 0 {
		return nil
	}
	b := &MemBudget{limit: limitBytes}
	b.sample[0].Name = liveHeapMetric
	metrics.Read(b.sample[:])
	b.baseHeap = b.sample[0].Value.Uint64()
	return b
}

// Exceeded reports whether the live heap has grown past the budget since
// construction, recording the observed delta for Used. The read is a
// stop-the-world-free runtime/metrics sample costing well under a
// microsecond, cheap enough for per-job admission checks. The
// fault.MemBreach injection point is checked first: a firing hit reports a
// breach without the heap actually having grown, which is how the
// degradation path is tested deterministically.
func (b *MemBudget) Exceeded() bool {
	if b == nil {
		return false
	}
	if fault.Hit(fault.MemBreach) {
		b.lastDelta = b.limit + 1
		return true
	}
	metrics.Read(b.sample[:])
	b.lastDelta = int64(b.sample[0].Value.Uint64()) - int64(b.baseHeap)
	return b.lastDelta > b.limit
}

// Used returns the live-heap delta observed by the last Exceeded call (0
// before the first call, or on a nil budget). Negative values mean a GC
// freed more than the run retained.
func (b *MemBudget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.lastDelta
}

// Limit returns the budget in bytes (0 on a nil budget).
func (b *MemBudget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}
