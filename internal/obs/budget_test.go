package obs

import (
	"testing"
	"time"
)

func TestMemBudgetNilNeverExceeded(t *testing.T) {
	var b *MemBudget
	if b.Exceeded() {
		t.Fatal("nil budget exceeded")
	}
	if b.Used() != 0 || b.Limit() != 0 {
		t.Fatalf("nil budget Used=%d Limit=%d, want 0, 0", b.Used(), b.Limit())
	}
	if NewMemBudget(0) != nil || NewMemBudget(-1) != nil {
		t.Fatal("non-positive limit did not return the nil budget")
	}
}

func TestMemBudgetObservesGrowth(t *testing.T) {
	b := NewMemBudget(1 << 20) // 1 MiB of headroom
	if b.Exceeded() {
		t.Fatalf("fresh budget exceeded (delta %d)", b.Used())
	}
	// Retain well past the limit; the runtime/metrics live-heap view must
	// see the growth.
	ballast := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		ballast = append(ballast, make([]byte, 1<<20))
	}
	if !b.Exceeded() {
		t.Fatalf("64 MiB retained but budget not exceeded (delta %d)", b.Used())
	}
	if b.Used() <= b.Limit() {
		t.Fatalf("Used() = %d, want > limit %d", b.Used(), b.Limit())
	}
	_ = ballast
}

// TestMemBudgetCheckIsCheap guards the admission-path contract: one
// Exceeded call must stay far from the old ReadMemStats cost, whose
// stop-the-world made every check pause all running jobs. The
// runtime/metrics read is lock-light and costs well under a microsecond;
// the assertion uses a 20µs ceiling per call (averaged over a batch) so
// race-instrumented and heavily loaded CI runners don't flake, while still
// catching any reintroduction of a stop-the-world read (tens to hundreds
// of µs on a busy heap).
func TestMemBudgetCheckIsCheap(t *testing.T) {
	b := NewMemBudget(1 << 40)
	const n = 4096
	start := time.Now()
	for i := 0; i < n; i++ {
		b.Exceeded()
	}
	per := time.Since(start) / n
	t.Logf("MemBudget.Exceeded: %v per call", per)
	if per > 20*time.Microsecond {
		t.Fatalf("MemBudget.Exceeded costs %v per call, want well under 20µs — did a stop-the-world read come back?", per)
	}
}

// BenchmarkMemBudgetExceeded measures one admission check. The daemon calls
// this per job submission; the target is <1µs per op.
func BenchmarkMemBudgetExceeded(b *testing.B) {
	budget := NewMemBudget(1 << 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		budget.Exceeded()
	}
}

// BenchmarkLiveHeapBytes measures the absolute-heap read used by service
// admission control.
func BenchmarkLiveHeapBytes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LiveHeapBytes()
	}
}
