// Package obs is the pipeline's observability layer: monotonic, nestable
// phase timers, named counters, and memory-statistics deltas, collected by a
// Recorder and serialized as a RunReport. Every pipeline entry point accepts
// an optional *Recorder; a nil Recorder is valid and turns every call into a
// cheap no-op, so instrumented code paths cost nothing measurable when
// observability is off.
//
// Phases are recorded by the coordinating goroutine and nest lexically:
//
//	end := rec.Phase("sweep")
//	defer end()
//	...
//	endSort := rec.Phase("sort") // recorded as "sweep/sort"
//	pl.Sort()
//	endSort()
//
// Repeated phases with the same path aggregate (wall time sums, the
// occurrence count increments), so per-chunk timers stay bounded no matter
// how many chunks a run processes. Counters (Add) are safe to call from any
// goroutine; Phase/end pairs must be issued by one goroutine at a time —
// the pipeline's worker fan-outs happen *inside* phases, never across them.
package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Recorder accumulates phase timings, counters and metadata for one pipeline
// run. The zero value is not usable; construct with New. All methods are
// safe on a nil receiver (they do nothing), which is how disabled
// instrumentation is expressed.
type Recorder struct {
	mu       sync.Mutex
	started  time.Time
	stack    []string
	phases   []phaseAgg
	byPath   map[string]int
	counters map[string]int64
	meta     map[string]string
	memStart runtime.MemStats
}

type phaseAgg struct {
	path  string
	depth int
	wall  time.Duration
	count int64
}

// New returns a Recorder with the run clock started and the baseline memory
// statistics captured.
func New() *Recorder {
	r := &Recorder{
		byPath:   make(map[string]int),
		counters: make(map[string]int64),
		meta:     make(map[string]string),
		started:  time.Now(),
	}
	runtime.ReadMemStats(&r.memStart)
	return r
}

// noop is returned by Phase on a nil Recorder so disabled instrumentation
// allocates nothing.
var noop = func() {}

// Phase starts a timed phase and returns the function that ends it. Phases
// started before the returned end function runs are recorded as children
// (path segments joined with "/"). Ending out of order is tolerated: the
// end function closes every phase opened after its own.
func (r *Recorder) Phase(name string) (end func()) {
	if r == nil {
		return noop
	}
	start := time.Now()
	r.mu.Lock()
	r.stack = append(r.stack, name)
	path := strings.Join(r.stack, "/")
	depth := len(r.stack) - 1
	// Register at start so parents precede their children in the report
	// (children necessarily end first).
	agg, ok := r.byPath[path]
	if !ok {
		agg = len(r.phases)
		r.byPath[path] = agg
		r.phases = append(r.phases, phaseAgg{path: path, depth: depth})
	}
	r.mu.Unlock()
	return func() {
		wall := time.Since(start)
		r.mu.Lock()
		defer r.mu.Unlock()
		// Unwind to (and including) this phase's frame; tolerate an
		// already-unwound stack from an out-of-order end.
		for i := len(r.stack) - 1; i >= 0; i-- {
			if r.stack[i] == name && i == depth {
				r.stack = r.stack[:i]
				break
			}
			if i == 0 {
				return // frame already closed
			}
		}
		r.phases[agg].wall += wall
		r.phases[agg].count++
	}
}

// Add increments a named counter. Safe from any goroutine.
func (r *Recorder) Add(counter string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[counter] += delta
	r.mu.Unlock()
}

// Counter returns the current value of a named counter (0 if never added).
func (r *Recorder) Counter(counter string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[counter]
}

// SetMeta attaches a key/value annotation to the run (algorithm name,
// worker count, input sizes). Later calls overwrite earlier ones.
func (r *Recorder) SetMeta(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.meta[key] = value
	r.mu.Unlock()
}

// PhaseReport is one aggregated phase of a RunReport.
type PhaseReport struct {
	// Path is the "/"-joined nesting path, e.g. "cluster/sweep/sort".
	Path string `json:"path"`
	// Depth is the nesting depth (0 for top-level phases).
	Depth int `json:"depth"`
	// WallNS is the summed wall-clock time of all occurrences.
	WallNS int64 `json:"wall_ns"`
	// Count is the number of occurrences aggregated into WallNS.
	Count int64 `json:"count"`
}

// MemReport is the runtime.MemStats delta between New and Report.
type MemReport struct {
	// HeapAllocDeltaBytes is the live-heap growth over the run; negative
	// values (a GC freed more than the run retained) are reported as-is.
	HeapAllocDeltaBytes int64 `json:"heap_alloc_delta_bytes"`
	// TotalAllocDeltaBytes is the cumulative allocation volume of the run.
	TotalAllocDeltaBytes uint64 `json:"total_alloc_delta_bytes"`
	// MallocsDelta is the number of heap objects allocated during the run.
	MallocsDelta uint64 `json:"mallocs_delta"`
	// NumGCDelta is the number of garbage-collection cycles during the run.
	NumGCDelta uint32 `json:"num_gc_delta"`
}

// RunReport is the serializable summary of one instrumented run.
type RunReport struct {
	// Schema identifies the report format.
	Schema string `json:"schema"`
	// StartedAt is the wall-clock time New was called.
	StartedAt time.Time `json:"started_at"`
	// WallNS is the total run time from New to Report.
	WallNS int64 `json:"wall_ns"`
	// Phases lists aggregated phases in first-start order.
	Phases []PhaseReport `json:"phases"`
	// Counters holds the named counters (pairs processed, chain rewrites,
	// replica merges, ...).
	Counters map[string]int64 `json:"counters"`
	// Mem is the memory-statistics delta over the run.
	Mem MemReport `json:"mem"`
	// Meta holds free-form annotations set with SetMeta.
	Meta map[string]string `json:"meta,omitempty"`
}

// SchemaV1 is the RunReport schema identifier this package emits.
const SchemaV1 = "linkclust/run-report/v1"

// Report finalizes the run: it stops the run clock, captures the closing
// memory statistics, and returns the summary. The Recorder remains usable;
// a later Report reflects the longer run. Returns nil on a nil Recorder.
func (r *Recorder) Report() *RunReport {
	if r == nil {
		return nil
	}
	var memEnd runtime.MemStats
	runtime.ReadMemStats(&memEnd)
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &RunReport{
		Schema:    SchemaV1,
		StartedAt: r.started,
		WallNS:    time.Since(r.started).Nanoseconds(),
		Phases:    make([]PhaseReport, len(r.phases)),
		Counters:  make(map[string]int64, len(r.counters)),
		Mem: MemReport{
			HeapAllocDeltaBytes:  int64(memEnd.HeapAlloc) - int64(r.memStart.HeapAlloc),
			TotalAllocDeltaBytes: memEnd.TotalAlloc - r.memStart.TotalAlloc,
			MallocsDelta:         memEnd.Mallocs - r.memStart.Mallocs,
			NumGCDelta:           memEnd.NumGC - r.memStart.NumGC,
		},
	}
	for i, p := range r.phases {
		rep.Phases[i] = PhaseReport{Path: p.path, Depth: p.depth, WallNS: p.wall.Nanoseconds(), Count: p.count}
	}
	for k, v := range r.counters {
		rep.Counters[k] = v
	}
	if len(r.meta) > 0 {
		rep.Meta = make(map[string]string, len(r.meta))
		for k, v := range r.meta {
			rep.Meta[k] = v
		}
	}
	return rep
}

// WriteJSON serializes the report as indented JSON.
func (rep *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Fprint renders the report as an aligned text table — the human-readable
// companion of WriteJSON, used by the CLIs' breakdown output.
func (rep *RunReport) Fprint(w io.Writer) error {
	if _, err := io.WriteString(w, "phase breakdown:\n"); err != nil {
		return err
	}
	for _, p := range rep.Phases {
		pad := strings.Repeat("  ", p.Depth)
		name := p.Path
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		line := pad + name
		if p.Count > 1 {
			line += " (x" + strconv.FormatInt(p.Count, 10) + ")"
		}
		if _, err := io.WriteString(w, "  "+padRight(line, 34)+" "+
			time.Duration(p.WallNS).Round(time.Microsecond).String()+"\n"); err != nil {
			return err
		}
	}
	if len(rep.Counters) > 0 {
		if _, err := io.WriteString(w, "counters:\n"); err != nil {
			return err
		}
		keys := make([]string, 0, len(rep.Counters))
		for k := range rep.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := io.WriteString(w, "  "+padRight(k, 34)+" "+strconv.FormatInt(rep.Counters[k], 10)+"\n"); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "total wall: "+time.Duration(rep.WallNS).Round(time.Microsecond).String()+"\n")
	return err
}

func padRight(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}
