package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func findPhase(t *testing.T, rep *RunReport, path string) PhaseReport {
	t.Helper()
	for _, p := range rep.Phases {
		if p.Path == path {
			return p
		}
	}
	t.Fatalf("no phase %q in %+v", path, rep.Phases)
	return PhaseReport{}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	end := r.Phase("anything")
	end()
	r.Add("counter", 5)
	r.SetMeta("k", "v")
	if got := r.Counter("counter"); got != 0 {
		t.Fatalf("nil recorder counter = %d, want 0", got)
	}
	if rep := r.Report(); rep != nil {
		t.Fatalf("nil recorder report = %+v, want nil", rep)
	}
}

func TestPhasesNestAndAggregate(t *testing.T) {
	r := New()
	endOuter := r.Phase("outer")
	for i := 0; i < 3; i++ {
		end := r.Phase("inner")
		time.Sleep(time.Millisecond)
		end()
	}
	endOuter()

	rep := r.Report()
	outer := findPhase(t, rep, "outer")
	inner := findPhase(t, rep, "outer/inner")
	if outer.Depth != 0 || outer.Count != 1 {
		t.Fatalf("outer = %+v, want depth 0 count 1", outer)
	}
	if inner.Depth != 1 || inner.Count != 3 {
		t.Fatalf("inner = %+v, want depth 1 count 3", inner)
	}
	if inner.WallNS < (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("inner wall %d ns, want >= 3ms", inner.WallNS)
	}
	if outer.WallNS < inner.WallNS {
		t.Fatalf("outer wall %d < inner wall %d", outer.WallNS, inner.WallNS)
	}
}

func TestOutOfOrderEndIsTolerated(t *testing.T) {
	r := New()
	endA := r.Phase("a")
	endB := r.Phase("b")
	endA() // closes a, discarding b's open frame
	endB() // must not panic or corrupt the stack
	end := r.Phase("c")
	end()

	rep := r.Report()
	findPhase(t, rep, "a")
	if c := findPhase(t, rep, "c"); c.Depth != 0 {
		t.Fatalf("phase after unwind = %+v, want depth 0", c)
	}
}

func TestCountersAndMeta(t *testing.T) {
	r := New()
	r.Add("x", 2)
	r.Add("x", 3)
	r.Add("y", -1)
	r.SetMeta("algo", "sweep")
	if got := r.Counter("x"); got != 5 {
		t.Fatalf("counter x = %d, want 5", got)
	}
	rep := r.Report()
	if rep.Counters["x"] != 5 || rep.Counters["y"] != -1 {
		t.Fatalf("counters = %v", rep.Counters)
	}
	if rep.Meta["algo"] != "sweep" {
		t.Fatalf("meta = %v", rep.Meta)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := New()
	end := r.Phase("phase")
	r.Add("pairs", 42)
	end()
	_ = make([]byte, 1<<16) // ensure some allocation happened during the run

	var buf bytes.Buffer
	if err := r.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if back.Schema != SchemaV1 {
		t.Fatalf("schema = %q, want %q", back.Schema, SchemaV1)
	}
	if back.Counters["pairs"] != 42 {
		t.Fatalf("counters after round trip = %v", back.Counters)
	}
	if len(back.Phases) != 1 || back.Phases[0].Path != "phase" {
		t.Fatalf("phases after round trip = %+v", back.Phases)
	}
	if back.WallNS <= 0 {
		t.Fatalf("wall = %d, want > 0", back.WallNS)
	}
	if back.Mem.TotalAllocDeltaBytes == 0 {
		t.Fatalf("total alloc delta = 0, want > 0")
	}
}

func TestFprintRendersPhasesAndCounters(t *testing.T) {
	r := New()
	endOuter := r.Phase("cluster")
	end := r.Phase("sweep")
	end()
	endOuter()
	r.Add("sweep.chain_rewrites", 7)

	var buf bytes.Buffer
	if err := r.Report().Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cluster", "sweep", "sweep.chain_rewrites", "total wall:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fprint output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentCounters exercises Add/Counter/SetMeta from many goroutines;
// run with -race to verify the Recorder's synchronization.
func TestConcurrentCounters(t *testing.T) {
	r := New()
	end := r.Phase("parallel")
	var wg sync.WaitGroup
	const workers, perWorker = 16, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Add("ops", 1)
				_ = r.Counter("ops")
			}
			r.SetMeta("worker", "done")
		}(w)
	}
	wg.Wait()
	end()
	if got := r.Counter("ops"); got != workers*perWorker {
		t.Fatalf("ops = %d, want %d", got, workers*perWorker)
	}
}
