// Package onmi implements normalized mutual information for *overlapping*
// covers (Lancichinetti, Fortunato & Kertész, New J. Phys. 11, 2009) — the
// standard score for comparing recovered overlapping communities against
// planted ground truth. Unlike partition NMI, it treats each community as a
// binary membership variable over the node set and matches communities
// across the two covers by minimum conditional entropy.
package onmi

import (
	"errors"
	"math"
)

// Cover is a set of communities over nodes 0..n-1; each community is a node
// set (order irrelevant, duplicates ignored). Nodes may appear in several
// communities or in none.
type Cover [][]int32

// Compare returns the LFK overlapping NMI between two covers over n nodes:
// 1 for identical covers, 0 for independent ones. It is symmetric. An error
// is returned if n is not positive, a node is out of range, or either cover
// has no non-empty community.
func Compare(x, y Cover, n int) (float64, error) {
	if n <= 0 {
		return 0, errors.New("onmi: node count must be positive")
	}
	xs, err := toSets(x, n)
	if err != nil {
		return 0, err
	}
	ys, err := toSets(y, n)
	if err != nil {
		return 0, err
	}
	if len(xs) == 0 || len(ys) == 0 {
		return 0, errors.New("onmi: covers must contain a non-empty community")
	}
	hxGivenY := normalizedConditional(xs, ys, n)
	hyGivenX := normalizedConditional(ys, xs, n)
	return 1 - (hxGivenY+hyGivenX)/2, nil
}

// toSets converts a cover to bitsets, dropping empty communities.
func toSets(c Cover, n int) ([][]bool, error) {
	out := make([][]bool, 0, len(c))
	for _, comm := range c {
		if len(comm) == 0 {
			continue
		}
		set := make([]bool, n)
		for _, v := range comm {
			if v < 0 || int(v) >= n {
				return nil, errors.New("onmi: node id out of range")
			}
			set[v] = true
		}
		out = append(out, set)
	}
	return out, nil
}

// h is the entropy contribution -p log2 p for a count out of n.
func h(count, n int) float64 {
	if count == 0 || count == n {
		return 0
	}
	p := float64(count) / float64(n)
	return -p * math.Log2(p)
}

// entropy returns H(X_k) of one membership indicator.
func entropy(size, n int) float64 {
	return h(size, n) + h(n-size, n)
}

// normalizedConditional returns H(X|Y)_norm = mean over k of
// H(X_k|Y)/H(X_k), per the LFK definition. Communities with zero entropy
// (covering nothing or everything) contribute their unnormalized fallback
// of 1 only when unmatched; LFK sets the normalized term to 1 in that case
// via the H(X_k) fallback, but zero-entropy communities are excluded from
// the mean to keep the score finite.
func normalizedConditional(xs, ys [][]bool, n int) float64 {
	var sum float64
	counted := 0
	for _, xk := range xs {
		sizeX := count(xk)
		hx := entropy(sizeX, n)
		if hx == 0 {
			continue
		}
		best := hx // fallback: H(X_k|Y) = H(X_k) when nothing qualifies
		for _, yl := range ys {
			if ce, ok := conditional(xk, yl, n); ok && ce < best {
				best = ce
			}
		}
		sum += best / hx
		counted++
	}
	if counted == 0 {
		return 1
	}
	return sum / float64(counted)
}

// conditional computes H(X_k | Y_l) from the 2×2 joint distribution, under
// the LFK acceptance constraint h(11)+h(00) >= h(10)+h(01), which rejects
// complement-like matches. Reports ok=false when rejected.
func conditional(xk, yl []bool, n int) (float64, bool) {
	var n11, n10, n01, n00 int
	for i := 0; i < n; i++ {
		switch {
		case xk[i] && yl[i]:
			n11++
		case xk[i] && !yl[i]:
			n10++
		case !xk[i] && yl[i]:
			n01++
		default:
			n00++
		}
	}
	if h(n11, n)+h(n00, n) < h(n10, n)+h(n01, n) {
		return 0, false
	}
	sizeY := n11 + n01
	joint := h(n11, n) + h(n10, n) + h(n01, n) + h(n00, n)
	return joint - entropy(sizeY, n), true
}

func count(set []bool) int {
	c := 0
	for _, b := range set {
		if b {
			c++
		}
	}
	return c
}
