package onmi

import (
	"math"
	"testing"

	"linkclust/internal/rng"
)

func mustCompare(t *testing.T, x, y Cover, n int) float64 {
	t.Helper()
	v, err := Compare(x, y, n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestIdenticalCovers(t *testing.T) {
	c := Cover{{0, 1, 2}, {3, 4, 5}, {6, 7}}
	if v := mustCompare(t, c, c, 8); math.Abs(v-1) > 1e-12 {
		t.Fatalf("identical covers NMI = %v, want 1", v)
	}
}

func TestIdenticalOverlappingCovers(t *testing.T) {
	c := Cover{{0, 1, 2, 3}, {3, 4, 5, 6}} // node 3 overlaps
	if v := mustCompare(t, c, c, 8); math.Abs(v-1) > 1e-12 {
		t.Fatalf("identical overlapping covers NMI = %v, want 1", v)
	}
}

func TestPermutedCommunityOrder(t *testing.T) {
	x := Cover{{0, 1, 2}, {3, 4, 5}}
	y := Cover{{3, 4, 5}, {0, 1, 2}}
	if v := mustCompare(t, x, y, 6); math.Abs(v-1) > 1e-12 {
		t.Fatalf("permuted covers NMI = %v, want 1", v)
	}
}

func TestSymmetry(t *testing.T) {
	x := Cover{{0, 1, 2, 3}, {4, 5, 6, 7}}
	y := Cover{{0, 1, 4}, {2, 3, 5}, {6, 7}}
	a := mustCompare(t, x, y, 8)
	b := mustCompare(t, y, x, 8)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("asymmetric: %v vs %v", a, b)
	}
}

func TestRandomCoversScoreLow(t *testing.T) {
	src := rng.New(3)
	n := 200
	mk := func() Cover {
		var c Cover
		for k := 0; k < 8; k++ {
			var comm []int32
			for v := 0; v < n; v++ {
				if src.Float64() < 0.12 {
					comm = append(comm, int32(v))
				}
			}
			if len(comm) > 0 {
				c = append(c, comm)
			}
		}
		return c
	}
	v := mustCompare(t, mk(), mk(), n)
	if v > 0.25 {
		t.Fatalf("independent covers scored %v, expected near 0", v)
	}
	if v < -1e-9 {
		t.Fatalf("NMI below 0: %v", v)
	}
}

func TestPartialAgreementOrdering(t *testing.T) {
	truth := Cover{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}
	good := Cover{{0, 1, 2, 3}, {4, 5, 6, 7, 8, 9}} // one node misplaced
	bad := Cover{{0, 2, 4, 6, 8}, {1, 3, 5, 7, 9}}  // orthogonal
	vGood := mustCompare(t, truth, good, 10)
	vBad := mustCompare(t, truth, bad, 10)
	if vGood <= vBad {
		t.Fatalf("ordering violated: good %v <= bad %v", vGood, vBad)
	}
	if vGood >= 1 {
		t.Fatalf("imperfect match scored %v", vGood)
	}
}

func TestRangeBounds(t *testing.T) {
	src := rng.New(9)
	n := 50
	for trial := 0; trial < 20; trial++ {
		mk := func() Cover {
			var c Cover
			k := 2 + src.Intn(5)
			for i := 0; i < k; i++ {
				var comm []int32
				for v := 0; v < n; v++ {
					if src.Float64() < 0.3 {
						comm = append(comm, int32(v))
					}
				}
				if len(comm) > 0 {
					c = append(c, comm)
				}
			}
			if len(c) == 0 {
				c = Cover{{0}}
			}
			return c
		}
		v := mustCompare(t, mk(), mk(), n)
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("trial %d: NMI %v out of [0,1]", trial, v)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Compare(Cover{{0}}, Cover{{0}}, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Compare(Cover{{5}}, Cover{{0}}, 3); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := Compare(Cover{}, Cover{{0}}, 3); err == nil {
		t.Fatal("empty cover accepted")
	}
	if _, err := Compare(Cover{{}}, Cover{{0}}, 3); err == nil {
		t.Fatal("cover of empty communities accepted")
	}
}

func TestComplementNotMatched(t *testing.T) {
	// The LFK constraint must reject matching a community with its own
	// complement: {0,1} vs its complement {2,3,...} carries the same
	// "information" numerically but is the wrong answer semantically.
	x := Cover{{0, 1}}
	y := Cover{{2, 3, 4, 5, 6, 7}}
	v := mustCompare(t, x, y, 8)
	if v > 1e-9 {
		t.Fatalf("complement match scored %v, want 0", v)
	}
}

func TestDuplicateNodesIgnored(t *testing.T) {
	a := mustCompare(t, Cover{{0, 0, 1}}, Cover{{0, 1}}, 4)
	if math.Abs(a-1) > 1e-12 {
		t.Fatalf("duplicate node changed score: %v", a)
	}
}
