package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"linkclust/internal/spill"
)

// waitNoLeaks polls until the process goroutine count falls back to the
// baseline captured before the scenario ran. Every pool in this package
// promises that no goroutine outlives the call, including on the
// cancellation and panic paths; a worker blocked forever on a channel shows
// up here as a count that never recovers.
func waitNoLeaks(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRunPanicNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	err := func() (err error) {
		defer RecoverPanicError(&err)
		Run(6, func(tid int, aborted func() bool) {
			if tid == 3 {
				panic("worker 3 exploded")
			}
			// Siblings spin until the abort flag tells them to stop.
			for !aborted() {
				runtime.Gosched()
			}
		})
		return nil
	}()
	var wpe *WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
	if wpe.Worker != 3 {
		t.Fatalf("panic attributed to worker %d, want 3", wpe.Worker)
	}
	waitNoLeaks(t, base)
}

func TestDoPanicNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	err := func() (err error) {
		defer RecoverPanicError(&err)
		Do(1<<16, 8, func(tid, lo, hi int) {
			if tid == 5 {
				panic("range worker exploded")
			}
			for i := lo; i < hi; i++ {
				_ = i * i
			}
		})
		return nil
	}()
	var wpe *WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
	waitNoLeaks(t, base)
}

func TestOrderedCtxCancelNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	emitted := 0
	err := OrderedCtx(ctx, 10_000, 4,
		func(i int) {
			if i == 50 {
				cancel()
			}
		},
		func(i int) { emitted++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted >= 10_000 {
		t.Fatalf("cancellation did not stop emission (emitted %d)", emitted)
	}
	waitNoLeaks(t, base)
}

func TestOrderedCtxProcessPanicNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	err := OrderedCtx(context.Background(), 10_000, 4,
		func(i int) {
			if i == 123 {
				panic("process exploded")
			}
		},
		func(i int) {})
	var wpe *WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
	waitNoLeaks(t, base)
}

// TestOrderedEmitPanicNoLeak covers the abandoned-consumer class: the emitter
// dies while producers are still publishing, so workers must observe the stop
// signal at their publish points instead of blocking forever on the
// completion buffers.
func TestOrderedEmitPanicNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		defer func() {
			if v := recover(); v == nil {
				t.Fatal("emit panic did not propagate")
			}
		}()
		Ordered(10_000, 4,
			func(i int) {},
			func(i int) {
				if i == 3 {
					panic("emit exploded")
				}
			})
	}()
	waitNoLeaks(t, base)
}

func TestOrderedSerialPanicTyped(t *testing.T) {
	base := runtime.NumGoroutine()
	err := OrderedCtx(context.Background(), 8, 1,
		func(i int) {
			if i == 2 {
				panic("serial process exploded")
			}
		},
		func(i int) {})
	var wpe *WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("serial path err = %v, want *WorkerPanicError (parity with parallel)", err)
	}
	waitNoLeaks(t, base)
}

// TestSpilledReadbackCancelNoLeak is the spill-shaped abandoned-consumer
// case, mirroring the out-of-core sweep's read-back: an OrderedCtx producer
// opens bucket files from a spill store while the emitter cancels
// mid-stream. Pool workers must observe the stop signal at their publish
// points, and the store's write-behind pool must already be drained — no
// goroutine may outlive the scenario.
func TestSpilledReadbackCancelNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	ids := make([]int, 64)
	for i := range ids {
		ids[i] = i
	}
	st, err := spill.NewStore(ids, spill.Options{Dir: t.TempDir(), BlockBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Remove()
	for _, id := range ids {
		for j := 0; j < 100; j++ {
			if err := st.Append(id, []byte("0123456789abcdef")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.FinishWrites(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	err = OrderedCtx(ctx, len(ids), 4,
		func(i int) {
			bk, err := st.OpenBucket(ids[i])
			if err != nil {
				panic(err)
			}
			bk.Close()
		},
		func(i int) {
			if emitted++; emitted == 8 {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted >= len(ids) {
		t.Fatalf("cancellation did not stop emission (emitted %d)", emitted)
	}
	waitNoLeaks(t, base)
}

// TestSpillWriteAbortNoLeak aborts a spill store while concurrent appenders
// are still feeding its write-behind pool — the cancelled-spill write path.
// FinishWrites must fast-fail with the typed error, the appenders must all
// unwind, and the pool workers must exit.
func TestSpillWriteAbortNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	st, err := spill.NewStore([]int{0, 1, 2, 3}, spill.Options{Dir: t.TempDir(), BlockBytes: 64, Writers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Remove()
	var wg sync.WaitGroup
	for a := 0; a < 6; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if err := st.Append(j%4, []byte("0123456789abcdef")); err != nil {
					return // sticky abort error reached this appender
				}
			}
		}(a)
	}
	st.Abort()
	wg.Wait()
	if err := st.FinishWrites(); !errors.Is(err, spill.ErrAborted) {
		t.Fatalf("finish err = %v, want spill.ErrAborted", err)
	}
	waitNoLeaks(t, base)
}

func TestSortFuncCtxCancelNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	s := make([]int, 200_000)
	for i := range s {
		s[i] = (i * 2654435761) % len(s)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := SortFuncCtx(ctx, s, 4, func(a, b int) int { return a - b })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitNoLeaks(t, base)
}

func TestSortFuncCtxPanicNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	s := make([]int, 100_000)
	for i := range s {
		s[i] = (i * 40503) % len(s)
	}
	var calls atomic.Int64
	err := SortFuncCtx(context.Background(), s, 4, func(a, b int) int {
		if calls.Add(1) == 5_000 {
			panic("comparator exploded")
		}
		return a - b
	})
	var wpe *WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
	waitNoLeaks(t, base)
}
