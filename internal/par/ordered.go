package par

import (
	"context"
	"runtime/debug"
	"sync"

	"linkclust/internal/fault"
)

// Ordered processes items 0..n-1 across up to workers goroutines and calls
// emit(i) exactly once per item, in ascending index order, as soon as item i
// and every item before it have been processed. It is the scheduler of
// producer/consumer pipelines whose stages may complete out of order but
// whose output must stream in order (e.g. sorting similarity buckets while a
// consumer sweeps the already-emitted prefix).
//
// Items are assigned to workers round-robin by index, so worker t processes
// items t, t+W, t+2W, ... in ascending order. Each worker signals its
// completions over its own channel; the emitter drains channel i mod W for
// item i, which yields exactly item i because a worker's completions arrive
// in its own assignment order. Emission order is therefore deterministic for
// any worker count and any completion interleaving.
//
// process runs concurrently with other process calls and with emit; emit
// runs on the calling goroutine only. Ordered returns once every item has
// been emitted. With one worker (or n <= 1) everything runs on the calling
// goroutine, alternating process(i); emit(i). A panic inside process is
// re-raised on the calling goroutine as a *WorkerPanicError after the pool
// has drained.
func Ordered(n, workers int, process func(i int), emit func(i int)) {
	if err := OrderedCtx(context.Background(), n, workers, process, emit); err != nil {
		// A background context never cancels, so the only possible error is
		// a recovered worker panic; re-raise it typed.
		panic(err)
	}
}

// OrderedCtx is Ordered with cooperative cancellation and panic isolation.
// It returns nil after emitting every item; ctx.Err() if the context is
// canceled first; or a *WorkerPanicError if a process call panicked. In the
// two failure cases emission simply stops early — a prefix of items may
// already have been emitted.
//
// The abandoned-consumer leak class is handled here: when the emitter stops
// consuming (cancellation, worker panic, or a panic inside emit itself),
// workers blocked publishing a completion observe the stop signal and exit,
// and OrderedCtx does not return until every worker has. No goroutine
// outlives the call.
func OrderedCtx(ctx context.Context, n, workers int, process func(i int), emit func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runGuarded(0, i == 0, func() { process(i) }); err != nil {
				return err
			}
			emit(i)
		}
		return nil
	}

	// stop is the abandonment signal: closed when the emitter gives up
	// (cancellation, worker panic, emit panic). Workers select on it at
	// both their claim and publish points, so a producer blocked on a full
	// completion buffer exits instead of leaking.
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	var mu sync.Mutex
	var wpe *WorkerPanicError

	// A small buffer per worker lets workers run ahead of the emitter
	// without unbounded memory: at most workers*orderedAhead items can be
	// processed but not yet emitted.
	done := make([]chan int, workers)
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		done[t] = make(chan int, orderedAhead)
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					stack := debug.Stack()
					mu.Lock()
					if wpe == nil {
						wpe = &WorkerPanicError{Worker: t, Value: v, Stack: stack}
					}
					mu.Unlock()
					halt()
				}
			}()
			fault.Hit(fault.WorkerPanic)
			for i := t; i < n; i += workers {
				select {
				case <-stop:
					return
				default:
				}
				process(i)
				select {
				case done[t] <- i:
				case <-stop:
					return
				}
			}
		}(t)
	}
	// exited closes once every worker has returned — the emitter's way out
	// when a panicked worker will never publish the item it is waiting for.
	exited := make(chan struct{})
	go func() {
		wg.Wait()
		close(exited)
	}()
	// If emit itself panics, release the workers before propagating so the
	// panic does not strand producers blocked on their publish channels.
	defer func() {
		if v := recover(); v != nil {
			halt()
			<-exited
			panic(v)
		}
	}()

	var err error
	draining := false
loop:
	for i := 0; i < n; i++ {
		if draining {
			// Workers are gone; anything they completed is already buffered
			// (their publishes are blocking, so a returned worker published
			// everything it processed). Drain without blocking and stop at
			// the first gap.
			select {
			case got := <-done[i%workers]:
				if got != i {
					panic("par: Ordered completion out of assignment order")
				}
				emit(i)
				continue
			default:
				break loop
			}
		}
		select {
		case got := <-done[i%workers]:
			if got != i {
				// Unreachable by construction; guard against future edits
				// breaking the round-robin invariant.
				panic("par: Ordered completion out of assignment order")
			}
			emit(i)
		case <-ctx.Done():
			err = ctx.Err()
			halt()
			break loop
		case <-exited:
			// All workers returned — either every item is processed (their
			// completions sit in the buffers) or a panic/stop cut them
			// short. Retry this index in drain mode to tell the two apart.
			draining = true
			i--
		}
	}
	halt()
	<-exited
	mu.Lock()
	defer mu.Unlock()
	if wpe != nil {
		return wpe
	}
	return err
}

// runGuarded invokes fn with the pool's panic isolation on the calling
// goroutine, converting a panic into the *WorkerPanicError a parallel worker
// would have produced. hitFault gates the per-launch fault.WorkerPanic hit
// so the serial path counts one launch, like a one-worker pool.
func runGuarded(worker int, hitFault bool, fn func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &WorkerPanicError{Worker: worker, Value: v, Stack: debug.Stack()}
		}
	}()
	if hitFault {
		fault.Hit(fault.WorkerPanic)
	}
	fn()
	return nil
}

// orderedAhead bounds how many completed-but-unemitted items each worker may
// buffer before it blocks waiting for the emitter.
const orderedAhead = 4
