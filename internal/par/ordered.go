package par

import "sync"

// Ordered processes items 0..n-1 across up to workers goroutines and calls
// emit(i) exactly once per item, in ascending index order, as soon as item i
// and every item before it have been processed. It is the scheduler of
// producer/consumer pipelines whose stages may complete out of order but
// whose output must stream in order (e.g. sorting similarity buckets while a
// consumer sweeps the already-emitted prefix).
//
// Items are assigned to workers round-robin by index, so worker t processes
// items t, t+W, t+2W, ... in ascending order. Each worker signals its
// completions over its own channel; the emitter drains channel i mod W for
// item i, which yields exactly item i because a worker's completions arrive
// in its own assignment order. Emission order is therefore deterministic for
// any worker count and any completion interleaving.
//
// process runs concurrently with other process calls and with emit; emit
// runs on the calling goroutine only. Ordered returns once every item has
// been emitted. With one worker (or n <= 1) everything runs on the calling
// goroutine, alternating process(i); emit(i).
func Ordered(n, workers int, process func(i int), emit func(i int)) {
	if n <= 0 {
		return
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			process(i)
			emit(i)
		}
		return
	}
	// A small buffer per worker lets workers run ahead of the emitter
	// without unbounded memory: at most workers*orderedAhead items can be
	// processed but not yet emitted.
	done := make([]chan int, workers)
	for t := range done {
		done[t] = make(chan int, orderedAhead)
	}
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for i := t; i < n; i += workers {
				process(i)
				done[t] <- i
			}
		}(t)
	}
	for i := 0; i < n; i++ {
		if got := <-done[i%workers]; got != i {
			// Unreachable by construction; guard against future edits
			// breaking the round-robin invariant.
			panic("par: Ordered completion out of assignment order")
		}
		emit(i)
	}
	wg.Wait()
}

// orderedAhead bounds how many completed-but-unemitted items each worker may
// buffer before it blocks waiting for the emitter.
const orderedAhead = 4
