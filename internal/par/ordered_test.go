package par

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderedEmitsInOrder checks the core contract: emit sees every index
// exactly once, ascending, for any worker count — including counts above the
// item count and non-positive requests.
func TestOrderedEmitsInOrder(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			var processed atomic.Int64
			emitted := make([]int, 0, n)
			Ordered(n, workers, func(i int) {
				processed.Add(1)
			}, func(i int) {
				emitted = append(emitted, i)
			})
			if got := processed.Load(); got != int64(n) {
				t.Fatalf("workers=%d n=%d: processed %d items", workers, n, got)
			}
			if len(emitted) != n {
				t.Fatalf("workers=%d n=%d: emitted %d items", workers, n, len(emitted))
			}
			for i, e := range emitted {
				if e != i {
					t.Fatalf("workers=%d n=%d: emitted[%d] = %d", workers, n, i, e)
				}
			}
		}
	}
}

// TestOrderedEmitFollowsProcess checks the ordering guarantee emit relies
// on: when emit(i) runs, items 0..i have all been processed.
func TestOrderedEmitFollowsProcess(t *testing.T) {
	const n = 50
	var doneMask [n]atomic.Bool
	Ordered(n, 4, func(i int) {
		if i%3 == 0 {
			time.Sleep(time.Millisecond) // skew completion order
		}
		doneMask[i].Store(true)
	}, func(i int) {
		for j := 0; j <= i; j++ {
			if !doneMask[j].Load() {
				t.Errorf("emit(%d) ran before process(%d) finished", i, j)
				return
			}
		}
	})
}

// TestOrderedOverlap checks that processing genuinely overlaps emission:
// with a slow emitter, workers must be able to run ahead on later items
// rather than serializing behind it.
func TestOrderedOverlap(t *testing.T) {
	const n = 16
	var maxProcessedBeforeFirstEmit atomic.Int64
	firstEmit := make(chan struct{})
	var processed atomic.Int64
	go func() {
		<-firstEmit
	}()
	Ordered(n, 4, func(i int) {
		processed.Add(1)
	}, func(i int) {
		if i == 0 {
			// By the time item 0 is emitted, other workers may already have
			// processed later items; record how far ahead they got.
			maxProcessedBeforeFirstEmit.Store(processed.Load())
			close(firstEmit)
			time.Sleep(2 * time.Millisecond)
		}
	})
	// Not a strict guarantee (scheduling-dependent), so only report.
	t.Logf("items processed before first emission: %d/%d", maxProcessedBeforeFirstEmit.Load(), n)
}
