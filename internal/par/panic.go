package par

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"linkclust/internal/fault"
)

// WorkerPanicError is the typed surface of a panic inside a worker pool: the
// pool recovers the panic, asks its sibling workers to stop, waits for them
// to drain, and then re-raises this error on the coordinating goroutine so a
// single misbehaving unit of work cannot crash the process. Pipeline entry
// points convert it into an ordinary error return with RecoverPanicError.
type WorkerPanicError struct {
	// Worker is the dense pool index of the goroutine that panicked.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error. The stack is included because by the time the
// error reaches a caller the panicking goroutine is gone.
func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("par: worker %d panicked: %v\n%s", e.Worker, e.Value, e.Stack)
}

// RecoverPanicError converts a re-raised *WorkerPanicError into an error
// return; any other panic value propagates unchanged. Use it as the first
// deferred call of an entry point that runs worker pools:
//
//	func SweepParallelCtx(...) (res *Result, err error) {
//		defer par.RecoverPanicError(&err)
//		...
func RecoverPanicError(errp *error) {
	if r := recover(); r != nil {
		if wp, ok := r.(*WorkerPanicError); ok {
			*errp = wp
			return
		}
		panic(r)
	}
}

// Run invokes body(t, aborted) for every t in [0, workers) — concurrently
// for workers > 1, inline on the calling goroutine for workers <= 1 — and
// returns once every body has. Panics inside a body are isolated: the first
// one is recovered with its stack, the shared abort flag is raised so
// sibling bodies can bail out at their next aborted() poll, the pool drains,
// and Run re-raises the panic as a *WorkerPanicError on the calling
// goroutine (convert it with RecoverPanicError at the entry point).
//
// aborted is a cheap atomic poll; bodies whose work is bounded (one window
// phase, one merge segment) may ignore it, while open-ended loops (row
// cursors) should check it at their claim boundaries. Unlike Do, Run does
// not normalize workers: it launches exactly the requested count.
//
// Run is also the fault.WorkerPanic injection site: the point is hit once
// per worker launch, before the body runs.
func Run(workers int, body func(t int, aborted func() bool)) {
	if workers < 1 {
		workers = 1
	}
	var abort atomic.Bool
	var mu sync.Mutex
	var first *WorkerPanicError
	runOne := func(t int) {
		defer func() {
			if v := recover(); v != nil {
				stack := debug.Stack()
				mu.Lock()
				if first == nil {
					first = &WorkerPanicError{Worker: t, Value: v, Stack: stack}
				}
				mu.Unlock()
				abort.Store(true)
			}
		}()
		fault.Hit(fault.WorkerPanic)
		body(t, abort.Load)
	}
	if workers == 1 {
		runOne(0)
	} else {
		var wg sync.WaitGroup
		for t := 0; t < workers; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				runOne(t)
			}(t)
		}
		wg.Wait()
	}
	if first != nil {
		panic(first)
	}
}
