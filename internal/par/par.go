// Package par centralizes worker-count normalization for every parallel
// entry point of the pipeline. The exported APIs historically validated
// their workers arguments inconsistently — SimilarityParallel silently fell
// back to serial for workers < 2 while the coarse paths accepted any value,
// so a negative count could reach goroutine fan-out code and a huge one
// could clone a full array-C replica per unit of work. All paths now agree:
// normalize first, then branch.
package par

import (
	"runtime"
)

// MinCap is the floor of the default worker cap. Oversubscription up to
// MinCap goroutines is allowed even on machines with fewer cores: goroutine
// fan-out is cheap, thread-sweep experiments keep their requested worker
// counts, and the parallel code paths stay exercisable (and race-testable)
// on single-core CI runners.
const MinCap = 8

// DefaultCap returns the default worker cap: runtime.NumCPU(), with a floor
// of MinCap.
func DefaultCap() int {
	if n := runtime.NumCPU(); n > MinCap {
		return n
	}
	return MinCap
}

// Normalize clamps a requested worker count to [1, DefaultCap()]: values
// below 1 select serial execution, values above the cap are reduced to it.
func Normalize(n int) int {
	return NormalizeCap(n, 0)
}

// NormalizeCap is Normalize with an explicit upper bound; cap <= 0 selects
// DefaultCap().
func NormalizeCap(n, cap int) int {
	if cap <= 0 {
		cap = DefaultCap()
	}
	if n < 1 {
		return 1
	}
	if n > cap {
		return cap
	}
	return n
}

// Do partitions [0, n) into one contiguous range per worker and invokes fn
// concurrently, blocking until every range completes. The worker count is
// normalized and additionally clamped to n, so fn never receives an empty
// range; worker ids are dense in [0, workers). With one worker (or n <= 1)
// fn runs on the calling goroutine.
//
// Do is panic-isolating: a panic inside fn is recovered and re-raised on
// the calling goroutine as a *WorkerPanicError after the pool has drained
// (see Run). Each range is one bounded unit of work, so Do offers no abort
// poll; cancellation between Do calls is the caller's job.
func Do(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	w := workers
	Run(w, func(t int, _ func() bool) {
		fn(t, n*t/w, n*(t+1)/w)
	})
}
