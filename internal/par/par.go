// Package par centralizes worker-count normalization for every parallel
// entry point of the pipeline. The exported APIs historically validated
// their workers arguments inconsistently — SimilarityParallel silently fell
// back to serial for workers < 2 while the coarse paths accepted any value,
// so a negative count could reach goroutine fan-out code and a huge one
// could clone a full array-C replica per unit of work. All paths now agree:
// normalize first, then branch.
package par

import "runtime"

// MinCap is the floor of the default worker cap. Oversubscription up to
// MinCap goroutines is allowed even on machines with fewer cores: goroutine
// fan-out is cheap, thread-sweep experiments keep their requested worker
// counts, and the parallel code paths stay exercisable (and race-testable)
// on single-core CI runners.
const MinCap = 8

// DefaultCap returns the default worker cap: runtime.NumCPU(), with a floor
// of MinCap.
func DefaultCap() int {
	if n := runtime.NumCPU(); n > MinCap {
		return n
	}
	return MinCap
}

// Normalize clamps a requested worker count to [1, DefaultCap()]: values
// below 1 select serial execution, values above the cap are reduced to it.
func Normalize(n int) int {
	return NormalizeCap(n, 0)
}

// NormalizeCap is Normalize with an explicit upper bound; cap <= 0 selects
// DefaultCap().
func NormalizeCap(n, cap int) int {
	if cap <= 0 {
		cap = DefaultCap()
	}
	if n < 1 {
		return 1
	}
	if n > cap {
		return cap
	}
	return n
}
