// Package par centralizes worker-count normalization for every parallel
// entry point of the pipeline. The exported APIs historically validated
// their workers arguments inconsistently — SimilarityParallel silently fell
// back to serial for workers < 2 while the coarse paths accepted any value,
// so a negative count could reach goroutine fan-out code and a huge one
// could clone a full array-C replica per unit of work. All paths now agree:
// normalize first, then branch.
package par

import (
	"runtime"
)

// DefaultCap returns the default worker cap:
// max(runtime.GOMAXPROCS(0), runtime.NumCPU()).
//
// The cap used to carry an unconditional floor of 8, justified as "cheap
// goroutine fan-out keeps parallel paths exercisable on single-core CI".
// That floor oversubscribes constrained deployments: on a 1-core container
// every Normalize(8) call was allowed through, so a daemon running several
// concurrent jobs stacked 8 workers *each* onto one core — pure scheduling
// overhead plus per-worker memory (the coarse sweep clones an array-C
// replica per worker). The cap now tracks what the scheduler can actually
// run: NumCPU, or GOMAXPROCS when the operator raised it above NumCPU
// (deliberate oversubscription — e.g. race tests exercising T=8
// interleavings on a 1-core runner — stays one knob away).
func DefaultCap() int {
	n := runtime.NumCPU()
	if p := runtime.GOMAXPROCS(0); p > n {
		return p
	}
	return n
}

// Normalize clamps a requested worker count to [1, DefaultCap()]: values
// below 1 select serial execution, values above the cap are reduced to it.
func Normalize(n int) int {
	return NormalizeCap(n, 0)
}

// NormalizeCap is Normalize with an explicit upper bound; cap <= 0 selects
// DefaultCap().
func NormalizeCap(n, cap int) int {
	if cap <= 0 {
		cap = DefaultCap()
	}
	if n < 1 {
		return 1
	}
	if n > cap {
		return cap
	}
	return n
}

// Do partitions [0, n) into one contiguous range per worker and invokes fn
// concurrently, blocking until every range completes. The worker count is
// normalized and additionally clamped to n, so fn never receives an empty
// range; worker ids are dense in [0, workers). With one worker (or n <= 1)
// fn runs on the calling goroutine.
//
// Do is panic-isolating: a panic inside fn is recovered and re-raised on
// the calling goroutine as a *WorkerPanicError after the pool has drained
// (see Run). Each range is one bounded unit of work, so Do offers no abort
// poll; cancellation between Do calls is the caller's job.
func Do(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	w := workers
	Run(w, func(t int, _ func() bool) {
		fn(t, n*t/w, n*(t+1)/w)
	})
}
