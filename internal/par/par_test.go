package par

import (
	"runtime"
	"testing"
)

func TestNormalize(t *testing.T) {
	cap := DefaultCap()
	cases := []struct {
		in, want int
	}{
		{-5, 1},
		{0, 1},
		{1, 1},
		{2, 2},
		{cap, cap},
		{cap + 1, cap},
		{1 << 30, cap},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNormalizeCapExplicit(t *testing.T) {
	if got := NormalizeCap(100, 3); got != 3 {
		t.Errorf("NormalizeCap(100, 3) = %d, want 3", got)
	}
	if got := NormalizeCap(2, 3); got != 2 {
		t.Errorf("NormalizeCap(2, 3) = %d, want 2", got)
	}
	if got := NormalizeCap(0, 3); got != 1 {
		t.Errorf("NormalizeCap(0, 3) = %d, want 1", got)
	}
}

// TestDefaultCapTracksSchedulable pins the post-floor-removal contract:
// the cap is exactly what the scheduler can run — max(GOMAXPROCS, NumCPU)
// — with no unconditional floor, so single-core containers normalize every
// request down to 1 worker unless the operator raises GOMAXPROCS.
func TestDefaultCapTracksSchedulable(t *testing.T) {
	want := runtime.NumCPU()
	if p := runtime.GOMAXPROCS(0); p > want {
		want = p
	}
	if got := DefaultCap(); got != want {
		t.Fatalf("DefaultCap() = %d, want max(GOMAXPROCS, NumCPU) = %d", got, want)
	}
}

// TestDefaultCapHonorsRaisedGOMAXPROCS verifies the deliberate-
// oversubscription escape hatch: raising GOMAXPROCS above NumCPU raises
// the cap with it.
func TestDefaultCapHonorsRaisedGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	raised := runtime.NumCPU() + 3
	runtime.GOMAXPROCS(raised)
	defer runtime.GOMAXPROCS(old)
	if got := DefaultCap(); got != raised {
		t.Fatalf("DefaultCap() with GOMAXPROCS=%d = %d, want %d", raised, got, raised)
	}
}
