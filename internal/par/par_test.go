package par

import (
	"runtime"
	"testing"
)

func TestNormalize(t *testing.T) {
	cap := DefaultCap()
	cases := []struct {
		in, want int
	}{
		{-5, 1},
		{0, 1},
		{1, 1},
		{2, 2},
		{cap, cap},
		{cap + 1, cap},
		{1 << 30, cap},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNormalizeCapExplicit(t *testing.T) {
	if got := NormalizeCap(100, 3); got != 3 {
		t.Errorf("NormalizeCap(100, 3) = %d, want 3", got)
	}
	if got := NormalizeCap(2, 3); got != 2 {
		t.Errorf("NormalizeCap(2, 3) = %d, want 2", got)
	}
	if got := NormalizeCap(0, 3); got != 1 {
		t.Errorf("NormalizeCap(0, 3) = %d, want 1", got)
	}
}

func TestDefaultCapFloor(t *testing.T) {
	cap := DefaultCap()
	if cap < MinCap {
		t.Fatalf("DefaultCap() = %d, below floor %d", cap, MinCap)
	}
	if n := runtime.NumCPU(); n > MinCap && cap != n {
		t.Fatalf("DefaultCap() = %d, want NumCPU = %d", cap, n)
	}
}
