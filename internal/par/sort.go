package par

import (
	"slices"
	"sync"
)

// sortSerialThreshold is the input size below which SortFunc runs serially:
// goroutine fan-out and the merge scratch buffer cost more than pdqsort
// saves on small inputs.
const sortSerialThreshold = 1 << 13

// minMergeSplit is the smallest run length worth splitting across multiple
// goroutines during a merge round.
const minMergeSplit = 1 << 10

// SortFunc sorts s by cmp using up to workers goroutines: the slice is cut
// into a power-of-two number of chunks, each chunk is sorted concurrently
// with slices.SortFunc, and the sorted runs are combined by parallel merge
// rounds (later rounds split each large merge across idle workers via
// binary-search partitioning).
//
// workers is normalized like every parallel entry point (values below 2, or
// inputs below the serial threshold, run slices.SortFunc directly).
//
// When cmp is a total order over the elements of s — true for every sort in
// this codebase, whose comparators always break ties down to a unique key —
// the output is deterministic and identical to slices.SortFunc for any
// worker count. With genuinely equal elements the output is still sorted,
// but their relative order may depend on the chunk boundaries.
func SortFunc[T any](s []T, workers int, cmp func(a, b T) int) {
	workers = Normalize(workers)
	n := len(s)
	if workers < 2 || n < sortSerialThreshold {
		slices.SortFunc(s, cmp)
		return
	}

	// The largest power-of-two chunk count that keeps chunks big enough to
	// be worth a goroutine and does not exceed the worker budget.
	chunks := 1
	for chunks*2 <= workers && n/(chunks*2) >= sortSerialThreshold/4 {
		chunks *= 2
	}
	if chunks < 2 {
		slices.SortFunc(s, cmp)
		return
	}

	bounds := make([]int, chunks+1)
	for i := range bounds {
		bounds[i] = i * n / chunks
	}

	var wg sync.WaitGroup
	for i := 0; i < chunks; i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			slices.SortFunc(s[lo:hi], cmp)
		}(bounds[i], bounds[i+1])
	}
	wg.Wait()

	// log2(chunks) merge rounds, ping-ponging between s and a scratch
	// buffer. chunks is a power of two, so every round pairs runs evenly.
	scratch := make([]T, n)
	src, dst := s, scratch
	for width := 1; width < chunks; width *= 2 {
		merges := chunks / (2 * width)
		parts := workers / merges
		if parts < 1 {
			parts = 1
		}
		for m := 0; m < merges; m++ {
			lo := bounds[2*m*width]
			mid := bounds[2*m*width+width]
			hi := bounds[2*(m+1)*width]
			mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi], parts, cmp, &wg)
		}
		wg.Wait()
		src, dst = dst, src
	}
	if n > 0 && &src[0] != &s[0] {
		copy(s, src)
	}
}

// mergeRuns merges sorted runs a and b into dst (len(dst) == len(a)+len(b)),
// split into up to parts independent segments, each merged by one goroutine
// registered on wg. Ties are taken from a first, so the merge is stable.
func mergeRuns[T any](dst, a, b []T, parts int, cmp func(a, b T) int, wg *sync.WaitGroup) {
	if parts < 2 || len(a) < minMergeSplit || len(b) < minMergeSplit {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mergeInto(dst, a, b, cmp)
		}()
		return
	}
	prevA, prevB := 0, 0
	for p := 1; p <= parts; p++ {
		ai, bi := len(a), len(b)
		if p < parts {
			ai = p * len(a) / parts
			// Everything in b strictly below a[ai] merges before it (the
			// stable merge prefers a on ties), so the b split point is the
			// lower bound of a[ai].
			bi = lowerBound(b, a[ai], cmp)
		}
		wg.Add(1)
		go func(dst, a, b []T) {
			defer wg.Done()
			mergeInto(dst, a, b, cmp)
		}(dst[prevA+prevB:ai+bi], a[prevA:ai], b[prevB:bi])
		prevA, prevB = ai, bi
	}
}

// mergeInto is a serial stable merge of sorted runs a and b into dst.
func mergeInto[T any](dst, a, b []T, cmp func(a, b T) int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// lowerBound returns the first index of sorted run b whose element is not
// less than key.
func lowerBound[T any](b []T, key T, cmp func(a, b T) int) int {
	lo, hi := 0, len(b)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if cmp(b[m], key) < 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}
