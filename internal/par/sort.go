package par

import (
	"context"
	"slices"
)

// sortSerialThreshold is the input size below which SortFunc runs serially:
// goroutine fan-out and the merge scratch buffer cost more than pdqsort
// saves on small inputs.
const sortSerialThreshold = 1 << 13

// minMergeSplit is the smallest run length worth splitting across multiple
// goroutines during a merge round.
const minMergeSplit = 1 << 10

// SortFunc sorts s by cmp using up to workers goroutines: the slice is cut
// into a power-of-two number of chunks, each chunk is sorted concurrently
// with slices.SortFunc, and the sorted runs are combined by parallel merge
// rounds (later rounds split each large merge across idle workers via
// binary-search partitioning).
//
// workers is normalized like every parallel entry point (values below 2, or
// inputs below the serial threshold, run slices.SortFunc directly).
//
// When cmp is a total order over the elements of s — true for every sort in
// this codebase, whose comparators always break ties down to a unique key —
// the output is deterministic and identical to slices.SortFunc for any
// worker count. With genuinely equal elements the output is still sorted,
// but their relative order may depend on the chunk boundaries.
//
// A panic inside cmp is re-raised on the calling goroutine as a
// *WorkerPanicError after the pool has drained.
func SortFunc[T any](s []T, workers int, cmp func(a, b T) int) {
	if err := SortFuncCtx(context.Background(), s, workers, cmp); err != nil {
		// A background context never cancels, so the only possible error is
		// a recovered worker panic; re-raise it typed.
		panic(err)
	}
}

// SortFuncCtx is SortFunc with cooperative cancellation and panic isolation.
// The context is checked before the chunk phase and between merge rounds, so
// cancel latency is bounded by one round over the largest runs (individual
// chunk sorts and merge segments are not interruptible). It returns nil with
// s fully sorted; ctx.Err() on cancellation, leaving s an unspecified
// permutation of its input (partially sorted at best — callers must treat it
// as unsorted); or a *WorkerPanicError if cmp panicked, in which case the
// contents of s are unspecified and must be discarded.
func SortFuncCtx[T any](ctx context.Context, s []T, workers int, cmp func(a, b T) int) (err error) {
	defer RecoverPanicError(&err)
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = Normalize(workers)
	n := len(s)
	if workers < 2 || n < sortSerialThreshold {
		Run(1, func(int, func() bool) { slices.SortFunc(s, cmp) })
		return nil
	}

	// The largest power-of-two chunk count that keeps chunks big enough to
	// be worth a goroutine and does not exceed the worker budget.
	chunks := 1
	for chunks*2 <= workers && n/(chunks*2) >= sortSerialThreshold/4 {
		chunks *= 2
	}
	if chunks < 2 {
		Run(1, func(int, func() bool) { slices.SortFunc(s, cmp) })
		return nil
	}

	bounds := make([]int, chunks+1)
	for i := range bounds {
		bounds[i] = i * n / chunks
	}

	Run(chunks, func(t int, _ func() bool) {
		slices.SortFunc(s[bounds[t]:bounds[t+1]], cmp)
	})

	// log2(chunks) merge rounds, ping-ponging between s and a scratch
	// buffer. chunks is a power of two, so every round pairs runs evenly.
	scratch := make([]T, n)
	src, dst := s, scratch
	var tasks []mergeTask[T]
	for width := 1; width < chunks; width *= 2 {
		if err := ctx.Err(); err != nil {
			// The last completed round left a full permutation in src; copy
			// it back so s never holds the stale ping-pong buffer.
			if n > 0 && &src[0] != &s[0] {
				copy(s, src)
			}
			return err
		}
		merges := chunks / (2 * width)
		parts := workers / merges
		if parts < 1 {
			parts = 1
		}
		tasks = tasks[:0]
		for m := 0; m < merges; m++ {
			lo := bounds[2*m*width]
			mid := bounds[2*m*width+width]
			hi := bounds[2*(m+1)*width]
			tasks = appendMergeTasks(tasks, dst[lo:hi], src[lo:mid], src[mid:hi], parts, cmp)
		}
		w := workers
		if w > len(tasks) {
			w = len(tasks)
		}
		Run(w, func(t int, _ func() bool) {
			for i := t; i < len(tasks); i += w {
				mergeInto(tasks[i].dst, tasks[i].a, tasks[i].b, cmp)
			}
		})
		src, dst = dst, src
	}
	if n > 0 && &src[0] != &s[0] {
		copy(s, src)
	}
	return nil
}

// mergeTask is one independent segment of a merge round: merge sorted runs a
// and b into dst, where len(dst) == len(a)+len(b).
type mergeTask[T any] struct {
	dst, a, b []T
}

// appendMergeTasks splits the merge of sorted runs a and b into dst into up
// to parts independent tasks and appends them to out. Ties are taken from a
// first, so the merge is stable; the split points are found by binary search
// so the tasks partition dst exactly.
func appendMergeTasks[T any](out []mergeTask[T], dst, a, b []T, parts int, cmp func(a, b T) int) []mergeTask[T] {
	if parts < 2 || len(a) < minMergeSplit || len(b) < minMergeSplit {
		return append(out, mergeTask[T]{dst: dst, a: a, b: b})
	}
	prevA, prevB := 0, 0
	for p := 1; p <= parts; p++ {
		ai, bi := len(a), len(b)
		if p < parts {
			ai = p * len(a) / parts
			// Everything in b strictly below a[ai] merges before it (the
			// stable merge prefers a on ties), so the b split point is the
			// lower bound of a[ai].
			bi = lowerBound(b, a[ai], cmp)
		}
		out = append(out, mergeTask[T]{
			dst: dst[prevA+prevB : ai+bi],
			a:   a[prevA:ai],
			b:   b[prevB:bi],
		})
		prevA, prevB = ai, bi
	}
	return out
}

// mergeInto is a serial stable merge of sorted runs a and b into dst.
func mergeInto[T any](dst, a, b []T, cmp func(a, b T) int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// lowerBound returns the first index of sorted run b whose element is not
// less than key.
func lowerBound[T any](b []T, key T, cmp func(a, b T) int) int {
	lo, hi := 0, len(b)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if cmp(b[m], key) < 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}
