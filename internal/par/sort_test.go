package par

import (
	"cmp"
	"math/rand"
	"slices"
	"testing"
)

func randomInts(n int, seed int64) []int {
	src := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = src.Intn(10 * n)
	}
	return out
}

// distinct keys: (value, index) pairs so cmp is a total order even when the
// generator collides.
type keyed struct {
	v, id int
}

func cmpKeyed(a, b keyed) int {
	if a.v != b.v {
		return cmp.Compare(a.v, b.v)
	}
	return cmp.Compare(a.id, b.id)
}

func TestSortFuncMatchesSerial(t *testing.T) {
	sizes := []int{0, 1, 2, 100, sortSerialThreshold - 1, sortSerialThreshold, 50000, 131072}
	for _, n := range sizes {
		base := randomInts(n, int64(n))
		items := make([]keyed, n)
		for i, v := range base {
			items[i] = keyed{v: v, id: i}
		}
		want := slices.Clone(items)
		slices.SortFunc(want, cmpKeyed)
		for _, workers := range []int{1, 2, 3, 4, 7, 8} {
			got := slices.Clone(items)
			SortFunc(got, workers, cmpKeyed)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d workers=%d: parallel sort differs from serial", n, workers)
			}
		}
	}
}

func TestSortFuncDuplicatesStaySorted(t *testing.T) {
	// With equal elements the ordering guarantee weakens to "sorted"; the
	// multiset must still be preserved.
	n := 60000
	src := rand.New(rand.NewSource(9))
	s := make([]int, n)
	for i := range s {
		s[i] = src.Intn(8) // heavy duplication
	}
	counts := make(map[int]int)
	for _, v := range s {
		counts[v]++
	}
	SortFunc(s, 8, cmp.Compare[int])
	for i := 1; i < n; i++ {
		if s[i-1] > s[i] {
			t.Fatalf("not sorted at %d: %d > %d", i, s[i-1], s[i])
		}
	}
	for _, v := range s {
		counts[v]--
	}
	for v, c := range counts {
		if c != 0 {
			t.Fatalf("multiset changed for value %d (delta %d)", v, c)
		}
	}
}

func TestSortFuncAlreadySortedAndReversed(t *testing.T) {
	n := 40000
	asc := make([]int, n)
	for i := range asc {
		asc[i] = i
	}
	desc := make([]int, n)
	for i := range desc {
		desc[i] = n - i
	}
	for _, s := range [][]int{asc, desc} {
		got := slices.Clone(s)
		SortFunc(got, 6, cmp.Compare[int])
		if !slices.IsSorted(got) {
			t.Fatal("output not sorted")
		}
	}
}

func BenchmarkSortFunc(b *testing.B) {
	n := 1 << 20
	base := randomInts(n, 42)
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "serial", 8: "workers=8"}[workers], func(b *testing.B) {
			s := make([]int, n)
			for i := 0; i < b.N; i++ {
				copy(s, base)
				SortFunc(s, workers, cmp.Compare[int])
			}
		})
	}
}
