package par

import (
	"os"
	"runtime"
	"testing"
)

// TestMain deliberately oversubscribes the runtime on small CI machines:
// DefaultCap tracks max(GOMAXPROCS, NumCPU) with no unconditional floor, so
// on a 1-core runner every multi-worker scenario would normalize down to
// serial and the pool fan-out, panic-isolation, and leak paths under test
// would never engage. Raising GOMAXPROCS is the supported
// deliberate-oversubscription knob (see DefaultCap), used here exactly the
// way an operator would use it.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
	os.Exit(m.Run())
}
