package persist

import (
	"encoding/binary"
	"fmt"
	"math"

	"linkclust/internal/core"
)

// Sweep checkpoint payload (the bytes inside an EntryCkpt envelope, which
// already contributes magic/version/length/CRC):
//
//	offset  size  field
//	0       32    SHA-256 of the canonical graph the sweep runs over
//	32      8     Pos (pair index, little-endian)
//	40      8     Changes
//	48      4     Levels
//	52      8     PairsProcessed
//	60      8     OpsSinceFlatten
//	68      4     chain length (graph edge count)
//	72      4     merge count
//	76      ...   chain entries (int32 each)
//	...     ...   merges (Level, A, B, Into int32; Sim float64 bits — 24 B each)
//
// The embedded graph hash is what makes resume safe: a checkpoint is only
// honored for a job whose graph hashes to the same value, because SweepState
// is meaningful only against the exact sorted pair list that graph produces.
const (
	ckptFixedSize = 76
	mergeSize     = 24
	// maxCkptElems bounds the decoded chain/merge counts so a corrupt header
	// cannot drive a huge allocation before the length cross-check runs.
	maxCkptElems = 1 << 30
)

// EncodeSweepState serializes a checkpoint bound to the 32-byte graph hash.
func EncodeSweepState(graphSHA [32]byte, st *core.SweepState) []byte {
	buf := make([]byte, ckptFixedSize+4*len(st.Chain)+mergeSize*len(st.Merges))
	copy(buf[0:32], graphSHA[:])
	binary.LittleEndian.PutUint64(buf[32:], uint64(st.Pos))
	binary.LittleEndian.PutUint64(buf[40:], uint64(st.Changes))
	binary.LittleEndian.PutUint32(buf[48:], uint32(st.Levels))
	binary.LittleEndian.PutUint64(buf[52:], uint64(st.PairsProcessed))
	binary.LittleEndian.PutUint64(buf[60:], uint64(st.OpsSinceFlatten))
	binary.LittleEndian.PutUint32(buf[68:], uint32(len(st.Chain)))
	binary.LittleEndian.PutUint32(buf[72:], uint32(len(st.Merges)))
	off := ckptFixedSize
	for _, c := range st.Chain {
		binary.LittleEndian.PutUint32(buf[off:], uint32(c))
		off += 4
	}
	for _, m := range st.Merges {
		binary.LittleEndian.PutUint32(buf[off:], uint32(m.Level))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(m.A))
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(m.B))
		binary.LittleEndian.PutUint32(buf[off+12:], uint32(m.Into))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(m.Sim))
		off += mergeSize
	}
	return buf
}

// DecodeSweepState parses a checkpoint payload and returns the graph hash it
// is bound to plus the restored state. Any structural mismatch — short
// buffer, element counts that disagree with the payload size — returns
// ErrCorrupt; the caller treats that checkpoint as absent and re-runs from
// scratch, which is always correct.
func DecodeSweepState(payload []byte) ([32]byte, *core.SweepState, error) {
	var sha [32]byte
	if len(payload) < ckptFixedSize {
		return sha, nil, fmt.Errorf("checkpoint: %d-byte payload: %w", len(payload), ErrCorrupt)
	}
	copy(sha[:], payload[0:32])
	nChain := binary.LittleEndian.Uint32(payload[68:])
	nMerges := binary.LittleEndian.Uint32(payload[72:])
	if nChain > maxCkptElems || nMerges > maxCkptElems {
		return sha, nil, fmt.Errorf("checkpoint: implausible counts %d/%d: %w", nChain, nMerges, ErrCorrupt)
	}
	want := ckptFixedSize + 4*int(nChain) + mergeSize*int(nMerges)
	if len(payload) != want {
		return sha, nil, fmt.Errorf("checkpoint: %d-byte payload for %d chain + %d merges (want %d): %w",
			len(payload), nChain, nMerges, want, ErrCorrupt)
	}
	st := &core.SweepState{
		Pos:             int(binary.LittleEndian.Uint64(payload[32:])),
		Changes:         int64(binary.LittleEndian.Uint64(payload[40:])),
		Levels:          int32(binary.LittleEndian.Uint32(payload[48:])),
		PairsProcessed:  int64(binary.LittleEndian.Uint64(payload[52:])),
		OpsSinceFlatten: int64(binary.LittleEndian.Uint64(payload[60:])),
		Chain:           make([]int32, nChain),
		Merges:          make([]core.Merge, nMerges),
	}
	if st.Pos < 0 {
		return sha, nil, fmt.Errorf("checkpoint: negative position %d: %w", st.Pos, ErrCorrupt)
	}
	off := ckptFixedSize
	for i := range st.Chain {
		st.Chain[i] = int32(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	for i := range st.Merges {
		st.Merges[i] = core.Merge{
			Level: int32(binary.LittleEndian.Uint32(payload[off:])),
			A:     int32(binary.LittleEndian.Uint32(payload[off+4:])),
			B:     int32(binary.LittleEndian.Uint32(payload[off+8:])),
			Into:  int32(binary.LittleEndian.Uint32(payload[off+12:])),
			Sim:   math.Float64frombits(binary.LittleEndian.Uint64(payload[off+16:])),
		}
		off += mergeSize
	}
	return sha, st, nil
}
