package persist

import (
	"encoding/json"
	"errors"
	"os"
	"testing"

	"linkclust/internal/core"
)

// TestEntryCorruptionExhaustive flips every byte and truncates to every
// length of one finalized entry and asserts the reader never returns data:
// either the mutation is detected (ErrCorrupt) or — for a truncation to zero
// that deletes content but keeps the file — still detected. There is no
// mutation of this file that ReadEntry accepts, because the payload CRC
// covers every payload byte and the header fields cross-check each other.
func TestEntryCorruptionExhaustive(t *testing.T) {
	d := openDir(t)
	payload := []byte("link clustering pair list bytes, 42 of them!")
	if err := d.WriteEntry(EntryPairs, "victim", payload); err != nil {
		t.Fatal(err)
	}
	path := d.EntryPath(EntryPairs, "victim")
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	restore := func() {
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := range clean {
		mutated := append([]byte(nil), clean...)
		mutated[i] ^= 0xFF
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		got, rerr := d.ReadEntry(EntryPairs, "victim")
		if rerr == nil {
			t.Fatalf("byte flip at %d went undetected (got %q)", i, got)
		}
		if !errors.Is(rerr, ErrCorrupt) {
			t.Fatalf("byte flip at %d: error %v is not ErrCorrupt", i, rerr)
		}
	}
	for n := 0; n < len(clean); n++ {
		if err := os.WriteFile(path, clean[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		got, rerr := d.ReadEntry(EntryPairs, "victim")
		if rerr == nil {
			t.Fatalf("truncation to %d went undetected (got %q)", n, got)
		}
		if !errors.Is(rerr, ErrCorrupt) {
			t.Fatalf("truncation to %d: error %v is not ErrCorrupt", n, rerr)
		}
	}
	// Appended garbage is a length mismatch.
	if err := os.WriteFile(path, append(append([]byte(nil), clean...), 0xAB), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, rerr := d.ReadEntry(EntryPairs, "victim"); !errors.Is(rerr, ErrCorrupt) {
		t.Fatalf("appended byte: %v", rerr)
	}
	restore()
	if got, rerr := d.ReadEntry(EntryPairs, "victim"); rerr != nil || string(got) != string(payload) {
		t.Fatalf("restored entry unreadable: %q, %v", got, rerr)
	}
}

// TestJournalCorruptionExhaustive mutates a journal of three records at every
// byte and every truncation length and asserts replay always returns a valid
// prefix of the original records — never a mutated record, never an error
// that would block startup. A mutation in record K's frame yields at most the
// first K records.
func TestJournalCorruptionExhaustive(t *testing.T) {
	d := openDir(t)
	j, _, _, err := d.OpenJournal()
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Op: OpSubmit, ID: "j1-aaaa", GraphSHA: "deadbeef", Options: json.RawMessage(`{"algo":"sweep"}`)},
		{Op: OpStart, ID: "j1-aaaa"},
		{Op: OpDone, ID: "j1-aaaa", RKey: "rk1"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := d.Root() + "/" + journalFile
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// isPrefix checks got is a prefix of want, field-identical.
	isPrefix := func(got []Record) bool {
		if len(got) > len(want) {
			return false
		}
		for i, g := range got {
			w := want[i]
			if g.Op != w.Op || g.ID != w.ID || g.GraphSHA != w.GraphSHA ||
				g.RKey != w.RKey || string(g.Options) != string(w.Options) {
				return false
			}
		}
		return true
	}

	check := func(mutation string, data []byte) {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, got, _, err := d.OpenJournal()
		if err != nil {
			t.Fatalf("%s: OpenJournal errored: %v", mutation, err)
		}
		// After open, the file was truncated to the valid prefix: appends must
		// work and a further replay must agree.
		if err := j2.Append(Record{Op: OpCancel, ID: "probe"}); err != nil {
			t.Fatalf("%s: append after recovery: %v", mutation, err)
		}
		j2.Close()
		if !isPrefix(got) {
			t.Fatalf("%s: replay returned non-prefix %+v", mutation, got)
		}
		_, again, _, err := d.OpenJournal()
		if err != nil {
			t.Fatalf("%s: second replay: %v", mutation, err)
		}
		if len(again) != len(got)+1 || again[len(again)-1].ID != "probe" {
			t.Fatalf("%s: second replay got %d records, want %d", mutation, len(again), len(got)+1)
		}
	}

	for i := range clean {
		mutated := append([]byte(nil), clean...)
		mutated[i] ^= 0xFF
		check("flip@"+itoa(i), mutated)
	}
	for n := range clean {
		check("trunc@"+itoa(n), append([]byte(nil), clean[:n]...))
	}
	// Garbage appended after the last record: either rejected as a frame
	// (undersized header) or rejected by CRC — prefix is everything.
	check("garbage-tail", append(append([]byte(nil), clean...), 0xDE, 0xAD, 0xBE, 0xEF))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCheckpointCorruption byte-flips and truncates an encoded checkpoint;
// every structural mutation must either decode to ErrCorrupt or decode to a
// checkpoint whose scalar fields differ benignly (flips inside chain/merge
// payload bytes are caught one envelope up by the entry CRC, so the codec
// itself only owes structural validation).
func TestCheckpointCorruption(t *testing.T) {
	var sha [32]byte
	st := &core.SweepState{
		Pos:    5,
		Chain:  []int32{1, 2, 3},
		Merges: []core.Merge{{Level: 1, A: 0, B: 1, Into: 1, Sim: 0.5}, {Level: 2, A: 1, B: 2, Into: 2, Sim: 0.25}},
	}
	payload := EncodeSweepState(sha, st)
	// Truncations: every short length must be ErrCorrupt.
	for n := 0; n < len(payload); n++ {
		if _, _, err := DecodeSweepState(payload[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: %v", n, err)
		}
	}
	// Extensions must be ErrCorrupt (size cross-check).
	if _, _, err := DecodeSweepState(append(append([]byte(nil), payload...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("extended payload accepted")
	}
	// Count-field corruption: blow up the chain length field.
	mutated := append([]byte(nil), payload...)
	mutated[68], mutated[69], mutated[70], mutated[71] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, err := DecodeSweepState(mutated); !errors.Is(err, ErrCorrupt) {
		t.Fatal("implausible chain count accepted")
	}
}
