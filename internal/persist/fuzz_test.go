package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadEntry feeds arbitrary bytes to the entry reader as a file on disk.
// The invariant is total: for every input, ReadEntry either returns the
// payload of a file WriteEntry could have produced (magic, version, kind,
// length, and CRC all consistent) or a typed ErrCorrupt — never a panic,
// never an unbounded allocation.
func FuzzReadEntry(f *testing.F) {
	d, err := Open(filepath.Join(f.TempDir(), "state"))
	if err != nil {
		f.Fatal(err)
	}
	defer d.Close()
	if err := d.WriteEntry(EntryPairs, "seed", []byte("seed payload")); err != nil {
		f.Fatal(err)
	}
	clean, err := os.ReadFile(d.EntryPath(EntryPairs, "seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add([]byte{})
	f.Add([]byte("LCPE"))
	f.Add(clean[:entryHeaderSize])

	path := d.EntryPath(EntryPairs, "fuzz")
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		payload, err := d.ReadEntry(EntryPairs, "fuzz")
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed error: %v", err)
			}
			return
		}
		if len(data) < entryHeaderSize || len(payload) != len(data)-entryHeaderSize {
			t.Fatalf("accepted %d-byte file with %d-byte payload", len(data), len(payload))
		}
	})
}

// FuzzJournalReplay feeds arbitrary bytes to the journal replayer. Invariants:
// no panic, validOff never exceeds the input length, every returned record
// has a non-empty op and id, and re-serializing nothing — opening the file,
// truncating to validOff, appending one record — always yields a journal that
// replays to the same records plus the appended one.
func FuzzJournalReplay(f *testing.F) {
	d, err := Open(filepath.Join(f.TempDir(), "state"))
	if err != nil {
		f.Fatal(err)
	}
	defer d.Close()
	j, _, _, err := d.OpenJournal()
	if err != nil {
		f.Fatal(err)
	}
	j.Append(Record{Op: OpSubmit, ID: "j1", GraphSHA: "ab"})
	j.Append(Record{Op: OpDone, ID: "j1", RKey: "rk"})
	j.Close()
	clean, err := os.ReadFile(filepath.Join(d.Root(), journalFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add([]byte{})
	f.Add([]byte("LCJL"))
	f.Add(clean[:9])

	f.Fuzz(func(t *testing.T, data []byte) {
		records, validOff := replayFrames(data)
		if validOff < 0 || validOff > int64(len(data)) {
			t.Fatalf("validOff %d outside [0, %d]", validOff, len(data))
		}
		if validOff > 0 && validOff < 8 {
			t.Fatalf("validOff %d splits the header", validOff)
		}
		for i, r := range records {
			if r.Op == "" || r.ID == "" {
				t.Fatalf("record %d lacks op/id: %+v", i, r)
			}
		}
		// The valid prefix replays to itself.
		again, off2 := replayFrames(data[:validOff])
		if off2 != validOff || len(again) != len(records) {
			t.Fatalf("prefix replay: %d records @%d, want %d @%d", len(again), off2, len(records), validOff)
		}
	})
}
