package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"linkclust/internal/fault"
)

// Job journal: an append-only write-ahead log of job lifecycle events. The
// file starts with an 8-byte header (magic "LCJL", format version), followed
// by framed records:
//
//	offset  size  field
//	0       4     payload byte length (little-endian)
//	4       4     CRC32 (IEEE) of the payload
//	8       ...   payload (one JSON-encoded Record)
//
// Append writes one whole frame and fsyncs before reporting success, so the
// journal on disk is always a valid prefix of frames followed by at most one
// torn tail — the write the crash interrupted. Replay validates every frame
// and stops at the first invalid one; the opener then truncates the tail so
// subsequent appends extend a valid file. A frame's payload is hostile input
// on the way back in: lengths are bounded before allocation and the CRC is
// checked before the JSON decoder sees a byte.
const (
	journalMagic   = "LCJL"
	journalVersion = 1
	frameHeader    = 8
	// maxRecordBytes bounds one record's payload so a corrupt length field
	// cannot trigger an enormous allocation. Records are small JSON (no
	// graph bytes — those live in the entry store), so 1 MiB is generous.
	maxRecordBytes = 1 << 20
)

// Op is a journal record's event type.
type Op string

const (
	// OpSubmit records an accepted job: id, graph hash, options, and the
	// client idempotency key. Written before the job is visible to workers.
	OpSubmit Op = "submit"
	// OpStart records a worker picking the job up.
	OpStart Op = "start"
	// OpCkpt records that a sweep checkpoint at pair position Pos was
	// durably written to the entry store (the record follows the entry
	// write, so a replayed OpCkpt always has its checkpoint — at worst a
	// newer one, which is also valid).
	OpCkpt Op = "ckpt"
	// OpDone records a finished job with its result summary and the entry
	// name its merge stream is cached under.
	OpDone Op = "done"
	// OpFail and OpCancel record terminal failures; a job that reached
	// neither a terminal op nor OpDone is interrupted and will be re-run.
	OpFail   Op = "fail"
	OpCancel Op = "cancel"
)

// Record is one journal event. Options and Result travel as raw JSON so this
// package stays ignorant of the job layer's types (which import it).
type Record struct {
	Op       Op              `json:"op"`
	ID       string          `json:"id"`
	Seq      int64           `json:"seq,omitempty"`
	GraphSHA string          `json:"graph,omitempty"`
	Options  json.RawMessage `json:"opts,omitempty"`
	IdemKey  string          `json:"idem,omitempty"`
	RKey     string          `json:"rkey,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Err      string          `json:"err,omitempty"`
	Pos      int             `json:"pos,omitempty"`
	AtUnixMS int64           `json:"at,omitempty"`
}

// Journal is the open write handle. Appends are serialized internally; the
// first write error sticks and turns every later Append into the same typed
// failure, which the job layer uses to degrade to memory-only durability.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	broken error
}

// ReplayStats summarizes what OpenJournal found.
type ReplayStats struct {
	// Records is the number of valid records replayed.
	Records int
	// TruncatedBytes is the size of the discarded invalid tail (0 for a
	// clean file).
	TruncatedBytes int64
}

// OpenJournal opens the state dir's journal, replays every valid record, and
// truncates any torn or corrupt tail so the returned handle appends to a
// valid file. A missing journal is created empty. The replayed records are
// returned in append order.
func (d *Dir) OpenJournal() (*Journal, []Record, ReplayStats, error) {
	path := filepath.Join(d.root, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, ReplayStats{}, fmt.Errorf("persist: opening journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, ReplayStats{}, fmt.Errorf("persist: reading journal: %w", err)
	}
	records, validOff := replayFrames(data)
	var stats ReplayStats
	stats.Records = len(records)
	stats.TruncatedBytes = int64(len(data)) - validOff
	if validOff == 0 {
		// Empty or headerless file: (re)write the header. A journal whose
		// very header is corrupt loses its history — that is detection, not
		// silent service, and the entry store still holds every cached
		// result for content-addressed resubmission.
		if err := f.Truncate(0); err == nil {
			var hdr [8]byte
			copy(hdr[0:], journalMagic)
			binary.LittleEndian.PutUint32(hdr[4:], journalVersion)
			_, err = f.WriteAt(hdr[:], 0)
			validOff = 8
		}
		if err != nil {
			f.Close()
			return nil, nil, stats, fmt.Errorf("persist: initializing journal: %w", err)
		}
	} else if stats.TruncatedBytes > 0 {
		if err := f.Truncate(validOff); err != nil {
			f.Close()
			return nil, nil, stats, fmt.Errorf("persist: truncating journal tail: %w", err)
		}
	}
	if _, err := f.Seek(validOff, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, stats, fmt.Errorf("persist: seeking journal: %w", err)
	}
	return &Journal{f: f}, records, stats, nil
}

// replayFrames walks data and returns every valid record plus the byte
// offset up to which the file is valid. It returns validOff 0 when even the
// file header fails validation.
func replayFrames(data []byte) (records []Record, validOff int64) {
	if len(data) < 8 || string(data[0:4]) != journalMagic ||
		binary.LittleEndian.Uint32(data[4:]) != journalVersion {
		return nil, 0
	}
	off := 8
	for {
		if len(data)-off < frameHeader {
			break // torn frame header (or clean EOF)
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen <= 0 || plen > maxRecordBytes || len(data)-off-frameHeader < plen {
			break // implausible length or torn payload
		}
		payload := data[off+frameHeader : off+frameHeader+plen]
		if crc32.Checksum(payload, entryCRC) != crc {
			break // corrupt payload
		}
		var rec Record
		if json.Unmarshal(payload, &rec) != nil || rec.Op == "" || rec.ID == "" {
			break // valid frame, nonsense record: stop, do not guess
		}
		records = append(records, rec)
		off += frameHeader + plen
	}
	return records, int64(off)
}

// Append journals one record: frame, write, fsync. A firing
// fault.JournalAppend hit (or any disk error) fails with ErrWriteFault; the
// failure sticks, so the caller can make one degrade decision and stop
// paying for doomed appends.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return j.broken
	}
	if fault.Hit(fault.JournalAppend) {
		j.broken = fmt.Errorf("journal append %s %s: injected fault: %w", rec.Op, rec.ID, ErrWriteFault)
		return j.broken
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("persist: encoding journal record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("persist: journal record %s %s is %d bytes (max %d)", rec.Op, rec.ID, len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, entryCRC))
	copy(frame[frameHeader:], payload)
	if _, err := j.f.Write(frame); err != nil {
		j.broken = fmt.Errorf("journal append %s %s: %v: %w", rec.Op, rec.ID, err, ErrWriteFault)
		return j.broken
	}
	if err := j.f.Sync(); err != nil {
		j.broken = fmt.Errorf("journal sync %s %s: %v: %w", rec.Op, rec.ID, err, ErrWriteFault)
		return j.broken
	}
	return nil
}

// Close closes the journal file. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken == nil {
		j.broken = fmt.Errorf("persist: journal closed")
	}
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
