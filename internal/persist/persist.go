// Package persist is the crash-safe persistence layer behind linkclustd: a
// checksummed append-only job journal (WAL), an atomic enveloped entry store
// for the durable cache tiers / graph blobs / sweep checkpoints, a versioned
// cache manifest, a pid lockfile, and the startup janitor that reclaims what
// a crashed predecessor left behind.
//
// Design rules, in order of importance:
//
//  1. Corruption is detected, never served. Every artifact on disk — journal
//     record, cache entry, checkpoint, graph blob — carries magic, version,
//     length, and CRC32; a reader that cannot validate all four treats the
//     artifact as absent (cache miss, replay stop), never as data.
//  2. Writes are atomic. Entries are written to a temp file in the same
//     directory, fsynced, and renamed into place; the journal appends whole
//     framed records and fsyncs before reporting success, so a crash leaves
//     at worst a truncated tail that replay detects and discards.
//  3. Persistence failures degrade, they do not fail jobs. A full disk (or
//     the fault.JournalAppend / fault.CacheStoreWrite points) turns the
//     daemon memory-only; results are still computed and served.
//
// The package is deliberately ignorant of HTTP and job scheduling: it stores
// and replays bytes and typed records. internal/jobs owns the semantics.
// See DESIGN.md §11 for the formats and the replay rules.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Typed failure classes, matchable with errors.Is through context wrapping.
var (
	// ErrCorrupt marks an artifact that failed magic/version/length/CRC
	// validation (or whose read was failed by the fault.CacheStoreLoad
	// point). Callers must treat it as a miss.
	ErrCorrupt = errors.New("persist: corrupt entry")
	// ErrWriteFault is the write-side failure class: a temp-file, fsync,
	// rename, or journal append error (or the fault.CacheStoreWrite /
	// fault.JournalAppend points). Callers degrade to memory-only.
	ErrWriteFault = errors.New("persist: write failed")
	// ErrLocked means another live process holds the state directory.
	ErrLocked = errors.New("persist: state directory locked")
)

// Subdirectories of a state dir. Everything a run writes lives under one of
// these; the janitor only ever touches paths below them (plus the lockfile).
const (
	graphsDir = "graphs" // canonical graph text blobs, content-addressed
	cacheDir  = "cache"  // durable pair-list / result entries + manifest
	ckptDir   = "ckpt"   // latest sweep checkpoint per interrupted job
	// SpillSubdir is the parent handed to the out-of-core sweep when a
	// state dir is configured, so orphaned per-run spill directories from a
	// crashed process are inside janitor reach.
	SpillSubdir = "spill"

	lockFile    = "LOCK"
	journalFile = "journal.wal"
	tmpSuffix   = ".tmp"
)

// Dir is an opened, lock-held state directory.
type Dir struct {
	root string
	lock *os.File
}

// Open creates (if needed) and locks the state directory at root. A live
// holder of the lockfile fails the open with ErrLocked; a stale lockfile —
// its pid dead or unparseable — is taken over, and the caller should run
// Janitor before trusting temp-file-free invariants.
func Open(root string) (*Dir, error) {
	for _, sub := range []string{"", graphsDir, cacheDir, ckptDir, SpillSubdir} {
		if err := os.MkdirAll(filepath.Join(root, sub), 0o755); err != nil {
			return nil, fmt.Errorf("persist: creating state dir: %w", err)
		}
	}
	lockPath := filepath.Join(root, lockFile)
	if raw, err := os.ReadFile(lockPath); err == nil {
		if pid, perr := strconv.Atoi(strings.TrimSpace(string(raw))); perr == nil && pidAlive(pid) && pid != os.Getpid() {
			return nil, fmt.Errorf("%w: held by live pid %d", ErrLocked, pid)
		}
		// Stale: the writer is gone. Fall through and take the lock over.
	}
	f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: lockfile: %w", err)
	}
	if _, err := f.WriteString(strconv.Itoa(os.Getpid()) + "\n"); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: lockfile: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: lockfile: %w", err)
	}
	return &Dir{root: root, lock: f}, nil
}

// Root returns the state directory path.
func (d *Dir) Root() string { return d.root }

// SpillDir returns the spill parent inside the state dir (created by Open).
func (d *Dir) SpillDir() string { return filepath.Join(d.root, SpillSubdir) }

// Close releases the lockfile. It does not remove any state — that is the
// whole point of the package.
func (d *Dir) Close() error {
	if d.lock == nil {
		return nil
	}
	err := d.lock.Close()
	d.lock = nil
	os.Remove(filepath.Join(d.root, lockFile))
	return err
}

// Janitor removes what a crashed predecessor can leave behind — temp entry
// files that never reached their rename, and per-run spill directories whose
// owning process died mid-sweep — and reports the bytes reclaimed. It never
// touches finalized entries, the journal, or the manifest: those are replay
// and cache state, not garbage. Call it after Open (the lock guarantees no
// sibling process is mid-write) and before journal replay.
func (d *Dir) Janitor() (reclaimed int64, err error) {
	var firstErr error
	for _, sub := range []string{graphsDir, cacheDir, ckptDir} {
		entries, rerr := os.ReadDir(filepath.Join(d.root, sub))
		if rerr != nil {
			if firstErr == nil {
				firstErr = rerr
			}
			continue
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), tmpSuffix) {
				continue
			}
			path := filepath.Join(d.root, sub, e.Name())
			if info, serr := e.Info(); serr == nil {
				reclaimed += info.Size()
			}
			if rerr := os.Remove(path); rerr != nil && firstErr == nil {
				firstErr = rerr
			}
		}
	}
	// Orphaned spill runs: every directory under spill/ belongs to a dead
	// run — a live run in this process cannot exist yet (Janitor runs before
	// the job layer starts), and the lockfile rules out a live sibling.
	spillRoot := d.SpillDir()
	if entries, rerr := os.ReadDir(spillRoot); rerr == nil {
		for _, e := range entries {
			path := filepath.Join(spillRoot, e.Name())
			reclaimed += treeSize(path)
			if rerr := os.RemoveAll(path); rerr != nil && firstErr == nil {
				firstErr = rerr
			}
		}
	} else if firstErr == nil {
		firstErr = rerr
	}
	return reclaimed, firstErr
}

// treeSize sums the file sizes under path (best-effort; errors count as 0).
func treeSize(path string) int64 {
	var total int64
	filepath.WalkDir(path, func(_ string, e os.DirEntry, err error) error {
		if err == nil && !e.IsDir() {
			if info, ierr := e.Info(); ierr == nil {
				total += info.Size()
			}
		}
		return nil
	})
	return total
}

// pidAlive reports whether pid names a live process. On unixes FindProcess
// always succeeds, so liveness is probed with signal 0; on platforms without
// that probe the conservative answer is "alive" only if FindProcess says so.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	return signalZero(p)
}
