package persist

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"linkclust/internal/core"
	"linkclust/internal/fault"
)

func openDir(t *testing.T) *Dir {
	t.Helper()
	d, err := Open(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func resetFaults(t *testing.T) {
	t.Helper()
	fault.Reset()
	t.Cleanup(fault.Reset)
}

func TestOpenLocking(t *testing.T) {
	root := filepath.Join(t.TempDir(), "state")
	d, err := Open(root)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Same pid re-opening is allowed (the daemon restarts in-process in
	// tests); a foreign live pid is not, and pid 1 is reliably alive.
	if _, err := Open(root); err != nil {
		t.Fatalf("re-open by same pid: %v", err)
	}
	if err := os.WriteFile(filepath.Join(root, lockFile), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(root); !errors.Is(err, ErrLocked) {
		t.Fatalf("open with live foreign lock: got %v, want ErrLocked", err)
	}
	// A stale lock (dead pid) is taken over. Pid numbers near the max are
	// effectively never alive on a test machine.
	if err := os.WriteFile(filepath.Join(root, lockFile), []byte("4194200\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(root)
	if err != nil {
		t.Fatalf("open with stale lock: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(root, lockFile))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := strconv.Atoi(string(raw[:len(raw)-1])); got != os.Getpid() {
		t.Fatalf("lockfile pid = %d, want %d", got, os.Getpid())
	}
	d2.Close()
	if _, err := os.Stat(filepath.Join(root, lockFile)); !os.IsNotExist(err) {
		t.Fatalf("lockfile survives Close: %v", err)
	}
	d.Close()
}

func TestJanitor(t *testing.T) {
	d := openDir(t)
	// Plant what a crash leaves behind: temp entry files and a spill run dir.
	tmp1 := filepath.Join(d.Root(), cacheDir, "deadbeef-12345"+tmpSuffix)
	if err := os.WriteFile(tmp1, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp2 := filepath.Join(d.Root(), ckptDir, "j1-abc-7"+tmpSuffix)
	if err := os.WriteFile(tmp2, make([]byte, 50), 0o644); err != nil {
		t.Fatal(err)
	}
	spillRun := filepath.Join(d.SpillDir(), "run-123")
	if err := os.MkdirAll(spillRun, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(spillRun, "bucket-0.lcsb"), make([]byte, 200), 0o644); err != nil {
		t.Fatal(err)
	}
	// Plant what must survive: a finalized entry and the journal.
	if err := d.WriteEntry(EntryPairs, "keepme", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	j, _, _, err := d.OpenJournal()
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	reclaimed, err := d.Janitor()
	if err != nil {
		t.Fatalf("Janitor: %v", err)
	}
	if reclaimed != 350 {
		t.Fatalf("reclaimed %d bytes, want 350", reclaimed)
	}
	for _, gone := range []string{tmp1, tmp2, spillRun} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Errorf("janitor left %s behind (%v)", gone, err)
		}
	}
	if _, err := d.ReadEntry(EntryPairs, "keepme"); err != nil {
		t.Errorf("janitor damaged finalized entry: %v", err)
	}
	if _, err := os.Stat(filepath.Join(d.Root(), journalFile)); err != nil {
		t.Errorf("janitor damaged journal: %v", err)
	}
}

func TestEntryRoundTrip(t *testing.T) {
	d := openDir(t)
	payload := []byte("the quick brown fox")
	for _, k := range []Kind{EntryPairs, EntryResult, EntryGraph, EntryCkpt} {
		if err := d.WriteEntry(k, "e1", payload); err != nil {
			t.Fatalf("WriteEntry kind %d: %v", k, err)
		}
		got, err := d.ReadEntry(k, "e1")
		if err != nil {
			t.Fatalf("ReadEntry kind %d: %v", k, err)
		}
		if string(got) != string(payload) {
			t.Fatalf("kind %d round-trip: %q", k, got)
		}
	}
	// Kind confusion: the pairs entry read back as a result entry is corrupt,
	// not data. (EntryPairs and EntryResult share cache/, so the name must
	// differ for the files to collide meaningfully.)
	if err := d.WriteEntry(EntryPairs, "kindmix", payload); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadEntry(EntryResult, "kindmix"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("cross-kind read: got %v, want ErrCorrupt", err)
	}
	// Missing entries are plain misses.
	if _, err := d.ReadEntry(EntryPairs, "nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing entry: got %v, want ErrNotExist", err)
	}
	// Overwrite is atomic replacement.
	if err := d.WriteEntry(EntryPairs, "e1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := d.ReadEntry(EntryPairs, "e1"); string(got) != "v2" {
		t.Fatalf("overwrite: %q", got)
	}
	d.RemoveEntry(EntryPairs, "e1")
	if _, err := d.ReadEntry(EntryPairs, "e1"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("after RemoveEntry: %v", err)
	}
	// No temp files linger after any of the above.
	ents, _ := os.ReadDir(filepath.Join(d.Root(), cacheDir))
	for _, e := range ents {
		if filepath.Ext(e.Name()) == tmpSuffix {
			t.Errorf("stray temp file %s", e.Name())
		}
	}
}

func TestEntryWriteFault(t *testing.T) {
	resetFaults(t)
	d := openDir(t)
	if err := d.WriteEntry(EntryPairs, "pre", []byte("old")); err != nil {
		t.Fatal(err)
	}
	fault.Arm(fault.CacheStoreWrite, 1, nil)
	err := d.WriteEntry(EntryPairs, "pre", []byte("new"))
	if !errors.Is(err, ErrWriteFault) {
		t.Fatalf("armed write: got %v, want ErrWriteFault", err)
	}
	// The failed write neither clobbered the old entry nor left a temp file.
	if got, rerr := d.ReadEntry(EntryPairs, "pre"); rerr != nil || string(got) != "old" {
		t.Fatalf("old entry after faulted overwrite: %q, %v", got, rerr)
	}
	if err := d.WriteEntry(EntryPairs, "pre", []byte("new")); err != nil {
		t.Fatalf("write after fault disarmed: %v", err)
	}
}

func TestEntryLoadFault(t *testing.T) {
	resetFaults(t)
	d := openDir(t)
	if err := d.WriteEntry(EntryResult, "r", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	fault.Arm(fault.CacheStoreLoad, 1, nil)
	if _, err := d.ReadEntry(EntryResult, "r"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("armed load: got %v, want ErrCorrupt", err)
	}
	if got, err := d.ReadEntry(EntryResult, "r"); err != nil || string(got) != "ok" {
		t.Fatalf("load after fault fired: %q, %v", got, err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	d := openDir(t)
	if m := d.LoadManifest(); len(m.Entries) != 0 || m.Version != manifestVersion {
		t.Fatalf("fresh manifest: %+v", m)
	}
	m := d.LoadManifest()
	m.Entries["abc"] = 123
	m.Entries["def"] = 456
	if err := d.SaveManifest(m); err != nil {
		t.Fatalf("SaveManifest: %v", err)
	}
	got := d.LoadManifest()
	if len(got.Entries) != 2 || got.Entries["abc"] != 123 || got.Entries["def"] != 456 {
		t.Fatalf("reloaded manifest: %+v", got)
	}
	// Garbage manifests degrade to empty, never error.
	if err := os.WriteFile(d.manifestPath(), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if m := d.LoadManifest(); len(m.Entries) != 0 {
		t.Fatalf("corrupt manifest should load empty: %+v", m)
	}
	wrong, _ := json.Marshal(Manifest{Version: 99, Entries: map[string]int64{"x": 1}})
	if err := os.WriteFile(d.manifestPath(), wrong, 0o644); err != nil {
		t.Fatal(err)
	}
	if m := d.LoadManifest(); len(m.Entries) != 0 {
		t.Fatalf("wrong-version manifest should load empty: %+v", m)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	d := openDir(t)
	j, recs, stats, err := d.OpenJournal()
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(recs) != 0 || stats.Records != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("fresh journal: recs=%d stats=%+v", len(recs), stats)
	}
	want := []Record{
		{Op: OpSubmit, ID: "j1-aaaa", Seq: 1, GraphSHA: "aa", Options: json.RawMessage(`{"workers":4}`), IdemKey: "k1"},
		{Op: OpStart, ID: "j1-aaaa"},
		{Op: OpCkpt, ID: "j1-aaaa", Pos: 512},
		{Op: OpDone, ID: "j1-aaaa", RKey: "rk", Result: json.RawMessage(`{"levels":3}`)},
		{Op: OpFail, ID: "j2-bbbb", Err: "boom"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append %s: %v", r.Op, err)
		}
	}
	j.Close()
	if err := j.Append(Record{Op: OpStart, ID: "x"}); err == nil {
		t.Fatal("append after Close succeeded")
	}

	j2, got, stats, err := d.OpenJournal()
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	defer j2.Close()
	if stats.TruncatedBytes != 0 {
		t.Fatalf("clean journal truncated %d bytes", stats.TruncatedBytes)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Op != w.Op || g.ID != w.ID || g.Seq != w.Seq || g.GraphSHA != w.GraphSHA ||
			g.IdemKey != w.IdemKey || g.RKey != w.RKey || g.Err != w.Err || g.Pos != w.Pos ||
			string(g.Options) != string(w.Options) || string(g.Result) != string(w.Result) {
			t.Errorf("record %d: got %+v, want %+v", i, g, w)
		}
	}
	// Appending through the re-opened handle extends, not clobbers.
	if err := j2.Append(Record{Op: OpCancel, ID: "j2-bbbb"}); err != nil {
		t.Fatal(err)
	}
	_, got3, _, err := d.OpenJournal()
	if err != nil {
		t.Fatal(err)
	}
	if len(got3) != len(want)+1 || got3[len(got3)-1].Op != OpCancel {
		t.Fatalf("after append-on-reopen: %d records, last %+v", len(got3), got3[len(got3)-1])
	}
}

func TestJournalAppendFault(t *testing.T) {
	resetFaults(t)
	d := openDir(t)
	j, _, _, err := d.OpenJournal()
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Op: OpSubmit, ID: "j1"}); err != nil {
		t.Fatal(err)
	}
	fault.Arm(fault.JournalAppend, 1, nil)
	if err := j.Append(Record{Op: OpStart, ID: "j1"}); !errors.Is(err, ErrWriteFault) {
		t.Fatalf("armed append: got %v, want ErrWriteFault", err)
	}
	// The failure sticks even after the point disarms: one degrade decision.
	if err := j.Append(Record{Op: OpDone, ID: "j1"}); !errors.Is(err, ErrWriteFault) {
		t.Fatalf("append after fault: got %v, want sticky ErrWriteFault", err)
	}
	// The file holds exactly the pre-fault record.
	_, recs, _, err := d.OpenJournal()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Op != OpSubmit {
		t.Fatalf("journal after faulted appends: %+v", recs)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	var sha [32]byte
	for i := range sha {
		sha[i] = byte(i * 7)
	}
	st := &core.SweepState{
		Pos:             9,
		Chain:           []int32{3, 1, 4, 1, 5},
		Changes:         42,
		Merges:          []core.Merge{{Level: 1, A: 0, B: 2, Into: 0, Sim: 0.75}, {Level: 2, A: 0, B: 4, Into: 4, Sim: 0.5}},
		Levels:          2,
		PairsProcessed:  9,
		OpsSinceFlatten: 17,
	}
	payload := EncodeSweepState(sha, st)
	gotSHA, got, err := DecodeSweepState(payload)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if gotSHA != sha {
		t.Fatal("graph hash mismatch")
	}
	if got.Pos != st.Pos || got.Changes != st.Changes || got.Levels != st.Levels ||
		got.PairsProcessed != st.PairsProcessed || got.OpsSinceFlatten != st.OpsSinceFlatten {
		t.Fatalf("scalars: got %+v", got)
	}
	if len(got.Chain) != len(st.Chain) || len(got.Merges) != len(st.Merges) {
		t.Fatalf("lengths: %d chain, %d merges", len(got.Chain), len(got.Merges))
	}
	for i := range st.Chain {
		if got.Chain[i] != st.Chain[i] {
			t.Fatalf("chain[%d] = %d", i, got.Chain[i])
		}
	}
	for i := range st.Merges {
		if got.Merges[i] != st.Merges[i] {
			t.Fatalf("merges[%d] = %+v", i, got.Merges[i])
		}
	}
	// Empty state round-trips too (fresh checkpoint at Pos 0).
	p0 := EncodeSweepState(sha, &core.SweepState{})
	if _, got0, err := DecodeSweepState(p0); err != nil || got0.Pos != 0 || len(got0.Chain) != 0 {
		t.Fatalf("empty state: %+v, %v", got0, err)
	}
}
