//go:build !unix

package persist

import "os"

// signalZero has no portable liveness probe off unix; report alive and let
// the operator remove a genuinely stale lockfile by hand. The conservative
// direction matters: treating a live process as dead would let two daemons
// write one journal.
func signalZero(*os.Process) bool { return true }
