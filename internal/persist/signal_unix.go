//go:build unix

package persist

import (
	"os"
	"syscall"
)

// signalZero probes liveness with the null signal: delivery is never
// attempted, but permission and existence are checked. EPERM means the pid
// exists under another uid — still alive for lock purposes.
func signalZero(p *os.Process) bool {
	err := p.Signal(syscall.Signal(0))
	return err == nil || err == syscall.EPERM
}
