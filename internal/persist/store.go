package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"linkclust/internal/fault"
)

// Entry envelope: every persisted artifact outside the journal (cache
// entries, graph blobs, checkpoints) is one file of header + payload.
//
//	offset  size  field
//	0       4     magic "LCPE"
//	4       4     format version (little-endian, = 1)
//	8       4     kind code (EntryPairs / EntryResult / EntryGraph / EntryCkpt)
//	12      8     payload byte length
//	20      4     CRC32 (IEEE) of the payload
//	24      8     reserved (zero)
//	32      ...   payload
//
// The kind code in the header is validated against the kind the reader asked
// for, so a file renamed across kinds (or a manifest pointing at the wrong
// file) reads as corrupt rather than decoding garbage into the wrong type.
const (
	entryMagic      = "LCPE"
	entryVersion    = 1
	entryHeaderSize = 32
)

// Entry kinds. The code is part of the on-disk format — append, never renumber.
type Kind uint32

const (
	EntryPairs Kind = iota + 1
	EntryResult
	EntryGraph
	EntryCkpt
)

// kindDir maps a kind to its subdirectory: cache entries share cache/ (and
// the manifest), graph blobs and checkpoints have their own lifecycles.
func kindDir(k Kind) string {
	switch k {
	case EntryGraph:
		return graphsDir
	case EntryCkpt:
		return ckptDir
	default:
		return cacheDir
	}
}

var entryCRC = crc32.IEEETable

// EntryPath returns the file path an entry of kind k named name lives at.
// name must already be filesystem-safe (the callers use hex digests and job
// ids, both of which are).
func (d *Dir) EntryPath(k Kind, name string) string {
	return filepath.Join(d.root, kindDir(k), name+".lcpe")
}

// WriteEntry atomically persists payload as the entry (k, name): temp file
// in the destination directory, fsync, rename. An existing entry is
// replaced atomically. A firing fault.CacheStoreWrite hit (or any disk
// error) fails with ErrWriteFault and leaves no finalized file — at worst a
// temp file the janitor reclaims.
func (d *Dir) WriteEntry(k Kind, name string, payload []byte) error {
	if fault.Hit(fault.CacheStoreWrite) {
		return fmt.Errorf("entry %s/%s: injected store fault: %w", kindDir(k), name, ErrWriteFault)
	}
	var hdr [entryHeaderSize]byte
	copy(hdr[0:], entryMagic)
	binary.LittleEndian.PutUint32(hdr[4:], entryVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(k))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(payload, entryCRC))

	dst := d.EntryPath(k, name)
	tmp, err := os.CreateTemp(filepath.Dir(dst), name+"-*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("entry %s: %v: %w", name, err, ErrWriteFault)
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("entry %s: %v: %w", name, err, ErrWriteFault)
	}
	if _, err := tmp.Write(hdr[:]); err != nil {
		return cleanup(err)
	}
	if _, err := tmp.Write(payload); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("entry %s: %v: %w", name, err, ErrWriteFault)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("entry %s: %v: %w", name, err, ErrWriteFault)
	}
	return nil
}

// ReadEntry loads and validates the entry (k, name). A missing file returns
// os.ErrNotExist (a plain miss); any validation failure — magic, version,
// kind, length, CRC, or a firing fault.CacheStoreLoad hit — returns
// ErrCorrupt. Corrupt entries are NOT removed here; RemoveEntry is the
// caller's follow-up once it has counted the corruption.
func (d *Dir) ReadEntry(k Kind, name string) ([]byte, error) {
	data, err := os.ReadFile(d.EntryPath(k, name))
	if err != nil {
		return nil, err
	}
	if len(data) < entryHeaderSize {
		return nil, fmt.Errorf("entry %s: %d-byte file: %w", name, len(data), ErrCorrupt)
	}
	if string(data[0:4]) != entryMagic {
		return nil, fmt.Errorf("entry %s: magic %q: %w", name, data[0:4], ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != entryVersion {
		return nil, fmt.Errorf("entry %s: version %d: %w", name, v, ErrCorrupt)
	}
	if got := Kind(binary.LittleEndian.Uint32(data[8:])); got != k {
		return nil, fmt.Errorf("entry %s: kind %d, want %d: %w", name, got, k, ErrCorrupt)
	}
	plen := binary.LittleEndian.Uint64(data[12:])
	if plen != uint64(len(data)-entryHeaderSize) {
		return nil, fmt.Errorf("entry %s: header claims %d payload bytes, file has %d: %w",
			name, plen, len(data)-entryHeaderSize, ErrCorrupt)
	}
	for _, b := range data[24:entryHeaderSize] {
		if b != 0 {
			return nil, fmt.Errorf("entry %s: nonzero reserved bytes: %w", name, ErrCorrupt)
		}
	}
	payload := data[entryHeaderSize:]
	if crc := crc32.Checksum(payload, entryCRC); crc != binary.LittleEndian.Uint32(data[20:]) {
		return nil, fmt.Errorf("entry %s: crc %08x, header %08x: %w",
			name, crc, binary.LittleEndian.Uint32(data[20:]), ErrCorrupt)
	}
	if fault.Hit(fault.CacheStoreLoad) {
		return nil, fmt.Errorf("entry %s: injected corruption: %w", name, ErrCorrupt)
	}
	return payload, nil
}

// RemoveEntry deletes the entry file; missing is fine.
func (d *Dir) RemoveEntry(k Kind, name string) {
	os.Remove(d.EntryPath(k, name))
}

// Manifest is the durable cache's index: which entries the cache tier wrote
// completely, with their payload sizes. An entry file not named by the
// manifest is invisible (a crash between entry rename and manifest save
// costs one cache insert, never correctness); a manifest line whose file is
// missing or corrupt is a miss. The manifest itself is versioned and written
// atomically through the same temp+rename path as entries.
type Manifest struct {
	Version int              `json:"version"`
	Entries map[string]int64 `json:"entries"` // entry name → payload bytes
}

const manifestVersion = 1

func (d *Dir) manifestPath() string {
	return filepath.Join(d.root, cacheDir, "manifest.json")
}

// LoadManifest reads the cache manifest. Missing, unparseable, or
// wrong-version manifests yield an empty one — the durable cache then starts
// cold, which is a degradation, not an error.
func (d *Dir) LoadManifest() *Manifest {
	m := &Manifest{Version: manifestVersion, Entries: map[string]int64{}}
	raw, err := os.ReadFile(d.manifestPath())
	if err != nil {
		return m
	}
	var got Manifest
	if json.Unmarshal(raw, &got) != nil || got.Version != manifestVersion || got.Entries == nil {
		return m
	}
	return &got
}

// SaveManifest atomically rewrites the cache manifest.
func (d *Dir) SaveManifest(m *Manifest) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Join(d.root, cacheDir), "manifest-*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("manifest: %v: %w", err, ErrWriteFault)
	}
	if _, err := tmp.Write(raw); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("manifest: %v: %w", err, ErrWriteFault)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("manifest: %v: %w", err, ErrWriteFault)
	}
	if err := os.Rename(tmp.Name(), d.manifestPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("manifest: %v: %w", err, ErrWriteFault)
	}
	return nil
}
